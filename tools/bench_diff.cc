// CLI wrapper around exec::bench_diff: compare a current bench --metrics
// JSON against a committed baseline and exit nonzero on any regression
// or structural mismatch. Used by CI as the perf regression gate.
//
//   bench_diff <baseline.json> <current.json>
//       [--makespan=<pct>]         threshold for makespan_ns (default 5)
//       [--all=<pct>]              gate every metric at this threshold
//       [--host=<pct>]             gate "host."-prefixed wall-clock
//                                  metrics at this (looser) threshold
//       [--metric=<name>:<pct>]    per-metric threshold (repeatable)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/bench_diff.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> [--makespan=<pct>] "
               "[--all=<pct>] [--host=<pct>] [--metric=<name>:<pct>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  cr::exec::DiffOptions options;
  std::string baseline, current;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--makespan=", 0) == 0) {
      options.makespan_pct = std::atof(arg.c_str() + std::strlen("--makespan="));
    } else if (arg.rfind("--all=", 0) == 0) {
      options.all_pct = std::atof(arg.c_str() + std::strlen("--all="));
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host_pct = std::atof(arg.c_str() + std::strlen("--host="));
    } else if (arg.rfind("--metric=", 0) == 0) {
      const std::string spec = arg.substr(std::strlen("--metric="));
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) return usage(argv[0]);
      options.metric_pct[spec.substr(0, colon)] =
          std::atof(spec.c_str() + colon + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (baseline.empty()) {
      baseline = arg;
    } else if (current.empty()) {
      current = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline.empty() || current.empty()) return usage(argv[0]);

  const cr::exec::DiffResult result =
      cr::exec::bench_diff_files(baseline, current, options);
  std::fputs(result.to_text().c_str(), stdout);
  return result.ok() ? 0 : 1;
}
