// CLI wrapper around exec::bench_diff: compare a current bench --metrics
// JSON against a committed baseline and exit nonzero on any regression
// or structural mismatch. Used by CI as the perf regression gate.
//
//   bench_diff <baseline.json> <current.json>
//       [--makespan=<pct>]         threshold for makespan_ns (default 5)
//       [--all=<pct>]              gate every metric at this threshold
//       [--host=<pct>]             gate "host."-prefixed wall-clock
//                                  metrics at this (looser) threshold
//       [--metric=<name>:<pct>]    per-metric threshold (repeatable)
//       [--matrix]                 treat the two paths as DIRECTORIES:
//                                  diff every *.json in the baseline dir
//                                  against the same filename in the
//                                  current dir (the mapper-matrix gate)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/bench_diff.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> [--makespan=<pct>] "
               "[--all=<pct>] [--host=<pct>] [--metric=<name>:<pct>] "
               "[--matrix]\n",
               argv0);
  return 2;
}

// --matrix: every *.json in `baseline_dir` must exist under the same
// name in `current_dir` and pass the diff. Extra files in the current
// dir are ignored (new cells become gates once committed as baselines).
int diff_matrix(const std::string& baseline_dir,
                const std::string& current_dir,
                const cr::exec::DiffOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  std::error_code ec;
  for (const fs::directory_entry& e :
       fs::directory_iterator(baseline_dir, ec)) {
    if (e.path().extension() == ".json") {
      names.push_back(e.path().filename().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "cannot read directory %s: %s\n",
                 baseline_dir.c_str(), ec.message().c_str());
    return 1;
  }
  if (names.empty()) {
    std::fprintf(stderr, "no *.json baselines in %s\n", baseline_dir.c_str());
    return 1;
  }
  std::sort(names.begin(), names.end());
  int failures = 0;
  for (const std::string& name : names) {
    std::printf("=== %s ===\n", name.c_str());
    const cr::exec::DiffResult result = cr::exec::bench_diff_files(
        (fs::path(baseline_dir) / name).string(),
        (fs::path(current_dir) / name).string(), options);
    std::fputs(result.to_text().c_str(), stdout);
    if (!result.ok()) ++failures;
  }
  std::printf("matrix: %d of %zu cells failed\n", failures, names.size());
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  cr::exec::DiffOptions options;
  std::string baseline, current;
  bool matrix = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--matrix") {
      matrix = true;
    } else if (arg.rfind("--makespan=", 0) == 0) {
      options.makespan_pct = std::atof(arg.c_str() + std::strlen("--makespan="));
    } else if (arg.rfind("--all=", 0) == 0) {
      options.all_pct = std::atof(arg.c_str() + std::strlen("--all="));
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host_pct = std::atof(arg.c_str() + std::strlen("--host="));
    } else if (arg.rfind("--metric=", 0) == 0) {
      const std::string spec = arg.substr(std::strlen("--metric="));
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) return usage(argv[0]);
      options.metric_pct[spec.substr(0, colon)] =
          std::atof(spec.c_str() + colon + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (baseline.empty()) {
      baseline = arg;
    } else if (current.empty()) {
      current = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline.empty() || current.empty()) return usage(argv[0]);
  if (matrix) return diff_matrix(baseline, current, options);

  const cr::exec::DiffResult result =
      cr::exec::bench_diff_files(baseline, current, options);
  std::fputs(result.to_text().c_str(), stdout);
  return result.ok() ? 0 : 1;
}
