// Host-speedup measurement for the windowed multi-worker DES backend:
// run an app at a fixed node count under the legacy sequential event
// loop (workers=0) and under the windowed backend at increasing worker
// counts, timing each run's host wall clock. All windowed runs must
// report identical makespans (the determinism contract); the tool exits
// nonzero if they diverge, or — with --require-speedup — if the largest
// worker count fails to beat one worker by the given factor.
//
// Timing is warmup + median-of-N: the first (warmup) run per
// configuration is discarded (page faults, allocator growth, frequency
// ramp) and the run time reported is the median of the following
// --reps measurements, so the CI speedup gate tolerates shared-runner
// noise.
//
//   parallel_speedup [--app=stencil|circuit|pennant|miniaero]
//                    [--nodes=<n>] [--steps=<n>]
//                    [--max-workers=<n>] [--reps=<n>] [--warmup=<n>]
//                    [--pin] [--global-window] [--no-elide] [--json=<path>]
//                    [--require-speedup=<x>] [--host-trace=<path>]
//                    [--host-report=<path>]
//
// --json writes a bench_diff-compatible document: one series per worker
// count ("w0" = legacy loop, "wN" = windowed), a single point at the
// node count, with wall-clock results under "host." metric keys (gated
// by bench_diff --host) and context under "info." keys (never gated).
// When any artifact is requested, each windowed worker count gets one
// extra host-profiled run *after* its timed reps (so profiling overhead
// never pollutes the speedup numbers); its serial fraction and
// per-phase breakdown land in the JSON as info.* keys — explaining why
// a speedup number moved, not just that it did. --host-trace /
// --host-report additionally write the top worker count's host Chrome
// trace and HOST_phases report (the tools/window_report input).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/circuit/circuit.h"
#include "apps/miniaero/miniaero.h"
#include "apps/pennant/pennant.h"
#include "apps/stencil/stencil.h"
#include "exec/implicit_exec.h"
#include "support/host_clock.h"

namespace {

struct ToolOptions {
  std::string app = "stencil";
  uint32_t nodes = 64;
  uint64_t steps = 8;
  uint32_t max_workers = 4;
  uint32_t reps = 3;
  uint32_t warmup = 1;
  bool pin = false;
  bool global_window = false;
  bool no_elide = false;
  std::string json_path;
  std::string host_trace_path;
  std::string host_report_path;
  double require_speedup = 0;  // 0 = report only

  bool want_profile() const {
    return !json_path.empty() || !host_trace_path.empty() ||
           !host_report_path.empty();
  }
};

struct Measured {
  uint32_t workers = 0;  // 0 = legacy sequential loop
  cr::sim::Time makespan_ns = 0;
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t windows_elided = 0;
  // Setup (runtime construction + program build + prepare) and the run
  // itself are timed in separate steady_clock windows: the speedup
  // denominator must only contain work the worker count can affect.
  // run_seconds is the median over reps; setup_seconds the median of the
  // same runs' setup phases.
  double setup_seconds = 0;
  double run_seconds = 0;
  uint32_t reps = 0;
  // Host-phase profile from the extra (untimed) profiled run.
  std::shared_ptr<cr::support::HostProfile> profile;
};

struct OneRun {
  cr::sim::Time makespan_ns = 0;
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t windows_elided = 0;
  double setup_seconds = 0;
  double run_seconds = 0;
  std::shared_ptr<cr::support::HostProfile> profile;
};

OneRun run_once(const ToolOptions& opt, uint32_t workers,
                bool profile = false) {
  const auto setup_begin = std::chrono::steady_clock::now();
  cr::exec::CostModel cost = cr::exec::CostModel::piz_daint();
  cost.track_dependences = false;
  cr::rt::Runtime rt(
      cr::exec::runtime_config(opt.nodes, 12, cost, /*real_data=*/false));
  cr::ir::Program program;
  if (opt.app == "circuit") {
    cr::apps::circuit::Config cfg;
    cfg.nodes = opt.nodes;
    cfg.pieces_per_node = 4;
    cfg.nodes_per_piece = 32;
    cfg.wires_per_piece = 64;
    cfg.steps = opt.steps;
    program = cr::apps::circuit::build(rt, cfg).program;
  } else if (opt.app == "pennant") {
    cr::apps::pennant::Config cfg;
    cfg.nodes = opt.nodes;
    cfg.pieces_per_node = 2;
    cfg.zones_x_per_piece = 12;
    cfg.zones_y = 12;
    cfg.steps = opt.steps;
    program = cr::apps::pennant::build(rt, cfg).program;
  } else if (opt.app == "miniaero") {
    cr::apps::miniaero::Config cfg;
    cfg.nodes = opt.nodes;
    cfg.pieces_per_node = 2;
    cfg.cells_x_per_piece = 6;
    cfg.cells_y = 8;
    cfg.cells_z = 8;
    cfg.steps = opt.steps;
    program = cr::apps::miniaero::build(rt, cfg).program;
  } else {
    cr::apps::stencil::Config cfg;
    cfg.nodes = opt.nodes;
    cfg.tasks_per_node = 4;
    cfg.tile_x = 32;
    cfg.tile_y = 32;
    cfg.steps = opt.steps;
    program = cr::apps::stencil::build(rt, cfg).program;
  }
  for (auto& t : program.tasks) t.kernel = nullptr;
  cr::exec::ExecConfig ecfg;
  ecfg.cost = cost;
  ecfg.mode = cr::exec::ExecMode::kSpmd;
  ecfg.workers = workers;
  ecfg.adaptive_window = !opt.global_window;
  ecfg.elide_boundaries = !opt.no_elide;
  ecfg.pin_workers = opt.pin;
  ecfg.host_profile = profile && workers >= 1;
  cr::exec::PreparedRun run = cr::exec::prepare(rt, std::move(program), ecfg);
  const auto run_begin = std::chrono::steady_clock::now();
  const cr::exec::ExecutionResult res = run.run();
  const auto run_end = std::chrono::steady_clock::now();
  OneRun out;
  out.makespan_ns = res.makespan_ns;
  out.profile = res.host_profile;
  auto metric = [&res](const char* key) -> uint64_t {
    auto it = res.metrics.find(key);
    return it != res.metrics.end() ? static_cast<uint64_t>(it->second) : 0;
  };
  out.events = metric("sim.events_processed");
  out.windows = metric("sim.windows");
  out.windows_elided = metric("sim.windows_elided");
  out.setup_seconds =
      std::chrono::duration<double>(run_begin - setup_begin).count();
  out.run_seconds = std::chrono::duration<double>(run_end - run_begin).count();
  return out;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

Measured measure(const ToolOptions& opt, uint32_t workers) {
  Measured out;
  out.workers = workers;
  out.reps = opt.reps;
  for (uint32_t i = 0; i < opt.warmup; ++i) (void)run_once(opt, workers);
  std::vector<double> setup, runs;
  for (uint32_t i = 0; i < opt.reps; ++i) {
    const OneRun r = run_once(opt, workers);
    if (i == 0) {
      out.makespan_ns = r.makespan_ns;
      out.events = r.events;
      out.windows = r.windows;
      out.windows_elided = r.windows_elided;
    } else if (r.makespan_ns != out.makespan_ns) {
      std::fprintf(stderr,
                   "FAIL: makespan diverged across reps at workers=%u\n",
                   workers);
      std::exit(1);
    }
    setup.push_back(r.setup_seconds);
    runs.push_back(r.run_seconds);
  }
  out.setup_seconds = median(setup);
  out.run_seconds = median(runs);
  // One extra profiled run, after the timed reps so the profiler's
  // clock reads never touch the timing. The profiled run must replay
  // the same makespan — profiling is virtual-time-neutral by contract.
  if (workers >= 1 && opt.want_profile()) {
    const OneRun r = run_once(opt, workers, /*profile=*/true);
    if (r.makespan_ns != out.makespan_ns) {
      std::fprintf(stderr,
                   "FAIL: host-profiled run changed the makespan at "
                   "workers=%u\n",
                   workers);
      std::exit(1);
    }
    out.profile = r.profile;
  }
  return out;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--app=stencil|circuit|pennant|miniaero]\n"
      "          [--nodes=<n>] [--steps=<n>]\n"
      "          [--max-workers=<n>] [--reps=<n>] [--warmup=<n>] [--pin]\n"
      "          [--global-window] [--no-elide] [--json=<path>]\n"
      "          [--require-speedup=<x>]\n"
      "          [--host-trace=<path>] [--host-report=<path>]\n",
      argv0);
  return 2;
}

void write_json(const ToolOptions& opt, const std::vector<Measured>& runs,
                double w1_run_seconds) {
  FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"app\": \"%s\",\n", opt.app.c_str());
  std::fprintf(f, "  \"steps\": %llu,\n",
               static_cast<unsigned long long>(opt.steps));
  std::fprintf(f, "  \"pin\": %s,\n", opt.pin ? "true" : "false");
  std::fprintf(f, "  \"window_policy\": \"%s\",\n",
               opt.global_window ? "global" : "adaptive");
  std::fprintf(f, "  \"elide_boundaries\": %s,\n",
               opt.no_elide ? "false" : "true");
  std::fprintf(f, "  \"series\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const Measured& m = runs[i];
    const double evps =
        m.run_seconds > 0 ? static_cast<double>(m.events) / m.run_seconds : 0;
    // "host.slowdown_vs_w1" rather than speedup: bench_diff gates growth,
    // and the quantity that must not grow is how much slower this worker
    // count is than one worker. Dimensionless, so it is comparable
    // across runner hardware in a way raw seconds are not.
    const double slowdown =
        w1_run_seconds > 0 && m.run_seconds > 0
            ? m.run_seconds / w1_run_seconds
            : 0;
    std::fprintf(f, "    {\"name\": \"w%u\", \"points\": [\n", m.workers);
    std::fprintf(f, "      {\"nodes\": %u,\n", opt.nodes);
    std::fprintf(f, "       \"makespan_ns\": %llu,\n",
                 static_cast<unsigned long long>(m.makespan_ns));
    std::fprintf(f, "       \"metrics\": {\n");
    std::fprintf(f, "         \"host.run_seconds\": %.6f,\n", m.run_seconds);
    std::fprintf(f, "         \"host.setup_seconds\": %.6f,\n",
                 m.setup_seconds);
    std::fprintf(f, "         \"host.slowdown_vs_w1\": %.4f,\n", slowdown);
    std::fprintf(f, "         \"info.events_per_sec\": %.1f,\n", evps);
    std::fprintf(f, "         \"info.windows\": %llu,\n",
                 static_cast<unsigned long long>(m.windows));
    std::fprintf(f, "         \"info.windows_elided\": %llu,\n",
                 static_cast<unsigned long long>(m.windows_elided));
    if (m.profile != nullptr) {
      // Why the number moved: the measured serial fraction and where
      // the host cycles went, from the extra profiled run. info.* keys
      // are context — bench_diff never gates them.
      std::fprintf(f, "         \"info.serial_fraction\": %.6f,\n",
                   m.profile->serial_fraction);
      for (size_t p = 0; p < cr::support::kNumHostPhases; ++p) {
        std::fprintf(f, "         \"info.phase.%s_ns\": %.0f,\n",
                     cr::support::host_phase_name(
                         static_cast<cr::support::HostPhase>(p)),
                     m.profile->phase_ns[p]);
      }
    }
    std::fprintf(f, "         \"info.reps\": %u\n", m.reps);
    std::fprintf(f, "       }}\n");
    std::fprintf(f, "    ]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ToolOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&arg](const char* prefix) {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--app=", 0) == 0) {
      opt.app = val("--app=");
      if (opt.app != "stencil" && opt.app != "circuit" &&
          opt.app != "pennant" && opt.app != "miniaero") {
        return usage(argv[0]);
      }
    } else if (arg.rfind("--nodes=", 0) == 0) {
      opt.nodes = static_cast<uint32_t>(std::atoi(val("--nodes=")));
    } else if (arg.rfind("--steps=", 0) == 0) {
      opt.steps = static_cast<uint64_t>(std::atoll(val("--steps=")));
    } else if (arg.rfind("--max-workers=", 0) == 0) {
      opt.max_workers =
          static_cast<uint32_t>(std::atoi(val("--max-workers=")));
    } else if (arg.rfind("--reps=", 0) == 0) {
      opt.reps = static_cast<uint32_t>(std::atoi(val("--reps=")));
      if (opt.reps == 0) return usage(argv[0]);
    } else if (arg.rfind("--warmup=", 0) == 0) {
      opt.warmup = static_cast<uint32_t>(std::atoi(val("--warmup=")));
    } else if (arg == "--pin") {
      opt.pin = true;
    } else if (arg == "--global-window") {
      opt.global_window = true;
    } else if (arg == "--no-elide") {
      opt.no_elide = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = val("--json=");
    } else if (arg.rfind("--host-trace=", 0) == 0) {
      opt.host_trace_path = val("--host-trace=");
    } else if (arg.rfind("--host-report=", 0) == 0) {
      opt.host_report_path = val("--host-report=");
    } else if (arg.rfind("--require-speedup=", 0) == 0) {
      opt.require_speedup = std::atof(val("--require-speedup="));
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<Measured> runs;
  runs.push_back(measure(opt, 0));  // legacy reference loop
  for (uint32_t w = 1; w <= opt.max_workers; w *= 2) {
    runs.push_back(measure(opt, w));
  }

  std::printf("%s, %u nodes, %llu steps, %s windows%s%s, median of %u\n",
              opt.app.c_str(), opt.nodes,
              static_cast<unsigned long long>(opt.steps),
              opt.global_window ? "global" : "adaptive",
              opt.no_elide ? ", no-elide" : "", opt.pin ? ", pinned" : "",
              opt.reps);
  std::printf("%-10s %16s %10s %8s %12s %12s %10s %12s\n", "backend",
              "makespan_ns", "windows", "elided", "setup_s", "run_s",
              "speedup", "events/s");
  double windowed1 = 0;
  for (const Measured& m : runs) {
    if (m.workers == 1) windowed1 = m.run_seconds;
  }
  bool diverged = false;
  cr::sim::Time windowed_makespan = 0;
  double top_speedup = 0;
  uint32_t top_workers = 0;
  for (const Measured& m : runs) {
    const std::string name =
        m.workers == 0 ? "legacy" : "workers=" + std::to_string(m.workers);
    const double speedup =
        m.workers >= 1 && m.run_seconds > 0 ? windowed1 / m.run_seconds : 0;
    const double evps =
        m.run_seconds > 0 ? static_cast<double>(m.events) / m.run_seconds : 0;
    std::printf("%-10s %16llu %10llu %8llu %12.3f %12.3f %10.2f %12.0f\n",
                name.c_str(),
                static_cast<unsigned long long>(m.makespan_ns),
                static_cast<unsigned long long>(m.windows),
                static_cast<unsigned long long>(m.windows_elided),
                m.setup_seconds, m.run_seconds, speedup, evps);
    if (m.workers >= 1) {
      if (windowed_makespan == 0) windowed_makespan = m.makespan_ns;
      if (m.makespan_ns != windowed_makespan) diverged = true;
      if (m.workers >= top_workers) {
        top_workers = m.workers;
        top_speedup = speedup;
      }
    }
  }
  if (!opt.json_path.empty()) write_json(opt, runs, windowed1);
  // Host artifacts come from the largest worker count's profiled run —
  // the configuration the CI serial-fraction ratchet watches.
  const Measured* top_profiled = nullptr;
  for (const Measured& m : runs) {
    if (m.profile != nullptr &&
        (top_profiled == nullptr || m.workers > top_profiled->workers)) {
      top_profiled = &m;
    }
  }
  if (top_profiled != nullptr) {
    std::printf("workers=%u serial fraction: %.4f over %llu windows\n",
                top_profiled->workers, top_profiled->profile->serial_fraction,
                (unsigned long long)top_profiled->profile->windows);
    if (!opt.host_trace_path.empty()) {
      top_profiled->profile->write_chrome_json(opt.host_trace_path);
      std::printf("wrote %s\n", opt.host_trace_path.c_str());
    }
    if (!opt.host_report_path.empty()) {
      top_profiled->profile->write_json(opt.host_report_path, opt.app);
      std::printf("wrote %s\n", opt.host_report_path.c_str());
    }
  }
  if (diverged) {
    std::fprintf(stderr,
                 "FAIL: windowed makespans diverged across worker counts\n");
    return 1;
  }
  if (opt.require_speedup > 0 && top_speedup < opt.require_speedup) {
    std::fprintf(stderr,
                 "FAIL: speedup at workers=%u is %.2fx, required %.2fx\n",
                 top_workers, top_speedup, opt.require_speedup);
    return 1;
  }
  return 0;
}
