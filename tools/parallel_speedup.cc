// Host-speedup measurement for the windowed multi-worker DES backend:
// run the stencil app at a fixed node count under the legacy sequential
// event loop (workers=0) and under the windowed backend at increasing
// worker counts, timing each run's host wall clock. All windowed runs
// must report identical makespans (the determinism contract); the tool
// exits nonzero if they diverge. Results feed EXPERIMENTS.md.
//
//   parallel_speedup [--nodes=<n>] [--steps=<n>] [--max-workers=<n>]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/stencil/stencil.h"
#include "exec/implicit_exec.h"

namespace {

struct Measured {
  uint32_t workers = 0;  // 0 = legacy sequential loop
  cr::sim::Time makespan_ns = 0;
  // Setup (runtime construction + program build + prepare) and the run
  // itself are timed in separate steady_clock windows: the speedup
  // denominator must only contain work the worker count can affect, and
  // setup cost is reported in its own column instead of inflating it.
  double setup_seconds = 0;
  double run_seconds = 0;
};

Measured run_once(uint32_t nodes, uint64_t steps, uint32_t workers) {
  const auto setup_begin = std::chrono::steady_clock::now();
  cr::exec::CostModel cost = cr::exec::CostModel::piz_daint();
  cost.track_dependences = false;
  cr::rt::Runtime rt(
      cr::exec::runtime_config(nodes, 12, cost, /*real_data=*/false));
  cr::apps::stencil::Config cfg;
  cfg.nodes = nodes;
  cfg.tasks_per_node = 4;
  cfg.tile_x = 32;
  cfg.tile_y = 32;
  cfg.steps = steps;
  cr::apps::stencil::App app = cr::apps::stencil::build(rt, cfg);
  for (auto& t : app.program.tasks) t.kernel = nullptr;
  cr::exec::ExecConfig ecfg;
  ecfg.cost = cost;
  ecfg.mode = cr::exec::ExecMode::kSpmd;
  ecfg.workers = workers;
  cr::exec::PreparedRun run = cr::exec::prepare(rt, app.program, ecfg);
  const auto run_begin = std::chrono::steady_clock::now();
  const cr::exec::ExecutionResult res = run.run();
  const auto run_end = std::chrono::steady_clock::now();
  Measured out;
  out.workers = workers;
  out.makespan_ns = res.makespan_ns;
  out.setup_seconds =
      std::chrono::duration<double>(run_begin - setup_begin).count();
  out.run_seconds = std::chrono::duration<double>(run_end - run_begin).count();
  return out;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes=<n>] [--steps=<n>] [--max-workers=<n>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t nodes = 64;
  uint64_t steps = 8;
  uint32_t max_workers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--nodes=", 0) == 0) {
      nodes = static_cast<uint32_t>(std::atoi(arg.c_str() + 8));
    } else if (arg.rfind("--steps=", 0) == 0) {
      steps = static_cast<uint64_t>(std::atoll(arg.c_str() + 8));
    } else if (arg.rfind("--max-workers=", 0) == 0) {
      max_workers = static_cast<uint32_t>(std::atoi(arg.c_str() + 14));
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<Measured> runs;
  runs.push_back(run_once(nodes, steps, 0));  // legacy reference loop
  for (uint32_t w = 1; w <= max_workers; w *= 2) {
    runs.push_back(run_once(nodes, steps, w));
  }

  std::printf("stencil, %u nodes, %llu steps\n", nodes,
              static_cast<unsigned long long>(steps));
  std::printf("%-10s %16s %12s %12s %10s\n", "backend", "makespan_ns",
              "setup_s", "run_s", "speedup");
  double windowed1 = 0;
  for (const Measured& m : runs) {
    if (m.workers == 1) windowed1 = m.run_seconds;
  }
  bool diverged = false;
  cr::sim::Time windowed_makespan = 0;
  for (const Measured& m : runs) {
    std::string name =
        m.workers == 0 ? "legacy" : "workers=" + std::to_string(m.workers);
    const double speedup =
        m.workers >= 1 && m.run_seconds > 0 ? windowed1 / m.run_seconds : 0;
    std::printf("%-10s %16llu %12.3f %12.3f %10.2f\n", name.c_str(),
                static_cast<unsigned long long>(m.makespan_ns),
                m.setup_seconds, m.run_seconds, speedup);
    if (m.workers >= 1) {
      if (windowed_makespan == 0) windowed_makespan = m.makespan_ns;
      if (m.makespan_ns != windowed_makespan) diverged = true;
    }
  }
  if (diverged) {
    std::fprintf(stderr,
                 "FAIL: windowed makespans diverged across worker counts\n");
    return 1;
  }
  return 0;
}
