// window_report: turn a HOST_phases JSON artifact (bench --host-trace,
// parallel_speedup --host-report, or HostProfile::write_json) into the
// numbers the backend-v3 work is gated against: a host-phase breakdown
// table, per-worker busy/idle fractions, per-window parallel efficiency
// (busy / workers*span), the measured serial fraction, and the Amdahl
// ceiling it implies for a range of worker counts.
//
//   window_report <HOST_phases.json> [--json=<out>]
//                 [--max-serial-fraction=<f>] [--tolerance-pct=<p>]
//
// Exit status is nonzero when the artifact does not reconcile — the
// coordinator's recorded phase time must cover total wall time within
// --tolerance-pct (default 2%; the spans tile the coordinator timeline
// by construction, so a larger gap means broken instrumentation) — or
// when --max-serial-fraction is given and the measured fraction exceeds
// it (the CI ratchet).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.h"

namespace {

using cr::support::JsonValue;

double num_of(const JsonValue* v) {
  return v != nullptr && v->is_number() ? v->num : 0;
}

struct Options {
  std::string input;
  std::string json_out;
  double max_serial_fraction = -1;  // < 0 = no gate
  double tolerance_pct = 2.0;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      opt.json_out = arg.substr(7);
    } else if (arg.rfind("--max-serial-fraction=", 0) == 0) {
      opt.max_serial_fraction = std::atof(arg.c_str() + 22);
    } else if (arg.rfind("--tolerance-pct=", 0) == 0) {
      opt.tolerance_pct = std::atof(arg.c_str() + 16);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return false;
    } else if (opt.input.empty()) {
      opt.input = arg;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opt.input.empty()) {
    std::fprintf(stderr,
                 "usage: window_report <HOST_phases.json> [--json=<out>] "
                 "[--max-serial-fraction=<f>] [--tolerance-pct=<p>]\n");
    return false;
  }
  return true;
}

double amdahl(double serial_fraction, double workers) {
  return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  std::ifstream in(opt.input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.input.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  std::string error;
  if (!cr::support::json_parse(buf.str(), doc, error)) {
    std::fprintf(stderr, "%s: %s\n", opt.input.c_str(), error.c_str());
    return 2;
  }
  const JsonValue* kind = doc.get("kind");
  if (kind == nullptr || !kind->is_string() || kind->str != "host_phases") {
    std::fprintf(stderr, "%s: not a host_phases artifact\n",
                 opt.input.c_str());
    return 2;
  }

  const std::string app =
      doc.get("app") != nullptr ? doc.get("app")->str : "";
  const double workers = num_of(doc.get("workers"));
  const double windows = num_of(doc.get("windows"));
  const double wall_ns = num_of(doc.get("wall_ns"));
  const double serial_ns = num_of(doc.get("serial_ns"));
  const double serial_fraction = num_of(doc.get("serial_fraction"));
  const double coord_recorded = num_of(doc.get("coordinator_recorded_ns"));
  // workers is the efficiency denominator below: a zero or negative
  // count would turn every per-window efficiency into inf/NaN, so it is
  // a hard artifact error, reported as such rather than as "empty".
  if (workers <= 0) {
    std::fprintf(stderr, "%s: invalid worker count %g\n", opt.input.c_str(),
                 workers);
    return 2;
  }
  if (wall_ns <= 0) {
    std::fprintf(stderr, "%s: empty profile\n", opt.input.c_str());
    return 2;
  }

  std::printf("host-phase report: %s (%g workers, %g windows, %.3f ms wall)\n",
              app.empty() ? opt.input.c_str() : app.c_str(), workers,
              windows, wall_ns / 1e6);

  // --- phase breakdown -------------------------------------------------
  // Totals are summed over every worker timeline, so the denominator is
  // total recorded time (~ workers * wall), not wall.
  double recorded_total = 0;
  std::vector<std::pair<std::string, double>> phases;
  if (const JsonValue* pn = doc.get("phase_ns"); pn != nullptr) {
    for (const auto& [name, v] : pn->obj) {
      phases.emplace_back(name, v.num);
      recorded_total += v.num;
    }
  }
  std::printf("\n  %-14s %14s %8s\n", "phase", "total ns", "share");
  for (const auto& [name, ns] : phases) {
    std::printf("  %-14s %14.0f %7.2f%%\n", name.c_str(), ns,
                recorded_total > 0 ? 100.0 * ns / recorded_total : 0.0);
  }

  // --- per-worker busy/idle --------------------------------------------
  std::printf("\n  %-10s %14s %14s %8s\n", "worker", "busy ns",
              "recorded ns", "busy");
  if (const JsonValue* wd = doc.get("workers_detail");
      wd != nullptr && wd->is_array()) {
    for (const JsonValue& w : wd->arr) {
      const double busy = num_of(w.get("busy_ns"));
      std::printf("  %-10.0f %14.0f %14.0f %7.2f%%\n",
                  num_of(w.get("worker")), busy,
                  num_of(w.get("recorded_ns")), 100.0 * busy / wall_ns);
    }
  }

  // --- per-window efficiency -------------------------------------------
  // busy / (workers * parallel span): 1.0 means every worker executed
  // lane work for the window's whole parallel segment.
  double eff_sum = 0, eff_min = 1e9, eff_max = 0;
  uint64_t eff_count = 0, eff_dropped = 0;
  if (const JsonValue* rows = doc.get("windows_detail");
      rows != nullptr && rows->is_array()) {
    for (const JsonValue& r : rows->arr) {
      const double span = num_of(r.get("parallel_span_ns"));
      if (span <= 0) {
        // A window whose parallel span rounded to zero (or a malformed
        // row) has no defined efficiency. Dropping it is correct, but
        // it must not be silent: the mean is then over fewer windows
        // than the artifact reports, and a report where most rows are
        // dropped is measuring noise.
        ++eff_dropped;
        continue;
      }
      const double eff = num_of(r.get("busy_ns")) / (workers * span);
      eff_sum += eff;
      eff_min = std::min(eff_min, eff);
      eff_max = std::max(eff_max, eff);
      ++eff_count;
    }
  }
  const double eff_mean = eff_count > 0 ? eff_sum / eff_count : 0;
  if (eff_count > 0) {
    std::printf(
        "\n  window efficiency (busy / workers*span): mean %.3f, "
        "min %.3f, max %.3f over %llu windows\n",
        eff_mean, eff_min, eff_max, (unsigned long long)eff_count);
  }
  if (eff_dropped > 0) {
    std::printf("  (%llu zero-span window row%s excluded from the mean)\n",
                (unsigned long long)eff_dropped, eff_dropped == 1 ? "" : "s");
  }

  // --- serial fraction + Amdahl ceiling --------------------------------
  std::printf("\n  serial fraction: %.4f (%.3f ms of %.3f ms)\n",
              serial_fraction, serial_ns / 1e6, wall_ns / 1e6);
  std::printf("  implied Amdahl ceiling:");
  for (const double w : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    std::printf("  %gw=%.2fx", w, amdahl(serial_fraction, w));
  }
  std::printf("\n");

  // --- reconciliation --------------------------------------------------
  // The coordinator's spans tile its timeline (each phase boundary is a
  // single clock read shared by the adjacent spans), so recorded time
  // must match wall time up to the pre-loop setup and teardown slivers.
  const double gap_pct =
      100.0 * std::fabs(wall_ns - coord_recorded) / wall_ns;
  std::printf(
      "  reconciliation: coordinator recorded %.3f ms vs wall %.3f ms "
      "(gap %.2f%%, tolerance %.2f%%)\n",
      coord_recorded / 1e6, wall_ns / 1e6, gap_pct, opt.tolerance_pct);

  int rc = 0;
  if (gap_pct > opt.tolerance_pct) {
    std::fprintf(stderr,
                 "FAIL: phase sums do not reconcile with wall time "
                 "(gap %.2f%% > %.2f%%)\n",
                 gap_pct, opt.tolerance_pct);
    rc = 1;
  }
  if (opt.max_serial_fraction >= 0 &&
      serial_fraction > opt.max_serial_fraction) {
    std::fprintf(stderr,
                 "FAIL: serial fraction %.4f exceeds gate %.4f\n",
                 serial_fraction, opt.max_serial_fraction);
    rc = 1;
  }

  if (!opt.json_out.empty()) {
    FILE* f = std::fopen(opt.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.json_out.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"kind\": \"window_report\",\n");
    std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
    std::fprintf(f, "  \"workers\": %.0f,\n  \"windows\": %.0f,\n",
                 workers, windows);
    std::fprintf(f, "  \"wall_ns\": %.0f,\n  \"serial_ns\": %.0f,\n",
                 wall_ns, serial_ns);
    std::fprintf(f, "  \"serial_fraction\": %.6f,\n", serial_fraction);
    std::fprintf(f, "  \"reconciliation_gap_pct\": %.4f,\n", gap_pct);
    std::fprintf(f, "  \"efficiency\": {\"mean\": %.6f, \"min\": %.6f, "
                    "\"max\": %.6f, \"windows\": %llu, \"dropped\": %llu},\n",
                 eff_mean, eff_count > 0 ? eff_min : 0,
                 eff_count > 0 ? eff_max : 0,
                 (unsigned long long)eff_count,
                 (unsigned long long)eff_dropped);
    std::fprintf(f, "  \"phase_ns\": {");
    for (size_t i = 0; i < phases.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %.0f", i == 0 ? "" : ", ",
                   phases[i].first.c_str(), phases[i].second);
    }
    std::fprintf(f, "},\n  \"amdahl_ceiling\": {");
    bool first = true;
    for (const double w : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      std::fprintf(f, "%s\"%.0f\": %.4f", first ? "" : ", ", w,
                   amdahl(serial_fraction, w));
      first = false;
    }
    std::fprintf(f, "},\n  \"ok\": %s\n}\n", rc == 0 ? "true" : "false");
    std::fclose(f);
    std::fprintf(stderr, "  report: %s\n", opt.json_out.c_str());
  }
  return rc;
}
