# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_grid "/root/repo/build/examples/heat_grid")
set_tests_properties(example_heat_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_circuit_sim "/root/repo/build/examples/circuit_sim")
set_tests_properties(example_circuit_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hydro_dt "/root/repo/build/examples/hydro_dt")
set_tests_properties(example_hydro_dt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect "/root/repo/build/examples/inspect" "circuit" "2")
set_tests_properties(example_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
