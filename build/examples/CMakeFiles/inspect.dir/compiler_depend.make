# Empty compiler generated dependencies file for inspect.
# This may be replaced when dependencies are built.
