# Empty compiler generated dependencies file for heat_grid.
# This may be replaced when dependencies are built.
