file(REMOVE_RECURSE
  "CMakeFiles/heat_grid.dir/heat_grid.cpp.o"
  "CMakeFiles/heat_grid.dir/heat_grid.cpp.o.d"
  "heat_grid"
  "heat_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
