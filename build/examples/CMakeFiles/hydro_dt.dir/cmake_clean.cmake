file(REMOVE_RECURSE
  "CMakeFiles/hydro_dt.dir/hydro_dt.cpp.o"
  "CMakeFiles/hydro_dt.dir/hydro_dt.cpp.o.d"
  "hydro_dt"
  "hydro_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydro_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
