# Empty dependencies file for hydro_dt.
# This may be replaced when dependencies are built.
