# Empty compiler generated dependencies file for circuit_sim.
# This may be replaced when dependencies are built.
