file(REMOVE_RECURSE
  "CMakeFiles/circuit_sim.dir/circuit_sim.cpp.o"
  "CMakeFiles/circuit_sim.dir/circuit_sim.cpp.o.d"
  "circuit_sim"
  "circuit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
