file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_miniaero.dir/bench_fig7_miniaero.cc.o"
  "CMakeFiles/bench_fig7_miniaero.dir/bench_fig7_miniaero.cc.o.d"
  "bench_fig7_miniaero"
  "bench_fig7_miniaero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_miniaero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
