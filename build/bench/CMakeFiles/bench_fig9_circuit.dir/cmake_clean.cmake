file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_circuit.dir/bench_fig9_circuit.cc.o"
  "CMakeFiles/bench_fig9_circuit.dir/bench_fig9_circuit.cc.o.d"
  "bench_fig9_circuit"
  "bench_fig9_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
