# Empty dependencies file for bench_fig9_circuit.
# This may be replaced when dependencies are built.
