file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_pennant.dir/bench_fig8_pennant.cc.o"
  "CMakeFiles/bench_fig8_pennant.dir/bench_fig8_pennant.cc.o.d"
  "bench_fig8_pennant"
  "bench_fig8_pennant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pennant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
