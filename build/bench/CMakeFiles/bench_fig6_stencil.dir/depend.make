# Empty dependencies file for bench_fig6_stencil.
# This may be replaced when dependencies are built.
