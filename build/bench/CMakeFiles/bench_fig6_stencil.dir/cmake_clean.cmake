file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_stencil.dir/bench_fig6_stencil.cc.o"
  "CMakeFiles/bench_fig6_stencil.dir/bench_fig6_stencil.cc.o.d"
  "bench_fig6_stencil"
  "bench_fig6_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
