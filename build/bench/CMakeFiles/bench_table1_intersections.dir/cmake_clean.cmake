file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_intersections.dir/bench_table1_intersections.cc.o"
  "CMakeFiles/bench_table1_intersections.dir/bench_table1_intersections.cc.o.d"
  "bench_table1_intersections"
  "bench_table1_intersections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_intersections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
