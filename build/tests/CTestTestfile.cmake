# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_passes[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
