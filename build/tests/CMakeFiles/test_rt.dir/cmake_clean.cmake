file(REMOVE_RECURSE
  "CMakeFiles/test_rt.dir/rt/copy_mapper_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/copy_mapper_test.cc.o.d"
  "CMakeFiles/test_rt.dir/rt/dependence_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/dependence_test.cc.o.d"
  "CMakeFiles/test_rt.dir/rt/geometry_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/geometry_test.cc.o.d"
  "CMakeFiles/test_rt.dir/rt/index_space_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/index_space_test.cc.o.d"
  "CMakeFiles/test_rt.dir/rt/intersect_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/intersect_test.cc.o.d"
  "CMakeFiles/test_rt.dir/rt/partition_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/partition_test.cc.o.d"
  "CMakeFiles/test_rt.dir/rt/physical_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/physical_test.cc.o.d"
  "CMakeFiles/test_rt.dir/rt/region_tree_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/region_tree_test.cc.o.d"
  "CMakeFiles/test_rt.dir/rt/sync_test.cc.o"
  "CMakeFiles/test_rt.dir/rt/sync_test.cc.o.d"
  "test_rt"
  "test_rt.pdb"
  "test_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
