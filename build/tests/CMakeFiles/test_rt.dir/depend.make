# Empty dependencies file for test_rt.
# This may be replaced when dependencies are built.
