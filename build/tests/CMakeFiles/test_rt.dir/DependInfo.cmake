
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rt/copy_mapper_test.cc" "tests/CMakeFiles/test_rt.dir/rt/copy_mapper_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/copy_mapper_test.cc.o.d"
  "/root/repo/tests/rt/dependence_test.cc" "tests/CMakeFiles/test_rt.dir/rt/dependence_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/dependence_test.cc.o.d"
  "/root/repo/tests/rt/geometry_test.cc" "tests/CMakeFiles/test_rt.dir/rt/geometry_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/geometry_test.cc.o.d"
  "/root/repo/tests/rt/index_space_test.cc" "tests/CMakeFiles/test_rt.dir/rt/index_space_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/index_space_test.cc.o.d"
  "/root/repo/tests/rt/intersect_test.cc" "tests/CMakeFiles/test_rt.dir/rt/intersect_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/intersect_test.cc.o.d"
  "/root/repo/tests/rt/partition_test.cc" "tests/CMakeFiles/test_rt.dir/rt/partition_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/partition_test.cc.o.d"
  "/root/repo/tests/rt/physical_test.cc" "tests/CMakeFiles/test_rt.dir/rt/physical_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/physical_test.cc.o.d"
  "/root/repo/tests/rt/region_tree_test.cc" "tests/CMakeFiles/test_rt.dir/rt/region_tree_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/region_tree_test.cc.o.d"
  "/root/repo/tests/rt/sync_test.cc" "tests/CMakeFiles/test_rt.dir/rt/sync_test.cc.o" "gcc" "tests/CMakeFiles/test_rt.dir/rt/sync_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
