# Empty compiler generated dependencies file for test_passes.
# This may be replaced when dependencies are built.
