file(REMOVE_RECURSE
  "CMakeFiles/test_passes.dir/passes/copy_placement_test.cc.o"
  "CMakeFiles/test_passes.dir/passes/copy_placement_test.cc.o.d"
  "CMakeFiles/test_passes.dir/passes/pipeline_test.cc.o"
  "CMakeFiles/test_passes.dir/passes/pipeline_test.cc.o.d"
  "test_passes"
  "test_passes.pdb"
  "test_passes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
