file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/bsp_test.cc.o"
  "CMakeFiles/test_apps.dir/apps/bsp_test.cc.o.d"
  "CMakeFiles/test_apps.dir/apps/circuit_test.cc.o"
  "CMakeFiles/test_apps.dir/apps/circuit_test.cc.o.d"
  "CMakeFiles/test_apps.dir/apps/miniaero_test.cc.o"
  "CMakeFiles/test_apps.dir/apps/miniaero_test.cc.o.d"
  "CMakeFiles/test_apps.dir/apps/pennant_test.cc.o"
  "CMakeFiles/test_apps.dir/apps/pennant_test.cc.o.d"
  "CMakeFiles/test_apps.dir/apps/stencil_test.cc.o"
  "CMakeFiles/test_apps.dir/apps/stencil_test.cc.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
