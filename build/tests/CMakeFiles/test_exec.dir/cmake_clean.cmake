file(REMOVE_RECURSE
  "CMakeFiles/test_exec.dir/exec/determinism_test.cc.o"
  "CMakeFiles/test_exec.dir/exec/determinism_test.cc.o.d"
  "CMakeFiles/test_exec.dir/exec/engine_features_test.cc.o"
  "CMakeFiles/test_exec.dir/exec/engine_features_test.cc.o.d"
  "CMakeFiles/test_exec.dir/exec/equivalence_test.cc.o"
  "CMakeFiles/test_exec.dir/exec/equivalence_test.cc.o.d"
  "CMakeFiles/test_exec.dir/exec/fuzz_test.cc.o"
  "CMakeFiles/test_exec.dir/exec/fuzz_test.cc.o.d"
  "CMakeFiles/test_exec.dir/exec/report_test.cc.o"
  "CMakeFiles/test_exec.dir/exec/report_test.cc.o.d"
  "test_exec"
  "test_exec.pdb"
  "test_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
