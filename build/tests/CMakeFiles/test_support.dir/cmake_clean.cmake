file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/support/interval_set_test.cc.o"
  "CMakeFiles/test_support.dir/support/interval_set_test.cc.o.d"
  "CMakeFiles/test_support.dir/support/rng_test.cc.o"
  "CMakeFiles/test_support.dir/support/rng_test.cc.o.d"
  "CMakeFiles/test_support.dir/support/stats_test.cc.o"
  "CMakeFiles/test_support.dir/support/stats_test.cc.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
