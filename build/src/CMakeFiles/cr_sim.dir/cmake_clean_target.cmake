file(REMOVE_RECURSE
  "libcr_sim.a"
)
