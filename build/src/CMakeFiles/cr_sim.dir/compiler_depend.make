# Empty compiler generated dependencies file for cr_sim.
# This may be replaced when dependencies are built.
