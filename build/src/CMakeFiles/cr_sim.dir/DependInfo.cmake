
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event.cc" "src/CMakeFiles/cr_sim.dir/sim/event.cc.o" "gcc" "src/CMakeFiles/cr_sim.dir/sim/event.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/cr_sim.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/cr_sim.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/cr_sim.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/cr_sim.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/processor.cc" "src/CMakeFiles/cr_sim.dir/sim/processor.cc.o" "gcc" "src/CMakeFiles/cr_sim.dir/sim/processor.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/cr_sim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/cr_sim.dir/sim/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
