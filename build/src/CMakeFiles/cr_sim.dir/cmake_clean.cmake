file(REMOVE_RECURSE
  "CMakeFiles/cr_sim.dir/sim/event.cc.o"
  "CMakeFiles/cr_sim.dir/sim/event.cc.o.d"
  "CMakeFiles/cr_sim.dir/sim/machine.cc.o"
  "CMakeFiles/cr_sim.dir/sim/machine.cc.o.d"
  "CMakeFiles/cr_sim.dir/sim/network.cc.o"
  "CMakeFiles/cr_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/cr_sim.dir/sim/processor.cc.o"
  "CMakeFiles/cr_sim.dir/sim/processor.cc.o.d"
  "CMakeFiles/cr_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/cr_sim.dir/sim/simulator.cc.o.d"
  "libcr_sim.a"
  "libcr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
