
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/circuit/circuit.cc" "src/CMakeFiles/cr_apps.dir/apps/circuit/circuit.cc.o" "gcc" "src/CMakeFiles/cr_apps.dir/apps/circuit/circuit.cc.o.d"
  "/root/repo/src/apps/circuit/graph.cc" "src/CMakeFiles/cr_apps.dir/apps/circuit/graph.cc.o" "gcc" "src/CMakeFiles/cr_apps.dir/apps/circuit/graph.cc.o.d"
  "/root/repo/src/apps/common/bsp.cc" "src/CMakeFiles/cr_apps.dir/apps/common/bsp.cc.o" "gcc" "src/CMakeFiles/cr_apps.dir/apps/common/bsp.cc.o.d"
  "/root/repo/src/apps/miniaero/miniaero.cc" "src/CMakeFiles/cr_apps.dir/apps/miniaero/miniaero.cc.o" "gcc" "src/CMakeFiles/cr_apps.dir/apps/miniaero/miniaero.cc.o.d"
  "/root/repo/src/apps/pennant/pennant.cc" "src/CMakeFiles/cr_apps.dir/apps/pennant/pennant.cc.o" "gcc" "src/CMakeFiles/cr_apps.dir/apps/pennant/pennant.cc.o.d"
  "/root/repo/src/apps/stencil/stencil.cc" "src/CMakeFiles/cr_apps.dir/apps/stencil/stencil.cc.o" "gcc" "src/CMakeFiles/cr_apps.dir/apps/stencil/stencil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cr_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
