file(REMOVE_RECURSE
  "CMakeFiles/cr_apps.dir/apps/circuit/circuit.cc.o"
  "CMakeFiles/cr_apps.dir/apps/circuit/circuit.cc.o.d"
  "CMakeFiles/cr_apps.dir/apps/circuit/graph.cc.o"
  "CMakeFiles/cr_apps.dir/apps/circuit/graph.cc.o.d"
  "CMakeFiles/cr_apps.dir/apps/common/bsp.cc.o"
  "CMakeFiles/cr_apps.dir/apps/common/bsp.cc.o.d"
  "CMakeFiles/cr_apps.dir/apps/miniaero/miniaero.cc.o"
  "CMakeFiles/cr_apps.dir/apps/miniaero/miniaero.cc.o.d"
  "CMakeFiles/cr_apps.dir/apps/pennant/pennant.cc.o"
  "CMakeFiles/cr_apps.dir/apps/pennant/pennant.cc.o.d"
  "CMakeFiles/cr_apps.dir/apps/stencil/stencil.cc.o"
  "CMakeFiles/cr_apps.dir/apps/stencil/stencil.cc.o.d"
  "libcr_apps.a"
  "libcr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
