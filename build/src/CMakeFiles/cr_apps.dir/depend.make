# Empty dependencies file for cr_apps.
# This may be replaced when dependencies are built.
