file(REMOVE_RECURSE
  "libcr_apps.a"
)
