file(REMOVE_RECURSE
  "libcr_ir.a"
)
