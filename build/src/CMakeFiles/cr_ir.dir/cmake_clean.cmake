file(REMOVE_RECURSE
  "CMakeFiles/cr_ir.dir/ir/builder.cc.o"
  "CMakeFiles/cr_ir.dir/ir/builder.cc.o.d"
  "CMakeFiles/cr_ir.dir/ir/printer.cc.o"
  "CMakeFiles/cr_ir.dir/ir/printer.cc.o.d"
  "CMakeFiles/cr_ir.dir/ir/program.cc.o"
  "CMakeFiles/cr_ir.dir/ir/program.cc.o.d"
  "CMakeFiles/cr_ir.dir/ir/static_region_tree.cc.o"
  "CMakeFiles/cr_ir.dir/ir/static_region_tree.cc.o.d"
  "CMakeFiles/cr_ir.dir/ir/verify.cc.o"
  "CMakeFiles/cr_ir.dir/ir/verify.cc.o.d"
  "libcr_ir.a"
  "libcr_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
