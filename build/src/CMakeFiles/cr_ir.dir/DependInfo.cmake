
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cc" "src/CMakeFiles/cr_ir.dir/ir/builder.cc.o" "gcc" "src/CMakeFiles/cr_ir.dir/ir/builder.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/cr_ir.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/cr_ir.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/CMakeFiles/cr_ir.dir/ir/program.cc.o" "gcc" "src/CMakeFiles/cr_ir.dir/ir/program.cc.o.d"
  "/root/repo/src/ir/static_region_tree.cc" "src/CMakeFiles/cr_ir.dir/ir/static_region_tree.cc.o" "gcc" "src/CMakeFiles/cr_ir.dir/ir/static_region_tree.cc.o.d"
  "/root/repo/src/ir/verify.cc" "src/CMakeFiles/cr_ir.dir/ir/verify.cc.o" "gcc" "src/CMakeFiles/cr_ir.dir/ir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
