# Empty compiler generated dependencies file for cr_ir.
# This may be replaced when dependencies are built.
