# Empty dependencies file for cr_exec.
# This may be replaced when dependencies are built.
