file(REMOVE_RECURSE
  "libcr_exec.a"
)
