file(REMOVE_RECURSE
  "CMakeFiles/cr_exec.dir/exec/cost_model.cc.o"
  "CMakeFiles/cr_exec.dir/exec/cost_model.cc.o.d"
  "CMakeFiles/cr_exec.dir/exec/engine.cc.o"
  "CMakeFiles/cr_exec.dir/exec/engine.cc.o.d"
  "CMakeFiles/cr_exec.dir/exec/implicit_exec.cc.o"
  "CMakeFiles/cr_exec.dir/exec/implicit_exec.cc.o.d"
  "CMakeFiles/cr_exec.dir/exec/report.cc.o"
  "CMakeFiles/cr_exec.dir/exec/report.cc.o.d"
  "CMakeFiles/cr_exec.dir/exec/sequential_exec.cc.o"
  "CMakeFiles/cr_exec.dir/exec/sequential_exec.cc.o.d"
  "CMakeFiles/cr_exec.dir/exec/spmd_exec.cc.o"
  "CMakeFiles/cr_exec.dir/exec/spmd_exec.cc.o.d"
  "libcr_exec.a"
  "libcr_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
