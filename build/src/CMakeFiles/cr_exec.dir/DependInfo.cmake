
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/cost_model.cc" "src/CMakeFiles/cr_exec.dir/exec/cost_model.cc.o" "gcc" "src/CMakeFiles/cr_exec.dir/exec/cost_model.cc.o.d"
  "/root/repo/src/exec/engine.cc" "src/CMakeFiles/cr_exec.dir/exec/engine.cc.o" "gcc" "src/CMakeFiles/cr_exec.dir/exec/engine.cc.o.d"
  "/root/repo/src/exec/implicit_exec.cc" "src/CMakeFiles/cr_exec.dir/exec/implicit_exec.cc.o" "gcc" "src/CMakeFiles/cr_exec.dir/exec/implicit_exec.cc.o.d"
  "/root/repo/src/exec/report.cc" "src/CMakeFiles/cr_exec.dir/exec/report.cc.o" "gcc" "src/CMakeFiles/cr_exec.dir/exec/report.cc.o.d"
  "/root/repo/src/exec/sequential_exec.cc" "src/CMakeFiles/cr_exec.dir/exec/sequential_exec.cc.o" "gcc" "src/CMakeFiles/cr_exec.dir/exec/sequential_exec.cc.o.d"
  "/root/repo/src/exec/spmd_exec.cc" "src/CMakeFiles/cr_exec.dir/exec/spmd_exec.cc.o" "gcc" "src/CMakeFiles/cr_exec.dir/exec/spmd_exec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cr_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
