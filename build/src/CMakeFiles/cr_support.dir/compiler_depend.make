# Empty compiler generated dependencies file for cr_support.
# This may be replaced when dependencies are built.
