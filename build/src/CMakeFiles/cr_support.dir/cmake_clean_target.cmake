file(REMOVE_RECURSE
  "libcr_support.a"
)
