file(REMOVE_RECURSE
  "CMakeFiles/cr_support.dir/support/interval_set.cc.o"
  "CMakeFiles/cr_support.dir/support/interval_set.cc.o.d"
  "CMakeFiles/cr_support.dir/support/log.cc.o"
  "CMakeFiles/cr_support.dir/support/log.cc.o.d"
  "CMakeFiles/cr_support.dir/support/rng.cc.o"
  "CMakeFiles/cr_support.dir/support/rng.cc.o.d"
  "CMakeFiles/cr_support.dir/support/stats.cc.o"
  "CMakeFiles/cr_support.dir/support/stats.cc.o.d"
  "libcr_support.a"
  "libcr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
