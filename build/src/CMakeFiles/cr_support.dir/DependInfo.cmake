
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/interval_set.cc" "src/CMakeFiles/cr_support.dir/support/interval_set.cc.o" "gcc" "src/CMakeFiles/cr_support.dir/support/interval_set.cc.o.d"
  "/root/repo/src/support/log.cc" "src/CMakeFiles/cr_support.dir/support/log.cc.o" "gcc" "src/CMakeFiles/cr_support.dir/support/log.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/cr_support.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/cr_support.dir/support/rng.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/cr_support.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/cr_support.dir/support/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
