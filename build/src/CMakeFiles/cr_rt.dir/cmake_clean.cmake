file(REMOVE_RECURSE
  "CMakeFiles/cr_rt.dir/rt/barrier.cc.o"
  "CMakeFiles/cr_rt.dir/rt/barrier.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/collective.cc.o"
  "CMakeFiles/cr_rt.dir/rt/collective.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/copy.cc.o"
  "CMakeFiles/cr_rt.dir/rt/copy.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/dependence.cc.o"
  "CMakeFiles/cr_rt.dir/rt/dependence.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/index_space.cc.o"
  "CMakeFiles/cr_rt.dir/rt/index_space.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/intersect.cc.o"
  "CMakeFiles/cr_rt.dir/rt/intersect.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/mapper.cc.o"
  "CMakeFiles/cr_rt.dir/rt/mapper.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/partition.cc.o"
  "CMakeFiles/cr_rt.dir/rt/partition.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/physical.cc.o"
  "CMakeFiles/cr_rt.dir/rt/physical.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/region_tree.cc.o"
  "CMakeFiles/cr_rt.dir/rt/region_tree.cc.o.d"
  "CMakeFiles/cr_rt.dir/rt/runtime.cc.o"
  "CMakeFiles/cr_rt.dir/rt/runtime.cc.o.d"
  "libcr_rt.a"
  "libcr_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
