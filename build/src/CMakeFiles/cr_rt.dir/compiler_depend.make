# Empty compiler generated dependencies file for cr_rt.
# This may be replaced when dependencies are built.
