
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/barrier.cc" "src/CMakeFiles/cr_rt.dir/rt/barrier.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/barrier.cc.o.d"
  "/root/repo/src/rt/collective.cc" "src/CMakeFiles/cr_rt.dir/rt/collective.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/collective.cc.o.d"
  "/root/repo/src/rt/copy.cc" "src/CMakeFiles/cr_rt.dir/rt/copy.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/copy.cc.o.d"
  "/root/repo/src/rt/dependence.cc" "src/CMakeFiles/cr_rt.dir/rt/dependence.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/dependence.cc.o.d"
  "/root/repo/src/rt/index_space.cc" "src/CMakeFiles/cr_rt.dir/rt/index_space.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/index_space.cc.o.d"
  "/root/repo/src/rt/intersect.cc" "src/CMakeFiles/cr_rt.dir/rt/intersect.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/intersect.cc.o.d"
  "/root/repo/src/rt/mapper.cc" "src/CMakeFiles/cr_rt.dir/rt/mapper.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/mapper.cc.o.d"
  "/root/repo/src/rt/partition.cc" "src/CMakeFiles/cr_rt.dir/rt/partition.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/partition.cc.o.d"
  "/root/repo/src/rt/physical.cc" "src/CMakeFiles/cr_rt.dir/rt/physical.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/physical.cc.o.d"
  "/root/repo/src/rt/region_tree.cc" "src/CMakeFiles/cr_rt.dir/rt/region_tree.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/region_tree.cc.o.d"
  "/root/repo/src/rt/runtime.cc" "src/CMakeFiles/cr_rt.dir/rt/runtime.cc.o" "gcc" "src/CMakeFiles/cr_rt.dir/rt/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
