file(REMOVE_RECURSE
  "libcr_rt.a"
)
