file(REMOVE_RECURSE
  "libcr_passes.a"
)
