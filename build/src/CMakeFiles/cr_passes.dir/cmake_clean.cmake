file(REMOVE_RECURSE
  "CMakeFiles/cr_passes.dir/passes/applicability.cc.o"
  "CMakeFiles/cr_passes.dir/passes/applicability.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/common.cc.o"
  "CMakeFiles/cr_passes.dir/passes/common.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/copy_placement.cc.o"
  "CMakeFiles/cr_passes.dir/passes/copy_placement.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/data_replication.cc.o"
  "CMakeFiles/cr_passes.dir/passes/data_replication.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/hierarchical.cc.o"
  "CMakeFiles/cr_passes.dir/passes/hierarchical.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/intersection_opt.cc.o"
  "CMakeFiles/cr_passes.dir/passes/intersection_opt.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/pipeline.cc.o"
  "CMakeFiles/cr_passes.dir/passes/pipeline.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/projection_normalize.cc.o"
  "CMakeFiles/cr_passes.dir/passes/projection_normalize.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/region_reduction.cc.o"
  "CMakeFiles/cr_passes.dir/passes/region_reduction.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/scalar_reduction.cc.o"
  "CMakeFiles/cr_passes.dir/passes/scalar_reduction.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/shard_creation.cc.o"
  "CMakeFiles/cr_passes.dir/passes/shard_creation.cc.o.d"
  "CMakeFiles/cr_passes.dir/passes/sync_insertion.cc.o"
  "CMakeFiles/cr_passes.dir/passes/sync_insertion.cc.o.d"
  "libcr_passes.a"
  "libcr_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
