
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/applicability.cc" "src/CMakeFiles/cr_passes.dir/passes/applicability.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/applicability.cc.o.d"
  "/root/repo/src/passes/common.cc" "src/CMakeFiles/cr_passes.dir/passes/common.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/common.cc.o.d"
  "/root/repo/src/passes/copy_placement.cc" "src/CMakeFiles/cr_passes.dir/passes/copy_placement.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/copy_placement.cc.o.d"
  "/root/repo/src/passes/data_replication.cc" "src/CMakeFiles/cr_passes.dir/passes/data_replication.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/data_replication.cc.o.d"
  "/root/repo/src/passes/hierarchical.cc" "src/CMakeFiles/cr_passes.dir/passes/hierarchical.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/hierarchical.cc.o.d"
  "/root/repo/src/passes/intersection_opt.cc" "src/CMakeFiles/cr_passes.dir/passes/intersection_opt.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/intersection_opt.cc.o.d"
  "/root/repo/src/passes/pipeline.cc" "src/CMakeFiles/cr_passes.dir/passes/pipeline.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/pipeline.cc.o.d"
  "/root/repo/src/passes/projection_normalize.cc" "src/CMakeFiles/cr_passes.dir/passes/projection_normalize.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/projection_normalize.cc.o.d"
  "/root/repo/src/passes/region_reduction.cc" "src/CMakeFiles/cr_passes.dir/passes/region_reduction.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/region_reduction.cc.o.d"
  "/root/repo/src/passes/scalar_reduction.cc" "src/CMakeFiles/cr_passes.dir/passes/scalar_reduction.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/scalar_reduction.cc.o.d"
  "/root/repo/src/passes/shard_creation.cc" "src/CMakeFiles/cr_passes.dir/passes/shard_creation.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/shard_creation.cc.o.d"
  "/root/repo/src/passes/sync_insertion.cc" "src/CMakeFiles/cr_passes.dir/passes/sync_insertion.cc.o" "gcc" "src/CMakeFiles/cr_passes.dir/passes/sync_insertion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
