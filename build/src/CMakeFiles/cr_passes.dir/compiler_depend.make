# Empty compiler generated dependencies file for cr_passes.
# This may be replaced when dependencies are built.
