// Golden provenance test: after the full control-replication pipeline,
// every compiler-inserted copy/sync operation must carry a provenance
// chain rooted at a user source statement — that is what the attribution
// report (exec::AttributionReport) keys on.
#include <gtest/gtest.h>

#include <functional>

#include "apps/stencil/stencil.h"
#include "ir/printer.h"
#include "passes/pipeline.h"
#include "rt/runtime.h"
#include "testing/fig2.h"

namespace cr::passes {
namespace {

bool inserted_op(ir::StmtKind k) {
  switch (k) {
    case ir::StmtKind::kCopy:
    case ir::StmtKind::kFill:
    case ir::StmtKind::kBarrier:
    case ir::StmtKind::kIntersect:
    case ir::StmtKind::kCollective:
      return true;
    default:
      return false;
  }
}

void check_body(const std::vector<ir::Stmt>& body, const ir::Program& p,
                size_t* checked) {
  for (const ir::Stmt& s : body) {
    if (inserted_op(s.kind)) {
      ++*checked;
      EXPECT_TRUE(s.prov.valid())
          << "inserted op without provenance: " << s.label;
      EXPECT_FALSE(s.prov.passes.empty())
          << "provenance chain names no pass: " << s.label;
      EXPECT_LT(s.prov.source, p.num_source_stmts) << s.label;
      EXPECT_FALSE(s.prov.label.empty()) << s.label;
    }
    check_body(s.body, p, checked);
  }
}

TEST(Provenance, BuilderStampsUserStatements) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  const ir::Program& p = fig.program;
  EXPECT_GT(p.num_source_stmts, 0u);
  // Every user statement got a distinct source id, in program order.
  std::vector<bool> seen(p.num_source_stmts, false);
  std::function<void(const std::vector<ir::Stmt>&)> walk =
      [&](const std::vector<ir::Stmt>& body) {
        for (const ir::Stmt& s : body) {
          ASSERT_TRUE(s.prov.valid()) << s.label;
          ASSERT_LT(s.prov.source, p.num_source_stmts);
          EXPECT_FALSE(seen[s.prov.source]) << "duplicate source id";
          seen[s.prov.source] = true;
          EXPECT_TRUE(s.prov.passes.empty()) << "user stmt has pass chain";
          walk(s.body);
        }
      };
  walk(p.body);
}

TEST(Provenance, Fig2PipelineDerivesChains) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  PipelineOptions opt;
  opt.num_shards = 2;
  PipelineReport report = control_replicate(p, opt);
  ASSERT_TRUE(report.applied) << report.failure;
  size_t checked = 0;
  check_body(p.body, p, &checked);
  EXPECT_GT(checked, 0u);
}

TEST(Provenance, StencilPostPipelineOpsRootAtUserStatements) {
  rt::RuntimeConfig rc;
  rc.machine.nodes = 4;
  rc.machine.cores_per_node = 4;
  rt::Runtime rt(rc);
  apps::stencil::Config cfg;
  cfg.nodes = 4;
  apps::stencil::App app = apps::stencil::build(rt, cfg);
  ir::Program p = app.program;
  ASSERT_GT(p.num_source_stmts, 0u);

  PipelineOptions opt;
  opt.num_shards = 4;
  PipelineReport report = control_replicate(p, opt);
  ASSERT_TRUE(report.applied) << report.failure;

  size_t checked = 0;
  check_body(p.body, p, &checked);
  // The stencil pipeline inserts intersections, ghost copies and
  // init/finalize coherence copies at minimum.
  EXPECT_GE(checked, 3u);

  // The opt-in printer annotation surfaces the chains.
  ir::PrintOptions popt;
  popt.show_provenance = true;
  const std::string text = ir::to_string(p, popt);
  EXPECT_NE(text.find("from#"), std::string::npos);
}

}  // namespace
}  // namespace cr::passes
