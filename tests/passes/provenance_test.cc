// Golden provenance test: after the full control-replication pipeline,
// every compiler-inserted copy/sync operation must carry a provenance
// chain rooted at a user source statement — that is what the attribution
// report (exec::AttributionReport) keys on.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "apps/stencil/stencil.h"
#include "exec/spmd_exec.h"
#include "ir/printer.h"
#include "passes/pipeline.h"
#include "rt/partition.h"
#include "rt/runtime.h"
#include "testing/fig2.h"

namespace cr::passes {
namespace {

bool inserted_op(ir::StmtKind k) {
  switch (k) {
    case ir::StmtKind::kCopy:
    case ir::StmtKind::kFill:
    case ir::StmtKind::kBarrier:
    case ir::StmtKind::kIntersect:
    case ir::StmtKind::kCollective:
      return true;
    default:
      return false;
  }
}

void check_body(const std::vector<ir::Stmt>& body, const ir::Program& p,
                size_t* checked) {
  for (const ir::Stmt& s : body) {
    if (inserted_op(s.kind)) {
      ++*checked;
      EXPECT_TRUE(s.prov.valid())
          << "inserted op without provenance: " << s.label;
      EXPECT_FALSE(s.prov.passes.empty())
          << "provenance chain names no pass: " << s.label;
      EXPECT_LT(s.prov.source, p.num_source_stmts) << s.label;
      EXPECT_FALSE(s.prov.label.empty()) << s.label;
    }
    check_body(s.body, p, checked);
  }
}

// Straight-line Figure 2 variant whose inter-shard copy needs no
// leading barrier: every access before the copy is either shard-local
// (TF's aligned PB write is the copy's own source side) or
// field-disjoint (PA carries fa, the copy moves fb), so sync insertion
// elides the leading barrier and keeps only the trailing one.
ir::Program build_elided_barrier_case(rt::RegionForest& f) {
  auto fsa = std::make_shared<rt::FieldSpace>();
  const rt::FieldId fa = fsa->add_field("va");
  auto fsb = std::make_shared<rt::FieldSpace>();
  const rt::FieldId fb = fsb->add_field("vb");
  const rt::RegionId a = f.create_region(rt::IndexSpace::dense(24), fsa, "A");
  const rt::RegionId b = f.create_region(rt::IndexSpace::dense(24), fsb, "B");
  const rt::PartitionId pa = rt::partition_equal(f, a, 4, "PA");
  const rt::PartitionId pb = rt::partition_equal(f, b, 4, "PB");
  const rt::PartitionId qb = rt::partition_image(
      f, b, pb,
      [](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back((x + 3) % 24);
      },
      "QB");
  ir::ProgramBuilder bld(f, "elide");
  using P = rt::Privilege;
  const ir::TaskId t_init = bld.task(
      "TInit", {{P::kWriteDiscard, rt::ReduceOp::kSum, {fa}}}, 500, 0.5,
      nullptr);
  const ir::TaskId t_f =
      bld.task("TF",
               {{P::kReadWrite, rt::ReduceOp::kSum, {fb}},
                {P::kReadOnly, rt::ReduceOp::kSum, {fa}}},
               1000, 1.0, nullptr);
  const ir::TaskId t_g =
      bld.task("TG",
               {{P::kReadWrite, rt::ReduceOp::kSum, {fa}},
                {P::kReadOnly, rt::ReduceOp::kSum, {fb}}},
               1000, 1.0, nullptr);
  using B = ir::ProgramBuilder;
  bld.index_launch(t_init, 4, {B::arg(pa, P::kWriteDiscard, {fa})});
  bld.index_launch(t_f, 4,
                   {B::arg(pb, P::kReadWrite, {fb}),
                    B::arg(pa, P::kReadOnly, {fa})});
  bld.index_launch(t_g, 4,
                   {B::arg(pa, P::kReadWrite, {fa}),
                    B::arg(qb, P::kReadOnly, {fb})});
  return bld.finish();
}

TEST(Provenance, BuilderStampsUserStatements) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  const ir::Program& p = fig.program;
  EXPECT_GT(p.num_source_stmts, 0u);
  // Every user statement got a distinct source id, in program order.
  std::vector<bool> seen(p.num_source_stmts, false);
  std::function<void(const std::vector<ir::Stmt>&)> walk =
      [&](const std::vector<ir::Stmt>& body) {
        for (const ir::Stmt& s : body) {
          ASSERT_TRUE(s.prov.valid()) << s.label;
          ASSERT_LT(s.prov.source, p.num_source_stmts);
          EXPECT_FALSE(seen[s.prov.source]) << "duplicate source id";
          seen[s.prov.source] = true;
          EXPECT_TRUE(s.prov.passes.empty()) << "user stmt has pass chain";
          walk(s.body);
        }
      };
  walk(p.body);
}

TEST(Provenance, Fig2PipelineDerivesChains) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  PipelineOptions opt;
  opt.num_shards = 2;
  PipelineReport report = control_replicate(p, opt);
  ASSERT_TRUE(report.applied) << report.failure;
  size_t checked = 0;
  check_body(p.body, p, &checked);
  EXPECT_GT(checked, 0u);
}

TEST(Provenance, StencilPostPipelineOpsRootAtUserStatements) {
  rt::RuntimeConfig rc;
  rc.machine.nodes = 4;
  rc.machine.cores_per_node = 4;
  rt::Runtime rt(rc);
  apps::stencil::Config cfg;
  cfg.nodes = 4;
  apps::stencil::App app = apps::stencil::build(rt, cfg);
  ir::Program p = app.program;
  ASSERT_GT(p.num_source_stmts, 0u);

  PipelineOptions opt;
  opt.num_shards = 4;
  PipelineReport report = control_replicate(p, opt);
  ASSERT_TRUE(report.applied) << report.failure;

  size_t checked = 0;
  check_body(p.body, p, &checked);
  // The stencil pipeline inserts intersections, ghost copies and
  // init/finalize coherence copies at minimum.
  EXPECT_GE(checked, 3u);

  // The opt-in printer annotation surfaces the chains.
  ir::PrintOptions popt;
  popt.show_provenance = true;
  const std::string text = ir::to_string(p, popt);
  EXPECT_NE(text.find("from#"), std::string::npos);
}

TEST(Provenance, ElidedLeadingBarrierGolden) {
  rt::RegionForest forest;
  ir::Program p = build_elided_barrier_case(forest);
  PipelineOptions opt;
  opt.num_shards = 2;
  opt.p2p_sync = false;
  PipelineReport report = control_replicate(p, opt);
  ASSERT_TRUE(report.applied) << report.failure;
  // Only the trailing barrier survives; the leading one is elided.
  EXPECT_EQ(report.barriers, 1u);
  const std::string text = ir::to_string(p);
  EXPECT_NE(text.find("  copy PB -> QB {f0} isect#0\n"
                      "  barrier\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("barrier\n  copy"), std::string::npos) << text;
  // The surviving barrier (and every other inserted op) still roots at
  // a user source statement.
  size_t checked = 0;
  check_body(p.body, p, &checked);
  EXPECT_GT(checked, 0u);
}

TEST(Provenance, ElidedBarrierRunLeavesNoDanglingAttributionRoots) {
  // The attribution report keys runtime copy/sync spans by provenance
  // root. When the leading barrier is elided, the copy run executes
  // with a trailing barrier only — every attributed row must still
  // resolve to a source statement that exists in the final IR (no
  // dangling roots from the elided barrier).
  exec::CostModel cost;
  cost.track_dependences = false;
  rt::Runtime rt(exec::runtime_config(2, 4, cost, /*real_data=*/false));
  ir::Program p = build_elided_barrier_case(rt.forest());
  PipelineOptions opt;
  opt.p2p_sync = false;
  exec::PreparedRun run = exec::prepare_spmd(rt, p, cost, opt);
  ASSERT_EQ(run.report.barriers, 1u);
  run.engine->enable_trace();
  run.run();

  std::set<uint32_t> roots;
  std::function<void(const std::vector<ir::Stmt>&)> walk =
      [&](const std::vector<ir::Stmt>& body) {
        for (const ir::Stmt& s : body) {
          if (s.prov.valid()) roots.insert(s.prov.source);
          walk(s.body);
        }
      };
  walk(run.program->body);

  const exec::AttributionReport rep = run.engine->attribution_report();
  ASSERT_FALSE(rep.empty());  // the copy and its barrier were attributed
  for (const auto& row : rep.rows) {
    EXPECT_LT(row.source, run.program->num_source_stmts) << row.label;
    EXPECT_FALSE(row.label.empty()) << row.source;
    EXPECT_TRUE(roots.count(row.source) > 0)
        << "dangling attribution root: source " << row.source << " ("
        << row.label << ")";
  }
}

}  // namespace
}  // namespace cr::passes
