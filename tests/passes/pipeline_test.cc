// Golden tests: the Figure 2 program stepped through the control
// replication pipeline must produce the structures of Figure 4.
#include <gtest/gtest.h>

#include "ir/printer.h"
#include "passes/applicability.h"
#include "passes/hierarchical.h"
#include "passes/pipeline.h"
#include "testing/fig2.h"

namespace cr::passes {
namespace {

TEST(Applicability, SelectsTheTimeLoopFragment) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  std::string why;
  auto frag = find_fragment(fig.program, &why);
  ASSERT_TRUE(frag.has_value()) << why;
  // Both the init launch and the time loop qualify.
  EXPECT_EQ(frag->begin, 0u);
  EXPECT_EQ(frag->end, 2u);
}

TEST(Applicability, SingleTaskSplitsFragments) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  // Insert a single task between init and the loop: the loop side wins
  // (higher weight).
  ir::Stmt st;
  st.kind = ir::StmtKind::kSingleTask;
  st.task = fig.t_init;
  st.regions = {fig.a};
  p.body.insert(p.body.begin() + 1, st);
  auto frag = find_fragment(p);
  ASSERT_TRUE(frag.has_value());
  EXPECT_EQ(frag->begin, 2u);
  EXPECT_EQ(frag->end, 3u);
}

TEST(Applicability, RejectsAliasedWriteLaunch) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  p.tasks[fig.t_g].params[1].privilege = rt::Privilege::kReadWrite;
  p.body[1].body[1].args[1].privilege = rt::Privilege::kReadWrite;
  std::string why;
  EXPECT_FALSE(statement_replicable(p, p.body[1], &why));
  EXPECT_NE(why.find("aliased"), std::string::npos);
}

TEST(Pipeline, Fig4FullTransformGolden) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  PipelineOptions opt;
  opt.num_shards = 2;
  PipelineReport report = control_replicate(p, opt);
  ASSERT_TRUE(report.applied) << report.failure;

  EXPECT_EQ(ir::to_string(p),
            "program fig2\n"
            // Initialization (Fig. 4a lines 2-4): every accessed
            // partition loads from its parent region.
            "copy A -> PA {f0}\n"
            "copy B -> PB {f0}\n"
            "copy B -> QB {f0}\n"
            // Intersections (Fig. 4b line 5), hoisted to program start.
            "intersect#0 = PB x QB\n"
            // The shard task (Fig. 4d).
            "shards 2:\n"
            "  launch TInit over 4: PA[i] writes{f0}\n"
            "  for t in 0..3:\n"
            "    launch TF over 4: PB[i] reads writes{f0} PA[i] reads{f0}\n"
            // The copy (Fig. 4b line 10) with intersections and p2p sync.
            "    copy PB -> QB {f0} isect#0 sync=p2p\n"
            "    launch TG over 4: PA[i] reads writes{f0} QB[i] reads{f0}\n"
            // Finalization (Fig. 4a lines 14-15): written partitions only.
            "copy PA -> A {f0}\n"
            "copy PB -> B {f0}\n");

  EXPECT_EQ(report.init_copies, 3u);
  EXPECT_EQ(report.finalize_copies, 2u);
  EXPECT_EQ(report.inner_copies, 1u);
  EXPECT_EQ(report.intersection_tables, 1u);
  EXPECT_EQ(report.p2p_copies, 1u);
  EXPECT_EQ(report.barriers, 0u);
}

TEST(Pipeline, BarrierModeInsertsBarrierPairs) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  PipelineOptions opt;
  opt.num_shards = 2;
  opt.p2p_sync = false;
  PipelineReport report = control_replicate(p, opt);
  ASSERT_TRUE(report.applied);
  EXPECT_EQ(report.barriers, 2u);
  const std::string text = ir::to_string(p);
  // Figure 4c: barrier / copy / barrier inside the time loop.
  EXPECT_NE(text.find("    barrier\n"
                      "    copy PB -> QB {f0} isect#0\n"
                      "    barrier\n"),
            std::string::npos);
}

TEST(Pipeline, NoIntersectionOptLeavesAllPairsCopies) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  PipelineOptions opt;
  opt.num_shards = 2;
  opt.intersection_opt = false;
  PipelineReport report = control_replicate(p, opt);
  ASSERT_TRUE(report.applied);
  EXPECT_EQ(report.intersection_tables, 0u);
  EXPECT_EQ(ir::to_string(p).find("intersect#"), std::string::npos);
}

TEST(Pipeline, ImplicitPreparationHasNoShardsOrSync) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  PipelineReport report = prepare_distributed(p, PipelineOptions{});
  ASSERT_TRUE(report.applied);
  const std::string text = ir::to_string(p);
  EXPECT_EQ(text.find("shards"), std::string::npos);
  EXPECT_EQ(text.find("sync=p2p"), std::string::npos);
  EXPECT_EQ(text.find("barrier"), std::string::npos);
  EXPECT_NE(text.find("copy PB -> QB {f0} isect#0"), std::string::npos);
}

TEST(Pipeline, HierarchicalDisjointnessSuppressesPrivateCopies) {
  // Paper §4.5 / Figure 5: with a private/ghost top-level split, the
  // private partition provably needs no copies; without hierarchy
  // reasoning (flat), a copy is emitted anyway (harmless but costly).
  rt::RegionForest forest;
  auto fs = std::make_shared<rt::FieldSpace>();
  rt::FieldId f = fs->add_field("v");
  rt::RegionId b = forest.create_region(rt::IndexSpace::dense(40), fs, "B");
  rt::PartitionId pvg = rt::partition_by_color(
      forest, b, 2, [](uint64_t id) { return id < 24 ? 0u : 1u; }, "pvg");
  rt::RegionId all_private = forest.subregion(pvg, 0);
  rt::RegionId all_ghost = forest.subregion(pvg, 1);
  rt::PartitionId pb =
      rt::partition_equal(forest, all_private, 4, "PBpriv");
  rt::PartitionId sb = rt::partition_equal(forest, all_ghost, 4, "SB");
  rt::PartitionId qb = rt::partition_image(
      forest, all_ghost, sb,
      [](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back(x);
        out.push_back(x >= 25 ? x - 1 : x);
      },
      "QB");

  auto make_program = [&] {
    ir::ProgramBuilder bld(forest, "hier");
    using P = rt::Privilege;
    ir::TaskId tw = bld.task(
        "TW",
        {{P::kReadWrite, rt::ReduceOp::kSum, {f}},
         {P::kReadWrite, rt::ReduceOp::kSum, {f}}},
        100, 1.0, nullptr);
    ir::TaskId tr = bld.task(
        "TR",
        {{P::kReadOnly, rt::ReduceOp::kSum, {f}},
         {P::kReadOnly, rt::ReduceOp::kSum, {f}}},
        100, 1.0, nullptr);
    bld.begin_for_time(2);
    bld.index_launch(tw, 4,
                     {ir::ProgramBuilder::arg(pb, P::kReadWrite, {f}),
                      ir::ProgramBuilder::arg(sb, P::kReadWrite, {f})});
    bld.index_launch(tr, 4,
                     {ir::ProgramBuilder::arg(pb, P::kReadOnly, {f}),
                      ir::ProgramBuilder::arg(qb, P::kReadOnly, {f})});
    bld.end_for_time();
    return bld.finish();
  };

  ir::Program deep = make_program();
  PipelineOptions opt;
  opt.num_shards = 2;
  PipelineReport deep_report = control_replicate(deep, opt);
  ASSERT_TRUE(deep_report.applied);
  // Only SB -> QB needed: PBpriv is provably disjoint from QB.
  EXPECT_EQ(deep_report.inner_copies, 1u);
  EXPECT_EQ(ir::to_string(deep).find("copy PBpriv -> QB"),
            std::string::npos);

  ir::Program flat = make_program();
  opt.hierarchical = false;
  PipelineReport flat_report = control_replicate(flat, opt);
  ASSERT_TRUE(flat_report.applied);
  EXPECT_EQ(flat_report.inner_copies, 4u);  // extra (mostly empty) copies
  EXPECT_NE(ir::to_string(flat).find("copy PBpriv -> QB"),
            std::string::npos);

  HierarchyStats stats =
      analyze_hierarchy(make_program(), Fragment{0, 1});
  EXPECT_GT(stats.pairs_proven_disjoint, stats.pairs_flat_disjoint);
}

}  // namespace
}  // namespace cr::passes
