// Unit tests for the copy placement optimization (PRE + LICM) on
// hand-built IR.
#include <gtest/gtest.h>

#include "ir/printer.h"
#include "passes/copy_placement.h"
#include "testing/fig2.h"

namespace cr::passes {
namespace {

ir::Stmt copy_stmt(rt::PartitionId src, rt::PartitionId dst,
                   std::vector<rt::FieldId> fields) {
  ir::Stmt s;
  s.kind = ir::StmtKind::kCopy;
  s.copy_src = src;
  s.copy_dst = dst;
  s.copy_fields = std::move(fields);
  return s;
}

struct Fixture {
  rt::RegionForest forest;
  testing::Fig2 fig;
  Fixture() : fig(forest, 24, 4, 3) {}

  ir::Stmt launch(ir::TaskId t, rt::PartitionId p0, rt::PartitionId p1) {
    ir::Stmt s;
    s.kind = ir::StmtKind::kIndexLaunch;
    s.task = t;
    s.launch_colors = 4;
    const auto& params = fig.program.tasks[t].params;
    ir::RegionArg a0;
    a0.partition = p0;
    a0.privilege = params[0].privilege;
    a0.fields = params[0].fields;
    ir::RegionArg a1;
    a1.partition = p1;
    a1.privilege = params[1].privilege;
    a1.fields = params[1].fields;
    s.args = {a0, a1};
    return s;
  }
};

TEST(CopyPlacement, RemovesRedundantCopyBetweenConsecutiveWriters) {
  Fixture f;
  // loop { TF writes PB; copy PB->QB; TF writes PB; copy PB->QB; TG reads
  // QB }: the first copy is dead (the second rewrites the same elements
  // before any read).
  ir::Program p = f.fig.program;
  p.body.clear();
  ir::Stmt loop;
  loop.kind = ir::StmtKind::kForTime;
  loop.trip_count = 3;
  loop.body.push_back(f.launch(f.fig.t_f, f.fig.pb, f.fig.pa));
  loop.body.push_back(copy_stmt(f.fig.pb, f.fig.qb, {f.fig.fb}));
  loop.body.push_back(f.launch(f.fig.t_f, f.fig.pb, f.fig.pa));
  loop.body.push_back(copy_stmt(f.fig.pb, f.fig.qb, {f.fig.fb}));
  loop.body.push_back(f.launch(f.fig.t_g, f.fig.pa, f.fig.qb));
  p.body.push_back(std::move(loop));

  Fragment frag{0, 1};
  CopyPlacementResult res = copy_placement(p, frag);
  EXPECT_EQ(res.removed, 1u);
  ASSERT_EQ(p.body[0].body.size(), 4u);
  EXPECT_EQ(p.body[0].body[0].kind, ir::StmtKind::kIndexLaunch);
  EXPECT_EQ(p.body[0].body[1].kind, ir::StmtKind::kIndexLaunch);
  EXPECT_EQ(p.body[0].body[2].kind, ir::StmtKind::kCopy);
}

TEST(CopyPlacement, KeepsCopyReadAcrossBackEdge) {
  Fixture f;
  // loop { TG reads QB; TF writes PB; copy PB->QB }: the copy feeds the
  // *next* iteration's TG through the back edge — must stay.
  ir::Program p = f.fig.program;
  p.body.clear();
  ir::Stmt loop;
  loop.kind = ir::StmtKind::kForTime;
  loop.trip_count = 3;
  loop.body.push_back(f.launch(f.fig.t_g, f.fig.pa, f.fig.qb));
  loop.body.push_back(f.launch(f.fig.t_f, f.fig.pb, f.fig.pa));
  loop.body.push_back(copy_stmt(f.fig.pb, f.fig.qb, {f.fig.fb}));
  p.body.push_back(std::move(loop));

  Fragment frag{0, 1};
  CopyPlacementResult res = copy_placement(p, frag);
  EXPECT_EQ(res.removed, 0u);
  EXPECT_EQ(p.body[0].body.size(), 3u);
}

TEST(CopyPlacement, RemovesCopyKilledByFullTaskOverwrite) {
  Fixture f;
  // Straight line: copy PB->QB; TF writes... we need a task writing QB —
  // reuse TF shape but targeting QB is illegal (aliased); instead test
  // the straight-line escape: a copy at the end of a non-loop body is
  // live (escapes to finalization).
  ir::Program p = f.fig.program;
  p.body.clear();
  p.body.push_back(copy_stmt(f.fig.pb, f.fig.qb, {f.fig.fb}));
  Fragment frag{0, 1};
  CopyPlacementResult res = copy_placement(p, frag);
  EXPECT_EQ(res.removed, 0u);
}

TEST(CopyPlacement, HoistsLoopInvariantCopy) {
  Fixture f;
  // loop { copy PB->QB; TG reads QB }: PB never written in the loop, QB
  // has no other writer: the copy hoists to the preheader.
  ir::Program p = f.fig.program;
  p.body.clear();
  ir::Stmt loop;
  loop.kind = ir::StmtKind::kForTime;
  loop.trip_count = 3;
  loop.body.push_back(copy_stmt(f.fig.pb, f.fig.qb, {f.fig.fb}));
  loop.body.push_back(f.launch(f.fig.t_g, f.fig.pa, f.fig.qb));
  p.body.push_back(std::move(loop));

  Fragment frag{0, 1};
  CopyPlacementResult res = copy_placement(p, frag);
  EXPECT_EQ(res.hoisted, 1u);
  ASSERT_EQ(p.body.size(), 2u);
  EXPECT_EQ(p.body[0].kind, ir::StmtKind::kCopy);
  EXPECT_EQ(p.body[1].kind, ir::StmtKind::kForTime);
  EXPECT_EQ(p.body[1].body.size(), 1u);
  EXPECT_EQ(frag.end, 2u);  // fragment grew
}

TEST(CopyPlacement, DoesNotHoistWhenSourceWrittenInLoop) {
  Fixture f;
  ir::Program p = f.fig.program;
  p.body.clear();
  ir::Stmt loop;
  loop.kind = ir::StmtKind::kForTime;
  loop.trip_count = 3;
  loop.body.push_back(f.launch(f.fig.t_f, f.fig.pb, f.fig.pa));
  loop.body.push_back(copy_stmt(f.fig.pb, f.fig.qb, {f.fig.fb}));
  loop.body.push_back(f.launch(f.fig.t_g, f.fig.pa, f.fig.qb));
  p.body.push_back(std::move(loop));
  Fragment frag{0, 1};
  CopyPlacementResult res = copy_placement(p, frag);
  EXPECT_EQ(res.hoisted, 0u);
  EXPECT_EQ(res.removed, 0u);
}

TEST(CopyPlacement, ReductionCopiesAreNeverTouched) {
  Fixture f;
  ir::Program p = f.fig.program;
  p.body.clear();
  ir::Stmt loop;
  loop.kind = ir::StmtKind::kForTime;
  loop.trip_count = 2;
  ir::Stmt rc = copy_stmt(f.fig.pb, f.fig.qb, {f.fig.fb});
  rc.copy_reduction = true;
  rc.copy_redop = rt::ReduceOp::kSum;
  loop.body.push_back(rc);
  loop.body.push_back(rc);
  p.body.push_back(std::move(loop));
  Fragment frag{0, 1};
  CopyPlacementResult res = copy_placement(p, frag);
  EXPECT_EQ(res.hoisted, 0u);
  EXPECT_EQ(res.removed, 0u);
  EXPECT_EQ(p.body[0].body.size(), 2u);
}

}  // namespace
}  // namespace cr::passes
