// Golden-file IR snapshots after each registered pass.
//
// The PassManager observer hook fires after every enabled pass; this
// test drives the full to-SPMD pipeline over a miniature 4-shard
// stencil fragment and compares the printed IR (with stable sync ids)
// after each pass against checked-in goldens under
// tests/passes/golden/. A diff here means a pass changed what it emits
// — inspect it, and if intended regenerate with
//
//   CR_UPDATE_GOLDEN=1 ./tests/test_passes --gtest_filter='GoldenSnapshot.*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/stencil/stencil.h"
#include "exec/implicit_exec.h"
#include "ir/printer.h"
#include "passes/applicability.h"
#include "passes/pass_manager.h"

namespace cr::passes {
namespace {

#ifndef CR_TEST_SRCDIR
#error "CR_TEST_SRCDIR must point at the tests/ source directory"
#endif

std::string golden_path(const std::string& name) {
  return std::string(CR_TEST_SRCDIR) + "/passes/golden/" + name + ".ir";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Printed IR after each pass, in pipeline order, plus a final snapshot
// once run_fragment has spliced the init/pre/finalize copy lists.
std::vector<std::pair<std::string, std::string>> snapshot_stencil() {
  exec::CostModel cost;
  rt::Runtime rt(exec::runtime_config(4, 2, cost, /*real_data=*/false));
  apps::stencil::Config cfg;
  cfg.nodes = 4;
  cfg.tasks_per_node = 1;
  cfg.tile_x = 6;
  cfg.tile_y = 6;
  cfg.steps = 2;
  ir::Program program = apps::stencil::build(rt, cfg).program;

  PipelineOptions options;
  options.num_shards = 4;
  PassManager manager = make_pipeline(options, /*to_spmd=*/true);
  PassContext ctx(program, options, /*to_spmd=*/true);
  const ir::PrintOptions print{/*with_decls=*/false, /*show_sync_ids=*/true};

  std::vector<std::pair<std::string, std::string>> snaps;
  int step = 0;
  manager.set_observer([&](const Pass& pass, const ir::Program& p,
                           PassContext&) {
    char tag[64];
    std::snprintf(tag, sizeof(tag), "stencil_%02d_%s", step++, pass.name());
    snaps.emplace_back(tag, ir::to_string(p, print));
  });

  std::vector<Fragment> fragments = find_fragments(program);
  EXPECT_EQ(fragments.size(), 1u);
  for (auto it = fragments.rbegin(); it != fragments.rend(); ++it) {
    manager.run_fragment(program, *it, ctx);
  }
  char tag[64];
  std::snprintf(tag, sizeof(tag), "stencil_%02d_spliced", step++);
  snaps.emplace_back(tag, ir::to_string(program, print));
  return snaps;
}

TEST(GoldenSnapshot, StencilPerPassIR) {
  const bool update = std::getenv("CR_UPDATE_GOLDEN") != nullptr;
  const auto snaps = snapshot_stencil();
  // Every registered pass fired (defaults enable all eight), plus the
  // post-splice snapshot.
  ASSERT_EQ(snaps.size(), 9u);
  for (const auto& [name, text] : snaps) {
    const std::string path = golden_path(name);
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out.is_open()) << "cannot write " << path;
      out << text;
      continue;
    }
    const std::string want = read_file(path);
    ASSERT_FALSE(want.empty())
        << "missing golden " << path
        << " — regenerate with CR_UPDATE_GOLDEN=1";
    EXPECT_EQ(text, want) << "snapshot " << name
                          << " diverged from its golden file";
  }
}

// The ablation toggles flow through PassManager::enable: disabled
// passes do not fire the observer and do not transform.
TEST(GoldenSnapshot, DisabledPassSkipsObserver) {
  exec::CostModel cost;
  rt::Runtime rt(exec::runtime_config(4, 2, cost, /*real_data=*/false));
  apps::stencil::Config cfg;
  cfg.nodes = 4;
  cfg.tasks_per_node = 1;
  cfg.tile_x = 6;
  cfg.tile_y = 6;
  cfg.steps = 2;
  ir::Program program = apps::stencil::build(rt, cfg).program;

  PipelineOptions options;
  options.num_shards = 4;
  options.intersection_opt = false;  // ablation A1
  PassManager manager = make_pipeline(options, /*to_spmd=*/true);
  EXPECT_FALSE(manager.enabled("intersection-opt"));
  PassContext ctx(program, options, /*to_spmd=*/true);

  std::vector<std::string> fired;
  manager.set_observer(
      [&](const Pass& pass, const ir::Program&, PassContext&) {
        fired.push_back(pass.name());
      });
  std::vector<Fragment> fragments = find_fragments(program);
  ASSERT_EQ(fragments.size(), 1u);
  manager.run_fragment(program, fragments.front(), ctx);

  for (const std::string& name : fired) {
    EXPECT_NE(name, "intersection-opt");
  }
  EXPECT_EQ(fired.size(), 7u);  // eight registered minus the disabled one
}

}  // namespace
}  // namespace cr::passes
