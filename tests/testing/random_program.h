// Shared random-program generator for the property tests: arbitrary
// region sizes, aliased image partitions through random pointer maps,
// random task sequences with random privileges, optional region and
// scalar reductions. The fuzz test checks the generated programs against
// the sequential oracle; the parallel-backend property test checks that
// every worker count replays the same per-node event order.
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/builder.h"
#include "rt/partition.h"
#include "support/rng.h"

namespace cr::testing {

struct RandomProgram {
  struct RegionInfo {
    rt::RegionId region;
    rt::FieldId field;
    rt::PartitionId primary;                 // disjoint, complete
    std::vector<rt::PartitionId> images;     // aliased
  };
  std::vector<RegionInfo> regions;
  ir::Program program;
  std::vector<ir::ScalarId> scalars;
};

// `min_steps` raises the time-loop trip count floor (same rng draw
// sequence either way): the trace-replay property tests need enough
// iterations for capture → validate → replay to engage, while the
// oracle-comparison fuzz tests keep the default short loops.
inline RandomProgram make_random_program(rt::RegionForest& forest,
                                  support::Rng& rng, uint64_t colors,
                                  uint64_t min_steps = 2) {
  RandomProgram out;
  // At least two regions so tasks can read data they do not write (the
  // inner loops must be interference-free, paper §2.2).
  const size_t num_regions = 2 + rng.next_below(2);
  for (size_t r = 0; r < num_regions; ++r) {
    auto fs = std::make_shared<rt::FieldSpace>();
    rt::FieldId f = fs->add_field("v");
    const uint64_t n = colors * (3 + rng.next_below(6));
    RandomProgram::RegionInfo info;
    info.field = f;
    info.region = forest.create_region(rt::IndexSpace::dense(n), fs,
                                       "R" + std::to_string(r));
    info.primary = rt::partition_equal(forest, info.region, colors,
                                       "P" + std::to_string(r));
    const size_t num_images = rng.next_below(3);
    for (size_t k = 0; k < num_images; ++k) {
      const uint64_t stride = 1 + rng.next_below(n);
      const uint64_t offset = rng.next_below(n);
      const int fanout = 1 + static_cast<int>(rng.next_below(2));
      info.images.push_back(rt::partition_image(
          forest, info.region, info.primary,
          [n, stride, offset, fanout](uint64_t x,
                                      std::vector<uint64_t>& outp) {
            for (int d = 0; d < fanout; ++d) {
              outp.push_back((x * stride + offset + 7 * d) % n);
            }
          },
          "Q" + std::to_string(r) + "_" + std::to_string(k)));
    }
    out.regions.push_back(info);
  }

  ir::ProgramBuilder b(forest, "fuzz");
  using P = rt::Privilege;
  using B = ir::ProgramBuilder;

  ir::ScalarId dt = b.scalar("dt", 1.0);
  ir::ScalarId red = b.scalar("red", 0.0);
  out.scalars = {dt, red};

  // Init tasks: deterministic content per region.
  std::vector<ir::TaskId> init_tasks;
  for (size_t r = 0; r < out.regions.size(); ++r) {
    const uint64_t salt = rng.next_below(1000);
    init_tasks.push_back(b.task(
        "Init" + std::to_string(r),
        {{P::kWriteDiscard, rt::ReduceOp::kSum, {out.regions[r].field}}},
        200, 0.5,
        [salt](ir::TaskContext& ctx) {
          ctx.domain().points().for_each_point([&](uint64_t p) {
            ctx.write_f64(0, 0, p,
                          1.0 + static_cast<double>((p * 13 + salt) % 23));
          });
        }));
  }

  // A pool of random compute tasks.
  struct TaskPlan {
    ir::TaskId id;
    size_t write_region;                      // writes primary of this
    std::vector<std::pair<size_t, size_t>> reads;  // (region, image idx+1;
                                                   // 0 = primary)
    bool has_scalar_red = false;
    bool reads_dt = false;
    int reduce_region = -1;  // >= 0: reduce (sum) into an image of this
    int reduce_image = -1;   // region (distinct from writes/reads)
  };
  std::vector<TaskPlan> plans;
  const size_t num_tasks = 2 + rng.next_below(3);
  for (size_t t = 0; t < num_tasks; ++t) {
    TaskPlan plan;
    plan.write_region = rng.next_below(out.regions.size());
    // Reads come from regions the task does not write (no intra-launch
    // interference); the reduction targets yet another region.
    std::vector<size_t> others;
    for (size_t r = 0; r < out.regions.size(); ++r) {
      if (r != plan.write_region) others.push_back(r);
    }
    const size_t num_reads = 1 + rng.next_below(2);
    for (size_t k = 0; k < num_reads; ++k) {
      const size_t rr = others[rng.next_below(others.size())];
      const size_t img =
          out.regions[rr].images.empty()
              ? 0
              : rng.next_below(out.regions[rr].images.size() + 1);
      plan.reads.push_back({rr, img});
    }
    plan.has_scalar_red = rng.next_bool(0.3);
    plan.reads_dt = rng.next_bool(0.4);
    // Reduce into an image of a region this task neither writes nor
    // reads, when one exists.
    if (rng.next_bool(0.35)) {
      for (size_t r : others) {
        bool read_too = false;
        for (auto& [rr, img] : plan.reads) read_too |= (rr == r);
        if (!read_too && !out.regions[r].images.empty()) {
          plan.reduce_region = static_cast<int>(r);
          plan.reduce_image = static_cast<int>(
              rng.next_below(out.regions[r].images.size()));
          break;
        }
      }
    }

    std::vector<ir::TaskParam> params;
    params.push_back(
        {P::kReadWrite, rt::ReduceOp::kSum,
         {out.regions[plan.write_region].field}});
    for (auto& [rr, img] : plan.reads) {
      params.push_back(
          {P::kReadOnly, rt::ReduceOp::kSum, {out.regions[rr].field}});
    }
    if (plan.reduce_image >= 0) {
      params.push_back(
          {P::kReduce, rt::ReduceOp::kSum,
           {out.regions[static_cast<size_t>(plan.reduce_region)].field}});
    }

    const size_t num_reads_copy = plan.reads.size();
    const bool scalar_red = plan.has_scalar_red;
    const bool reads_dt = plan.reads_dt;
    const bool has_reduce = plan.reduce_image >= 0;
    plan.id = b.task(
        "T" + std::to_string(t), params, 300, 0.7,
        [num_reads_copy, scalar_red, reads_dt, has_reduce](
            ir::TaskContext& ctx) {
          double local = 0;
          ctx.domain().points().for_each_point([&](uint64_t p) {
            double acc = ctx.read_f64(0, 0, p) * 0.5;
            for (size_t k = 0; k < num_reads_copy; ++k) {
              const auto& dom = ctx.param_domain(1 + k);
              if (dom.empty()) continue;
              // A deterministic in-domain neighbor of p.
              const uint64_t q = dom.point_at(p % dom.size());
              acc += 0.25 * ctx.read_f64(1 + k, 0, q);
            }
            if (reads_dt) acc += ctx.scalar(0);
            // Keep values bounded for tolerant float comparison.
            acc = std::fmod(acc, 97.0) + 1.0;
            ctx.write_f64(0, 0, p, acc);
            local += acc * 1e-3;
          });
          if (has_reduce) {
            const size_t red_param = 1 + num_reads_copy;
            const auto& dom = ctx.param_domain(red_param);
            dom.points().for_each_point([&](uint64_t q) {
              ctx.reduce_f64(red_param, 0, q,
                             1e-2 * static_cast<double>(q % 11));
            });
          }
          if (scalar_red) ctx.reduce_scalar(local);
        });
    plans.push_back(plan);
  }

  // Body: inits, then the time loop.
  for (size_t r = 0; r < out.regions.size(); ++r) {
    b.index_launch(init_tasks[r], colors,
                   {B::arg(out.regions[r].primary, P::kWriteDiscard,
                           {out.regions[r].field})});
  }
  const uint64_t steps = min_steps + rng.next_below(2);
  b.begin_for_time(steps);
  for (const TaskPlan& plan : plans) {
    std::vector<ir::RegionArg> args;
    args.push_back(B::arg(out.regions[plan.write_region].primary,
                          P::kReadWrite,
                          {out.regions[plan.write_region].field}));
    for (auto& [rr, img] : plan.reads) {
      rt::PartitionId part = img == 0 ? out.regions[rr].primary
                                      : out.regions[rr].images[img - 1];
      if (img == 0 && rng.next_bool(0.3)) {
        // Exercise projection normalization: read p[(i+1) mod colors].
        args.push_back(B::arg_proj(
            part, P::kReadOnly, {out.regions[rr].field},
            [colors](uint64_t i) { return (i + 1) % colors; }, "(i+1)%N"));
        continue;
      }
      args.push_back(B::arg(part, P::kReadOnly, {out.regions[rr].field}));
    }
    if (plan.reduce_image >= 0) {
      const auto& rr = out.regions[static_cast<size_t>(plan.reduce_region)];
      args.push_back(
          B::arg(rr.images[static_cast<size_t>(plan.reduce_image)],
                 P::kReduce, {rr.field}, rt::ReduceOp::kSum));
    }
    std::vector<ir::ScalarId> scalar_args;
    if (plan.reads_dt) scalar_args.push_back(dt);
    if (plan.has_scalar_red) {
      b.index_launch_red(plan.id, colors, std::move(args),
                         {red, rt::ReduceOp::kSum}, std::move(scalar_args));
      // Update dt from the reduction (replicated scalar op).
      b.scalar_op({red}, {dt},
                  [](const std::vector<double>& in, std::vector<double>& o) {
                    o[0] = 1.0 + std::fmod(in[1], 3.0) * 0.125;
                  },
                  "dt_update");
    } else {
      b.index_launch(plan.id, colors, std::move(args),
                     std::move(scalar_args));
    }
  }
  b.end_for_time();
  out.program = b.finish();
  return out;
}

}  // namespace cr::testing
