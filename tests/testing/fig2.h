// Shared test fixture: the paper's Figure 2 program.
//
//   task TF(B: region, A: region) where reads writes(B), reads(A):
//     for i in SU: B[i] = F(A[i])
//   task TG(A: region, B: region) where reads writes(A), reads(B):
//     for j in SU: A[j] = G(B[h(j)])
//   main:
//     PA = block(A, I); PB = block(B, I); QB = image(B, PB, h)
//     for t = 0, T: { for i in I: TF(PB[i], PA[i]);
//                     for j in I: TG(PA[j], QB[j]) }
//
// F, G and h are concrete here so executions are checkable: h is a
// shifted neighbor map (aliasing across blocks), F doubles, G sums the
// neighbor value with 1.
#pragma once

#include <memory>

#include "ir/builder.h"
#include "rt/partition.h"
#include "rt/runtime.h"

namespace cr::testing {

struct Fig2 {
  static constexpr uint64_t kShift = 3;

  rt::RegionForest* forest = nullptr;
  std::shared_ptr<rt::FieldSpace> fsa, fsb;
  rt::FieldId fa, fb;
  rt::RegionId a, b;
  rt::PartitionId pa, pb, qb;
  ir::TaskId t_init, t_f, t_g;
  ir::Program program;

  // n: elements per region; colors: |I|; steps: T.
  Fig2(rt::RegionForest& f, uint64_t n, uint64_t colors, uint64_t steps) {
    forest = &f;
    fsa = std::make_shared<rt::FieldSpace>();
    fa = fsa->add_field("va");
    fsb = std::make_shared<rt::FieldSpace>();
    fb = fsb->add_field("vb");
    a = f.create_region(rt::IndexSpace::dense(n), fsa, "A");
    b = f.create_region(rt::IndexSpace::dense(n), fsb, "B");
    pa = rt::partition_equal(f, a, colors, "PA");
    pb = rt::partition_equal(f, b, colors, "PB");
    const uint64_t size = n;
    qb = rt::partition_image(
        f, b, pb,
        [size](uint64_t x, std::vector<uint64_t>& out) {
          out.push_back(h(x, size));
        },
        "QB");

    ir::ProgramBuilder pbld(f, "fig2");
    using P = rt::Privilege;
    t_init = pbld.task(
        "TInit", {{P::kWriteDiscard, rt::ReduceOp::kSum, {fa}}}, 500, 0.5,
        [](ir::TaskContext& ctx) {
          ctx.domain().points().for_each_point([&](uint64_t p) {
            ctx.write_f64(0, 0, p, static_cast<double>(p % 17) + 1.0);
          });
        });
    t_f = pbld.task(
        "TF",
        {{P::kReadWrite, rt::ReduceOp::kSum, {fb}},
         {P::kReadOnly, rt::ReduceOp::kSum, {fa}}},
        1000, 1.0,
        [](ir::TaskContext& ctx) {
          ctx.domain().points().for_each_point([&](uint64_t p) {
            ctx.write_f64(0, 0, p, 2.0 * ctx.read_f64(1, 0, p));
          });
        });
    t_g = pbld.task(
        "TG",
        {{P::kReadWrite, rt::ReduceOp::kSum, {fa}},
         {P::kReadOnly, rt::ReduceOp::kSum, {fb}}},
        1000, 1.0,
        [size](ir::TaskContext& ctx) {
          ctx.domain().points().for_each_point([&](uint64_t p) {
            ctx.write_f64(0, 0, p, ctx.read_f64(1, 0, h(p, size)) + 1.0);
          });
        });

    using B = ir::ProgramBuilder;
    pbld.index_launch(t_init, colors,
                      {B::arg(pa, P::kWriteDiscard, {fa})});
    pbld.begin_for_time(steps);
    pbld.index_launch(t_f, colors,
                      {B::arg(pb, P::kReadWrite, {fb}),
                       B::arg(pa, P::kReadOnly, {fa})});
    pbld.index_launch(t_g, colors,
                      {B::arg(pa, P::kReadWrite, {fa}),
                       B::arg(qb, P::kReadOnly, {fb})});
    pbld.end_for_time();
    program = pbld.finish();
  }

  static uint64_t h(uint64_t x, uint64_t n) { return (x + kShift) % n; }
};

}  // namespace cr::testing
