// Property test for the windowed multi-worker backend: for randomized
// small IR programs (the fuzz generator's region/partition/task soup),
// every worker count must replay the exact per-node event execution
// order of the single-worker windowed run — not just the same final
// metrics. The ExecRecord log (sim::Simulator::set_exec_log) is the
// witness: one lane per simulated node plus the global lane, each entry
// the (time, creator, cseq) key the scheduler ordered by.
#include <gtest/gtest.h>

#include <vector>

#include "exec/implicit_exec.h"
#include "support/rng.h"
#include "testing/random_program.h"

namespace cr::exec {
namespace {

using testing::RandomProgram;
using testing::make_random_program;

struct WitnessedRun {
  std::vector<std::vector<sim::ExecRecord>> log;
  ExecutionResult result;
};

WitnessedRun run_witnessed(uint64_t seed, uint32_t workers) {
  support::Rng rng(seed * 9176 + 3);
  const uint32_t nodes = 2 + static_cast<uint32_t>(rng.next_below(3));
  const uint64_t colors = nodes + rng.next_below(nodes + 1);

  CostModel cost;
  cost.track_dependences = false;
  rt::Runtime rt(runtime_config(nodes, 3, cost, /*real_data=*/false));
  support::Rng rng_prog = rng.split(1);
  RandomProgram rp = make_random_program(rt.forest(), rng_prog, colors);
  for (auto& t : rp.program.tasks) t.kernel = nullptr;

  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = ExecMode::kSpmd;
  cfg.workers = workers;
  PreparedRun run = prepare(rt, rp.program, cfg);
  WitnessedRun out;
  rt.sim().set_exec_log(&out.log);
  out.result = run.run();
  rt.sim().set_exec_log(nullptr);
  return out;
}

class ParallelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelProperty, WorkerCountsReplayIdenticalEventOrders) {
  const uint64_t seed = GetParam();
  const WitnessedRun ref = run_witnessed(seed, 1);
  ASSERT_FALSE(ref.log.empty());
  size_t total = 0;
  for (const auto& lane : ref.log) total += lane.size();
  ASSERT_GT(total, 0u) << "seed " << seed << ": nothing executed";

  for (const uint32_t workers : {2u, 4u}) {
    const WitnessedRun res = run_witnessed(seed, workers);
    ASSERT_EQ(res.log.size(), ref.log.size())
        << "seed " << seed << " workers=" << workers;
    for (size_t lane = 0; lane < ref.log.size(); ++lane) {
      EXPECT_EQ(res.log[lane], ref.log[lane])
          << "seed " << seed << " workers=" << workers << " lane " << lane;
    }
    EXPECT_EQ(res.result.makespan_ns, ref.result.makespan_ns)
        << "seed " << seed << " workers=" << workers;
    EXPECT_EQ(res.result.metrics, ref.result.metrics)
        << "seed " << seed << " workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace cr::exec
