// Property test for the windowed multi-worker backend: for randomized
// small IR programs (the fuzz generator's region/partition/task soup),
// every worker count must replay the exact per-node event execution
// order of the single-worker windowed run — not just the same final
// metrics. The ExecRecord log (sim::Simulator::set_exec_log) is the
// witness: one lane per simulated node plus the global lane, each entry
// the (time, creator, cseq) key the scheduler ordered by.
#include <gtest/gtest.h>

#include <vector>

#include "exec/implicit_exec.h"
#include "support/rng.h"
#include "testing/random_program.h"

namespace cr::exec {
namespace {

using testing::RandomProgram;
using testing::make_random_program;

struct WitnessedRun {
  std::vector<std::vector<sim::ExecRecord>> log;
  ExecutionResult result;
};

WitnessedRun run_witnessed(uint64_t seed, uint32_t workers,
                           bool adaptive = true) {
  support::Rng rng(seed * 9176 + 3);
  const uint32_t nodes = 2 + static_cast<uint32_t>(rng.next_below(3));
  const uint64_t colors = nodes + rng.next_below(nodes + 1);

  CostModel cost;
  cost.track_dependences = false;
  rt::Runtime rt(runtime_config(nodes, 3, cost, /*real_data=*/false));
  support::Rng rng_prog = rng.split(1);
  RandomProgram rp = make_random_program(rt.forest(), rng_prog, colors);
  for (auto& t : rp.program.tasks) t.kernel = nullptr;

  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = ExecMode::kSpmd;
  cfg.workers = workers;
  cfg.adaptive_window = adaptive;
  PreparedRun run = prepare(rt, rp.program, cfg);
  WitnessedRun out;
  rt.sim().set_exec_log(&out.log);
  out.result = run.run();
  rt.sim().set_exec_log(nullptr);
  return out;
}

class ParallelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelProperty, WorkerCountsReplayIdenticalEventOrders) {
  const uint64_t seed = GetParam();
  const WitnessedRun ref = run_witnessed(seed, 1);
  ASSERT_FALSE(ref.log.empty());
  size_t total = 0;
  for (const auto& lane : ref.log) total += lane.size();
  ASSERT_GT(total, 0u) << "seed " << seed << ": nothing executed";

  for (const uint32_t workers : {2u, 4u}) {
    const WitnessedRun res = run_witnessed(seed, workers);
    ASSERT_EQ(res.log.size(), ref.log.size())
        << "seed " << seed << " workers=" << workers;
    for (size_t lane = 0; lane < ref.log.size(); ++lane) {
      EXPECT_EQ(res.log[lane], ref.log[lane])
          << "seed " << seed << " workers=" << workers << " lane " << lane;
    }
    EXPECT_EQ(res.result.makespan_ns, ref.result.makespan_ns)
        << "seed " << seed << " workers=" << workers;
    EXPECT_EQ(res.result.metrics, ref.result.metrics)
        << "seed " << seed << " workers=" << workers;
  }
}

// The adaptive per-lane horizon must execute the exact same per-lane
// event orders as the reference global window — the window boundaries
// are a synchronization schedule, not a semantic input. A violation of
// the horizon's conservative-safety invariant (a cross-node message
// landing inside a lane's already-executed past) aborts via CR_CHECK,
// so these seeds double as a randomized soundness probe for the fixed
// point in Simulator::compute_window_ends: the random programs exercise
// cross-node send/react feedback chains, scalar reductions through
// collectives, and region reductions the four paper apps don't.
TEST_P(ParallelProperty, AdaptiveWindowsReplayReferenceOrders) {
  const uint64_t seed = GetParam();
  const WitnessedRun ref = run_witnessed(seed, 1, /*adaptive=*/false);
  for (const uint32_t workers : {1u, 2u, 4u}) {
    const WitnessedRun res = run_witnessed(seed, workers, /*adaptive=*/true);
    ASSERT_EQ(res.log.size(), ref.log.size())
        << "seed " << seed << " workers=" << workers;
    for (size_t lane = 0; lane < ref.log.size(); ++lane) {
      EXPECT_EQ(res.log[lane], ref.log[lane])
          << "seed " << seed << " workers=" << workers << " lane " << lane;
    }
    EXPECT_EQ(res.result.makespan_ns, ref.result.makespan_ns)
        << "seed " << seed << " workers=" << workers;
    // Wider windows are the whole point: the adaptive policy must never
    // need more boundary synchronizations than the reference policy.
    const auto rw = res.result.metrics.find("sim.windows");
    const auto bw = ref.result.metrics.find("sim.windows");
    ASSERT_NE(rw, res.result.metrics.end());
    ASSERT_NE(bw, ref.result.metrics.end());
    EXPECT_LE(rw->second, bw->second)
        << "seed " << seed << " workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace cr::exec
