// Property test for the windowed multi-worker backend: for randomized
// small IR programs (the fuzz generator's region/partition/task soup),
// every worker count must replay the exact per-node event execution
// order of the single-worker windowed run — not just the same final
// metrics. The ExecRecord log (sim::Simulator::set_exec_log) is the
// witness: one lane per simulated node plus the global lane, each entry
// the (time, creator, cseq) key the scheduler ordered by.
#include <gtest/gtest.h>

#include <vector>

#include "exec/implicit_exec.h"
#include "support/rng.h"
#include "testing/random_program.h"

namespace cr::exec {
namespace {

using testing::RandomProgram;
using testing::make_random_program;

struct WitnessedRun {
  std::vector<std::vector<sim::ExecRecord>> log;
  ExecutionResult result;
};

WitnessedRun run_witnessed(uint64_t seed, uint32_t workers,
                           bool adaptive = true, bool elide = true) {
  support::Rng rng(seed * 9176 + 3);
  const uint32_t nodes = 2 + static_cast<uint32_t>(rng.next_below(3));
  const uint64_t colors = nodes + rng.next_below(nodes + 1);

  CostModel cost;
  cost.track_dependences = false;
  rt::Runtime rt(runtime_config(nodes, 3, cost, /*real_data=*/false));
  support::Rng rng_prog = rng.split(1);
  RandomProgram rp = make_random_program(rt.forest(), rng_prog, colors);
  for (auto& t : rp.program.tasks) t.kernel = nullptr;

  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = ExecMode::kSpmd;
  cfg.workers = workers;
  cfg.adaptive_window = adaptive;
  cfg.elide_boundaries = elide;
  PreparedRun run = prepare(rt, rp.program, cfg);
  WitnessedRun out;
  rt.sim().set_exec_log(&out.log);
  out.result = run.run();
  rt.sim().set_exec_log(nullptr);
  return out;
}

class ParallelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelProperty, WorkerCountsReplayIdenticalEventOrders) {
  const uint64_t seed = GetParam();
  const WitnessedRun ref = run_witnessed(seed, 1);
  ASSERT_FALSE(ref.log.empty());
  size_t total = 0;
  for (const auto& lane : ref.log) total += lane.size();
  ASSERT_GT(total, 0u) << "seed " << seed << ": nothing executed";

  for (const uint32_t workers : {2u, 4u}) {
    const WitnessedRun res = run_witnessed(seed, workers);
    ASSERT_EQ(res.log.size(), ref.log.size())
        << "seed " << seed << " workers=" << workers;
    for (size_t lane = 0; lane < ref.log.size(); ++lane) {
      EXPECT_EQ(res.log[lane], ref.log[lane])
          << "seed " << seed << " workers=" << workers << " lane " << lane;
    }
    EXPECT_EQ(res.result.makespan_ns, ref.result.makespan_ns)
        << "seed " << seed << " workers=" << workers;
    EXPECT_EQ(res.result.metrics, ref.result.metrics)
        << "seed " << seed << " workers=" << workers;
  }
}

// The adaptive per-lane horizon must execute the exact same per-lane
// event orders as the reference global window — the window boundaries
// are a synchronization schedule, not a semantic input. A violation of
// the horizon's conservative-safety invariant (a cross-node message
// landing inside a lane's already-executed past) aborts via CR_CHECK,
// so these seeds double as a randomized soundness probe for the fixed
// point in Simulator::compute_window_ends: the random programs exercise
// cross-node send/react feedback chains, scalar reductions through
// collectives, and region reductions the four paper apps don't.
TEST_P(ParallelProperty, AdaptiveWindowsReplayReferenceOrders) {
  const uint64_t seed = GetParam();
  const WitnessedRun ref = run_witnessed(seed, 1, /*adaptive=*/false);
  for (const uint32_t workers : {1u, 2u, 4u}) {
    const WitnessedRun res = run_witnessed(seed, workers, /*adaptive=*/true);
    ASSERT_EQ(res.log.size(), ref.log.size())
        << "seed " << seed << " workers=" << workers;
    for (size_t lane = 0; lane < ref.log.size(); ++lane) {
      EXPECT_EQ(res.log[lane], ref.log[lane])
          << "seed " << seed << " workers=" << workers << " lane " << lane;
    }
    EXPECT_EQ(res.result.makespan_ns, ref.result.makespan_ns)
        << "seed " << seed << " workers=" << workers;
    // Wider windows are the whole point: the adaptive policy must never
    // need more boundary synchronizations than the reference policy.
    const auto rw = res.result.metrics.find("sim.windows");
    const auto bw = ref.result.metrics.find("sim.windows");
    ASSERT_NE(rw, res.result.metrics.end());
    ASSERT_NE(bw, ref.result.metrics.end());
    EXPECT_LE(rw->second, bw->second)
        << "seed " << seed << " workers=" << workers;
  }
}

// Boundary elision on the random-program soup: whatever boundaries the
// planner decides to fuse, the per-lane (time, creator, cseq) replay
// must be untouched, and the window accounting must stay coherent —
// elision only ever removes full boundaries (windows_elide <=
// windows_ref), the no-elide run never reports an elided boundary, and
// the elision count is identical at every worker count (the plan is a
// pure function of boundary-time state, so it cannot depend on how many
// host threads execute it).
TEST_P(ParallelProperty, ElisionPreservesReplayAndCountsDeterministically) {
  const uint64_t seed = GetParam();
  const WitnessedRun ref =
      run_witnessed(seed, 1, /*adaptive=*/true, /*elide=*/false);
  const auto metric = [](const WitnessedRun& r, const char* key) {
    const auto it = r.result.metrics.find(key);
    return it != r.result.metrics.end() ? it->second : -1.0;
  };
  ASSERT_GE(metric(ref, "sim.windows"), 0.0) << "seed " << seed;
  EXPECT_EQ(metric(ref, "sim.windows_elided"), 0.0) << "seed " << seed;
  double elided_at_w1 = -1;
  for (const uint32_t workers : {1u, 2u, 4u}) {
    const WitnessedRun res =
        run_witnessed(seed, workers, /*adaptive=*/true, /*elide=*/true);
    ASSERT_EQ(res.log.size(), ref.log.size())
        << "seed " << seed << " workers=" << workers;
    for (size_t lane = 0; lane < ref.log.size(); ++lane) {
      EXPECT_EQ(res.log[lane], ref.log[lane])
          << "seed " << seed << " workers=" << workers << " lane " << lane;
    }
    EXPECT_EQ(res.result.makespan_ns, ref.result.makespan_ns)
        << "seed " << seed << " workers=" << workers;
    const double elided = metric(res, "sim.windows_elided");
    EXPECT_GE(elided, 0.0) << "seed " << seed << " workers=" << workers;
    EXPECT_LE(metric(res, "sim.windows"), metric(ref, "sim.windows"))
        << "seed " << seed << " workers=" << workers;
    if (elided_at_w1 < 0) {
      elided_at_w1 = elided;
    } else {
      EXPECT_EQ(elided, elided_at_w1)
          << "seed " << seed << " workers=" << workers
          << ": elision plan depends on the worker count";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace cr::exec
