// Whole-execution determinism: the simulator breaks ties by insertion
// order and every random stream is seeded, so a configuration replays
// bit-for-bit — timelines, traffic, and data.
#include <gtest/gtest.h>

#include "apps/circuit/circuit.h"
#include "exec/spmd_exec.h"
#include "testing/fig2.h"

namespace cr::exec {
namespace {

struct ReplayResult {
  sim::Time makespan;
  uint64_t bytes;
  uint64_t messages;
  std::vector<double> data;
};

ReplayResult run_once(bool spmd) {
  CostModel cost;
  rt::Runtime rt(runtime_config(4, 4, cost, /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), 48, 8, 3);
  PreparedRun run = spmd ? prepare_spmd(rt, fig.program, cost, {})
                         : prepare_implicit(rt, fig.program, cost, {});
  ExecutionResult res = run.run();
  ReplayResult out;
  out.makespan = res.makespan_ns;
  out.bytes = res.bytes_moved;
  out.messages = res.messages;
  for (uint64_t p = 0; p < 48; ++p) {
    out.data.push_back(run.engine->read_root_f64(fig.a, fig.fa, p));
    out.data.push_back(run.engine->read_root_f64(fig.b, fig.fb, p));
  }
  return out;
}

TEST(Determinism, SpmdReplaysBitForBit) {
  ReplayResult a = run_once(true);
  ReplayResult b = run_once(true);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.data, b.data);
}

TEST(Determinism, ImplicitReplaysBitForBit) {
  ReplayResult a = run_once(false);
  ReplayResult b = run_once(false);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.data, b.data);
}

TEST(Determinism, CircuitGraphAndExecutionReplay) {
  auto once = [] {
    CostModel cost;
    rt::Runtime rt(runtime_config(3, 4, cost, true));
    apps::circuit::Config cfg;
    cfg.nodes = 3;
    cfg.pieces_per_node = 2;
    cfg.nodes_per_piece = 20;
    cfg.wires_per_piece = 50;
    cfg.steps = 2;
    auto app = apps::circuit::build(rt, cfg);
    PreparedRun run = prepare_spmd(rt, app.program, cost, {});
    ExecutionResult res = run.run();
    std::vector<double> v;
    for (uint64_t n = 0; n < app.graph.num_nodes(); ++n) {
      v.push_back(run.engine->read_root_f64(app.rn, app.f_voltage, n));
    }
    return std::make_pair(res.makespan_ns, v);
  };
  auto a = once();
  auto b = once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace cr::exec
