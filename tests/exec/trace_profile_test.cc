// Profiling-subsystem tests at the engine level: tracing must never
// perturb virtual time, and the aggregated breakdown must account for
// all machine time.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "exec/spmd_exec.h"
#include "testing/fig2.h"

namespace cr::exec {
namespace {

struct TracedRun {
  sim::Time makespan = 0;
  support::TraceSummary summary;
};

sim::Time run_fig2(bool spmd, bool traced, uint32_t nodes,
                   support::TraceSummary* summary = nullptr) {
  CostModel cost;
  cost.track_dependences = false;
  rt::Runtime rt(runtime_config(nodes, 4, cost, /*real_data=*/false));
  testing::Fig2 fig(rt.forest(), 64 * nodes, 4 * nodes, 4);
  for (auto& t : fig.program.tasks) {
    t.kernel = nullptr;
    t.cost_base_ns = 2e6;
  }
  PreparedRun run = spmd ? prepare_spmd(rt, fig.program, cost, {})
                         : prepare_implicit(rt, fig.program, cost, {});
  if (traced) run.engine->enable_trace();
  const sim::Time makespan = run.run().makespan_ns;
  if (traced && summary != nullptr) {
    *summary = run.engine->trace_summary();
  }
  return makespan;
}

TEST(TraceProfile, TracingDoesNotPerturbVirtualTime) {
  for (const bool spmd : {false, true}) {
    const sim::Time off = run_fig2(spmd, /*traced=*/false, 4);
    const sim::Time on = run_fig2(spmd, /*traced=*/true, 4);
    EXPECT_EQ(on, off) << (spmd ? "spmd" : "implicit");
  }
}

TEST(TraceProfile, BreakdownAccountsForAllMachineTime) {
  support::TraceSummary s;
  const sim::Time makespan = run_fig2(true, true, 4, &s);
  const support::TraceBreakdown& b = s.breakdown;
  EXPECT_EQ(b.makespan, makespan);
  EXPECT_GT(b.tracks, 0u);
  const double sum = b.compute_ns + b.copy_ns + b.sync_ns + b.idle_ns;
  ASSERT_GT(b.total_ns, 0.0);
  EXPECT_NEAR(sum, b.total_ns, 0.01 * b.total_ns);  // within 1% (exact)
  EXPECT_GT(b.compute_ns, 0.0);  // point tasks ran
  EXPECT_GT(b.sync_ns, 0.0);     // control-plane issue charges
  const double fsum =
      b.compute_frac() + b.copy_frac() + b.sync_frac() + b.idle_frac();
  EXPECT_NEAR(fsum, 1.0, 0.01);
}

TEST(TraceProfile, CriticalPathIsDerived) {
  support::TraceSummary s;
  run_fig2(true, true, 4, &s);
  EXPECT_GT(s.cp_spans, 0u);
  EXPECT_GT(s.cp_compute_ns + s.cp_copy_ns + s.cp_sync_ns + s.cp_wait_ns,
            0.0);
  EXPECT_FALSE(s.cp_top.empty());
  const std::string text = s.to_text();
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

TEST(TraceProfile, ChromeJsonNamesNodesAndTracks) {
  CostModel cost;
  cost.track_dependences = false;
  rt::Runtime rt(runtime_config(2, 4, cost, /*real_data=*/false));
  testing::Fig2 fig(rt.forest(), 32, 8, 2);
  for (auto& t : fig.program.tasks) t.kernel = nullptr;
  PreparedRun run = prepare_spmd(rt, fig.program, cost, {});
  run.engine->enable_trace();
  run.run();
  const std::string path = ::testing::TempDir() + "/cr_profile.json";
  run.engine->write_trace(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("node 0"), std::string::npos);
  EXPECT_NE(text.find("shard 1 (control)"), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"sync\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cr::exec
