// Cross-mode equivalence harness for the windowed multi-worker backend
// (DESIGN.md "Deterministic multi-worker backend"): for each of the four
// paper apps, every worker count must produce the same virtual timeline
// as the single-worker windowed run — bit-identical makespans, metrics
// snapshots, and race-checker verdicts. The worker count may change
// which host thread delivers an event, never what the event does or
// when it happens in virtual time.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "apps/circuit/circuit.h"
#include "apps/miniaero/miniaero.h"
#include "apps/pennant/pennant.h"
#include "apps/stencil/stencil.h"
#include "exec/implicit_exec.h"

namespace cr::exec {
namespace {

ir::Program build_app(rt::Runtime& rt, const std::string& app,
                      uint32_t nodes) {
  if (app == "stencil") {
    apps::stencil::Config cfg;
    cfg.nodes = nodes;
    cfg.tasks_per_node = 2;
    cfg.tile_x = 16;
    cfg.tile_y = 16;
    cfg.steps = 2;
    return apps::stencil::build(rt, cfg).program;
  }
  if (app == "circuit") {
    apps::circuit::Config cfg;
    cfg.nodes = nodes;
    cfg.pieces_per_node = 2;
    cfg.nodes_per_piece = 16;
    cfg.wires_per_piece = 32;
    cfg.steps = 2;
    return apps::circuit::build(rt, cfg).program;
  }
  if (app == "pennant") {
    apps::pennant::Config cfg;
    cfg.nodes = nodes;
    cfg.pieces_per_node = 2;
    cfg.zones_x_per_piece = 6;
    cfg.zones_y = 6;
    cfg.steps = 2;
    return apps::pennant::build(rt, cfg).program;
  }
  apps::miniaero::Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 2;
  cfg.cells_x_per_piece = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 4;
  cfg.steps = 2;
  return apps::miniaero::build(rt, cfg).program;
}

ExecutionResult run_app(const std::string& app, uint32_t workers,
                        bool replay = false, bool adaptive = true,
                        bool host_profile = false, bool watchdog = false,
                        bool elide = true) {
  CostModel cost;
  cost.track_dependences = false;
  const uint32_t nodes = 4;
  rt::Runtime rt(runtime_config(nodes, 4, cost, /*real_data=*/false));
  ir::Program program = build_app(rt, app, nodes);
  for (auto& t : program.tasks) t.kernel = nullptr;
  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = ExecMode::kSpmd;
  cfg.workers = workers;
  cfg.check = true;
  cfg.trace_replay = replay;
  cfg.adaptive_window = adaptive;
  cfg.elide_boundaries = elide;
  cfg.host_profile = host_profile;
  // A budget far above any test run's wall time: the watchdog thread
  // runs but must never fire (and must never perturb the timeline).
  cfg.watchdog_ms = watchdog ? 60000 : 0;
  PreparedRun run = prepare(rt, std::move(program), cfg);
  return run.run();
}

// Metrics that legitimately depend on the window *structure* rather than
// the simulated timeline: the boundary-sampled queue-depth gauge and the
// window count. Cross-policy comparisons strip them; same-policy
// comparisons across worker counts keep the full snapshot.
std::map<std::string, double> without_window_shape(
    std::map<std::string, double> m) {
  m.erase("sim.queue.max_depth");
  m.erase("sim.windows");
  m.erase("sim.windows_elided");
  return m;
}

// Worker counts required by the equivalence contract: 1, 2, 4 and the
// host's hardware concurrency (deduplicated).
std::vector<uint32_t> worker_counts() {
  std::vector<uint32_t> counts = {1, 2, 4};
  const uint32_t hw = std::thread::hardware_concurrency();
  if (hw > 0 && hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

void expect_bit_identical(const std::string& app) {
  // Reference point: adaptive windows, one worker. The grid runs both
  // window policies at every worker count; within a policy everything
  // (including window-shaped gauges) must match the policy's own
  // single-worker run, and across policies everything except the
  // window-shaped gauges must match too — same timeline, different
  // synchronization schedule.
  const ExecutionResult ref = run_app(app, 1);
  ASSERT_GT(ref.makespan_ns, 0u);
  ASSERT_GT(ref.point_tasks, 0u);
  ASSERT_NE(ref.check, nullptr);
  const ExecutionResult ref_global =
      run_app(app, 1, /*replay=*/false, /*adaptive=*/false);
  EXPECT_EQ(ref_global.makespan_ns, ref.makespan_ns) << app << " cross-mode";
  EXPECT_EQ(without_window_shape(ref_global.metrics),
            without_window_shape(ref.metrics))
      << app << " cross-mode";
  for (const bool adaptive : {true, false}) {
    const ExecutionResult& base = adaptive ? ref : ref_global;
    for (const uint32_t w : worker_counts()) {
      if (w == 1) continue;
      const ExecutionResult res =
          run_app(app, w, /*replay=*/false, adaptive);
      const std::string where = app + (adaptive ? " adaptive" : " global") +
                                " workers=" + std::to_string(w);
      EXPECT_EQ(res.makespan_ns, base.makespan_ns) << where;
      EXPECT_EQ(res.point_tasks, base.point_tasks) << where;
      EXPECT_EQ(res.bytes_moved, base.bytes_moved) << where;
      EXPECT_EQ(res.messages, base.messages) << where;
      // The full metrics snapshot — every sim./rt./exec./check. counter —
      // must match key for key, value for value.
      EXPECT_EQ(res.metrics, base.metrics) << where;
      // Identical race-checker verdict.
      ASSERT_NE(res.check, nullptr) << where;
      EXPECT_EQ(res.check->ok(), base.check->ok()) << where;
      EXPECT_EQ(res.check->races.size(), base.check->races.size()) << where;
      EXPECT_EQ(res.check->stats.accesses, base.check->stats.accesses)
          << where;
      EXPECT_EQ(res.check->stats.pairs_checked,
                base.check->stats.pairs_checked)
          << where;
    }
  }
}

// Boundary elision (backend v3) must be invisible in virtual time: for
// every app, every worker count in {0, 1, 4, hw} must produce the same
// makespan, metrics (modulo the window-shape gauges, which elision
// changes by design) and checker verdict with elision on and off.
// Within one elision setting the windowed runs (w >= 1) must match the
// setting's own single-worker run bit for bit, window shape included;
// at w == 0 the flag must be perfectly inert (the sequential path never
// windows), so the full snapshots must be equal.
TEST(ParallelEquivalence, BoundaryElisionIsTimelineNeutral) {
  for (const std::string app : {"stencil", "circuit", "pennant",
                                "miniaero"}) {
    const ExecutionResult ref = run_app(app, 1);  // elision on (default)
    const ExecutionResult ref_off =
        run_app(app, 1, /*replay=*/false, /*adaptive=*/true,
                /*host_profile=*/false, /*watchdog=*/false, /*elide=*/false);
    ASSERT_GT(ref.makespan_ns, 0u) << app;
    EXPECT_EQ(ref_off.makespan_ns, ref.makespan_ns) << app << " cross-elide";
    EXPECT_EQ(without_window_shape(ref_off.metrics),
              without_window_shape(ref.metrics))
        << app << " cross-elide";
    // Elision never runs *more* full windows than the reference
    // protocol, and the reference protocol never elides anything.
    EXPECT_LE(ref.metrics.at("sim.windows"),
              ref_off.metrics.at("sim.windows"))
        << app;
    EXPECT_EQ(ref_off.metrics.at("sim.windows_elided"), 0.0) << app;

    std::vector<uint32_t> counts = {0, 4};
    const uint32_t hw = std::thread::hardware_concurrency();
    if (hw > 1 && hw != 4) counts.push_back(hw);
    for (const uint32_t w : counts) {
      for (const bool elide : {true, false}) {
        const ExecutionResult res =
            run_app(app, w, /*replay=*/false, /*adaptive=*/true,
                    /*host_profile=*/false, /*watchdog=*/false, elide);
        const std::string where = app + (elide ? " elide" : " no-elide") +
                                  " workers=" + std::to_string(w);
        if (w == 0) {
          // Sequential path: the flag touches nothing at all.
          EXPECT_EQ(res.makespan_ns, ref.makespan_ns) << where;
          continue;
        }
        const ExecutionResult& base = elide ? ref : ref_off;
        EXPECT_EQ(res.makespan_ns, base.makespan_ns) << where;
        EXPECT_EQ(res.point_tasks, base.point_tasks) << where;
        EXPECT_EQ(res.bytes_moved, base.bytes_moved) << where;
        EXPECT_EQ(res.messages, base.messages) << where;
        EXPECT_EQ(res.metrics, base.metrics) << where;
        ASSERT_NE(res.check, nullptr) << where;
        EXPECT_EQ(res.check->ok(), base.check->ok()) << where;
        EXPECT_EQ(res.check->races.size(), base.check->races.size())
            << where;
        EXPECT_EQ(res.check->stats.accesses, base.check->stats.accesses)
            << where;
      }
    }
  }
}

TEST(ParallelEquivalence, Stencil) { expect_bit_identical("stencil"); }
TEST(ParallelEquivalence, Circuit) { expect_bit_identical("circuit"); }
TEST(ParallelEquivalence, Pennant) { expect_bit_identical("pennant"); }
TEST(ParallelEquivalence, MiniAero) { expect_bit_identical("miniaero"); }

// ExecConfig::trace_replay must be a structural no-op in SPMD mode
// (dependence analysis does not run there): with the flag on, every
// worker count still matches the replay-off single-worker reference in
// full — including the metrics snapshot, which must not grow
// exec.replay.* keys.
TEST(ParallelEquivalence, ReplayFlagIsInertInSpmd) {
  for (const std::string app : {"stencil", "circuit"}) {
    const ExecutionResult ref = run_app(app, 1, /*replay=*/false);
    ASSERT_NE(ref.check, nullptr);
    for (const uint32_t w : worker_counts()) {
      const ExecutionResult res = run_app(app, w, /*replay=*/true);
      EXPECT_EQ(res.makespan_ns, ref.makespan_ns) << app << " workers=" << w;
      EXPECT_EQ(res.metrics, ref.metrics) << app << " workers=" << w;
      ASSERT_NE(res.check, nullptr) << app << " workers=" << w;
      EXPECT_EQ(res.check->ok(), ref.check->ok()) << app << " workers=" << w;
      EXPECT_EQ(res.check->stats.pairs_checked,
                ref.check->stats.pairs_checked)
          << app << " workers=" << w;
    }
  }
}

// The host-phase profiler and stall watchdog are pure observers: with
// both enabled, every virtual-time quantity — makespan, the full
// metrics snapshot, the checker verdict — must be bit-identical to the
// unobserved run at the same worker count, including workers=0 (the
// sequential SPMD path, where both features are inert no-ops). The
// wall-clock profile must also stay out of the metrics snapshot: that
// map is the bit-stable cross-machine diff surface.
TEST(ParallelEquivalence, HostProfilerAndWatchdogAreObserverNeutral) {
  for (const std::string app : {"stencil", "circuit"}) {
    for (const uint32_t w : {0u, 1u, 4u}) {
      const std::string where = app + " workers=" + std::to_string(w);
      const ExecutionResult ref = run_app(app, w);
      const ExecutionResult res =
          run_app(app, w, /*replay=*/false, /*adaptive=*/true,
                  /*host_profile=*/true, /*watchdog=*/true);
      EXPECT_EQ(res.makespan_ns, ref.makespan_ns) << where;
      EXPECT_EQ(res.point_tasks, ref.point_tasks) << where;
      EXPECT_EQ(res.bytes_moved, ref.bytes_moved) << where;
      EXPECT_EQ(res.messages, ref.messages) << where;
      EXPECT_EQ(res.metrics, ref.metrics) << where;
      ASSERT_NE(res.check, nullptr) << where;
      ASSERT_NE(ref.check, nullptr) << where;
      EXPECT_EQ(res.check->ok(), ref.check->ok()) << where;
      EXPECT_EQ(res.check->races.size(), ref.check->races.size()) << where;
      EXPECT_EQ(res.check->stats.accesses, ref.check->stats.accesses)
          << where;
      for (const auto& [key, value] : res.metrics) {
        EXPECT_NE(key.rfind("host.", 0), 0u)
            << where << ": wall-clock key leaked into metrics: " << key;
      }
      if (w >= 1) {
        // The windowed backend ran: the profile artifact must exist and
        // cover the whole run.
        ASSERT_NE(res.host_profile, nullptr) << where;
        EXPECT_EQ(res.host_profile->workers, w) << where;
        EXPECT_GT(res.host_profile->wall_ns, 0u) << where;
        EXPECT_EQ(res.host_profile->windows,
                  static_cast<uint64_t>(res.metrics.at("sim.windows")))
            << where;
      } else {
        // Sequential path: nothing to profile.
        EXPECT_EQ(res.host_profile, nullptr) << where;
      }
      EXPECT_EQ(ref.host_profile, nullptr) << where;
    }
  }
}

}  // namespace
}  // namespace cr::exec
