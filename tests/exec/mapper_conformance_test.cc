// Conformance suite for the programmable mapper API: every policy in
// the MapperRegistry must produce in-range, deterministic placements
// (a mapper is a pure function of its construction inputs and call
// arguments), the default policy's placements are golden-snapshotted
// (committed baselines depend on them bit-for-bit), and under every
// policy a randomized program must execute bit-identically across
// worker counts — on a heterogeneous machine with an injected slowdown
// window and AM-handler jitter, i.e. the full scenario layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "exec/implicit_exec.h"
#include "rt/mapper.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "testing/random_program.h"

namespace cr::exec {
namespace {

using testing::RandomProgram;
using testing::make_random_program;

// Window-shaped gauges exist only on the windowed backend; strip them
// when comparing the sequential loop against worker runs (the same
// convention as the equivalence tests).
std::map<std::string, double> without_window_shape(
    std::map<std::string, double> m) {
  m.erase("sim.queue.max_depth");
  m.erase("sim.windows");
  m.erase("sim.windows_elided");
  return m;
}

sim::MachineConfig hetero_machine() {
  sim::MachineConfig mc;
  mc.nodes = 4;
  mc.cores_per_node = 3;
  mc.node_speed = {0.5, 1.0, 1.0, 2.0};
  return mc;
}

TEST(MapperRegistry, BuiltInPoliciesAreRegistered) {
  const std::vector<std::string> names =
      rt::MapperRegistry::instance().names();
  for (const char* want : {"default", "balanced", "adversarial", "random"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  }
}

// Every registered policy: placements within the machine, and two
// independently constructed instances agree point-for-point.
TEST(MapperConformance, PlacementsInRangeAndDeterministic) {
  sim::Simulator sim;
  sim::Machine machine(sim, hetero_machine());
  const std::vector<uint64_t> weights = {5, 1, 1, 1, 9, 2,
                                         2, 2, 1, 1, 3, 7};
  for (const std::string& name : rt::MapperRegistry::instance().names()) {
    rt::MapperOptions opt;
    opt.name = name;
    opt.seed = 42;
    const auto a = rt::MapperRegistry::instance().create(machine, opt);
    const auto b = rt::MapperRegistry::instance().create(machine, opt);
    EXPECT_EQ(a->name(), name);
    for (const uint64_t colors : {uint64_t{1}, uint64_t{4}, uint64_t{12}}) {
      const rt::LaunchShape shape{
          colors, colors == weights.size() ? &weights : nullptr};
      for (uint64_t c = 0; c < colors; ++c) {
        const uint32_t node = a->node_of_color(c, shape);
        EXPECT_LT(node, machine.nodes()) << name << " color " << c;
        EXPECT_EQ(node, b->node_of_color(c, shape))
            << name << " color " << c;
      }
    }
    for (uint32_t s = 0; s < 4; ++s) {
      EXPECT_LT(a->shard_node(s, 4), machine.nodes()) << name;
    }
    for (uint64_t seq = 0; seq < 6; ++seq) {
      const sim::ProcId p = a->compute_proc(2, seq);
      EXPECT_EQ(p.node, 2u) << name;
      EXPECT_GE(p.core, 1u) << name;  // core 0 is reserved
      EXPECT_LT(p.core, 3u) << name;
    }
    EXPECT_EQ(a->control_proc(1).core, 0u) << name;
  }
}

// Golden snapshot of the default policy's blocked placement. Changing
// any of these moves point tasks and instances for every committed
// BENCH_metrics baseline — they must stay exactly as before the
// registry existed.
TEST(MapperConformance, DefaultGoldenPlacements) {
  sim::Simulator sim;
  sim::Machine machine(sim, hetero_machine());
  const auto m = rt::MapperRegistry::instance().create(machine, {});
  const std::vector<uint32_t> golden8 = {0, 0, 1, 1, 2, 2, 3, 3};
  const std::vector<uint32_t> golden6 = {0, 0, 1, 1, 2, 3};
  for (uint64_t c = 0; c < 8; ++c) {
    EXPECT_EQ(m->node_of_color(c, 8), golden8[c]) << c;
  }
  for (uint64_t c = 0; c < 6; ++c) {
    EXPECT_EQ(m->node_of_color(c, 6), golden6[c]) << c;
  }
  // Neither per-color weights nor node speeds may move the default
  // placement: it is a function of num_colors alone.
  const std::vector<uint64_t> skewed = {1000, 1, 1, 1, 1, 1, 1, 1};
  for (uint64_t c = 0; c < 8; ++c) {
    EXPECT_EQ(m->node_of_color(c, rt::LaunchShape{8, &skewed}), golden8[c])
        << c;
  }
}

// The balanced policy follows the speed factors: on a 0.5/1/1/2 machine
// the slow node takes the smallest contiguous block and the fast node
// the largest, and blocks stay contiguous (locality-preserving).
TEST(MapperConformance, BalancedFollowsSpeedFactors) {
  sim::Simulator sim;
  sim::Machine machine(sim, hetero_machine());
  const auto m = rt::MapperRegistry::instance().create(
      machine, rt::MapperOptions{.name = "balanced"});
  const uint64_t colors = 36;
  std::vector<uint32_t> count(4, 0);
  uint32_t prev = 0;
  for (uint64_t c = 0; c < colors; ++c) {
    const uint32_t node = m->node_of_color(c, colors);
    ASSERT_GE(node, prev) << "blocks must stay contiguous";
    prev = node;
    ++count[node];
  }
  EXPECT_LT(count[0], count[1]);  // half-speed node gets fewer colors
  EXPECT_LT(count[1], count[3]);  // double-speed node gets more
  // Skewed weights shift the cuts: a launch whose early colors carry
  // almost all of the weight pushes more trailing colors onto the
  // early nodes than the uniform split would.
  std::vector<uint64_t> skewed(colors, 1);
  skewed[0] = 1000;
  std::vector<uint32_t> wcount(4, 0);
  for (uint64_t c = 0; c < colors; ++c) {
    ++wcount[m->node_of_color(c, rt::LaunchShape{colors, &skewed})];
  }
  EXPECT_GT(wcount[3], count[3]);
}

TEST(MapperConformance, AdversarialClustersOnSlowestNode) {
  sim::Simulator sim;
  sim::Machine machine(sim, hetero_machine());
  const auto m = rt::MapperRegistry::instance().create(
      machine, rt::MapperOptions{.name = "adversarial"});
  for (uint64_t c = 0; c < 12; ++c) {
    EXPECT_EQ(m->node_of_color(c, 12), 0u);  // node 0 runs at 0.5x
  }
}

TEST(MapperConformance, RandomIsSeedStable) {
  sim::Simulator sim;
  sim::Machine machine(sim, hetero_machine());
  const auto a = rt::MapperRegistry::instance().create(
      machine, rt::MapperOptions{.name = "random", .seed = 7});
  const auto b = rt::MapperRegistry::instance().create(
      machine, rt::MapperOptions{.name = "random", .seed = 7});
  const auto c = rt::MapperRegistry::instance().create(
      machine, rt::MapperOptions{.name = "random", .seed = 8});
  bool any_diff = false;
  for (uint64_t col = 0; col < 64; ++col) {
    EXPECT_EQ(a->node_of_color(col, 64), b->node_of_color(col, 64));
    any_diff |= a->node_of_color(col, 64) != c->node_of_color(col, 64);
  }
  EXPECT_TRUE(any_diff) << "different seeds should move placements";
}

// --- end-to-end: every policy runs randomized programs bit-identically
// across worker counts under the full scenario layer ------------------

ExecutionResult run_random(uint64_t seed, const std::string& mapper,
                           uint32_t workers) {
  support::Rng rng(seed * 7717 + 11);
  const uint32_t nodes = 3;
  const uint64_t colors = nodes + rng.next_below(2 * nodes);

  CostModel cost;
  cost.track_dependences = false;
  cost.network.am_jitter_ns = 150;
  cost.network.jitter_seed = 5;
  rt::RuntimeConfig rc = runtime_config(nodes, 3, cost, /*real_data=*/false);
  rc.machine.node_speed = {0.5, 1.0, 2.0};
  rc.machine.slowdowns.push_back(
      {/*node=*/1, /*begin=*/10'000, /*end=*/500'000, /*factor=*/3.0});
  rt::Runtime rt(rc);
  support::Rng rng_prog = rng.split(1);
  RandomProgram rp = make_random_program(rt.forest(), rng_prog, colors);
  for (auto& t : rp.program.tasks) t.kernel = nullptr;

  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = ExecMode::kSpmd;
  cfg.workers = workers;
  cfg.check = true;
  cfg.mapper.name = mapper;
  cfg.mapper.seed = 13;
  PreparedRun run = prepare(rt, rp.program, cfg);
  return run.run();
}

class MapperScenario : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapperScenario, WorkerCountsAgreeUnderEveryPolicy) {
  const uint64_t seed = GetParam();
  for (const std::string& mapper :
       rt::MapperRegistry::instance().names()) {
    const ExecutionResult ref = run_random(seed, mapper, /*workers=*/0);
    ASSERT_GT(ref.makespan_ns, 0u) << mapper << " seed " << seed;
    ASSERT_NE(ref.check, nullptr) << mapper;
    EXPECT_TRUE(ref.check->ok()) << mapper << " seed " << seed;
    for (const uint32_t workers : {1u, 4u}) {
      const ExecutionResult res = run_random(seed, mapper, workers);
      const std::string where =
          mapper + " seed " + std::to_string(seed) + " workers " +
          std::to_string(workers);
      EXPECT_EQ(res.makespan_ns, ref.makespan_ns) << where;
      EXPECT_EQ(res.point_tasks, ref.point_tasks) << where;
      EXPECT_EQ(res.bytes_moved, ref.bytes_moved) << where;
      EXPECT_EQ(without_window_shape(res.metrics),
                without_window_shape(ref.metrics))
          << where;
      ASSERT_NE(res.check, nullptr) << where;
      EXPECT_EQ(res.check->ok(), ref.check->ok()) << where;
      EXPECT_EQ(res.check->stats.races, ref.check->stats.races) << where;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperScenario,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace cr::exec
