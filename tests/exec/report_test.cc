#include "exec/report.h"

#include <gtest/gtest.h>

namespace cr::exec {
namespace {

ScalingSeries series(const std::string& name,
                     std::vector<std::pair<uint32_t, double>> pts) {
  ScalingSeries s;
  s.name = name;
  for (auto& [nodes, seconds] : pts) {
    ScalingPoint p;
    p.nodes = nodes;
    p.seconds = seconds;
    p.work_per_node = 1000;
    p.iterations = 1;
    s.points.push_back(p);
  }
  return s;
}

TEST(Report, ThroughputPerNode) {
  ScalingPoint p;
  p.nodes = 4;
  p.seconds = 2.0;
  p.work_per_node = 1000;
  p.iterations = 4;
  EXPECT_DOUBLE_EQ(p.throughput_per_node(), 2000.0);
}

TEST(Report, EfficiencyRelativeToSmallestNodeCount) {
  ScalingSeries s = series("x", {{1, 1.0}, {4, 1.25}, {16, 2.0}});
  EXPECT_DOUBLE_EQ(s.efficiency_at(1), 1.0);
  EXPECT_DOUBLE_EQ(s.efficiency_at(4), 0.8);
  EXPECT_DOUBLE_EQ(s.efficiency_at(16), 0.5);
  EXPECT_DOUBLE_EQ(s.efficiency_at(64), 0.0);  // missing point
}

TEST(Report, TableContainsAllSeriesAndNodeCounts) {
  ScalingReport r;
  r.title = "Fig";
  r.unit = "u";
  r.unit_scale = 1.0;
  r.series.push_back(series("A", {{1, 1.0}, {2, 1.0}}));
  r.series.push_back(series("B", {{2, 2.0}}));
  const std::string t = r.to_table();
  EXPECT_NE(t.find("A (eff)"), std::string::npos);
  EXPECT_NE(t.find("B (eff)"), std::string::npos);
  // B has no 1-node point: rendered as '-'.
  EXPECT_NE(t.find("-"), std::string::npos);
  EXPECT_NE(t.find("Fig"), std::string::npos);
}

TEST(Report, ToSeconds) {
  EXPECT_DOUBLE_EQ(to_seconds(1500000000ull), 1.5);
}

}  // namespace
}  // namespace cr::exec
