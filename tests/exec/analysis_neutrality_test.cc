// Virtual-time neutrality of the analysis fast path: tracing, the
// indexed dependence tracker, the memoization caches, and the race
// checker change how fast the host computes the schedule — never the
// schedule itself. Every combination of {traced, untraced} x {indexed,
// linear-scan} x {checked, unchecked} must produce bit-identical
// simulated makespans and output data.
#include <gtest/gtest.h>

#include "exec/implicit_exec.h"
#include "exec/spmd_exec.h"
#include "testing/fig2.h"

namespace cr::exec {
namespace {

struct Observed {
  sim::Time makespan = 0;
  uint64_t bytes = 0;
  uint64_t messages = 0;
  uint64_t dependences = 0;
  std::vector<double> data;
};

Observed run_fig2(bool spmd, bool traced, bool linear_scan,
                  bool check = false, bool replay = false,
                  uint64_t steps = 3) {
  CostModel cost;
  cost.track_dependences = true;
  rt::Runtime rt(runtime_config(4, 4, cost, /*real_data=*/true));
  rt.deps().set_linear_scan(linear_scan);
  testing::Fig2 fig(rt.forest(), 48, 8, steps);
  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = spmd ? ExecMode::kSpmd : ExecMode::kImplicit;
  cfg.check = check;
  cfg.trace_replay = replay;
  PreparedRun run = prepare(rt, fig.program, cfg);
  if (traced) run.engine->enable_trace();
  ExecutionResult res = run.run();
  if (check) {
    EXPECT_NE(res.check, nullptr);
    EXPECT_TRUE(res.check->ok()) << res.check->to_text();
  }
  Observed out;
  out.makespan = res.makespan_ns;
  out.bytes = res.bytes_moved;
  out.messages = res.messages;
  out.dependences = res.analysis.dep_dependences;
  for (uint64_t p = 0; p < 48; ++p) {
    out.data.push_back(run.engine->read_root_f64(fig.a, fig.fa, p));
    out.data.push_back(run.engine->read_root_f64(fig.b, fig.fb, p));
  }
  return out;
}

TEST(AnalysisNeutrality, ImplicitInvariantAcrossTracingAndIndexing) {
  const Observed ref =
      run_fig2(/*spmd=*/false, /*traced=*/false, /*linear_scan=*/true);
  EXPECT_GT(ref.dependences, 0u);  // the analysis actually ran
  for (const bool traced : {false, true}) {
    for (const bool linear : {true, false}) {
      if (!traced && linear) continue;  // the reference itself
      const Observed got = run_fig2(false, traced, linear);
      EXPECT_EQ(got.makespan, ref.makespan)
          << "traced=" << traced << " linear=" << linear;
      EXPECT_EQ(got.bytes, ref.bytes);
      EXPECT_EQ(got.messages, ref.messages);
      EXPECT_EQ(got.data, ref.data);
      // Same schedule implies the same dependences were discovered.
      EXPECT_EQ(got.dependences, ref.dependences);
    }
  }
}

// The race checker records every instance access plus the HB event
// graph — all host-side bookkeeping. The virtual timeline with the
// checker on must be bit-identical to the checker-off reference.
TEST(AnalysisNeutrality, CheckerInvariantImplicitAndSpmd) {
  for (const bool spmd : {false, true}) {
    const Observed ref =
        run_fig2(spmd, /*traced=*/false, /*linear_scan=*/false);
    const Observed got = run_fig2(spmd, /*traced=*/false,
                                  /*linear_scan=*/false, /*check=*/true);
    EXPECT_EQ(got.makespan, ref.makespan) << "spmd=" << spmd;
    EXPECT_EQ(got.bytes, ref.bytes);
    EXPECT_EQ(got.messages, ref.messages);
    EXPECT_EQ(got.data, ref.data);
    EXPECT_EQ(got.dependences, ref.dependences);
  }
}

// Trace replay joins the fast-path grid: with enough iterations for the
// template to engage (implicit mode) — or as a structural no-op (SPMD)
// — every {traced} x {indexed, linear} x {checked} combination with
// replay on must match the fully analyzed reference bit for bit.
TEST(AnalysisNeutrality, ReplayInvariantAcrossModes) {
  constexpr uint64_t kSteps = 10;
  for (const bool spmd : {false, true}) {
    const Observed ref = run_fig2(spmd, /*traced=*/false,
                                  /*linear_scan=*/false, /*check=*/false,
                                  /*replay=*/false, kSteps);
    for (const bool traced : {false, true}) {
      for (const bool linear : {false, true}) {
        for (const bool check : {false, true}) {
          const Observed got =
              run_fig2(spmd, traced, linear, check, /*replay=*/true, kSteps);
          EXPECT_EQ(got.makespan, ref.makespan)
              << "spmd=" << spmd << " traced=" << traced
              << " linear=" << linear << " check=" << check;
          EXPECT_EQ(got.bytes, ref.bytes);
          EXPECT_EQ(got.messages, ref.messages);
          EXPECT_EQ(got.data, ref.data);
          EXPECT_EQ(got.dependences, ref.dependences);
        }
      }
    }
  }
}

TEST(AnalysisNeutrality, SpmdInvariantAcrossTracingAndIndexing) {
  // SPMD execution exercises the intersection and copy-pair caches; the
  // dependence tracker mode must be equally irrelevant to its timeline.
  const Observed ref =
      run_fig2(/*spmd=*/true, /*traced=*/false, /*linear_scan=*/true);
  for (const bool traced : {false, true}) {
    for (const bool linear : {true, false}) {
      if (!traced && linear) continue;
      const Observed got = run_fig2(true, traced, linear);
      EXPECT_EQ(got.makespan, ref.makespan)
          << "traced=" << traced << " linear=" << linear;
      EXPECT_EQ(got.bytes, ref.bytes);
      EXPECT_EQ(got.messages, ref.messages);
      EXPECT_EQ(got.data, ref.data);
    }
  }
}

}  // namespace
}  // namespace cr::exec
