// Property/fuzz testing: control replication must preserve sequential
// semantics for *arbitrary* programmer-specified partitions (the paper's
// central guarantee, §1: "the transformation is guaranteed to succeed for
// any programmer-specified partitions of the data, even though the
// partitions can be arbitrary").
//
// Each seed generates a random program — random region sizes, random
// aliased image partitions through random pointer maps, random task
// sequences with random privileges, optional region and scalar reductions
// — and checks that implicit and CR-SPMD executions reproduce the
// sequential oracle bit-for-bit (min/max) or to tight tolerance (sums,
// whose fold order legitimately differs).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"
#include "ir/builder.h"
#include "rt/partition.h"
#include "support/rng.h"
#include "testing/random_program.h"

namespace cr::exec {
namespace {

using testing::RandomProgram;
using testing::make_random_program;


class CrFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrFuzz, ImplicitAndSpmdMatchOracle) {
  support::Rng rng(GetParam() * 7919 + 13);
  const uint32_t nodes = 1 + static_cast<uint32_t>(rng.next_below(8));
  const uint64_t colors = nodes + rng.next_below(2 * nodes + 1);

  passes::PipelineOptions opt;
  opt.copy_placement = rng.next_bool(0.7);
  opt.intersection_opt = rng.next_bool(0.8);
  opt.p2p_sync = rng.next_bool(0.7);
  opt.hierarchical = rng.next_bool(0.8);

  CostModel cost;
  cost.track_dependences = rng.next_bool(0.7);

  // Oracle.
  rt::Runtime rt_seq(runtime_config(1, 2, cost, true));
  support::Rng rng_prog = rng.split(1);
  RandomProgram seq = make_random_program(rt_seq.forest(), rng_prog, colors);
  SequentialResult oracle = run_sequential(seq.program);

  auto check = [&](Engine& engine, const RandomProgram& rp,
                   const char* what) {
    for (const auto& info : rp.regions) {
      const uint64_t n =
          rt_seq.forest().region(info.region).ispace.size();
      for (uint64_t p = 0; p < n; ++p) {
        const double got = engine.read_root_f64(info.region, info.field, p);
        const double want = oracle.read_f64(info.region, info.field, p);
        ASSERT_NEAR(got, want, 1e-9 * (1.0 + std::abs(want)))
            << what << ": region " << info.region << " point " << p
            << " (seed " << GetParam() << ")";
      }
    }
    for (ir::ScalarId s : rp.scalars) {
      ASSERT_NEAR(engine.scalar(s), oracle.scalar(s), 1e-9)
          << what << ": scalar " << s;
    }
  };

  {
    rt::Runtime rt(runtime_config(nodes, 3, cost, true));
    support::Rng r2 = rng.split(1);
    RandomProgram rp = make_random_program(rt.forest(), r2, colors);
    PreparedRun run = prepare_implicit(rt, rp.program, cost, opt);
    run.run();
    check(*run.engine, rp, "implicit");
  }
  {
    rt::Runtime rt(runtime_config(nodes, 3, cost, true));
    support::Rng r2 = rng.split(1);
    RandomProgram rp = make_random_program(rt.forest(), r2, colors);
    // Run SPMD under the race checker: beyond matching the oracle's
    // data, the inserted synchronization must *order* every conflicting
    // access pair — data equality alone can be schedule luck.
    ExecConfig cfg;
    cfg.pipeline = opt;
    cfg.cost = cost;
    cfg.mode = ExecMode::kSpmd;
    cfg.check = true;
    PreparedRun run = prepare(rt, rp.program, cfg);
    ExecutionResult res = run.run();
    ASSERT_TRUE(res.check->ok())
        << "seed " << GetParam() << ": " << res.check->to_text();
    check(*run.engine, rp, "spmd");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrFuzz, ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace cr::exec
