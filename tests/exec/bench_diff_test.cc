// The perf regression gate: bench_diff must pass a self-diff exactly,
// flag a synthetic 10% makespan regression at the default 5% threshold,
// and refuse to pass when a configuration silently disappears.
#include "exec/bench_diff.h"

#include <gtest/gtest.h>

namespace cr::exec {
namespace {

const char* kBaseline = R"({
  "app": "stencil",
  "series": [
    {"name": "spmd", "points": [
      {"nodes": 1, "virtual_seconds": 0.001, "makespan_ns": 1000000,
       "metrics": {"exec.bytes_moved": 4096, "exec.messages": 100,
                   "sim.events_processed": 5000},
       "attribution": []},
      {"nodes": 2, "virtual_seconds": 0.001, "makespan_ns": 1100000,
       "metrics": {"exec.bytes_moved": 8192, "exec.messages": 260,
                   "sim.events_processed": 9000},
       "attribution": []}
    ]},
    {"name": "implicit", "points": [
      {"nodes": 1, "virtual_seconds": 0.002, "makespan_ns": 2000000,
       "metrics": {"exec.bytes_moved": 4096}, "attribution": []}
    ]}
  ]
})";

TEST(BenchDiff, SelfDiffPasses) {
  const DiffResult r = bench_diff(kBaseline, kBaseline, DiffOptions{});
  EXPECT_TRUE(r.ok()) << r.to_text();
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_TRUE(r.errors.empty());
  EXPECT_FALSE(r.lines.empty());  // makespans were actually compared
}

TEST(BenchDiff, TenPercentMakespanRegressionFails) {
  std::string current = kBaseline;
  // Bump the 2-node spmd makespan by 10%: 1100000 -> 1210000.
  const std::string old_val = "\"makespan_ns\": 1100000";
  const size_t pos = current.find(old_val);
  ASSERT_NE(pos, std::string::npos);
  current.replace(pos, old_val.size(), "\"makespan_ns\": 1210000");

  const DiffResult r = bench_diff(kBaseline, current, DiffOptions{});
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions.size(), 1u) << r.to_text();
  EXPECT_NE(r.regressions[0].find("makespan_ns"), std::string::npos);
  EXPECT_NE(r.regressions[0].find("spmd"), std::string::npos);
  EXPECT_TRUE(r.errors.empty());
}

TEST(BenchDiff, WithinThresholdPasses) {
  std::string current = kBaseline;
  // +4% stays under the default 5% gate.
  const std::string old_val = "\"makespan_ns\": 1000000";
  const size_t pos = current.find(old_val);
  ASSERT_NE(pos, std::string::npos);
  current.replace(pos, old_val.size(), "\"makespan_ns\": 1040000");
  const DiffResult r = bench_diff(kBaseline, current, DiffOptions{});
  EXPECT_TRUE(r.ok()) << r.to_text();
}

TEST(BenchDiff, AllMetricsGate) {
  std::string current = kBaseline;
  const std::string old_val = "\"exec.messages\": 100";
  const size_t pos = current.find(old_val);
  ASSERT_NE(pos, std::string::npos);
  current.replace(pos, old_val.size(), "\"exec.messages\": 150");
  // Ungated by default...
  EXPECT_TRUE(bench_diff(kBaseline, current, DiffOptions{}).ok());
  // ...flagged when every metric is gated.
  DiffOptions all;
  all.all_pct = 5.0;
  const DiffResult r = bench_diff(kBaseline, current, all);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.regressions.empty());
  EXPECT_NE(r.regressions[0].find("exec.messages"), std::string::npos);
}

TEST(BenchDiff, PerMetricThresholdOverride) {
  std::string current = kBaseline;
  const std::string old_val = "\"exec.bytes_moved\": 4096, \"exec.messages\"";
  const size_t pos = current.find(old_val);
  ASSERT_NE(pos, std::string::npos);
  current.replace(pos, old_val.size(),
                  "\"exec.bytes_moved\": 4300, \"exec.messages\"");
  DiffOptions opt;
  opt.metric_pct["exec.bytes_moved"] = 1.0;  // ~+5% > 1% gate
  const DiffResult r = bench_diff(kBaseline, current, opt);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.regressions.empty());
  EXPECT_NE(r.regressions[0].find("exec.bytes_moved"), std::string::npos);
}

TEST(BenchDiff, MissingPointIsAnError) {
  std::string current = kBaseline;
  // Drop the whole implicit series from the current run.
  const size_t pos = current.find(",\n    {\"name\": \"implicit\"");
  ASSERT_NE(pos, std::string::npos);
  const size_t end = current.rfind("]}");  // last point list close
  ASSERT_NE(end, std::string::npos);
  current = current.substr(0, pos) + "\n  ]\n}";
  const DiffResult r = bench_diff(kBaseline, current, DiffOptions{});
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("implicit"), std::string::npos);
}

TEST(BenchDiff, ZeroBaselineRegressesOnAnyGrowth) {
  const char* base = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"check.races":0}}]}]})";
  const char* cur = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"check.races":2}}]}]})";
  DiffOptions opt;
  opt.all_pct = 100.0;  // even a huge relative gate can't excuse 0 -> 2
  const DiffResult r = bench_diff(base, cur, opt);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.regressions.empty());
  EXPECT_NE(r.regressions[0].find("check.races"), std::string::npos);
}

TEST(BenchDiff, ZeroBaselineWithinEpsilonPasses) {
  // base == 0 used to gate as `cur > 0`: any float dust (a tiny gauge
  // value, a rounding residue) flagged a regression. The absolute
  // epsilon fallback tolerates near-zero noise while still comparing.
  const char* base = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"exec.control_busy_frac":0}}]}]})";
  const char* cur = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,
     "metrics":{"exec.control_busy_frac":1e-12}}]}]})";
  DiffOptions opt;
  opt.all_pct = 5.0;
  const DiffResult r = bench_diff(base, cur, opt);
  EXPECT_TRUE(r.ok()) << r.to_text();
  // Identical zeros pass too, and the comparison is reported.
  const DiffResult same = bench_diff(base, base, opt);
  EXPECT_TRUE(same.ok()) << same.to_text();
  EXPECT_EQ(same.lines.size(), 2u);  // makespan + the zero metric
}

TEST(BenchDiff, ZeroBaselineEpsilonIsConfigurable) {
  const char* base = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"m":0}}]}]})";
  const char* cur = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"m":0.5}}]}]})";
  DiffOptions opt;
  opt.all_pct = 5.0;
  opt.zero_abs_eps = 1.0;  // 0 -> 0.5 tolerated at this epsilon
  EXPECT_TRUE(bench_diff(base, cur, opt).ok());
  opt.zero_abs_eps = 0.1;  // ...but not at this one
  EXPECT_FALSE(bench_diff(base, cur, opt).ok());
}

TEST(BenchDiff, NegativeMetricIsAnError) {
  // A negative value in a gated metric is an unmeasured sentinel or
  // corruption; relative thresholds on it are meaningless and must not
  // silently pass (cur > base * 1.05 is trivially false for base = -1).
  const char* base = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"m":-1}}]}]})";
  const char* cur = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"m":-1}}]}]})";
  DiffOptions opt;
  opt.all_pct = 5.0;
  const DiffResult r = bench_diff(base, cur, opt);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("negative"), std::string::npos);
}

TEST(BenchDiff, NegativeHostSecondsIsAnError) {
  // The historic -1.0 "unmeasured" sentinel must never be treated as a
  // valid host time, on either side of the diff.
  const char* good = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"analysis":{"host_seconds":0.5}}]}]})";
  const char* bad = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"analysis":{"host_seconds":-1.0}}]}]})";
  EXPECT_TRUE(bench_diff(good, good, DiffOptions{}).ok());
  const DiffResult r = bench_diff(good, bad, DiffOptions{});
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("host_seconds"), std::string::npos);
  // ...and a null host time (the unmeasured serialization) is fine.
  const char* null_hs = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"analysis":{"host_seconds":null}}]}]})";
  EXPECT_TRUE(bench_diff(good, null_hs, DiffOptions{}).ok());
}

TEST(BenchDiff, HostMetricsGateOnlyViaHostPct) {
  // Wall-clock ("host.") metrics are real measurements but noisy: they
  // must never be covered by the virtual-time all_pct gate, only by the
  // dedicated (typically looser) host_pct threshold.
  const char* base = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,
     "metrics":{"host.run_seconds":1.0,"sim.events_processed":500}}]}]})";
  const char* cur = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,
     "metrics":{"host.run_seconds":1.5,"sim.events_processed":500}}]}]})";
  // +50% host time: invisible to the default options and to all_pct...
  EXPECT_TRUE(bench_diff(base, cur, DiffOptions{}).ok());
  DiffOptions all;
  all.all_pct = 5.0;
  EXPECT_TRUE(bench_diff(base, cur, all).ok());
  // ...flagged once the host gate is on.
  DiffOptions host;
  host.host_pct = 25.0;
  const DiffResult r = bench_diff(base, cur, host);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.regressions.empty());
  EXPECT_NE(r.regressions[0].find("host.run_seconds"), std::string::npos);
  // +50% is fine under a looser gate.
  host.host_pct = 75.0;
  EXPECT_TRUE(bench_diff(base, cur, host).ok());
}

TEST(BenchDiff, BarrierWaitRegressionCaughtOnlyByHostGate) {
  // The host-phase profiler's keys (host.phase.*) ride the same routing
  // as the older host.run_seconds: a doubled barrier-wait time — the
  // canonical symptom of a backend synchronization regression that is
  // invisible in virtual time — must be caught by --host, and only by
  // --host. Virtual-time quantities in the same point stay identical,
  // so the default and all_pct gates have nothing to flag.
  const char* base = R"({"series":[{"name":"spmd","points":[
    {"nodes":4,"makespan_ns":1000000,
     "metrics":{"host.phase.barrier_wait_ns":1000000,
                "host.phase.lane_drain_ns":4000000,
                "host.profile.serial_fraction":0.2,
                "sim.events_processed":5000,
                "sim.windows":40}}]}]})";
  const char* cur = R"({"series":[{"name":"spmd","points":[
    {"nodes":4,"makespan_ns":1000000,
     "metrics":{"host.phase.barrier_wait_ns":2200000,
                "host.phase.lane_drain_ns":4000000,
                "host.profile.serial_fraction":0.2,
                "sim.events_processed":5000,
                "sim.windows":40}}]}]})";
  EXPECT_TRUE(bench_diff(base, cur, DiffOptions{}).ok());
  DiffOptions all;
  all.all_pct = 5.0;
  EXPECT_TRUE(bench_diff(base, cur, all).ok());
  DiffOptions host;
  host.host_pct = 50.0;
  const DiffResult r = bench_diff(base, cur, host);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions.size(), 1u) << r.to_text();
  EXPECT_NE(r.regressions[0].find("host.phase.barrier_wait_ns"),
            std::string::npos);
  // The untouched host keys pass the same gate.
  const char* lane_only = R"({"series":[{"name":"spmd","points":[
    {"nodes":4,"makespan_ns":1000000,
     "metrics":{"host.phase.barrier_wait_ns":1000000,
                "host.phase.lane_drain_ns":4100000,
                "host.profile.serial_fraction":0.2,
                "sim.events_processed":5000,
                "sim.windows":40}}]}]})";
  EXPECT_TRUE(bench_diff(base, lane_only, host).ok());
}

TEST(BenchDiff, InfoMetricsNeverGate) {
  // "info." keys are context (rates, rep counts), not costs: neither
  // all_pct nor host_pct may gate them. An explicit per-metric override
  // still can — the operator asked for that key by name.
  const char* base = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"info.reps":3}}]}]})";
  const char* cur = R"({"series":[{"name":"s","points":[
    {"nodes":1,"makespan_ns":100,"metrics":{"info.reps":9}}]}]})";
  DiffOptions opt;
  opt.all_pct = 5.0;
  opt.host_pct = 5.0;
  EXPECT_TRUE(bench_diff(base, cur, opt).ok());
  opt.metric_pct["info.reps"] = 50.0;
  EXPECT_FALSE(bench_diff(base, cur, opt).ok());
}

TEST(BenchDiff, MalformedJsonIsAnError) {
  const DiffResult r = bench_diff("{not json", kBaseline, DiffOptions{});
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("baseline"), std::string::npos);
}

TEST(BenchDiff, MissingFileIsAnError) {
  const DiffResult r = bench_diff_files("/nonexistent/base.json",
                                        "/nonexistent/cur.json",
                                        DiffOptions{});
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.errors.empty());
}

}  // namespace
}  // namespace cr::exec
