// Tests for the execution-engine features beyond plain interpretation:
// bounded run-ahead windows, timeline tracing, noise injection, and the
// quiescence check.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"
#include "testing/fig2.h"

namespace cr::exec {
namespace {

sim::Time run_fig2(CostModel cost, bool spmd, uint32_t nodes = 4) {
  cost.track_dependences = false;
  rt::Runtime rt(runtime_config(nodes, 4, cost, /*real_data=*/false));
  testing::Fig2 fig(rt.forest(), 64 * nodes, 4 * nodes, 6);
  for (auto& t : fig.program.tasks) {
    t.kernel = nullptr;
    t.cost_base_ns = 2e6;  // 2 ms grain: durations dominate the timeline
  }
  PreparedRun run = spmd ? prepare_spmd(rt, fig.program, cost, {})
                         : prepare_implicit(rt, fig.program, cost, {});
  return run.run().makespan_ns;
}

TEST(RunAheadWindow, BoundedPipelineIsSlowerThanUnbounded) {
  CostModel unlimited;
  CostModel tight;
  tight.run_ahead_window = 2;
  // In implicit mode at several nodes the master normally hides its
  // issue latency by running ahead; a 2-op window forces it to wait.
  const sim::Time t_free = run_fig2(unlimited, /*spmd=*/false, 8);
  const sim::Time t_tight = run_fig2(tight, /*spmd=*/false, 8);
  EXPECT_GT(t_tight, t_free);
}

TEST(RunAheadWindow, LargeWindowMatchesUnlimited) {
  CostModel unlimited;
  CostModel wide;
  wide.run_ahead_window = 1u << 20;
  EXPECT_EQ(run_fig2(unlimited, false), run_fig2(wide, false));
}

TEST(RunAheadWindow, CorrectnessPreservedUnderTinyWindow) {
  CostModel tight;
  tight.run_ahead_window = 1;
  rt::Runtime rt(runtime_config(4, 4, tight, /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), 48, 8, 3);
  SequentialResult oracle = run_sequential(fig.program);
  PreparedRun run = prepare_spmd(rt, fig.program, tight, {});
  run.run();
  for (uint64_t p = 0; p < 48; ++p) {
    ASSERT_EQ(run.engine->read_root_f64(fig.a, fig.fa, p),
              oracle.read_f64(fig.a, fig.fa, p));
  }
}

TEST(Noise, HeavyTailSlowsExecutionDeterministically) {
  CostModel noisy;
  noisy.task_slow_prob = 0.1;
  noisy.task_slow_frac = 1.0;
  const sim::Time clean = run_fig2(CostModel{}, true);
  const sim::Time t1 = run_fig2(noisy, true);
  const sim::Time t2 = run_fig2(noisy, true);
  EXPECT_GT(t1, clean);
  EXPECT_EQ(t1, t2);  // deterministic replay
}

TEST(Trace, WritesChromeTraceJson) {
  CostModel cost;
  rt::Runtime rt(runtime_config(2, 4, cost, /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), 24, 4, 2);
  PreparedRun run = prepare_spmd(rt, fig.program, cost, {});
  run.engine->enable_trace();
  run.run();
  const std::string path = ::testing::TempDir() + "/cr_trace.json";
  run.engine->write_trace(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("TF["), std::string::npos);
  EXPECT_NE(text.find("TG["), std::string::npos);
  EXPECT_NE(text.find("\"pid\":1"), std::string::npos);  // node 1 used
  std::remove(path.c_str());
}

TEST(Trace, DisabledByDefaultProducesEmptyTimeline) {
  CostModel cost;
  rt::Runtime rt(runtime_config(1, 2, cost, /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), 12, 2, 1);
  PreparedRun run = prepare_spmd(rt, fig.program, cost, {});
  run.run();
  const std::string path = ::testing::TempDir() + "/cr_trace_empty.json";
  run.engine->write_trace(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "[\n\n]\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cr::exec
