// Trace capture & replay neutrality: replayed iterations must be
// bit-identical to analyzed ones in everything virtual — makespans,
// output data, the metrics snapshot (minus host-side analysis-effort
// counters), the traced timeline, and race-checker verdicts — while
// host-side work (pairs_tested, index queries) collapses. Covers the
// Fig2 workload, forced mid-run invalidation, engine reuse on one
// runtime, and randomized iterative programs.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "exec/implicit_exec.h"
#include "support/rng.h"
#include "testing/fig2.h"
#include "testing/random_program.h"

namespace cr::exec {
namespace {

// Keys whose values legitimately change under replay: how much analysis
// work the host did, and the replay counters themselves. Everything
// else — virtual times, event counts, dependence counts, checker and
// barrier activity — must be bit-equal.
bool host_side_key(const std::string& k) {
  return k.rfind("exec.replay.", 0) == 0 || k.rfind("rt.alias.", 0) == 0 ||
         k.rfind("rt.overlap.", 0) == 0 ||
         k.rfind("rt.isect_cache.", 0) == 0 ||
         k == "rt.dep.pairs_tested" || k.rfind("rt.dep.index", 0) == 0;
}

std::map<std::string, double> virtual_metrics(
    const std::map<std::string, double>& m) {
  std::map<std::string, double> out;
  for (const auto& [k, v] : m) {
    if (!host_side_key(k)) out[k] = v;
  }
  return out;
}

double metric(const ExecutionResult& res, const char* key) {
  auto it = res.metrics.find(key);
  return it == res.metrics.end() ? 0.0 : it->second;
}

struct Fig2Out {
  ExecutionResult res;
  std::vector<double> data;
  std::string trace_text;
};

Fig2Out run_fig2(bool replay, uint64_t invalidate_every, uint64_t steps) {
  CostModel cost;
  cost.track_dependences = true;
  rt::Runtime rt(runtime_config(4, 4, cost, /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), 48, 8, steps);
  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = ExecMode::kImplicit;
  cfg.check = true;
  cfg.trace = true;
  cfg.trace_replay = replay;
  cfg.replay_invalidate_every = invalidate_every;
  PreparedRun run = prepare(rt, fig.program, cfg);
  Fig2Out out;
  out.res = run.run();
  out.trace_text = run.engine->trace_summary().to_text();
  for (uint64_t p = 0; p < 48; ++p) {
    out.data.push_back(run.engine->read_root_f64(fig.a, fig.fa, p));
    out.data.push_back(run.engine->read_root_f64(fig.b, fig.fb, p));
  }
  return out;
}

void expect_fig2_identical(const Fig2Out& ref, const Fig2Out& got,
                           const char* what) {
  EXPECT_EQ(got.res.makespan_ns, ref.res.makespan_ns) << what;
  EXPECT_EQ(got.data, ref.data) << what;
  EXPECT_EQ(got.trace_text, ref.trace_text) << what;
  EXPECT_EQ(virtual_metrics(got.res.metrics),
            virtual_metrics(ref.res.metrics))
      << what;
  ASSERT_NE(got.res.check, nullptr);
  ASSERT_NE(ref.res.check, nullptr);
  EXPECT_EQ(got.res.check->ok(), ref.res.check->ok()) << what;
  EXPECT_EQ(got.res.check->stats.races, ref.res.check->stats.races) << what;
  EXPECT_EQ(got.res.check->stats.accesses, ref.res.check->stats.accesses)
      << what;
  EXPECT_EQ(got.res.check->stats.pairs_checked,
            ref.res.check->stats.pairs_checked)
      << what;
}

TEST(TraceReplay, Fig2BitIdenticalAndSkipsAnalysis) {
  constexpr uint64_t kSteps = 12;
  const Fig2Out ref = run_fig2(/*replay=*/false, 0, kSteps);
  const Fig2Out rep = run_fig2(/*replay=*/true, 0, kSteps);
  expect_fig2_identical(ref, rep, "replay");

  // Replay actually engaged: most iterations skipped analysis and the
  // host-side test count dropped, with the virtual charge unchanged.
  EXPECT_GE(metric(rep.res, "exec.replay.captures"), 1.0);
  EXPECT_GE(metric(rep.res, "exec.replay.replays"), 5.0);
  EXPECT_EQ(metric(rep.res, "exec.replay.invalidations"), 0.0);
  EXPECT_GT(metric(rep.res, "exec.replay.pairs_skipped"), 0.0);
  EXPECT_LT(rep.res.analysis.dep_pairs_tested,
            ref.res.analysis.dep_pairs_tested);
  EXPECT_EQ(rep.res.analysis.dep_pairs_scanned,
            ref.res.analysis.dep_pairs_scanned);
  EXPECT_EQ(rep.res.analysis.dep_dependences,
            ref.res.analysis.dep_dependences);
}

TEST(TraceReplay, ForcedInvalidationStaysBitIdentical) {
  constexpr uint64_t kSteps = 12;
  const Fig2Out ref = run_fig2(/*replay=*/false, 0, kSteps);
  const Fig2Out rep = run_fig2(/*replay=*/true, /*invalidate_every=*/3,
                               kSteps);
  expect_fig2_identical(ref, rep, "forced invalidation");
  // The template was dropped and re-captured mid-run, and iterations
  // kept replaying between invalidations.
  EXPECT_GE(metric(rep.res, "exec.replay.invalidations"), 2.0);
  EXPECT_GE(metric(rep.res, "exec.replay.captures"), 2.0);
  EXPECT_GE(metric(rep.res, "exec.replay.replays"), 1.0);
}

// Engine reuse on one runtime: the dependence tracker is a Runtime
// member, so without the per-run reset a second engine's op ids would
// collide with the first run's users and the counters would accumulate.
TEST(TraceReplay, EngineReuseStartsAnalysisClean) {
  CostModel cost;
  cost.track_dependences = true;
  rt::Runtime rt(runtime_config(4, 4, cost, /*real_data=*/false));
  testing::Fig2 fig(rt.forest(), 48, 8, 4);
  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = ExecMode::kImplicit;
  PreparedRun first = prepare(rt, fig.program, cfg);
  const ExecutionResult r1 = first.run();
  PreparedRun second = prepare(rt, fig.program, cfg);
  const ExecutionResult r2 = second.run();
  // The analysis and the copy/network tallies are per-run: nothing from
  // run 1 may leak into run 2's counters.
  EXPECT_EQ(r1.analysis.dep_pairs_scanned, r2.analysis.dep_pairs_scanned);
  EXPECT_EQ(r1.analysis.dep_pairs_tested, r2.analysis.dep_pairs_tested);
  EXPECT_EQ(r1.analysis.dep_dependences, r2.analysis.dep_dependences);
  EXPECT_EQ(r1.copies_issued, r2.copies_issued);
  EXPECT_EQ(r1.bytes_moved, r2.bytes_moved);
  EXPECT_EQ(r1.messages, r2.messages);
  // The makespan is this run's elapsed virtual time, not the absolute
  // simulator end time. Run 2 starts mid-world (its launch-time events
  // clamp to "now" instead of staggering from t=0), so it may differ by
  // a launch offset — but never by anything near a whole first run,
  // which is what the absolute end time would report.
  EXPECT_GT(r2.makespan_ns, 0u);
  EXPECT_LT(r2.makespan_ns, r1.makespan_ns + r1.makespan_ns / 2);
}

// Property test: randomized iterative programs (random regions, aliased
// image partitions, random privileges, scalar reductions) run
// bit-identically with replay off, on, and on-with-forced-invalidation.
TEST(TraceReplayProperty, RandomProgramsBitIdentical) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    struct Out {
      ExecutionResult res;
      std::vector<double> scalars;
    };
    auto run_one = [&](bool replay, uint64_t invalidate_every) {
      support::Rng rng(0xA11CE + seed * 977);
      CostModel cost;
      cost.track_dependences = true;
      rt::Runtime rt(runtime_config(4, 2, cost, /*real_data=*/true));
      testing::RandomProgram prog =
          testing::make_random_program(rt.forest(), rng, 4, /*min_steps=*/7);
      ExecConfig cfg;
      cfg.cost = cost;
      cfg.mode = ExecMode::kImplicit;
      cfg.check = true;
      cfg.trace_replay = replay;
      cfg.replay_invalidate_every = invalidate_every;
      PreparedRun run = prepare(rt, prog.program, cfg);
      Out out{run.run(), {}};
      for (ir::ScalarId s : prog.scalars) {
        out.scalars.push_back(run.engine->scalar(s));
      }
      return out;
    };
    const Out ref = run_one(false, 0);
    for (const uint64_t inval : {uint64_t{0}, uint64_t{2}}) {
      const Out got = run_one(true, inval);
      EXPECT_EQ(got.res.makespan_ns, ref.res.makespan_ns)
          << "seed=" << seed << " inval=" << inval;
      EXPECT_EQ(got.scalars, ref.scalars) << "seed=" << seed;
      EXPECT_EQ(virtual_metrics(got.res.metrics),
                virtual_metrics(ref.res.metrics))
          << "seed=" << seed << " inval=" << inval;
      ASSERT_NE(got.res.check, nullptr);
      EXPECT_EQ(got.res.check->ok(), ref.res.check->ok()) << "seed=" << seed;
      EXPECT_EQ(got.res.check->stats.accesses, ref.res.check->stats.accesses)
          << "seed=" << seed;
      EXPECT_EQ(got.res.check->stats.pairs_checked,
                ref.res.check->stats.pairs_checked)
          << "seed=" << seed;
      EXPECT_EQ(got.res.check->stats.races, ref.res.check->stats.races)
          << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace cr::exec
