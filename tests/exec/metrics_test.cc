// Metrics/provenance observability of the engine: the registry snapshot
// is deterministic across identical runs, covers every subsystem, never
// includes host wall-clock quantities, and the attribution report names
// the user statement behind the SPMD ghost exchange.
#include <gtest/gtest.h>

#include "apps/stencil/stencil.h"
#include "exec/implicit_exec.h"
#include "exec/spmd_exec.h"
#include "testing/fig2.h"

namespace cr::exec {
namespace {

ExecutionResult run_fig2(bool spmd, std::map<std::string, double>* snap,
                         bool traced = false, bool p2p_sync = true) {
  CostModel cost;
  cost.track_dependences = true;
  rt::Runtime rt(runtime_config(4, 4, cost, /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), 48, 8, 3);
  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = spmd ? ExecMode::kSpmd : ExecMode::kImplicit;
  cfg.pipeline.p2p_sync = p2p_sync;
  PreparedRun run = prepare(rt, fig.program, cfg);
  if (traced) run.engine->enable_trace();
  ExecutionResult res = run.run();
  if (snap != nullptr) *snap = rt.metrics().snapshot();
  return res;
}

TEST(Metrics, SnapshotDeterministicAcrossIdenticalRuns) {
  std::map<std::string, double> a, b;
  const ExecutionResult ra = run_fig2(/*spmd=*/true, &a);
  const ExecutionResult rb = run_fig2(/*spmd=*/true, &b);
  EXPECT_EQ(ra.makespan_ns, rb.makespan_ns);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The result carries the same snapshot.
  EXPECT_EQ(ra.metrics, a);
}

TEST(Metrics, SnapshotCoversEverySubsystem) {
  std::map<std::string, double> snap;
  const ExecutionResult res = run_fig2(/*spmd=*/true, &snap);
  // exec rollups mirror the result struct.
  EXPECT_EQ(snap.at("exec.makespan_ns"),
            static_cast<double>(res.makespan_ns));
  EXPECT_EQ(snap.at("exec.point_tasks"),
            static_cast<double>(res.point_tasks));
  EXPECT_EQ(snap.at("exec.copies_issued"),
            static_cast<double>(res.copies_issued));
  EXPECT_EQ(snap.at("exec.bytes_moved"),
            static_cast<double>(res.bytes_moved));
  // Simulator occupancy.
  EXPECT_GT(snap.at("sim.events_processed"), 0.0);
  EXPECT_GT(snap.at("sim.queue.max_depth"), 0.0);
  EXPECT_GT(snap.at("sim.proc.busy_ns.count"), 0.0);
  // Runtime analysis structures.
  EXPECT_GT(snap.at("rt.alias.queries"), 0.0);
  EXPECT_GT(snap.at("rt.isect_cache.misses"), 0.0);
  // Per-pass IR size deltas from the pipeline.
  EXPECT_GT(snap.at("passes.data-replication.stmts_in"), 0.0);
  EXPECT_GE(snap.at("passes.sync-insertion.stmts_out"),
            snap.at("passes.sync-insertion.stmts_in"));
  // No host wall-clock quantity may leak into the snapshot (it must be
  // bit-stable across machines for committed baselines).
  for (const auto& [key, value] : snap) {
    EXPECT_EQ(key.find("host"), std::string::npos) << key;
    EXPECT_EQ(key.find("wall"), std::string::npos) << key;
  }
}

TEST(Metrics, BarrierSyncRunRecordsGenerationsAndArrivals) {
  // Fig2's default pipeline uses point-to-point sync (no barriers); with
  // p2p off, sync-insertion emits phase barriers and the runtime counts
  // one arrival per participating shard per generation.
  std::map<std::string, double> snap;
  run_fig2(/*spmd=*/true, &snap, /*traced=*/false, /*p2p_sync=*/false);
  EXPECT_GT(snap.at("rt.barrier.generations"), 0.0);
  EXPECT_GT(snap.at("rt.barrier.arrivals"), snap.at("rt.barrier.generations"));
}

TEST(Metrics, ImplicitModeRecordsDependenceAnalysisWork) {
  // The implicit executor's window-based dependence analysis drives the
  // dep/overlap counters that never fire under compiled SPMD.
  std::map<std::string, double> snap;
  run_fig2(/*spmd=*/false, &snap);
  EXPECT_GT(snap.at("rt.dep.pairs_scanned"), 0.0);
  EXPECT_GT(snap.at("rt.dep.dependences"), 0.0);
  EXPECT_GT(snap.at("rt.overlap.queries"), 0.0);
  EXPECT_GT(snap.at("rt.alias.cache_hits"), 0.0);
}

TEST(Metrics, AnalysisStatsAgreeWithRegistry) {
  std::map<std::string, double> snap;
  const ExecutionResult res = run_fig2(/*spmd=*/false, &snap);
  EXPECT_EQ(static_cast<double>(res.analysis.alias_queries),
            snap.at("rt.alias.queries"));
  EXPECT_EQ(static_cast<double>(res.analysis.dep_pairs_scanned),
            snap.at("rt.dep.pairs_scanned"));
  EXPECT_EQ(static_cast<double>(res.analysis.isect_cache_hits) +
                static_cast<double>(res.analysis.isect_cache_misses),
            snap.at("rt.isect_cache.hits") +
                snap.at("rt.isect_cache.misses"));
}

TEST(Metrics, TracingAndAttributionAreMakespanNeutral) {
  std::map<std::string, double> plain, traced;
  const ExecutionResult ref = run_fig2(/*spmd=*/true, &plain);
  const ExecutionResult got =
      run_fig2(/*spmd=*/true, &traced, /*traced=*/true);
  EXPECT_EQ(got.makespan_ns, ref.makespan_ns);
  EXPECT_EQ(got.bytes_moved, ref.bytes_moved);
  EXPECT_EQ(got.messages, ref.messages);
  // The registry itself is identical too: attribution lives in the
  // tracer, not in the metrics.
  EXPECT_EQ(plain, traced);
}

TEST(Metrics, StencilAttributionNamesTheGhostExchange) {
  CostModel cost;
  rt::Runtime rt(runtime_config(4, 4, cost, /*real_data=*/false));
  apps::stencil::Config cfg;
  cfg.nodes = 4;
  cfg.tasks_per_node = 2;
  cfg.tile_x = 16;
  cfg.tile_y = 16;
  cfg.steps = 4;
  apps::stencil::App app = apps::stencil::build(rt, cfg);

  ExecConfig ecfg;
  ecfg.cost = cost;
  ecfg.mode = ExecMode::kSpmd;
  PreparedRun run = prepare(rt, app.program, ecfg);
  run.engine->enable_trace();
  const ExecutionResult res = run.run();
  EXPECT_GT(res.copies_issued, 0u);

  const AttributionReport report = run.engine->attribution_report();
  ASSERT_FALSE(report.empty());
  // The dominant copy/sync contributor is the boundary increment — the
  // statement whose writes force the ghost exchange every iteration.
  const support::TraceAttributionRow& top = report.rows[0];
  EXPECT_EQ(top.label, "increment");
  EXPECT_GT(top.total_ns(), 0.0);
  EXPECT_GT(top.spans, 0u);
  for (size_t i = 1; i < report.rows.size(); ++i) {
    EXPECT_GE(top.total_ns(), report.rows[i].total_ns());
  }
  EXPECT_NE(report.to_text().find("increment"), std::string::npos);
}

}  // namespace
}  // namespace cr::exec
