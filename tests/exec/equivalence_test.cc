// End-to-end correctness: for the Figure 2 program, implicit execution
// and control-replicated SPMD execution must produce exactly the data the
// sequential oracle produces, across machine shapes and pipeline options.
#include <gtest/gtest.h>

#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"
#include "testing/fig2.h"

namespace cr::exec {
namespace {

struct Shape {
  uint32_t nodes;
  uint64_t elements;
  uint64_t colors;
  uint64_t steps;
};

void expect_matches_oracle(const Shape& shape,
                           passes::PipelineOptions options,
                           bool spmd) {
  rt::Runtime rt(runtime_config(shape.nodes, 4, CostModel{},
                                /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), shape.elements, shape.colors, shape.steps);
  SequentialResult oracle = run_sequential(fig.program);

  PreparedRun run = spmd ? prepare_spmd(rt, fig.program, CostModel{}, options)
                         : prepare_implicit(rt, fig.program, CostModel{},
                                            options);
  ExecutionResult res = run.run();
  EXPECT_GT(res.makespan_ns, 0u);
  EXPECT_GT(res.point_tasks, 0u);

  for (uint64_t p = 0; p < shape.elements; ++p) {
    ASSERT_EQ(run.engine->read_root_f64(fig.a, fig.fa, p),
              oracle.read_f64(fig.a, fig.fa, p))
        << "A[" << p << "] diverged";
    ASSERT_EQ(run.engine->read_root_f64(fig.b, fig.fb, p),
              oracle.read_f64(fig.b, fig.fb, p))
        << "B[" << p << "] diverged";
  }
}

TEST(Equivalence, ImplicitMatchesOracle) {
  expect_matches_oracle({4, 48, 8, 3}, {}, /*spmd=*/false);
}

TEST(Equivalence, SpmdMatchesOracle) {
  expect_matches_oracle({4, 48, 8, 3}, {}, /*spmd=*/true);
}

TEST(Equivalence, SpmdSingleNode) {
  expect_matches_oracle({1, 24, 4, 2}, {}, /*spmd=*/true);
}

TEST(Equivalence, SpmdMoreShardsThanColorsWorks) {
  // 8 nodes, 8 shards, 6 colors: some shards own nothing.
  expect_matches_oracle({8, 36, 6, 3}, {}, /*spmd=*/true);
}

TEST(Equivalence, SpmdBarrierSync) {
  passes::PipelineOptions opt;
  opt.p2p_sync = false;
  expect_matches_oracle({4, 48, 8, 3}, opt, /*spmd=*/true);
}

TEST(Equivalence, SpmdNoIntersectionOpt) {
  passes::PipelineOptions opt;
  opt.intersection_opt = false;
  expect_matches_oracle({4, 48, 8, 3}, opt, /*spmd=*/true);
}

TEST(Equivalence, SpmdNoCopyPlacement) {
  passes::PipelineOptions opt;
  opt.copy_placement = false;
  expect_matches_oracle({4, 48, 8, 3}, opt, /*spmd=*/true);
}

TEST(Equivalence, SpmdFlatAliasing) {
  passes::PipelineOptions opt;
  opt.hierarchical = false;
  expect_matches_oracle({4, 48, 8, 3}, opt, /*spmd=*/true);
}

TEST(Equivalence, SpmdManyStepsManyShards) {
  expect_matches_oracle({16, 160, 16, 6}, {}, /*spmd=*/true);
}

// The headline property: CR exists to make SPMD *faster* than a single
// control thread at scale while staying equivalent. Check the scaling
// direction on a virtual-only run large enough for the control
// bottleneck to bite.
TEST(Scaling, SpmdBeatsImplicitAtScale) {
  const uint32_t nodes = 64;
  auto run_mode = [&](bool spmd) {
    CostModel cost;
    cost.track_dependences = false;
    rt::Runtime rt(runtime_config(nodes, 4, cost, /*real_data=*/false));
    testing::Fig2 fig(rt.forest(), 64 * 64, nodes, 10);
    // Kill kernels: virtual-only.
    for (auto& t : fig.program.tasks) t.kernel = nullptr;
    PreparedRun run = spmd ? prepare_spmd(rt, fig.program, cost, {})
                           : prepare_implicit(rt, fig.program, cost, {});
    return run.run().makespan_ns;
  };
  const sim::Time implicit_ns = run_mode(false);
  const sim::Time spmd_ns = run_mode(true);
  EXPECT_LT(spmd_ns * 2, implicit_ns)
      << "control replication should win clearly at 64 nodes";
}

TEST(Stats, SpmdSkipsEmptyPairsWithIntersections) {
  rt::Runtime rt(runtime_config(4, 4, CostModel{}, /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), 64, 8, 2);
  PreparedRun run = prepare_spmd(rt, fig.program, CostModel{}, {});
  ExecutionResult res = run.run();
  // The halo image only touches neighbor blocks: far fewer than 8x8
  // pairs per iteration move data.
  EXPECT_GT(res.intersection_pairs, 0u);
  EXPECT_LE(res.intersection_pairs, 3 * 8u);
}


// Control replication is a *local* transformation (paper §1): a program
// with two separate parallel phases split by a single task gets two
// independent shard launches, with data flowing between them through the
// parent regions — and still matches the oracle exactly.
TEST(MultiFragment, TwoLoopsSplitBySingleTaskMatchOracle) {
  rt::Runtime rt(runtime_config(4, 4, CostModel{}, /*real_data=*/true));
  testing::Fig2 fig(rt.forest(), 48, 8, 2);

  // Append: a single task on root A (not replicable), then another
  // parallel phase.
  ir::Program p = fig.program;
  ir::Stmt single;
  single.kind = ir::StmtKind::kSingleTask;
  single.task = fig.t_init;  // WD on A: rewrites A's master
  single.regions = {fig.a};
  single.label = "bump";
  p.body.push_back(single);
  ir::Stmt loop2;
  loop2.kind = ir::StmtKind::kForTime;
  loop2.trip_count = 2;
  {
    ir::Stmt tf;
    tf.kind = ir::StmtKind::kIndexLaunch;
    tf.task = fig.t_f;
    tf.launch_colors = 8;
    tf.args = p.body[1].body[0].args;  // PB rw, PA ro
    loop2.body.push_back(tf);
    ir::Stmt tg;
    tg.kind = ir::StmtKind::kIndexLaunch;
    tg.task = fig.t_g;
    tg.launch_colors = 8;
    tg.args = p.body[1].body[1].args;  // PA rw, QB ro
    loop2.body.push_back(tg);
  }
  p.body.push_back(loop2);

  SequentialResult oracle = run_sequential(p);
  PreparedRun run = prepare_spmd(rt, p, CostModel{}, {});
  ASSERT_TRUE(run.report.applied) << run.report.failure;

  // Two shard bodies in the transformed program.
  size_t shard_bodies = 0;
  for (const ir::Stmt& s : run.program->body) {
    if (s.kind == ir::StmtKind::kShardBody) ++shard_bodies;
  }
  EXPECT_EQ(shard_bodies, 2u);

  run.run();
  for (uint64_t pt = 0; pt < 48; ++pt) {
    ASSERT_EQ(run.engine->read_root_f64(fig.a, fig.fa, pt),
              oracle.read_f64(fig.a, fig.fa, pt))
        << "A[" << pt << "]";
    ASSERT_EQ(run.engine->read_root_f64(fig.b, fig.fb, pt),
              oracle.read_f64(fig.b, fig.fb, pt))
        << "B[" << pt << "]";
  }
}

}  // namespace
}  // namespace cr::exec
