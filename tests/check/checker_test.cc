// Property tests for the cross-shard happens-before race checker:
//
//  1. Soundness of the pipeline: every application, under both
//     executors and both synchronization regimes (p2p and the barrier
//     ablation), runs with zero races — the compiler-inserted copies
//     and sync ops order every conflicting access pair.
//  2. Sensitivity (mutation adequacy): deleting/weakening any single
//     compiler-inserted sync op in the stencil program must make the
//     checker report a race. A mutant the checker misses would mean a
//     sync op the checker cannot justify.
#include <gtest/gtest.h>

#include "apps/circuit/circuit.h"
#include "apps/miniaero/miniaero.h"
#include "apps/pennant/pennant.h"
#include "apps/stencil/stencil.h"
#include "exec/implicit_exec.h"

namespace cr::exec {
namespace {

enum class AppKind { kStencil, kCircuit, kPennant, kMiniAero };

const char* app_name(AppKind kind) {
  switch (kind) {
    case AppKind::kStencil: return "stencil";
    case AppKind::kCircuit: return "circuit";
    case AppKind::kPennant: return "pennant";
    case AppKind::kMiniAero: return "miniaero";
  }
  return "?";
}

ir::Program build_app(rt::Runtime& rt, AppKind kind) {
  ir::Program p;
  const uint32_t nodes = rt.machine().nodes();
  switch (kind) {
    case AppKind::kStencil: {
      apps::stencil::Config cfg;
      cfg.nodes = nodes;
      cfg.tasks_per_node = 2;
      cfg.tile_x = 6;
      cfg.tile_y = 6;
      cfg.steps = 2;
      p = apps::stencil::build(rt, cfg).program;
      break;
    }
    case AppKind::kCircuit: {
      apps::circuit::Config cfg;
      cfg.nodes = nodes;
      cfg.pieces_per_node = 2;
      cfg.nodes_per_piece = 8;
      cfg.wires_per_piece = 16;
      cfg.steps = 2;
      p = apps::circuit::build(rt, cfg).program;
      break;
    }
    case AppKind::kPennant: {
      apps::pennant::Config cfg;
      cfg.nodes = nodes;
      cfg.pieces_per_node = 2;
      cfg.zones_x_per_piece = 4;
      cfg.zones_y = 4;
      cfg.steps = 2;
      p = apps::pennant::build(rt, cfg).program;
      break;
    }
    case AppKind::kMiniAero: {
      apps::miniaero::Config cfg;
      cfg.nodes = nodes;
      cfg.pieces_per_node = 2;
      cfg.cells_x_per_piece = 2;
      cfg.cells_y = 4;
      cfg.cells_z = 4;
      cfg.steps = 1;
      p = apps::miniaero::build(rt, cfg).program;
      break;
    }
  }
  // Virtual execution only: the checker needs accesses and the HB
  // graph, not data.
  for (auto& t : p.tasks) t.kernel = nullptr;
  return p;
}

struct CheckedRun {
  ExecutionResult res;
  uint32_t num_sync_ops = 0;
};

CheckedRun run_checked(AppKind kind, ExecMode mode, bool p2p,
                       ir::SyncId mutate = ir::kNoSyncId) {
  CostModel cost;
  rt::Runtime rt(runtime_config(4, 2, cost, /*real_data=*/false));
  ExecConfig cfg;
  cfg.cost = cost;
  cfg.mode = mode;
  cfg.pipeline.p2p_sync = p2p;
  cfg.check = true;
  cfg.check_mutate = mutate;
  PreparedRun run = prepare(rt, build_app(rt, kind), cfg);
  CheckedRun out;
  out.res = run.run();
  out.num_sync_ops = run.program->num_sync_ops;
  return out;
}

TEST(Checker, FourAppsZeroRacesAcrossModesAndSyncRegimes) {
  for (AppKind kind : {AppKind::kStencil, AppKind::kCircuit,
                       AppKind::kPennant, AppKind::kMiniAero}) {
    for (ExecMode mode : {ExecMode::kImplicit, ExecMode::kSpmd}) {
      for (bool p2p : {true, false}) {
        const CheckedRun run = run_checked(kind, mode, p2p);
        ASSERT_NE(run.res.check, nullptr);
        EXPECT_GT(run.res.check->stats.pairs_checked, 0u)
            << app_name(kind) << " checked nothing";
        EXPECT_TRUE(run.res.check->ok())
            << app_name(kind)
            << (mode == ExecMode::kSpmd ? " spmd" : " implicit")
            << (p2p ? " p2p: " : " barrier: ")
            << run.res.check->to_text();
      }
    }
  }
}

void mutation_sweep(bool p2p) {
  // The un-mutated run: zero races, and sync ops to mutate exist.
  const CheckedRun clean = run_checked(AppKind::kStencil, ExecMode::kSpmd,
                                       p2p);
  ASSERT_TRUE(clean.res.check->ok()) << clean.res.check->to_text();
  ASSERT_GT(clean.num_sync_ops, 0u);
  for (uint32_t id = 0; id < clean.num_sync_ops; ++id) {
    const CheckedRun mutant = run_checked(AppKind::kStencil,
                                          ExecMode::kSpmd, p2p, id);
    EXPECT_FALSE(mutant.res.check->ok())
        << "deleting sync op " << id << " of " << clean.num_sync_ops
        << (p2p ? " (p2p)" : " (barrier)")
        << " went undetected: every inserted sync op must be load-bearing";
  }
}

TEST(Checker, StencilMutationSweepP2PAllDetected) {
  mutation_sweep(/*p2p=*/true);
}

TEST(Checker, StencilMutationSweepBarrierAllDetected) {
  mutation_sweep(/*p2p=*/false);
}

}  // namespace
}  // namespace cr::exec
