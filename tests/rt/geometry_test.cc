#include "rt/geometry.h"

#include <gtest/gtest.h>

namespace cr::rt {
namespace {

TEST(Rect, VolumeAndEmpty) {
  EXPECT_EQ(Rect::d1(0, 5).volume(), 5u);
  EXPECT_EQ(Rect::d2(0, 0, 3, 4).volume(), 12u);
  EXPECT_EQ(Rect::d3(1, 1, 1, 3, 3, 3).volume(), 8u);
  EXPECT_TRUE(Rect::d1(5, 5).empty());
  EXPECT_TRUE(Rect::d2(0, 3, 4, 3).empty());
}

TEST(Rect, OverlapsAndContains) {
  auto a = Rect::d2(0, 0, 4, 4);
  auto b = Rect::d2(3, 3, 6, 6);
  auto c = Rect::d2(4, 0, 8, 4);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));  // touching edges do not overlap
  EXPECT_TRUE(a.contains(Rect::d2(1, 1, 3, 3)));
  EXPECT_FALSE(a.contains(b));
}

TEST(Rect, IntersectAndUnion) {
  auto a = Rect::d2(0, 0, 4, 4);
  auto b = Rect::d2(2, 1, 6, 3);
  EXPECT_EQ(a.intersect(b), Rect::d2(2, 1, 4, 3));
  EXPECT_EQ(a.bbox_union(b), Rect::d2(0, 0, 6, 4));
}

TEST(GridExtents, LinearizeRoundTrip2D) {
  auto e = GridExtents::d2(5, 7);
  for (int64_t x = 0; x < 5; ++x) {
    for (int64_t y = 0; y < 7; ++y) {
      int64_t rx, ry, rz;
      e.delinearize(e.linearize(x, y), rx, ry, rz);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
      EXPECT_EQ(rz, 0);
    }
  }
}

TEST(GridExtents, LinearizeRoundTrip3D) {
  auto e = GridExtents::d3(3, 4, 5);
  for (int64_t x = 0; x < 3; ++x) {
    for (int64_t y = 0; y < 4; ++y) {
      for (int64_t z = 0; z < 5; ++z) {
        int64_t rx, ry, rz;
        e.delinearize(e.linearize(x, y, z), rx, ry, rz);
        EXPECT_EQ(rx, x);
        EXPECT_EQ(ry, y);
        EXPECT_EQ(rz, z);
      }
    }
  }
}

TEST(GridExtents, InnermostDimIsContiguous) {
  auto e = GridExtents::d2(4, 6);
  EXPECT_EQ(e.linearize(2, 3) + 1, e.linearize(2, 4));
  auto e3 = GridExtents::d3(2, 3, 4);
  EXPECT_EQ(e3.linearize(1, 2, 0) + 1, e3.linearize(1, 2, 1));
}

TEST(GridExtents, RectIdsFullSlabIsOneInterval) {
  auto e = GridExtents::d2(8, 10);
  // A full-width slab of rows 2..4 is contiguous in row-major order.
  auto ids = e.rect_ids(Rect::d2(2, 0, 5, 10));
  EXPECT_EQ(ids.interval_count(), 1u);
  EXPECT_EQ(ids.size(), 30u);
}

TEST(GridExtents, RectIdsTileHasRowSegments) {
  auto e = GridExtents::d2(8, 10);
  auto ids = e.rect_ids(Rect::d2(2, 3, 5, 7));
  EXPECT_EQ(ids.interval_count(), 3u);  // one segment per x-row
  EXPECT_EQ(ids.size(), 12u);
  EXPECT_TRUE(ids.contains(e.linearize(3, 5)));
  EXPECT_FALSE(ids.contains(e.linearize(3, 8)));
}

TEST(GridExtents, RectIdsMatchPointwiseEnumeration3D) {
  auto e = GridExtents::d3(4, 5, 6);
  auto r = Rect::d3(1, 2, 3, 3, 4, 6);
  auto ids = e.rect_ids(r);
  uint64_t count = 0;
  for (int64_t x = r.lo[0]; x < r.hi[0]; ++x) {
    for (int64_t y = r.lo[1]; y < r.hi[1]; ++y) {
      for (int64_t z = r.lo[2]; z < r.hi[2]; ++z) {
        EXPECT_TRUE(ids.contains(e.linearize(x, y, z)));
        ++count;
      }
    }
  }
  EXPECT_EQ(ids.size(), count);
}

TEST(GridExtents, EmptyRectGivesEmptyIds) {
  auto e = GridExtents::d2(4, 4);
  EXPECT_TRUE(e.rect_ids(Rect::d2(2, 2, 2, 4)).empty());
}

}  // namespace
}  // namespace cr::rt
