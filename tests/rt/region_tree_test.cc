#include "rt/region_tree.h"

#include <gtest/gtest.h>

#include <memory>

#include "rt/partition.h"
#include "support/metrics.h"
#include "support/rng.h"

namespace cr::rt {
namespace {

std::shared_ptr<FieldSpace> fs() {
  auto f = std::make_shared<FieldSpace>();
  f->add_field("v");
  return f;
}

// Build the paper's Figure 3 tree: region A with disjoint PA; region B
// with disjoint PB and aliased QB.
struct Fig3 {
  RegionForest forest;
  RegionId a, b;
  PartitionId pa, pb, qb;
  Fig3() {
    a = forest.create_region(IndexSpace::dense(12), fs(), "A");
    b = forest.create_region(IndexSpace::dense(12), fs(), "B");
    pa = partition_equal(forest, a, 3, "PA");
    pb = partition_equal(forest, b, 3, "PB");
    qb = partition_image(
        forest, b, pb, [](uint64_t x, std::vector<uint64_t>& out) {
          out.push_back((x + 3) % 12);  // neighbor shift: aliases PB
        },
        "QB");
  }
};

TEST(RegionTree, DifferentTreesNeverAlias) {
  Fig3 t;
  EXPECT_FALSE(t.forest.may_alias(t.a, t.b));
  EXPECT_FALSE(t.forest.may_alias(t.forest.subregion(t.pa, 0),
                                  t.forest.subregion(t.pb, 0)));
}

TEST(RegionTree, SiblingsOfDisjointPartitionDontAlias) {
  Fig3 t;
  EXPECT_FALSE(t.forest.may_alias(t.forest.subregion(t.pb, 0),
                                  t.forest.subregion(t.pb, 1)));
}

TEST(RegionTree, SiblingsOfAliasedPartitionMayAlias) {
  Fig3 t;
  EXPECT_TRUE(t.forest.may_alias(t.forest.subregion(t.qb, 0),
                                 t.forest.subregion(t.qb, 1)));
}

TEST(RegionTree, CousinsAcrossPartitionsMayAlias) {
  // PB[0] and QB[1] diverge at region B into different partitions.
  Fig3 t;
  EXPECT_TRUE(t.forest.may_alias(t.forest.subregion(t.pb, 0),
                                 t.forest.subregion(t.qb, 1)));
}

TEST(RegionTree, AncestorAliasesDescendant) {
  Fig3 t;
  EXPECT_TRUE(t.forest.may_alias(t.b, t.forest.subregion(t.pb, 2)));
  EXPECT_TRUE(t.forest.may_alias(t.forest.subregion(t.pb, 2), t.b));
}

TEST(RegionTree, SelfAliases) {
  Fig3 t;
  EXPECT_TRUE(t.forest.may_alias(t.b, t.b));
}

TEST(RegionTree, PartitionsMayAliasMatrix) {
  Fig3 t;
  EXPECT_FALSE(t.forest.partitions_may_alias(t.pb, t.pb));  // disjoint
  EXPECT_TRUE(t.forest.partitions_may_alias(t.qb, t.qb));   // aliased
  EXPECT_TRUE(t.forest.partitions_may_alias(t.pb, t.qb));   // same region
  EXPECT_FALSE(t.forest.partitions_may_alias(t.pa, t.pb));  // other tree
}

// Paper §4.5 / Figure 5: a hierarchical private/ghost split makes the
// private partition provably disjoint from the ghost partitions.
TEST(RegionTree, HierarchicalPrivateGhostProvesDisjointness) {
  RegionForest forest;
  RegionId b = forest.create_region(IndexSpace::dense(20), fs(), "B");
  PartitionId pvg = partition_by_color(
      forest, b, 2, [](uint64_t id) { return id < 12 ? 0u : 1u; },
      "private_v_ghost");
  RegionId all_private = forest.subregion(pvg, 0);
  RegionId all_ghost = forest.subregion(pvg, 1);
  PartitionId pb = partition_equal(forest, all_private, 4, "PB");
  PartitionId sb = partition_equal(forest, all_ghost, 4, "SB");
  PartitionId qb = partition_image(
      forest, all_ghost, sb,
      [](uint64_t x, std::vector<uint64_t>& out) { out.push_back(x); },
      "QB");

  // PB lives under all_private; SB/QB under all_ghost: provably disjoint
  // through the disjoint top-level partition.
  EXPECT_FALSE(forest.partitions_may_alias(pb, qb));
  EXPECT_FALSE(forest.partitions_may_alias(pb, sb));
  EXPECT_TRUE(forest.partitions_may_alias(sb, qb));
  EXPECT_FALSE(forest.may_alias(forest.subregion(pb, 0),
                                forest.subregion(qb, 3)));
}

// Property: may_alias must never claim disjoint when the exact index
// spaces overlap (soundness); randomized trees.
class RegionTreeSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionTreeSoundness, LcaTestIsSoundOnRandomTrees) {
  support::Rng rng(GetParam());
  RegionForest forest;
  RegionId root = forest.create_region(IndexSpace::dense(64), fs());
  std::vector<RegionId> regions{root};

  // Randomly grow the tree with equal (disjoint) and image (aliased)
  // partitions.
  for (int step = 0; step < 6; ++step) {
    RegionId target =
        regions[rng.next_below(regions.size())];
    if (forest.region(target).ispace.size() < 4) continue;
    PartitionId p;
    if (rng.next_bool()) {
      p = partition_equal(forest, target, 2 + rng.next_below(3));
    } else {
      const uint64_t shift = rng.next_below(8);
      PartitionId base = partition_equal(forest, target, 2);
      p = partition_image(
          forest, target, base,
          [&, shift](uint64_t x, std::vector<uint64_t>& out) {
            out.push_back(x + shift);
          });
    }
    for (RegionId sub : forest.partition(p).subregions) {
      regions.push_back(sub);
    }
  }

  for (RegionId r1 : regions) {
    for (RegionId r2 : regions) {
      if (forest.overlaps_exact(r1, r2)) {
        EXPECT_TRUE(forest.may_alias(r1, r2))
            << forest.region(r1).name << " vs " << forest.region(r2).name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionTreeSoundness,
                         ::testing::Range<uint64_t>(0, 30));

// Property: the memoized may_alias/overlaps_exact (static fast paths +
// pair cache) must agree with the uncached exact computations on every
// pair, on randomized trees, including on repeat queries served from the
// cache.
class RegionTreeMemoization : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionTreeMemoization, CachedAgreesWithUncachedOnRandomTrees) {
  support::Rng rng(GetParam() * 31 + 7);
  RegionForest forest;
  std::vector<RegionId> regions;
  // Two roots so cross-tree pairs are exercised too.
  for (int t = 0; t < 2; ++t) {
    regions.push_back(forest.create_region(IndexSpace::dense(64), fs()));
  }
  for (int step = 0; step < 8; ++step) {
    RegionId target = regions[rng.next_below(regions.size())];
    if (forest.region(target).ispace.size() < 4) continue;
    PartitionId p;
    if (rng.next_bool()) {
      p = partition_equal(forest, target, 2 + rng.next_below(3));
    } else {
      const uint64_t shift = rng.next_below(8);
      PartitionId base = partition_equal(forest, target, 2);
      p = partition_image(
          forest, target, base,
          [&, shift](uint64_t x, std::vector<uint64_t>& out) {
            out.push_back(x + shift);
          });
    }
    for (RegionId sub : forest.partition(p).subregions) {
      regions.push_back(sub);
    }
  }

  // Two passes: the first fills the pair cache, the second must be
  // answered from it; both must match the uncached reference.
  for (int pass = 0; pass < 2; ++pass) {
    for (RegionId r1 : regions) {
      for (RegionId r2 : regions) {
        EXPECT_EQ(forest.may_alias(r1, r2),
                  forest.may_alias_uncached(r1, r2))
            << "pass " << pass << ": " << forest.region(r1).name << " vs "
            << forest.region(r2).name;
        // may_alias is allowed to be conservative, but overlaps_exact is
        // exact by contract: compare against the raw interval test.
        EXPECT_EQ(forest.overlaps_exact(r1, r2),
                  forest.overlaps_exact_uncached(r1, r2))
            << "pass " << pass << ": " << forest.region(r1).name << " vs "
            << forest.region(r2).name;
      }
    }
  }
  support::MetricsRegistry m;
  forest.export_metrics(m);
  const auto snap = m.snapshot();
  const double n2 = static_cast<double>(2 * regions.size() * regions.size());
  EXPECT_EQ(snap.at("rt.alias.queries"), n2);
  EXPECT_EQ(snap.at("rt.overlap.queries"), n2);
  // Every query is resolved by a fast path, the cache, or exact work.
  EXPECT_GE(snap.at("rt.alias.fast") + snap.at("rt.alias.cache_hits"),
            n2 / 2);  // pass 2 never walks
  EXPECT_GE(snap.at("rt.overlap.static") + snap.at("rt.overlap.cache_hits"),
            n2 / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionTreeMemoization,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace cr::rt
