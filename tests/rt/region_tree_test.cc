#include "rt/region_tree.h"

#include <gtest/gtest.h>

#include <memory>

#include "rt/partition.h"
#include "support/rng.h"

namespace cr::rt {
namespace {

std::shared_ptr<FieldSpace> fs() {
  auto f = std::make_shared<FieldSpace>();
  f->add_field("v");
  return f;
}

// Build the paper's Figure 3 tree: region A with disjoint PA; region B
// with disjoint PB and aliased QB.
struct Fig3 {
  RegionForest forest;
  RegionId a, b;
  PartitionId pa, pb, qb;
  Fig3() {
    a = forest.create_region(IndexSpace::dense(12), fs(), "A");
    b = forest.create_region(IndexSpace::dense(12), fs(), "B");
    pa = partition_equal(forest, a, 3, "PA");
    pb = partition_equal(forest, b, 3, "PB");
    qb = partition_image(
        forest, b, pb, [](uint64_t x, std::vector<uint64_t>& out) {
          out.push_back((x + 3) % 12);  // neighbor shift: aliases PB
        },
        "QB");
  }
};

TEST(RegionTree, DifferentTreesNeverAlias) {
  Fig3 t;
  EXPECT_FALSE(t.forest.may_alias(t.a, t.b));
  EXPECT_FALSE(t.forest.may_alias(t.forest.subregion(t.pa, 0),
                                  t.forest.subregion(t.pb, 0)));
}

TEST(RegionTree, SiblingsOfDisjointPartitionDontAlias) {
  Fig3 t;
  EXPECT_FALSE(t.forest.may_alias(t.forest.subregion(t.pb, 0),
                                  t.forest.subregion(t.pb, 1)));
}

TEST(RegionTree, SiblingsOfAliasedPartitionMayAlias) {
  Fig3 t;
  EXPECT_TRUE(t.forest.may_alias(t.forest.subregion(t.qb, 0),
                                 t.forest.subregion(t.qb, 1)));
}

TEST(RegionTree, CousinsAcrossPartitionsMayAlias) {
  // PB[0] and QB[1] diverge at region B into different partitions.
  Fig3 t;
  EXPECT_TRUE(t.forest.may_alias(t.forest.subregion(t.pb, 0),
                                 t.forest.subregion(t.qb, 1)));
}

TEST(RegionTree, AncestorAliasesDescendant) {
  Fig3 t;
  EXPECT_TRUE(t.forest.may_alias(t.b, t.forest.subregion(t.pb, 2)));
  EXPECT_TRUE(t.forest.may_alias(t.forest.subregion(t.pb, 2), t.b));
}

TEST(RegionTree, SelfAliases) {
  Fig3 t;
  EXPECT_TRUE(t.forest.may_alias(t.b, t.b));
}

TEST(RegionTree, PartitionsMayAliasMatrix) {
  Fig3 t;
  EXPECT_FALSE(t.forest.partitions_may_alias(t.pb, t.pb));  // disjoint
  EXPECT_TRUE(t.forest.partitions_may_alias(t.qb, t.qb));   // aliased
  EXPECT_TRUE(t.forest.partitions_may_alias(t.pb, t.qb));   // same region
  EXPECT_FALSE(t.forest.partitions_may_alias(t.pa, t.pb));  // other tree
}

// Paper §4.5 / Figure 5: a hierarchical private/ghost split makes the
// private partition provably disjoint from the ghost partitions.
TEST(RegionTree, HierarchicalPrivateGhostProvesDisjointness) {
  RegionForest forest;
  RegionId b = forest.create_region(IndexSpace::dense(20), fs(), "B");
  PartitionId pvg = partition_by_color(
      forest, b, 2, [](uint64_t id) { return id < 12 ? 0u : 1u; },
      "private_v_ghost");
  RegionId all_private = forest.subregion(pvg, 0);
  RegionId all_ghost = forest.subregion(pvg, 1);
  PartitionId pb = partition_equal(forest, all_private, 4, "PB");
  PartitionId sb = partition_equal(forest, all_ghost, 4, "SB");
  PartitionId qb = partition_image(
      forest, all_ghost, sb,
      [](uint64_t x, std::vector<uint64_t>& out) { out.push_back(x); },
      "QB");

  // PB lives under all_private; SB/QB under all_ghost: provably disjoint
  // through the disjoint top-level partition.
  EXPECT_FALSE(forest.partitions_may_alias(pb, qb));
  EXPECT_FALSE(forest.partitions_may_alias(pb, sb));
  EXPECT_TRUE(forest.partitions_may_alias(sb, qb));
  EXPECT_FALSE(forest.may_alias(forest.subregion(pb, 0),
                                forest.subregion(qb, 3)));
}

// Property: may_alias must never claim disjoint when the exact index
// spaces overlap (soundness); randomized trees.
class RegionTreeSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionTreeSoundness, LcaTestIsSoundOnRandomTrees) {
  support::Rng rng(GetParam());
  RegionForest forest;
  RegionId root = forest.create_region(IndexSpace::dense(64), fs());
  std::vector<RegionId> regions{root};

  // Randomly grow the tree with equal (disjoint) and image (aliased)
  // partitions.
  for (int step = 0; step < 6; ++step) {
    RegionId target =
        regions[rng.next_below(regions.size())];
    if (forest.region(target).ispace.size() < 4) continue;
    PartitionId p;
    if (rng.next_bool()) {
      p = partition_equal(forest, target, 2 + rng.next_below(3));
    } else {
      const uint64_t shift = rng.next_below(8);
      PartitionId base = partition_equal(forest, target, 2);
      p = partition_image(
          forest, target, base,
          [&, shift](uint64_t x, std::vector<uint64_t>& out) {
            out.push_back(x + shift);
          });
    }
    for (RegionId sub : forest.partition(p).subregions) {
      regions.push_back(sub);
    }
  }

  for (RegionId r1 : regions) {
    for (RegionId r2 : regions) {
      if (forest.overlaps_exact(r1, r2)) {
        EXPECT_TRUE(forest.may_alias(r1, r2))
            << forest.region(r1).name << " vs " << forest.region(r2).name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionTreeSoundness,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace cr::rt
