#include "rt/physical.h"

#include <gtest/gtest.h>

#include <memory>

#include "rt/partition.h"

namespace cr::rt {
namespace {

struct Fixture {
  RegionForest forest;
  std::shared_ptr<FieldSpace> fs = std::make_shared<FieldSpace>();
  FieldId v, ptr;
  RegionId r;
  Fixture() {
    v = fs->add_field("v");
    ptr = fs->add_field("ptr", FieldType::kI64);
    r = forest.create_region(IndexSpace::dense(10), fs);
  }
};

TEST(ReduceOps, IdentityAndFold) {
  EXPECT_EQ(reduce_fold(ReduceOp::kSum, reduce_identity(ReduceOp::kSum), 5.0),
            5.0);
  EXPECT_EQ(reduce_fold(ReduceOp::kMin, reduce_identity(ReduceOp::kMin), 5.0),
            5.0);
  EXPECT_EQ(reduce_fold(ReduceOp::kMax, reduce_identity(ReduceOp::kMax), 5.0),
            5.0);
  EXPECT_EQ(reduce_fold(ReduceOp::kMin, 3.0, 5.0), 3.0);
  EXPECT_EQ(reduce_fold(ReduceOp::kMax, 3.0, 5.0), 5.0);
  EXPECT_EQ(reduce_fold(ReduceOp::kSum, 3.0, 5.0), 8.0);
  EXPECT_EQ(reduce_fold_i64(ReduceOp::kMin, reduce_identity_i64(ReduceOp::kMin),
                            7),
            7);
}

TEST(PhysicalInstance, ReadWriteRoundTrip) {
  Fixture f;
  InstanceManager mgr(f.forest);
  auto& inst = mgr.get(mgr.create(f.r, 0));
  inst.write_f64(f.v, 3, 2.5);
  inst.write_i64(f.ptr, 3, -7);
  EXPECT_EQ(inst.read_f64(f.v, 3), 2.5);
  EXPECT_EQ(inst.read_i64(f.ptr, 3), -7);
  EXPECT_EQ(inst.read_f64(f.v, 4), 0.0);  // zero-initialized
}

TEST(PhysicalInstance, SubregionInstanceAddressesByGlobalId) {
  Fixture f;
  PartitionId p = partition_equal(f.forest, f.r, 2);
  InstanceManager mgr(f.forest);
  auto& inst = mgr.get(mgr.create(f.forest.subregion(p, 1), 0));
  // Subregion [5,10): global id 7 maps to local offset 2 internally.
  inst.write_f64(f.v, 7, 9.0);
  EXPECT_EQ(inst.read_f64(f.v, 7), 9.0);
  EXPECT_EQ(inst.domain().size(), 5u);
}

TEST(PhysicalInstance, CopyFromMovesOnlyRequestedPoints) {
  Fixture f;
  InstanceManager mgr(f.forest);
  auto& a = mgr.get(mgr.create(f.r, 0));
  auto& b = mgr.get(mgr.create(f.r, 1));
  for (uint64_t i = 0; i < 10; ++i) a.write_f64(f.v, i, double(i));
  b.copy_from(a, support::IntervalSet::range(2, 5), {f.v});
  EXPECT_EQ(b.read_f64(f.v, 2), 2.0);
  EXPECT_EQ(b.read_f64(f.v, 4), 4.0);
  EXPECT_EQ(b.read_f64(f.v, 5), 0.0);  // outside the copy set
}

TEST(PhysicalInstance, CopyMovesI64Fields) {
  Fixture f;
  InstanceManager mgr(f.forest);
  auto& a = mgr.get(mgr.create(f.r, 0));
  auto& b = mgr.get(mgr.create(f.r, 1));
  a.write_i64(f.ptr, 1, 42);
  b.copy_from(a, support::IntervalSet::range(0, 10), {f.ptr});
  EXPECT_EQ(b.read_i64(f.ptr, 1), 42);
}

TEST(PhysicalInstance, FoldFromAppliesReduction) {
  Fixture f;
  InstanceManager mgr(f.forest);
  auto& a = mgr.get(mgr.create(f.r, 0));
  auto& b = mgr.get(mgr.create(f.r, 1));
  a.write_f64(f.v, 0, 3.0);
  b.write_f64(f.v, 0, 10.0);
  b.fold_from(a, support::IntervalSet::range(0, 1), {f.v}, ReduceOp::kSum);
  EXPECT_EQ(b.read_f64(f.v, 0), 13.0);
  b.fold_from(a, support::IntervalSet::range(0, 1), {f.v}, ReduceOp::kMin);
  EXPECT_EQ(b.read_f64(f.v, 0), 3.0);
}

TEST(PhysicalInstance, FillSetsAllElements) {
  Fixture f;
  InstanceManager mgr(f.forest);
  auto& a = mgr.get(mgr.create(f.r, 0));
  a.fill_f64(f.v, 7.5);
  EXPECT_EQ(a.read_f64(f.v, 0), 7.5);
  EXPECT_EQ(a.read_f64(f.v, 9), 7.5);
}

TEST(PhysicalInstance, ReduceF64PointwiseFold) {
  Fixture f;
  InstanceManager mgr(f.forest);
  auto& a = mgr.get(mgr.create(f.r, 0));
  a.reduce_f64(f.v, 5, ReduceOp::kSum, 2.0);
  a.reduce_f64(f.v, 5, ReduceOp::kSum, 3.0);
  EXPECT_EQ(a.read_f64(f.v, 5), 5.0);
}

}  // namespace
}  // namespace cr::rt
