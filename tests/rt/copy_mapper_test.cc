// Tests for the copy engine and the default mapper.
#include <gtest/gtest.h>

#include <memory>

#include "rt/copy.h"
#include "rt/mapper.h"
#include "rt/partition.h"
#include "rt/runtime.h"

namespace cr::rt {
namespace {

struct Fixture {
  Runtime rt;
  std::shared_ptr<FieldSpace> fs = std::make_shared<FieldSpace>();
  FieldId v;
  RegionId r;
  Fixture()
      : rt(RuntimeConfig{.machine = {.nodes = 4, .cores_per_node = 2},
                         .network = {.latency_ns = 100,
                                     .bandwidth_gbps = 1.0,
                                     .mem_bandwidth_gbps = 10.0,
                                     .am_handler_ns = 0},
                         .real_data = true}) {
    v = fs->add_field("v");
    r = rt.forest().create_region(IndexSpace::dense(100), fs);
  }
};

TEST(CopyEngine, MovesRealDataOnDelivery) {
  Fixture f;
  auto* mgr = f.rt.instances();
  InstanceId src = mgr->create(f.r, 0);
  InstanceId dst = mgr->create(f.r, 1);
  mgr->get(src).write_f64(f.v, 7, 3.5);

  CopyRequest req;
  req.src_region = req.dst_region = f.r;
  req.src_node = 0;
  req.dst_node = 1;
  req.src_inst = src;
  req.dst_inst = dst;
  req.points = support::IntervalSet::range(0, 10);
  req.fields = {f.v};
  sim::Event done = f.rt.copies().issue(req, sim::Event());
  EXPECT_EQ(mgr->get(dst).read_f64(f.v, 7), 0.0);  // not yet delivered
  f.rt.sim().run();
  EXPECT_TRUE(done.has_triggered());
  EXPECT_EQ(mgr->get(dst).read_f64(f.v, 7), 3.5);
  // 10 elements * 8 bytes at 1 B/ns + 100 ns latency.
  EXPECT_EQ(done.trigger_time(), 180u);
  EXPECT_EQ(f.rt.copies().bytes_moved(), 80u);
}

TEST(CopyEngine, EmptyCopyIsSkipped) {
  Fixture f;
  CopyRequest req;
  req.src_region = req.dst_region = f.r;
  req.points = support::IntervalSet();
  req.fields = {f.v};
  sim::UserEvent pre(f.rt.sim());
  sim::Event done = f.rt.copies().issue(req, pre.event());
  EXPECT_EQ(done, pre.event());  // pass-through, no traffic
  EXPECT_EQ(f.rt.copies().copies_skipped_empty(), 1u);
  EXPECT_EQ(f.rt.network().messages_sent(), 0u);
}

TEST(CopyEngine, ReductionCopyFolds) {
  Fixture f;
  auto* mgr = f.rt.instances();
  InstanceId src = mgr->create(f.r, 0);
  InstanceId dst = mgr->create(f.r, 0);
  mgr->get(src).write_f64(f.v, 0, 4.0);
  mgr->get(dst).write_f64(f.v, 0, 10.0);
  CopyRequest req;
  req.src_region = req.dst_region = f.r;
  req.src_inst = src;
  req.dst_inst = dst;
  req.points = support::IntervalSet::range(0, 1);
  req.fields = {f.v};
  req.reduction = true;
  req.redop = ReduceOp::kSum;
  f.rt.copies().issue(req, sim::Event());
  f.rt.sim().run();
  EXPECT_EQ(mgr->get(dst).read_f64(f.v, 0), 14.0);
}

TEST(CopyEngine, VirtualBytesScaleCost) {
  Fixture f;
  auto wide = std::make_shared<FieldSpace>();
  FieldId fw = wide->add_field("w", FieldType::kF64, /*virtual_bytes=*/40);
  RegionId r2 = f.rt.forest().create_region(IndexSpace::dense(10), wide);
  CopyRequest req;
  req.src_region = req.dst_region = r2;
  req.src_node = 0;
  req.dst_node = 1;
  req.src_inst = f.rt.instances()->create(r2, 0);
  req.dst_inst = f.rt.instances()->create(r2, 1);
  req.points = support::IntervalSet::range(0, 10);
  req.fields = {fw};
  f.rt.copies().issue(req, sim::Event());
  f.rt.sim().run();
  EXPECT_EQ(f.rt.copies().bytes_moved(), 400u);
}

TEST(Mapper, BlockDistributionOfColors) {
  Fixture f;  // 4 nodes
  Mapper& m = f.rt.mapper();
  // 8 colors over 4 nodes: 2 each.
  EXPECT_EQ(m.node_of_color(0, 8), 0u);
  EXPECT_EQ(m.node_of_color(1, 8), 0u);
  EXPECT_EQ(m.node_of_color(2, 8), 1u);
  EXPECT_EQ(m.node_of_color(7, 8), 3u);
}

TEST(Mapper, BlockDistributionWithRemainder) {
  Fixture f;
  Mapper& m = f.rt.mapper();
  // 6 colors over 4 nodes: sizes 2,2,1,1.
  EXPECT_EQ(m.node_of_color(0, 6), 0u);
  EXPECT_EQ(m.node_of_color(1, 6), 0u);
  EXPECT_EQ(m.node_of_color(2, 6), 1u);
  EXPECT_EQ(m.node_of_color(3, 6), 1u);
  EXPECT_EQ(m.node_of_color(4, 6), 2u);
  EXPECT_EQ(m.node_of_color(5, 6), 3u);
}

TEST(Mapper, ShardPerNode) {
  Fixture f;
  Mapper& m = f.rt.mapper();
  for (uint32_t s = 0; s < 4; ++s) EXPECT_EQ(m.shard_node(s, 4), s);
}

TEST(Mapper, ComputeProcsAvoidReservedCore) {
  Fixture f;  // 2 cores/node, 1 reserved
  Mapper& m = f.rt.mapper();
  EXPECT_EQ(m.compute_cores_per_node(), 1u);
  for (uint64_t seq = 0; seq < 5; ++seq) {
    EXPECT_EQ(m.compute_proc(2, seq).core, 1u);
    EXPECT_EQ(m.compute_proc(2, seq).node, 2u);
  }
  EXPECT_EQ(m.control_proc(3).core, 0u);
}

TEST(Mapper, NoReservationUsesAllCores) {
  sim::Simulator sim;
  sim::Machine machine(sim, {.nodes = 1, .cores_per_node = 4});
  Mapper m(machine, MapperOptions{.reserved_cores = 0});
  EXPECT_EQ(m.compute_cores_per_node(), 4u);
  EXPECT_EQ(m.compute_proc(0, 0).core, 0u);
  EXPECT_EQ(m.compute_proc(0, 5).core, 1u);
}

// Regression: cores == reserved_cores used to leave compute_cores_ == 0
// and divide by zero in compute_proc's round-robin. The constructor now
// clamps the reservation so at least one compute core survives.
TEST(Mapper, SingleCoreNodeClampsReservation) {
  sim::Simulator sim;
  sim::Machine machine(sim, {.nodes = 2, .cores_per_node = 1});
  Mapper m(machine, MapperOptions{.reserved_cores = 1});
  EXPECT_EQ(m.compute_cores_per_node(), 1u);
  for (uint64_t seq = 0; seq < 3; ++seq) {
    EXPECT_EQ(m.compute_proc(1, seq).core, 0u);  // no div/mod by zero
    EXPECT_EQ(m.compute_proc(1, seq).node, 1u);
  }
  EXPECT_EQ(m.control_proc(0).core, 0u);
}

TEST(Mapper, OverReservationClampsToOneComputeCore) {
  sim::Simulator sim;
  sim::Machine machine(sim, {.nodes = 1, .cores_per_node = 3});
  Mapper m(machine, MapperOptions{.reserved_cores = 7});
  EXPECT_EQ(m.compute_cores_per_node(), 1u);
  EXPECT_EQ(m.compute_proc(0, 4).core, 2u);  // the one surviving core
}

TEST(Mapper, FewerColorsThanNodes) {
  Fixture f;
  Mapper& m = f.rt.mapper();
  // 2 colors over 4 nodes: one per node on the first two nodes.
  EXPECT_EQ(m.node_of_color(0, 2), 0u);
  EXPECT_EQ(m.node_of_color(1, 2), 1u);
}

}  // namespace
}  // namespace cr::rt
