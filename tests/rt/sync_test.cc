// Tests for phase barriers and dynamic collectives.
#include <gtest/gtest.h>

#include "rt/barrier.h"
#include "rt/collective.h"
#include "sim/simulator.h"

namespace cr::rt {
namespace {

sim::NetworkConfig flat_net() {
  sim::NetworkConfig c;
  c.latency_ns = 100;
  c.am_handler_ns = 0;
  c.bandwidth_gbps = 1.0;
  return c;
}

TEST(PhaseBarrier, ReleasesAfterAllArrivals) {
  sim::Simulator sim;
  sim::Network net(sim, 4, flat_net());
  PhaseBarrier pb(sim, net, 4);
  sim::Event done = pb.wait(0);
  for (uint32_t i = 0; i < 4; ++i) {
    sim::UserEvent arrival(sim);
    pb.arrive(0, arrival.event());
    sim.schedule_at(10 * (i + 1), [arrival]() mutable { arrival.trigger(); });
  }
  sim.run();
  ASSERT_TRUE(done.has_triggered());
  // Last arrival at 40, plus 2 * tree latency (2 levels * 100ns).
  EXPECT_EQ(done.trigger_time(), 40u + 2 * net.tree_latency(4));
}

TEST(PhaseBarrier, GenerationsAreIndependent) {
  sim::Simulator sim;
  sim::Network net(sim, 2, flat_net());
  PhaseBarrier pb(sim, net, 2);
  sim::UserEvent a0(sim), b0(sim), a1(sim), b1(sim);
  pb.arrive(0, a0.event());
  pb.arrive(1, a1.event());
  pb.arrive(0, b0.event());
  pb.arrive(1, b1.event());
  sim::Event g0 = pb.wait(0), g1 = pb.wait(1);
  sim.schedule_at(10, [&] { a0.trigger(); });
  sim.schedule_at(20, [&] { b0.trigger(); });
  // Generation 1 completes *before* generation 0 arrives fully — phases
  // don't serialize unless the program orders them.
  sim.schedule_at(1, [&] {
    a1.trigger();
    b1.trigger();
  });
  sim.run();
  EXPECT_TRUE(g0.has_triggered() && g1.has_triggered());
  EXPECT_LT(g1.trigger_time(), g0.trigger_time());
}

TEST(PhaseBarrier, SingleParticipantCostsNothing) {
  sim::Simulator sim;
  sim::Network net(sim, 1, flat_net());
  PhaseBarrier pb(sim, net, 1);
  pb.arrive(0, sim::Event());
  sim::Event done = pb.wait(0);
  sim.run();
  EXPECT_EQ(done.trigger_time(), 0u);
}

TEST(PhaseBarrierDeath, OverSubscriptionAborts) {
  sim::Simulator sim;
  sim::Network net(sim, 2, flat_net());
  PhaseBarrier pb(sim, net, 1);
  pb.arrive(0, sim::Event());
  EXPECT_DEATH(pb.arrive(0, sim::Event()), "");
}

TEST(DynamicCollective, FoldsAllContributionsDeterministically) {
  sim::Simulator sim;
  sim::Network net(sim, 4, flat_net());
  DynamicCollective dc(sim, net, 4, ReduceOp::kMin);
  double values[4] = {5.0, 2.0, 9.0, 7.0};
  for (uint32_t r = 0; r < 4; ++r) {
    dc.contribute(0, r, sim::Event(), [&values, r] { return values[r]; });
  }
  sim::Event done = dc.result_event(0);
  sim.run();
  ASSERT_TRUE(done.has_triggered());
  EXPECT_EQ(dc.result(0), 2.0);
  EXPECT_EQ(done.trigger_time(), 2 * net.tree_latency(4));
}

TEST(DynamicCollective, SamplesValuesAtCompletionNotRegistration) {
  sim::Simulator sim;
  sim::Network net(sim, 2, flat_net());
  DynamicCollective dc(sim, net, 2, ReduceOp::kSum);
  double acc = 0.0;  // filled "by point tasks" during the run
  sim::UserEvent local_done(sim);
  dc.contribute(0, 0, local_done.event(), [&acc] { return acc; });
  dc.contribute(0, 1, sim::Event(), [] { return 1.0; });
  sim.schedule_at(50, [&] {
    acc = 41.0;
    local_done.trigger();
  });
  sim.run();
  EXPECT_EQ(dc.result(0), 42.0);
}

TEST(DynamicCollective, GenerationsIndependent) {
  sim::Simulator sim;
  sim::Network net(sim, 2, flat_net());
  DynamicCollective dc(sim, net, 2, ReduceOp::kSum);
  for (uint32_t r = 0; r < 2; ++r) {
    dc.contribute(0, r, sim::Event(), [] { return 1.0; });
    dc.contribute(1, r, sim::Event(), [] { return 2.0; });
  }
  sim.run();
  EXPECT_EQ(dc.result(0), 2.0);
  EXPECT_EQ(dc.result(1), 4.0);
}

TEST(DynamicCollectiveDeath, ResultBeforeCompletionAborts) {
  sim::Simulator sim;
  sim::Network net(sim, 2, flat_net());
  DynamicCollective dc(sim, net, 2, ReduceOp::kSum);
  dc.contribute(0, 0, sim::Event(), [] { return 1.0; });
  EXPECT_DEATH((void)dc.result(0), "before completion");
}

}  // namespace
}  // namespace cr::rt
