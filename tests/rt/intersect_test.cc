#include "rt/intersect.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "rt/partition.h"
#include "support/rng.h"

namespace cr::rt {
namespace {

std::shared_ptr<FieldSpace> fs() {
  auto f = std::make_shared<FieldSpace>();
  f->add_field("v");
  return f;
}

TEST(IntervalTree, FindsOverlaps) {
  IntervalTree tree({{{0, 10}, 1}, {{5, 15}, 2}, {{20, 30}, 3}});
  std::vector<uint64_t> out;
  tree.query({7, 9}, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 2}));
}

TEST(IntervalTree, EmptyQueryAndEmptyTree) {
  IntervalTree empty({});
  std::vector<uint64_t> out;
  empty.query({0, 100}, out);
  EXPECT_TRUE(out.empty());
  IntervalTree tree({{{0, 10}, 1}});
  tree.query({10, 10}, out);  // empty interval
  EXPECT_TRUE(out.empty());
}

TEST(IntervalTree, TouchingEndpointsDoNotOverlap) {
  IntervalTree tree({{{0, 10}, 1}});
  std::vector<uint64_t> out;
  tree.query({10, 20}, out);
  EXPECT_TRUE(out.empty());
}

class IntervalTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalTreeProperty, MatchesBruteForce) {
  support::Rng rng(GetParam());
  std::vector<IntervalTree::Entry> entries;
  for (uint64_t i = 0; i < 80; ++i) {
    const uint64_t lo = rng.next_below(1000);
    entries.push_back({{lo, lo + 1 + rng.next_below(60)}, i});
  }
  IntervalTree tree(entries);
  for (int q = 0; q < 30; ++q) {
    const uint64_t lo = rng.next_below(1000);
    const support::Interval qi{lo, lo + 1 + rng.next_below(100)};
    std::vector<uint64_t> got;
    tree.query(qi, got);
    std::set<uint64_t> want;
    for (const auto& e : entries) {
      if (e.iv.lo < qi.hi && e.iv.hi > qi.lo) want.insert(e.payload);
    }
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTreeProperty,
                         ::testing::Range<uint64_t>(0, 20));

TEST(Bvh, FindsOverlappingRects) {
  Bvh bvh({{Rect::d2(0, 0, 4, 4), 1},
           {Rect::d2(3, 3, 8, 8), 2},
           {Rect::d2(10, 10, 12, 12), 3}});
  std::vector<uint64_t> out;
  bvh.query(Rect::d2(3, 3, 4, 4), out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 2}));
}

class BvhProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BvhProperty, MatchesBruteForce) {
  support::Rng rng(GetParam());
  std::vector<Bvh::Entry> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    const int64_t x = rng.next_in(0, 90), y = rng.next_in(0, 90);
    entries.push_back(
        {Rect::d2(x, y, x + 1 + rng.next_in(0, 15), y + 1 + rng.next_in(0, 15)),
         i});
  }
  Bvh bvh(entries);
  for (int q = 0; q < 30; ++q) {
    const int64_t x = rng.next_in(0, 90), y = rng.next_in(0, 90);
    const Rect qr = Rect::d2(x, y, x + 1 + rng.next_in(0, 25),
                             y + 1 + rng.next_in(0, 25));
    std::vector<uint64_t> got;
    bvh.query(qr, got);
    std::set<uint64_t> want;
    for (const auto& e : entries) {
      if (e.box.overlaps(qr)) want.insert(e.payload);
    }
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BvhProperty,
                         ::testing::Range<uint64_t>(0, 20));

// ---- shallow/complete intersections on partitions ----

std::set<std::pair<uint64_t, uint64_t>> brute_force_pairs(
    const RegionForest& forest, PartitionId p, PartitionId q) {
  std::set<std::pair<uint64_t, uint64_t>> out;
  const auto& ps = forest.partition(p).subregions;
  const auto& qs = forest.partition(q).subregions;
  for (uint64_t i = 0; i < ps.size(); ++i) {
    for (uint64_t j = 0; j < qs.size(); ++j) {
      if (forest.overlaps_exact(ps[i], qs[j])) out.insert({i, j});
    }
  }
  return out;
}

std::set<std::pair<uint64_t, uint64_t>> to_set(
    const std::vector<IntersectionPair>& pairs) {
  std::set<std::pair<uint64_t, uint64_t>> out;
  for (const auto& p : pairs) out.insert({p.src_color, p.dst_color});
  return out;
}

TEST(ShallowIntersection, HaloPatternIsLinearNotQuadratic) {
  // 1D halo: each QB[i] overlaps PB[i-1], PB[i], PB[i+1] — so the number
  // of pairs is O(N), the property §3.3 exploits.
  RegionForest forest;
  const uint64_t n = 32;
  RegionId b = forest.create_region(IndexSpace::dense(n * 10), fs());
  PartitionId pb = partition_equal(forest, b, n);
  PartitionId qb = partition_image(
      forest, b, pb, [&](uint64_t x, std::vector<uint64_t>& out) {
        if (x >= 2) out.push_back(x - 2);
        out.push_back(x);
        if (x + 2 < n * 10) out.push_back(x + 2);
      });
  auto pairs = shallow_intersections(forest, pb, qb);
  EXPECT_EQ(to_set(pairs), brute_force_pairs(forest, pb, qb));
  EXPECT_LT(pairs.size(), 3 * n + 1);  // linear, not n^2
  EXPECT_GE(pairs.size(), n);
}

TEST(ShallowIntersection, Structured2DTiles) {
  RegionForest forest;
  RegionId g =
      forest.create_region(IndexSpace::grid(GridExtents::d2(24, 24)), fs());
  PartitionId tiles = partition_grid(forest, g, {4, 4, 1});
  // Halo image: each tile expands by 1 in each direction.
  PartitionId halo = partition_image(
      forest, g, tiles, [&](uint64_t id, std::vector<uint64_t>& out) {
        const auto& e = forest.region(g).ispace.extents();
        int64_t x, y, z;
        e.delinearize(id, x, y, z);
        for (int64_t dx = -1; dx <= 1; ++dx) {
          for (int64_t dy = -1; dy <= 1; ++dy) {
            const int64_t nx = x + dx, ny = y + dy;
            if (nx >= 0 && nx < 24 && ny >= 0 && ny < 24) {
              out.push_back(e.linearize(nx, ny));
            }
          }
        }
      });
  auto pairs = shallow_intersections(forest, tiles, halo);
  EXPECT_EQ(to_set(pairs), brute_force_pairs(forest, tiles, halo));
  // Each tile intersects at most its 3x3 neighborhood of halos.
  EXPECT_LE(pairs.size(), 16u * 9u);
}

class ShallowProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShallowProperty, MatchesBruteForceOnRandomImages) {
  support::Rng rng(GetParam());
  RegionForest forest;
  const uint64_t size = 200 + rng.next_below(300);
  RegionId b = forest.create_region(IndexSpace::dense(size), fs());
  PartitionId pb = partition_equal(forest, b, 4 + rng.next_below(8));
  const uint64_t stride = 1 + rng.next_below(size);
  PartitionId qb = partition_image(
      forest, b, pb, [&](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back((x * stride + 7) % size);  // scrambled access
      });
  EXPECT_EQ(to_set(shallow_intersections(forest, pb, qb)),
            brute_force_pairs(forest, pb, qb));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShallowProperty,
                         ::testing::Range<uint64_t>(0, 25));

TEST(CompleteIntersection, ExactElements) {
  RegionForest forest;
  RegionId b = forest.create_region(IndexSpace::dense(100), fs());
  PartitionId pb = partition_equal(forest, b, 10);
  PartitionId qb = partition_image(
      forest, b, pb, [](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back(x + 5 < 100 ? x + 5 : x);
      });
  // PB[1] = [10,20); QB[0] = [5,15): intersection [10,15).
  auto inter = complete_intersection(forest, forest.subregion(pb, 1),
                                     forest.subregion(qb, 0));
  EXPECT_EQ(inter, support::IntervalSet::range(10, 15));
}

}  // namespace
}  // namespace cr::rt
