#include "rt/index_space.h"

#include <gtest/gtest.h>

namespace cr::rt {
namespace {

TEST(IndexSpace, DenseBasics) {
  auto is = IndexSpace::dense(10);
  EXPECT_EQ(is.size(), 10u);
  EXPECT_TRUE(is.contains(0) && is.contains(9));
  EXPECT_FALSE(is.contains(10));
  EXPECT_TRUE(is.structured());
}

TEST(IndexSpace, GridVolume) {
  auto is = IndexSpace::grid(GridExtents::d2(4, 6));
  EXPECT_EQ(is.size(), 24u);
  EXPECT_EQ(is.extents().dim, 2);
}

TEST(IndexSpace, UnstructuredFromIntervals) {
  auto is = IndexSpace::unstructured(
      support::IntervalSet::from_points({3, 5, 6, 7, 100}));
  EXPECT_EQ(is.size(), 5u);
  EXPECT_FALSE(is.structured());
}

TEST(IndexSpace, SubspaceInheritsStructure) {
  auto is = IndexSpace::grid(GridExtents::d2(4, 4));
  auto sub = is.subspace(support::IntervalSet::range(4, 8));
  EXPECT_TRUE(sub.structured());
  EXPECT_EQ(sub.size(), 4u);
}

TEST(IndexSpace, RankIsInverseOfPointAt) {
  auto is = IndexSpace::unstructured(
      support::IntervalSet::from_points({2, 3, 10, 11, 12, 50}));
  for (uint64_t r = 0; r < is.size(); ++r) {
    EXPECT_EQ(is.rank(is.point_at(r)), r);
  }
}

TEST(IndexSpace, RankDense) {
  auto is = IndexSpace::dense(100);
  EXPECT_EQ(is.rank(0), 0u);
  EXPECT_EQ(is.rank(57), 57u);
}

TEST(IndexSpace, BoundingRectOfGridTile) {
  auto grid = IndexSpace::grid(GridExtents::d2(8, 8));
  auto tile = grid.subspace(grid.extents().rect_ids(Rect::d2(2, 3, 5, 7)));
  EXPECT_EQ(tile.bounding_rect(), Rect::d2(2, 3, 5, 7));
}

TEST(IndexSpace, BoundingRectConservativeForWrappedInterval) {
  auto grid = IndexSpace::grid(GridExtents::d2(4, 4));
  // ids 2..10 wrap across rows; the bbox must contain all of them.
  auto sub = grid.subspace(support::IntervalSet::range(2, 10));
  Rect bb = sub.bounding_rect();
  sub.points().for_each_point([&](uint64_t id) {
    int64_t x, y, z;
    grid.extents().delinearize(id, x, y, z);
    EXPECT_TRUE(bb.contains(Rect::d2(x, y, x + 1, y + 1)))
        << "point (" << x << "," << y << ") escapes bbox";
  });
}

TEST(IndexSpace, BoundingRectUnstructured) {
  auto is = IndexSpace::unstructured(
      support::IntervalSet::from_points({5, 9, 17}));
  EXPECT_EQ(is.bounding_rect(), Rect::d1(5, 18));
}

TEST(IndexSpaceDeath, RankOfMissingPointAborts) {
  auto is = IndexSpace::unstructured(
      support::IntervalSet::from_points({1, 5}));
  EXPECT_DEATH((void)is.rank(3), "point not in index space");
}

}  // namespace
}  // namespace cr::rt
