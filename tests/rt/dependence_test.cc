#include "rt/dependence.h"

#include <gtest/gtest.h>

#include <memory>

#include "rt/partition.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace cr::rt {
namespace {

struct Fixture {
  sim::Simulator sim;
  RegionForest forest;
  std::shared_ptr<FieldSpace> fs = std::make_shared<FieldSpace>();
  FieldId v;
  RegionId r;
  PartitionId p;
  Fixture() {
    v = fs->add_field("v");
    r = forest.create_region(IndexSpace::dense(100), fs);
    p = partition_equal(forest, r, 4);
  }
  Requirement req(RegionId region, Privilege priv,
                  ReduceOp op = ReduceOp::kSum) {
    return Requirement{region, priv, op, {v}};
  }
};

TEST(Privileges, ConflictMatrix) {
  using P = Privilege;
  auto c = [](P a, P b) {
    return privileges_conflict(a, ReduceOp::kSum, b, ReduceOp::kSum);
  };
  EXPECT_FALSE(c(P::kReadOnly, P::kReadOnly));
  EXPECT_TRUE(c(P::kReadOnly, P::kReadWrite));
  EXPECT_TRUE(c(P::kReadWrite, P::kReadWrite));
  EXPECT_TRUE(c(P::kWriteDiscard, P::kReadOnly));
  EXPECT_FALSE(c(P::kReduce, P::kReduce));  // same op commutes
  EXPECT_TRUE(privileges_conflict(P::kReduce, ReduceOp::kSum, P::kReduce,
                                  ReduceOp::kMin));
  EXPECT_TRUE(c(P::kReduce, P::kReadOnly));
}

TEST(Privileges, SubsumptionIsStrict) {
  using P = Privilege;
  auto s = [](P sup, P sub) {
    return privilege_subsumes(sup, ReduceOp::kSum, sub, ReduceOp::kSum);
  };
  EXPECT_TRUE(s(P::kReadWrite, P::kReadOnly));
  EXPECT_TRUE(s(P::kReadWrite, P::kReduce));
  EXPECT_TRUE(s(P::kReadWrite, P::kWriteDiscard));
  EXPECT_FALSE(s(P::kReadOnly, P::kReadWrite));
  EXPECT_FALSE(s(P::kReduce, P::kReadOnly));
  EXPECT_TRUE(s(P::kReduce, P::kReduce));
  EXPECT_FALSE(privilege_subsumes(P::kReduce, ReduceOp::kSum, P::kReduce,
                                  ReduceOp::kMin));
}

TEST(Dependence, ReadersDontConflict) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  auto d1 = deps.record(1, f.req(f.r, Privilege::kReadOnly), e1.event());
  auto d2 = deps.record(2, f.req(f.r, Privilege::kReadOnly), e2.event());
  EXPECT_TRUE(d1.empty());
  EXPECT_TRUE(d2.empty());
}

TEST(Dependence, WriteAfterReadOrders) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, f.req(f.r, Privilege::kReadOnly), e1.event());
  auto d = deps.record(2, f.req(f.r, Privilege::kReadWrite), e2.event());
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], e1.event());
}

TEST(Dependence, DisjointSubregionsRunInParallel) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, f.req(f.forest.subregion(f.p, 0), Privilege::kReadWrite),
              e1.event());
  auto d = deps.record(
      2, f.req(f.forest.subregion(f.p, 1), Privilege::kReadWrite),
      e2.event());
  EXPECT_TRUE(d.empty());
}

TEST(Dependence, OverlappingWritesSerialize) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, f.req(f.forest.subregion(f.p, 0), Privilege::kReadWrite),
              e1.event());
  auto d = deps.record(2, f.req(f.r, Privilege::kReadWrite), e2.event());
  ASSERT_EQ(d.size(), 1u);  // parent overlaps the subregion
}

TEST(Dependence, SameOpReductionsCommute) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim), e3(f.sim);
  deps.record(1, f.req(f.r, Privilege::kReduce, ReduceOp::kSum), e1.event());
  auto d2 =
      deps.record(2, f.req(f.r, Privilege::kReduce, ReduceOp::kSum),
                  e2.event());
  EXPECT_TRUE(d2.empty());
  // A different operator must serialize against both.
  auto d3 =
      deps.record(3, f.req(f.r, Privilege::kReduce, ReduceOp::kMin),
                  e3.event());
  EXPECT_EQ(d3.size(), 2u);
}

TEST(Dependence, CoveringWriterPrunesEpoch) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim), e3(f.sim), e4(f.sim);
  // Four readers of subregions, then a full write, then another write:
  // the second write should only depend on the first (pruned epoch).
  deps.record(1, f.req(f.forest.subregion(f.p, 0), Privilege::kReadOnly),
              e1.event());
  deps.record(2, f.req(f.forest.subregion(f.p, 1), Privilege::kReadOnly),
              e2.event());
  auto d3 = deps.record(3, f.req(f.r, Privilege::kReadWrite), e3.event());
  EXPECT_EQ(d3.size(), 2u);
  auto d4 = deps.record(4, f.req(f.r, Privilege::kReadWrite), e4.event());
  ASSERT_EQ(d4.size(), 1u);
  EXPECT_EQ(d4[0], e3.event());
}

TEST(Dependence, ReaderDoesNotPruneWriter) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim), e3(f.sim);
  deps.record(1, f.req(f.r, Privilege::kReadWrite), e1.event());
  deps.record(2, f.req(f.r, Privilege::kReadOnly), e2.event());
  // A second reader must still see the writer (readers don't retire it).
  auto d = deps.record(3, f.req(f.r, Privilege::kReadOnly), e3.event());
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], e1.event());
}

TEST(Dependence, FieldsAreIndependent) {
  Fixture f;
  const FieldId w = f.fs->add_field("w");
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, Requirement{f.r, Privilege::kReadWrite, ReduceOp::kSum,
                             {f.v}},
              e1.event());
  auto d = deps.record(
      2, Requirement{f.r, Privilege::kReadWrite, ReduceOp::kSum, {w}},
      e2.event());
  EXPECT_TRUE(d.empty());
}

TEST(Dependence, StatsCountPairs) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, f.req(f.r, Privilege::kReadWrite), e1.event());
  deps.record(2, f.req(f.r, Privilege::kReadWrite), e2.event());
  EXPECT_EQ(deps.pairs_tested(), 1u);
  EXPECT_EQ(deps.pairs_scanned(), 1u);
  EXPECT_EQ(deps.dependences_found(), 1u);
  deps.reset();
  EXPECT_EQ(deps.pairs_tested(), 0u);
  EXPECT_EQ(deps.pairs_scanned(), 0u);
}

// Capture/replay roundtrip at the tracker level: a second tracker fed
// the captured outcomes through replay() must end in the same state,
// return the same preconditions (resolved from captured op ids in
// captured order), and charge the same pairs_scanned — while testing
// zero pairs itself.
TEST(Dependence, ReplayReproducesCapturedAnalysis) {
  Fixture f;
  DependenceTracker analyzed(f.forest);
  DependenceTracker replayed(f.forest);
  std::vector<sim::UserEvent> events;
  events.reserve(16);
  std::map<uint64_t, sim::Event> completion_of;

  const Privilege privs[] = {Privilege::kReadOnly, Privilege::kReadWrite,
                             Privilege::kReadOnly, Privilege::kReadWrite,
                             Privilege::kWriteDiscard, Privilege::kReduce};
  const RegionId targets[] = {f.forest.subregion(f.p, 0),
                              f.forest.subregion(f.p, 1), f.r, f.r,
                              f.forest.subregion(f.p, 2), f.r};
  for (uint64_t op = 1; op <= 6; ++op) {
    events.emplace_back(f.sim);
    const sim::Event done = events.back().event();
    completion_of[op] = done;
    const Requirement req = f.req(targets[op - 1], privs[op - 1]);

    DependenceTracker::Capture cap;
    const uint64_t scanned0 = analyzed.pairs_scanned();
    const uint64_t found0 = analyzed.dependences_found();
    const auto pre = analyzed.record(op, req, done, &cap);
    const uint64_t found = analyzed.dependences_found() - found0;

    const uint64_t scanned =
        replayed.replay(op, req, done, cap.prunes, found);
    EXPECT_EQ(scanned, analyzed.pairs_scanned() - scanned0) << "op " << op;
    std::vector<sim::Event> resolved;
    for (uint64_t dep : cap.dep_ops) resolved.push_back(completion_of[dep]);
    EXPECT_EQ(resolved, pre) << "op " << op;
  }
  EXPECT_EQ(replayed.pairs_scanned(), analyzed.pairs_scanned());
  EXPECT_EQ(replayed.dependences_found(), analyzed.dependences_found());
  EXPECT_EQ(replayed.pairs_tested(), 0u);
  EXPECT_EQ(replayed.index_queries(), 0u);
  EXPECT_GT(analyzed.dependences_found(), 0u);

  // And analysis can resume on the replayed tracker seamlessly: the
  // same next record must observe the same state in both.
  events.emplace_back(f.sim);
  const Requirement next = f.req(f.r, Privilege::kReadWrite);
  auto da = analyzed.record(7, next, events.back().event());
  auto dr = replayed.record(7, next, events.back().event());
  EXPECT_EQ(da, dr);
  EXPECT_EQ(replayed.pairs_scanned(), analyzed.pairs_scanned());
}

// The rebuild amortization must be bounded by accumulated tail-scan
// work, not by the staleness ratio alone: a short unindexed tail that
// every query rescans has to trigger a rebuild once the total touched
// count rivals the live list, even while stale * 8 < alive.
TEST(Dependence, TailScanWorkTriggersRebuild) {
  Fixture f;
  DependenceTracker deps(f.forest);
  std::vector<sim::UserEvent> events;
  events.reserve(1200);
  uint64_t op = 0;
  // Phase 1: a large live epoch of disjoint-region readers.
  for (int i = 0; i < 1000; ++i) {
    events.emplace_back(f.sim);
    deps.record(++op, f.req(f.forest.subregion(f.p, i % 4),
                            Privilege::kReadOnly),
                events.back().event());
  }
  const uint64_t rebuilds_before = deps.index_rebuilds();
  // Phase 2: 100 more readers. Staleness stays below alive/8 the whole
  // time (stale <= 100+64 vs alive ~1100), but each record rescans the
  // growing tail: ~5000 touched slots, far more than one rebuild pass.
  for (int i = 0; i < 100; ++i) {
    events.emplace_back(f.sim);
    deps.record(++op, f.req(f.forest.subregion(f.p, i % 4),
                            Privilege::kReadOnly),
                events.back().event());
  }
  EXPECT_GT(deps.index_rebuilds(), rebuilds_before)
      << "tail-scan work did not amortize into a rebuild";
}

// Property: the indexed tracker must return the identical precondition
// vectors (same events, same order), prune the identical epochs, and
// charge the identical pairs_scanned as the exhaustive linear scan, on
// randomized launch sequences over a randomized forest — while testing
// no more pairs than the scan would.
class DependenceIndexEquivalence : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DependenceIndexEquivalence, IndexedMatchesLinearScan) {
  support::Rng rng(GetParam() * 131 + 11);
  sim::Simulator sim;
  RegionForest forest;
  auto fields = std::make_shared<FieldSpace>();
  const FieldId fv = fields->add_field("v");
  const FieldId fw = fields->add_field("w");
  const RegionId root =
      forest.create_region(IndexSpace::dense(256), fields);
  std::vector<RegionId> regions{root};
  for (int step = 0; step < 6; ++step) {
    RegionId target = regions[rng.next_below(regions.size())];
    if (forest.region(target).ispace.size() < 8) continue;
    PartitionId p;
    if (rng.next_bool()) {
      p = partition_equal(forest, target, 2 + rng.next_below(6));
    } else {
      const uint64_t shift = 1 + rng.next_below(16);
      PartitionId base = partition_equal(forest, target, 4);
      p = partition_image(
          forest, target, base,
          [&, shift](uint64_t x, std::vector<uint64_t>& out) {
            out.push_back(x + shift);
          });
    }
    for (RegionId sub : forest.partition(p).subregions) {
      regions.push_back(sub);
    }
  }

  DependenceTracker linear(forest);
  linear.set_linear_scan(true);
  DependenceTracker indexed(forest);
  ASSERT_FALSE(indexed.linear_scan());

  const Privilege privs[] = {Privilege::kReadOnly, Privilege::kReadWrite,
                             Privilege::kWriteDiscard, Privilege::kReduce};
  std::vector<sim::UserEvent> events;
  events.reserve(400);
  for (uint64_t op = 1; op <= 400; ++op) {
    // Some operations (like copies) record several requirements.
    const int nreqs = 1 + static_cast<int>(rng.next_below(2));
    for (int k = 0; k < nreqs; ++k) {
      Requirement req;
      req.region = regions[rng.next_below(regions.size())];
      req.privilege = privs[rng.next_below(4)];
      req.redop = rng.next_bool() ? ReduceOp::kSum : ReduceOp::kMin;
      req.fields = rng.next_bool(0.8) ? std::vector<FieldId>{fv}
                                      : std::vector<FieldId>{fv, fw};
      events.emplace_back(sim);
      const sim::Event done = events.back().event();
      auto d1 = linear.record(op, req, done);
      auto d2 = indexed.record(op, req, done);
      ASSERT_EQ(d1, d2) << "op " << op << " (seed " << GetParam() << ")";
    }
  }
  EXPECT_EQ(linear.dependences_found(), indexed.dependences_found());
  EXPECT_EQ(linear.pairs_scanned(), indexed.pairs_scanned());
  EXPECT_EQ(linear.pairs_tested(), linear.pairs_scanned());
  EXPECT_LE(indexed.pairs_tested(), linear.pairs_tested());
  EXPECT_GT(indexed.index_queries(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DependenceIndexEquivalence,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace cr::rt
