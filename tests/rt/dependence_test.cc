#include "rt/dependence.h"

#include <gtest/gtest.h>

#include <memory>

#include "rt/partition.h"
#include "sim/simulator.h"

namespace cr::rt {
namespace {

struct Fixture {
  sim::Simulator sim;
  RegionForest forest;
  std::shared_ptr<FieldSpace> fs = std::make_shared<FieldSpace>();
  FieldId v;
  RegionId r;
  PartitionId p;
  Fixture() {
    v = fs->add_field("v");
    r = forest.create_region(IndexSpace::dense(100), fs);
    p = partition_equal(forest, r, 4);
  }
  Requirement req(RegionId region, Privilege priv,
                  ReduceOp op = ReduceOp::kSum) {
    return Requirement{region, priv, op, {v}};
  }
};

TEST(Privileges, ConflictMatrix) {
  using P = Privilege;
  auto c = [](P a, P b) {
    return privileges_conflict(a, ReduceOp::kSum, b, ReduceOp::kSum);
  };
  EXPECT_FALSE(c(P::kReadOnly, P::kReadOnly));
  EXPECT_TRUE(c(P::kReadOnly, P::kReadWrite));
  EXPECT_TRUE(c(P::kReadWrite, P::kReadWrite));
  EXPECT_TRUE(c(P::kWriteDiscard, P::kReadOnly));
  EXPECT_FALSE(c(P::kReduce, P::kReduce));  // same op commutes
  EXPECT_TRUE(privileges_conflict(P::kReduce, ReduceOp::kSum, P::kReduce,
                                  ReduceOp::kMin));
  EXPECT_TRUE(c(P::kReduce, P::kReadOnly));
}

TEST(Privileges, SubsumptionIsStrict) {
  using P = Privilege;
  auto s = [](P sup, P sub) {
    return privilege_subsumes(sup, ReduceOp::kSum, sub, ReduceOp::kSum);
  };
  EXPECT_TRUE(s(P::kReadWrite, P::kReadOnly));
  EXPECT_TRUE(s(P::kReadWrite, P::kReduce));
  EXPECT_TRUE(s(P::kReadWrite, P::kWriteDiscard));
  EXPECT_FALSE(s(P::kReadOnly, P::kReadWrite));
  EXPECT_FALSE(s(P::kReduce, P::kReadOnly));
  EXPECT_TRUE(s(P::kReduce, P::kReduce));
  EXPECT_FALSE(privilege_subsumes(P::kReduce, ReduceOp::kSum, P::kReduce,
                                  ReduceOp::kMin));
}

TEST(Dependence, ReadersDontConflict) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  auto d1 = deps.record(1, f.req(f.r, Privilege::kReadOnly), e1.event());
  auto d2 = deps.record(2, f.req(f.r, Privilege::kReadOnly), e2.event());
  EXPECT_TRUE(d1.empty());
  EXPECT_TRUE(d2.empty());
}

TEST(Dependence, WriteAfterReadOrders) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, f.req(f.r, Privilege::kReadOnly), e1.event());
  auto d = deps.record(2, f.req(f.r, Privilege::kReadWrite), e2.event());
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], e1.event());
}

TEST(Dependence, DisjointSubregionsRunInParallel) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, f.req(f.forest.subregion(f.p, 0), Privilege::kReadWrite),
              e1.event());
  auto d = deps.record(
      2, f.req(f.forest.subregion(f.p, 1), Privilege::kReadWrite),
      e2.event());
  EXPECT_TRUE(d.empty());
}

TEST(Dependence, OverlappingWritesSerialize) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, f.req(f.forest.subregion(f.p, 0), Privilege::kReadWrite),
              e1.event());
  auto d = deps.record(2, f.req(f.r, Privilege::kReadWrite), e2.event());
  ASSERT_EQ(d.size(), 1u);  // parent overlaps the subregion
}

TEST(Dependence, SameOpReductionsCommute) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim), e3(f.sim);
  deps.record(1, f.req(f.r, Privilege::kReduce, ReduceOp::kSum), e1.event());
  auto d2 =
      deps.record(2, f.req(f.r, Privilege::kReduce, ReduceOp::kSum),
                  e2.event());
  EXPECT_TRUE(d2.empty());
  // A different operator must serialize against both.
  auto d3 =
      deps.record(3, f.req(f.r, Privilege::kReduce, ReduceOp::kMin),
                  e3.event());
  EXPECT_EQ(d3.size(), 2u);
}

TEST(Dependence, CoveringWriterPrunesEpoch) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim), e3(f.sim), e4(f.sim);
  // Four readers of subregions, then a full write, then another write:
  // the second write should only depend on the first (pruned epoch).
  deps.record(1, f.req(f.forest.subregion(f.p, 0), Privilege::kReadOnly),
              e1.event());
  deps.record(2, f.req(f.forest.subregion(f.p, 1), Privilege::kReadOnly),
              e2.event());
  auto d3 = deps.record(3, f.req(f.r, Privilege::kReadWrite), e3.event());
  EXPECT_EQ(d3.size(), 2u);
  auto d4 = deps.record(4, f.req(f.r, Privilege::kReadWrite), e4.event());
  ASSERT_EQ(d4.size(), 1u);
  EXPECT_EQ(d4[0], e3.event());
}

TEST(Dependence, ReaderDoesNotPruneWriter) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim), e3(f.sim);
  deps.record(1, f.req(f.r, Privilege::kReadWrite), e1.event());
  deps.record(2, f.req(f.r, Privilege::kReadOnly), e2.event());
  // A second reader must still see the writer (readers don't retire it).
  auto d = deps.record(3, f.req(f.r, Privilege::kReadOnly), e3.event());
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], e1.event());
}

TEST(Dependence, FieldsAreIndependent) {
  Fixture f;
  const FieldId w = f.fs->add_field("w");
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, Requirement{f.r, Privilege::kReadWrite, ReduceOp::kSum,
                             {f.v}},
              e1.event());
  auto d = deps.record(
      2, Requirement{f.r, Privilege::kReadWrite, ReduceOp::kSum, {w}},
      e2.event());
  EXPECT_TRUE(d.empty());
}

TEST(Dependence, StatsCountPairs) {
  Fixture f;
  DependenceTracker deps(f.forest);
  sim::UserEvent e1(f.sim), e2(f.sim);
  deps.record(1, f.req(f.r, Privilege::kReadWrite), e1.event());
  deps.record(2, f.req(f.r, Privilege::kReadWrite), e2.event());
  EXPECT_EQ(deps.pairs_tested(), 1u);
  EXPECT_EQ(deps.dependences_found(), 1u);
  deps.reset();
  EXPECT_EQ(deps.pairs_tested(), 0u);
}

}  // namespace
}  // namespace cr::rt
