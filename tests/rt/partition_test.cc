#include "rt/partition.h"

#include <gtest/gtest.h>

#include <memory>

#include "support/rng.h"

namespace cr::rt {
namespace {

std::shared_ptr<FieldSpace> fs() {
  auto f = std::make_shared<FieldSpace>();
  f->add_field("v");
  return f;
}

class PartitionLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionLaws, EqualPartitionIsDisjointAndComplete) {
  const uint64_t colors = GetParam();
  RegionForest forest;
  RegionId r = forest.create_region(IndexSpace::dense(103), fs());
  PartitionId p = partition_equal(forest, r, colors);
  const PartitionNode& pn = forest.partition(p);
  EXPECT_TRUE(pn.disjoint);
  EXPECT_TRUE(pn.complete);
  EXPECT_EQ(pn.subregions.size(), colors);

  // Union covers the parent; pieces are balanced within 1.
  support::IntervalSet all;
  uint64_t min_size = UINT64_MAX, max_size = 0;
  for (RegionId sub : pn.subregions) {
    const auto& pts = forest.region(sub).ispace.points();
    EXPECT_TRUE(all.disjoint(pts));
    all = all.set_union(pts);
    min_size = std::min(min_size, pts.size());
    max_size = std::max(max_size, pts.size());
  }
  EXPECT_EQ(all, forest.region(r).ispace.points());
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(Colors, PartitionLaws,
                         ::testing::Values(1, 2, 3, 7, 16, 103, 200));

TEST(Partition, EqualOnUnstructuredSpace) {
  RegionForest forest;
  support::Rng rng(3);
  std::vector<uint64_t> pts;
  for (int i = 0; i < 500; ++i) pts.push_back(rng.next_below(10000));
  auto is = IndexSpace::unstructured(support::IntervalSet::from_points(pts));
  const uint64_t n = is.size();
  RegionId r = forest.create_region(std::move(is), fs());
  PartitionId p = partition_equal(forest, r, 7);
  uint64_t total = 0;
  for (RegionId sub : forest.partition(p).subregions) {
    total += forest.region(sub).ispace.size();
  }
  EXPECT_EQ(total, n);
}

TEST(Partition, GridTilesAreDisjointCompleteAndShaped) {
  RegionForest forest;
  RegionId r =
      forest.create_region(IndexSpace::grid(GridExtents::d2(10, 12)), fs());
  PartitionId p = partition_grid(forest, r, {2, 3, 1});
  const PartitionNode& pn = forest.partition(p);
  EXPECT_TRUE(pn.disjoint && pn.complete);
  ASSERT_EQ(pn.subregions.size(), 6u);
  support::IntervalSet all;
  for (RegionId sub : pn.subregions) {
    all = all.set_union(forest.region(sub).ispace.points());
    EXPECT_EQ(forest.region(sub).ispace.size(), 20u);  // 5x4 tiles
  }
  EXPECT_EQ(all.size(), 120u);
}

TEST(Partition, ByColorRespectsColoring) {
  RegionForest forest;
  RegionId r = forest.create_region(IndexSpace::dense(20), fs());
  PartitionId p = partition_by_color(forest, r, 2,
                                     [](uint64_t id) { return id % 2; });
  const PartitionNode& pn = forest.partition(p);
  EXPECT_TRUE(pn.disjoint && pn.complete);
  EXPECT_EQ(forest.region(pn.subregions[0]).ispace.size(), 10u);
  EXPECT_TRUE(forest.region(pn.subregions[1]).ispace.contains(7));
}

TEST(Partition, ByColorWithHolesIsIncomplete) {
  RegionForest forest;
  RegionId r = forest.create_region(IndexSpace::dense(10), fs());
  PartitionId p = partition_by_color(forest, r, 1, [](uint64_t id) {
    return id < 5 ? 0 : kNoColor;
  });
  EXPECT_FALSE(forest.partition(p).complete);
  EXPECT_EQ(forest.region(forest.partition(p).subregions[0]).ispace.size(),
            5u);
}

TEST(Partition, ImageMatchesDefinition) {
  // Paper §2.1: h(b) ∈ QB[i] iff b ∈ PB[i].
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(12), fs(), "A");
  RegionId b = forest.create_region(IndexSpace::dense(12), fs(), "B");
  PartitionId pa = partition_equal(forest, a, 3);
  auto h = [](uint64_t x) { return (x * 5 + 3) % 12; };
  PartitionId qb = partition_image(
      forest, b, pa, [&](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back(h(x));
      });
  EXPECT_FALSE(forest.partition(qb).disjoint);  // assumed aliased
  for (uint64_t i = 0; i < 3; ++i) {
    const auto& src = forest.region(forest.subregion(pa, i)).ispace;
    const auto& img = forest.region(forest.subregion(qb, i)).ispace;
    src.points().for_each_point(
        [&](uint64_t x) { EXPECT_TRUE(img.contains(h(x))); });
    EXPECT_EQ(img.size(), src.size());  // h is injective here
  }
}

TEST(Partition, ImageClipsToWindowRegion) {
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(10), fs());
  RegionId b = forest.create_region(IndexSpace::dense(5), fs());
  PartitionId pa = partition_equal(forest, a, 2);
  PartitionId qb = partition_image(
      forest, b, pa, [](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back(x);  // identity; half the targets fall outside B
      });
  EXPECT_EQ(forest.region(forest.subregion(qb, 0)).ispace.size(), 5u);
  EXPECT_EQ(forest.region(forest.subregion(qb, 1)).ispace.size(), 0u);
}

TEST(Partition, ComposeRemapsColors) {
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(12), fs());
  PartitionId pa = partition_equal(forest, a, 4);
  // q[i] = pa[(i+1) mod 4]
  PartitionId q = partition_compose(forest, pa, 4, [](uint64_t i) {
    return (i + 1) % 4;
  });
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(forest.region(forest.subregion(q, i)).ispace.points(),
              forest.region(forest.subregion(pa, (i + 1) % 4))
                  .ispace.points());
  }
  EXPECT_FALSE(forest.partition(q).disjoint);
}

TEST(Partition, IntersectRestrictsToWindow) {
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(20), fs());
  PartitionId top = partition_by_color(forest, a, 2, [](uint64_t id) {
    return id < 12 ? 0 : 1;  // "private" vs "ghost" split
  });
  RegionId priv = forest.subregion(top, 0);
  PartitionId pa = partition_equal(forest, a, 4);  // 5 elements each
  PartitionId pp = partition_intersect(forest, priv, pa);
  const PartitionNode& pn = forest.partition(pp);
  EXPECT_TRUE(pn.disjoint);  // inherits from pa
  EXPECT_EQ(pn.parent, priv);
  EXPECT_EQ(forest.region(pn.subregions[0]).ispace.size(), 5u);
  EXPECT_EQ(forest.region(pn.subregions[2]).ispace.size(), 2u);  // 10..12
  EXPECT_EQ(forest.region(pn.subregions[3]).ispace.size(), 0u);
}

TEST(PartitionDeath, DisjointClaimVerifiedInDebug) {
#ifndef NDEBUG
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(10), fs());
  std::vector<IndexSpace> overlapping;
  overlapping.push_back(forest.region(a).ispace.subspace(
      support::IntervalSet::range(0, 6)));
  overlapping.push_back(forest.region(a).ispace.subspace(
      support::IntervalSet::range(4, 10)));
  EXPECT_DEATH(forest.create_partition(a, std::move(overlapping),
                                       /*disjoint=*/true, false),
               "claimed disjoint");
#else
  GTEST_SKIP() << "debug-only check";
#endif
}


TEST(Partition, PreimageMatchesDefinition) {
  // preimage: x lands in subregion i iff some target of x is in src[i].
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(12), fs(), "A");
  RegionId b = forest.create_region(IndexSpace::dense(12), fs(), "B");
  PartitionId pb = partition_equal(forest, b, 3);
  auto h = [](uint64_t x) { return (x * 7 + 2) % 12; };
  PartitionId pre = partition_preimage(
      forest, a, pb, [&](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back(h(x));
      });
  for (uint64_t x = 0; x < 12; ++x) {
    for (uint64_t i = 0; i < 3; ++i) {
      const bool in_sub =
          forest.region(forest.subregion(pre, i)).ispace.contains(x);
      const bool target_in =
          forest.region(forest.subregion(pb, i)).ispace.contains(h(x));
      EXPECT_EQ(in_sub, target_in) << "x=" << x << " i=" << i;
    }
  }
}

TEST(Partition, PreimageMultiTargetLandsInSeveralColors) {
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(8), fs(), "A");
  RegionId b = forest.create_region(IndexSpace::dense(8), fs(), "B");
  PartitionId pb = partition_equal(forest, b, 2);
  PartitionId pre = partition_preimage(
      forest, a, pb, [](uint64_t, std::vector<uint64_t>& out) {
        out.push_back(0);  // first half
        out.push_back(7);  // second half
      });
  // Every element points into both halves.
  EXPECT_EQ(forest.region(forest.subregion(pre, 0)).ispace.size(), 8u);
  EXPECT_EQ(forest.region(forest.subregion(pre, 1)).ispace.size(), 8u);
  EXPECT_FALSE(forest.partition(pre).disjoint);
}

TEST(Partition, PointwiseUnionAndDifference) {
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(20), fs(), "A");
  PartitionId p = partition_equal(forest, a, 2);   // [0,10) [10,20)
  PartitionId q = partition_image(
      forest, a, p, [](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back((x + 5) % 20);
      });
  PartitionId u = partition_union(forest, p, q);
  PartitionId d = partition_difference(forest, p, q);
  // u[0] = [0,10) U ([5,15)) = [0,15)
  EXPECT_EQ(forest.region(forest.subregion(u, 0)).ispace.points(),
            support::IntervalSet::range(0, 15));
  // d[0] = [0,10) \ [5,15) = [0,5)
  EXPECT_EQ(forest.region(forest.subregion(d, 0)).ispace.points(),
            support::IntervalSet::range(0, 5));
  EXPECT_TRUE(forest.partition(d).disjoint);   // inherits from p
  EXPECT_FALSE(forest.partition(u).disjoint);  // conservative
}

TEST(PartitionDeath, PointwiseOpsRequireSameParent) {
  RegionForest forest;
  RegionId a = forest.create_region(IndexSpace::dense(10), fs());
  RegionId b = forest.create_region(IndexSpace::dense(10), fs());
  PartitionId pa = partition_equal(forest, a, 2);
  PartitionId pb = partition_equal(forest, b, 2);
  EXPECT_DEATH((void)partition_union(forest, pa, pb), "same region");
}

}  // namespace
}  // namespace cr::rt
