#include <gtest/gtest.h>

#include "ir/printer.h"
#include "ir/static_region_tree.h"
#include "ir/verify.h"
#include "testing/fig2.h"

namespace cr::ir {
namespace {

TEST(Builder, Fig2ProgramShape) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  const Program& p = fig.program;
  ASSERT_EQ(p.body.size(), 2u);
  EXPECT_EQ(p.body[0].kind, StmtKind::kIndexLaunch);
  EXPECT_EQ(p.body[1].kind, StmtKind::kForTime);
  EXPECT_EQ(p.body[1].trip_count, 3u);
  ASSERT_EQ(p.body[1].body.size(), 2u);
  EXPECT_EQ(p.body[1].body[0].task, fig.t_f);
  EXPECT_EQ(p.body[1].body[1].task, fig.t_g);
}

TEST(Builder, ArgumentFieldsComeFromDeclaration) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  const Stmt& tf = fig.program.body[1].body[0];
  ASSERT_EQ(tf.args.size(), 2u);
  EXPECT_EQ(tf.args[0].fields, std::vector<rt::FieldId>{fig.fb});
  EXPECT_EQ(tf.args[1].fields, std::vector<rt::FieldId>{fig.fa});
}

TEST(Builder, UnclosedLoopDies) {
  rt::RegionForest forest;
  ProgramBuilder b(forest, "bad");
  b.begin_for_time(3);
  EXPECT_DEATH((void)b.finish(), "unclosed");
}

TEST(Verify, Fig2IsValid) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  EXPECT_TRUE(verify(fig.program).empty());
}

TEST(Verify, CatchesAliasedWrite) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  // Write through the aliased image partition: illegal (paper §2.2).
  Program p = fig.program;
  p.body[1].body[1].args[1].privilege = rt::Privilege::kReadWrite;
  p.body[1].body[1].args[1].fields = {fig.fb};
  // Also patch the declaration so privilege strictness passes and the
  // aliasing check is what fires.
  p.tasks[fig.t_g].params[1].privilege = rt::Privilege::kReadWrite;
  auto errors = verify(p);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("aliased"), std::string::npos);
}

TEST(Verify, CatchesPrivilegeMismatch) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  Program p = fig.program;
  p.body[1].body[0].args[1].privilege = rt::Privilege::kReadWrite;
  auto errors = verify(p);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("privilege"), std::string::npos);
}

TEST(Verify, CatchesArityMismatch) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  Program p = fig.program;
  p.body[1].body[0].args.pop_back();
  EXPECT_FALSE(verify(p).empty());
}

TEST(Printer, Fig2GoldenText) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  const std::string text = to_string(fig.program);
  EXPECT_EQ(text,
            "program fig2\n"
            "launch TInit over 4: PA[i] writes{f0}\n"
            "for t in 0..3:\n"
            "  launch TF over 4: PB[i] reads writes{f0} PA[i] reads{f0}\n"
            "  launch TG over 4: PA[i] reads writes{f0} QB[i] reads{f0}\n");
}

TEST(Printer, DeclsIncludeTasksAndScalars) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  ir::Program p = fig.program;
  ProgramBuilder b2(forest, "x");
  const std::string text = to_string(p, /*with_decls=*/true);
  EXPECT_NE(text.find("task TF"), std::string::npos);
  EXPECT_NE(text.find("task TG"), std::string::npos);
}

TEST(StaticTree, SymbolicAliasQueries) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  StaticRegionTree tree(forest);
  using SI = SymIndex;
  // PB[i] vs PB[j] for distinct loop vars: disjoint partition => no alias
  // (same color would be the same region, not a partial overlap).
  EXPECT_FALSE(tree.may_alias({fig.pb, SI::variable(0)},
                              {fig.pb, SI::variable(1)}));
  // QB[i] vs QB[j]: aliased partition.
  EXPECT_TRUE(tree.may_alias({fig.qb, SI::variable(0)},
                             {fig.qb, SI::variable(1)}));
  // PB[i] vs QB[j]: different partitions of B.
  EXPECT_TRUE(tree.may_alias({fig.pb, SI::variable(0)},
                             {fig.qb, SI::variable(1)}));
  // PA vs PB: different trees.
  EXPECT_FALSE(tree.may_alias({fig.pa, SI::variable(0)},
                              {fig.pb, SI::variable(0)}));
  // Same partition, same constant: the same region aliases itself.
  EXPECT_TRUE(tree.may_alias({fig.pb, SI::constant(2)},
                             {fig.pb, SI::constant(2)}));
  // Distinct constants of a disjoint partition.
  EXPECT_FALSE(tree.may_alias({fig.pb, SI::constant(1)},
                              {fig.pb, SI::constant(2)}));
}

TEST(StaticTree, FlatPrecisionAssumesAliasing) {
  rt::RegionForest forest;
  testing::Fig2 fig(forest, 24, 4, 3);
  StaticRegionTree flat(forest, /*hierarchical=*/false);
  // Flat reasoning still knows a disjoint partition's own structure...
  EXPECT_FALSE(flat.partitions_may_alias(fig.pb, fig.pb));
  // ...but assumes distinct partitions of one tree overlap.
  EXPECT_TRUE(flat.partitions_may_alias(fig.pb, fig.qb));
  EXPECT_FALSE(flat.partitions_may_alias(fig.pa, fig.pb));
}

}  // namespace
}  // namespace cr::ir
