// Additional verifier coverage: compiler-statement validity rules.
#include "ir/verify.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "passes/pipeline.h"
#include "rt/partition.h"
#include "testing/fig2.h"

namespace cr::ir {
namespace {

struct Fixture {
  rt::RegionForest forest;
  testing::Fig2 fig;
  Fixture() : fig(forest, 24, 4, 2) {}
};

bool has_error(const Program& p, const std::string& needle) {
  for (const VerifyError& e : verify(p)) {
    if (e.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Verify, CopyNeedsExactlyOneSourceForm) {
  Fixture f;
  Program p = f.fig.program;
  Stmt copy;
  copy.kind = StmtKind::kCopy;
  copy.copy_src = f.fig.pb;
  copy.src_root = f.fig.b;  // both forms set: invalid
  copy.copy_dst = f.fig.qb;
  copy.copy_fields = {f.fig.fb};
  p.body.push_back(copy);
  EXPECT_TRUE(has_error(p, "source form"));
}

TEST(Verify, CopyWithoutFieldsRejected) {
  Fixture f;
  Program p = f.fig.program;
  Stmt copy;
  copy.kind = StmtKind::kCopy;
  copy.copy_src = f.fig.pb;
  copy.copy_dst = f.fig.qb;
  p.body.push_back(copy);
  EXPECT_TRUE(has_error(p, "no fields"));
}

TEST(Verify, IntersectionIdMustBeAllocated) {
  Fixture f;
  Program p = f.fig.program;
  Stmt copy;
  copy.kind = StmtKind::kCopy;
  copy.copy_src = f.fig.pb;
  copy.copy_dst = f.fig.qb;
  copy.copy_fields = {f.fig.fb};
  copy.isect = 3;  // num_intersects == 0
  p.body.push_back(copy);
  EXPECT_TRUE(has_error(p, "intersection"));
}

TEST(Verify, BarrierOutsideShardRejected) {
  Fixture f;
  Program p = f.fig.program;
  Stmt barrier;
  barrier.kind = StmtKind::kBarrier;
  p.body.push_back(barrier);
  EXPECT_TRUE(has_error(p, "barrier outside"));
}

TEST(Verify, NestedShardBodiesRejected) {
  Fixture f;
  Program p = f.fig.program;
  Stmt inner;
  inner.kind = StmtKind::kShardBody;
  inner.num_shards = 2;
  Stmt outer;
  outer.kind = StmtKind::kShardBody;
  outer.num_shards = 2;
  outer.body.push_back(inner);
  p.body.push_back(outer);
  EXPECT_TRUE(has_error(p, "nested shard"));
}

TEST(Verify, SingleTaskInsideShardRejected) {
  Fixture f;
  Program p = f.fig.program;
  Stmt single;
  single.kind = StmtKind::kSingleTask;
  single.task = f.fig.t_init;
  single.regions = {f.fig.a};
  Stmt shard;
  shard.kind = StmtKind::kShardBody;
  shard.num_shards = 2;
  shard.body.push_back(single);
  p.body.push_back(shard);
  EXPECT_TRUE(has_error(p, "single task inside shard"));
}

TEST(Verify, ZeroTripLoopRejected) {
  Fixture f;
  Program p = f.fig.program;
  Stmt loop;
  loop.kind = StmtKind::kForTime;
  loop.trip_count = 0;
  p.body.push_back(loop);
  EXPECT_TRUE(has_error(p, "zero trip"));
}

TEST(Verify, ScalarOpNeedsFunction) {
  Fixture f;
  Program p = f.fig.program;
  Stmt op;
  op.kind = StmtKind::kScalarOp;
  p.body.push_back(op);
  EXPECT_TRUE(has_error(p, "missing function"));
}

TEST(Verify, TransformedProgramsStayValid) {
  // The full pipeline's output must satisfy every final-form rule.
  Fixture f;
  Program p = f.fig.program;
  cr::passes::PipelineOptions opt;
  opt.num_shards = 2;
  cr::passes::PipelineReport report = cr::passes::control_replicate(p, opt);
  ASSERT_TRUE(report.applied);
  EXPECT_TRUE(verify(p).empty());
}

}  // namespace
}  // namespace cr::ir
