#include "support/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace cr::support {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng base(99);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  Rng s1_again = base.split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(5), b(5);
  (void)a.split(3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace cr::support
