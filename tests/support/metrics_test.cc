#include "support/metrics.h"

#include <gtest/gtest.h>

#include "support/json.h"

namespace cr::support {
namespace {

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_hi(0), 0u);
  // Bucket b holds [2^(b-1), 2^b - 1]: powers of two open a new bucket.
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  // Every power-of-two edge up to 2^63: the power itself opens bucket
  // k+1 and the value just below it closes bucket k.
  for (size_t k = 0; k < 64; ++k) {
    const uint64_t pow = 1ull << k;
    EXPECT_EQ(Histogram::bucket_of(pow), k + 1) << "2^" << k;
    if (pow > 1) {
      EXPECT_EQ(Histogram::bucket_of(pow - 1), k) << "2^" << k << "-1";
    }
    EXPECT_EQ(Histogram::bucket_lo(k + 1), pow);
    EXPECT_EQ(Histogram::bucket_hi(k), pow - 1);
  }
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::bucket_hi(64), UINT64_MAX);
}

TEST(Histogram, EveryBucketEdgeLandsInItsOwnBucket) {
  // A value equal to a bucket's lower or upper edge must land in that
  // bucket (never the neighbor), and consecutive buckets must tile the
  // u64 range with no gap or overlap: hi(b) + 1 == lo(b + 1).
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b) << b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b) << b;
    if (b + 1 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::bucket_hi(b) + 1, Histogram::bucket_lo(b + 1))
          << b;
    }
  }
  // Recording at the edges tallies where bucket_of points.
  Histogram h;
  h.record(uint64_t{1} << 63);        // lo edge of the last bucket
  h.record(UINT64_MAX);               // its saturated hi edge
  h.record((uint64_t{1} << 63) - 1);  // hi edge of bucket 63
  EXPECT_EQ(h.buckets()[64], 2u);
  EXPECT_EQ(h.buckets()[63], 1u);
}

TEST(Histogram, RecordAndStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not UINT64_MAX
  h.record(0);
  h.record(7);
  h.record(8);
  h.record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1015u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.buckets()[0], 1u);                          // the 0
  EXPECT_EQ(h.buckets()[Histogram::bucket_of(7)], 1u);    // bucket 3
  EXPECT_EQ(h.buckets()[Histogram::bucket_of(8)], 1u);    // bucket 4
  EXPECT_EQ(h.buckets()[Histogram::bucket_of(1000)], 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(h.buckets()[b], 0u);
  }
}

TEST(MetricsRegistry, LookupOrCreateAndStableRefs) {
  MetricsRegistry m;
  Counter& a = m.counter("a.count");
  a.add(3);
  // Creating more instruments must not invalidate the reference.
  for (int i = 0; i < 100; ++i) {
    m.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&m.counter("a.count"), &a);
  EXPECT_EQ(m.counter("a.count").value(), 3u);
}

TEST(MetricsRegistry, SnapshotFlattensHistograms) {
  MetricsRegistry m;
  m.counter("x.ops").add(5);
  m.gauge("x.depth").set(2.5);
  Histogram& h = m.histogram("x.lat");
  h.record(10);
  h.record(20);
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.at("x.ops"), 5.0);
  EXPECT_EQ(snap.at("x.depth"), 2.5);
  EXPECT_EQ(snap.at("x.lat.count"), 2.0);
  EXPECT_EQ(snap.at("x.lat.sum"), 30.0);
  EXPECT_EQ(snap.at("x.lat.min"), 10.0);
  EXPECT_EQ(snap.at("x.lat.max"), 20.0);
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  MetricsRegistry m;
  m.counter("c").add(7);
  m.gauge("g").set_max(9);
  m.histogram("h").record(42);
  m.reset();
  const auto snap = m.snapshot();
  for (const auto& [key, value] : snap) {
    EXPECT_EQ(value, 0.0) << key;
  }
}

TEST(MetricsRegistry, ToJsonIsValidAndStable) {
  MetricsRegistry m;
  m.counter("b.count").add(2);
  m.counter("a.count").add(1);
  m.gauge("c.frac").set(0.5);
  const std::string json = m.to_json();
  // Integral values print without a fraction.
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos) << json;
  // Keys appear in sorted order (a before b before c).
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
  EXPECT_LT(json.find("b.count"), json.find("c.frac"));
  // Round-trips through the JSON parser.
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(json, v, err)) << err;
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.get("c.frac"), nullptr);
  EXPECT_EQ(v.get("c.frac")->num, 0.5);
}

TEST(MetricsRegistry, SnapshotDeterministicAcrossIdenticalSequences) {
  auto run = [] {
    MetricsRegistry m;
    m.counter("z.ops").add(3);
    m.histogram("lat").record(100);
    m.histogram("lat").record(5);
    m.gauge("depth").set_max(8);
    m.gauge("depth").set_max(4);  // no-op: max keeps 8
    return m.to_json();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cr::support
