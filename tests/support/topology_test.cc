// Host CPU topology probing and worker placement. The probe reads the
// real machine (affinity mask + sysfs), so the tests assert structural
// invariants — nonempty, deduplicated, plan() cycling — rather than any
// particular core count.
#include "support/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace cr::support {
namespace {

TEST(Topology, ProbeFindsAtLeastOneCpu) {
  const CpuTopology topo = CpuTopology::probe();
  ASSERT_FALSE(topo.cpus.empty());
  std::set<int> ids;
  for (const LogicalCpu& c : topo.cpus) {
    EXPECT_GE(c.cpu, 0);
    ids.insert(c.cpu);
  }
  // No duplicate logical CPUs.
  EXPECT_EQ(ids.size(), topo.cpus.size());
  EXPECT_GE(topo.physical_cores(), 1u);
  EXPECT_LE(topo.physical_cores(), topo.cpus.size());
}

TEST(Topology, PlanCoversRequestedWorkers) {
  const CpuTopology topo = CpuTopology::probe();
  for (const uint32_t n : {1u, 2u, 4u, 9u}) {
    const std::vector<int> plan = topo.plan(n);
    ASSERT_EQ(plan.size(), n) << n;
    for (const int cpu : plan) {
      bool known = false;
      for (const LogicalCpu& c : topo.cpus) known |= c.cpu == cpu;
      EXPECT_TRUE(known) << "planned cpu " << cpu << " not in probe";
    }
  }
}

TEST(Topology, PlanPrefersDistinctPhysicalCores) {
  const CpuTopology topo = CpuTopology::probe();
  const size_t cores = topo.physical_cores();
  const std::vector<int> plan = topo.plan(static_cast<uint32_t>(cores));
  std::set<std::pair<int, int>> seen;  // (package, core)
  for (const int cpu : plan) {
    for (const LogicalCpu& c : topo.cpus) {
      if (c.cpu == cpu) seen.insert({c.package, c.core});
    }
  }
  // One slot per distinct physical core before any SMT sibling repeats.
  EXPECT_EQ(seen.size(), cores);
}

TEST(Topology, AffinityRoundTrip) {
  const std::vector<int> before = current_thread_affinity();
  ASSERT_FALSE(before.empty());
  // Pin to the first allowed CPU, confirm, then restore.
  ASSERT_TRUE(pin_current_thread(before[0]));
  const std::vector<int> pinned = current_thread_affinity();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0], before[0]);
  ASSERT_TRUE(set_current_thread_affinity(before));
  EXPECT_EQ(current_thread_affinity(), before);
}

}  // namespace
}  // namespace cr::support
