// Host CPU topology probing and worker placement. The probe reads the
// real machine (affinity mask + sysfs), so the tests assert structural
// invariants — nonempty, deduplicated, plan() cycling — rather than any
// particular core count.
#include "support/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace cr::support {
namespace {

TEST(Topology, ProbeFindsAtLeastOneCpu) {
  const CpuTopology topo = CpuTopology::probe();
  ASSERT_FALSE(topo.cpus.empty());
  std::set<int> ids;
  for (const LogicalCpu& c : topo.cpus) {
    EXPECT_GE(c.cpu, 0);
    ids.insert(c.cpu);
  }
  // No duplicate logical CPUs.
  EXPECT_EQ(ids.size(), topo.cpus.size());
  EXPECT_GE(topo.physical_cores(), 1u);
  EXPECT_LE(topo.physical_cores(), topo.cpus.size());
}

TEST(Topology, PlanCoversRequestedWorkers) {
  const CpuTopology topo = CpuTopology::probe();
  for (const uint32_t n : {1u, 2u, 4u, 9u}) {
    const std::vector<int> plan = topo.plan(n);
    ASSERT_EQ(plan.size(), n) << n;
    for (const int cpu : plan) {
      bool known = false;
      for (const LogicalCpu& c : topo.cpus) known |= c.cpu == cpu;
      EXPECT_TRUE(known) << "planned cpu " << cpu << " not in probe";
    }
  }
}

TEST(Topology, PlanPrefersDistinctPhysicalCores) {
  const CpuTopology topo = CpuTopology::probe();
  const size_t cores = topo.physical_cores();
  const std::vector<int> plan = topo.plan(static_cast<uint32_t>(cores));
  std::set<std::pair<int, int>> seen;  // (package, core)
  for (const int cpu : plan) {
    for (const LogicalCpu& c : topo.cpus) {
      if (c.cpu == cpu) seen.insert({c.package, c.core});
    }
  }
  // One slot per distinct physical core before any SMT sibling repeats.
  EXPECT_EQ(seen.size(), cores);
}

TEST(Topology, UnknownCoreIdsStayDistinct) {
  // Restricted containers hide /sys: every CPU probes core=-1,
  // package=-1. Each CPU must still count as its own physical core —
  // collapsing them into one (package=-1, core=-1) key would pin every
  // worker onto one CPU.
  CpuTopology topo;
  for (int c = 0; c < 4; ++c) topo.cpus.push_back({c, -1, -1});
  EXPECT_EQ(topo.physical_cores(), 4u);
  const std::vector<int> plan = topo.plan(4);
  ASSERT_EQ(plan.size(), 4u);
  const std::set<int> distinct(plan.begin(), plan.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(Topology, PartiallyUnknownCoresDoNotCollideWithRealIds) {
  // cpu 1's core file is unreadable while cpu 2 really has core_id 1:
  // the old cpu-index fallback keyed both as (pkg 0, core 1), silently
  // halving the core count and double-booking the pin plan. Unknowns
  // must key into their own namespace.
  CpuTopology topo;
  topo.cpus.push_back({0, 0, 0});
  topo.cpus.push_back({1, -1, 0});
  topo.cpus.push_back({2, 1, 0});
  EXPECT_EQ(topo.physical_cores(), 3u);
  const std::vector<int> plan = topo.plan(3);
  ASSERT_EQ(plan.size(), 3u);
  const std::set<int> distinct(plan.begin(), plan.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(Topology, AffinityRoundTrip) {
  const std::vector<int> before = current_thread_affinity();
  ASSERT_FALSE(before.empty());
  // Pin to the first allowed CPU, confirm, then restore.
  ASSERT_TRUE(pin_current_thread(before[0]));
  const std::vector<int> pinned = current_thread_affinity();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0], before[0]);
  ASSERT_TRUE(set_current_thread_affinity(before));
  EXPECT_EQ(current_thread_affinity(), before);
}

}  // namespace
}  // namespace cr::support
