#include "support/interval_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/rng.h"

namespace cr::support {
namespace {

TEST(IntervalSet, EmptyBasics) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.interval_count(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(IntervalSet, RangeConstruction) {
  auto s = IntervalSet::range(3, 10);
  EXPECT_EQ(s.size(), 7u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(9));
  EXPECT_FALSE(s.contains(10));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.bounds(), (Interval{3, 10}));
}

TEST(IntervalSet, EmptyRangeIsEmpty) {
  EXPECT_TRUE(IntervalSet::range(5, 5).empty());
  EXPECT_TRUE(IntervalSet::range(7, 5).empty());
}

TEST(IntervalSet, FromPointsCoalesces) {
  auto s = IntervalSet::from_points({5, 1, 2, 3, 9, 2});
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.interval_count(), 3u);  // [1,4) [5,6) [9,10)
  EXPECT_TRUE(s.contains(1) && s.contains(2) && s.contains(3));
  EXPECT_TRUE(s.contains(5) && s.contains(9));
  EXPECT_FALSE(s.contains(4) && s.contains(0));
}

TEST(IntervalSet, AddCoalescesAdjacent) {
  IntervalSet s;
  s.add(0, 5);
  s.add(5, 10);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.size(), 10u);
}

TEST(IntervalSet, AddOutOfOrder) {
  IntervalSet s;
  s.add(10, 20);
  s.add(0, 5);
  s.add(4, 12);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.size(), 20u);
}

TEST(IntervalSet, AppendFastPath) {
  IntervalSet s;
  for (uint64_t i = 0; i < 100; i += 2) s.append_point(i);
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(s.interval_count(), 50u);
}

TEST(IntervalSet, UnionDisjointAndOverlap) {
  auto a = IntervalSet::range(0, 10);
  auto b = IntervalSet::range(20, 30);
  auto u = a.set_union(b);
  EXPECT_EQ(u.size(), 20u);
  EXPECT_EQ(u.interval_count(), 2u);

  auto c = IntervalSet::range(5, 25);
  auto u2 = u.set_union(c);
  EXPECT_EQ(u2.interval_count(), 1u);
  EXPECT_EQ(u2.size(), 30u);
}

TEST(IntervalSet, IntersectBasic) {
  auto a = IntervalSet::range(0, 10);
  auto b = IntervalSet::range(5, 15);
  auto i = a.set_intersect(b);
  EXPECT_EQ(i, IntervalSet::range(5, 10));
}

TEST(IntervalSet, IntersectDisjointIsEmpty) {
  auto a = IntervalSet::range(0, 10);
  auto b = IntervalSet::range(10, 20);
  EXPECT_TRUE(a.set_intersect(b).empty());
  EXPECT_TRUE(a.disjoint(b));
}

TEST(IntervalSet, SubtractSplitsInterval) {
  auto a = IntervalSet::range(0, 10);
  auto b = IntervalSet::range(3, 7);
  auto d = a.set_subtract(b);
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d.interval_count(), 2u);
  EXPECT_TRUE(d.contains(2) && d.contains(7));
  EXPECT_FALSE(d.contains(3) || d.contains(6));
}

TEST(IntervalSet, ContainsAll) {
  auto a = IntervalSet::range(0, 100);
  auto b = IntervalSet::from_points({1, 50, 99});
  EXPECT_TRUE(a.contains_all(b));
  EXPECT_FALSE(b.contains_all(a));
  b.add_point(100);
  EXPECT_FALSE(a.contains_all(b));
}

TEST(IntervalSet, NthPoint) {
  auto s = IntervalSet::from_points({2, 3, 10, 11, 12});
  EXPECT_EQ(s.nth_point(0), 2u);
  EXPECT_EQ(s.nth_point(1), 3u);
  EXPECT_EQ(s.nth_point(2), 10u);
  EXPECT_EQ(s.nth_point(4), 12u);
}

TEST(IntervalSet, ForEachPointVisitsInOrder) {
  auto s = IntervalSet::from_points({7, 1, 3});
  std::vector<uint64_t> seen;
  s.for_each_point([&](uint64_t p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 3, 7}));
}

// ---- Property tests against a brute-force std::set oracle. ----

IntervalSet random_set(Rng& rng, uint64_t universe, int ops) {
  IntervalSet s;
  for (int i = 0; i < ops; ++i) {
    uint64_t lo = rng.next_below(universe);
    uint64_t hi = lo + rng.next_below(universe / 4 + 1);
    s.add(lo, std::min(hi, universe));
  }
  return s;
}

std::set<uint64_t> to_oracle(const IntervalSet& s) {
  std::set<uint64_t> out;
  s.for_each_point([&](uint64_t p) { out.insert(p); });
  return out;
}

class IntervalSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetProperty, AlgebraMatchesSetOracle) {
  Rng rng(GetParam());
  const uint64_t universe = 200;
  auto a = random_set(rng, universe, 6);
  auto b = random_set(rng, universe, 6);
  auto oa = to_oracle(a);
  auto ob = to_oracle(b);

  // union
  std::set<uint64_t> ou = oa;
  ou.insert(ob.begin(), ob.end());
  EXPECT_EQ(to_oracle(a.set_union(b)), ou);

  // intersect
  std::set<uint64_t> oi;
  for (uint64_t p : oa) {
    if (ob.count(p)) oi.insert(p);
  }
  EXPECT_EQ(to_oracle(a.set_intersect(b)), oi);

  // subtract
  std::set<uint64_t> od;
  for (uint64_t p : oa) {
    if (!ob.count(p)) od.insert(p);
  }
  EXPECT_EQ(to_oracle(a.set_subtract(b)), od);

  // predicates
  EXPECT_EQ(a.overlaps(b), !oi.empty());
  EXPECT_EQ(a.size(), oa.size());

  // representation invariants: sorted, disjoint, coalesced
  const IntervalSet u3 = a.set_union(b);
  const auto& ivs = u3.intervals();
  for (size_t i = 1; i < ivs.size(); ++i) {
    EXPECT_LT(ivs[i - 1].hi, ivs[i].lo);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Range<uint64_t>(0, 50));

TEST(IntervalSet, UnionIdentityAndIdempotence) {
  Rng rng(42);
  auto a = random_set(rng, 500, 10);
  EXPECT_EQ(a.set_union(IntervalSet()), a);
  EXPECT_EQ(a.set_union(a), a);
  EXPECT_EQ(a.set_intersect(a), a);
  EXPECT_TRUE(a.set_subtract(a).empty());
}

TEST(IntervalSet, FromPointsEmptyInput) {
  EXPECT_TRUE(IntervalSet::from_points({}).empty());
}

TEST(IntervalSet, FromPointsAdjacentPointsCoalesce) {
  auto s = IntervalSet::from_points({7, 8, 9});
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.bounds(), (Interval{7, 10}));
}

TEST(IntervalSet, FromPointsNearMaxValues) {
  // The duplicate check used to compute `back().hi >= p + 1`, which
  // wraps at p == UINT64_MAX - 1 only after the point is inserted (hi
  // becomes UINT64_MAX); these must survive without overflow.
  auto s = IntervalSet::from_points(
      {UINT64_MAX - 2, UINT64_MAX - 1, UINT64_MAX - 2});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(UINT64_MAX - 1));
  EXPECT_FALSE(s.contains(UINT64_MAX));
  EXPECT_EQ(s.bounds(), (Interval{UINT64_MAX - 2, UINT64_MAX}));
}

TEST(IntervalSetDeath, MaxPointIsRejectedLoudly) {
  // UINT64_MAX is unrepresentable as a half-open point ([MAX, MAX+1)
  // wraps to [MAX, 0)); it used to be dropped silently, corrupting any
  // set algebra downstream. Now it aborts.
  EXPECT_DEATH(IntervalSet::from_points({UINT64_MAX}), "UINT64_MAX");
  EXPECT_DEATH(
      [] {
        IntervalSet s;
        s.add_point(UINT64_MAX);
      }(),
      "UINT64_MAX");
}

}  // namespace
}  // namespace cr::support
