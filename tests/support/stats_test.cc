#include "support/stats.h"

#include <gtest/gtest.h>

namespace cr::support {
namespace {

TEST(Stats, AddAccumulates) {
  Stats s;
  s.add("tasks");
  s.add("tasks", 4);
  EXPECT_DOUBLE_EQ(s.get("tasks"), 5.0);
}

TEST(Stats, MissingIsZero) {
  Stats s;
  EXPECT_DOUBLE_EQ(s.get("nope"), 0.0);
  EXPECT_FALSE(s.has("nope"));
}

TEST(Stats, SetMaxKeepsMaximum) {
  Stats s;
  s.set_max("peak", 3);
  s.set_max("peak", 7);
  s.set_max("peak", 5);
  EXPECT_DOUBLE_EQ(s.get("peak"), 7.0);
}

TEST(Stats, ClearResets) {
  Stats s;
  s.add("x", 2);
  s.clear();
  EXPECT_FALSE(s.has("x"));
}

TEST(Stats, ToStringListsEntries) {
  Stats s;
  s.add("copies", 3);
  EXPECT_NE(s.to_string().find("copies = 3"), std::string::npos);
}

}  // namespace
}  // namespace cr::support
