// HostProfiler/HostProfile aggregation on a synthetic span set: phase
// totals, per-worker busy time, per-window rows (serial vs parallel
// segments), the host.* metric view, and both JSON artifact writers.
// The span layout mirrors what sim/simulator.cc records — contiguous
// per-worker timelines with the coordinator carrying plan/serial/wake
// segments around each window's parallel block.
#include "support/host_clock.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "support/json.h"

namespace cr::support {
namespace {

// Two workers, two real windows plus the final drain iteration.
// Coordinator (worker 0) timeline, ns offsets from the profile origin:
//   win 0: plan[0,100) serial[100,250) plan[250,300) wake[300,320)
//          lane[320,700) flush[700,750) wait[750,800)
//   win 1: plan[800,850) lane[850,1000) flush[1000,1010) wait[1010,1100)
//   final: plan[1100,1150) under window index 2 (no lane drain -> no row)
// Worker 1:
//   win 0: wait[0,330) lane[330,680) flush[680,720) wake[720,740)
//   win 1: wait[740,860) lane[860,990) flush[990,1000) wake[1000,1005)
HostProfiler make_profiler() {
  HostProfiler prof;
  prof.begin(2);
  const uint64_t o = prof.origin_ns();
  auto rec = [&](uint32_t w, uint64_t win, HostPhase p, uint64_t t0,
                 uint64_t t1) { prof.record(w, win, p, o + t0, o + t1); };
  rec(0, 0, HostPhase::kPlan, 0, 100);
  rec(0, 0, HostPhase::kSerialDrain, 100, 250);
  rec(0, 0, HostPhase::kPlan, 250, 300);
  rec(0, 0, HostPhase::kBarrierWake, 300, 320);
  rec(0, 0, HostPhase::kLaneDrain, 320, 700);
  rec(0, 0, HostPhase::kOutboxFlush, 700, 750);
  rec(0, 0, HostPhase::kBarrierWait, 750, 800);
  rec(0, 1, HostPhase::kPlan, 800, 850);
  rec(0, 1, HostPhase::kLaneDrain, 850, 1000);
  rec(0, 1, HostPhase::kOutboxFlush, 1000, 1010);
  rec(0, 1, HostPhase::kBarrierWait, 1010, 1100);
  rec(0, 2, HostPhase::kPlan, 1100, 1150);
  rec(1, 0, HostPhase::kBarrierWait, 0, 330);
  rec(1, 0, HostPhase::kLaneDrain, 330, 680);
  rec(1, 0, HostPhase::kOutboxFlush, 680, 720);
  rec(1, 0, HostPhase::kBarrierWake, 720, 740);
  rec(1, 1, HostPhase::kBarrierWait, 740, 860);
  rec(1, 1, HostPhase::kLaneDrain, 860, 990);
  rec(1, 1, HostPhase::kOutboxFlush, 990, 1000);
  rec(1, 1, HostPhase::kBarrierWake, 1000, 1005);
  // Spin past the last synthetic offset so wall_ns (a real clock
  // distance) covers the fake spans and serial = wall - parallel stays
  // a meaningful identity.
  while (host_now_ns() - o < 2000) {
  }
  prof.end();
  return prof;
}

size_t idx(HostPhase p) { return static_cast<size_t>(p); }

TEST(HostClock, PhaseNamesAreStable) {
  EXPECT_STREQ(host_phase_name(HostPhase::kPlan), "plan");
  EXPECT_STREQ(host_phase_name(HostPhase::kSerialDrain), "serial_drain");
  EXPECT_STREQ(host_phase_name(HostPhase::kLaneDrain), "lane_drain");
  EXPECT_STREQ(host_phase_name(HostPhase::kOutboxFlush), "outbox_flush");
  EXPECT_STREQ(host_phase_name(HostPhase::kBarrierWait), "barrier_wait");
  EXPECT_STREQ(host_phase_name(HostPhase::kBarrierWake), "barrier_wake");
}

TEST(HostClock, MonotonicClockAdvances) {
  const uint64_t a = host_now_ns();
  const uint64_t b = host_now_ns();
  EXPECT_GE(b, a);
}

TEST(HostClock, AggregatesPhaseTotalsAndBusyTime) {
  const HostProfile p = make_profiler().profile();
  ASSERT_EQ(p.workers, 2u);
  EXPECT_DOUBLE_EQ(p.phase_ns[idx(HostPhase::kPlan)], 250.0);
  EXPECT_DOUBLE_EQ(p.phase_ns[idx(HostPhase::kSerialDrain)], 150.0);
  EXPECT_DOUBLE_EQ(p.phase_ns[idx(HostPhase::kLaneDrain)], 1010.0);
  EXPECT_DOUBLE_EQ(p.phase_ns[idx(HostPhase::kOutboxFlush)], 110.0);
  EXPECT_DOUBLE_EQ(p.phase_ns[idx(HostPhase::kBarrierWait)], 590.0);
  EXPECT_DOUBLE_EQ(p.phase_ns[idx(HostPhase::kBarrierWake)], 45.0);
  ASSERT_EQ(p.worker_busy_ns.size(), 2u);
  EXPECT_EQ(p.worker_busy_ns[0], 590u);  // lane 380+150 + flush 50+10
  EXPECT_EQ(p.worker_busy_ns[1], 530u);  // lane 350+130 + flush 40+10
  EXPECT_EQ(p.worker_recorded_ns[0], 1150u);
  EXPECT_EQ(p.worker_recorded_ns[1], 1005u);
  EXPECT_EQ(p.coordinator_recorded_ns, 1150u);
}

TEST(HostClock, BuildsWindowRowsAndDropsFinalDrainIteration) {
  const HostProfile p = make_profiler().profile();
  // The window-2 plan span (final drain iteration, no lane drain) must
  // not produce a row.
  ASSERT_EQ(p.window_rows.size(), 2u);
  EXPECT_EQ(p.windows, 2u);

  const HostWindowRow& r0 = p.window_rows[0];
  EXPECT_EQ(r0.window, 0u);
  EXPECT_EQ(r0.start_ns, 0u);
  EXPECT_EQ(r0.end_ns, 800u);
  EXPECT_EQ(r0.parallel_span_ns, 480u);  // lane drain start 320 -> 800
  EXPECT_EQ(r0.serial_ns, 320u);
  EXPECT_EQ(r0.busy_ns, 820u);  // 380+50 (w0) + 350+40 (w1)

  const HostWindowRow& r1 = p.window_rows[1];
  EXPECT_EQ(r1.window, 1u);
  EXPECT_EQ(r1.start_ns, 800u);
  EXPECT_EQ(r1.end_ns, 1100u);
  EXPECT_EQ(r1.parallel_span_ns, 250u);
  EXPECT_EQ(r1.serial_ns, 50u);
  EXPECT_EQ(r1.busy_ns, 300u);  // 150+10 (w0) + 130+10 (w1)

  EXPECT_EQ(p.window_span_hist.count(), 2u);
  EXPECT_EQ(p.window_span_hist.sum(), 730u);
  EXPECT_EQ(p.window_busy_hist.count(), 2u);
  EXPECT_EQ(p.window_busy_hist.sum(), 1120u);

  // wall_ns is the real begin->end distance (the test body itself), so
  // only the identity serial = wall - sum(parallel) is checkable.
  EXPECT_GT(p.wall_ns, 0u);
  ASSERT_GE(p.wall_ns, 730u);
  EXPECT_EQ(p.serial_ns, p.wall_ns - 730u);
  EXPECT_GE(p.serial_fraction, 0.0);
  EXPECT_LE(p.serial_fraction, 1.0);
}

TEST(HostClock, RecordClampsBelowOriginToZero) {
  HostProfiler prof;
  prof.begin(1);
  const uint64_t o = prof.origin_ns();
  // A worker whose first boundary was stamped before begin() (thread
  // spawn order) must clamp, not wrap.
  prof.record(0, 0, HostPhase::kBarrierWait, o > 50 ? o - 50 : 0, o + 10);
  prof.end();
  const HostProfile p = prof.profile();
  ASSERT_EQ(p.spans[0].size(), 1u);
  EXPECT_EQ(p.spans[0][0].t0, 0u);
  EXPECT_EQ(p.spans[0][0].t1, 10u);
}

TEST(HostClock, HostMetricsViewHasExpectedKeys) {
  const std::map<std::string, double> m = make_profiler().profile()
                                              .host_metrics();
  for (const char* key :
       {"host.profile.wall_ns", "host.profile.windows",
        "host.profile.workers", "host.profile.serial_ns",
        "host.profile.serial_fraction", "host.phase.plan_ns",
        "host.phase.serial_drain_ns", "host.phase.lane_drain_ns",
        "host.phase.outbox_flush_ns", "host.phase.barrier_wait_ns",
        "host.phase.barrier_wake_ns", "host.worker.busy_frac_min",
        "host.worker.busy_frac_max", "host.worker.busy_frac_mean",
        "host.window.span_ns.count", "host.window.span_ns.sum",
        "host.window.busy_ns.count", "host.window.busy_ns.sum"}) {
    EXPECT_TRUE(m.count(key)) << key;
  }
  // Every key is host.-prefixed: nothing here may leak into the
  // bit-stable MetricsRegistry namespace.
  for (const auto& [key, value] : m) {
    EXPECT_EQ(key.rfind("host.", 0), 0u) << key;
  }
  EXPECT_DOUBLE_EQ(m.at("host.profile.workers"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("host.profile.windows"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("host.phase.lane_drain_ns"), 1010.0);
  EXPECT_DOUBLE_EQ(m.at("host.window.busy_ns.sum"), 1120.0);
  EXPECT_GE(m.at("host.worker.busy_frac_max"),
            m.at("host.worker.busy_frac_min"));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(HostClock, WriteJsonRoundTripsThroughParser) {
  const std::string path = testing::TempDir() + "/host_phases_test.json";
  make_profiler().profile().write_json(path, "synthetic");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(slurp(path), doc, error)) << error;
  ASSERT_NE(doc.get("kind"), nullptr);
  EXPECT_EQ(doc.get("kind")->str, "host_phases");
  EXPECT_EQ(doc.get("app")->str, "synthetic");
  EXPECT_DOUBLE_EQ(doc.get("workers")->num, 2.0);
  EXPECT_DOUBLE_EQ(doc.get("windows")->num, 2.0);
  const JsonValue* phases = doc.get("phase_ns");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->get("serial_drain"), nullptr);
  EXPECT_DOUBLE_EQ(phases->get("serial_drain")->num, 150.0);
  const JsonValue* rows = doc.get("windows_detail");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(rows->arr[0].get("parallel_span_ns")->num, 480.0);
  const JsonValue* workers = doc.get("workers_detail");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(workers->arr[1].get("busy_ns")->num, 530.0);
}

TEST(HostClock, ChromeTraceIsValidJsonWithSerialTrack) {
  const std::string path = testing::TempDir() + "/host_trace_test.json";
  make_profiler().profile().write_chrome_json(path);
  const std::string text = slurp(path);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(text, doc, error)) << error;
  ASSERT_TRUE(doc.is_array());
  // Metadata: process name + one thread_name per track (serial + 2
  // workers), then one X event per span (12 + 8).
  EXPECT_EQ(doc.arr.size(), 4u + 20u);
  // Coordinator plan/serial spans land on tid 0 (the serial-phase
  // track); lane drains land on the worker tracks (tid = worker + 1).
  size_t serial_track_events = 0, worker_track_events = 0;
  for (const JsonValue& ev : doc.arr) {
    const JsonValue* ph = ev.get("ph");
    if (ph == nullptr || ph->str != "X") continue;
    if (ev.get("tid")->num == 0.0) {
      ++serial_track_events;
      const std::string name = ev.get("name")->str;
      EXPECT_TRUE(name == "plan" || name == "serial_drain") << name;
    } else {
      ++worker_track_events;
    }
  }
  EXPECT_EQ(serial_track_events, 5u);   // 4 plan + 1 serial_drain
  EXPECT_EQ(worker_track_events, 15u);  // everything else
}

}  // namespace
}  // namespace cr::support
