// Regression tests for the JSON reader: escape handling inside keys and
// values, \uXXXX decoding (including surrogate pairs), and exact
// round-tripping of integers at the edge of uint64_t.
#include "support/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace cr::support {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(json_parse(text, v, error)) << error;
  return v;
}

void parse_fails(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse(text, v, error)) << "accepted: " << text;
  EXPECT_FALSE(error.empty());
}

TEST(Json, EscapedQuoteAndBackslashInValues) {
  const JsonValue v = parse_ok(R"({"s":"a\"b\\c\/d\n"})");
  ASSERT_NE(v.get("s"), nullptr);
  EXPECT_EQ(v.get("s")->str, "a\"b\\c/d\n");
}

TEST(Json, EscapedCharactersInKeys) {
  const JsonValue v = parse_ok(R"({"k\"ey\\1":1,"k\tey2":2})");
  ASSERT_NE(v.get("k\"ey\\1"), nullptr);
  EXPECT_EQ(v.get("k\"ey\\1")->num, 1);
  ASSERT_NE(v.get("k\tey2"), nullptr);
  EXPECT_EQ(v.get("k\tey2")->num, 2);
}

TEST(Json, UnicodeEscapeAscii) {
  const JsonValue v = parse_ok("[\"\\u0041\\u007a\"]");
  ASSERT_EQ(v.arr.size(), 1u);
  EXPECT_EQ(v.arr[0].str, "Az");
}

TEST(Json, UnicodeEscapeTwoAndThreeByteUtf8) {
  // U+00E9 -> 0xC3 0xA9; U+20AC -> 0xE2 0x82 0xAC.
  const JsonValue v = parse_ok("[\"\\u00e9\\u20AC\"]");
  ASSERT_EQ(v.arr.size(), 1u);
  EXPECT_EQ(v.arr[0].str, "\xC3\xA9\xE2\x82\xAC");
}

TEST(Json, UnicodeEscapeSurrogatePair) {
  // U+1F600 (surrogate pair D83D DE00) -> 0xF0 0x9F 0x98 0x80.
  const JsonValue v = parse_ok("[\"\\uD83D\\uDE00\"]");
  ASSERT_EQ(v.arr.size(), 1u);
  EXPECT_EQ(v.arr[0].str, "\xF0\x9F\x98\x80");
}

TEST(Json, UnicodeEscapeRejectsMalformed) {
  parse_fails("[\"\\u12\"]");          // truncated
  parse_fails("[\"\\u12G4\"]");        // non-hex digit
  parse_fails("[\"\\uD83D\"]");        // unpaired high surrogate
  parse_fails("[\"\\uD83Dxy\"]");      // high surrogate, no \\u follows
  parse_fails("[\"\\uD83D\\u0041\"]");  // high surrogate, bad low half
  parse_fails("[\"\\uDE00\"]");        // unpaired low surrogate
}

TEST(Json, Uint64EdgeValuesRoundTripExactly) {
  // 2^53 + 1 is the first integer a double cannot represent.
  const uint64_t edges[] = {0,
                            1,
                            (uint64_t{1} << 53) - 1,
                            (uint64_t{1} << 53) + 1,
                            uint64_t{INT64_MAX},
                            uint64_t{INT64_MAX} + 1,
                            UINT64_MAX - 1,
                            UINT64_MAX};
  for (const uint64_t e : edges) {
    const JsonValue v = parse_ok("[" + std::to_string(e) + "]");
    ASSERT_EQ(v.arr.size(), 1u);
    EXPECT_TRUE(v.arr[0].is_number());
    ASSERT_TRUE(v.arr[0].has_u64) << e;
    EXPECT_EQ(v.arr[0].u64, e) << e;
    EXPECT_EQ(v.arr[0].has_i64, e <= uint64_t{INT64_MAX}) << e;
  }
}

TEST(Json, Int64EdgeValuesRoundTripExactly) {
  const int64_t edges[] = {-1, INT64_MIN + 1, INT64_MIN,
                           -(int64_t{1} << 53) - 1};
  for (const int64_t e : edges) {
    const JsonValue v = parse_ok("[" + std::to_string(e) + "]");
    ASSERT_EQ(v.arr.size(), 1u);
    ASSERT_TRUE(v.arr[0].has_i64) << e;
    EXPECT_EQ(v.arr[0].i64, e) << e;
    EXPECT_FALSE(v.arr[0].has_u64) << e;
  }
}

TEST(Json, IntegersBeyond64BitsFallBackToDouble) {
  const JsonValue v = parse_ok("[18446744073709551616]");  // 2^64
  ASSERT_EQ(v.arr.size(), 1u);
  EXPECT_TRUE(v.arr[0].is_number());
  EXPECT_FALSE(v.arr[0].has_u64);
  EXPECT_FALSE(v.arr[0].has_i64);
  EXPECT_DOUBLE_EQ(v.arr[0].num, 18446744073709551616.0);
}

TEST(Json, FractionalAndExponentNumbersStayDoubles) {
  const JsonValue v = parse_ok(R"([1.5,-2.25e2,1e3])");
  ASSERT_EQ(v.arr.size(), 3u);
  EXPECT_DOUBLE_EQ(v.arr[0].num, 1.5);
  EXPECT_FALSE(v.arr[0].has_u64);
  EXPECT_DOUBLE_EQ(v.arr[1].num, -225.0);
  EXPECT_DOUBLE_EQ(v.arr[2].num, 1000.0);
}

TEST(Json, RejectsLeadingPlus) {
  parse_fails("[+5]");
}

TEST(Json, RejectsBareMinusAndGarbage) {
  parse_fails("[-]");
  parse_fails("[1.2.3]");
  parse_fails("[\"\\q\"]");
}

}  // namespace
}  // namespace cr::support
