#include "support/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cr::support {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Tracer, BreakdownPartitionsMachineTimeExactly) {
  Tracer t;
  t.declare_track(0, 0, "core 0");
  t.declare_track(0, 1, "core 1");
  t.add_span(0, 0, TraceCategory::kCompute, "a", 0, 40);
  t.add_span(0, 0, TraceCategory::kCopy, "b", 60, 80);
  t.add_span(0, 1, TraceCategory::kSync, "c", 10, 30);
  const TraceSummary s = t.summarize(100);
  const TraceBreakdown& b = s.breakdown;
  EXPECT_EQ(b.tracks, 2u);
  EXPECT_DOUBLE_EQ(b.compute_ns, 40.0);
  EXPECT_DOUBLE_EQ(b.copy_ns, 20.0);
  EXPECT_DOUBLE_EQ(b.sync_ns, 20.0);
  EXPECT_DOUBLE_EQ(b.idle_ns, 120.0);
  EXPECT_DOUBLE_EQ(b.compute_ns + b.copy_ns + b.sync_ns + b.idle_ns,
                   b.total_ns);
  EXPECT_DOUBLE_EQ(b.total_ns, 200.0);
}

TEST(Tracer, OverlapClaimsByCategoryPriority) {
  // compute > copy > sync: overlapping intervals on one track are
  // counted once, by the highest-priority claimant.
  Tracer t;
  t.declare_track(0, 0, "core 0");
  t.add_span(0, 0, TraceCategory::kCompute, "a", 0, 50);
  t.add_span(0, 0, TraceCategory::kCopy, "b", 40, 70);
  t.add_span(0, 0, TraceCategory::kSync, "c", 60, 90);
  const TraceBreakdown& b = t.summarize(100).breakdown;
  EXPECT_DOUBLE_EQ(b.compute_ns, 50.0);
  EXPECT_DOUBLE_EQ(b.copy_ns, 20.0);  // [50,70)
  EXPECT_DOUBLE_EQ(b.sync_ns, 20.0);  // [70,90)
  EXPECT_DOUBLE_EQ(b.idle_ns, 10.0);
}

TEST(Tracer, RuntimeTracksAreExcludedFromIdleAccounting) {
  Tracer t;
  t.declare_track(0, 0, "core 0");
  t.declare_track(kRuntimePid, 0, "barriers", false);
  t.add_span(kRuntimePid, 0, TraceCategory::kSync, "barrier", 0, 100);
  const TraceBreakdown& b = t.summarize(100).breakdown;
  EXPECT_EQ(b.tracks, 1u);
  EXPECT_DOUBLE_EQ(b.sync_ns, 0.0);
  EXPECT_DOUBLE_EQ(b.idle_ns, 100.0);
}

TEST(Tracer, CriticalPathFollowsDependenceEdges) {
  // a[0,100) --(uid 1)--> c[150,250); b[0,200) independent.
  // c finishes last; path = c + a, wait = 50 (gap between a and c).
  Tracer t;
  const SpanId a = t.add_span(0, 0, TraceCategory::kCompute, "a", 0, 100);
  t.add_span(0, 1, TraceCategory::kCompute, "b", 0, 200);
  t.bind(1, a);
  const SpanId c = t.add_span(1, 0, TraceCategory::kCopy, "c", 150, 250);
  t.edge(1, c);
  const TraceSummary s = t.summarize(250);
  EXPECT_EQ(s.cp_spans, 2u);
  EXPECT_DOUBLE_EQ(s.cp_compute_ns, 100.0);
  EXPECT_DOUBLE_EQ(s.cp_copy_ns, 100.0);
  EXPECT_DOUBLE_EQ(s.cp_wait_ns, 50.0);
}

TEST(Tracer, CriticalPathResolvesAliases) {
  // The consumer edge names uid 2, which aliases to uid 1 bound to `a`.
  Tracer t;
  const SpanId a = t.add_span(0, 0, TraceCategory::kCompute, "a", 0, 100);
  t.bind(1, a);
  t.alias(2, 1);
  const SpanId c = t.add_span(0, 1, TraceCategory::kCompute, "c", 100, 150);
  t.edge(2, c);
  const TraceSummary s = t.summarize(150);
  EXPECT_EQ(s.cp_spans, 2u);
  EXPECT_DOUBLE_EQ(s.cp_wait_ns, 0.0);
}

TEST(Tracer, CriticalPathUsesResourceFifoEdges) {
  // Two back-to-back spans on one track with no explicit edge: the
  // second was gated by the resource, so both land on the path.
  Tracer t;
  t.add_span(0, 0, TraceCategory::kCompute, "a", 0, 100);
  t.add_span(0, 0, TraceCategory::kCompute, "b", 100, 180);
  const TraceSummary s = t.summarize(180);
  EXPECT_EQ(s.cp_spans, 2u);
  EXPECT_DOUBLE_EQ(s.cp_compute_ns, 180.0);
  EXPECT_DOUBLE_EQ(s.cp_wait_ns, 0.0);
}

TEST(Tracer, TopContributorsAggregateByNameStem) {
  Tracer t;
  SpanId prev = t.add_span(0, 0, TraceCategory::kCompute, "TF[0]", 0, 100);
  t.bind(1, prev);
  SpanId next = t.add_span(0, 0, TraceCategory::kCompute, "TF[1]", 100, 250);
  t.edge(1, next);
  const TraceSummary s = t.summarize(250);
  ASSERT_FALSE(s.cp_top.empty());
  EXPECT_EQ(s.cp_top[0].first, "TF");
  EXPECT_DOUBLE_EQ(s.cp_top[0].second, 250.0);
}

TEST(Tracer, WritesChromeJsonWithMetadataSpansAndInstants) {
  Tracer t;
  t.set_process_name(0, "node 0");
  t.declare_track(0, 0, "control");
  t.add_span(0, 0, TraceCategory::kCompute, "work \"x\"", 1000, 3000);
  t.add_instant(0, 0, "mark", 2000);
  const std::string path = ::testing::TempDir() + "/trace_test.json";
  t.write_chrome_json(path);
  const std::string text = slurp(path);
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1.000"), std::string::npos);  // ns -> us
  EXPECT_NE(text.find("\"dur\":2.000"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("work \\\"x\\\""), std::string::npos);  // escaping
  std::remove(path.c_str());
}

TEST(Tracer, EmptyTracerWritesValidEmptyArray) {
  Tracer t;
  const std::string path = ::testing::TempDir() + "/trace_empty.json";
  t.write_chrome_json(path);
  EXPECT_EQ(slurp(path), "[\n\n]\n");
  std::remove(path.c_str());
}

TEST(Tracer, AttributionRollsUpCopyAndSyncBySource) {
  Tracer t;
  // Source 7 "incr": one copy span (uid 1) and one sync span (uid 2).
  const SpanId cp = t.add_span(0, 0, TraceCategory::kCopy, "ghost", 0, 100);
  t.bind(1, cp);
  t.attribute(1, 7, "incr");
  const SpanId sy = t.add_span(kRuntimePid, 0, TraceCategory::kSync,
                               "barrier", 100, 130);
  t.bind(2, sy);
  t.attribute(2, 7, "incr");
  // Source 3 "init": a compute span is not copy/sync time, so it yields
  // a row only through its counted span.
  const SpanId w = t.add_span(0, 1, TraceCategory::kCopy, "fill", 0, 40);
  t.bind(3, w);
  t.attribute(3, 3, "init");

  const std::vector<TraceAttributionRow> rows = t.attribution();
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by total time descending: source 7 (130ns) before 3 (40ns).
  EXPECT_EQ(rows[0].source, 7u);
  EXPECT_EQ(rows[0].label, "incr");
  EXPECT_DOUBLE_EQ(rows[0].copy_ns, 100.0);
  EXPECT_DOUBLE_EQ(rows[0].sync_ns, 30.0);
  EXPECT_EQ(rows[0].spans, 2u);
  EXPECT_EQ(rows[1].source, 3u);
  EXPECT_DOUBLE_EQ(rows[1].copy_ns, 40.0);

  // summarize() carries the same rollup.
  const TraceSummary s = t.summarize(130);
  ASSERT_EQ(s.attribution.size(), 2u);
  EXPECT_EQ(s.attribution[0].source, 7u);
  EXPECT_NE(s.to_text().find("incr"), std::string::npos);
}

TEST(Tracer, AttributionFirstClaimWinsAndResolvesAliases) {
  Tracer t;
  const SpanId a = t.add_span(0, 0, TraceCategory::kCopy, "c", 0, 50);
  t.bind(1, a);
  t.alias(2, 1);
  // Attributing the same uid twice: the first claim wins.
  t.attribute(1, 4, "first");
  t.attribute(1, 9, "second");
  // Attributing through the alias resolves to the same span, which was
  // already claimed — it must not be double-counted or reassigned.
  t.attribute(2, 9, "second");
  const std::vector<TraceAttributionRow> rows = t.attribution();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].source, 4u);
  EXPECT_EQ(rows[0].label, "first");
  EXPECT_DOUBLE_EQ(rows[0].copy_ns, 50.0);
  EXPECT_EQ(rows[0].spans, 1u);
}

TEST(Tracer, AttributionOfUnboundUidIsDropped) {
  Tracer t;
  t.attribute(99, 1, "nothing");  // uid never bound to a span
  EXPECT_TRUE(t.attribution().empty());
}

TEST(Tracer, SummaryTextReportsCategoriesAndCriticalPath) {
  Tracer t;
  t.declare_track(0, 0, "core 0");
  t.add_span(0, 0, TraceCategory::kCompute, "TF[3]", 0, 1000000);
  const std::string text = t.summarize(2000000).to_text();
  EXPECT_NE(text.find("=== trace summary ==="), std::string::npos);
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("idle"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("TF"), std::string::npos);
}

}  // namespace
}  // namespace cr::support
