#include "apps/miniaero/miniaero.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"

namespace cr::apps::miniaero {
namespace {

using exec::CostModel;

TEST(MiniAero, BuildShapes) {
  rt::Runtime rt(exec::runtime_config(2, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = 2;
  cfg.pieces_per_node = 2;
  cfg.cells_x_per_piece = 4;
  cfg.cells_y = 5;
  cfg.cells_z = 3;
  App app = build(rt, cfg);
  EXPECT_EQ(app.pieces, 4u);
  const auto& forest = rt.forest();
  EXPECT_EQ(forest.region(app.rc).ispace.size(), 16u * 5u * 3u);
  EXPECT_FALSE(forest.partitions_may_alias(app.p_int, app.p_halo));
  EXPECT_TRUE(forest.partitions_may_alias(app.p_bnd, app.p_halo));
  // Interior slab: 2 of 4 x-layers per piece.
  EXPECT_EQ(forest.region(forest.subregion(app.p_int, 0)).ispace.size(),
            2u * 5u * 3u);
  // Middle pieces see two neighbor face layers.
  EXPECT_EQ(forest.region(forest.subregion(app.p_halo, 1)).ispace.size(),
            2u * 5u * 3u);
  EXPECT_EQ(forest.region(forest.subregion(app.p_halo, 0)).ispace.size(),
            1u * 5u * 3u);
}

// A uniform flow state is a fixed point of the flux scheme: fluxes
// cancel exactly, so the solution must stay bitwise uniform.
TEST(MiniAero, UniformStateIsFixedPoint) {
  rt::Runtime rt(exec::runtime_config(1, 4, CostModel{}, true));
  Config cfg;
  cfg.pieces_per_node = 2;
  cfg.cells_x_per_piece = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 4;
  cfg.steps = 3;
  App app = build(rt, cfg);
  // Overwrite the init kernel with a uniform state.
  for (auto& t : app.program.tasks) {
    if (t.name != "init") continue;
    const auto f_sol = app.f_sol;
    const auto f_stage = app.f_stage;
    t.kernel = [f_sol, f_stage](ir::TaskContext& ctx) {
      ctx.domain().points().for_each_point([&](uint64_t id) {
        const double vals[5] = {1.2, 0.3, -0.1, 0.2, 2.5};
        for (size_t k = 0; k < 5; ++k) {
          ctx.write_f64(0, f_sol[k], id, vals[k]);
          ctx.write_f64(0, f_stage[k], id, vals[k]);
        }
      });
    };
  }
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  const uint64_t n = rt.forest().region(app.rc).ispace.size();
  for (uint64_t c = 0; c < n; ++c) {
    EXPECT_NEAR(oracle.read_f64(app.rc, app.f_sol[0], c), 1.2, 1e-12);
    EXPECT_NEAR(oracle.read_f64(app.rc, app.f_sol[1], c), 0.3, 1e-12);
    EXPECT_NEAR(oracle.read_f64(app.rc, app.f_sol[4], c), 2.5, 1e-12);
  }
}

// Mass is conserved up to wall fluxes; with a symmetric state and small
// dt the total must stay bounded and positive.
TEST(MiniAero, DensityStaysPositiveAndBounded) {
  rt::Runtime rt(exec::runtime_config(1, 4, CostModel{}, true));
  Config cfg;
  cfg.pieces_per_node = 2;
  cfg.cells_x_per_piece = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 4;
  cfg.steps = 4;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  const uint64_t n = rt.forest().region(app.rc).ispace.size();
  for (uint64_t c = 0; c < n; ++c) {
    const double rho = oracle.read_f64(app.rc, app.f_sol[0], c);
    EXPECT_GT(rho, 0.5);
    EXPECT_LT(rho, 2.0);
  }
}

class MiniAeroEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool>> {};

TEST_P(MiniAeroEquivalence, MatchesOracle) {
  const uint32_t nodes = std::get<0>(GetParam());
  const bool spmd = std::get<1>(GetParam());
  rt::Runtime rt(exec::runtime_config(nodes, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 2;
  cfg.cells_x_per_piece = 3;
  cfg.cells_y = 4;
  cfg.cells_z = 3;
  cfg.steps = 2;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  exec::PreparedRun run =
      spmd ? exec::prepare_spmd(rt, app.program, CostModel{}, {})
           : exec::prepare_implicit(rt, app.program, CostModel{}, {});
  run.run();
  const uint64_t n = rt.forest().region(app.rc).ispace.size();
  for (uint64_t c = 0; c < n; ++c) {
    for (size_t k = 0; k < 5; ++k) {
      ASSERT_NEAR(run.engine->read_root_f64(app.rc, app.f_sol[k], c),
                  oracle.read_f64(app.rc, app.f_sol[k], c), 1e-12)
          << "var " << k << " cell " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, MiniAeroEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 4u), ::testing::Bool()));

TEST(MiniAero, BaselineConfigurationsDiffer) {
  Config cfg;
  cfg.pieces_per_node = 2;
  cfg.cells_x_per_piece = 8;
  cfg.cells_y = 8;
  cfg.cells_z = 8;
  cfg.steps = 3;
  CostModel cost = CostModel::piz_daint();
  cfg.nodes = 4;
  const sim::Time t_core = run_mpi_baseline(cfg, false, cost, {});
  const sim::Time t_node = run_mpi_baseline(cfg, true, cost, {});
  EXPECT_GT(t_core, 0u);
  EXPECT_GT(t_node, 0u);
  EXPECT_NE(t_core, t_node);
}

}  // namespace
}  // namespace cr::apps::miniaero
