#include "apps/common/bsp.h"

#include <gtest/gtest.h>

namespace cr::apps {
namespace {

exec::CostModel flat_cost() {
  exec::CostModel c;
  c.network.latency_ns = 1000;
  c.network.bandwidth_gbps = 1.0;
  c.network.mem_bandwidth_gbps = 100.0;
  c.network.am_handler_ns = 0;
  return c;
}

TEST(Bsp, ComputeOnlyIsIterationsTimesCompute) {
  BspConfig cfg;
  cfg.nodes = 4;
  cfg.ranks_per_node = 1;
  cfg.cores_per_node = 4;
  cfg.iterations = 5;
  cfg.compute_ns = [](uint32_t, uint64_t) { return 1000.0; };
  EXPECT_EQ(run_bsp(cfg, flat_cost()), 5000u);
}

TEST(Bsp, NeighborExchangeAddsLatencyOncePerIteration) {
  BspConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.cores_per_node = 1;
  cfg.iterations = 2;
  cfg.compute_ns = [](uint32_t, uint64_t) { return 10000.0; };
  cfg.sends = [](uint32_t r) {
    return std::vector<BspMessage>{{r == 0 ? 1u : 0u, 1000}};
  };
  // Per iteration: compute 10us, then the 1 KB message (1 us serial +
  // 1 us latency) gates the next iteration.
  const sim::Time t = run_bsp(cfg, flat_cost());
  EXPECT_EQ(t, 2 * 10000u + /*last recv gates nothing more than end*/
                   2 * 2000u);
}

TEST(Bsp, SlowestRankGatesAllreduce) {
  BspConfig cfg;
  cfg.nodes = 4;
  cfg.ranks_per_node = 1;
  cfg.cores_per_node = 1;
  cfg.iterations = 3;
  cfg.allreduce_per_iteration = true;
  cfg.compute_ns = [](uint32_t r, uint64_t) {
    return r == 2 ? 2000.0 : 1000.0;  // one straggler
  };
  const sim::Time t = run_bsp(cfg, flat_cost());
  // Every iteration pays the straggler plus the collective fan-in/out.
  sim::Simulator sim;
  sim::Network net(sim, 4, flat_cost().network);
  const sim::Time coll = 2 * net.tree_latency(4);
  EXPECT_EQ(t, 3 * (2000 + coll));
}

TEST(Bsp, NoiseFactorDeterministicAndBounded) {
  Noise noise{0.25, 0.5};
  int slow = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    const double f = noise_factor(k, noise);
    EXPECT_EQ(f, noise_factor(k, noise));
    EXPECT_TRUE(f == 1.0 || f == 1.5);
    if (f > 1.0) ++slow;
  }
  // ~25% of draws are slow.
  EXPECT_GT(slow, 180);
  EXPECT_LT(slow, 320);
}

TEST(Bsp, ZeroNoiseIsIdentity) {
  EXPECT_EQ(noise_factor(123, Noise{}), 1.0);
}

TEST(Bsp, RanksPerCoreOverlapAcrossCores) {
  // 2 ranks on 2 cores: their compute overlaps.
  BspConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 2;
  cfg.cores_per_node = 2;
  cfg.iterations = 1;
  cfg.compute_ns = [](uint32_t, uint64_t) { return 7000.0; };
  EXPECT_EQ(run_bsp(cfg, flat_cost()), 7000u);
}

}  // namespace
}  // namespace cr::apps
