#include "apps/stencil/stencil.h"

#include <gtest/gtest.h>

#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"

namespace cr::apps::stencil {
namespace {

using exec::CostModel;
using exec::PreparedRun;

TEST(Stencil, BuildShapes) {
  rt::Runtime rt(exec::runtime_config(2, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = 2;
  cfg.tasks_per_node = 3;
  cfg.tile_x = 8;
  cfg.tile_y = 8;
  App app = build(rt, cfg);
  EXPECT_EQ(app.total_tiles, 6u);
  EXPECT_EQ(app.tiles_x * app.tiles_y, 6u);
  const auto& forest = rt.forest();
  EXPECT_TRUE(forest.partition(app.out_tiles).disjoint);
  EXPECT_TRUE(forest.partition(app.p_int).disjoint);
  EXPECT_TRUE(forest.partition(app.p_bnd).disjoint);
  EXPECT_FALSE(forest.partition(app.p_halo).disjoint);
  // The hierarchical split proves interiors never communicate (§4.5).
  EXPECT_FALSE(forest.partitions_may_alias(app.p_int, app.p_halo));
  EXPECT_TRUE(forest.partitions_may_alias(app.p_bnd, app.p_halo));
  // With radius 2, an 8x8 tile has a 4x4 interior.
  EXPECT_EQ(forest.region(forest.subregion(app.p_int, 0)).ispace.size(),
            16u);
  EXPECT_EQ(forest.region(forest.subregion(app.p_bnd, 0)).ispace.size(),
            48u);
  // A halo covers at most the four neighbor ring strips.
  for (uint64_t c = 0; c < 6; ++c) {
    const auto& halo =
        forest.region(forest.subregion(app.p_halo, c)).ispace;
    EXPECT_GT(halo.size(), 0u);
    EXPECT_LE(halo.size(), 48u + 4 * 2 * 8u);
  }
}

TEST(Stencil, OracleMatchesClosedForm) {
  rt::Runtime rt(exec::runtime_config(1, 4, CostModel{}, true));
  Config cfg;
  cfg.tasks_per_node = 4;
  cfg.tile_x = 10;
  cfg.tile_y = 10;
  cfg.steps = 3;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  const auto& e = rt.forest().region(app.r_out).ispace.extents();
  for (int64_t x = cfg.radius; x < static_cast<int64_t>(e.n[0]) - cfg.radius;
       x += 3) {
    for (int64_t y = cfg.radius;
         y < static_cast<int64_t>(e.n[1]) - cfg.radius; y += 3) {
      EXPECT_NEAR(oracle.read_f64(app.r_out, app.f_out, e.linearize(x, y)),
                  expected_interior(cfg, cfg.steps, x, y), 1e-9)
          << "at (" << x << "," << y << ")";
    }
  }
}

class StencilEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool>> {};

TEST_P(StencilEquivalence, MatchesOracle) {
  const uint32_t nodes = std::get<0>(GetParam());
  const bool spmd = std::get<1>(GetParam());
  rt::Runtime rt(exec::runtime_config(nodes, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = nodes;
  cfg.tasks_per_node = 2;
  cfg.tile_x = 8;
  cfg.tile_y = 8;
  cfg.steps = 3;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  PreparedRun run =
      spmd ? exec::prepare_spmd(rt, app.program, CostModel{}, {})
           : exec::prepare_implicit(rt, app.program, CostModel{}, {});
  run.run();
  const uint64_t n = rt.forest().region(app.r_out).ispace.size();
  for (uint64_t p = 0; p < n; ++p) {
    ASSERT_EQ(run.engine->read_root_f64(app.r_out, app.f_out, p),
              oracle.read_f64(app.r_out, app.f_out, p))
        << "out[" << p << "]";
    ASSERT_EQ(run.engine->read_root_f64(app.r_in, app.f_in, p),
              oracle.read_f64(app.r_in, app.f_in, p))
        << "in[" << p << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, StencilEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 6u),
                       ::testing::Bool()));

TEST(Stencil, SteadyStateTrafficIsPerimeterOnly) {
  // After initialization, per-iteration data movement must be ring
  // copies only: interiors are provably private (paper §4.5). Compare
  // two runs differing only in step count; the delta is steady-state.
  auto run_steps = [](uint64_t steps) {
    rt::Runtime rt(exec::runtime_config(4, 4, CostModel{}, true));
    Config cfg;
    cfg.nodes = 4;
    cfg.tasks_per_node = 1;
    cfg.tile_x = 16;
    cfg.tile_y = 16;
    cfg.steps = steps;
    App app = build(rt, cfg);
    PreparedRun run = exec::prepare_spmd(rt, app.program, CostModel{}, {});
    return run.run().bytes_moved;
  };
  const uint64_t delta = run_steps(4) - run_steps(2);
  // Per step and tile: its own ring replica (|ring| = 16^2 - 12^2 = 112
  // elements) plus up to four neighbor strips of radius * edge; all
  // perimeter-scale, never the 256-element tile interior.
  const uint64_t ring = 16 * 16 - 12 * 12;
  const uint64_t per_step_bound = 4 * (ring + 4 * 2 * 16) * 8;
  EXPECT_LE(delta / 2, per_step_bound);
  EXPECT_GT(delta, 0u);
}

TEST(Stencil, MpiBaselinesRunAndScaleFlat) {
  Config cfg;
  cfg.tasks_per_node = 4;
  cfg.tile_x = 64;
  cfg.tile_y = 64;
  cfg.steps = 4;
  cfg.ns_per_point = 5.0;
  CostModel cost = CostModel::piz_daint();
  cfg.nodes = 1;
  const sim::Time t1 = run_mpi_baseline(cfg, /*rank_per_node=*/false, cost);
  cfg.nodes = 16;
  const sim::Time t16 = run_mpi_baseline(cfg, false, cost);
  EXPECT_GT(t1, 0u);
  // Weak scaling: time grows slowly (halo + latency only).
  EXPECT_LT(t16, 2 * t1);
  const sim::Time t16_omp = run_mpi_baseline(cfg, true, cost);
  EXPECT_GT(t16_omp, 0u);
}


// Radius generality: the halo construction and the closed form hold for
// any star radius the tile can accommodate.
class StencilRadius : public ::testing::TestWithParam<int64_t> {};

TEST_P(StencilRadius, SpmdMatchesClosedForm) {
  const int64_t radius = GetParam();
  rt::Runtime rt(exec::runtime_config(2, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = 2;
  cfg.tasks_per_node = 2;
  cfg.tile_x = 2 * static_cast<uint64_t>(radius) + 4;
  cfg.tile_y = 2 * static_cast<uint64_t>(radius) + 4;
  cfg.radius = radius;
  cfg.steps = 2;
  App app = build(rt, cfg);
  PreparedRun run = exec::prepare_spmd(rt, app.program, CostModel{}, {});
  run.run();
  const auto& e = rt.forest().region(app.r_out).ispace.extents();
  for (int64_t x = radius; x < static_cast<int64_t>(e.n[0]) - radius; ++x) {
    for (int64_t y = radius; y < static_cast<int64_t>(e.n[1]) - radius;
         ++y) {
      ASSERT_NEAR(
          run.engine->read_root_f64(app.r_out, app.f_out, e.linearize(x, y)),
          expected_interior(cfg, cfg.steps, x, y), 1e-9)
          << "radius " << radius << " at (" << x << "," << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, StencilRadius, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace cr::apps::stencil
