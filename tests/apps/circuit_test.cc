#include "apps/circuit/circuit.h"

#include <gtest/gtest.h>

#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"

namespace cr::apps::circuit {
namespace {

using exec::CostModel;

TEST(CircuitGraph, GeneratorInvariants) {
  GraphConfig gc;
  gc.pieces = 8;
  gc.nodes_per_piece = 32;
  gc.wires_per_piece = 96;
  gc.pct_cross = 0.2;
  gc.window = 2;
  Graph g = generate_graph(gc);
  ASSERT_EQ(g.in_node.size(), g.num_wires());
  uint64_t cross = 0;
  for (uint64_t w = 0; w < g.num_wires(); ++w) {
    EXPECT_LT(g.in_node[w], g.num_nodes());
    EXPECT_LT(g.out_node[w], g.num_nodes());
    EXPECT_NE(g.in_node[w], g.out_node[w]);
    EXPECT_EQ(g.piece_of_node(g.in_node[w]), g.piece_of_wire(w));
    const uint64_t pw = g.piece_of_wire(w);
    const uint64_t po = g.piece_of_node(g.out_node[w]);
    if (po != pw) {
      ++cross;
      // Cross wires stay within the window (sparsity of intersections).
      EXPECT_LE(po > pw ? po - pw : pw - po, gc.window);
      EXPECT_TRUE(g.shared[g.out_node[w]]);
      EXPECT_TRUE(g.shared[g.in_node[w]]);
    }
  }
  EXPECT_GT(cross, 0u);
  EXPECT_LT(cross, g.num_wires() / 2);
}

TEST(CircuitGraph, DeterministicBySeed) {
  GraphConfig gc;
  gc.pieces = 4;
  Graph a = generate_graph(gc);
  Graph b = generate_graph(gc);
  EXPECT_EQ(a.in_node, b.in_node);
  EXPECT_EQ(a.out_node, b.out_node);
}

TEST(Circuit, HierarchicalTreeProvesPrivateDisjoint) {
  rt::Runtime rt(exec::runtime_config(2, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = 2;
  cfg.pieces_per_node = 2;
  cfg.nodes_per_piece = 24;
  cfg.wires_per_piece = 64;
  App app = build(rt, cfg);
  // The compiler can prove private partitions never communicate.
  EXPECT_FALSE(rt.forest().partitions_may_alias(app.p_pvt, app.p_gst));
  EXPECT_FALSE(rt.forest().partitions_may_alias(app.p_pvt, app.p_shr));
  EXPECT_TRUE(rt.forest().partitions_may_alias(app.p_shr, app.p_gst));
}

double total_vc(const exec::SequentialResult& r, const App& app,
                uint64_t n) {
  double acc = 0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += r.read_f64(app.rn, app.f_voltage, i) *
           r.read_f64(app.rn, app.f_cap, i);
  }
  return acc;
}

TEST(Circuit, OracleConservesChargeWithoutLeakage) {
  rt::Runtime rt(exec::runtime_config(1, 4, CostModel{}, true));
  Config cfg;
  cfg.pieces_per_node = 4;
  cfg.nodes_per_piece = 32;
  cfg.wires_per_piece = 96;
  cfg.steps = 1;
  cfg.leakage = 0.0;
  App one = build(rt, cfg);
  exec::SequentialResult r1 = exec::run_sequential(one.program);

  rt::Runtime rt2(exec::runtime_config(1, 4, CostModel{}, true));
  cfg.steps = 6;
  App six = build(rt2, cfg);
  exec::SequentialResult r6 = exec::run_sequential(six.program);

  // Sum of V*C is invariant across steps (charge only moves).
  EXPECT_NEAR(total_vc(r1, one, one.graph.num_nodes()),
              total_vc(r6, six, six.graph.num_nodes()), 1e-6);
}

class CircuitEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool>> {};

TEST_P(CircuitEquivalence, MatchesOracle) {
  const uint32_t nodes = std::get<0>(GetParam());
  const bool spmd = std::get<1>(GetParam());
  rt::Runtime rt(exec::runtime_config(nodes, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 2;
  cfg.nodes_per_piece = 24;
  cfg.wires_per_piece = 72;
  cfg.steps = 3;
  cfg.pct_cross = 0.15;
  cfg.leakage = 0.05;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  exec::PreparedRun run =
      spmd ? exec::prepare_spmd(rt, app.program, CostModel{}, {})
           : exec::prepare_implicit(rt, app.program, CostModel{}, {});
  run.run();
  for (uint64_t n = 0; n < app.graph.num_nodes(); ++n) {
    ASSERT_NEAR(run.engine->read_root_f64(app.rn, app.f_voltage, n),
                oracle.read_f64(app.rn, app.f_voltage, n), 1e-12)
        << "voltage[" << n << "]";
    ASSERT_NEAR(run.engine->read_root_f64(app.rn, app.f_charge, n),
                oracle.read_f64(app.rn, app.f_charge, n), 1e-12);
  }
  for (uint64_t w = 0; w < app.graph.num_wires(); ++w) {
    ASSERT_NEAR(run.engine->read_root_f64(app.rw, app.f_current, w),
                oracle.read_f64(app.rw, app.f_current, w), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, CircuitEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 4u), ::testing::Bool()));

TEST(Circuit, SpmdWithBarriersAndNoIntersectionsStillCorrect) {
  rt::Runtime rt(exec::runtime_config(3, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = 3;
  cfg.pieces_per_node = 2;
  cfg.nodes_per_piece = 20;
  cfg.wires_per_piece = 60;
  cfg.steps = 2;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  passes::PipelineOptions opt;
  opt.p2p_sync = false;
  opt.intersection_opt = false;
  opt.copy_placement = false;
  exec::PreparedRun run =
      exec::prepare_spmd(rt, app.program, CostModel{}, opt);
  run.run();
  for (uint64_t n = 0; n < app.graph.num_nodes(); ++n) {
    ASSERT_NEAR(run.engine->read_root_f64(app.rn, app.f_voltage, n),
                oracle.read_f64(app.rn, app.f_voltage, n), 1e-12);
  }
}


// The full pipeline-option matrix on the most structurally demanding app
// (hierarchical trees + region reductions): every combination must still
// reproduce the oracle.
class CircuitOptions
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, bool>> {};

TEST_P(CircuitOptions, AllPipelineVariantsMatchOracle) {
  passes::PipelineOptions opt;
  opt.copy_placement = std::get<0>(GetParam());
  opt.intersection_opt = std::get<1>(GetParam());
  opt.p2p_sync = std::get<2>(GetParam());
  opt.hierarchical = std::get<3>(GetParam());
  rt::Runtime rt(exec::runtime_config(3, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = 3;
  cfg.pieces_per_node = 2;
  cfg.nodes_per_piece = 16;
  cfg.wires_per_piece = 48;
  cfg.steps = 2;
  cfg.pct_cross = 0.2;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  exec::PreparedRun run = exec::prepare_spmd(rt, app.program, CostModel{}, opt);
  run.run();
  for (uint64_t n = 0; n < app.graph.num_nodes(); ++n) {
    ASSERT_NEAR(run.engine->read_root_f64(app.rn, app.f_voltage, n),
                oracle.read_f64(app.rn, app.f_voltage, n), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, CircuitOptions,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace cr::apps::circuit
