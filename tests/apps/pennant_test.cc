#include "apps/pennant/pennant.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"

namespace cr::apps::pennant {
namespace {

using exec::CostModel;

TEST(PennantMesh, Topology) {
  Mesh m = make_mesh({.zones_x = 4, .zones_y = 3, .pieces = 3});
  EXPECT_EQ(m.num_zones(), 36u);
  EXPECT_EQ(m.num_points(), 13u * 4u);
  // Zone corners are the four surrounding lattice points.
  uint64_t c[4];
  m.zone_points(m.zone_id(2, 1), c);
  EXPECT_EQ(c[0], m.point_id(2, 1));
  EXPECT_EQ(c[2], m.point_id(3, 2));
  // Strip boundary columns are shared, owned by the left piece.
  EXPECT_FALSE(m.point_col_shared(0));
  EXPECT_TRUE(m.point_col_shared(4));
  EXPECT_TRUE(m.point_col_shared(8));
  EXPECT_FALSE(m.point_col_shared(12));
  EXPECT_EQ(m.point_piece(m.point_id(4, 0)), 0u);
  EXPECT_EQ(m.point_piece(m.point_id(8, 2)), 1u);
  EXPECT_EQ(m.point_piece(m.point_id(12, 1)), 2u);
  EXPECT_EQ(m.zone_piece(m.zone_id(5, 0)), 1u);
}

TEST(Pennant, HierarchicalStructure) {
  rt::Runtime rt(exec::runtime_config(2, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = 2;
  cfg.pieces_per_node = 2;
  cfg.zones_x_per_piece = 4;
  cfg.zones_y = 4;
  App app = build(rt, cfg);
  EXPECT_FALSE(rt.forest().partitions_may_alias(app.p_pvt, app.p_gst));
  EXPECT_TRUE(rt.forest().partitions_may_alias(app.p_shr, app.p_gst));
  // Piece 0 has no ghosts; pieces 1..3 each see one column.
  EXPECT_EQ(rt.forest()
                .region(rt.forest().subregion(app.p_gst, 0))
                .ispace.size(),
            0u);
  EXPECT_EQ(rt.forest()
                .region(rt.forest().subregion(app.p_gst, 1))
                .ispace.size(),
            cfg.zones_y + 1);
}

struct OracleChecks {
  double momentum_x = 0, momentum_y = 0, total_vol = 0;
  double dt = 0;
};

OracleChecks run_oracle(const Config& cfg, App& app,
                        exec::SequentialResult& oracle) {
  OracleChecks out;
  for (uint64_t p = 0; p < app.mesh.num_points(); ++p) {
    const double m = oracle.read_f64(app.rp, app.f_pmass, p);
    out.momentum_x += m * oracle.read_f64(app.rp, app.f_pu, p);
    out.momentum_y += m * oracle.read_f64(app.rp, app.f_pv, p);
  }
  for (uint64_t z = 0; z < app.mesh.num_zones(); ++z) {
    out.total_vol += oracle.read_f64(app.rz, app.f_zvol, z);
  }
  out.dt = oracle.scalar(app.s_dt);
  (void)cfg;
  return out;
}

TEST(Pennant, OraclePhysicsSanity) {
  rt::Runtime rt(exec::runtime_config(1, 4, CostModel{}, true));
  Config cfg;
  cfg.pieces_per_node = 3;
  cfg.zones_x_per_piece = 6;
  cfg.zones_y = 6;
  cfg.steps = 5;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  OracleChecks c = run_oracle(cfg, app, oracle);
  // Corner forces sum to zero per zone: total momentum stays zero.
  EXPECT_NEAR(c.momentum_x, 0.0, 1e-9);
  EXPECT_NEAR(c.momentum_y, 0.0, 1e-9);
  // The mesh deforms but stays near its initial area.
  EXPECT_NEAR(c.total_vol, 18.0 * 6.0, 0.5);
  // dt stays positive and bounded.
  EXPECT_GT(c.dt, 0.0);
  EXPECT_LE(c.dt, cfg.dt_max);
}

class PennantEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool>> {};

TEST_P(PennantEquivalence, MatchesOracle) {
  const uint32_t nodes = std::get<0>(GetParam());
  const bool spmd = std::get<1>(GetParam());
  rt::Runtime rt(exec::runtime_config(nodes, 4, CostModel{}, true));
  Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 2;
  cfg.zones_x_per_piece = 4;
  cfg.zones_y = 5;
  cfg.steps = 4;
  App app = build(rt, cfg);
  exec::SequentialResult oracle = exec::run_sequential(app.program);
  exec::PreparedRun run =
      spmd ? exec::prepare_spmd(rt, app.program, CostModel{}, {})
           : exec::prepare_implicit(rt, app.program, CostModel{}, {});
  run.run();
  // The timestep evolved through the dynamic collective identically.
  ASSERT_NEAR(run.engine->scalar(app.s_dt), oracle.scalar(app.s_dt), 1e-15);
  for (uint64_t p = 0; p < app.mesh.num_points(); ++p) {
    for (rt::FieldId f : {app.f_px, app.f_py, app.f_pu, app.f_pv}) {
      ASSERT_NEAR(run.engine->read_root_f64(app.rp, f, p),
                  oracle.read_f64(app.rp, f, p), 1e-11)
          << "point field " << f << " at " << p;
    }
  }
  for (uint64_t z = 0; z < app.mesh.num_zones(); ++z) {
    for (rt::FieldId f : {app.f_zp, app.f_zvol, app.f_zr}) {
      ASSERT_NEAR(run.engine->read_root_f64(app.rz, f, z),
                  oracle.read_f64(app.rz, f, z), 1e-11)
          << "zone field " << f << " at " << z;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, PennantEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 4u), ::testing::Bool()));

TEST(Pennant, MpiBaselineBlocksOnAllreduce) {
  Config cfg;
  cfg.pieces_per_node = 2;
  cfg.zones_x_per_piece = 16;
  cfg.zones_y = 16;
  cfg.steps = 6;
  CostModel cost = CostModel::piz_daint();
  cfg.nodes = 1;
  const sim::Time t1 = run_mpi_baseline(cfg, false, cost, {});
  cfg.nodes = 32;
  const sim::Time t32 = run_mpi_baseline(cfg, false, cost, {});
  EXPECT_GT(t32, t1);  // allreduce latency appears
  // With heavy-tailed noise, the blocking collective pays the max
  // across all ranks nearly every cycle.
  const sim::Time t32_j =
      run_mpi_baseline(cfg, false, cost, Noise{0.01, 0.5});
  EXPECT_GT(t32_j, t32);
}

}  // namespace
}  // namespace cr::apps::pennant
