#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace cr::sim {
namespace {

NetworkConfig test_config() {
  NetworkConfig c;
  c.latency_ns = 1000;
  c.bandwidth_gbps = 1.0;      // 1 B/ns: easy arithmetic
  c.mem_bandwidth_gbps = 10.0;
  c.am_handler_ns = 0;
  return c;
}

TEST(Network, DeliveryTimeIsLatencyPlusSerialization) {
  Simulator sim;
  Network net(sim, 2, test_config());
  Event d = net.send(0, 1, 500, Event());
  sim.run();
  EXPECT_EQ(d.trigger_time(), 1500u);  // 500 B / 1 B/ns + 1000 ns
}

TEST(Network, NicSerializesConcurrentSends) {
  Simulator sim;
  Network net(sim, 3, test_config());
  Event d1 = net.send(0, 1, 1000, Event());
  Event d2 = net.send(0, 2, 1000, Event());
  sim.run();
  EXPECT_EQ(d1.trigger_time(), 2000u);  // injected [0,1000), +latency
  EXPECT_EQ(d2.trigger_time(), 3000u);  // injected [1000,2000), +latency
}

TEST(Network, DifferentSourcesDoNotSerialize) {
  Simulator sim;
  Network net(sim, 3, test_config());
  Event d1 = net.send(0, 2, 1000, Event());
  Event d2 = net.send(1, 2, 1000, Event());
  sim.run();
  EXPECT_EQ(d1.trigger_time(), 2000u);
  EXPECT_EQ(d2.trigger_time(), 2000u);
}

TEST(Network, LocalSendUsesMemoryBandwidthNoLatency) {
  Simulator sim;
  Network net(sim, 2, test_config());
  Event d = net.send(1, 1, 1000, Event());
  sim.run();
  EXPECT_EQ(d.trigger_time(), 100u);  // 1000 B / 10 B/ns
}

TEST(Network, PreconditionDelaysInjection) {
  Simulator sim;
  Network net(sim, 2, test_config());
  UserEvent gate(sim);
  Event d = net.send(0, 1, 100, gate.event());
  sim.schedule_at(5000, [&] { gate.trigger(); });
  sim.run();
  EXPECT_EQ(d.trigger_time(), 6100u);
}

TEST(Network, OnDeliveryRunsAtDeliveryTime) {
  Simulator sim;
  Network net(sim, 2, test_config());
  Time seen = 0;
  net.send(0, 1, 0, Event(), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 1000u);
}

TEST(Network, CountsTraffic) {
  Simulator sim;
  Network net(sim, 2, test_config());
  net.send(0, 1, 10, Event());
  net.send(1, 0, 20, Event());
  sim.run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 30u);
}

TEST(Network, TreeLatencyGrowsLogarithmically) {
  Simulator sim;
  Network net(sim, 2, test_config());
  EXPECT_EQ(net.tree_latency(1), 0u);
  const Time l2 = net.tree_latency(2);
  const Time l64 = net.tree_latency(64);
  const Time l1024 = net.tree_latency(1024);
  EXPECT_GT(l2, 0u);
  EXPECT_EQ(l64, 6 * l2);
  EXPECT_EQ(l1024, 10 * l2);
}

TEST(Network, TreeLatencyExactAtPowersOfFanin) {
  // Regression: the old float-log level count (ceil(log(p)/log(f)))
  // rounds exact powers up on common libm implementations —
  // log(125)/log(5) == 3.0000000000000004 — charging a spurious extra
  // tree level.
  Simulator sim;
  Network net(sim, 2, test_config());
  const Time l1 = net.tree_latency(2);  // one level
  EXPECT_EQ(net.tree_latency(8, 2), 3 * l1);
  EXPECT_EQ(net.tree_latency(125, 5), 3 * l1);
  EXPECT_EQ(net.tree_latency(216, 6), 3 * l1);
  EXPECT_EQ(net.tree_latency(4096, 8), 4 * l1);
  // One past a power needs an extra level.
  EXPECT_EQ(net.tree_latency(126, 5), 4 * l1);
  EXPECT_EQ(net.tree_latency(9, 2), 4 * l1);
}

TEST(Network, SubNanosecondSerializationRoundsUp) {
  // Regression: bytes/bandwidth used to truncate, so payloads smaller
  // than the per-ns bandwidth moved in zero virtual time.
  Simulator sim;
  Network net(sim, 2, test_config());
  EXPECT_EQ(net.local_copy_time(1), 1u);    // 0.1 ns at 10 B/ns -> 1 ns
  EXPECT_EQ(net.local_copy_time(25), 3u);   // ceil(2.5)
  EXPECT_EQ(net.local_copy_time(0), 0u);    // empty stays free
  EXPECT_EQ(net.transfer_time(1), 1001u);   // latency + ceil(1/1)
  Event d = net.send(1, 1, 1, Event());     // local 1 B at 10 B/ns
  sim.run();
  EXPECT_EQ(d.trigger_time(), 1u);
}

TEST(Network, SubNanosecondRemoteSendsStillOccupyTheNic) {
  NetworkConfig c = test_config();
  c.bandwidth_gbps = 16.0;  // 16 B/ns: an 8 B payload is 0.5 ns
  Simulator sim;
  Network net(sim, 2, c);
  Event d1 = net.send(0, 1, 8, Event());
  Event d2 = net.send(0, 1, 8, Event());
  sim.run();
  EXPECT_EQ(d1.trigger_time(), 1001u);  // inject [0,1) + latency
  EXPECT_EQ(d2.trigger_time(), 1002u);  // queued behind the first
}

TEST(Network, HandlerJitterIsDeterministicAndBounded) {
  Simulator sim;
  NetworkConfig c = test_config();
  c.am_jitter_ns = 200;
  c.jitter_seed = 7;
  Network net(sim, 2, c);
  Network net2(sim, 2, c);
  for (uint64_t uid = 0; uid < 64; ++uid) {
    const Time j = net.handler_jitter(uid);
    EXPECT_LE(j, 200u);
    EXPECT_EQ(j, net2.handler_jitter(uid));  // pure function of (seed, uid)
  }
  Network off(sim, 2, test_config());
  EXPECT_EQ(off.handler_jitter(5), 0u);  // disabled by default
}

TEST(Network, JitterOnlyAddsDelay) {
  NetworkConfig c = test_config();
  c.am_jitter_ns = 200;
  Simulator sim;
  Network net(sim, 2, c);
  Event d = net.send(0, 1, 500, Event());
  sim.run();
  // Jitter is strictly additive on top of the analytic arrival, so the
  // conservative lookahead bound stays sound.
  EXPECT_GE(d.trigger_time(), 1500u);
  EXPECT_LE(d.trigger_time(), 1700u);
  EXPECT_EQ(net.min_cross_node_delay(), 1000u);
}

}  // namespace
}  // namespace cr::sim
