// The sense-reversing window barrier that paces the multi-worker DES
// backend. These tests drive real threads through many release/arrive
// cycles: the visibility contract (coordinator writes -> workers after
// await_release, worker writes -> coordinator after wait_arrivals) is
// exactly what the simulator's window protocol leans on.
#include "sim/window_barrier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace cr::sim {
namespace {

TEST(WindowBarrier, ZeroArriversIsTrivial) {
  WindowBarrier b;
  b.init(0);
  for (uint64_t e = 1; e <= 3; ++e) {
    b.release(e);
    b.wait_arrivals(e);  // must not block
  }
}

TEST(WindowBarrier, SingleArriverRoundTrips) {
  WindowBarrier b;
  b.init(1);
  std::atomic<bool> quit{false};
  uint64_t observed = 0;
  std::thread t([&] {
    uint64_t seen = 0;
    for (;;) {
      seen = b.await_release(seen);
      if (quit.load(std::memory_order_acquire)) return;
      ++observed;  // ordinary write, published by arrive()
      b.arrive(0, seen);
    }
  });
  for (uint64_t e = 1; e <= 100; ++e) {
    b.release(e);
    b.wait_arrivals(e);
    EXPECT_EQ(observed, e);
  }
  quit.store(true, std::memory_order_release);
  b.release(101);
  t.join();
}

// Many workers over many epochs, more threads than a single fan-in
// group so the combining tree has at least two levels. Each worker adds
// its id+1 to a plain (non-atomic) per-epoch sum; the barrier's acq_rel
// arrival chain must make every contribution visible to the
// coordinator, and no worker may run ahead or lag an epoch.
TEST(WindowBarrier, ManyWorkersManyEpochs) {
  constexpr uint32_t kWorkers = 7;  // > kFanIn: exercises propagation
  constexpr uint64_t kEpochs = 500;
  WindowBarrier b;
  b.init(kWorkers);
  std::vector<uint64_t> sum(kWorkers, 0);
  std::atomic<bool> quit{false};
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      uint64_t seen = 0;
      for (;;) {
        seen = b.await_release(seen);
        if (quit.load(std::memory_order_acquire)) return;
        sum[w] += w + 1;
        b.arrive(w, seen);
      }
    });
  }
  for (uint64_t e = 1; e <= kEpochs; ++e) {
    b.release(e);
    b.wait_arrivals(e);
    for (uint32_t w = 0; w < kWorkers; ++w) {
      ASSERT_EQ(sum[w], e * (w + 1)) << "worker " << w << " epoch " << e;
    }
  }
  quit.store(true, std::memory_order_release);
  b.release(kEpochs + 1);
  for (std::thread& t : threads) t.join();
}

// init() must fully reset a used barrier (epoch sequencing restarts).
TEST(WindowBarrier, ReinitAfterUse) {
  WindowBarrier b;
  for (int round = 0; round < 2; ++round) {
    b.init(2);
    std::atomic<bool> quit{false};
    std::vector<std::thread> threads;
    for (uint32_t w = 0; w < 2; ++w) {
      threads.emplace_back([&, w] {
        uint64_t seen = 0;
        for (;;) {
          seen = b.await_release(seen);
          if (quit.load(std::memory_order_acquire)) return;
          b.arrive(w, seen);
        }
      });
    }
    for (uint64_t e = 1; e <= 10; ++e) {
      b.release(e);
      b.wait_arrivals(e);
    }
    quit.store(true, std::memory_order_release);
    b.release(11);
    for (std::thread& t : threads) t.join();
  }
}

}  // namespace
}  // namespace cr::sim
