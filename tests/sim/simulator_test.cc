#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace cr::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  Time end = sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(end, 30u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    sim.schedule_after(9, [&] {
      EXPECT_EQ(sim.now(), 10u);
      ++fired;
    });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, NowAdvancesMonotonically) {
  Simulator sim;
  Time last = 0;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(static_cast<Time>(i * 3 % 17), [&, i] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run();
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

}  // namespace
}  // namespace cr::sim
