// Host-phase profiler and stall watchdog on a direct windowed
// Simulator program (no runtime/engine in the loop): the profiler must
// see every phase — including the global-lane serial drain, which the
// paper apps' point-to-point sync rarely exercises — with contiguous
// per-worker timelines, and neither the profiler nor the watchdog may
// perturb virtual time. The watchdog must turn a deliberately wedged
// lane into a flight-recorder dump naming every lane, and must stay
// silent on a healthy run.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "support/host_clock.h"

namespace cr::sim {
namespace {

constexpr uint32_t kNodes = 4;
constexpr Time kLookahead = 100;

struct RunResult {
  Time final_time = 0;
  uint64_t events = 0;
  uint64_t windows = 0;
  std::array<uint64_t, kNodes> node_execs{};
  uint64_t serial_execs = 0;
  std::vector<std::vector<ExecRecord>> log;
};

// A small multi-window program: per-node entry chains (each entry
// reschedules itself in-lane a few times, so windows stay busy) plus
// global entries on the coordinator lane — both the plain global path
// and a merge completion, so the serial phase definitely runs.
void unroll_program(Simulator& sim, RunResult& out) {
  for (uint32_t n = 0; n < kNodes; ++n) {
    for (int k = 0; k < 4; ++k) {
      std::function<void()> hop = [&out, n, &sim]() {
        ++out.node_execs[n];
        if (out.node_execs[n] % 3 != 0) {
          sim.schedule_after(40 + n, [&out, n] { ++out.node_execs[n]; });
        }
      };
      sim.schedule_at_affine(10 + 90 * static_cast<Time>(k) + n, n, hop);
    }
  }
  // Global-lane entries (creator kNoAffinity): run in serial phases
  // strictly before node entries at or after their time.
  for (const Time t : {150, 330}) {
    sim.schedule_at(t, [&out] { ++out.serial_execs; });
  }
  // A deferred merge completion (kMergeCreator key) — the other serial
  // producer; adaptive mode requires a registered influence floor, and
  // every completion must be armed at wiring time (the elision gate).
  sim.note_global_influence_floor(kLookahead);
  sim.note_merge_armed();
  sim.schedule_merge_completion(250, /*merge_uid=*/7,
                                [&out] { ++out.serial_execs; });
}

RunResult run_program(uint32_t workers, support::HostProfiler* prof,
                      Simulator::WatchdogOptions wd = {}) {
  Simulator sim;
  RunResult out;
  sim.begin_windowed(kNodes, kLookahead);
  unroll_program(sim, out);
  if (prof != nullptr) sim.set_host_profiler(prof);
  if (wd.budget_ms > 0) sim.set_watchdog(std::move(wd));
  sim.set_exec_log(&out.log);
  out.final_time = sim.run_windowed(workers);
  out.events = sim.events_processed();
  out.windows = sim.windows();
  return out;
}

void expect_same_timeline(const RunResult& a, const RunResult& b,
                          const std::string& where) {
  EXPECT_EQ(a.final_time, b.final_time) << where;
  EXPECT_EQ(a.events, b.events) << where;
  EXPECT_EQ(a.node_execs, b.node_execs) << where;
  EXPECT_EQ(a.serial_execs, b.serial_execs) << where;
  EXPECT_EQ(a.log, b.log) << where;
}

TEST(HostProfile, RecordsEveryPhaseIncludingSerialDrain) {
  // run_windowed() owns the profiler's begin()/end() bracket; the test
  // only attaches it and reads the aggregate afterwards.
  support::HostProfiler prof;
  const RunResult r = run_program(2, &prof);
  const support::HostProfile p = prof.profile();

  EXPECT_EQ(r.serial_execs, 3u);  // 2 global entries + 1 merge completion
  ASSERT_GT(r.windows, 1u);
  EXPECT_EQ(p.workers, 2u);
  EXPECT_GT(p.wall_ns, 0u);
  // One window row per planned window: the final drain iteration's plan
  // span carries one-past-the-last index and must not add a row.
  EXPECT_EQ(p.windows, r.windows);

  auto ns = [&p](support::HostPhase ph) {
    return p.phase_ns[static_cast<size_t>(ph)];
  };
  EXPECT_GT(ns(support::HostPhase::kPlan), 0.0);
  EXPECT_GT(ns(support::HostPhase::kSerialDrain), 0.0);
  EXPECT_GT(ns(support::HostPhase::kLaneDrain), 0.0);
  EXPECT_GT(ns(support::HostPhase::kBarrierWait), 0.0);
  EXPECT_GT(ns(support::HostPhase::kBarrierWake), 0.0);

  EXPECT_GT(p.coordinator_recorded_ns, 0u);
  EXPECT_LE(p.coordinator_recorded_ns, p.wall_ns);
  EXPECT_GE(p.serial_fraction, 0.0);
  EXPECT_LE(p.serial_fraction, 1.0);
}

TEST(HostProfile, SpansTileEachWorkerTimeline) {
  // The reconciliation guarantee: each mark closes the segment opened
  // by the previous one, so a worker's spans are contiguous and
  // monotonic — recorded time equals last_end - first_start exactly.
  support::HostProfiler prof;
  run_program(2, &prof);
  const support::HostProfile p = prof.profile();
  ASSERT_EQ(p.spans.size(), 2u);
  for (uint32_t w = 0; w < 2; ++w) {
    const auto& lane = p.spans[w];
    ASSERT_FALSE(lane.empty()) << "worker " << w;
    for (size_t i = 0; i < lane.size(); ++i) {
      EXPECT_LE(lane[i].t0, lane[i].t1) << "worker " << w << " span " << i;
      if (i + 1 < lane.size()) {
        EXPECT_EQ(lane[i].t1, lane[i + 1].t0)
            << "worker " << w << " gap after span " << i;
      }
    }
    EXPECT_EQ(p.worker_recorded_ns[w],
              lane.back().t1 - lane.front().t0)
        << "worker " << w;
  }
}

TEST(HostProfile, ProfilerAndWatchdogAreVirtualTimeNeutral) {
  // Reference: no observers, 1 worker.
  const RunResult ref = run_program(1, nullptr);
  ASSERT_GT(ref.events, 0u);
  ASSERT_EQ(ref.serial_execs, 3u);

  // Profiled at several worker counts.
  for (const uint32_t w : {1u, 2u, 4u}) {
    support::HostProfiler prof;
    const RunResult r = run_program(w, &prof);
    expect_same_timeline(ref, r, "profiled workers=" + std::to_string(w));
  }

  // Profiler + watchdog together (generous budget: it must stay quiet).
  support::HostProfiler prof;
  Simulator::WatchdogOptions wd;
  wd.budget_ms = 60000;
  wd.abort_on_stall = false;
  const RunResult r = run_program(4, &prof, std::move(wd));
  expect_same_timeline(ref, r, "profiled+watchdog workers=4");
}

TEST(HostProfile, WatchdogDumpsFlightRecorderOnStuckLane) {
  std::mutex mu;
  std::string captured;
  std::atomic<bool> wedged{false};

  Simulator sim;
  RunResult out;
  sim.begin_windowed(kNodes, kLookahead);
  unroll_program(sim, out);
  Simulator::WatchdogOptions wd;
  wd.budget_ms = 100;
  wd.abort_on_stall = false;  // test mode: record + re-arm, don't abort
  wd.sink = [&mu, &captured](const std::string& dump) {
    std::lock_guard<std::mutex> lock(mu);
    captured += dump;
  };
  sim.set_watchdog(std::move(wd));
  sim.set_exec_log(&out.log);
  // Wedge lane 3's worker once, well past the watchdog budget.
  sim.set_test_lane_hook([&wedged](uint32_t lane, uint64_t window) {
    if (lane == 3 && window >= 1 && !wedged.exchange(true)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    }
  });
  const Time final_time = sim.run_windowed(2);

  EXPECT_TRUE(wedged.load());
  EXPECT_TRUE(sim.watchdog_fired());
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(captured.empty());
  EXPECT_NE(captured.find("simulator stall watchdog"), std::string::npos);
  EXPECT_NE(captured.find("budget 100 ms"), std::string::npos);
  // Every lane's flight-recorder line, with front and window-end times.
  for (uint32_t n = 0; n < kNodes; ++n) {
    const std::string line = "lane " + std::to_string(n) + ": front t=";
    EXPECT_NE(captured.find(line), std::string::npos) << captured;
  }
  EXPECT_NE(captured.find("window end t="), std::string::npos);
  EXPECT_NE(captured.find("armed sends"), std::string::npos);
  // Barrier state and per-worker last-executed state.
  EXPECT_NE(captured.find("barrier epoch"), std::string::npos);
  EXPECT_NE(captured.find("parked workers"), std::string::npos);
  EXPECT_NE(captured.find("worker 0: last window"), std::string::npos);
  EXPECT_NE(captured.find("worker 1: last window"), std::string::npos);

  // The stall was transient: the run still completes with the same
  // virtual timeline as an unobserved one.
  const RunResult ref = run_program(1, nullptr);
  EXPECT_EQ(final_time, ref.final_time);
  EXPECT_EQ(out.node_execs, ref.node_execs);
  EXPECT_EQ(out.serial_execs, ref.serial_execs);
  EXPECT_EQ(out.log, ref.log);
}

TEST(HostProfile, WatchdogSurvivesLongSerialDrain) {
  // Regression: the serial phase used to run its whole drain loop
  // without touching the heartbeat, so a boundary with many global
  // entries could exceed the budget while making perfectly good
  // progress — a spurious stall dump. The coordinator now beats once
  // per drained entry (and exposes each iteration to the test hook as
  // lane == nodes()), so a drain that is long in aggregate but live per
  // entry must keep the watchdog silent.
  std::mutex mu;
  std::string captured;
  std::atomic<uint32_t> serial_iterations{0};

  Simulator sim;
  RunResult out;
  sim.begin_windowed(kNodes, kLookahead);
  // A little lane work so windows form, then a pile of global-lane
  // entries that one boundary drains back to back.
  for (uint32_t n = 0; n < kNodes; ++n) {
    sim.schedule_at_affine(10 + n, n, [&out, n] { ++out.node_execs[n]; });
  }
  sim.note_global_influence_floor(kLookahead);
  for (int k = 0; k < 10; ++k) {
    sim.schedule_at(150 + k, [&out] { ++out.serial_execs; });
  }
  Simulator::WatchdogOptions wd;
  wd.budget_ms = 100;
  wd.abort_on_stall = false;
  wd.sink = [&mu, &captured](const std::string& dump) {
    std::lock_guard<std::mutex> lock(mu);
    captured += dump;
  };
  sim.set_watchdog(std::move(wd));
  // Stretch every serial-drain iteration: ~10 x 40ms = ~400ms inside
  // one serial phase, far past the 100ms budget, but with a beat
  // between every sleep.
  sim.set_test_lane_hook([&serial_iterations](uint32_t lane, uint64_t) {
    if (lane == kNodes) {
      ++serial_iterations;
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  });
  sim.run_windowed(2);

  EXPECT_EQ(out.serial_execs, 10u);
  EXPECT_GE(serial_iterations.load(), 10u);
  EXPECT_FALSE(sim.watchdog_fired());
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(captured.empty()) << captured;
}

TEST(HostProfile, WatchdogStaysSilentOnHealthyRun) {
  std::mutex mu;
  std::string captured;
  Simulator sim;
  RunResult out;
  sim.begin_windowed(kNodes, kLookahead);
  unroll_program(sim, out);
  Simulator::WatchdogOptions wd;
  wd.budget_ms = 2000;  // far above this run's total wall time
  wd.abort_on_stall = false;
  wd.sink = [&mu, &captured](const std::string& dump) {
    std::lock_guard<std::mutex> lock(mu);
    captured += dump;
  };
  sim.set_watchdog(std::move(wd));
  sim.run_windowed(4);
  EXPECT_FALSE(sim.watchdog_fired());
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(captured.empty()) << captured;
}

}  // namespace
}  // namespace cr::sim
