#include "sim/processor.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.h"
#include "sim/simulator.h"

namespace cr::sim {
namespace {

TEST(Processor, SerializesWork) {
  Simulator sim;
  Processor p(sim, {0, 0});
  Event a = p.spawn(Event(), 100);
  Event b = p.spawn(Event(), 50);
  sim.run();
  EXPECT_EQ(a.trigger_time(), 100u);
  EXPECT_EQ(b.trigger_time(), 150u);  // queued behind a
  EXPECT_EQ(p.busy_time(), 150u);
}

TEST(Processor, WaitsForPrecondition) {
  Simulator sim;
  Processor p(sim, {0, 0});
  UserEvent gate(sim);
  Event done = p.spawn(gate.event(), 10);
  sim.schedule_at(100, [&] { gate.trigger(); });
  sim.run();
  EXPECT_EQ(done.trigger_time(), 110u);
}

TEST(Processor, WorkRunsAtStartTime) {
  Simulator sim;
  Processor p(sim, {0, 0});
  Time work_time = 0;
  p.spawn(Event(), 30);
  p.spawn(Event(), 20, [&] { work_time = sim.now(); });
  sim.run();
  EXPECT_EQ(work_time, 30u);  // starts when first item finishes
}

TEST(Processor, IndependentItemsOverlapAcrossCores) {
  Simulator sim;
  Machine m(sim, {.nodes = 1, .cores_per_node = 2});
  Event a = m.proc(0, 0).spawn(Event(), 100);
  Event b = m.proc(0, 1).spawn(Event(), 100);
  sim.run();
  EXPECT_EQ(a.trigger_time(), 100u);
  EXPECT_EQ(b.trigger_time(), 100u);
  EXPECT_EQ(m.node_busy_time(0), 200u);
}

TEST(Processor, ReadyOrderIsFifo) {
  Simulator sim;
  Processor p(sim, {0, 0});
  UserEvent g1(sim), g2(sim);
  std::vector<int> order;
  p.spawn(g1.event(), 10, [&] { order.push_back(1); });
  p.spawn(g2.event(), 10, [&] { order.push_back(2); });
  // g2 becomes ready first, so item 2 runs first.
  sim.schedule_at(5, [&] { g2.trigger(); });
  sim.schedule_at(6, [&] { g1.trigger(); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Machine, ProcLookup) {
  Simulator sim;
  Machine m(sim, {.nodes = 3, .cores_per_node = 4});
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_EQ(m.cores_per_node(), 4u);
  EXPECT_EQ(m.proc(2, 3).id().node, 2u);
  EXPECT_EQ(m.proc(2, 3).id().core, 3u);
}

TEST(Processor, ZeroDurationCompletesAtReadyTime) {
  Simulator sim;
  Processor p(sim, {0, 0});
  UserEvent gate(sim);
  Event done = p.spawn(gate.event(), 0);
  sim.schedule_at(7, [&] { gate.trigger(); });
  sim.run();
  EXPECT_EQ(done.trigger_time(), 7u);
}

TEST(Processor, NodePerfScalesDurations) {
  Simulator sim;
  NodePerf perf;
  perf.speed = 0.5;  // half-speed node: everything takes twice as long
  Processor p(sim, {0, 0}, &perf);
  Event a = p.spawn(Event(), 100);
  sim.run();
  EXPECT_EQ(a.trigger_time(), 200u);
  EXPECT_EQ(p.busy_time(), 200u);
}

TEST(Processor, SlowdownWindowAppliesByStartTime) {
  Simulator sim;
  NodePerf perf;
  perf.slowdowns.push_back({/*begin=*/0, /*end=*/100, /*factor=*/3.0});
  Processor p(sim, {0, 0}, &perf);
  Event a = p.spawn(Event(), 50);  // starts at 0, inside: 150 ns
  Event b = p.spawn(Event(), 50);  // starts at 150, outside: 50 ns
  sim.run();
  EXPECT_EQ(a.trigger_time(), 150u);
  EXPECT_EQ(b.trigger_time(), 200u);
}

TEST(Processor, ScaledWorkNeverRoundsToZero) {
  Simulator sim;
  NodePerf perf;
  perf.speed = 1000.0;  // 1 ns of work would round to 0: clamps to 1
  Processor p(sim, {0, 0}, &perf);
  Event a = p.spawn(Event(), 1);
  sim.run();
  EXPECT_EQ(a.trigger_time(), 1u);
}

TEST(Machine, NodeSpeedsReachProcessors) {
  Simulator sim;
  Machine m(sim, {.nodes = 2, .cores_per_node = 1, .node_speed = {1.0, 0.5}});
  EXPECT_EQ(m.node_speed(0), 1.0);
  EXPECT_EQ(m.node_speed(1), 0.5);
  Event fast = m.proc(0, 0).spawn(Event(), 100);
  Event slow = m.proc(1, 0).spawn(Event(), 100);
  sim.run();
  EXPECT_EQ(fast.trigger_time(), 100u);
  EXPECT_EQ(slow.trigger_time(), 200u);
}

}  // namespace
}  // namespace cr::sim
