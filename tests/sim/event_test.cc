#include "sim/event.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace cr::sim {
namespace {

TEST(Event, DefaultEventIsTriggered) {
  Event e;
  EXPECT_TRUE(e.has_triggered());
  EXPECT_EQ(e.trigger_time(), 0u);
  bool ran = false;
  e.subscribe([&](Time t) {
    ran = true;
    EXPECT_EQ(t, 0u);
  });
  EXPECT_TRUE(ran);
}

TEST(UserEvent, TriggerRunsWaitersAtNow) {
  Simulator sim;
  UserEvent ue(sim);
  Time seen = 0;
  bool ran = false;
  ue.event().subscribe([&](Time t) {
    ran = true;
    seen = t;
  });
  EXPECT_FALSE(ran);
  sim.schedule_at(42, [&] { ue.trigger(); });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(seen, 42u);
  EXPECT_TRUE(ue.event().has_triggered());
}

TEST(UserEvent, SubscribeAfterTriggerRunsImmediately) {
  Simulator sim;
  UserEvent ue(sim);
  ue.trigger();
  bool ran = false;
  ue.event().subscribe([&](Time) { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(Event, MergeWaitsForAll) {
  Simulator sim;
  UserEvent a(sim), b(sim), c(sim);
  Event m = Event::merge(sim, {a.event(), b.event(), c.event()});
  Time seen = 0;
  m.subscribe([&](Time t) { seen = t; });

  sim.schedule_at(10, [&] { b.trigger(); });
  sim.schedule_at(30, [&] { a.trigger(); });
  sim.schedule_at(20, [&] { c.trigger(); });
  sim.run();
  EXPECT_TRUE(m.has_triggered());
  EXPECT_EQ(seen, 30u);  // max of trigger times
}

TEST(Event, MergeOfTriggeredIsTriggered) {
  Simulator sim;
  Event m = Event::merge(sim, {Event(), Event()});
  EXPECT_TRUE(m.has_triggered());
}

TEST(Event, MergeOfEmptyListIsTriggered) {
  Simulator sim;
  EXPECT_TRUE(Event::merge(sim, {}).has_triggered());
}

TEST(Event, MergeMixedTriggeredAndPending) {
  Simulator sim;
  UserEvent a(sim);
  Event m = Event::merge(sim, {Event(), a.event()});
  EXPECT_FALSE(m.has_triggered());
  sim.schedule_at(5, [&] { a.trigger(); });
  sim.run();
  EXPECT_TRUE(m.has_triggered());
  EXPECT_EQ(m.trigger_time(), 5u);
}

}  // namespace
}  // namespace cr::sim
