// Figure 6: weak scaling for Stencil (PRK 2D star stencil, radius 2).
//
// Paper configuration: 40k^2 grid points per node, 12-core nodes; series
// Regent (with CR), Regent (w/o CR), MPI, MPI+OpenMP; MPI references run
// only at node counts with square process grids (even powers of two).
//
// The simulated problem is geometrically scaled down (11 tiles of 32^2
// per node, one tile per compute core) with per-point cost and per-halo-
// element width calibrated so that per-node iteration time and the
// communication/computation ratio match the paper's problem; throughput
// is reported in *paper-scale* points per second per node. See
// EXPERIMENTS.md for the calibration table.
#include <cstdio>

#include "apps/stencil/stencil.h"
#include "common.h"

namespace {

using namespace cr;
using apps::stencil::Config;

// Paper problem: 40000^2 points/node at ~1500e6 points/s/node.
constexpr double kPaperPointsPerNode = 40000.0 * 40000.0;
constexpr uint32_t kTilesPerNode = 11;  // one per compute core
constexpr uint64_t kTile = 32;

Config make_config(uint32_t nodes, uint64_t steps) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.tasks_per_node = kTilesPerNode;
  cfg.tile_x = kTile;
  cfg.tile_y = kTile;
  cfg.steps = steps;
  // Calibration: per-node per-iteration compute ~= 1.07 s (the paper's
  // single-node rate), spread over the scaled points; stencil + the two
  // increment launches weigh ~1.3x the base per-point cost.
  cfg.ns_per_point = 1.067e9 / static_cast<double>(kTile * kTile) / 1.15;
  // Halo width: the paper's node boundary is ~40000 x 2(radius) x 2 dirs
  // x 8 B ~= 2.6 MB/iter; our scaled ring moves ~5.5k elements per node.
  cfg.halo_virtual_bytes = 480;
  return cfg;
}

double run_engine(uint32_t nodes, bool spmd) {
  auto total = [&](uint64_t steps) {
    exec::CostModel cost = exec::CostModel::piz_daint();
    cost.track_dependences = false;
    // Master-side per-point-task cost without CR: dynamic dependence +
    // physical analysis + remote mapping, see EXPERIMENTS.md.
    cost.implicit_launch_ns = 2.0e6;
    Config cfg = make_config(nodes, steps);
    rt::Runtime rt(exec::runtime_config(nodes, 12, cost, false));
    bench::TraceScope trace(rt, spmd ? "stencil-cr" : "stencil-nocr", nodes);
    apps::stencil::App app = apps::stencil::build(rt, cfg);
    for (auto& t : app.program.tasks) t.kernel = nullptr;
    exec::PreparedRun run =
        spmd ? exec::prepare_spmd(rt, app.program, cost, {})
             : exec::prepare_implicit(rt, app.program, cost, {});
    return exec::to_seconds(run.run().makespan_ns);
  };
  return bench::steady_seconds(total, 2, 6);
}

double run_mpi(uint32_t nodes, bool openmp) {
  exec::CostModel cost = exec::CostModel::piz_daint();
  auto total = [&](uint64_t steps) {
    Config cfg = make_config(nodes, steps);
    return exec::to_seconds(
        apps::stencil::run_mpi_baseline(cfg, openmp, cost));
  };
  return bench::steady_seconds(total, 2, 6);
}

}  // namespace

int main(int argc, char** argv) {
  cr::bench::parse_args(argc, argv);
  std::vector<cr::bench::SeriesSpec> specs = {
      {"Regent (with CR)", [](uint32_t n) { return run_engine(n, true); }},
      {"Regent (w/o CR)", [](uint32_t n) { return run_engine(n, false); }},
      {"MPI", [](uint32_t n) { return run_mpi(n, false); },
       cr::bench::is_square_power},
      {"MPI+OpenMP", [](uint32_t n) { return run_mpi(n, true); },
       cr::bench::is_square_power},
  };
  auto report = cr::bench::sweep(
      "Figure 6: Stencil weak scaling (40k^2 points/node)",
      "10^6 points/s per node", 1e6, kPaperPointsPerNode, 1.0, specs);
  std::printf("%s\n", report.to_table().c_str());
  return 0;
}
