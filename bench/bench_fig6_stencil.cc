// Figure 6: weak scaling for Stencil (PRK 2D star stencil, radius 2).
//
// Paper configuration: 40k^2 grid points per node, 12-core nodes; series
// Regent (with CR), Regent (w/o CR), MPI, MPI+OpenMP; MPI references run
// only at node counts with square process grids (even powers of two).
//
// The simulated problem is geometrically scaled down (11 tiles of 32^2
// per node, one tile per compute core) with per-point cost and per-halo-
// element width calibrated so that per-node iteration time and the
// communication/computation ratio match the paper's problem; throughput
// is reported in *paper-scale* points per second per node. See
// EXPERIMENTS.md for the calibration table.
#include <chrono>
#include <cstdio>

#include "apps/stencil/stencil.h"
#include "common.h"
#include "mapper_matrix.h"

namespace {

using namespace cr;
using apps::stencil::Config;

// Paper problem: 40000^2 points/node at ~1500e6 points/s/node.
constexpr double kPaperPointsPerNode = 40000.0 * 40000.0;
constexpr uint32_t kTilesPerNode = 11;  // one per compute core
constexpr uint64_t kTile = 32;

Config make_config(uint32_t nodes, uint64_t steps) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.tasks_per_node = kTilesPerNode;
  cfg.tile_x = kTile;
  cfg.tile_y = kTile;
  cfg.steps = steps;
  // Calibration: per-node per-iteration compute ~= 1.07 s (the paper's
  // single-node rate), spread over the scaled points; stencil + the two
  // increment launches weigh ~1.3x the base per-point cost.
  cfg.ns_per_point = 1.067e9 / static_cast<double>(kTile * kTile) / 1.15;
  // Halo width: the paper's node boundary is ~40000 x 2(radius) x 2 dirs
  // x 8 B ~= 2.6 MB/iter; our scaled ring moves ~5.5k elements per node.
  cfg.halo_virtual_bytes = 480;
  return cfg;
}

double run_engine(bench::Bench& bench, uint32_t nodes, bool spmd) {
  auto total = [&](uint64_t steps) {
    exec::CostModel cost = exec::CostModel::piz_daint();
    cost.track_dependences = false;
    // Master-side per-point-task cost without CR: dynamic dependence +
    // physical analysis + remote mapping, see EXPERIMENTS.md.
    cost.implicit_launch_ns = 2.0e6;
    Config cfg = make_config(nodes, steps);
    rt::Runtime rt(exec::runtime_config(nodes, 12, cost, false));
    bench::TraceScope trace(bench, rt, spmd ? "stencil-cr" : "stencil-nocr",
                            nodes);
    apps::stencil::App app = apps::stencil::build(rt, cfg);
    for (auto& t : app.program.tasks) t.kernel = nullptr;
    exec::PreparedRun run = exec::prepare(
        rt, app.program,
        bench.config(spmd ? exec::ExecMode::kSpmd : exec::ExecMode::kImplicit,
                     cost));
    const exec::ExecutionResult res = run.run();
    bench.record(res);
    return exec::to_seconds(res.makespan_ns);
  };
  return bench::steady_seconds(total, 2, 6);
}

// --selftime dependence study: the implicit master's dynamic dependence
// analysis with the full tracker enabled, indexed vs exhaustive linear
// scan, plus trace capture & replay on top of the index. Virtual time
// is charged on pairs_scanned in every mode, so the makespans must be
// bit-identical; the index reduces how many exact conflict tests
// (pairs_tested) the host performs, and replay removes the steady-state
// remainder entirely. Returns false if any makespan diverged.
bool dependence_study(bench::Bench& bench,
                      exec::ScalingReport& analysis_report) {
  if (!bench.options().selftime) return true;
  const uint32_t nodes = cr::bench::node_counts().back();
  struct StudyRun {
    exec::ExecutionResult res;
    double host_seconds = 0;
  };
  auto run_one = [&](bool linear, bool replay, uint64_t steps) {
    exec::CostModel cost = exec::CostModel::piz_daint();
    cost.track_dependences = true;
    Config cfg = make_config(nodes, steps);
    rt::Runtime rt(exec::runtime_config(nodes, 12, cost, false));
    rt.deps().set_linear_scan(linear);
    apps::stencil::App app = apps::stencil::build(rt, cfg);
    for (auto& t : app.program.tasks) t.kernel = nullptr;
    exec::ExecConfig ecfg = bench.config(exec::ExecMode::kImplicit, cost);
    // The study compares replay against plain indexing, so each leg
    // pins the flag regardless of --replay on the command line.
    ecfg.trace_replay = replay;
    exec::PreparedRun run = exec::prepare(rt, app.program, ecfg);
    const auto begin = std::chrono::steady_clock::now();
    StudyRun out{run.run(), 0};
    out.host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count();
    return out;
  };
  std::fprintf(stderr, "  [dependence study] %u nodes...\n", nodes);
  StudyRun linear = run_one(true, false, 4);
  StudyRun indexed = run_one(false, false, 4);
  linear.res.analysis.host_seconds = linear.host_seconds;
  indexed.res.analysis.host_seconds = indexed.host_seconds;
  bool same = linear.res.makespan_ns == indexed.res.makespan_ns;
  const double drop =
      indexed.res.analysis.dep_pairs_tested > 0
          ? static_cast<double>(linear.res.analysis.dep_pairs_tested) /
                static_cast<double>(indexed.res.analysis.dep_pairs_tested)
          : 0;
  std::printf(
      "dependence study [implicit stencil, %u nodes, tracker on]\n"
      "  linear scan:\n%s  indexed:\n%s"
      "  pairs_tested reduction: %.1fx; makespans %s (%llu ns)\n\n",
      nodes, linear.res.analysis.to_text().c_str(),
      indexed.res.analysis.to_text().c_str(), drop,
      same ? "identical" : "DIFFER",
      static_cast<unsigned long long>(indexed.res.makespan_ns));
  for (const auto* r : {&linear, &indexed}) {
    exec::ScalingSeries s;
    s.name = r == &linear ? "dep-study linear" : "dep-study indexed";
    exec::ScalingPoint pt;
    pt.nodes = nodes;
    pt.seconds = exec::to_seconds(r->res.makespan_ns);
    pt.work_per_node = kPaperPointsPerNode;
    pt.iterations = 4;
    pt.has_analysis = true;
    pt.analysis = r->res.analysis;
    pt.analysis.host_seconds = r->host_seconds;
    s.points.push_back(pt);
    analysis_report.series.push_back(std::move(s));
  }

  // Replay study: indexed vs indexed+replay at two step counts. The
  // per-step difference isolates the steady state (capture warmup and
  // the init launches cancel out), which is where iterative apps spend
  // their time and where replay should drive pairs_tested to zero.
  const uint64_t lo = 6, hi = 22;
  std::fprintf(stderr, "  [replay study] %u nodes...\n", nodes);
  StudyRun idx_lo = run_one(false, false, lo);
  StudyRun idx_hi = run_one(false, false, hi);
  StudyRun rep_lo = run_one(false, true, lo);
  StudyRun rep_hi = run_one(false, true, hi);
  same = same && idx_lo.res.makespan_ns == rep_lo.res.makespan_ns &&
         idx_hi.res.makespan_ns == rep_hi.res.makespan_ns;
  auto steady = [&](const StudyRun& l, const StudyRun& h) {
    return static_cast<double>(h.res.analysis.dep_pairs_tested -
                               l.res.analysis.dep_pairs_tested) /
           static_cast<double>(hi - lo);
  };
  const double idx_rate = steady(idx_lo, idx_hi);
  const double rep_rate = steady(rep_lo, rep_hi);
  auto metric = [](const StudyRun& r, const char* key) {
    auto it = r.res.metrics.find(key);
    return it == r.res.metrics.end() ? 0.0 : it->second;
  };
  std::printf(
      "replay study [implicit stencil, %u nodes, steps %llu vs %llu]\n"
      "  steady-state pairs_tested/step: indexed %.0f, replay %.0f",
      nodes, static_cast<unsigned long long>(lo),
      static_cast<unsigned long long>(hi), idx_rate, rep_rate);
  if (rep_rate > 0) {
    std::printf(" (%.1fx reduction)\n", idx_rate / rep_rate);
  } else {
    std::printf(" (fully replayed)\n");
  }
  std::printf(
      "  host seconds (%llu steps): indexed %.3f, replay %.3f\n"
      "  replay counters: captures=%.0f replays=%.0f invalidations=%.0f "
      "pairs_skipped=%.0f\n"
      "  makespans %s\n\n",
      static_cast<unsigned long long>(hi), idx_hi.host_seconds,
      rep_hi.host_seconds, metric(rep_hi, "exec.replay.captures"),
      metric(rep_hi, "exec.replay.replays"),
      metric(rep_hi, "exec.replay.invalidations"),
      metric(rep_hi, "exec.replay.pairs_skipped"),
      same ? "identical" : "DIFFER");
  for (const auto* r : {&idx_hi, &rep_hi}) {
    exec::ScalingSeries s;
    s.name = r == &idx_hi ? "replay-study indexed" : "replay-study replay";
    exec::ScalingPoint pt;
    pt.nodes = nodes;
    pt.seconds = exec::to_seconds(r->res.makespan_ns);
    pt.work_per_node = kPaperPointsPerNode;
    pt.iterations = hi;
    pt.has_analysis = true;
    pt.analysis = r->res.analysis;
    pt.analysis.host_seconds = r->host_seconds;
    s.points.push_back(pt);
    analysis_report.series.push_back(std::move(s));
  }
  if (!same) {
    std::fprintf(stderr,
                 "FAIL: dependence/replay study makespans diverged\n");
  }
  return same;
}

// --mapper-matrix: the heterogeneous scenario with the cores
// oversubscribed (4 tiles per compute core) so placement quality shows
// up as queueing rather than vanishing behind idle cores.
int run_matrix(bench::Bench& bench) {
  return bench::run_mapper_matrix(
      bench, /*nodes=*/8, [&](const bench::MatrixCell& cell) {
        exec::CostModel cost = exec::CostModel::piz_daint();
        cost.track_dependences = false;
        Config cfg = make_config(cell.nodes, /*steps=*/3);
        cfg.tasks_per_node = 4 * kTilesPerNode;
        rt::RuntimeConfig rc = exec::runtime_config(cell.nodes, 12, cost,
                                                    /*real_data=*/false);
        cell.apply(rc);
        rt::Runtime rt(rc);
        apps::stencil::App app = apps::stencil::build(rt, cfg);
        for (auto& t : app.program.tasks) t.kernel = nullptr;
        exec::ExecConfig ecfg = bench.config(exec::ExecMode::kSpmd, cost);
        ecfg.mapper = cell.mapper;
        ecfg.workers = cell.workers;
        ecfg.check = true;
        exec::PreparedRun run = exec::prepare(rt, app.program, ecfg);
        return run.run();
      });
}

double run_mpi(uint32_t nodes, bool openmp) {
  exec::CostModel cost = exec::CostModel::piz_daint();
  auto total = [&](uint64_t steps) {
    Config cfg = make_config(nodes, steps);
    return exec::to_seconds(
        apps::stencil::run_mpi_baseline(cfg, openmp, cost));
  };
  return bench::steady_seconds(total, 2, 6);
}

}  // namespace

int main(int argc, char** argv) {
  cr::bench::Bench bench("stencil", argc, argv);
  if (bench.options().mapper_matrix) return run_matrix(bench);
  std::vector<cr::bench::SeriesSpec> specs = {
      {"Regent (with CR)",
       [&](uint32_t n) { return run_engine(bench, n, true); }},
      {"Regent (w/o CR)",
       [&](uint32_t n) { return run_engine(bench, n, false); }},
      {"MPI", [](uint32_t n) { return run_mpi(n, false); },
       cr::bench::is_square_power},
      {"MPI+OpenMP", [](uint32_t n) { return run_mpi(n, true); },
       cr::bench::is_square_power},
  };
  auto report = bench.sweep(
      "Figure 6: Stencil weak scaling (40k^2 points/node)",
      "10^6 points/s per node", 1e6, kPaperPointsPerNode, 1.0, specs);
  std::printf("%s\n", report.to_table().c_str());
  const bool study_ok = dependence_study(bench, report);
  bench.write_analysis_json(report);
  bench.write_metrics_json(report);
  const int rc = bench.finish();
  return rc != 0 ? rc : (study_ok ? 0 : 1);
}
