// Figure 9: weak scaling for Circuit (sparse circuit simulation on a
// random graph, 100k edges + 25k vertices per node). Series: Regent
// (with CR) and Regent (w/o CR) — the paper has no MPI reference for
// this application.
#include <cstdio>

#include "apps/circuit/circuit.h"
#include "common.h"
#include "mapper_matrix.h"

namespace {

using namespace cr;
using apps::circuit::Config;

constexpr double kPaperNodesPerMachineNode = 25000.0;

Config make_config(uint32_t nodes, uint64_t steps) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 11;  // one piece per compute core
  cfg.nodes_per_piece = 128;
  cfg.wires_per_piece = 512;
  cfg.pct_cross = 0.05;
  cfg.window = 2;
  cfg.steps = steps;
  // Paper single-node rate ~80e3 graph nodes/s => ~0.31 s per iteration
  // per machine node; the CNC + DC wire loops dominate.
  cfg.ns_per_wire =
      0.31e9 / (1.6 * static_cast<double>(cfg.wires_per_piece));
  cfg.ns_per_node = 0.2 * cfg.ns_per_wire;
  // Ghost voltage exchange: a few hundred shared nodes per piece in the
  // paper's graph; scale the per-element width to a ~1 MB/node/iter
  // exchange.
  cfg.voltage_virtual_bytes = 2048;
  return cfg;
}

double run_engine(bench::Bench& bench, uint32_t nodes, bool spmd) {
  auto total = [&](uint64_t steps) {
    exec::CostModel cost = exec::CostModel::piz_daint();
    cost.track_dependences = false;
    cost.implicit_launch_ns = 300000;
    Config cfg = make_config(nodes, steps);
    rt::Runtime rt(exec::runtime_config(nodes, 12, cost, false));
    bench::TraceScope trace(bench, rt, spmd ? "circuit-cr" : "circuit-nocr", nodes);
    apps::circuit::App app = apps::circuit::build(rt, cfg);
    for (auto& t : app.program.tasks) t.kernel = nullptr;
    exec::PreparedRun run = exec::prepare(
        rt, app.program,
        bench.config(spmd ? exec::ExecMode::kSpmd : exec::ExecMode::kImplicit,
                     cost));
    const exec::ExecutionResult res = run.run();
    bench.record(res);
    return exec::to_seconds(res.makespan_ns);
  };
  return cr::bench::steady_seconds(total, 2, 5);
}

// --mapper-matrix: the heterogeneous scenario with the cores
// oversubscribed (3 pieces per compute core).
int run_matrix(bench::Bench& bench) {
  return bench::run_mapper_matrix(
      bench, /*nodes=*/8, [&](const bench::MatrixCell& cell) {
        exec::CostModel cost = exec::CostModel::piz_daint();
        cost.track_dependences = false;
        Config cfg = make_config(cell.nodes, /*steps=*/3);
        cfg.pieces_per_node = 33;
        rt::RuntimeConfig rc = exec::runtime_config(cell.nodes, 12, cost,
                                                    /*real_data=*/false);
        cell.apply(rc);
        rt::Runtime rt(rc);
        apps::circuit::App app = apps::circuit::build(rt, cfg);
        for (auto& t : app.program.tasks) t.kernel = nullptr;
        exec::ExecConfig ecfg = bench.config(exec::ExecMode::kSpmd, cost);
        ecfg.mapper = cell.mapper;
        ecfg.workers = cell.workers;
        ecfg.check = true;
        exec::PreparedRun run = exec::prepare(rt, app.program, ecfg);
        return run.run();
      });
}

}  // namespace

int main(int argc, char** argv) {
  cr::bench::Bench bench("circuit", argc, argv);
  if (bench.options().mapper_matrix) return run_matrix(bench);
  std::vector<cr::bench::SeriesSpec> specs = {
      {"Regent (with CR)", [&](uint32_t n) { return run_engine(bench, n, true); }},
      {"Regent (w/o CR)", [&](uint32_t n) { return run_engine(bench, n, false); }},
  };
  auto report = bench.sweep(
      "Figure 9: Circuit weak scaling (100k edges + 25k vertices/node)",
      "10^3 nodes/s per node", 1e3, kPaperNodesPerMachineNode, 1.0, specs);
  std::printf("%s\n", report.to_table().c_str());
  bench.write_analysis_json(report);
  bench.write_metrics_json(report);
  return bench.finish();
}
