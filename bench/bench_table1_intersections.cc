// Table 1: running times of the dynamic region intersections (paper
// §3.3/§5.5) for each application at 64 and 1024 nodes.
//
// These are REAL wall-clock measurements of this library's interval-tree
// / BVH shallow pass and of the exact per-pair element sets, on the
// actual partitions each application builds at those node counts —
// the same quantities the paper's Table 1 reports. "Shallow" runs on one
// node; "complete" is divided by the node count (it runs in parallel,
// one shard per node, paper §3.3).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/circuit/circuit.h"
#include "common.h"
#include "apps/miniaero/miniaero.h"
#include "apps/pennant/pennant.h"
#include "apps/stencil/stencil.h"
#include "exec/implicit_exec.h"
#include "rt/intersect.h"

namespace {

using namespace cr;

struct Row {
  const char* app;
  uint32_t nodes;
  double shallow_ms;
  double complete_ms;  // per node (parallel phase)
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Measure the two intersection phases for one (src, dst) partition pair.
Row measure(const char* app, uint32_t nodes, const rt::RegionForest& forest,
            rt::PartitionId src, rt::PartitionId dst) {
  auto t0 = std::chrono::steady_clock::now();
  auto pairs = rt::shallow_intersections(forest, src, dst);
  const double shallow = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  uint64_t elems = 0;
  for (const auto& pr : pairs) {
    auto set = rt::complete_intersection(
        forest, forest.subregion(src, pr.src_color),
        forest.subregion(dst, pr.dst_color));
    elems += set.size();
  }
  const double complete = ms_since(t0) / nodes;
  std::fprintf(stderr, "  %s @%u: %zu pairs, %llu shared elements\n", app,
               nodes, pairs.size(), (unsigned long long)elems);
  return Row{app, nodes, shallow, complete};
}

Row run_circuit(uint32_t nodes) {
  exec::CostModel cost;
  rt::Runtime rt(exec::runtime_config(1, 2, cost, false));
  apps::circuit::Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 11;
  cfg.nodes_per_piece = 128;
  cfg.wires_per_piece = 512;
  cfg.pct_cross = 0.05;
  auto app = apps::circuit::build(rt, cfg);
  return measure("Circuit", nodes, rt.forest(), app.p_shr, app.p_gst);
}

Row run_miniaero(uint32_t nodes) {
  exec::CostModel cost;
  rt::Runtime rt(exec::runtime_config(1, 2, cost, false));
  apps::miniaero::Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 11;
  cfg.cells_x_per_piece = 4;
  cfg.cells_y = 8;
  cfg.cells_z = 8;
  auto app = apps::miniaero::build(rt, cfg);
  return measure("MiniAero", nodes, rt.forest(), app.p_bnd, app.p_halo);
}

Row run_pennant(uint32_t nodes) {
  exec::CostModel cost;
  rt::Runtime rt(exec::runtime_config(1, 2, cost, false));
  apps::pennant::Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 11;
  cfg.zones_x_per_piece = 24;
  cfg.zones_y = 24;
  auto app = apps::pennant::build(rt, cfg);
  return measure("PENNANT", nodes, rt.forest(), app.p_shr, app.p_gst);
}

Row run_stencil(uint32_t nodes) {
  exec::CostModel cost;
  rt::Runtime rt(exec::runtime_config(1, 2, cost, false));
  apps::stencil::Config cfg;
  cfg.nodes = nodes;
  cfg.tasks_per_node = 11;
  cfg.tile_x = 32;
  cfg.tile_y = 32;
  auto app = apps::stencil::build(rt, cfg);
  return measure("Stencil", nodes, rt.forest(), app.p_bnd, app.p_halo);
}

}  // namespace

int main(int argc, char** argv) {
  // No engine runs here; an empty FlagSet still validates the command
  // line and answers with generated usage.
  cr::bench::FlagSet flags;
  if (!flags.parse(argc, argv)) return 2;
  uint32_t big = 1024;
  if (const char* env = std::getenv("CR_BENCH_MAX_NODES")) {
    const uint32_t cap = static_cast<uint32_t>(std::atoi(env));
    if (cap < big) big = cap;
  }
  std::vector<Row> rows;
  for (uint32_t nodes : {64u, big}) {
    if (nodes == 0) continue;
    rows.push_back(run_circuit(nodes));
    rows.push_back(run_miniaero(nodes));
    rows.push_back(run_pennant(nodes));
    rows.push_back(run_stencil(nodes));
  }
  std::printf(
      "Table 1: region intersection running times (measured wall clock)\n");
  std::printf("%-12s %-8s %-14s %-14s\n", "Application", "Nodes",
              "Shallow (ms)", "Complete (ms)");
  for (const Row& r : rows) {
    std::printf("%-12s %-8u %-14.3f %-14.4f\n", r.app, r.nodes,
                r.shallow_ms, r.complete_ms);
  }
  return 0;
}
