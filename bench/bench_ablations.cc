// Ablations of the design choices the paper calls out (DESIGN.md A1-A5):
//   A1 copy intersection optimization (§3.3): without it, every copy
//      issues all |I|^2 subregion pairs;
//   A2 point-to-point synchronization vs plain barriers (§3.4);
//   A3 hierarchical private/ghost region trees (§4.5): flat aliasing
//      emits provably-empty copies and extra intersection tables;
//   A4 copy placement, PRE + LICM (§3.2), on a multi-writer program;
//   A5 mapping granularity (§4.2): tasks per node.
#include <cstdio>

#include "apps/circuit/circuit.h"
#include "apps/pennant/pennant.h"
#include "apps/stencil/stencil.h"
#include "common.h"
#include "ir/builder.h"
#include "rt/partition.h"

namespace {

using namespace cr;

exec::CostModel bench_cost() {
  exec::CostModel cost = exec::CostModel::piz_daint();
  cost.track_dependences = false;
  return cost;
}

double run_circuit_spmd(bench::Bench& bench, uint32_t nodes,
                        passes::PipelineOptions opt,
                        exec::ExecutionResult* out = nullptr,
                        passes::PipelineReport* report = nullptr) {
  exec::CostModel cost = bench_cost();
  rt::Runtime rt(exec::runtime_config(nodes, 12, cost, false));
  apps::circuit::Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 4;
  cfg.nodes_per_piece = 96;
  cfg.wires_per_piece = 384;
  cfg.steps = 4;
  cfg.ns_per_wire = 50000;
  cfg.ns_per_node = 10000;
  auto app = apps::circuit::build(rt, cfg);
  for (auto& t : app.program.tasks) t.kernel = nullptr;
  exec::PreparedRun run = exec::prepare(
      rt, app.program, bench.config(exec::ExecMode::kSpmd, cost, opt));
  exec::ExecutionResult res = run.run();
  bench.record(res);
  if (out != nullptr) *out = res;
  if (report != nullptr) *report = run.report;
  return exec::to_seconds(res.makespan_ns);
}

void ablation_intersections(bench::Bench& bench) {
  std::printf(
      "\nA1: copy intersection optimization (§3.3) — Circuit, SPMD\n");
  std::printf("%-8s %-16s %-16s %-18s %-18s\n", "nodes", "with (s)",
              "without (s)", "copies+skips with", "copies+skips w/o");
  for (uint32_t nodes : {16u, 64u, 128u}) {
    passes::PipelineOptions on, off;
    off.intersection_opt = false;
    exec::ExecutionResult r_on, r_off;
    const double t_on = run_circuit_spmd(bench, nodes, on, &r_on);
    const double t_off = run_circuit_spmd(bench, nodes, off, &r_off);
    std::printf("%-8u %-16.4f %-16.4f %-18llu %-18llu\n", nodes, t_on,
                t_off,
                (unsigned long long)(r_on.copies_issued + r_on.copies_skipped),
                (unsigned long long)(r_off.copies_issued +
                                     r_off.copies_skipped));
  }
}

double run_pennant_spmd(bench::Bench& bench, uint32_t nodes,
                        passes::PipelineOptions opt) {
  exec::CostModel cost = bench_cost();
  rt::Runtime rt(exec::runtime_config(nodes, 12, cost, false));
  apps::pennant::Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 4;
  cfg.zones_x_per_piece = 16;
  cfg.zones_y = 16;
  cfg.steps = 6;
  cfg.ns_per_zone = 100000;
  cfg.ns_per_point = 30000;
  auto app = apps::pennant::build(rt, cfg);
  for (auto& t : app.program.tasks) t.kernel = nullptr;
  exec::PreparedRun run = exec::prepare(
      rt, app.program, bench.config(exec::ExecMode::kSpmd, cost, opt));
  const exec::ExecutionResult res = run.run();
  bench.record(res);
  return exec::to_seconds(res.makespan_ns);
}

void ablation_sync(bench::Bench& bench) {
  std::printf("\nA2: point-to-point sync vs barriers (§3.4) — PENNANT\n");
  std::printf("%-8s %-16s %-16s\n", "nodes", "p2p (s)", "barriers (s)");
  for (uint32_t nodes : {4u, 16u, 64u}) {
    passes::PipelineOptions p2p, barrier;
    barrier.p2p_sync = false;
    std::printf("%-8u %-16.4f %-16.4f\n", nodes,
                run_pennant_spmd(bench, nodes, p2p),
                run_pennant_spmd(bench, nodes, barrier));
  }
}

void ablation_hierarchy(bench::Bench& bench) {
  std::printf(
      "\nA3: hierarchical region trees (§4.5) — Circuit, SPMD at 32 "
      "nodes\n");
  for (bool hier : {true, false}) {
    passes::PipelineOptions opt;
    opt.hierarchical = hier;
    exec::ExecutionResult res;
    passes::PipelineReport report;
    const double t = run_circuit_spmd(bench, 32, opt, &res, &report);
    std::printf(
        "  %-12s makespan %.4f s; compiler emitted %zu inner copies and "
        "%zu intersection tables (flat cannot prove the private "
        "partitions disjoint)\n",
        hier ? "hierarchical" : "flat", t, report.inner_copies,
        report.intersection_tables);
  }
}

// A4 uses a synthetic two-writer loop where naive data replication emits
// a provably dead copy per iteration.
double run_placement_program(bench::Bench& bench, bool placement,
                             exec::ExecutionResult* out = nullptr,
                             passes::PipelineReport* report = nullptr) {
  exec::CostModel cost = bench_cost();
  rt::Runtime rt(exec::runtime_config(16, 12, cost, false));
  auto& forest = rt.forest();
  auto fsa = std::make_shared<rt::FieldSpace>();
  rt::FieldId f = fsa->add_field("v", rt::FieldType::kF64, 4096);
  auto fsb = std::make_shared<rt::FieldSpace>();
  rt::FieldId g = fsb->add_field("w");
  rt::RegionId a = forest.create_region(rt::IndexSpace::dense(16 * 256),
                                        fsa, "A");
  rt::RegionId bR = forest.create_region(rt::IndexSpace::dense(16 * 256),
                                         fsb, "B");
  rt::PartitionId pa = rt::partition_equal(forest, a, 16 * 11, "pa");
  rt::PartitionId pb = rt::partition_equal(forest, bR, 16 * 11, "pb");
  rt::PartitionId qa = rt::partition_image(
      forest, a, pa,
      [](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back(x);
        out.push_back((x + 7) % (16 * 256));
      },
      "qa");
  ir::ProgramBuilder b(forest, "placement");
  using P = rt::Privilege;
  ir::TaskId tw = b.task("W", {{P::kReadWrite, rt::ReduceOp::kSum, {f}}},
                         1000, 50000, nullptr);
  ir::TaskId tr = b.task("R",
                         {{P::kReadWrite, rt::ReduceOp::kSum, {g}},
                          {P::kReadOnly, rt::ReduceOp::kSum, {f}}},
                         1000, 50000, nullptr);
  b.begin_for_time(8);
  // Two sequential writers: the copy after the first is dead.
  b.index_launch(tw, 16 * 11, {ir::ProgramBuilder::arg(pa, P::kReadWrite,
                                                       {f})});
  b.index_launch(tw, 16 * 11, {ir::ProgramBuilder::arg(pa, P::kReadWrite,
                                                       {f})});
  b.index_launch(tr, 16 * 11,
                 {ir::ProgramBuilder::arg(pb, P::kReadWrite, {g}),
                  ir::ProgramBuilder::arg(qa, P::kReadOnly, {f})});
  b.end_for_time();
  ir::Program program = b.finish();
  passes::PipelineOptions opt;
  opt.copy_placement = placement;
  exec::PreparedRun run =
      exec::prepare(rt, program, bench.config(exec::ExecMode::kSpmd, cost, opt));
  exec::ExecutionResult res = run.run();
  bench.record(res);
  if (out != nullptr) *out = res;
  if (report != nullptr) *report = run.report;
  return exec::to_seconds(res.makespan_ns);
}

void ablation_placement(bench::Bench& bench) {
  std::printf(
      "\nA4: copy placement PRE+LICM (§3.2) — synthetic two-writer loop, "
      "16 nodes\n");
  std::printf("%-20s %-14s %-16s %-14s\n", "", "seconds", "copies issued",
              "removed by PRE");
  for (bool placement : {true, false}) {
    exec::ExecutionResult res;
    passes::PipelineReport report;
    const double t = run_placement_program(bench, placement, &res, &report);
    std::printf("%-20s %-14.4f %-16llu %-14zu\n",
                placement ? "with placement" : "without placement", t,
                (unsigned long long)res.copies_issued,
                report.copies_removed);
  }
}

void ablation_mapping(bench::Bench& bench) {
  std::printf(
      "\nA5: mapping granularity (§4.2) — Stencil at 64 nodes, tasks per "
      "node\n");
  std::printf("%-16s %-16s\n", "tasks/node", "seconds/iter");
  for (uint32_t tpn : {1u, 4u, 11u, 22u, 44u}) {
    auto total = [&](uint64_t steps) {
      exec::CostModel cost = bench_cost();
      rt::Runtime rt(exec::runtime_config(64, 12, cost, false));
      apps::stencil::Config cfg;
      cfg.nodes = 64;
      cfg.tasks_per_node = tpn;
      cfg.tile_x = 16;
      cfg.tile_y = 16;
      cfg.steps = steps;
      cfg.ns_per_point = 1.07e9 / (16 * 16) / 1.3 / tpn;
      auto app = apps::stencil::build(rt, cfg);
      for (auto& t : app.program.tasks) t.kernel = nullptr;
      exec::PreparedRun run = exec::prepare(
          rt, app.program, bench.config(exec::ExecMode::kSpmd, cost));
      const exec::ExecutionResult res = run.run();
      bench.record(res);
      return exec::to_seconds(res.makespan_ns);
    };
    std::printf("%-16u %-16.4f\n", tpn,
                cr::bench::steady_seconds(total, 2, 6));
  }
}

}  // namespace

int main(int argc, char** argv) {
  cr::bench::Bench bench("ablations", argc, argv);
  ablation_intersections(bench);
  ablation_sync(bench);
  ablation_hierarchy(bench);
  ablation_placement(bench);
  ablation_mapping(bench);
  return bench.finish();
}
