// The --mapper-matrix mode: run one fixed heterogeneous/faulty-node
// scenario once per placement policy and emit one JSON artifact per
// (app, mapper) cell for bench_diff gating.
//
// The scenario deliberately oversubscribes the compute cores (the bench
// configs raise tasks/node well above cores/node) so placement quality
// shows up as queueing: node 0 runs at half speed, node 1 suffers an
// injected 2x slowdown window early in the run, and active-message
// handlers jitter by up to 200 ns. All three knobs only ADD delay, so
// the windowed backend's conservative lookahead stays sound and every
// cell replays bit-identically at any --workers.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "rt/mapper.h"
#include "rt/runtime.h"
#include "sim/machine.h"

namespace cr::bench {

// One cell of the matrix: which policy to run and the machine scenario
// it runs under. apply() folds the scenario into a RuntimeConfig built
// by the app's usual exec::runtime_config() call.
struct MatrixCell {
  uint32_t nodes = 0;
  rt::MapperOptions mapper;
  uint32_t workers = 0;
  std::vector<double> node_speed;
  std::vector<sim::MachineConfig::NodeSlowdown> slowdowns;
  sim::Time am_jitter_ns = 0;

  void apply(rt::RuntimeConfig& rc) const {
    rc.machine.node_speed = node_speed;
    rc.machine.slowdowns = slowdowns;
    rc.network.am_jitter_ns = am_jitter_ns;
    rc.network.jitter_seed = 1;  // fixed: same scenario for every mapper
  }
};

// Runs the app once for a cell (with the race checker on) and returns
// the full result; the harness compares worker counts and writes the
// artifact.
using MatrixRunFn =
    std::function<exec::ExecutionResult(const MatrixCell& cell)>;

namespace detail {

// Window-shaped gauges recorded only by the windowed backend (the
// sequential --workers=0 loop has no windows); strip them before
// comparing worker counts, mirroring the equivalence tests.
inline std::map<std::string, double> without_window_shape(
    std::map<std::string, double> m) {
  m.erase("sim.queue.max_depth");
  m.erase("sim.windows");
  return m;
}

inline void write_matrix_json(const std::string& path,
                              const std::string& app,
                              const std::string& mapper, uint32_t nodes,
                              const exec::ExecutionResult& res) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"app\": \"%s\",\n  \"mapper\": \"%s\",\n"
               "  \"series\": [\n    {\"name\": \"mapper-matrix\", "
               "\"points\": [\n",
               app.c_str(), mapper.c_str());
  std::fprintf(f, "      {\"nodes\": %u, \"virtual_seconds\": %.9g, "
                  "\"makespan_ns\": ",
               nodes, exec::to_seconds(res.makespan_ns));
  write_json_number(f, static_cast<double>(res.makespan_ns));
  std::fprintf(f, ",\n       \"metrics\": {");
  bool first = true;
  for (const auto& [key, value] : res.metrics) {
    std::fprintf(f, "%s\"%s\": ", first ? "" : ", ", key.c_str());
    write_json_number(f, value);
    first = false;
  }
  std::fprintf(f, "},\n       \"attribution\": []}\n    ]}\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "  matrix cell: %s\n", path.c_str());
}

}  // namespace detail

// The fixed scenario for `nodes` machine nodes: node 0 at half speed,
// a 2x slowdown window on node 1 over virtual seconds [2, 6), 200 ns
// of AM-handler jitter.
inline MatrixCell matrix_scenario(uint32_t nodes) {
  MatrixCell cell;
  cell.nodes = nodes;
  cell.node_speed.assign(nodes, 1.0);
  cell.node_speed[0] = 0.5;
  if (nodes > 1) {
    cell.slowdowns.push_back({/*node=*/1, /*begin=*/2'000'000'000,
                              /*end=*/6'000'000'000, /*factor=*/2.0});
  }
  cell.am_jitter_ns = 200;
  return cell;
}

// Runs the (mapper x scenario) matrix: every cell executes under the
// sequential reference loop AND the windowed backend (4 workers) and
// must agree bit-for-bit on the makespan and the window-shape-stripped
// metrics; the race checker must come back clean. Writes
// BENCH_mapper.<app>.<policy>.json per cell and hard-fails (nonzero)
// if the balanced policy does not beat the adversarial one on makespan.
inline int run_mapper_matrix(Bench& bench, uint32_t nodes,
                             const MatrixRunFn& run) {
  const std::vector<std::string> policies = {"default", "balanced",
                                             "adversarial"};
  std::map<std::string, sim::Time> makespans;
  bool ok = true;
  for (const std::string& policy : policies) {
    MatrixCell cell = matrix_scenario(nodes);
    cell.mapper.name = policy;
    cell.mapper.seed = static_cast<uint64_t>(bench.options().mapper_seed);
    std::fprintf(stderr, "  [matrix] %s, %u nodes, workers=0...\n",
                 policy.c_str(), nodes);
    cell.workers = 0;
    const exec::ExecutionResult seq = run(cell);
    std::fprintf(stderr, "  [matrix] %s, %u nodes, workers=4...\n",
                 policy.c_str(), nodes);
    cell.workers = 4;
    const exec::ExecutionResult par = run(cell);
    if (par.makespan_ns != seq.makespan_ns ||
        detail::without_window_shape(par.metrics) !=
            detail::without_window_shape(seq.metrics)) {
      std::fprintf(stderr,
                   "FAIL: %s cell diverges across worker counts "
                   "(%llu vs %llu ns)\n",
                   policy.c_str(),
                   static_cast<unsigned long long>(seq.makespan_ns),
                   static_cast<unsigned long long>(par.makespan_ns));
      ok = false;
    }
    for (const exec::ExecutionResult* r : {&seq, &par}) {
      if (r->check == nullptr || !r->check->ok()) {
        std::fprintf(stderr, "FAIL: %s cell raced (or checker off)\n",
                     policy.c_str());
        ok = false;
      }
    }
    makespans[policy] = seq.makespan_ns;
    detail::write_matrix_json(
        "BENCH_mapper." + bench.app() + "." + policy + ".json", bench.app(),
        policy, nodes, seq);
  }
  std::printf("mapper matrix [%s, %u nodes]\n", bench.app().c_str(), nodes);
  for (const std::string& policy : policies) {
    std::printf("  %-12s %14llu ns\n", policy.c_str(),
                static_cast<unsigned long long>(makespans[policy]));
  }
  // Expected ordering on makespan: balanced <= default <= adversarial.
  // Only balanced < adversarial is load-bearing (the gate); the softer
  // comparisons warn, since a scenario tweak can legitimately flip them.
  if (makespans["balanced"] >= makespans["adversarial"]) {
    std::fprintf(stderr,
                 "FAIL: balanced (%llu) did not beat adversarial (%llu)\n",
                 (unsigned long long)makespans["balanced"],
                 (unsigned long long)makespans["adversarial"]);
    ok = false;
  }
  if (makespans["balanced"] > makespans["default"]) {
    std::fprintf(stderr, "warning: balanced is slower than default "
                         "in this scenario\n");
  }
  if (makespans["default"] > makespans["adversarial"]) {
    std::fprintf(stderr, "warning: default is slower than adversarial "
                         "in this scenario\n");
  }
  return ok ? 0 : 1;
}

}  // namespace cr::bench
