// Microbenchmarks (google-benchmark) for the runtime substrates: interval
// set algebra, shallow-intersection structures, the DES event loop, and
// the dynamic dependence analysis. These are the real in-process costs
// behind the virtual-time constants documented in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "common.h"

#include "rt/dependence.h"
#include "rt/intersect.h"
#include "rt/partition.h"
#include "sim/processor.h"
#include "sim/simulator.h"
#include "support/interval_set.h"
#include "support/rng.h"

namespace {

using namespace cr;

support::IntervalSet random_set(support::Rng& rng, uint64_t universe,
                                int chunks) {
  support::IntervalSet s;
  for (int i = 0; i < chunks; ++i) {
    const uint64_t lo = rng.next_below(universe);
    s.add(lo, lo + 1 + rng.next_below(universe / chunks + 1));
  }
  return s;
}

void BM_IntervalSetIntersect(benchmark::State& state) {
  support::Rng rng(1);
  const auto a = random_set(rng, 1u << 20, static_cast<int>(state.range(0)));
  const auto b = random_set(rng, 1u << 20, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.set_intersect(b));
  }
  state.SetItemsProcessed(state.iterations() *
                          (a.interval_count() + b.interval_count()));
}
BENCHMARK(BM_IntervalSetIntersect)->Arg(16)->Arg(256)->Arg(4096);

void BM_IntervalSetUnion(benchmark::State& state) {
  support::Rng rng(2);
  const auto a = random_set(rng, 1u << 20, static_cast<int>(state.range(0)));
  const auto b = random_set(rng, 1u << 20, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.set_union(b));
  }
}
BENCHMARK(BM_IntervalSetUnion)->Arg(16)->Arg(256)->Arg(4096);

void BM_IntervalTreeQuery(benchmark::State& state) {
  support::Rng rng(3);
  std::vector<rt::IntervalTree::Entry> entries;
  for (int64_t i = 0; i < state.range(0); ++i) {
    const uint64_t lo = rng.next_below(1u << 20);
    entries.push_back({{lo, lo + 64}, static_cast<uint64_t>(i)});
  }
  rt::IntervalTree tree(std::move(entries));
  std::vector<uint64_t> hits;
  for (auto _ : state) {
    hits.clear();
    const uint64_t lo = rng.next_below(1u << 20);
    tree.query({lo, lo + 256}, hits);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_IntervalTreeQuery)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_ShallowIntersectionsHalo(benchmark::State& state) {
  // 1D halo pattern: O(N) pairs out of N^2 candidates.
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  rt::RegionForest forest;
  auto fs = std::make_shared<rt::FieldSpace>();
  fs->add_field("v");
  rt::RegionId r = forest.create_region(rt::IndexSpace::dense(n * 64), fs);
  rt::PartitionId p = rt::partition_equal(forest, r, n);
  rt::PartitionId q = rt::partition_image(
      forest, r, p, [n](uint64_t x, std::vector<uint64_t>& out) {
        out.push_back(x);
        if (x >= 8) out.push_back(x - 8);
        if (x + 8 < n * 64) out.push_back(x + 8);
      });
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::shallow_intersections(forest, p, q));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShallowIntersectionsHalo)->Arg(64)->Arg(1024)->Arg(8192);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Processor proc(sim, {0, 0});
    sim::Event prev;
    for (int i = 0; i < 10000; ++i) {
      prev = proc.spawn(prev, 100);
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_DependenceAnalysis(benchmark::State& state) {
  rt::RegionForest forest;
  auto fs = std::make_shared<rt::FieldSpace>();
  const rt::FieldId f = fs->add_field("v");
  rt::RegionId r = forest.create_region(rt::IndexSpace::dense(1u << 16), fs);
  rt::PartitionId p =
      rt::partition_equal(forest, r, static_cast<uint64_t>(state.range(0)));
  sim::Simulator sim;
  uint64_t op = 0;
  for (auto _ : state) {
    rt::DependenceTracker deps(forest);
    for (uint64_t c = 0; c < forest.partition(p).subregions.size(); ++c) {
      sim::UserEvent e(sim);
      rt::Requirement req{forest.subregion(p, c),
                          rt::Privilege::kReadWrite,
                          rt::ReduceOp::kSum,
                          {f}};
      benchmark::DoNotOptimize(deps.record(++op, req, e.event()));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DependenceAnalysis)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  cr::bench::FlagSet flags;            // rejects leftovers with usage
  if (!flags.parse(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
