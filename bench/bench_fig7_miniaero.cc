// Figure 7: weak scaling for MiniAero (3D unstructured-mesh explicit
// Navier-Stokes, 512k cells per node). Series: Regent (with CR), Regent
// (w/o CR), MPI+Kokkos rank/core, MPI+Kokkos rank/node.
//
// §5.2 effects reproduced: the Regent version out-performs the
// references on a single node (the reference pays a ~1.3x data-layout
// penalty per cell); the rank-per-node configuration starts ahead of
// rank-per-core but falls to its level as node count grows (its
// single-threaded MPI progress serializes the stage exchanges, while
// rank/core overlaps twelve flows).
#include <cstdio>

#include "apps/miniaero/miniaero.h"
#include "common.h"

namespace {

using namespace cr;
using apps::miniaero::Config;

constexpr double kPaperCellsPerNode = 512.0 * 1024.0;
const apps::Noise kNoiseCore{1.0 / 128.0, 0.25};
const apps::Noise kNoiseNode{1.0 / 128.0, 0.35};

Config make_config(uint32_t nodes, uint64_t steps) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 11;
  cfg.cells_x_per_piece = 4;
  cfg.cells_y = 8;
  cfg.cells_z = 8;
  cfg.steps = steps;
  // Paper single-node Regent rate ~1.5e6 cells/s => ~0.34 s per step
  // (4 RK stages) per node; residual + update weigh ~1.3x per stage.
  const double cells_per_piece = static_cast<double>(
      cfg.cells_x_per_piece * cfg.cells_y * cfg.cells_z);
  cfg.ns_per_cell =
      0.34e9 / (4.0 * 1.3 * cells_per_piece);
  // Face-layer exchange: 5 doubles per face cell on a 64^2 face in the
  // paper; widen the scaled faces accordingly.
  cfg.state_virtual_bytes = 5 * 450;
  return cfg;
}

double run_engine(bench::Bench& bench, uint32_t nodes, bool spmd) {
  auto total = [&](uint64_t steps) {
    exec::CostModel cost = exec::CostModel::piz_daint();
    cost.track_dependences = false;
    cost.implicit_launch_ns = 150000;
    cost.task_slow_prob = kNoiseCore.slow_prob;
    cost.task_slow_frac = kNoiseCore.slow_frac;
    Config cfg = make_config(nodes, steps);
    rt::Runtime rt(exec::runtime_config(nodes, 12, cost, false));
    bench::TraceScope trace(bench, rt, spmd ? "miniaero-cr" : "miniaero-nocr",
                            nodes);
    apps::miniaero::App app = apps::miniaero::build(rt, cfg);
    for (auto& t : app.program.tasks) t.kernel = nullptr;
    exec::PreparedRun run = exec::prepare(
        rt, app.program,
        bench.config(spmd ? exec::ExecMode::kSpmd : exec::ExecMode::kImplicit,
                     cost));
    const exec::ExecutionResult res = run.run();
    bench.record(res);
    return exec::to_seconds(res.makespan_ns);
  };
  return cr::bench::steady_seconds(total, 2, 5);
}

double run_mpi(uint32_t nodes, bool rank_per_node) {
  exec::CostModel cost = exec::CostModel::piz_daint();
  auto total = [&](uint64_t steps) {
    Config cfg = make_config(nodes, steps);
    return exec::to_seconds(apps::miniaero::run_mpi_baseline(
        cfg, rank_per_node, cost, rank_per_node ? kNoiseNode : kNoiseCore));
  };
  return cr::bench::steady_seconds(total, 2, 5);
}

}  // namespace

int main(int argc, char** argv) {
  cr::bench::Bench bench("miniaero", argc, argv);
  std::vector<cr::bench::SeriesSpec> specs = {
      {"Regent (with CR)", [&](uint32_t n) { return run_engine(bench, n, true); }},
      {"Regent (w/o CR)", [&](uint32_t n) { return run_engine(bench, n, false); }},
      {"MPI+Kokkos rank/core",
       [](uint32_t n) { return run_mpi(n, false); }},
      {"MPI+Kokkos rank/node",
       [](uint32_t n) { return run_mpi(n, true); }},
  };
  auto report = bench.sweep(
      "Figure 7: MiniAero weak scaling (512k cells/node)",
      "10^3 cells/s per node", 1e3, kPaperCellsPerNode, 1.0, specs);
  std::printf("%s\n", report.to_table().c_str());
  bench.write_analysis_json(report);
  bench.write_metrics_json(report);
  return bench.finish();
}
