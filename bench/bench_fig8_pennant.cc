// Figure 8: weak scaling for PENNANT (Lagrangian hydrodynamics, 7.4M
// zones per node). Series: Regent (with CR), Regent (w/o CR), MPI,
// MPI+OpenMP.
//
// The §5.3 effects reproduced here:
//  - Regent's single-node throughput is below the references because one
//    core per node is dedicated to runtime analysis (11/12 compute);
//  - the references block on the per-cycle dt MPI_Allreduce, so
//    heavy-tailed system noise costs them the max across all ranks every
//    cycle, while Regent's deferred execution (dynamic collective +
//    futures) only pays the mean — CR overtakes them at scale.
#include <cstdio>

#include "apps/pennant/pennant.h"
#include "common.h"

namespace {

using namespace cr;
using apps::pennant::Config;

constexpr double kPaperZonesPerNode = 7.4e6;
// Heavy-tailed noise: ~1/64 probability of a 30% slowdown per
// rank-iteration; OpenMP's fork/join couples a whole node, modeled as a
// larger hit.
const apps::Noise kNoiseMpi{1.0 / 64.0, 0.30};
const apps::Noise kNoiseOmp{1.0 / 64.0, 0.75};

Config make_config(uint32_t nodes, uint64_t steps) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.pieces_per_node = 11;
  cfg.zones_x_per_piece = 24;
  cfg.zones_y = 24;
  cfg.steps = steps;
  // Paper single-node (MPI, 12 cores) ~15e6 zones/s => ~0.49 s per cycle
  // per node; forces + dt loops weigh ~1.9x + 0.4x the per-zone base.
  const double zones_per_piece =
      static_cast<double>(cfg.zones_x_per_piece) * cfg.zones_y;
  cfg.ns_per_zone = 1.33 * 0.49e9 / (2.3 * zones_per_piece) / (12.0 / 11.0);
  cfg.ns_per_point = 0.3 * cfg.ns_per_zone;
  // Shared point-column exchange (~6 doubles per boundary point on a
  // 3700-point edge in the paper): widen the scaled columns to match.
  cfg.point_virtual_bytes = 1024;
  return cfg;
}

double run_engine(bench::Bench& bench, uint32_t nodes, bool spmd) {
  auto total = [&](uint64_t steps) {
    exec::CostModel cost = exec::CostModel::piz_daint();
    cost.track_dependences = false;
    cost.implicit_launch_ns = 330000;
    // The same heavy-tailed noise the baselines see, absorbed by
    // asynchronous execution instead of amplified by barriers.
    cost.task_slow_prob = kNoiseMpi.slow_prob;
    cost.task_slow_frac = kNoiseMpi.slow_frac;
    Config cfg = make_config(nodes, steps);
    rt::Runtime rt(exec::runtime_config(nodes, 12, cost, false));
    bench::TraceScope trace(bench, rt, spmd ? "pennant-cr" : "pennant-nocr", nodes);
    apps::pennant::App app = apps::pennant::build(rt, cfg);
    for (auto& t : app.program.tasks) t.kernel = nullptr;
    exec::PreparedRun run = exec::prepare(
        rt, app.program,
        bench.config(spmd ? exec::ExecMode::kSpmd : exec::ExecMode::kImplicit,
                     cost));
    const exec::ExecutionResult res = run.run();
    bench.record(res);
    return exec::to_seconds(res.makespan_ns);
  };
  return cr::bench::steady_seconds(total, 2, 6);
}

double run_mpi(uint32_t nodes, bool openmp) {
  exec::CostModel cost = exec::CostModel::piz_daint();
  auto total = [&](uint64_t steps) {
    Config cfg = make_config(nodes, steps);
    return exec::to_seconds(apps::pennant::run_mpi_baseline(
        cfg, openmp, cost, openmp ? kNoiseOmp : kNoiseMpi));
  };
  return cr::bench::steady_seconds(total, 2, 6);
}

}  // namespace

int main(int argc, char** argv) {
  cr::bench::Bench bench("pennant", argc, argv);
  std::vector<cr::bench::SeriesSpec> specs = {
      {"Regent (with CR)", [&](uint32_t n) { return run_engine(bench, n, true); }},
      {"Regent (w/o CR)", [&](uint32_t n) { return run_engine(bench, n, false); }},
      {"MPI", [](uint32_t n) { return run_mpi(n, false); }},
      {"MPI+OpenMP", [](uint32_t n) { return run_mpi(n, true); }},
  };
  auto report = bench.sweep(
      "Figure 8: PENNANT weak scaling (7.4M zones/node)",
      "10^6 zones/s per node", 1e6, kPaperZonesPerNode, 1.0, specs);
  std::printf("%s\n", report.to_table().c_str());
  bench.write_analysis_json(report);
  bench.write_metrics_json(report);
  return bench.finish();
}
