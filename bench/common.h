// Shared driver for the figure-regeneration benches: weak-scaling sweeps
// of the Regent (with/without CR) executions and the app-specific MPI
// reference models, reported in the paper's throughput-per-node form.
//
// Command lines are described declaratively with a FlagSet (usage text
// is generated from the registrations); per-process state lives in a
// Bench object the main function owns — there are no mutable globals.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/implicit_exec.h"
#include "exec/report.h"
#include "rt/runtime.h"
#include "support/trace.h"

namespace cr::bench {

// --- declarative command-line flags -----------------------------------

// A set of `--name` / `--name=<value>` flags. Registrations carry the
// value spec and help text, so usage output is generated rather than
// maintained by hand.
class FlagSet {
 public:
  // `value` receives the text after '='; `has_value` distinguishes
  // `--flag=` (empty value) from a bare `--flag`. Return false to
  // reject the argument.
  using Handler = std::function<bool(const std::string& value,
                                     bool has_value)>;

  // `value_spec` is the usage-text suffix: "" for a plain switch,
  // "=<path>" for a required value, "[=<path>]" for an optional one.
  void add(std::string name, std::string value_spec, std::string help,
           Handler handler) {
    flags_.push_back({std::move(name), std::move(value_spec),
                      std::move(help), std::move(handler)});
  }

  // A plain presence switch.
  void add_flag(std::string name, std::string help, bool* out) {
    add(std::move(name), "", std::move(help),
        [out](const std::string&, bool has_value) {
          if (has_value) return false;
          *out = true;
          return true;
        });
  }

  // A string flag whose value may be omitted: bare `--name` (or an
  // empty `--name=`) stores `bare_value`.
  void add_string(std::string name, std::string value_name,
                  std::string help, std::string* out,
                  std::string bare_value) {
    add(std::move(name), "[=" + value_name + "]", std::move(help),
        [out, bare_value](const std::string& value, bool has_value) {
          *out = (has_value && !value.empty()) ? value : bare_value;
          return true;
        });
  }

  // An integer flag with a required value.
  void add_int(std::string name, std::string value_name, std::string help,
               int64_t* out) {
    add(std::move(name), "=" + value_name, std::move(help),
        [out](const std::string& value, bool has_value) {
          if (!has_value || value.empty()) return false;
          char* end = nullptr;
          const long long v = std::strtoll(value.c_str(), &end, 10);
          if (end == nullptr || *end != '\0') return false;
          *out = v;
          return true;
        });
  }

  std::string usage(const char* argv0) const {
    std::string out = "usage: ";
    out += argv0;
    for (const Flag& f : flags_) {
      out += " [--" + f.name + f.value_spec + "]";
    }
    out += "\n";
    for (const Flag& f : flags_) {
      char line[256];
      std::snprintf(line, sizeof line, "  --%-24s %s\n",
                    (f.name + f.value_spec).c_str(), f.help.c_str());
      out += line;
    }
    return out;
  }

  // Parses every argument; on an unknown flag or a bad value, prints
  // the offender plus the generated usage to stderr and returns false.
  bool parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (!parse_one(arg)) {
        std::fprintf(stderr, "%s: bad argument '%s'\n%s", argv[0],
                     arg.c_str(), usage(argv[0]).c_str());
        return false;
      }
    }
    return true;
  }

 private:
  struct Flag {
    std::string name;
    std::string value_spec;
    std::string help;
    Handler handler;
  };

  bool parse_one(const std::string& arg) const {
    if (arg.rfind("--", 0) != 0) return false;
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.resize(eq);
      has_value = true;
    }
    for (const Flag& f : flags_) {
      if (f.name == name) return f.handler(value, has_value);
    }
    return false;
  }

  std::vector<Flag> flags_;
};

// --- the standard bench options ---------------------------------------

struct BenchOptions {
  // Prefix for trace artifacts; empty means tracing is disabled (the
  // default: runs record nothing and pay only a null-pointer check).
  std::string trace_path;
  // --selftime: profile the *host-side* dynamic analysis (dependence
  // index, aliasing memo, intersection cache) — wall-clock per point,
  // counter blocks in the table, and a BENCH_analysis.json artifact.
  // Purely observational: virtual makespans are identical either way.
  bool selftime = false;
  std::string analysis_path = "BENCH_analysis.json";
  // --check: run the cross-shard happens-before race checker on every
  // engine run (host-side; virtual makespans are unchanged).
  bool check = false;
  // --check-mutate=<id>: delete/weaken sync op <id> (ir::SyncId) in the
  // SPMD runs; the checker must then report a race. Implies --check.
  int64_t check_mutate = -1;
  // --metrics[=<path>]: write every recorded point's registry snapshot
  // (ExecutionResult::metrics) plus makespan and attribution as one
  // BENCH_metrics JSON document — the bench_diff input. Empty = off.
  std::string metrics_path;
  // --workers=<n>: run SPMD executions on the windowed multi-worker
  // simulation backend with <n> host threads. 0 (default) keeps the
  // sequential reference loop. Any n produces bit-identical results.
  int64_t workers = 0;
  // --pin: topology-pin the windowed backend's host threads to distinct
  // physical cores (ExecConfig::pin_workers). Host-side only.
  bool pin = false;
  // --global-window: run the windowed backend with the global-window
  // reference policy instead of adaptive per-lane lookahead
  // (ExecConfig::adaptive_window = false). Equivalence-testing knob;
  // virtual results are bit-identical either way.
  bool global_window = false;
  // --no-elide: disable boundary elision in the windowed backend
  // (ExecConfig::elide_boundaries = false), forcing the full serial
  // park/drain/release protocol at every window boundary.
  // Equivalence-testing knob; virtual results are bit-identical.
  bool no_elide = false;
  // --replay: capture & replay steady-state dependence-analysis traces
  // (ExecConfig::trace_replay). Only engages for implicit runs that
  // track dependences; virtual results are bit-identical either way.
  bool replay = false;
  // --mapper=<name>: placement policy for every engine run, resolved
  // through rt::MapperRegistry ("default", "balanced", "adversarial",
  // "random"). --mapper-seed seeds the "random" policy.
  std::string mapper = "default";
  int64_t mapper_seed = 0;
  // --mapper-matrix: instead of the weak-scaling sweep, run the fixed
  // heterogeneous/faulty-node scenario once per registered policy and
  // emit one BENCH_mapper.<app>.<policy>.json artifact per cell.
  bool mapper_matrix = false;
  // --host-trace[=<path>]: host-phase profiling of the windowed backend
  // (requires --workers >= 1 to have any effect). Writes a second Chrome
  // trace of the host timeline at <path> plus the HOST_phases report
  // (host_report_path) that tools/window_report consumes. Host-side
  // only: virtual results are bit-identical either way. Empty = off.
  std::string host_trace_path;
  // --host-report=<path>: where the HOST_phases JSON goes (defaults to
  // HOST_phases.<app>.json; only written when --host-trace is on).
  std::string host_report_path;
  // --watchdog=<ms>: stall watchdog for the windowed backend — abort
  // with a flight-recorder dump if no execution progress for this many
  // wall milliseconds (0 = off).
  int64_t watchdog_ms = 0;

  // Default artifact names carry the app name so several benches run
  // from one directory (CI) never clobber each other's output.
  void register_flags(FlagSet& flags, const std::string& app) {
    analysis_path = "BENCH_analysis." + app + ".json";
    host_report_path = "HOST_phases." + app + ".json";
    flags.add_string("trace", "<path>",
                     "write Chrome trace JSON + breakdown per run",
                     &trace_path, "trace." + app + ".json");
    flags.add_string("metrics", "<path>",
                     "write per-point metrics snapshot JSON (bench_diff)",
                     &metrics_path, "BENCH_metrics." + app + ".json");
    flags.add("selftime", "[=<path>]",
              "profile host-side dynamic analysis (JSON artifact)",
              [this](const std::string& value, bool has_value) {
                selftime = true;
                if (has_value && !value.empty()) analysis_path = value;
                return true;
              });
    flags.add_flag("check", "run the happens-before race checker",
                   &check);
    flags.add_flag("replay",
                   "capture & replay steady-state dependence traces",
                   &replay);
    flags.add_int("workers", "<n>",
                  "simulation worker threads for SPMD runs (0 = sequential)",
                  &workers);
    flags.add_flag("pin",
                   "pin simulation workers to distinct physical cores",
                   &pin);
    flags.add_flag("global-window",
                   "use the global-window reference policy (no adaptive "
                   "per-lane lookahead)",
                   &global_window);
    flags.add_flag("no-elide",
                   "disable window-boundary elision (full serial "
                   "boundary at every window)",
                   &no_elide);
    flags.add_string("host-trace", "<path>",
                     "host-phase profile of the windowed backend "
                     "(Chrome trace + HOST_phases report)",
                     &host_trace_path, "host_trace." + app + ".json");
    flags.add("host-report", "=<path>",
              "HOST_phases JSON path (with --host-trace)",
              [this](const std::string& value, bool has_value) {
                if (!has_value || value.empty()) return false;
                host_report_path = value;
                return true;
              });
    flags.add_int("watchdog", "<ms>",
                  "stall watchdog budget for the windowed backend "
                  "(0 = off)",
                  &watchdog_ms);
    flags.add("mapper", "=<name>",
              "placement policy (default, balanced, adversarial, random)",
              [this](const std::string& value, bool has_value) {
                if (!has_value || value.empty()) return false;
                mapper = value;
                return true;
              });
    flags.add_int("mapper-seed", "<n>",
                  "seed for the random placement policy", &mapper_seed);
    flags.add_flag("mapper-matrix",
                   "run the heterogeneous scenario across all policies "
                   "and write one artifact per (app, mapper) cell",
                   &mapper_matrix);
    flags.add("check-mutate", "=<sync-id>",
              "delete sync op <sync-id>; expect the checker to race",
              [this](const std::string& value, bool has_value) {
                if (!has_value || value.empty()) return false;
                char* end = nullptr;
                const long long v = std::strtoll(value.c_str(), &end, 10);
                if (end == nullptr || *end != '\0' || v < 0) return false;
                check_mutate = v;
                check = true;
                return true;
              });
  }
};

// Category fractions of the most recent traced run, for sweep() to fold
// into the scaling report.
struct LastBreakdown {
  bool valid = false;
  double compute = 0, copy = 0, sync = 0, idle = 0;
};

// Analysis counters of the most recent engine run.
struct LastAnalysis {
  bool valid = false;
  exec::AnalysisStats stats;
};

// Registry snapshot of the most recent engine run (--metrics).
struct LastMetrics {
  bool valid = false;
  double makespan_ns = 0;
  std::map<std::string, double> values;
};

// --- the per-process bench driver -------------------------------------

// Owns the parsed options and the run-to-run state (trace breakdowns,
// analysis counters, checker tallies) that used to live in mutable
// singletons. Construct one in main() and thread it by reference.
class Bench {
 public:
  // `app` scopes the default artifact filenames (trace.<app>.json,
  // BENCH_analysis.<app>.json, BENCH_metrics.<app>.json).
  Bench(std::string app, int argc, char** argv) : app_(std::move(app)) {
    options_.register_flags(flags_, app_);
    if (!flags_.parse(argc, argv)) std::exit(2);
  }

  const BenchOptions& options() const { return options_; }
  const std::string& app() const { return app_; }

  // The ExecConfig for one engine run, honoring --check/--check-mutate
  // (the mutation applies to SPMD runs only; sync ids do not exist
  // before sync insertion).
  exec::ExecConfig config(exec::ExecMode mode, const exec::CostModel& cost,
                          passes::PipelineOptions pipeline = {}) const {
    exec::ExecConfig cfg;
    cfg.pipeline = pipeline;
    cfg.cost = cost;
    cfg.mode = mode;
    cfg.check = options_.check;
    if (mode == exec::ExecMode::kSpmd && options_.check_mutate >= 0) {
      cfg.check_mutate = static_cast<ir::SyncId>(options_.check_mutate);
    }
    if (mode == exec::ExecMode::kSpmd && options_.workers > 0) {
      cfg.workers = static_cast<uint32_t>(options_.workers);
      cfg.pin_workers = options_.pin;
      cfg.host_profile = !options_.host_trace_path.empty();
      if (options_.watchdog_ms > 0) {
        cfg.watchdog_ms = static_cast<uint64_t>(options_.watchdog_ms);
      }
    }
    cfg.adaptive_window = !options_.global_window;
    cfg.elide_boundaries = !options_.no_elide;
    cfg.trace_replay = options_.replay;
    cfg.mapper.name = options_.mapper;
    cfg.mapper.seed = static_cast<uint64_t>(options_.mapper_seed);
    return cfg;
  }

  // Call after Engine::run() inside a bench's run function: records the
  // run's dynamic-analysis counters for sweep() (with repeated runs of
  // one configuration — steady-state differencing — the last, largest
  // run wins) and tallies the checker result.
  void record(const exec::ExecutionResult& r) {
    if (options_.selftime) {
      last_analysis_.valid = true;
      last_analysis_.stats = r.analysis;
    }
    if (r.host_profile != nullptr && !options_.host_trace_path.empty()) {
      // With repeated runs of one configuration the last (largest)
      // windowed run wins, matching the trace/metrics artifact policy.
      r.host_profile->write_chrome_json(options_.host_trace_path);
      r.host_profile->write_json(options_.host_report_path, app_);
      std::fprintf(stderr,
                   "  host phases: %s (serial fraction %.3f over %llu "
                   "windows), trace: %s\n",
                   options_.host_report_path.c_str(),
                   r.host_profile->serial_fraction,
                   (unsigned long long)r.host_profile->windows,
                   options_.host_trace_path.c_str());
    }
    if (!options_.metrics_path.empty()) {
      last_metrics_.valid = true;
      last_metrics_.makespan_ns = static_cast<double>(r.makespan_ns);
      last_metrics_.values = r.metrics;
    }
    if (r.check != nullptr) {
      ++checked_runs_;
      check_accesses_ += r.check->stats.accesses;
      check_pairs_ += r.check->stats.pairs_checked;
      check_races_ += r.check->stats.races;
      if (!r.check->ok() && ++raced_runs_ <= 3) {
        std::fprintf(stderr, "%s", r.check->to_text().c_str());
      }
    }
  }

  // Weak-scaling sweep over node_counts() for each series.
  exec::ScalingReport sweep(const std::string& title,
                            const std::string& unit, double unit_scale,
                            double work_per_node, double iterations,
                            const std::vector<struct SeriesSpec>& specs);

  // Write the --selftime artifact: one JSON object per recorded point
  // with the analysis counters and host wall-clock. No-op unless
  // --selftime.
  void write_analysis_json(const exec::ScalingReport& report) const;

  // Write the --metrics artifact: every recorded point's registry
  // snapshot, makespan and attribution rows. Strictly virtual-time
  // quantities (no host wall-clock), so the output is bit-stable across
  // machines and safe to commit as a bench_diff baseline. No-op unless
  // --metrics.
  void write_metrics_json(const exec::ScalingReport& report) const;

  // Prints the checker tally and returns the process exit code: with
  // --check, nonzero when a race was found; with --check-mutate,
  // nonzero when the mutant was NOT detected.
  int finish() const {
    if (!options_.check) return 0;
    const bool mutating = options_.check_mutate >= 0;
    const bool detected = check_races_ > 0;
    std::fprintf(stderr,
                 "[check] %llu runs, %llu accesses, %llu pairs, %llu "
                 "races%s\n",
                 (unsigned long long)checked_runs_,
                 (unsigned long long)check_accesses_,
                 (unsigned long long)check_pairs_,
                 (unsigned long long)check_races_,
                 mutating ? (detected ? " — mutant detected"
                                      : " — mutant NOT detected")
                          : (detected ? " — RACES" : " — ok"));
    return mutating ? (detected ? 0 : 1) : (detected ? 1 : 0);
  }

 private:
  friend class TraceScope;

  std::string app_;
  FlagSet flags_;
  BenchOptions options_;
  LastBreakdown last_breakdown_;
  LastAnalysis last_analysis_;
  LastMetrics last_metrics_;
  std::vector<support::TraceAttributionRow> last_attribution_;
  uint64_t checked_runs_ = 0;
  uint64_t check_accesses_ = 0;
  uint64_t check_pairs_ = 0;
  uint64_t check_races_ = 0;
  uint64_t raced_runs_ = 0;
};

// RAII tracing for one engine run: attaches a Tracer to the runtime's
// simulator when --trace is set, and on destruction (after the run,
// while the runtime is still alive) writes the Chrome trace JSON plus a
// text summary and prints the breakdown to stderr. Artifacts are named
// <trace_path minus .json>.<label>.<nodes>n.{json,txt}; with repeated
// runs of one configuration (steady-state differencing) the last run
// wins.
class TraceScope {
 public:
  TraceScope(Bench& bench, rt::Runtime& rt, std::string label,
             uint32_t nodes)
      : bench_(&bench), rt_(&rt), label_(std::move(label)), nodes_(nodes) {
    if (bench.options().trace_path.empty()) return;
    if (rt.sim().tracer() != nullptr) return;  // someone else is tracing
    tracer_ = std::make_unique<support::Tracer>();
    rt.sim().set_tracer(tracer_.get());
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (tracer_ == nullptr) return;
    rt_->sim().set_tracer(nullptr);
    const support::TraceSummary sum = tracer_->summarize(rt_->sim().now());

    std::string stem = bench_->options().trace_path;
    const std::string suffix = ".json";
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      stem.resize(stem.size() - suffix.size());
    }
    const std::string base =
        stem + "." + label_ + "." + std::to_string(nodes_) + "n";
    tracer_->write_chrome_json(base + ".json");
    const std::string text = sum.to_text();
    if (FILE* f = std::fopen((base + ".txt").c_str(), "w")) {
      std::fputs(text.c_str(), f);
      std::fclose(f);
    }
    std::fprintf(stderr, "  [%s, %u nodes]\n%s  trace: %s.json\n",
                 label_.c_str(), nodes_, text.c_str(), base.c_str());

    LastBreakdown& lb = bench_->last_breakdown_;
    lb.valid = true;
    lb.compute = sum.breakdown.compute_frac();
    lb.copy = sum.breakdown.copy_frac();
    lb.sync = sum.breakdown.sync_frac();
    lb.idle = sum.breakdown.idle_frac();
    bench_->last_attribution_ = sum.attribution;
  }

 private:
  Bench* bench_;
  rt::Runtime* rt_;
  std::string label_;
  uint32_t nodes_;
  std::unique_ptr<support::Tracer> tracer_;
};

// Node counts of the paper's weak-scaling plots, capped by the
// CR_BENCH_MAX_NODES environment variable (default 1024).
inline std::vector<uint32_t> node_counts() {
  uint32_t max_nodes = 1024;
  if (const char* env = std::getenv("CR_BENCH_MAX_NODES")) {
    max_nodes = static_cast<uint32_t>(std::atoi(env));
  }
  std::vector<uint32_t> out;
  for (uint32_t n = 1; n <= max_nodes; n *= 2) out.push_back(n);
  return out;
}

// One configuration point: run and return the virtual seconds of the
// measured window.
using RunFn = std::function<double(uint32_t nodes)>;

struct SeriesSpec {
  std::string name;
  RunFn run;
  // Restrict to node counts where the reference can run (the paper's
  // MPI stencil references require square grids: even powers of two).
  std::function<bool(uint32_t)> applicable = [](uint32_t) { return true; };
};

inline exec::ScalingReport Bench::sweep(
    const std::string& title, const std::string& unit, double unit_scale,
    double work_per_node, double iterations,
    const std::vector<SeriesSpec>& specs) {
  exec::ScalingReport report;
  report.title = title;
  report.unit = unit;
  report.unit_scale = unit_scale;
  for (const SeriesSpec& spec : specs) {
    exec::ScalingSeries series;
    series.name = spec.name;
    for (uint32_t n : node_counts()) {
      if (!spec.applicable(n)) continue;
      std::fprintf(stderr, "  [%s] %u nodes...\n", spec.name.c_str(), n);
      exec::ScalingPoint pt;
      pt.nodes = n;
      last_breakdown_.valid = false;
      last_analysis_.valid = false;
      last_metrics_.valid = false;
      last_attribution_.clear();
      const auto host_begin = std::chrono::steady_clock::now();
      pt.seconds = spec.run(n);
      const double host_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        host_begin)
              .count();
      if (options_.selftime && last_analysis_.valid) {
        pt.has_analysis = true;
        pt.analysis = last_analysis_.stats;
        pt.analysis.host_seconds = host_seconds;
      }
      if (last_breakdown_.valid) {
        pt.has_breakdown = true;
        pt.compute_frac = last_breakdown_.compute;
        pt.copy_frac = last_breakdown_.copy;
        pt.sync_frac = last_breakdown_.sync;
        pt.idle_frac = last_breakdown_.idle;
      }
      if (last_metrics_.valid) {
        pt.has_metrics = true;
        pt.makespan_ns = last_metrics_.makespan_ns;
        pt.metrics = last_metrics_.values;
      }
      pt.attribution = last_attribution_;
      pt.work_per_node = work_per_node;
      pt.iterations = iterations;
      series.points.push_back(pt);
    }
    report.series.push_back(std::move(series));
  }
  return report;
}

inline void Bench::write_analysis_json(
    const exec::ScalingReport& report) const {
  if (!options_.selftime) return;
  FILE* f = std::fopen(options_.analysis_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n",
                 options_.analysis_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"title\": \"%s\",\n  \"series\": [\n",
               report.title.c_str());
  for (size_t si = 0; si < report.series.size(); ++si) {
    const exec::ScalingSeries& s = report.series[si];
    std::fprintf(f, "    {\"name\": \"%s\", \"points\": [\n",
                 s.name.c_str());
    bool first = true;
    for (const exec::ScalingPoint& p : s.points) {
      if (!p.has_analysis) continue;
      std::fprintf(f, "%s      {\"nodes\": %u, \"virtual_seconds\": %.9g, "
                      "\"analysis\": %s}",
                   first ? "" : ",\n", p.nodes, p.seconds,
                   p.analysis.to_json().c_str());
      first = false;
    }
    std::fprintf(f, "\n    ]}%s\n",
                 si + 1 < report.series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "  analysis counters: %s\n",
               options_.analysis_path.c_str());
}

namespace detail {

// JSON number with integral values printed exactly (no fraction), so
// counter snapshots diff cleanly.
inline void write_json_number(FILE* f, double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::fprintf(f, "%lld", static_cast<long long>(v));
  } else {
    std::fprintf(f, "%.17g", v);
  }
}

}  // namespace detail

inline void Bench::write_metrics_json(
    const exec::ScalingReport& report) const {
  if (options_.metrics_path.empty()) return;
  FILE* f = std::fopen(options_.metrics_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", options_.metrics_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"app\": \"%s\",\n  \"series\": [\n", app_.c_str());
  for (size_t si = 0; si < report.series.size(); ++si) {
    const exec::ScalingSeries& s = report.series[si];
    std::fprintf(f, "    {\"name\": \"%s\", \"points\": [\n", s.name.c_str());
    bool first_pt = true;
    for (const exec::ScalingPoint& p : s.points) {
      if (!p.has_metrics) continue;
      std::fprintf(f, "%s      {\"nodes\": %u, \"virtual_seconds\": %.9g, "
                      "\"makespan_ns\": ",
                   first_pt ? "" : ",\n", p.nodes, p.seconds);
      detail::write_json_number(f, p.makespan_ns);
      std::fprintf(f, ",\n       \"metrics\": {");
      bool first_m = true;
      for (const auto& [key, value] : p.metrics) {
        std::fprintf(f, "%s\"%s\": ", first_m ? "" : ", ", key.c_str());
        detail::write_json_number(f, value);
        first_m = false;
      }
      std::fprintf(f, "},\n       \"attribution\": [");
      for (size_t ai = 0; ai < p.attribution.size(); ++ai) {
        const support::TraceAttributionRow& r = p.attribution[ai];
        std::fprintf(f,
                     "%s{\"source\": %u, \"label\": \"%s\", \"copy_ns\": ",
                     ai == 0 ? "" : ", ", r.source, r.label.c_str());
        detail::write_json_number(f, r.copy_ns);
        std::fprintf(f, ", \"sync_ns\": ");
        detail::write_json_number(f, r.sync_ns);
        std::fprintf(f, ", \"spans\": %llu}",
                     static_cast<unsigned long long>(r.spans));
      }
      std::fprintf(f, "]}");
      first_pt = false;
    }
    std::fprintf(f, "\n    ]}%s\n", si + 1 < report.series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "  metrics snapshot: %s\n",
               options_.metrics_path.c_str());
}

// Measure the steady-state per-iteration time of an engine execution by
// differencing two runs with different step counts (initialization,
// intersections and final copies cancel out).
inline double steady_seconds(const std::function<double(uint64_t)>& total,
                             uint64_t steps_lo, uint64_t steps_hi) {
  const double t_lo = total(steps_lo);
  const double t_hi = total(steps_hi);
  return (t_hi - t_lo) / static_cast<double>(steps_hi - steps_lo);
}

inline bool is_square_power(uint32_t n) {
  // Even powers of two: 1, 4, 16, 64, ...
  int bits = 0;
  uint32_t v = n;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return (1u << bits) == n && bits % 2 == 0;
}

}  // namespace cr::bench
