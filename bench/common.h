// Shared driver for the figure-regeneration benches: weak-scaling sweeps
// of the Regent (with/without CR) executions and the app-specific MPI
// reference models, reported in the paper's throughput-per-node form.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/report.h"
#include "exec/spmd_exec.h"
#include "rt/runtime.h"
#include "support/trace.h"

namespace cr::bench {

// --- command-line options ---------------------------------------------

struct BenchOptions {
  // Prefix for trace artifacts; empty means tracing is disabled (the
  // default: runs record nothing and pay only a null-pointer check).
  std::string trace_path;
  // --selftime: profile the *host-side* dynamic analysis (dependence
  // index, aliasing memo, intersection cache) — wall-clock per point,
  // counter blocks in the table, and a BENCH_analysis.json artifact.
  // Purely observational: virtual makespans are identical either way.
  bool selftime = false;
  std::string analysis_path = "BENCH_analysis.json";
};

inline BenchOptions& options() {
  static BenchOptions o;
  return o;
}

// Parse the common bench flags (--trace[=<path>], --selftime[=<path>]).
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--trace=", 0) == 0) {
      options().trace_path = a.substr(8);
      // `--trace=` with no value means the default, not "disabled".
      if (options().trace_path.empty()) options().trace_path = "trace.json";
    } else if (a == "--trace") {
      options().trace_path = "trace.json";
    } else if (a.rfind("--selftime=", 0) == 0) {
      options().selftime = true;
      options().analysis_path = a.substr(11);
      if (options().analysis_path.empty()) {
        options().analysis_path = "BENCH_analysis.json";
      }
    } else if (a == "--selftime") {
      options().selftime = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace[=<path>]] [--selftime[=<path>]]\n",
                   argv[0]);
      std::exit(2);
    }
  }
}

// Category fractions of the most recent traced run, for sweep() to fold
// into the scaling report.
struct LastBreakdown {
  bool valid = false;
  double compute = 0, copy = 0, sync = 0, idle = 0;
};

inline LastBreakdown& last_breakdown() {
  static LastBreakdown b;
  return b;
}

// Analysis counters of the most recent engine run, published by the
// bench's run function (record_analysis) and folded into the scaling
// report by sweep() when --selftime is active.
struct LastAnalysis {
  bool valid = false;
  exec::AnalysisStats stats;
};

inline LastAnalysis& last_analysis() {
  static LastAnalysis a;
  return a;
}

// Call after Engine::run() inside a bench's run function so sweep() can
// attach the run's dynamic-analysis counters to the scaling point. With
// repeated runs of one configuration (steady-state differencing), the
// last — largest — run wins.
inline void record_analysis(const exec::ExecutionResult& r) {
  if (!options().selftime) return;
  last_analysis().valid = true;
  last_analysis().stats = r.analysis;
}

// RAII tracing for one engine run: attaches a Tracer to the runtime's
// simulator when --trace is set, and on destruction (after the run,
// while the runtime is still alive) writes the Chrome trace JSON plus a
// text summary and prints the breakdown to stderr. Artifacts are named
// <trace_path minus .json>.<label>.<nodes>n.{json,txt}; with repeated
// runs of one configuration (steady-state differencing) the last run
// wins.
class TraceScope {
 public:
  TraceScope(rt::Runtime& rt, std::string label, uint32_t nodes)
      : rt_(&rt), label_(std::move(label)), nodes_(nodes) {
    if (options().trace_path.empty()) return;
    if (rt.sim().tracer() != nullptr) return;  // someone else is tracing
    tracer_ = std::make_unique<support::Tracer>();
    rt.sim().set_tracer(tracer_.get());
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (tracer_ == nullptr) return;
    rt_->sim().set_tracer(nullptr);
    const support::TraceSummary sum = tracer_->summarize(rt_->sim().now());

    std::string stem = options().trace_path;
    const std::string suffix = ".json";
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      stem.resize(stem.size() - suffix.size());
    }
    const std::string base =
        stem + "." + label_ + "." + std::to_string(nodes_) + "n";
    tracer_->write_chrome_json(base + ".json");
    const std::string text = sum.to_text();
    if (FILE* f = std::fopen((base + ".txt").c_str(), "w")) {
      std::fputs(text.c_str(), f);
      std::fclose(f);
    }
    std::fprintf(stderr, "  [%s, %u nodes]\n%s  trace: %s.json\n",
                 label_.c_str(), nodes_, text.c_str(), base.c_str());

    LastBreakdown& lb = last_breakdown();
    lb.valid = true;
    lb.compute = sum.breakdown.compute_frac();
    lb.copy = sum.breakdown.copy_frac();
    lb.sync = sum.breakdown.sync_frac();
    lb.idle = sum.breakdown.idle_frac();
  }

 private:
  rt::Runtime* rt_;
  std::string label_;
  uint32_t nodes_;
  std::unique_ptr<support::Tracer> tracer_;
};

// Node counts of the paper's weak-scaling plots, capped by the
// CR_BENCH_MAX_NODES environment variable (default 1024).
inline std::vector<uint32_t> node_counts() {
  uint32_t max_nodes = 1024;
  if (const char* env = std::getenv("CR_BENCH_MAX_NODES")) {
    max_nodes = static_cast<uint32_t>(std::atoi(env));
  }
  std::vector<uint32_t> out;
  for (uint32_t n = 1; n <= max_nodes; n *= 2) out.push_back(n);
  return out;
}

// One configuration point: run and return the virtual seconds of the
// measured window.
using RunFn = std::function<double(uint32_t nodes)>;

struct SeriesSpec {
  std::string name;
  RunFn run;
  // Restrict to node counts where the reference can run (the paper's
  // MPI stencil references require square grids: even powers of two).
  std::function<bool(uint32_t)> applicable = [](uint32_t) { return true; };
};

inline exec::ScalingReport sweep(const std::string& title,
                                 const std::string& unit, double unit_scale,
                                 double work_per_node, double iterations,
                                 const std::vector<SeriesSpec>& specs) {
  exec::ScalingReport report;
  report.title = title;
  report.unit = unit;
  report.unit_scale = unit_scale;
  for (const SeriesSpec& spec : specs) {
    exec::ScalingSeries series;
    series.name = spec.name;
    for (uint32_t n : node_counts()) {
      if (!spec.applicable(n)) continue;
      std::fprintf(stderr, "  [%s] %u nodes...\n", spec.name.c_str(), n);
      exec::ScalingPoint pt;
      pt.nodes = n;
      last_breakdown().valid = false;
      last_analysis().valid = false;
      const auto host_begin = std::chrono::steady_clock::now();
      pt.seconds = spec.run(n);
      const double host_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        host_begin)
              .count();
      if (options().selftime && last_analysis().valid) {
        pt.has_analysis = true;
        pt.analysis = last_analysis().stats;
        pt.analysis.host_seconds = host_seconds;
      }
      if (last_breakdown().valid) {
        pt.has_breakdown = true;
        pt.compute_frac = last_breakdown().compute;
        pt.copy_frac = last_breakdown().copy;
        pt.sync_frac = last_breakdown().sync;
        pt.idle_frac = last_breakdown().idle;
      }
      pt.work_per_node = work_per_node;
      pt.iterations = iterations;
      series.points.push_back(pt);
    }
    report.series.push_back(std::move(series));
  }
  return report;
}

// Write the --selftime artifact: one JSON object per recorded point with
// the analysis counters and host wall-clock. No-op unless --selftime.
inline void write_analysis_json(const exec::ScalingReport& report) {
  if (!options().selftime) return;
  FILE* f = std::fopen(options().analysis_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n",
                 options().analysis_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"title\": \"%s\",\n  \"series\": [\n",
               report.title.c_str());
  for (size_t si = 0; si < report.series.size(); ++si) {
    const exec::ScalingSeries& s = report.series[si];
    std::fprintf(f, "    {\"name\": \"%s\", \"points\": [\n",
                 s.name.c_str());
    bool first = true;
    for (const exec::ScalingPoint& p : s.points) {
      if (!p.has_analysis) continue;
      std::fprintf(f, "%s      {\"nodes\": %u, \"virtual_seconds\": %.9g, "
                      "\"analysis\": %s}",
                   first ? "" : ",\n", p.nodes, p.seconds,
                   p.analysis.to_json().c_str());
      first = false;
    }
    std::fprintf(f, "\n    ]}%s\n",
                 si + 1 < report.series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "  analysis counters: %s\n",
               options().analysis_path.c_str());
}

// Measure the steady-state per-iteration time of an engine execution by
// differencing two runs with different step counts (initialization,
// intersections and final copies cancel out).
inline double steady_seconds(const std::function<double(uint64_t)>& total,
                             uint64_t steps_lo, uint64_t steps_hi) {
  const double t_lo = total(steps_lo);
  const double t_hi = total(steps_hi);
  return (t_hi - t_lo) / static_cast<double>(steps_hi - steps_lo);
}

inline bool is_square_power(uint32_t n) {
  // Even powers of two: 1, 4, 16, 64, ...
  int bits = 0;
  uint32_t v = n;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return (1u << bits) == n && bits % 2 == 0;
}

}  // namespace cr::bench
