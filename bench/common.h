// Shared driver for the figure-regeneration benches: weak-scaling sweeps
// of the Regent (with/without CR) executions and the app-specific MPI
// reference models, reported in the paper's throughput-per-node form.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "exec/report.h"
#include "exec/spmd_exec.h"

namespace cr::bench {

// Node counts of the paper's weak-scaling plots, capped by the
// CR_BENCH_MAX_NODES environment variable (default 1024).
inline std::vector<uint32_t> node_counts() {
  uint32_t max_nodes = 1024;
  if (const char* env = std::getenv("CR_BENCH_MAX_NODES")) {
    max_nodes = static_cast<uint32_t>(std::atoi(env));
  }
  std::vector<uint32_t> out;
  for (uint32_t n = 1; n <= max_nodes; n *= 2) out.push_back(n);
  return out;
}

// One configuration point: run and return the virtual seconds of the
// measured window.
using RunFn = std::function<double(uint32_t nodes)>;

struct SeriesSpec {
  std::string name;
  RunFn run;
  // Restrict to node counts where the reference can run (the paper's
  // MPI stencil references require square grids: even powers of two).
  std::function<bool(uint32_t)> applicable = [](uint32_t) { return true; };
};

inline exec::ScalingReport sweep(const std::string& title,
                                 const std::string& unit, double unit_scale,
                                 double work_per_node, double iterations,
                                 const std::vector<SeriesSpec>& specs) {
  exec::ScalingReport report;
  report.title = title;
  report.unit = unit;
  report.unit_scale = unit_scale;
  for (const SeriesSpec& spec : specs) {
    exec::ScalingSeries series;
    series.name = spec.name;
    for (uint32_t n : node_counts()) {
      if (!spec.applicable(n)) continue;
      std::fprintf(stderr, "  [%s] %u nodes...\n", spec.name.c_str(), n);
      exec::ScalingPoint pt;
      pt.nodes = n;
      pt.seconds = spec.run(n);
      pt.work_per_node = work_per_node;
      pt.iterations = iterations;
      series.points.push_back(pt);
    }
    report.series.push_back(std::move(series));
  }
  return report;
}

// Measure the steady-state per-iteration time of an engine execution by
// differencing two runs with different step counts (initialization,
// intersections and final copies cancel out).
inline double steady_seconds(const std::function<double(uint64_t)>& total,
                             uint64_t steps_lo, uint64_t steps_hi) {
  const double t_lo = total(steps_lo);
  const double t_hi = total(steps_hi);
  return (t_hi - t_lo) / static_cast<double>(steps_hi - steps_lo);
}

inline bool is_square_power(uint32_t n) {
  // Even powers of two: 1, 4, 16, 64, ...
  int bits = 0;
  uint32_t v = n;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return (1u << bits) == n && bits % 2 == 0;
}

}  // namespace cr::bench
