#include "apps/stencil/stencil.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "apps/common/bsp.h"
#include "ir/builder.h"
#include "rt/partition.h"
#include "support/check.h"

namespace cr::apps::stencil {

namespace {

// Nearly square factorization a*b = n with a <= b.
void factorize(uint64_t n, uint64_t& a, uint64_t& b) {
  a = static_cast<uint64_t>(std::sqrt(static_cast<double>(n)));
  while (a > 1 && n % a != 0) --a;
  b = n / a;
}

// Star weights w_i = 1 / (4 i H_r): symmetric and normalized so the
// stencil of a linear field is exact (star(x + y + t) = x + y + t).
std::vector<double> star_weights(int64_t radius) {
  double harmonic = 0;
  for (int64_t i = 1; i <= radius; ++i) {
    harmonic += 1.0 / static_cast<double>(i);
  }
  std::vector<double> w(static_cast<size_t>(radius) + 1, 0.0);
  for (int64_t i = 1; i <= radius; ++i) {
    w[static_cast<size_t>(i)] =
        1.0 / (4.0 * static_cast<double>(i) * harmonic);
  }
  return w;
}

}  // namespace

App build(rt::Runtime& rt, const Config& config) {
  App app;
  app.config = config;
  app.total_tiles =
      static_cast<uint64_t>(config.nodes) * config.tasks_per_node;
  factorize(app.total_tiles, app.tiles_x, app.tiles_y);

  const uint64_t gx = app.tiles_x * config.tile_x;
  const uint64_t gy = app.tiles_y * config.tile_y;
  const rt::GridExtents extents = rt::GridExtents::d2(gx, gy);
  const int64_t radius = config.radius;
  CR_CHECK_MSG(config.tile_x > 2 * static_cast<uint64_t>(radius) &&
                   config.tile_y > 2 * static_cast<uint64_t>(radius),
               "tiles must be larger than twice the stencil radius");

  rt::RegionForest& forest = rt.forest();

  auto out_fs = std::make_shared<rt::FieldSpace>();
  app.f_out = out_fs->add_field("out");
  app.r_out = forest.create_region(rt::IndexSpace::grid(extents), out_fs,
                                   "out_grid");
  app.out_tiles = rt::partition_grid(forest, app.r_out,
                                     {app.tiles_x, app.tiles_y, 1}, "otile");

  auto in_fs = std::make_shared<rt::FieldSpace>();
  app.f_in = in_fs->add_field("in", rt::FieldType::kF64,
                              config.halo_virtual_bytes);
  app.r_in = forest.create_region(rt::IndexSpace::grid(extents), in_fs,
                                  "in_grid");

  // Hierarchical split (paper §4.5): interior points are farther than
  // `radius` from their tile's edge; the rest form the boundary rings.
  const uint64_t tx = config.tile_x, ty = config.tile_y;
  auto is_interior = [tx, ty, radius, &extents](uint64_t id) {
    int64_t x, y, z;
    extents.delinearize(id, x, y, z);
    const int64_t lx = x % static_cast<int64_t>(tx);
    const int64_t ly = y % static_cast<int64_t>(ty);
    return lx >= radius && lx < static_cast<int64_t>(tx) - radius &&
           ly >= radius && ly < static_cast<int64_t>(ty) - radius;
  };
  app.top = rt::partition_by_color(
      forest, app.r_in, 2,
      [&](uint64_t id) { return is_interior(id) ? 0u : 1u; }, "int_v_bnd");
  app.interior = forest.subregion(app.top, 0);
  app.boundary = forest.subregion(app.top, 1);

  auto tile_of = [&](uint64_t id) {
    int64_t x, y, z;
    extents.delinearize(id, x, y, z);
    return static_cast<uint64_t>(x) / tx * app.tiles_y +
           static_cast<uint64_t>(y) / ty;
  };
  app.p_int = rt::partition_by_color(forest, app.interior, app.total_tiles,
                                     tile_of, "int");
  app.p_bnd = rt::partition_by_color(forest, app.boundary, app.total_tiles,
                                     tile_of, "bnd");

  // Halo: the star's reach from each tile, clipped to the boundary
  // region (interior points provably never communicate).
  {
    const rt::IndexSpace& bnd_is = forest.region(app.boundary).ispace;
    std::vector<rt::IndexSpace> subs;
    subs.reserve(app.total_tiles);
    for (uint64_t cx = 0; cx < app.tiles_x; ++cx) {
      for (uint64_t cy = 0; cy < app.tiles_y; ++cy) {
        rt::Rect r = rt::Rect::d2(
            static_cast<int64_t>(cx * tx), static_cast<int64_t>(cy * ty),
            static_cast<int64_t>((cx + 1) * tx),
            static_cast<int64_t>((cy + 1) * ty));
        rt::Rect ex = r, ey = r;
        ex.lo[0] = std::max<int64_t>(0, r.lo[0] - radius);
        ex.hi[0] = std::min<int64_t>(static_cast<int64_t>(gx),
                                     r.hi[0] + radius);
        ey.lo[1] = std::max<int64_t>(0, r.lo[1] - radius);
        ey.hi[1] = std::min<int64_t>(static_cast<int64_t>(gy),
                                     r.hi[1] + radius);
        auto pts = extents.rect_ids(ex).set_union(extents.rect_ids(ey));
        subs.push_back(bnd_is.subspace(
            pts.set_intersect(bnd_is.points())));
      }
    }
    app.p_halo = forest.create_partition(app.boundary, std::move(subs),
                                         /*disjoint=*/false,
                                         /*complete=*/false, "halo");
  }

  // --- program ---------------------------------------------------------

  ir::ProgramBuilder b(forest, "stencil");
  using P = rt::Privilege;
  using B = ir::ProgramBuilder;

  const auto weights = star_weights(radius);
  const rt::GridExtents ext_copy = extents;
  const rt::FieldId f_in = app.f_in, f_out = app.f_out;

  // PRK initialization: in(x, y) = x + y (launched once per in-subset),
  // out = 0.
  ir::TaskId t_init_in = b.task(
      "init_in", {{P::kWriteDiscard, rt::ReduceOp::kSum, {f_in}}}, 1000,
      0.2 * config.ns_per_point,
      [ext_copy, f_in](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t id) {
          int64_t x, y, z;
          ext_copy.delinearize(id, x, y, z);
          ctx.write_f64(0, f_in, id, static_cast<double>(x + y));
        });
      });
  ir::TaskId t_init_out = b.task(
      "init_out", {{P::kWriteDiscard, rt::ReduceOp::kSum, {f_out}}}, 1000,
      0.1 * config.ns_per_point,
      [f_out](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point(
            [&](uint64_t id) { ctx.write_f64(0, f_out, id, 0.0); });
      });

  // out += star(in): writes the tile of out, reads in through the three
  // coverage arguments (own interior, own ring, neighbor rings).
  ir::TaskId t_stencil = b.task(
      "stencil",
      {{P::kReadWrite, rt::ReduceOp::kSum, {f_out}},
       {P::kReadOnly, rt::ReduceOp::kSum, {f_in}},    // interior
       {P::kReadOnly, rt::ReduceOp::kSum, {f_in}},    // own ring
       {P::kReadOnly, rt::ReduceOp::kSum, {f_in}}},   // halo rings
      2000, config.ns_per_point,
      [ext_copy, weights, radius, f_in, f_out](ir::TaskContext& ctx) {
        const int64_t gx = static_cast<int64_t>(ext_copy.n[0]);
        const int64_t gy = static_cast<int64_t>(ext_copy.n[1]);
        auto in_at = [&](int64_t x, int64_t y) {
          const uint64_t id = ext_copy.linearize(x, y);
          for (size_t k : {size_t{1}, size_t{2}, size_t{3}}) {
            if (ctx.param_domain(k).contains(id)) {
              return ctx.read_f64(k, f_in, id);
            }
          }
          CR_CHECK_MSG(false, "point not covered by any input argument");
          return 0.0;
        };
        ctx.domain().points().for_each_point([&](uint64_t id) {
          int64_t x, y, z;
          ext_copy.delinearize(id, x, y, z);
          if (x < radius || x >= gx - radius || y < radius ||
              y >= gy - radius) {
            return;  // PRK computes interior points only
          }
          double acc = 0;
          for (int64_t i = 1; i <= radius; ++i) {
            const double w = weights[static_cast<size_t>(i)];
            acc += w * (in_at(x + i, y) + in_at(x - i, y) +
                        in_at(x, y + i) + in_at(x, y - i));
          }
          ctx.write_f64(0, f_out, id, ctx.read_f64(0, f_out, id) + acc);
        });
      });

  // in += 1, applied per in-subset (interior and ring launches).
  ir::TaskId t_increment = b.task(
      "increment", {{P::kReadWrite, rt::ReduceOp::kSum, {f_in}}}, 1000,
      0.15 * config.ns_per_point,
      [f_in](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t id) {
          ctx.write_f64(0, f_in, id, ctx.read_f64(0, f_in, id) + 1.0);
        });
      });

  b.index_launch(t_init_in, app.total_tiles,
                 {B::arg(app.p_int, P::kWriteDiscard, {f_in})});
  b.index_launch(t_init_in, app.total_tiles,
                 {B::arg(app.p_bnd, P::kWriteDiscard, {f_in})});
  b.index_launch(t_init_out, app.total_tiles,
                 {B::arg(app.out_tiles, P::kWriteDiscard, {f_out})});
  b.begin_for_time(config.steps);
  b.index_launch(t_stencil, app.total_tiles,
                 {B::arg(app.out_tiles, P::kReadWrite, {f_out}),
                  B::arg(app.p_int, P::kReadOnly, {f_in}),
                  B::arg(app.p_bnd, P::kReadOnly, {f_in}),
                  B::arg(app.p_halo, P::kReadOnly, {f_in})});
  b.index_launch(t_increment, app.total_tiles,
                 {B::arg(app.p_int, P::kReadWrite, {f_in})});
  b.index_launch(t_increment, app.total_tiles,
                 {B::arg(app.p_bnd, P::kReadWrite, {f_in})});
  b.end_for_time();
  app.program = b.finish();
  return app;
}

double expected_interior(const Config& config, uint64_t steps, int64_t x,
                         int64_t y) {
  // out(T) = sum_{t=0}^{T-1} (x + y + t) = T (x + y) + T (T - 1) / 2.
  (void)config;
  const double T = static_cast<double>(steps);
  return T * static_cast<double>(x + y) + T * (T - 1) / 2.0;
}

sim::Time run_mpi_baseline(const Config& config, bool rank_per_node,
                           const exec::CostModel& cost) {
  const uint32_t cores = 12;
  BspConfig bsp;
  bsp.nodes = config.nodes;
  bsp.ranks_per_node = rank_per_node ? 1 : cores;
  bsp.cores_per_node = cores;
  bsp.iterations = config.steps;

  const uint64_t points_per_node =
      static_cast<uint64_t>(config.tasks_per_node) * config.tile_x *
      config.tile_y;
  const uint32_t ranks = bsp.nodes * bsp.ranks_per_node;
  uint64_t rx, ry;
  factorize(ranks, ry, rx);
  // Per-rank subgrid (in scaled grid points).
  const double points_per_rank =
      static_cast<double>(points_per_node) * config.nodes / ranks;
  const double px = std::sqrt(points_per_rank * static_cast<double>(rx) /
                              static_cast<double>(ry));
  const double py = points_per_rank / px;

  // MPI computes with every core (no runtime core reservation); one rank
  // per node threads the same work across the node with a fork/join
  // overhead per parallel loop (the OpenMP model of §5.1).
  // The stencil kernel plus the increment sweep: ~1.3x the base
  // per-point cost, matching the Regent execution's task pair.
  const double compute =
      1.3 * (rank_per_node ? points_per_node * config.ns_per_point / cores
                           : points_per_rank * config.ns_per_point);
  bsp.compute_ns = [compute](uint32_t, uint64_t) { return compute; };
  bsp.rank_overhead_ns = rank_per_node ? 20000 : 1500;

  const uint64_t bytes_x = static_cast<uint64_t>(
      static_cast<double>(config.radius) * py * config.halo_virtual_bytes);
  const uint64_t bytes_y = static_cast<uint64_t>(
      static_cast<double>(config.radius) * px * config.halo_virtual_bytes);
  bsp.sends = [ranks, rx, bytes_x, bytes_y](uint32_t r) {
    std::vector<BspMessage> out;
    const uint32_t cx = r % static_cast<uint32_t>(rx);
    if (cx > 0) out.push_back({r - 1, bytes_x});
    if (cx + 1 < rx) out.push_back({r + 1, bytes_x});
    if (r >= rx) out.push_back({r - static_cast<uint32_t>(rx), bytes_y});
    if (r + rx < ranks) {
      out.push_back({r + static_cast<uint32_t>(rx), bytes_y});
    }
    return out;
  };
  return run_bsp(bsp, cost);
}

}  // namespace cr::apps::stencil
