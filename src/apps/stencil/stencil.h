// Stencil: the PRK 2D star-shaped stencil benchmark (paper §5.1).
//
// A regular grid of double-precision values is tiled across the machine;
// each iteration applies a radius-R star stencil (out += star(in)) and
// then increments the input (in += 1) — the PRK kernel pair.
//
// The input field uses the hierarchical region structure of paper §4.5:
// the grid is first split into *interior* points (never communicated; at
// least `radius` away from every tile edge) and *boundary* rings. Tiles
// of the interior are provably disjoint from the halo partition, so the
// compiler emits ring-sized copies only — perimeter, not area, traffic.
//
// PRK initializes in(x, y) = x + y; with symmetric normalized star
// weights the stencil of a linear field is exact, so interior points have
// the closed form checked by the tests.
#pragma once

#include <cstdint>

#include "exec/cost_model.h"
#include "ir/program.h"
#include "rt/runtime.h"

namespace cr::apps::stencil {

struct Config {
  uint32_t nodes = 1;
  uint32_t tasks_per_node = 4;  // tiles owned by each node
  uint64_t tile_x = 32;         // tile extent (grid points)
  uint64_t tile_y = 32;
  uint64_t steps = 4;
  int64_t radius = 2;
  // Virtual-cost calibration (see EXPERIMENTS.md): ns of compute per
  // grid point and modeled bytes per halo element.
  double ns_per_point = 1.2;
  uint32_t halo_virtual_bytes = 8;
};

struct App {
  Config config;
  // out lives in its own region with a plain tile partition; in lives in
  // the hierarchically partitioned region (Fig. 5 structure).
  rt::RegionId r_out = rt::kNoId;
  rt::RegionId r_in = rt::kNoId;
  rt::FieldId f_out = 0;
  rt::FieldId f_in = 0;
  rt::PartitionId out_tiles = rt::kNoId;  // disjoint, complete
  rt::PartitionId top = rt::kNoId;        // interior vs boundary
  rt::RegionId interior = rt::kNoId;
  rt::RegionId boundary = rt::kNoId;
  rt::PartitionId p_int = rt::kNoId;   // tile interiors (disjoint)
  rt::PartitionId p_bnd = rt::kNoId;   // tile rings (disjoint)
  rt::PartitionId p_halo = rt::kNoId;  // star reach ∩ boundary (aliased)
  uint64_t tiles_x = 0, tiles_y = 0;
  uint64_t total_tiles = 0;
  ir::Program program;

  uint64_t points_per_node() const {
    return config.tasks_per_node * config.tile_x * config.tile_y;
  }
};

// Build the region tree and the implicitly parallel program.
App build(rt::Runtime& rt, const Config& config);

// Closed-form interior value of `out` after `steps` iterations at grid
// point (x, y) (valid where the star never reaches the global boundary).
double expected_interior(const Config& config, uint64_t steps, int64_t x,
                         int64_t y);

// Hand-written SPMD references (virtual time only): the PRK MPI code
// (one rank per core) and MPI+OpenMP (one rank per node).
sim::Time run_mpi_baseline(const Config& config, bool rank_per_node,
                           const exec::CostModel& cost);

}  // namespace cr::apps::stencil
