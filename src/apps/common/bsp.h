// A small bulk-synchronous SPMD framework on the simulated machine: the
// substrate for the hand-written MPI / MPI+OpenMP / MPI+Kokkos reference
// baselines of paper §5. Each rank alternates compute and communication;
// messages are explicit, receives block the next iteration's compute, and
// optional blocking allreduces model the collectives MPI codes issue
// inline (the blocking dt-reduction of PENNANT's reference is exactly the
// latency CR hides, §5.3).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/cost_model.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace cr::apps {

struct BspMessage {
  uint32_t dst_rank = 0;
  uint64_t bytes = 0;
};

// Heavy-tailed system noise: with probability `slow_prob`, a rank's
// iteration runs (1 + slow_frac) times longer (an OS preemption / network
// hiccup). Bulk-synchronous codes pay the *maximum* across ranks at every
// barrier or blocking collective, so at large rank counts nearly every
// cycle is hit; asynchronous execution only pays the mean. Deterministic
// (hash of the key) so experiments replay exactly.
struct Noise {
  double slow_prob = 0.0;
  double slow_frac = 0.0;
};

inline double noise_factor(uint64_t key, const Noise& noise) {
  if (noise.slow_prob <= 0) return 1.0;
  uint64_t x = key + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return u < noise.slow_prob ? 1.0 + noise.slow_frac : 1.0;
}

struct BspConfig {
  uint32_t nodes = 1;
  uint32_t ranks_per_node = 1;   // MPI decomposition
  uint32_t cores_per_node = 12;  // all usable by the application
  uint64_t iterations = 1;
  // Per-iteration compute time of one rank (ns). Receives (rank, iter).
  std::function<double(uint32_t, uint64_t)> compute_ns;
  // Static communication pattern: messages rank sends every iteration.
  std::function<std::vector<BspMessage>(uint32_t)> sends;
  // Issue a blocking allreduce at the end of every iteration.
  bool allreduce_per_iteration = false;
  // Extra per-iteration overhead per rank (e.g. OpenMP fork/join).
  double rank_overhead_ns = 0;
};

// Runs the BSP program and returns the virtual makespan.
sim::Time run_bsp(const BspConfig& config, const exec::CostModel& cost);

}  // namespace cr::apps
