#include "apps/common/bsp.h"

#include "support/check.h"

namespace cr::apps {

sim::Time run_bsp(const BspConfig& config, const exec::CostModel& cost) {
  CR_CHECK(config.compute_ns != nullptr);
  CR_CHECK(config.ranks_per_node >= 1 &&
           config.ranks_per_node <= config.cores_per_node);

  sim::Simulator sim;
  sim::Machine machine(
      sim, {.nodes = config.nodes, .cores_per_node = config.cores_per_node});
  sim::Network net(sim, config.nodes, cost.network);

  const uint32_t ranks = config.nodes * config.ranks_per_node;
  auto node_of = [&](uint32_t rank) { return rank / config.ranks_per_node; };
  auto core_of = [&](uint32_t rank) {
    // Spread ranks over the node's cores (one "main" core per rank; a
    // rank-per-node configuration threads over the rest, which the
    // caller folds into compute_ns).
    const uint32_t local = rank % config.ranks_per_node;
    return local * (config.cores_per_node / config.ranks_per_node);
  };

  // Static inbound pattern (reverse of sends).
  std::vector<std::vector<uint32_t>> senders_of(ranks);
  std::vector<std::vector<BspMessage>> sends_of(ranks);
  for (uint32_t r = 0; r < ranks; ++r) {
    sends_of[r] = config.sends ? config.sends(r) : std::vector<BspMessage>{};
    for (const BspMessage& m : sends_of[r]) {
      CR_CHECK(m.dst_rank < ranks);
      senders_of[m.dst_rank].push_back(r);
    }
  }

  std::vector<sim::Event> ready(ranks);  // rank may start next iteration
  for (uint64_t it = 0; it < config.iterations; ++it) {
    // Compute phase.
    std::vector<sim::Event> computed(ranks);
    for (uint32_t r = 0; r < ranks; ++r) {
      sim::Processor& proc = machine.proc(node_of(r), core_of(r));
      const double ns = config.compute_ns(r, it) + config.rank_overhead_ns;
      computed[r] = proc.spawn(
          ready[r], ns <= 0 ? 0 : static_cast<sim::Time>(ns));
    }
    // Communication phase: sends gated on the sender's compute.
    std::vector<std::vector<sim::Event>> inbound(ranks);
    for (uint32_t r = 0; r < ranks; ++r) {
      for (const BspMessage& m : sends_of[r]) {
        inbound[m.dst_rank].push_back(net.send(
            node_of(r), node_of(m.dst_rank), m.bytes, computed[r]));
      }
    }
    for (uint32_t r = 0; r < ranks; ++r) {
      std::vector<sim::Event> deps = std::move(inbound[r]);
      deps.push_back(computed[r]);
      ready[r] = sim::Event::merge(sim, deps);
    }
    // Blocking collective: everyone waits for everyone.
    if (config.allreduce_per_iteration) {
      sim::Event all = sim::Event::merge(
          sim, std::vector<sim::Event>(ready.begin(), ready.end()));
      const sim::Time latency = 2 * net.tree_latency(ranks);
      sim::UserEvent released(sim);
      all.subscribe([&sim, latency, released](sim::Time) mutable {
        sim.schedule_after(latency, [released]() mutable {
          released.trigger();
        });
      });
      for (uint32_t r = 0; r < ranks; ++r) ready[r] = released.event();
    }
  }
  return sim.run();
}

}  // namespace cr::apps
