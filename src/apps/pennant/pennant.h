// PENNANT: the Lagrangian hydrodynamics proxy application of paper §5.3.
//
// Each cycle of the (simplified but real) staggered-grid Lagrangian
// scheme runs:
//   reset_forces   — zero the point force accumulators;
//   calc_forces    — per zone: volume from corner coordinates
//                    (shoelace), density, EOS pressure, corner forces
//                    reduced into the points (region reductions into
//                    shared/ghost points, paper §4.3);
//   adv_points     — integrate point velocity and position with dt;
//   calc_dt        — per-zone stable-dt candidates folded by a MIN
//                    scalar reduction into a dynamic collective, then
//                    dt = min(dtmax, growth cap) (paper §4.4) — the
//                    global reduction whose latency CR hides (§5.3).
//
// Points use the private/shared/ghost hierarchical structure; shared
// point columns are exchanged between neighbor pieces.
#pragma once

#include <cstdint>

#include "apps/common/bsp.h"
#include "apps/pennant/mesh2d.h"
#include "exec/cost_model.h"
#include "ir/program.h"
#include "rt/runtime.h"

namespace cr::apps::pennant {

struct Config {
  uint32_t nodes = 1;
  uint32_t pieces_per_node = 2;
  uint64_t zones_x_per_piece = 12;
  uint64_t zones_y = 12;
  uint64_t steps = 4;
  double gamma = 5.0 / 3.0;
  double dt_init = 1e-3;
  double dt_max = 1e-2;
  double cfl = 0.3;
  // Virtual-cost calibration.
  double ns_per_zone = 20.0;
  double ns_per_point = 8.0;
  uint32_t point_virtual_bytes = 8;
};

struct App {
  Config config;
  Mesh mesh;
  // Regions.
  rt::RegionId rz = rt::kNoId;  // zones
  rt::RegionId rp = rt::kNoId;  // points
  // Zone fields.
  rt::FieldId f_zm = 0, f_ze = 0, f_zr = 0, f_zp = 0, f_zvol = 0;
  // Point fields.
  rt::FieldId f_px = 0, f_py = 0, f_pu = 0, f_pv = 0, f_pfx = 0,
              f_pfy = 0, f_pmass = 0;
  // Partitions.
  rt::PartitionId p_zones = rt::kNoId;  // disjoint by piece
  rt::PartitionId top = rt::kNoId;      // private vs shared points
  rt::RegionId all_private = rt::kNoId;
  rt::RegionId all_shared = rt::kNoId;
  rt::PartitionId p_pvt = rt::kNoId;
  rt::PartitionId p_shr = rt::kNoId;  // owned shared (disjoint)
  rt::PartitionId p_gst = rt::kNoId;  // neighbor shared (aliased)
  uint64_t pieces = 0;
  // Scalars.
  ir::ScalarId s_dt = 0, s_dtrec = 0;
  ir::Program program;

  uint64_t zones_per_node() const {
    return config.pieces_per_node * config.zones_x_per_piece *
           config.zones_y;
  }
};

App build(rt::Runtime& rt, const Config& config);

// Hand-written SPMD references: PENNANT's MPI (rank/core) and
// MPI+OpenMP (rank/node) codes, both with the *blocking* per-cycle dt
// allreduce and using all 12 cores (no runtime core). `noise` injects
// the heavy-tailed system variability the blocking collective amplifies
// (§5.3).
sim::Time run_mpi_baseline(const Config& config, bool rank_per_node,
                           const exec::CostModel& cost,
                           const Noise& noise);

}  // namespace cr::apps::pennant
