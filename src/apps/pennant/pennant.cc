#include "apps/pennant/pennant.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "apps/common/bsp.h"
#include "ir/builder.h"
#include "rt/partition.h"
#include "support/check.h"

namespace cr::apps::pennant {

namespace {

double hash01(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

App build(rt::Runtime& rt, const Config& config) {
  App app;
  app.config = config;
  app.pieces = static_cast<uint64_t>(config.nodes) * config.pieces_per_node;

  MeshConfig mc;
  mc.zones_x = config.zones_x_per_piece;
  mc.zones_y = config.zones_y;
  mc.pieces = app.pieces;
  app.mesh = make_mesh(mc);
  const Mesh mesh = app.mesh;  // captured by kernels (value copy)

  rt::RegionForest& forest = rt.forest();

  // --- regions ---------------------------------------------------------
  auto zfs = std::make_shared<rt::FieldSpace>();
  app.f_zm = zfs->add_field("zm");
  app.f_ze = zfs->add_field("ze");
  app.f_zr = zfs->add_field("zr");
  app.f_zp = zfs->add_field("zp");
  app.f_zvol = zfs->add_field("zvol");
  app.rz = forest.create_region(rt::IndexSpace::dense(mesh.num_zones()),
                                zfs, "Z");

  auto pfs = std::make_shared<rt::FieldSpace>();
  app.f_px = pfs->add_field("px", rt::FieldType::kF64,
                            config.point_virtual_bytes);
  app.f_py = pfs->add_field("py", rt::FieldType::kF64,
                            config.point_virtual_bytes);
  app.f_pu = pfs->add_field("pu");
  app.f_pv = pfs->add_field("pv");
  app.f_pfx = pfs->add_field("pfx");
  app.f_pfy = pfs->add_field("pfy");
  app.f_pmass = pfs->add_field("pmass");
  app.rp = forest.create_region(rt::IndexSpace::dense(mesh.num_points()),
                                pfs, "P");

  // --- partitions ------------------------------------------------------
  app.p_zones = rt::partition_by_color(
      forest, app.rz, app.pieces,
      [mesh](uint64_t z) { return mesh.zone_piece(z); }, "zones");

  app.top = rt::partition_by_color(
      forest, app.rp, 2,
      [mesh](uint64_t p) {
        return mesh.point_col_shared(mesh.point_px(p)) ? 1u : 0u;
      },
      "pvs");
  app.all_private = forest.subregion(app.top, 0);
  app.all_shared = forest.subregion(app.top, 1);
  app.p_pvt = rt::partition_by_color(
      forest, app.all_private, app.pieces,
      [mesh](uint64_t p) { return mesh.point_piece(p); }, "ppvt");
  app.p_shr = rt::partition_by_color(
      forest, app.all_shared, app.pieces,
      [mesh](uint64_t p) { return mesh.point_piece(p); }, "pshr");

  // Ghosts: piece i > 0 reads the shared column at its left edge, owned
  // by piece i-1.
  {
    const rt::IndexSpace& shared_is = forest.region(app.all_shared).ispace;
    std::vector<rt::IndexSpace> subs;
    subs.reserve(app.pieces);
    for (uint64_t i = 0; i < app.pieces; ++i) {
      support::IntervalSet pts;
      if (i > 0) {
        const uint64_t px = i * mc.zones_x;
        const uint64_t lo = mesh.point_id(px, 0);
        pts = support::IntervalSet::range(lo, lo + mesh.points_y_total());
      }
      subs.push_back(shared_is.subspace(
          pts.set_intersect(shared_is.points())));
    }
    app.p_gst = forest.create_partition(app.all_shared, std::move(subs),
                                        /*disjoint=*/false,
                                        /*complete=*/false, "pgst");
  }

  // --- program ---------------------------------------------------------
  ir::ProgramBuilder b(forest, "pennant");
  using P = rt::Privilege;
  using B = ir::ProgramBuilder;

  app.s_dt = b.scalar("dt", config.dt_init);
  app.s_dtrec = b.scalar("dtrec", config.dt_max);

  const rt::FieldId zm = app.f_zm, ze = app.f_ze, zr = app.f_zr,
                    zp = app.f_zp, zvol = app.f_zvol;
  const rt::FieldId px = app.f_px, py = app.f_py, pu = app.f_pu,
                    pv = app.f_pv, pfx = app.f_pfx, pfy = app.f_pfy,
                    pmass = app.f_pmass;
  const double gamma = config.gamma;
  const double cfl = config.cfl;
  const double dt_max = config.dt_max;
  const double zone_area = mc.dx * mc.dy;

  ir::TaskId t_init_zones = b.task(
      "init_zones",
      {{P::kWriteDiscard, rt::ReduceOp::kSum, {zm, ze, zr, zp, zvol}}},
      800, 0.5 * config.ns_per_zone,
      [zm, ze, zr, zp, zvol, zone_area](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t z) {
          const double rho = 1.0 + 0.2 * hash01(z * 5 + 1);
          ctx.write_f64(0, zr, z, rho);
          ctx.write_f64(0, zm, z, rho * zone_area);
          ctx.write_f64(0, ze, z, 1.0 + 0.5 * hash01(z * 9 + 4));
          ctx.write_f64(0, zp, z, 0.0);
          ctx.write_f64(0, zvol, z, zone_area);
        });
      });

  ir::TaskId t_init_points = b.task(
      "init_points",
      {{P::kWriteDiscard, rt::ReduceOp::kSum,
        {px, py, pu, pv, pfx, pfy, pmass}}},
      800, 0.5 * config.ns_per_point,
      [mesh, px, py, pu, pv, pfx, pfy, pmass,
       zone_area](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t p) {
          ctx.write_f64(0, px, p, mesh.point_x(p));
          ctx.write_f64(0, py, p, mesh.point_y(p));
          ctx.write_f64(0, pu, p, 0.0);
          ctx.write_f64(0, pv, p, 0.0);
          ctx.write_f64(0, pfx, p, 0.0);
          ctx.write_f64(0, pfy, p, 0.0);
          ctx.write_f64(0, pmass, p, zone_area);  // uniform lumped mass
        });
      });

  ir::TaskId t_reset = b.task(
      "reset_forces", {{P::kReadWrite, rt::ReduceOp::kSum, {pfx, pfy}}},
      500, 0.2 * config.ns_per_point,
      [pfx, pfy](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t p) {
          ctx.write_f64(0, pfx, p, 0.0);
          ctx.write_f64(0, pfy, p, 0.0);
        });
      });

  // Volumes (shoelace over the corner coordinates), EOS pressure, and
  // corner forces reduced into the points.
  ir::TaskId t_forces = b.task(
      "calc_forces",
      {{P::kReadWrite, rt::ReduceOp::kSum, {zp, zvol, zr}},
       {P::kReadOnly, rt::ReduceOp::kSum, {zm, ze}},
       {P::kReadOnly, rt::ReduceOp::kSum, {px, py}},   // private coords
       {P::kReadOnly, rt::ReduceOp::kSum, {px, py}},   // owned shared
       {P::kReadOnly, rt::ReduceOp::kSum, {px, py}},   // ghosts
       {P::kReadWrite, rt::ReduceOp::kSum, {pfx, pfy}},  // private forces
       {P::kReduce, rt::ReduceOp::kSum, {pfx, pfy}},     // owned shared
       {P::kReduce, rt::ReduceOp::kSum, {pfx, pfy}}},    // ghosts
      3000, config.ns_per_zone,
      [mesh, gamma, zm, ze, zr, zp, zvol, px, py, pfx,
       pfy](ir::TaskContext& ctx) {
        auto coord = [&](uint64_t p, rt::FieldId f) {
          for (size_t k : {size_t{2}, size_t{3}, size_t{4}}) {
            if (ctx.param_domain(k).contains(p)) {
              return ctx.read_f64(k, f, p);
            }
          }
          CR_CHECK_MSG(false, "point not covered");
          return 0.0;
        };
        auto deposit = [&](uint64_t p, double fx, double fy) {
          if (ctx.param_domain(5).contains(p)) {
            ctx.write_f64(5, pfx, p, ctx.read_f64(5, pfx, p) + fx);
            ctx.write_f64(5, pfy, p, ctx.read_f64(5, pfy, p) + fy);
          } else if (ctx.param_domain(6).contains(p)) {
            ctx.reduce_f64(6, pfx, p, fx);
            ctx.reduce_f64(6, pfy, p, fy);
          } else {
            ctx.reduce_f64(7, pfx, p, fx);
            ctx.reduce_f64(7, pfy, p, fy);
          }
        };
        ctx.domain().points().for_each_point([&](uint64_t z) {
          uint64_t c[4];
          mesh.zone_points(z, c);
          double x[4], y[4];
          for (int k = 0; k < 4; ++k) {
            x[k] = coord(c[k], px);
            y[k] = coord(c[k], py);
          }
          // Shoelace area (counterclockwise corners).
          double area = 0;
          for (int k = 0; k < 4; ++k) {
            const int n = (k + 1) % 4;
            area += x[k] * y[n] - x[n] * y[k];
          }
          area *= 0.5;
          const double vol = std::max(area, 1e-12);
          const double rho = ctx.read_f64(1, zm, z) / vol;
          const double p = (gamma - 1.0) * rho * ctx.read_f64(1, ze, z);
          ctx.write_f64(0, zvol, z, vol);
          ctx.write_f64(0, zr, z, rho);
          ctx.write_f64(0, zp, z, p);
          // Corner forces toward the centroid, scaled by pressure; they
          // sum to zero per zone (momentum conservation).
          const double cx = (x[0] + x[1] + x[2] + x[3]) * 0.25;
          const double cy = (y[0] + y[1] + y[2] + y[3]) * 0.25;
          for (int k = 0; k < 4; ++k) {
            deposit(c[k], p * (x[k] - cx), p * (y[k] - cy));
          }
        });
      });

  ir::TaskId t_adv = b.task(
      "adv_points",
      {{P::kReadWrite, rt::ReduceOp::kSum, {pu, pv, px, py}},
       {P::kReadOnly, rt::ReduceOp::kSum, {pfx, pfy, pmass}}},
      1500, config.ns_per_point,
      [px, py, pu, pv, pfx, pfy, pmass](ir::TaskContext& ctx) {
        const double dt = ctx.scalar(0);
        ctx.domain().points().for_each_point([&](uint64_t p) {
          const double m = ctx.read_f64(1, pmass, p);
          const double u =
              ctx.read_f64(0, pu, p) + dt * ctx.read_f64(1, pfx, p) / m;
          const double v =
              ctx.read_f64(0, pv, p) + dt * ctx.read_f64(1, pfy, p) / m;
          ctx.write_f64(0, pu, p, u);
          ctx.write_f64(0, pv, p, v);
          ctx.write_f64(0, px, p, ctx.read_f64(0, px, p) + dt * u);
          ctx.write_f64(0, py, p, ctx.read_f64(0, py, p) + dt * v);
        });
      });

  ir::TaskId t_calc_dt = b.task(
      "calc_dt", {{P::kReadOnly, rt::ReduceOp::kSum, {zvol, zp, zr}}},
      1200, 0.4 * config.ns_per_zone,
      [zvol, zp, zr, gamma, cfl](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t z) {
          const double vol = ctx.read_f64(0, zvol, z);
          const double sound = std::sqrt(
              gamma * std::max(ctx.read_f64(0, zp, z), 1e-12) /
              std::max(ctx.read_f64(0, zr, z), 1e-12));
          ctx.reduce_scalar(cfl * std::sqrt(vol) / (sound + 1e-12));
        });
      });

  b.index_launch(t_init_zones, app.pieces,
                 {B::arg(app.p_zones, P::kWriteDiscard,
                         {zm, ze, zr, zp, zvol})});
  b.index_launch(t_init_points, app.pieces,
                 {B::arg(app.p_pvt, P::kWriteDiscard,
                         {px, py, pu, pv, pfx, pfy, pmass})});
  b.index_launch(t_init_points, app.pieces,
                 {B::arg(app.p_shr, P::kWriteDiscard,
                         {px, py, pu, pv, pfx, pfy, pmass})});
  b.begin_for_time(config.steps);
  b.index_launch(t_reset, app.pieces,
                 {B::arg(app.p_pvt, P::kReadWrite, {pfx, pfy})});
  b.index_launch(t_reset, app.pieces,
                 {B::arg(app.p_shr, P::kReadWrite, {pfx, pfy})});
  b.index_launch(t_forces, app.pieces,
                 {B::arg(app.p_zones, P::kReadWrite, {zp, zvol, zr}),
                  B::arg(app.p_zones, P::kReadOnly, {zm, ze}),
                  B::arg(app.p_pvt, P::kReadOnly, {px, py}),
                  B::arg(app.p_shr, P::kReadOnly, {px, py}),
                  B::arg(app.p_gst, P::kReadOnly, {px, py}),
                  B::arg(app.p_pvt, P::kReadWrite, {pfx, pfy}),
                  B::arg(app.p_shr, P::kReduce, {pfx, pfy},
                         rt::ReduceOp::kSum),
                  B::arg(app.p_gst, P::kReduce, {pfx, pfy},
                         rt::ReduceOp::kSum)});
  b.index_launch(t_adv, app.pieces,
                 {B::arg(app.p_pvt, P::kReadWrite, {pu, pv, px, py}),
                  B::arg(app.p_pvt, P::kReadOnly, {pfx, pfy, pmass})},
                 {app.s_dt});
  b.index_launch(t_adv, app.pieces,
                 {B::arg(app.p_shr, P::kReadWrite, {pu, pv, px, py}),
                  B::arg(app.p_shr, P::kReadOnly, {pfx, pfy, pmass})},
                 {app.s_dt});
  b.index_launch_red(t_calc_dt, app.pieces,
                     {B::arg(app.p_zones, P::kReadOnly, {zvol, zp, zr})},
                     {app.s_dtrec, rt::ReduceOp::kMin});
  b.scalar_op({app.s_dtrec, app.s_dt}, {app.s_dt},
              [dt_max](const std::vector<double>& in,
                       std::vector<double>& out) {
                // dt grows at most 20% per cycle and never exceeds the
                // stability candidate or the configured maximum.
                const double dtrec = in[1];
                const double dt_old = in[0];
                out[0] = std::min({dt_max, dtrec, 1.2 * dt_old});
              },
              "dt_update");
  b.end_for_time();
  app.program = b.finish();
  return app;
}

sim::Time run_mpi_baseline(const Config& config, bool rank_per_node,
                           const exec::CostModel& cost,
                           const Noise& noise) {
  const uint32_t cores = 12;
  BspConfig bsp;
  bsp.nodes = config.nodes;
  bsp.ranks_per_node = rank_per_node ? 1 : cores;
  bsp.cores_per_node = cores;
  bsp.iterations = config.steps;
  const uint32_t ranks = bsp.nodes * bsp.ranks_per_node;

  // Work per rank per cycle: all zone and point loops of the cycle.
  const double zones_per_rank =
      static_cast<double>(config.pieces_per_node) *
      config.zones_x_per_piece * config.zones_y * config.nodes / ranks;
  // Weight calibrated so 12 reference cores match the Regent kernel
  // chain on 11 compute cores (the runtime-core gap of §5.3).
  const double cycle_ns =
      zones_per_rank * (config.ns_per_zone * 1.47 + config.ns_per_point);
  const double base = rank_per_node ? cycle_ns / cores : cycle_ns;
  bsp.compute_ns = [base, noise](uint32_t r, uint64_t it) {
    return base * noise_factor(r * 1315423911ull + it * 2654435761ull,
                               noise);
  };
  // OpenMP forks/joins several parallel loops per cycle.
  bsp.rank_overhead_ns = rank_per_node ? 90000 : 2500;

  // 1D strip decomposition: exchange boundary point columns with both
  // x-neighbors (6 fields per point).
  const uint64_t col_bytes = (config.zones_y + 1) * 6 *
                             config.point_virtual_bytes;
  bsp.sends = [ranks, col_bytes](uint32_t r) {
    std::vector<BspMessage> out;
    if (r > 0) out.push_back({r - 1, col_bytes});
    if (r + 1 < ranks) out.push_back({r + 1, col_bytes});
    return out;
  };
  // The reference's dt reduction is a *blocking* MPI_Allreduce.
  bsp.allreduce_per_iteration = true;
  return run_bsp(bsp, cost);
}

}  // namespace cr::apps::pennant
