// 2D mesh for the PENNANT proxy (paper §5.3): quadrilateral zones over a
// rectangular point lattice, split into vertical piece strips (one task
// per piece). Point columns on a strip boundary are *shared* between the
// two adjacent pieces (owned by the left one); everything else is
// private — the private/shared/ghost structure the hierarchical region
// tree exploits.
//
// PENNANT proper reads an unstructured polygonal mesh; its standard test
// problems (Sedov, Leblanc) run on exactly this kind of rectangular
// quad mesh, and the communication structure (boundary point exchange +
// corner-force reductions) is identical, which is what control
// replication cares about.
#pragma once

#include <cstdint>

namespace cr::apps::pennant {

struct MeshConfig {
  uint64_t zones_x = 16;  // zones per piece in x
  uint64_t zones_y = 16;  // zones in y (full height)
  uint64_t pieces = 2;
  double dx = 1.0;
  double dy = 1.0;
};

struct Mesh {
  MeshConfig config;

  uint64_t zones_x_total() const { return config.zones_x * config.pieces; }
  uint64_t points_x_total() const { return zones_x_total() + 1; }
  uint64_t points_y_total() const { return config.zones_y + 1; }
  uint64_t num_zones() const { return zones_x_total() * config.zones_y; }
  uint64_t num_points() const {
    return points_x_total() * points_y_total();
  }

  // Ids: zones and points linearized x-major (column-contiguous), so a
  // piece's zones and private points are contiguous id ranges.
  uint64_t zone_id(uint64_t zx, uint64_t zy) const {
    return zx * config.zones_y + zy;
  }
  uint64_t point_id(uint64_t px, uint64_t py) const {
    return px * points_y_total() + py;
  }
  uint64_t zone_piece(uint64_t z) const {
    return (z / config.zones_y) / config.zones_x;
  }
  uint64_t point_px(uint64_t p) const { return p / points_y_total(); }

  // Corner points of a zone, counterclockwise.
  void zone_points(uint64_t z, uint64_t out[4]) const {
    const uint64_t zx = z / config.zones_y;
    const uint64_t zy = z % config.zones_y;
    out[0] = point_id(zx, zy);
    out[1] = point_id(zx + 1, zy);
    out[2] = point_id(zx + 1, zy + 1);
    out[3] = point_id(zx, zy + 1);
  }

  // A point column px is shared iff it is an interior strip boundary.
  bool point_col_shared(uint64_t px) const {
    return px != 0 && px != zones_x_total() &&
           px % config.zones_x == 0;
  }
  // Owner piece of a point: shared columns belong to the left piece, the
  // outer boundary columns to their only adjacent piece.
  uint64_t point_piece(uint64_t p) const {
    const uint64_t px = point_px(p);
    if (px == 0) return 0;
    if (px == zones_x_total()) return config.pieces - 1;
    const uint64_t left = (px - 1) / config.zones_x;
    return point_col_shared(px) ? left : px / config.zones_x;
  }

  double point_x(uint64_t p) const {
    return static_cast<double>(point_px(p)) * config.dx;
  }
  double point_y(uint64_t p) const {
    return static_cast<double>(p % points_y_total()) * config.dy;
  }
};

inline Mesh make_mesh(const MeshConfig& config) { return Mesh{config}; }

}  // namespace cr::apps::pennant
