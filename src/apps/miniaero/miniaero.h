// MiniAero: the Mantevo 3D unstructured-mesh explicit compressible
// Navier-Stokes proxy (paper §5.2), reproduced as an explicit
// finite-volume Euler solver with low-storage RK4 time stepping.
//
// Cells carry 5 conserved variables (density, momentum, energy) in three
// buffers: the solution, the RK stage state, and the residual. Each RK
// stage computes face fluxes (Rusanov) from the stage state of the cell
// and its 6 face neighbors, then advances the stage state; the final
// stage becomes the next solution. Ghost exchanges of the stage state
// happen once per stage — four halo exchanges per timestep, the
// communication pattern that dominates MiniAero.
//
// The cell region uses the paper-§4.5 hierarchical split: cells within
// one layer of their piece's slab boundary are `boundary`, the rest
// `interior` and provably communication-free.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/common/bsp.h"
#include "exec/cost_model.h"
#include "ir/program.h"
#include "rt/runtime.h"

namespace cr::apps::miniaero {

struct Config {
  uint32_t nodes = 1;
  uint32_t pieces_per_node = 2;
  uint64_t cells_x_per_piece = 6;  // slab depth per piece
  uint64_t cells_y = 8;
  uint64_t cells_z = 8;
  uint64_t steps = 2;
  uint32_t rk_stages = 4;
  double dt = 1e-3;
  double gamma = 1.4;
  // Virtual-cost calibration.
  double ns_per_cell = 40.0;  // per cell per stage (flux + update)
  uint32_t state_virtual_bytes = 40;  // 5 doubles per exchanged cell
};

struct App {
  Config config;
  rt::RegionId rc = rt::kNoId;  // cells
  // 5 fields per buffer: [rho, mx, my, mz, energy].
  std::array<rt::FieldId, 5> f_sol{};
  std::array<rt::FieldId, 5> f_stage{};
  std::array<rt::FieldId, 5> f_res{};
  rt::PartitionId top = rt::kNoId;  // interior vs boundary (disjoint)
  rt::RegionId interior = rt::kNoId;
  rt::RegionId boundary = rt::kNoId;
  rt::PartitionId p_int = rt::kNoId;
  rt::PartitionId p_bnd = rt::kNoId;
  rt::PartitionId p_halo = rt::kNoId;  // neighbor boundary layers
  uint64_t pieces = 0;
  rt::GridExtents extents;  // cell grid (x = pieces * cells_x)
  ir::Program program;

  uint64_t cells_per_node() const {
    return config.pieces_per_node * config.cells_x_per_piece *
           config.cells_y * config.cells_z;
  }
};

App build(rt::Runtime& rt, const Config& config);

// MPI+Kokkos references (paper §5.2): rank-per-core and rank-per-node
// configurations. The reference pays a data-layout penalty per cell
// relative to the Legion version (structure slicing, [7] in the paper).
sim::Time run_mpi_baseline(const Config& config, bool rank_per_node,
                           const exec::CostModel& cost,
                           const Noise& noise);

}  // namespace cr::apps::miniaero
