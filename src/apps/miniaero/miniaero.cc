#include "apps/miniaero/miniaero.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "apps/common/bsp.h"
#include "ir/builder.h"
#include "rt/partition.h"
#include "support/check.h"

namespace cr::apps::miniaero {

namespace {

double hash01(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// Conserved state and the Euler flux in direction d with Rusanov
// dissipation.
struct State {
  double rho, mx, my, mz, en;
};

double pressure(const State& u, double gamma) {
  const double ke =
      0.5 * (u.mx * u.mx + u.my * u.my + u.mz * u.mz) / u.rho;
  return (gamma - 1.0) * (u.en - ke);
}

void rusanov_flux(const State& a, const State& b, int d, double gamma,
                  double out[5]) {
  auto mom = [](const State& u, int k) {
    return k == 0 ? u.mx : (k == 1 ? u.my : u.mz);
  };
  auto flux = [&](const State& u, double f[5]) {
    const double p = pressure(u, gamma);
    const double vd = mom(u, d) / u.rho;
    f[0] = mom(u, d);
    f[1] = u.mx * vd + (d == 0 ? p : 0.0);
    f[2] = u.my * vd + (d == 1 ? p : 0.0);
    f[3] = u.mz * vd + (d == 2 ? p : 0.0);
    f[4] = (u.en + p) * vd;
  };
  double fa[5], fb[5];
  flux(a, fa);
  flux(b, fb);
  const double ca =
      std::sqrt(gamma * std::max(pressure(a, gamma), 1e-12) / a.rho);
  const double cb =
      std::sqrt(gamma * std::max(pressure(b, gamma), 1e-12) / b.rho);
  const double lam = std::max(std::abs(mom(a, d) / a.rho) + ca,
                              std::abs(mom(b, d) / b.rho) + cb);
  const double ub[5] = {b.rho, b.mx, b.my, b.mz, b.en};
  const double ua[5] = {a.rho, a.mx, a.my, a.mz, a.en};
  for (int k = 0; k < 5; ++k) {
    out[k] = 0.5 * (fa[k] + fb[k]) - 0.5 * lam * (ub[k] - ua[k]);
  }
}

}  // namespace

App build(rt::Runtime& rt, const Config& config) {
  App app;
  app.config = config;
  app.pieces = static_cast<uint64_t>(config.nodes) * config.pieces_per_node;
  const uint64_t nx = app.pieces * config.cells_x_per_piece;
  const uint64_t ny = config.cells_y, nz = config.cells_z;
  app.extents = rt::GridExtents::d3(nx, ny, nz);
  const rt::GridExtents ext = app.extents;
  const uint64_t cx = config.cells_x_per_piece;
  CR_CHECK_MSG(cx >= 2, "pieces need at least two cell layers");

  rt::RegionForest& forest = rt.forest();
  auto fs = std::make_shared<rt::FieldSpace>();
  const char* names[5] = {"rho", "mx", "my", "mz", "en"};
  for (int k = 0; k < 5; ++k) {
    app.f_sol[k] = fs->add_field(std::string("sol_") + names[k]);
  }
  for (int k = 0; k < 5; ++k) {
    // The stage state is what halo exchanges move; its virtual width
    // models the paper's 5-variable cell payload.
    app.f_stage[k] = fs->add_field(std::string("stg_") + names[k],
                                   rt::FieldType::kF64,
                                   config.state_virtual_bytes / 5);
  }
  for (int k = 0; k < 5; ++k) {
    app.f_res[k] = fs->add_field(std::string("res_") + names[k]);
  }
  app.rc = forest.create_region(rt::IndexSpace::grid(ext), fs, "cells");

  // Hierarchical split: boundary = cells within one layer of a slab
  // edge in x.
  auto piece_of = [cx](int64_t x) {
    return static_cast<uint64_t>(x) / cx;
  };
  auto is_interior = [cx](int64_t x) {
    const int64_t lx = x % static_cast<int64_t>(cx);
    return lx >= 1 && lx < static_cast<int64_t>(cx) - 1;
  };
  app.top = rt::partition_by_color(
      forest, app.rc, 2,
      [ext, is_interior](uint64_t id) {
        int64_t x, y, z;
        ext.delinearize(id, x, y, z);
        return is_interior(x) ? 0u : 1u;
      },
      "int_v_bnd");
  app.interior = forest.subregion(app.top, 0);
  app.boundary = forest.subregion(app.top, 1);
  app.p_int = rt::partition_by_color(
      forest, app.interior, app.pieces,
      [ext, piece_of](uint64_t id) {
        int64_t x, y, z;
        ext.delinearize(id, x, y, z);
        return piece_of(x);
      },
      "aint");
  app.p_bnd = rt::partition_by_color(
      forest, app.boundary, app.pieces,
      [ext, piece_of](uint64_t id) {
        int64_t x, y, z;
        ext.delinearize(id, x, y, z);
        return piece_of(x);
      },
      "abnd");
  // Halo: the face layer of each neighboring slab.
  {
    const rt::IndexSpace& bnd_is = forest.region(app.boundary).ispace;
    std::vector<rt::IndexSpace> subs;
    for (uint64_t p = 0; p < app.pieces; ++p) {
      support::IntervalSet pts;
      if (p > 0) {
        const int64_t x = static_cast<int64_t>(p * cx) - 1;
        pts = pts.set_union(
            ext.rect_ids(rt::Rect::d3(x, 0, 0, x + 1,
                                      static_cast<int64_t>(ny),
                                      static_cast<int64_t>(nz))));
      }
      if (p + 1 < app.pieces) {
        const int64_t x = static_cast<int64_t>((p + 1) * cx);
        pts = pts.set_union(
            ext.rect_ids(rt::Rect::d3(x, 0, 0, x + 1,
                                      static_cast<int64_t>(ny),
                                      static_cast<int64_t>(nz))));
      }
      subs.push_back(bnd_is.subspace(
          pts.set_intersect(bnd_is.points())));
    }
    app.p_halo = forest.create_partition(app.boundary, std::move(subs),
                                         /*disjoint=*/false,
                                         /*complete=*/false, "ahalo");
  }

  // --- program ---------------------------------------------------------
  ir::ProgramBuilder b(forest, "miniaero");
  using P = rt::Privilege;
  using B = ir::ProgramBuilder;

  const auto f_sol = app.f_sol;
  const auto f_stage = app.f_stage;
  const auto f_res = app.f_res;
  const double gamma = config.gamma;

  std::vector<rt::FieldId> sol_v(f_sol.begin(), f_sol.end());
  std::vector<rt::FieldId> stage_v(f_stage.begin(), f_stage.end());
  std::vector<rt::FieldId> res_v(f_res.begin(), f_res.end());
  std::vector<rt::FieldId> sol_stage_v = sol_v;
  sol_stage_v.insert(sol_stage_v.end(), stage_v.begin(), stage_v.end());

  // Initialization: a smooth density/energy perturbation at rest.
  ir::TaskId t_init = b.task(
      "init", {{P::kWriteDiscard, rt::ReduceOp::kSum, sol_stage_v}}, 1000,
      0.3 * config.ns_per_cell,
      [ext, f_sol, f_stage](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t id) {
          int64_t x, y, z;
          ext.delinearize(id, x, y, z);
          const double rho =
              1.0 + 0.1 * std::sin(0.35 * static_cast<double>(x + y)) *
                        std::cos(0.21 * static_cast<double>(z));
          const double en = 2.0 + 0.05 * hash01(id * 13 + 7);
          const double vals[5] = {rho, 0.0, 0.0, 0.0, en};
          for (int k = 0; k < 5; ++k) {
            ctx.write_f64(0, f_sol[static_cast<size_t>(k)], id, vals[k]);
            ctx.write_f64(0, f_stage[static_cast<size_t>(k)], id, vals[k]);
          }
        });
      });

  // Residual from face fluxes of the stage state. The reader arguments
  // cover own interior, own boundary, and the neighbors' face layers;
  // out-of-domain neighbors mirror the cell (zero-gradient walls).
  auto make_residual_kernel = [ext, gamma, f_stage, f_res](
                                  size_t first_read_param,
                                  size_t num_read_params) {
    return [ext, gamma, f_stage, f_res, first_read_param,
            num_read_params](ir::TaskContext& ctx) {
      auto load = [&](uint64_t id) {
        for (size_t k = first_read_param;
             k < first_read_param + num_read_params; ++k) {
          if (ctx.param_domain(k).contains(id)) {
            return State{ctx.read_f64(k, f_stage[0], id),
                         ctx.read_f64(k, f_stage[1], id),
                         ctx.read_f64(k, f_stage[2], id),
                         ctx.read_f64(k, f_stage[3], id),
                         ctx.read_f64(k, f_stage[4], id)};
          }
        }
        CR_CHECK_MSG(false, "cell not covered by any stage argument");
        return State{};
      };
      const int64_t n[3] = {static_cast<int64_t>(ext.n[0]),
                            static_cast<int64_t>(ext.n[1]),
                            static_cast<int64_t>(ext.n[2])};
      ctx.domain().points().for_each_point([&](uint64_t id) {
        int64_t c[3];
        ext.delinearize(id, c[0], c[1], c[2]);
        const State uc = load(id);
        double res[5] = {0, 0, 0, 0, 0};
        for (int d = 0; d < 3; ++d) {
          for (int s = -1; s <= 1; s += 2) {
            int64_t nb[3] = {c[0], c[1], c[2]};
            nb[d] += s;
            State un = uc;  // zero-gradient wall
            if (nb[d] >= 0 && nb[d] < n[d]) {
              un = load(ext.linearize(nb[0], nb[1], nb[2]));
            }
            double f[5];
            // Outward flux through this face: sign s picks direction.
            if (s > 0) {
              rusanov_flux(uc, un, d, gamma, f);
              for (int k = 0; k < 5; ++k) res[k] -= f[k];
            } else {
              rusanov_flux(un, uc, d, gamma, f);
              for (int k = 0; k < 5; ++k) res[k] += f[k];
            }
          }
        }
        for (int k = 0; k < 5; ++k) {
          ctx.write_f64(0, f_res[static_cast<size_t>(k)], id, res[k]);
        }
      });
    };
  };

  ir::TaskId t_res_int = b.task(
      "residual_int",
      {{P::kReadWrite, rt::ReduceOp::kSum, res_v},
       {P::kReadOnly, rt::ReduceOp::kSum, stage_v},   // own interior
       {P::kReadOnly, rt::ReduceOp::kSum, stage_v}},  // own boundary
      3000, config.ns_per_cell, make_residual_kernel(1, 2));
  ir::TaskId t_res_bnd = b.task(
      "residual_bnd",
      {{P::kReadWrite, rt::ReduceOp::kSum, res_v},
       {P::kReadOnly, rt::ReduceOp::kSum, stage_v},   // own boundary
       {P::kReadOnly, rt::ReduceOp::kSum, stage_v},   // own interior
       {P::kReadOnly, rt::ReduceOp::kSum, stage_v}},  // neighbor layers
      3000, config.ns_per_cell, make_residual_kernel(1, 3));

  // Low-storage RK stage: stage = sol + alpha * dt * res.
  struct StageTasks {
    ir::TaskId update;
  };
  std::vector<double> alphas;
  for (uint32_t k = 0; k < config.rk_stages; ++k) {
    alphas.push_back(config.dt /
                     static_cast<double>(config.rk_stages - k));
  }
  auto make_update_kernel = [f_sol, f_stage, f_res](double alpha) {
    return [f_sol, f_stage, f_res, alpha](ir::TaskContext& ctx) {
      ctx.domain().points().for_each_point([&](uint64_t id) {
        for (size_t k = 0; k < 5; ++k) {
          ctx.write_f64(0, f_stage[k], id,
                        ctx.read_f64(1, f_sol[k], id) +
                            alpha * ctx.read_f64(1, f_res[k], id));
        }
      });
    };
  };
  std::vector<ir::TaskId> t_update(config.rk_stages);
  std::vector<rt::FieldId> sol_res_v = sol_v;
  sol_res_v.insert(sol_res_v.end(), res_v.begin(), res_v.end());
  for (uint32_t k = 0; k < config.rk_stages; ++k) {
    t_update[k] = b.task(
        "update_stage" + std::to_string(k),
        {{P::kReadWrite, rt::ReduceOp::kSum, stage_v},
         {P::kReadOnly, rt::ReduceOp::kSum, sol_res_v}},
        1200, 0.3 * config.ns_per_cell, make_update_kernel(alphas[k]));
  }

  // Commit: sol = stage (after the last stage).
  ir::TaskId t_commit = b.task(
      "commit",
      {{P::kReadWrite, rt::ReduceOp::kSum, sol_v},
       {P::kReadOnly, rt::ReduceOp::kSum, stage_v}},
      1000, 0.2 * config.ns_per_cell,
      [f_sol, f_stage](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t id) {
          for (size_t k = 0; k < 5; ++k) {
            ctx.write_f64(0, f_sol[k], id,
                          ctx.read_f64(1, f_stage[k], id));
          }
        });
      });

  b.index_launch(t_init, app.pieces,
                 {B::arg(app.p_int, P::kWriteDiscard, sol_stage_v)});
  b.index_launch(t_init, app.pieces,
                 {B::arg(app.p_bnd, P::kWriteDiscard, sol_stage_v)});
  b.begin_for_time(config.steps);
  for (uint32_t k = 0; k < config.rk_stages; ++k) {
    b.index_launch(t_res_int, app.pieces,
                   {B::arg(app.p_int, P::kReadWrite, res_v),
                    B::arg(app.p_int, P::kReadOnly, stage_v),
                    B::arg(app.p_bnd, P::kReadOnly, stage_v)});
    b.index_launch(t_res_bnd, app.pieces,
                   {B::arg(app.p_bnd, P::kReadWrite, res_v),
                    B::arg(app.p_bnd, P::kReadOnly, stage_v),
                    B::arg(app.p_int, P::kReadOnly, stage_v),
                    B::arg(app.p_halo, P::kReadOnly, stage_v)});
    b.index_launch(t_update[k], app.pieces,
                   {B::arg(app.p_int, P::kReadWrite, stage_v),
                    B::arg(app.p_int, P::kReadOnly, sol_res_v)});
    b.index_launch(t_update[k], app.pieces,
                   {B::arg(app.p_bnd, P::kReadWrite, stage_v),
                    B::arg(app.p_bnd, P::kReadOnly, sol_res_v)});
  }
  b.index_launch(t_commit, app.pieces,
                 {B::arg(app.p_int, P::kReadWrite, sol_v),
                  B::arg(app.p_int, P::kReadOnly, stage_v)});
  b.index_launch(t_commit, app.pieces,
                 {B::arg(app.p_bnd, P::kReadWrite, sol_v),
                  B::arg(app.p_bnd, P::kReadOnly, stage_v)});
  b.end_for_time();
  app.program = b.finish();
  return app;
}

sim::Time run_mpi_baseline(const Config& config, bool rank_per_node,
                           const exec::CostModel& cost,
                           const Noise& noise) {
  const uint32_t cores = 12;
  BspConfig bsp;
  bsp.nodes = config.nodes;
  bsp.ranks_per_node = rank_per_node ? 1 : cores;
  bsp.cores_per_node = cores;
  // Each RK stage is a communication epoch.
  bsp.iterations = config.steps * config.rk_stages;
  const uint32_t ranks = bsp.nodes * bsp.ranks_per_node;

  // The reference pays ~1.3x per cell for its data layout relative to
  // the Legion version (paper §5.2 / [7]).
  const double layout_penalty = 1.3;
  const double cells_per_node =
      static_cast<double>(config.pieces_per_node) *
      config.cells_x_per_piece * config.cells_y * config.cells_z;
  const double cells_per_rank = cells_per_node * config.nodes / ranks;
  // 1.3x for the residual+update kernel pair (same as the Regent
  // execution), then the layout penalty on top.
  const double stage_ns =
      cells_per_rank * config.ns_per_cell * 1.3 * layout_penalty;
  const double base = rank_per_node ? stage_ns / cores : stage_ns;
  bsp.compute_ns = [base, noise](uint32_t r, uint64_t it) {
    return base * noise_factor(r * 2654435761ull + it * 40503ull, noise);
  };
  bsp.rank_overhead_ns = rank_per_node ? 35000 : 3000;

  // 1D slab decomposition in x: exchange one face layer (5 variables)
  // with both neighbors each stage.
  const uint64_t face_bytes =
      config.cells_y * config.cells_z * config.state_virtual_bytes;
  bsp.sends = [ranks, face_bytes](uint32_t r) {
    std::vector<BspMessage> out;
    if (r > 0) out.push_back({r - 1, face_bytes});
    if (r + 1 < ranks) out.push_back({r + 1, face_bytes});
    return out;
  };
  return run_bsp(bsp, cost);
}

}  // namespace cr::apps::miniaero
