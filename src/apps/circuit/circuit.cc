#include "apps/circuit/circuit.h"

#include <memory>

#include "ir/builder.h"
#include "rt/partition.h"
#include "support/check.h"

namespace cr::apps::circuit {

namespace {

// Deterministic per-id parameter values (pure functions of the id, so
// kernels stay pure and all executors agree).
double hash01(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

App build(rt::Runtime& rt, const Config& config) {
  App app;
  app.config = config;
  app.pieces = static_cast<uint64_t>(config.nodes) * config.pieces_per_node;

  GraphConfig gc;
  gc.pieces = app.pieces;
  gc.nodes_per_piece = config.nodes_per_piece;
  gc.wires_per_piece = config.wires_per_piece;
  gc.pct_cross = config.pct_cross;
  gc.window = config.window;
  gc.seed = config.seed;
  app.graph = generate_graph(gc);
  auto graph = std::make_shared<Graph>(app.graph);

  rt::RegionForest& forest = rt.forest();

  // --- regions ---------------------------------------------------------
  auto nfs = std::make_shared<rt::FieldSpace>();
  app.f_voltage = nfs->add_field("voltage", rt::FieldType::kF64,
                                 config.voltage_virtual_bytes);
  app.f_charge = nfs->add_field("charge");
  app.f_cap = nfs->add_field("cap");
  app.rn = forest.create_region(
      rt::IndexSpace::dense(app.graph.num_nodes()), nfs, "N");

  auto wfs = std::make_shared<rt::FieldSpace>();
  app.f_current = wfs->add_field("current");
  app.f_res = wfs->add_field("res");
  app.f_in = wfs->add_field("in_ptr", rt::FieldType::kI64);
  app.f_out = wfs->add_field("out_ptr", rt::FieldType::kI64);
  app.rw = forest.create_region(
      rt::IndexSpace::dense(app.graph.num_wires()), wfs, "W");

  // --- partitions ------------------------------------------------------
  const Graph& g = app.graph;
  app.top = rt::partition_by_color(
      forest, app.rn, 2,
      [&g](uint64_t n) { return g.shared[n] ? 1u : 0u; }, "pvg");
  app.all_private = forest.subregion(app.top, 0);
  app.all_shared = forest.subregion(app.top, 1);

  app.p_pvt = rt::partition_by_color(
      forest, app.all_private, app.pieces,
      [&g](uint64_t n) { return g.piece_of_node(n); }, "pvt");
  app.p_shr = rt::partition_by_color(
      forest, app.all_shared, app.pieces,
      [&g](uint64_t n) { return g.piece_of_node(n); }, "shr");

  // Ghosts: shared nodes of *other* pieces touched by my wires.
  {
    std::vector<std::vector<uint64_t>> ghost_pts(app.pieces);
    for (uint64_t w = 0; w < g.num_wires(); ++w) {
      const uint64_t piece = g.piece_of_wire(w);
      for (uint64_t end : {g.in_node[w], g.out_node[w]}) {
        if (g.shared[end] && g.piece_of_node(end) != piece) {
          ghost_pts[piece].push_back(end);
        }
      }
    }
    const rt::IndexSpace& shared_is =
        forest.region(app.all_shared).ispace;
    std::vector<rt::IndexSpace> subs;
    subs.reserve(app.pieces);
    for (auto& pts : ghost_pts) {
      subs.push_back(shared_is.subspace(
          support::IntervalSet::from_points(std::move(pts))));
    }
    app.p_gst = forest.create_partition(app.all_shared, std::move(subs),
                                        /*disjoint=*/false,
                                        /*complete=*/false, "gst");
  }

  app.p_wires = rt::partition_by_color(
      forest, app.rw, app.pieces,
      [&g](uint64_t w) { return g.piece_of_wire(w); }, "wires");

  // --- program ---------------------------------------------------------
  ir::ProgramBuilder b(forest, "circuit");
  using P = rt::Privilege;
  using B = ir::ProgramBuilder;

  const rt::FieldId fV = app.f_voltage, fQ = app.f_charge, fC = app.f_cap;
  const rt::FieldId fI = app.f_current, fR = app.f_res;
  const rt::FieldId fIn = app.f_in, fOut = app.f_out;
  const double dt = config.dt;
  const double leakage = config.leakage;

  ir::TaskId t_init_wires = b.task(
      "init_wires",
      {{P::kWriteDiscard, rt::ReduceOp::kSum, {fI, fR, fIn, fOut}}}, 800,
      0.5 * config.ns_per_wire,
      [graph, fI, fR, fIn, fOut](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t w) {
          ctx.write_i64(0, fIn, w,
                        static_cast<int64_t>(graph->in_node[w]));
          ctx.write_i64(0, fOut, w,
                        static_cast<int64_t>(graph->out_node[w]));
          ctx.write_f64(0, fR, w, 1.0 + 4.0 * hash01(w * 3 + 1));
          ctx.write_f64(0, fI, w, 0.0);
        });
      });

  ir::TaskId t_init_nodes = b.task(
      "init_nodes", {{P::kWriteDiscard, rt::ReduceOp::kSum, {fV, fQ, fC}}},
      800, 0.5 * config.ns_per_node,
      [fV, fQ, fC](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t n) {
          ctx.write_f64(0, fV, n, 2.0 * hash01(n * 7 + 3) - 1.0);
          ctx.write_f64(0, fQ, n, 0.0);
          ctx.write_f64(0, fC, n, 0.5 + hash01(n * 11 + 5));
        });
      });

  // calc_new_currents: I = (V_in - V_out) / R.
  ir::TaskId t_cnc = b.task(
      "calc_new_currents",
      {{P::kReadWrite, rt::ReduceOp::kSum, {fI}},
       {P::kReadOnly, rt::ReduceOp::kSum, {fR, fIn, fOut}},
       {P::kReadOnly, rt::ReduceOp::kSum, {fV}},    // private nodes
       {P::kReadOnly, rt::ReduceOp::kSum, {fV}},    // owned shared
       {P::kReadOnly, rt::ReduceOp::kSum, {fV}}},   // ghosts
      2000, config.ns_per_wire,
      [fV, fI, fR, fIn, fOut](ir::TaskContext& ctx) {
        auto voltage = [&](uint64_t n) {
          for (size_t k : {size_t{2}, size_t{3}, size_t{4}}) {
            if (ctx.param_domain(k).contains(n)) {
              return ctx.read_f64(k, fV, n);
            }
          }
          CR_CHECK_MSG(false, "node not covered by any voltage argument");
          return 0.0;
        };
        ctx.domain().points().for_each_point([&](uint64_t w) {
          const auto in = static_cast<uint64_t>(ctx.read_i64(1, fIn, w));
          const auto out = static_cast<uint64_t>(ctx.read_i64(1, fOut, w));
          const double r = ctx.read_f64(1, fR, w);
          ctx.write_f64(0, fI, w, (voltage(in) - voltage(out)) / r);
        });
      });

  // distribute_charge: deposit -I*dt at in, +I*dt at out (reductions
  // into shared/ghost nodes).
  ir::TaskId t_dc = b.task(
      "distribute_charge",
      {{P::kReadOnly, rt::ReduceOp::kSum, {fI, fIn, fOut}},
       {P::kReadWrite, rt::ReduceOp::kSum, {fQ}},             // private
       {P::kReduce, rt::ReduceOp::kSum, {fQ}},                // owned shared
       {P::kReduce, rt::ReduceOp::kSum, {fQ}}},               // ghosts
      2000, 0.6 * config.ns_per_wire,
      [fI, fIn, fOut, fQ, dt](ir::TaskContext& ctx) {
        auto deposit = [&](uint64_t n, double dq) {
          if (ctx.param_domain(1).contains(n)) {
            ctx.write_f64(1, fQ, n, ctx.read_f64(1, fQ, n) + dq);
          } else if (ctx.param_domain(2).contains(n)) {
            ctx.reduce_f64(2, fQ, n, dq);
          } else {
            ctx.reduce_f64(3, fQ, n, dq);
          }
        };
        ctx.domain().points().for_each_point([&](uint64_t w) {
          const double dq =
              dt * ctx.read_f64(0, fI, w);
          deposit(static_cast<uint64_t>(ctx.read_i64(0, fIn, w)), -dq);
          deposit(static_cast<uint64_t>(ctx.read_i64(0, fOut, w)), dq);
        });
      });

  // update_voltages: V += q/C, leak, reset charge.
  ir::TaskId t_uv = b.task(
      "update_voltages",
      {{P::kReadWrite, rt::ReduceOp::kSum, {fV, fQ, fC}}}, 1500,
      config.ns_per_node,
      [fV, fQ, fC, leakage](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t n) {
          const double v =
              ctx.read_f64(0, fV, n) +
              ctx.read_f64(0, fQ, n) / ctx.read_f64(0, fC, n);
          ctx.write_f64(0, fV, n, v * (1.0 - leakage));
          ctx.write_f64(0, fQ, n, 0.0);
        });
      });

  b.index_launch(t_init_wires, app.pieces,
                 {B::arg(app.p_wires, P::kWriteDiscard,
                         {fI, fR, fIn, fOut})});
  b.index_launch(t_init_nodes, app.pieces,
                 {B::arg(app.p_pvt, P::kWriteDiscard, {fV, fQ, fC})});
  b.index_launch(t_init_nodes, app.pieces,
                 {B::arg(app.p_shr, P::kWriteDiscard, {fV, fQ, fC})});
  b.begin_for_time(config.steps);
  b.index_launch(t_cnc, app.pieces,
                 {B::arg(app.p_wires, P::kReadWrite, {fI}),
                  B::arg(app.p_wires, P::kReadOnly, {fR, fIn, fOut}),
                  B::arg(app.p_pvt, P::kReadOnly, {fV}),
                  B::arg(app.p_shr, P::kReadOnly, {fV}),
                  B::arg(app.p_gst, P::kReadOnly, {fV})});
  b.index_launch(t_dc, app.pieces,
                 {B::arg(app.p_wires, P::kReadOnly, {fI, fIn, fOut}),
                  B::arg(app.p_pvt, P::kReadWrite, {fQ}),
                  B::arg(app.p_shr, P::kReduce, {fQ}, rt::ReduceOp::kSum),
                  B::arg(app.p_gst, P::kReduce, {fQ}, rt::ReduceOp::kSum)});
  b.index_launch(t_uv, app.pieces,
                 {B::arg(app.p_pvt, P::kReadWrite, {fV, fQ, fC})});
  b.index_launch(t_uv, app.pieces,
                 {B::arg(app.p_shr, P::kReadWrite, {fV, fQ, fC})});
  b.end_for_time();
  app.program = b.finish();
  return app;
}

}  // namespace cr::apps::circuit
