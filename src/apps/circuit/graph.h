// Random sparse circuit graph generator (paper §5.4: "a randomly
// generated sparse graph with 100k edges and 25k vertices per compute
// node").
//
// Nodes and wires are grouped into pieces (one task per piece). Most
// wires stay within their piece; a configurable fraction crosses to
// pieces within a window, giving the O(1)-neighbors sparsity that makes
// the intersection optimization linear (paper §3.3). A node touched by
// any cross-piece wire is *shared*, the rest are *private* — the
// hierarchical private/ghost structure of paper §4.5.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace cr::apps::circuit {

struct GraphConfig {
  uint64_t pieces = 4;
  uint64_t nodes_per_piece = 64;
  uint64_t wires_per_piece = 256;
  double pct_cross = 0.1;   // fraction of wires leaving their piece
  uint64_t window = 2;      // cross wires reach at most this many pieces
  uint64_t seed = 42;
};

struct Graph {
  GraphConfig config;
  // Wire w (global id) connects in_node[w] -> out_node[w] (node ids).
  std::vector<uint64_t> in_node;
  std::vector<uint64_t> out_node;
  // Per node id: touched by a wire of another piece?
  std::vector<bool> shared;

  uint64_t num_nodes() const {
    return config.pieces * config.nodes_per_piece;
  }
  uint64_t num_wires() const {
    return config.pieces * config.wires_per_piece;
  }
  uint64_t piece_of_node(uint64_t n) const {
    return n / config.nodes_per_piece;
  }
  uint64_t piece_of_wire(uint64_t w) const {
    return w / config.wires_per_piece;
  }
};

Graph generate_graph(const GraphConfig& config);

}  // namespace cr::apps::circuit
