#include "apps/circuit/graph.h"

#include <algorithm>

#include "support/check.h"

namespace cr::apps::circuit {

Graph generate_graph(const GraphConfig& config) {
  CR_CHECK(config.pieces >= 1);
  CR_CHECK(config.nodes_per_piece >= 2);
  Graph g;
  g.config = config;
  const uint64_t wires = g.num_wires();
  g.in_node.resize(wires);
  g.out_node.resize(wires);
  g.shared.assign(g.num_nodes(), false);

  support::Rng rng(config.seed);
  for (uint64_t w = 0; w < wires; ++w) {
    const uint64_t piece = g.piece_of_wire(w);
    const uint64_t base = piece * config.nodes_per_piece;
    // The in-node is always local to the wire's piece.
    g.in_node[w] = base + rng.next_below(config.nodes_per_piece);
    // The out-node is usually local, sometimes in a nearby piece.
    if (config.pieces > 1 && rng.next_bool(config.pct_cross)) {
      const uint64_t lo =
          piece > config.window ? piece - config.window : 0;
      const uint64_t hi =
          std::min(config.pieces - 1, piece + config.window);
      uint64_t other = lo + rng.next_below(hi - lo + 1);
      if (other == piece) other = (piece + 1 <= hi) ? piece + 1 : lo;
      g.out_node[w] = other * config.nodes_per_piece +
                      rng.next_below(config.nodes_per_piece);
      // Both endpoints of a cross wire are shared: the remote node is
      // read/reduced by this piece, and the local node may be involved
      // in ghost exchanges of the remote piece's analysis.
      g.shared[g.in_node[w]] = true;
      g.shared[g.out_node[w]] = true;
    } else {
      g.out_node[w] = base + rng.next_below(config.nodes_per_piece);
      if (g.out_node[w] == g.in_node[w]) {
        g.out_node[w] = base + (g.in_node[w] - base + 1) %
                                   config.nodes_per_piece;
      }
    }
  }
  return g;
}

}  // namespace cr::apps::circuit
