// Circuit: the sparse circuit simulation of paper §5.4, after the Legion
// paper's canonical example.
//
// Each timestep runs three phases over the pieces of a random sparse
// graph:
//   calc_new_currents  — wire currents from endpoint voltage drops;
//   distribute_charge  — deposit +-I*dt into endpoint nodes (region
//                        reductions into shared/ghost nodes, paper §4.3);
//   update_voltages    — V += q/C, leak, reset charge.
//
// The node region uses the hierarchical private/shared split of paper
// §4.5: private nodes provably never communicate; shared nodes are
// exchanged through ghost partitions (voltage reads) and reduction
// copies (charge deposits).
#pragma once

#include <cstdint>

#include "apps/circuit/graph.h"
#include "exec/cost_model.h"
#include "ir/program.h"
#include "rt/runtime.h"

namespace cr::apps::circuit {

struct Config {
  uint32_t nodes = 1;           // machine nodes
  uint32_t pieces_per_node = 4;
  uint64_t nodes_per_piece = 64;
  uint64_t wires_per_piece = 256;
  double pct_cross = 0.1;
  uint64_t window = 2;
  uint64_t steps = 4;
  uint64_t seed = 42;
  double dt = 1e-2;
  double leakage = 0.0;  // 0 keeps sum(V*C) invariant (conservation test)
  // Virtual-cost calibration.
  double ns_per_wire = 10.0;
  double ns_per_node = 4.0;
  uint32_t voltage_virtual_bytes = 8;
};

struct App {
  Config config;
  Graph graph;
  // Regions.
  rt::RegionId rn = rt::kNoId;  // circuit nodes
  rt::RegionId rw = rt::kNoId;  // wires
  // Node fields.
  rt::FieldId f_voltage = 0, f_charge = 0, f_cap = 0;
  // Wire fields.
  rt::FieldId f_current = 0, f_res = 0, f_in = 0, f_out = 0;
  // Partitions.
  rt::PartitionId top = rt::kNoId;     // private vs shared (disjoint)
  rt::RegionId all_private = rt::kNoId;
  rt::RegionId all_shared = rt::kNoId;
  rt::PartitionId p_pvt = rt::kNoId;   // private nodes by piece (disjoint)
  rt::PartitionId p_shr = rt::kNoId;   // owned shared nodes (disjoint)
  rt::PartitionId p_gst = rt::kNoId;   // ghost shared nodes (aliased)
  rt::PartitionId p_wires = rt::kNoId; // wires by piece (disjoint)
  uint64_t pieces = 0;
  ir::Program program;

  uint64_t graph_nodes_per_machine_node() const {
    return config.pieces_per_node * config.nodes_per_piece;
  }
};

App build(rt::Runtime& rt, const Config& config);

// Sum of V*C over all circuit nodes — invariant when leakage is 0.
// Computed from an execution engine's final root data by the tests.

}  // namespace cr::apps::circuit
