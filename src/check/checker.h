// Cross-shard happens-before race checker (paper §3.4, §5).
//
// Control replication claims to insert *exactly enough* copies and
// synchronization for the SPMD program to preserve the implicit
// program's sequential semantics. End-to-end data comparison cannot
// distinguish "correctly synchronized" from "accidentally ordered by
// the simulator's schedule"; this checker can. It takes
//   - the access log recorded during execution,
//   - the happens-before DAG recorded by sim::EventGraph (precondition
//     edges, merges, barrier-generation advances, collective gathers),
// and verifies that every conflicting access pair on overlapping
// points of the same physical location is ordered by the graph in the
// direction the implicit program's dependence relation demands. An
// unordered pair is a race: the report names both sites, their IR
// statements, and the missing edge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/access_log.h"
#include "sim/event_graph.h"

namespace cr::check {

struct CheckStats {
  uint64_t accesses = 0;
  uint64_t hb_nodes = 0;
  uint64_t hb_edges = 0;
  uint64_t pairs_checked = 0;  // conflicting pairs needing an HB order
  uint64_t races = 0;
  std::string to_text() const;
};

struct Race {
  size_t first = 0;   // index into the access log: logically earlier op
  size_t second = 0;  // logically later (equal seq: concurrent) op
  std::string text;   // formatted report
};

struct CheckResult {
  CheckStats stats;
  std::vector<Race> races;
  bool ok() const { return races.empty(); }
  std::string to_text() const;
};

// `program` is the executed (transformed) program, used only to print
// the IR statements of racing accesses.
CheckResult check(const AccessLog& log, const sim::EventGraph& graph,
                  const ir::Program& program);

}  // namespace cr::check
