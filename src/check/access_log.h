// The access log the cross-shard race checker consumes. During an
// instrumented execution the engine appends one Access per (operation,
// region argument, physical location): point-task reads/writes/reduces,
// copy sources and destinations, fills, and the scalar-reduction
// partials traffic behind dynamic collectives. Each access carries
//   - where   : an opaque physical-location key plus the logical
//               (region-root, field) coordinates and touched points,
//   - when    : happens-before anchors — the event uids the operation
//               waits on before starting and the uid of its completion
//               event (the same events the engine wires, so the log is
//               exactly as ordered as the execution, no more),
//   - what    : its position in the implicit program's sequential order
//               (statement-instance sequence + intra-statement index),
//               which is the ground-truth dependence relation the
//               checker validates the synchronization against.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"
#include "rt/physical.h"
#include "support/interval_set.h"

namespace cr::check {

enum class AccessType : uint8_t { kRead, kWrite, kReduce };

inline const char* to_string(AccessType t) {
  switch (t) {
    case AccessType::kRead:
      return "read";
    case AccessType::kWrite:
      return "write";
    case AccessType::kReduce:
      return "reduce";
  }
  return "?";
}

struct Access {
  // Physical location identity: accesses to different buffers can never
  // race even when they cover the same logical points (e.g. a private
  // instance vs a ghost instance of the same subregion).
  uint64_t place = 0;
  // Logical coordinates, for reporting.
  rt::RegionId root = rt::kNoId;
  std::vector<rt::FieldId> fields;
  support::IntervalSet points;

  AccessType type = AccessType::kRead;
  rt::ReduceOp redop = rt::ReduceOp::kSum;  // meaningful for kReduce

  // Happens-before anchors. The operation starts only after every event
  // in start_uids has triggered (uid 0 entries are dropped by the
  // logger); an empty list means it can start immediately. done_uid is
  // the completion event; 0 means complete at the start of time.
  std::vector<uint64_t> start_uids;
  uint64_t done_uid = 0;

  // Implicit-program order: seq numbers statement instances in the
  // order the sequential semantics visits them; sub distinguishes the
  // logically concurrent pieces of one statement (launch color, copy
  // pair). Two accesses with equal (seq, sub) belong to one operation.
  uint64_t seq = 0;
  uint64_t sub = 0;
  uint32_t shard = 0;  // issuing control context (UINT32_MAX = main task)

  const ir::Stmt* stmt = nullptr;  // for report text
  const char* what = "";           // short site label ("task", "copy-dst", ...)
};

struct AccessLog {
  std::vector<Access> accesses;
};

}  // namespace cr::check
