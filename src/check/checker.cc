#include "check/checker.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "ir/printer.h"
#include "support/check.h"

namespace cr::check {

namespace {

bool fields_overlap(const std::vector<rt::FieldId>& a,
                    const std::vector<rt::FieldId>& b) {
  for (rt::FieldId x : a) {
    for (rt::FieldId y : b) {
      if (x == y) return true;
    }
  }
  return false;
}

// Two accesses to one physical location conflict unless both are reads
// or both are folds of one reduction epoch (same operator, commuting).
bool conflicting(const Access& a, const Access& b) {
  if (a.type == AccessType::kRead && b.type == AccessType::kRead) {
    return false;
  }
  if (a.type == AccessType::kReduce && b.type == AccessType::kReduce &&
      a.redop == b.redop) {
    return false;
  }
  if (!fields_overlap(a.fields, b.fields)) return false;
  return a.points.overlaps(b.points);
}

// A conflicting pair, stored with `first` logically earlier. Pairs with
// equal seq are logically concurrent pieces of one statement: no
// direction is demanded, but *some* order must exist.
struct PairCheck {
  size_t first = 0;
  size_t second = 0;
  bool concurrent = false;  // equal seq: either direction satisfies
  bool ordered = false;
};

// One direction of one pair: "does src's completion reach any of dst's
// start anchors". Answered in a batch by a single topological sweep.
struct Query {
  size_t pair = 0;
  size_t src_access = 0;
};

struct Sweep {
  // Dense node ids for every uid mentioned by an edge or an anchor.
  std::unordered_map<uint64_t, uint32_t> ids;
  std::vector<std::pair<uint32_t, uint32_t>> edges;

  uint32_t intern(uint64_t uid) {
    auto [it, inserted] = ids.try_emplace(uid, ids.size());
    return it->second;
  }
};

void set_bit(std::vector<uint64_t>& bits, size_t words, size_t i) {
  if (bits.empty()) bits.assign(words, 0);
  bits[i >> 6] |= uint64_t{1} << (i & 63);
}

bool test_bit(const std::vector<uint64_t>& bits, size_t i) {
  if (bits.empty()) return false;
  return (bits[i >> 6] >> (i & 63)) & 1;
}

void or_into(std::vector<uint64_t>& dst, const std::vector<uint64_t>& src,
             size_t words) {
  if (src.empty()) return;
  if (dst.empty()) dst.assign(words, 0);
  for (size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

std::string uid_list(const std::vector<uint64_t>& uids) {
  std::string s = "{";
  for (size_t i = 0; i < uids.size(); ++i) {
    if (i > 0) s += ", ";
    if (i >= 6) {
      s += "...";
      break;
    }
    s += std::to_string(uids[i]);
  }
  return s + "}";
}

std::string site_text(const Access& a, const ir::Program& program) {
  std::string s = std::string(to_string(a.type)) + " " + a.what + " (seq " +
                  std::to_string(a.seq) + " sub " + std::to_string(a.sub) +
                  ", " +
                  (a.shard == UINT32_MAX ? std::string("main task")
                                         : "shard " + std::to_string(a.shard)) +
                  ")";
  s += "\n      anchors: starts=" + uid_list(a.start_uids) +
       " done=" + std::to_string(a.done_uid);
  if (a.stmt != nullptr) {
    std::string stmt = ir::to_string(*a.stmt, program, 0);
    // Print only the statement's head line (shard bodies are long).
    const size_t nl = stmt.find('\n');
    if (nl != std::string::npos) stmt.resize(nl);
    s += "\n      stmt: " + stmt;
  }
  return s;
}

}  // namespace

std::string CheckStats::to_text() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "accesses %llu; hb graph %llu nodes / %llu edges; "
                "conflicting pairs %llu; races %llu",
                static_cast<unsigned long long>(accesses),
                static_cast<unsigned long long>(hb_nodes),
                static_cast<unsigned long long>(hb_edges),
                static_cast<unsigned long long>(pairs_checked),
                static_cast<unsigned long long>(races));
  return buf;
}

std::string CheckResult::to_text() const {
  std::string s = stats.to_text();
  for (const Race& r : races) {
    s += "\n" + r.text;
  }
  return s;
}

CheckResult check(const AccessLog& log, const sim::EventGraph& graph,
                  const ir::Program& program) {
  CheckResult out;
  out.stats.accesses = log.accesses.size();

  // --- 1. Enumerate conflicting pairs per physical location. ----------
  std::unordered_map<uint64_t, std::vector<size_t>> by_place;
  for (size_t i = 0; i < log.accesses.size(); ++i) {
    by_place[log.accesses[i].place].push_back(i);
  }
  std::vector<PairCheck> pairs;
  for (const auto& [place, ids] : by_place) {
    for (size_t x = 0; x < ids.size(); ++x) {
      const Access& ax = log.accesses[ids[x]];
      for (size_t y = x + 1; y < ids.size(); ++y) {
        const Access& ay = log.accesses[ids[y]];
        // Accesses of one operation (a task's several arguments, a
        // copy's two sides) are internally ordered by construction.
        if (ax.seq == ay.seq && ax.sub == ay.sub) continue;
        if (!conflicting(ax, ay)) continue;
        PairCheck pc;
        pc.first = ids[x];
        pc.second = ids[y];
        pc.concurrent = ax.seq == ay.seq;
        if (ay.seq < ax.seq || (ay.seq == ax.seq && ay.sub < ax.sub)) {
          std::swap(pc.first, pc.second);
        }
        pairs.push_back(pc);
      }
    }
  }
  // Deterministic report order regardless of hash-map iteration.
  std::sort(pairs.begin(), pairs.end(),
            [](const PairCheck& a, const PairCheck& b) {
              return std::tie(a.first, a.second) < std::tie(b.first, b.second);
            });
  out.stats.pairs_checked = pairs.size();

  // --- 2. Build the HB DAG and register reachability queries. ---------
  Sweep sw;
  for (const auto& [from, to] : graph.edges()) {
    sw.edges.emplace_back(sw.intern(from), sw.intern(to));
  }
  out.stats.hb_edges = sw.edges.size();

  std::vector<Query> queries;
  std::unordered_map<size_t, size_t> bit_of;  // src access -> bit index
  // bucket: node -> query indices anchored at that node (a query fires
  // at each of the destination's start uids).
  std::unordered_map<uint32_t, std::vector<size_t>> bucket;
  auto add_direction = [&](size_t pair_id, size_t src, size_t dst) {
    const Access& a = log.accesses[src];
    const Access& b = log.accesses[dst];
    if (a.done_uid == 0) {
      // Complete at the start of time: ordered before everything.
      pairs[pair_id].ordered = true;
      return;
    }
    if (b.start_uids.empty()) return;  // dst waits on nothing
    const size_t qid = queries.size();
    queries.push_back({pair_id, src});
    bit_of.try_emplace(src, bit_of.size());
    for (uint64_t s : b.start_uids) {
      bucket[sw.intern(s)].push_back(qid);
    }
  };
  for (size_t p = 0; p < pairs.size(); ++p) {
    add_direction(p, pairs[p].first, pairs[p].second);
    if (pairs[p].concurrent && !pairs[p].ordered) {
      add_direction(p, pairs[p].second, pairs[p].first);
    }
  }
  // done_at: node -> source bits completing there.
  std::unordered_map<uint32_t, std::vector<size_t>> done_at;
  for (const auto& [src, bit] : bit_of) {
    done_at[sw.intern(log.accesses[src].done_uid)].push_back(bit);
  }

  const uint32_t n = static_cast<uint32_t>(sw.ids.size());
  out.stats.hb_nodes = n;
  std::sort(sw.edges.begin(), sw.edges.end());
  sw.edges.erase(std::unique(sw.edges.begin(), sw.edges.end()),
                 sw.edges.end());

  // CSR adjacency + indegrees for Kahn's algorithm.
  std::vector<uint32_t> head(n + 1, 0), indeg(n, 0);
  for (const auto& [u, v] : sw.edges) {
    ++head[u + 1];
    ++indeg[v];
  }
  for (uint32_t u = 0; u < n; ++u) head[u + 1] += head[u];
  std::vector<uint32_t> succ(sw.edges.size());
  {
    std::vector<uint32_t> fill(head.begin(), head.end() - 1);
    for (const auto& [u, v] : sw.edges) succ[fill[u]++] = v;
  }

  // --- 3. One topological sweep answers every query. -------------------
  const size_t words = (bit_of.size() + 63) / 64;
  std::vector<std::vector<uint64_t>> reach(n);
  std::vector<uint32_t> ready;
  for (uint32_t u = 0; u < n; ++u) {
    if (indeg[u] == 0) ready.push_back(u);
  }
  uint32_t processed = 0;
  while (!ready.empty()) {
    const uint32_t u = ready.back();
    ready.pop_back();
    ++processed;
    std::vector<uint64_t> bits = std::move(reach[u]);
    if (auto it = done_at.find(u); it != done_at.end()) {
      for (size_t bit : it->second) set_bit(bits, words, bit);
    }
    if (auto it = bucket.find(u); it != bucket.end()) {
      for (size_t qid : it->second) {
        const Query& q = queries[qid];
        if (test_bit(bits, bit_of.at(q.src_access))) {
          pairs[q.pair].ordered = true;
        }
      }
    }
    for (uint32_t e = head[u]; e < head[u + 1]; ++e) {
      const uint32_t v = succ[e];
      or_into(reach[v], bits, words);
      if (--indeg[v] == 0) ready.push_back(v);
    }
  }
  CR_CHECK_MSG(processed == n, "happens-before graph has a cycle");

  // --- 4. Report unordered pairs. --------------------------------------
  for (const PairCheck& pc : pairs) {
    if (pc.ordered) continue;
    const Access& a = log.accesses[pc.first];
    const Access& b = log.accesses[pc.second];
    Race r;
    r.first = pc.first;
    r.second = pc.second;
    const support::IntervalSet overlap = a.points.set_intersect(b.points);
    r.text = "race on root " + std::to_string(a.root) + " place " +
             std::to_string(a.place) + " points " + overlap.to_string() +
             (pc.concurrent ? " (concurrent within one statement)" : "") +
             "\n    earlier: " + site_text(a, program) +
             "\n    later:   " + site_text(b, program) +
             "\n    missing edge: " + std::to_string(a.done_uid) + " -> " +
             uid_list(b.start_uids);
    out.races.push_back(std::move(r));
  }
  out.stats.races = out.races.size();
  return out;
}

}  // namespace cr::check
