// The discrete-event simulator: a virtual clock plus an event queue.
//
// This is the substitute for a physical cluster. All runtime activity —
// task execution, copies, synchronization, network messages — is expressed
// as callbacks scheduled at virtual times.
//
// Two execution backends drain the queue:
//
//  - run(): the sequential reference loop. One global queue ordered by
//    (time, insertion sequence), so a given program unrolling always
//    produces the same timeline (bit-for-bit deterministic results).
//
//  - begin_windowed(nodes, lookahead) + run_windowed(workers): the
//    multi-worker backend. Every scheduled entry carries an *affinity*
//    (the simulated node whose state its callback touches, or the global
//    coordinator), and the queue is partitioned per node. Workers execute
//    node partitions concurrently inside conservative lookahead windows
//    [T, B) with B - T bounded by the minimum cross-node network latency:
//    a callback running at time t can influence another node no earlier
//    than t + lookahead >= B, so nodes are independent within a window.
//    Global entries (barrier fan-ins, merge completions) run in a serial
//    phase at window boundaries, strictly before the window's node
//    entries. Ties are broken by a (time, creator affinity, creator
//    sequence) key assigned at creation: each affinity's creations are
//    numbered by its own deterministic execution order, so the full
//    schedule — and therefore every virtual-time result, metrics
//    snapshot and trace — is bit-identical for any worker count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "sim/event.h"
#include "sim/event_graph.h"

namespace cr::support {
class Tracer;
}

namespace cr::sim {

// Affinity tags. Node affinities are the node index; kNoAffinity marks
// the global coordinator (unroll-time scheduling, serial phases);
// kMergeCreator keys deferred merge completions by merge uid so the
// completing host thread never influences the schedule.
inline constexpr uint32_t kNoAffinity = UINT32_MAX;
inline constexpr uint32_t kMergeCreator = UINT32_MAX - 1;

// One executed entry, as recorded by set_exec_log (windowed mode only):
// the per-node execution orders are the determinism witness the property
// tests compare across worker counts.
struct ExecRecord {
  Time time = 0;
  uint32_t creator = 0;
  uint64_t cseq = 0;
  friend bool operator==(const ExecRecord&, const ExecRecord&) = default;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const;

  // Attach (or detach with nullptr) a trace recorder. Every component
  // holding a Simulator reference reaches the tracer through here; a
  // null tracer is the zero-cost disabled path.
  void set_tracer(support::Tracer* tracer) { tracer_ = tracer; }
  support::Tracer* tracer() const { return tracer_; }

  // Attach (or detach with nullptr) a happens-before edge recorder.
  // Same contract as the tracer: null means disabled and free.
  void set_event_graph(EventGraph* graph) { graph_ = graph; }
  EventGraph* event_graph() const { return graph_; }

  // The uid of the event whose trigger (or triggered-subscription) is
  // causally responsible for the code currently running; 0 when none.
  // Captured by schedule_at so causality crosses deferred callbacks.
  uint64_t current_cause() const;
  void set_current_cause(uint64_t cause);

  // Unique id for a new event's trace identity. Events are created by
  // unroll-time wiring (single-threaded); worker callbacks must not mint
  // uids (CHECK-enforced in windowed mode).
  uint64_t new_event_uid();

  // Schedule fn at absolute virtual time t (>= now()). In windowed mode
  // the entry inherits the ambient affinity (callbacks stay on the node
  // that scheduled them; coordinator/unroll scheduling is global).
  void schedule_at(Time t, std::function<void()> fn);
  // Schedule fn dt ns from now.
  void schedule_after(Time dt, std::function<void()> fn);
  // Schedule fn at t with an explicit node affinity: the callback runs
  // on (and may touch the state of) node `node`. Cross-node scheduling
  // from a worker requires t >= the current window boundary — which the
  // network latency guarantees (CHECK-enforced).
  void schedule_at_affine(Time t, uint32_t node, std::function<void()> fn);
  // Schedule a merge completion at t, keyed (t, kMergeCreator,
  // merge_uid): any worker may request it, the key never depends on
  // which one did. Runs in the serial phase (global affinity).
  void schedule_merge_completion(Time t, uint64_t merge_uid,
                                 std::function<void()> fn);

  // Run until the queue drains (sequential reference loop). Returns the
  // final time. Must not be mixed with begin_windowed().
  Time run();

  // Switch to the windowed backend. Call before any scheduling (i.e.
  // before the program unroll); `lookahead` is the minimum cross-node
  // influence delay (network latency + handler cost) and must be > 0.
  void begin_windowed(uint32_t nodes, Time lookahead);
  bool windowed() const { return windowed_; }
  // Drain the partitioned queues with `workers` host threads (>= 1).
  // Bit-identical results for any worker count. Returns the final time.
  Time run_windowed(uint32_t workers);

  // Record every executed entry per affinity lane (nodes_ + 1 lanes,
  // last = global). Windowed mode only; pass nullptr to disable.
  void set_exec_log(std::vector<std::vector<ExecRecord>>* log) {
    exec_log_ = log;
  }

  // True while run() / run_windowed() is processing events.
  bool running() const { return running_; }

  // The calling thread's current execution affinity (kNoAffinity when
  // not inside a node partition — unroll, serial phase, or outside the
  // simulator entirely). Debugging/diagnostic aid.
  static uint32_t debug_affinity();

  uint64_t events_processed() const { return events_processed_; }

  // High-water mark of pending entries: per push in the sequential loop,
  // per window boundary (total over all partitions) in windowed mode.
  uint64_t max_queue_depth() const { return max_queue_depth_; }

 private:
  struct Entry {
    Time time;
    uint64_t seq;    // legacy: global insertion seq; windowed: creator seq
    uint64_t cause;  // ambient current_cause() at schedule time
    uint32_t creator = kNoAffinity;  // windowed tie-break: creating affinity
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.creator != b.creator) return a.creator > b.creator;
      return a.seq > b.seq;
    }
  };
  using Queue = std::priority_queue<Entry, std::vector<Entry>, Later>;
  struct Mailbox {
    std::mutex mu;
    std::vector<Entry> items;
  };
  // Per-thread execution context (windowed mode): the entry being
  // executed provides the clock, the ambient cause and the affinity.
  struct ExecCtx {
    const Simulator* owner = nullptr;
    Time now = 0;
    uint64_t cause = 0;
    uint32_t affinity = kNoAffinity;
  };
  static thread_local ExecCtx tls_;

  bool in_context() const { return tls_.owner == this; }
  void push_windowed(Time t, uint32_t target, uint32_t creator,
                     uint64_t cseq, std::function<void()> fn);
  void execute(const Entry& e, uint32_t affinity, uint64_t* processed,
               Time* max_time);
  void process_nodes(uint32_t worker, uint32_t workers, Time window_end,
                     uint64_t* processed, Time* max_time);
  void drain_inboxes();
  Time node_min_time() const;
  void worker_main(uint32_t worker);

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_event_uid_ = 0;
  uint64_t current_cause_ = 0;
  support::Tracer* tracer_ = nullptr;
  EventGraph* graph_ = nullptr;
  uint64_t events_processed_ = 0;
  uint64_t max_queue_depth_ = 0;
  bool running_ = false;
  Queue queue_;  // legacy (sequential) queue

  // --- windowed backend state ------------------------------------------
  bool windowed_ = false;
  uint32_t nodes_ = 0;
  Time lookahead_ = 0;
  std::vector<Queue> node_q_;          // per-node partitions
  Queue global_q_;                     // coordinator partition
  std::vector<Mailbox> inbox_;         // nodes_ + 1, last = global
  std::vector<uint64_t> creator_seq_;  // per-node creation counters
  uint64_t global_creator_seq_ = 0;
  Time win_end_ = 0;  // current window boundary B (cross-push CHECK)
  std::vector<std::vector<ExecRecord>>* exec_log_ = nullptr;

  // Worker rendezvous: the coordinator publishes a window, bumps the
  // epoch, processes its own share, then waits for the others. Workers
  // spin briefly and then yield (the backend must degrade gracefully
  // when host cores < workers).
  uint32_t num_workers_ = 0;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> done_workers_{0};
  std::atomic<bool> quit_{false};
  std::vector<std::thread> threads_;
  std::vector<uint64_t> worker_processed_;
  std::vector<Time> worker_max_time_;
};

}  // namespace cr::sim
