// The discrete-event simulator: a virtual clock plus an event queue.
//
// This is the substitute for a physical cluster. All runtime activity —
// task execution, copies, synchronization, network messages — is expressed
// as callbacks scheduled at virtual times. Ties are broken by insertion
// sequence number, so a given program unrolling always produces the same
// timeline (bit-for-bit deterministic results).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event.h"
#include "sim/event_graph.h"

namespace cr::support {
class Tracer;
}

namespace cr::sim {

class Simulator {
 public:
  Time now() const { return now_; }

  // Attach (or detach with nullptr) a trace recorder. Every component
  // holding a Simulator reference reaches the tracer through here; a
  // null tracer is the zero-cost disabled path.
  void set_tracer(support::Tracer* tracer) { tracer_ = tracer; }
  support::Tracer* tracer() const { return tracer_; }

  // Attach (or detach with nullptr) a happens-before edge recorder.
  // Same contract as the tracer: null means disabled and free.
  void set_event_graph(EventGraph* graph) { graph_ = graph; }
  EventGraph* event_graph() const { return graph_; }

  // The uid of the event whose trigger (or triggered-subscription) is
  // causally responsible for the code currently running; 0 when none.
  // Captured by schedule_at so causality crosses deferred callbacks.
  uint64_t current_cause() const { return current_cause_; }
  void set_current_cause(uint64_t cause) { current_cause_ = cause; }

  // Unique id for a new event's trace identity.
  uint64_t new_event_uid() { return ++next_event_uid_; }

  // Schedule fn at absolute virtual time t (>= now()).
  void schedule_at(Time t, std::function<void()> fn);
  // Schedule fn dt ns from now.
  void schedule_after(Time dt, std::function<void()> fn);

  // Run until the queue drains. Returns the final time.
  Time run();

  // True while run() is processing events.
  bool running() const { return running_; }

  uint64_t events_processed() const { return events_processed_; }

  // High-water mark of the pending-event queue (scheduler occupancy).
  uint64_t max_queue_depth() const { return max_queue_depth_; }

 private:
  struct Entry {
    Time time;
    uint64_t seq;
    uint64_t cause;  // ambient current_cause() at schedule time
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_event_uid_ = 0;
  uint64_t current_cause_ = 0;
  support::Tracer* tracer_ = nullptr;
  EventGraph* graph_ = nullptr;
  uint64_t events_processed_ = 0;
  uint64_t max_queue_depth_ = 0;
  bool running_ = false;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace cr::sim
