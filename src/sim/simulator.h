// The discrete-event simulator: a virtual clock plus an event queue.
//
// This is the substitute for a physical cluster. All runtime activity —
// task execution, copies, synchronization, network messages — is expressed
// as callbacks scheduled at virtual times.
//
// Two execution backends drain the queue:
//
//  - run(): the sequential reference loop. One global queue ordered by
//    (time, insertion sequence), so a given program unrolling always
//    produces the same timeline (bit-for-bit deterministic results).
//
//  - begin_windowed(nodes, lookahead) + run_windowed(workers): the
//    multi-worker backend. Every scheduled entry carries an *affinity*
//    (the simulated node whose state its callback touches, or the global
//    coordinator), and the queue is partitioned per node. Workers execute
//    node partitions concurrently inside conservative windows: a callback
//    running at time t can influence another node no earlier than
//    t + lookahead (the minimum cross-node network delay), so nodes are
//    independent within a window. Global entries (barrier fan-ins, merge
//    completions) run in a serial phase at window boundaries, strictly
//    before the window's node entries. Ties are broken by a (time,
//    creator affinity, creator sequence) key assigned at creation: each
//    affinity's creations are numbered by its own deterministic execution
//    order, so the full schedule — and therefore every virtual-time
//    result, metrics snapshot and trace — is bit-identical for any worker
//    count.
//
//    Two window policies share that machinery (set_adaptive_window):
//
//    - Reference (global window): every lane stops at
//      min(node_min + lookahead, next global entry). This is the PR 5
//      behavior, kept as the equivalence baseline.
//
//    - Adaptive (per-lane horizon, the default): only lanes that still
//      hold *armed* (wired but not yet injected) cross-node sends can
//      influence other lanes — Network maintains the per-lane armed
//      counts, and arming happens only at unroll time, so the armed set
//      never grows during the run. Influence chains, though: a message
//      sent during a window lowers its receiver's effective front, and
//      the receiver can relay one lookahead later. Solving the fixed
//      point eff_m = min(front_m, min_{armed x != m} eff_x + lookahead)
//      gives, with h1 <= h2 the two smallest fronts among armed lanes
//      and a* the lane at h1:
//        B_n (n != a*) = h1 + lookahead
//        B_{a*}        = min(h2 + lookahead, h1 + 2*lookahead)
//      each clamped by the global-feedback cap
//        min(next global entry time, node_min + max(floor, lookahead))
//      where the global-influence floor is the minimum delay from any
//      merge completion to its first possible node-side effect
//      (registered by barriers/collectives at wiring). Lanes whose
//      armed peers are far in the future — and every lane once the
//      armed sends drain — run deep into their own queues instead of
//      stopping at node_min + lookahead. Both policies execute the same
//      entries in the same per-lane order — only the window boundaries
//      (and therefore the boundary-sampled queue-depth gauge and the
//      window count) differ.
//
//    Safety is CHECK-enforced twice: a worker's cross-lane push must land
//    at or after the destination lane's current window end, and every
//    executed entry must not move its lane's clock backwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "sim/event.h"
#include "sim/event_graph.h"
#include "sim/window_barrier.h"
#include "support/host_clock.h"

namespace cr::support {
class Tracer;
}

namespace cr::sim {

// Affinity tags. Node affinities are the node index; kNoAffinity marks
// the global coordinator (unroll-time scheduling, serial phases);
// kMergeCreator keys deferred merge completions by merge uid so the
// completing host thread never influences the schedule.
inline constexpr uint32_t kNoAffinity = UINT32_MAX;
inline constexpr uint32_t kMergeCreator = UINT32_MAX - 1;

// One executed entry, as recorded by set_exec_log (windowed mode only):
// the per-node execution orders are the determinism witness the property
// tests compare across worker counts.
struct ExecRecord {
  Time time = 0;
  uint32_t creator = 0;
  uint64_t cseq = 0;
  friend bool operator==(const ExecRecord&, const ExecRecord&) = default;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const;

  // Attach (or detach with nullptr) a trace recorder. Every component
  // holding a Simulator reference reaches the tracer through here; a
  // null tracer is the zero-cost disabled path.
  void set_tracer(support::Tracer* tracer) { tracer_ = tracer; }
  support::Tracer* tracer() const { return tracer_; }

  // Attach (or detach with nullptr) a happens-before edge recorder.
  // Same contract as the tracer: null means disabled and free.
  void set_event_graph(EventGraph* graph) { graph_ = graph; }
  EventGraph* event_graph() const { return graph_; }

  // The uid of the event whose trigger (or triggered-subscription) is
  // causally responsible for the code currently running; 0 when none.
  // Captured by schedule_at so causality crosses deferred callbacks.
  uint64_t current_cause() const;
  void set_current_cause(uint64_t cause);

  // Unique id for a new event's trace identity. Events are created by
  // unroll-time wiring (single-threaded); worker callbacks must not mint
  // uids (CHECK-enforced in windowed mode).
  uint64_t new_event_uid();

  // Schedule fn at absolute virtual time t (>= now()). In windowed mode
  // the entry inherits the ambient affinity (callbacks stay on the node
  // that scheduled them; coordinator/unroll scheduling is global).
  void schedule_at(Time t, std::function<void()> fn);
  // Schedule fn dt ns from now.
  void schedule_after(Time dt, std::function<void()> fn);
  // Schedule fn at t with an explicit node affinity: the callback runs
  // on (and may touch the state of) node `node`. Cross-node scheduling
  // from a worker requires t >= the destination's window boundary —
  // which the network latency guarantees (CHECK-enforced).
  void schedule_at_affine(Time t, uint32_t node, std::function<void()> fn);
  // Schedule a merge completion at t, keyed (t, kMergeCreator,
  // merge_uid): any worker may request it, the key never depends on
  // which one did. Runs in the serial phase (global affinity). Every
  // call must be preceded by note_merge_armed() at wiring time
  // (CHECK-enforced): the armed count is what stops the boundary
  // planner from eliding serial phases while a completion could still
  // appear from a worker at an unknown time.
  void schedule_merge_completion(Time t, uint64_t merge_uid,
                                 std::function<void()> fn);

  // Run until the queue drains (sequential reference loop). Returns the
  // final time. Must not be mixed with begin_windowed().
  Time run();

  // Switch to the windowed backend. Call before any scheduling (i.e.
  // before the program unroll); `lookahead` is the minimum cross-node
  // influence delay (network latency + handler cost) and must be > 0.
  void begin_windowed(uint32_t nodes, Time lookahead);
  bool windowed() const { return windowed_; }
  // Drain the partitioned queues with `workers` host threads (>= 1).
  // Bit-identical results for any worker count. Returns the final time.
  Time run_windowed(uint32_t workers);

  // Select the window policy (see the file comment): true = adaptive
  // per-lane horizons (default), false = the PR 5 global-window
  // reference. Call before run_windowed(); both policies produce the
  // same virtual timeline.
  void set_adaptive_window(bool on) { adaptive_ = on; }
  bool adaptive_window() const { return adaptive_; }

  // Boundary elision (backend v3, adaptive policy only): when the
  // serial boundary between two adjacent windows provably has nothing
  // to do — no global-lane entry below the fused horizon and no armed
  // merge completion that could mint one — the coordinator pre-plans a
  // run of windows at once and workers roll between them through a
  // cheap symmetric rendezvous instead of a full park / serial drain /
  // release cycle. Same per-lane execution order, bit for bit; only
  // the host-side boundary protocol (and the window-shape gauges)
  // changes. Call before run_windowed(). Default on.
  void set_elide_boundaries(bool on) { elide_ = on; }
  bool elide_boundaries() const { return elide_; }

  // Pin plan for the windowed run's host threads: worker w pins to
  // cpus[w % cpus.size()] (worker 0 is the coordinator thread, whose
  // prior affinity is restored when run_windowed returns). Empty (the
  // default) disables pinning.
  void set_worker_cpus(std::vector<int> cpus) {
    worker_cpus_ = std::move(cpus);
  }

  // --- adaptive-window bookkeeping (Network / sync primitives) ---------
  // A cross-node send has been wired whose injection will run on node
  // `src` (Network::send, at subscription time). While a lane has armed
  // sends its queue front bounds its outbound influence; once the count
  // drops to zero the lane cannot reach other nodes and stops
  // constraining their windows.
  void note_cross_send_armed(uint32_t src);
  // The armed send's injection callback ran (the delivery is scheduled).
  void note_cross_send_fired(uint32_t src);
  // A deferred merge completion wired at unroll time can influence node
  // state no earlier than `delay` after the completion time. Every
  // merge_remote wirer must register its floor (CHECK-enforced when a
  // completion is scheduled in adaptive mode); the minimum across
  // registrations caps how far any lane may run past the window start.
  void note_global_influence_floor(Time delay);
  // A remote merge has been wired (Event::merge_remote) whose deferred
  // completion has not yet been scheduled. While any such merge is
  // outstanding a worker may mint a *new* global-lane entry at an
  // unknown time mid-window, so boundary elision is disabled; once the
  // completion is scheduled it is an ordinary global entry covered by
  // the next-global-entry clamp and the count drops.
  void note_merge_armed();

  // Record every executed entry per affinity lane (nodes_ + 1 lanes,
  // last = global). Windowed mode only; pass nullptr to disable.
  void set_exec_log(std::vector<std::vector<ExecRecord>>* log) {
    exec_log_ = log;
  }

  // --- host-phase profiling (observability; see support/host_clock.h) --
  // Attach (or detach with nullptr) a host-phase span recorder for the
  // next run_windowed(). The simulator stamps phase boundaries with the
  // monotonic host clock and records one contiguous span per phase per
  // worker per window; nothing read from the host clock ever feeds
  // virtual-time ordering, so profiled runs stay bit-identical. The
  // disabled path is one null-pointer check per phase boundary.
  void set_host_profiler(support::HostProfiler* prof) { host_prof_ = prof; }
  support::HostProfiler* host_profiler() const { return host_prof_; }

  // --- stall watchdog --------------------------------------------------
  // A monitor thread that turns a hung windowed run (lookahead bug,
  // barrier deadlock, stuck lane) into an actionable flight-recorder
  // dump instead of a silent hang: if no entry executes and no window
  // boundary is crossed for `budget_ms` of wall time, the dump (per-lane
  // fronts and window ends, armed-send counts, barrier epoch/parked
  // state, last-executed state per worker) goes to `sink` (stderr when
  // unset) and the process aborts (unless abort_on_stall is false, in
  // which case the watchdog records that it fired and re-arms).
  struct WatchdogOptions {
    uint64_t budget_ms = 0;  // 0 = disabled
    bool abort_on_stall = true;
    std::function<void(const std::string&)> sink;
  };
  void set_watchdog(WatchdogOptions opts) { wd_opts_ = std::move(opts); }
  bool watchdog_fired() const {
    return wd_fired_.load(std::memory_order_acquire);
  }

  // Test-only: invoked at the top of every lane's share of a window
  // (lane index, window index) on the worker thread that owns the lane,
  // and — with lane == nodes() (the global lane) — at the top of every
  // serial-drain iteration on the coordinator. Lets tests wedge a lane
  // or stretch the serial phase deliberately to exercise the watchdog.
  void set_test_lane_hook(
      std::function<void(uint32_t lane, uint64_t window)> hook) {
    test_lane_hook_ = std::move(hook);
  }
  uint32_t nodes() const { return nodes_; }

  // True while run() / run_windowed() is processing events.
  bool running() const { return running_; }

  // The calling thread's current execution affinity (kNoAffinity when
  // not inside a node partition — unroll, serial phase, or outside the
  // simulator entirely). Debugging/diagnostic aid.
  static uint32_t debug_affinity();

  uint64_t events_processed() const { return events_processed_; }

  // High-water mark of pending entries: per push in the sequential loop,
  // per window boundary (total over all partitions) in windowed mode.
  uint64_t max_queue_depth() const { return max_queue_depth_; }

  // Conservative windows executed by run_windowed (0 for sequential
  // runs). Adaptive windows are never shallower than reference windows,
  // so this count is the cheap proxy for barrier overhead. With
  // boundary elision a fused run of k+1 windows counts as one full
  // window plus k elided boundaries.
  uint64_t windows() const { return windows_; }

  // Window boundaries replaced by the in-region rendezvous (0 when
  // elision is off or the policy is not adaptive). Deterministic for a
  // given program and elision setting, independent of worker count.
  uint64_t elided_boundaries() const { return elided_boundaries_; }

 private:
  struct Entry {
    Time time;
    uint64_t seq;    // legacy: global insertion seq; windowed: creator seq
    uint64_t cause;  // ambient current_cause() at schedule time
    uint32_t creator = kNoAffinity;  // windowed tie-break: creating affinity
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.creator != b.creator) return a.creator > b.creator;
      return a.seq > b.seq;
    }
  };
  using Queue = std::priority_queue<Entry, std::vector<Entry>, Later>;
  struct Mailbox {
    std::mutex mu;
    std::vector<Entry> items;
    // Cheap emptiness probe so drain_inboxes skips the lock for idle
    // lanes; synchronization rides on the window barrier, the flag is
    // only a filter.
    std::atomic<bool> nonempty{false};
  };
  // A worker's staged cross-lane pushes, flushed to the destination
  // mailboxes in one locked batch per destination at the end of the
  // worker's window share (instead of one lock round-trip per push).
  struct alignas(64) OutBuffer {
    std::vector<std::pair<uint32_t, Entry>> staged;  // (lane, entry)
  };
  // Per-thread execution context (windowed mode): the entry being
  // executed provides the clock, the ambient cause and the affinity.
  struct ExecCtx {
    const Simulator* owner = nullptr;
    Time now = 0;
    uint64_t cause = 0;
    uint32_t affinity = kNoAffinity;
    uint32_t worker = 0;
  };
  static thread_local ExecCtx tls_;

  bool in_context() const { return tls_.owner == this; }
  void push_windowed(Time t, uint32_t target, uint32_t creator,
                     uint64_t cseq, std::function<void()> fn);
  void execute(const Entry& e, uint32_t affinity, uint64_t* processed,
               Time* max_time);
  void process_nodes(uint32_t worker, uint64_t* processed, Time* max_time);
  void flush_outbox(uint32_t worker);
  void drain_inboxes();
  // Record that lane n gained an entry at time t (serial contexts only):
  // keeps the lane-front heap's lower-bound invariant.
  void note_lane_front(uint32_t n, Time t);
  // Minimum queue front across node lanes, maintained incrementally by a
  // lazy min-heap over lane fronts (amortized O(log nodes) per window
  // instead of an O(nodes) rescan per serial-phase iteration).
  Time node_min_time();
  // Fill win_end_lane_ for the window starting at node_min under the
  // current policy, and bump the window counter.
  void compute_window_ends(Time node_min);
  // Boundary elision: starting from the window just planned into
  // win_end_lane_, pre-compute horizons for a run of follow-on windows
  // whose boundaries provably need no serial phase. Fills elide_ends_
  // and elide_count_ (0 = nothing elided).
  void plan_elisions();
  // One fused region for `worker`: its share of the planned window,
  // then elide_count_ more sub-windows separated by the symmetric
  // rendezvous (horizon handoff + own-block mailbox drain).
  void run_region(uint32_t worker, uint64_t* processed, Time* max_time);
  // Symmetric all-worker rendezvous at an elided boundary; the last
  // arriver installs sub-window `sub`'s horizons into win_end_lane_.
  void elide_rendezvous(uint32_t sub);
  // Drain the mailboxes of `worker`'s own lane block into its queues
  // (front heap untouched — the caller marks fronts dirty).
  void drain_block_inboxes(uint32_t worker);
  // Rebuild the lane-front heap from scratch after a fused region (the
  // worker-side mailbox drains bypass note_lane_front).
  void rebuild_fronts();
  void worker_main(uint32_t worker);
  // Close the current host-phase segment for `worker` (one clock read;
  // the segment began where the previous mark ended).
  void prof_mark(uint32_t worker, uint64_t window, support::HostPhase phase);
  void watchdog_main();
  std::string watchdog_dump(uint64_t stalled_ns) const;

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_event_uid_ = 0;
  uint64_t current_cause_ = 0;
  support::Tracer* tracer_ = nullptr;
  EventGraph* graph_ = nullptr;
  uint64_t events_processed_ = 0;
  uint64_t max_queue_depth_ = 0;
  bool running_ = false;
  Queue queue_;  // legacy (sequential) queue

  // --- windowed backend state ------------------------------------------
  bool windowed_ = false;
  bool adaptive_ = true;
  uint32_t nodes_ = 0;
  Time lookahead_ = 0;
  std::vector<Queue> node_q_;          // per-node partitions
  Queue global_q_;                     // coordinator partition
  std::vector<Mailbox> inbox_;         // nodes_ + 1, last = global
  std::vector<uint64_t> creator_seq_;  // per-node creation counters
  uint64_t global_creator_seq_ = 0;
  // Current per-lane window boundaries B_n (uniform in reference mode).
  // Written by the coordinator between windows, read by workers for the
  // cross-push CHECK; the barrier's release/arrive ordering publishes it.
  std::vector<Time> win_end_lane_;
  // Last executed time per lane (nodes_ + 1, last = global): the
  // conservative-safety invariant — no policy may let a lane's clock run
  // backwards (CHECK-enforced in execute()).
  std::vector<Time> lane_last_exec_;
  uint64_t windows_ = 0;
  uint64_t elided_boundaries_ = 0;
  std::vector<std::vector<ExecRecord>>* exec_log_ = nullptr;

  // --- boundary elision (backend v3) -----------------------------------
  bool elide_ = true;
  // Horizons for the current fused region's elided sub-windows:
  // elide_ends_[s] are the per-lane boundaries installed at rendezvous
  // s (the region runs elide_count_ + 1 sub-windows). Planned by the
  // coordinator while workers are parked; read by the rendezvous's
  // last arriver.
  std::vector<std::vector<Time>> elide_ends_;
  uint32_t elide_count_ = 0;
  // Remote merges wired but with no scheduled completion yet: while
  // nonzero a worker may mint a global entry at an unknown time, so
  // planning refuses to elide. Armed from global contexts; the
  // decrement (completion scheduled) may come from any worker, and the
  // coordinator only reads it at full boundaries with workers parked.
  std::atomic<uint64_t> pending_merges_{0};
  // Symmetric rendezvous state for elided boundaries: a counter plus a
  // monotonically increasing phase word (one bump per rendezvous).
  std::atomic<uint32_t> elide_arrived_{0};
  alignas(64) std::atomic<uint64_t> elide_phase_{0};
  // Set when worker-side mailbox drains bypassed note_lane_front; the
  // next full boundary rebuilds the front heap before planning.
  bool fronts_dirty_ = false;

  // Adaptive-window inputs. Armed counts are bumped at wiring and
  // decremented from whichever worker runs the injection; they only
  // decrease during a window, so a boundary read is conservative.
  std::unique_ptr<std::atomic<uint64_t>[]> armed_cross_;
  Time global_floor_ = 0;  // min registered floor; 0 = none registered

  // Lane-front heap: (front, lane) pairs, lazily repaired. front_hint_
  // holds the smallest time currently enqueued for the lane (or inf);
  // stale pairs are discarded on pop.
  std::vector<std::pair<Time, uint32_t>> front_heap_;
  std::vector<Time> front_hint_;

  // Pending-entry gauge for windowed mode: pushes increment, executions
  // decrement; sampled only at window boundaries (workers parked), where
  // its value is deterministic.
  std::atomic<uint64_t> pending_windowed_{0};

  // Worker rendezvous: the coordinator publishes the window's lane
  // boundaries, releases an epoch through the barrier, processes its own
  // lane block, then waits for the arrival tree. Workers spin briefly
  // and then park (the backend must degrade gracefully when host cores
  // < workers).
  uint32_t num_workers_ = 0;
  WindowBarrier barrier_;
  uint64_t epoch_seq_ = 0;
  std::atomic<bool> quit_{false};
  std::vector<std::thread> threads_;
  std::vector<uint64_t> worker_processed_;
  std::vector<Time> worker_max_time_;
  std::vector<uint32_t> lane_lo_;  // per-worker contiguous lane blocks
  std::vector<uint32_t> lane_hi_;
  std::vector<OutBuffer> outbox_;  // per-worker staged cross pushes
  std::vector<int> worker_cpus_;   // pin plan; empty = no pinning

  // --- host-phase profiler (null = disabled) ---------------------------
  support::HostProfiler* host_prof_ = nullptr;
  // Per-worker phase-boundary cursor: each mark's span starts where the
  // previous one ended, so a worker's spans tile its timeline. Each slot
  // is written only by its own thread.
  std::vector<uint64_t> prof_cursor_;

  // --- stall watchdog --------------------------------------------------
  // Flight-recorder state, published only when the watchdog is enabled
  // (wd_enabled_ guards every hook). All atomics so the monitor thread
  // reads valid (possibly one-cycle-stale) values without touching the
  // backend's plain state.
  WatchdogOptions wd_opts_;
  std::atomic<bool> wd_enabled_{false};
  std::atomic<bool> wd_quit_{false};
  std::atomic<bool> wd_fired_{false};
  std::atomic<uint64_t> wd_heartbeat_{0};  // bumped per execute + boundary
  std::atomic<uint64_t> wd_window_{0};     // windows_ mirror for the monitor
  std::unique_ptr<std::atomic<uint64_t>[]> wd_lane_front_;   // nodes_
  std::unique_ptr<std::atomic<uint64_t>[]> wd_lane_winend_;  // nodes_
  std::unique_ptr<std::atomic<uint64_t>[]> wd_worker_uid_;   // last cause uid
  std::unique_ptr<std::atomic<uint64_t>[]> wd_worker_time_;  // last exec time
  std::unique_ptr<std::atomic<uint64_t>[]> wd_worker_win_;   // last window
  std::thread wd_thread_;
  std::function<void(uint32_t, uint64_t)> test_lane_hook_;
};

}  // namespace cr::sim
