#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "sim/simulator.h"
#include "support/check.h"
#include "support/hash.h"
#include "support/trace.h"

namespace cr::sim {

namespace {

// Serialization time of `bytes` at `bandwidth` B/ns, rounded *up* so a
// nonzero payload always costs at least 1 ns. Truncation here used to
// make sub-ns messages free, which let fine-grained communication
// patterns scale impossibly well.
Time serialization_time(uint64_t bytes, double bandwidth) {
  if (bytes == 0) return 0;
  return static_cast<Time>(
      std::ceil(static_cast<double>(bytes) / bandwidth));
}

}  // namespace

Network::Network(Simulator& sim, uint32_t nodes, NetworkConfig config)
    : sim_(&sim), config_(config), nic_free_(nodes, 0) {
  CR_CHECK(nodes > 0);
  CR_CHECK(config.bandwidth_gbps > 0 && config.mem_bandwidth_gbps > 0);
}

Event Network::send(uint32_t src, uint32_t dst, uint64_t bytes,
                    Event precondition, std::function<void()> on_delivery,
                    std::function<void()> on_inject) {
  CR_CHECK(src < nic_free_.size() && dst < nic_free_.size());
  UserEvent delivered(*sim_);
  auto work = on_delivery
                  ? std::make_shared<std::function<void()>>(
                        std::move(on_delivery))
                  : nullptr;
  auto stage = on_inject
                   ? std::make_shared<std::function<void()>>(
                         std::move(on_inject))
                   : nullptr;
  const uint64_t pre_uid = precondition.uid();
  const uint64_t delivered_uid = delivered.event().uid();
  // Arm before subscribing: the subscription may run inline when the
  // precondition has already triggered, and the fired note must never
  // precede its arm. While armed, the source lane's queue front bounds
  // its outbound influence (the adaptive window input).
  if (src != dst) sim_->note_cross_send_armed(src);
  precondition.subscribe([this, src, dst, bytes, work, stage, delivered,
                          pre_uid, delivered_uid](Time ready) mutable {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (stage) (*stage)();
    Time arrive;
    support::Tracer* t = sim_->tracer();
    if (src == dst) {
      arrive = ready + local_copy_time(bytes);
      if (t != nullptr) {
        const support::SpanId span = t->add_span(
            src, support::kMemTid, support::TraceCategory::kCopy,
            "local " + std::to_string(bytes) + "B", ready, arrive);
        t->edge(pre_uid, span);
        t->bind(delivered_uid, span);
      }
    } else {
      const Time serial = serialization_time(bytes, config_.bandwidth_gbps);
      const Time inject = std::max(ready, nic_free_[src]);
      nic_free_[src] = inject + serial;
      arrive = inject + serial + config_.latency_ns + config_.am_handler_ns +
               handler_jitter(delivered_uid);
      if (t != nullptr) {
        // NIC busy interval: injection serialization only; wire latency
        // and handler time show up as a gap before the consumer starts.
        // Zero-byte sends are synchronization notifications.
        const bool is_sync = bytes == 0;
        std::string label = is_sync ? "notify >" : "xfer >";
        label += std::to_string(dst);
        if (!is_sync) {
          label += ' ';
          label += std::to_string(bytes);
          label += 'B';
        }
        const support::SpanId span = t->add_span(
            src, support::kNicTid,
            is_sync ? support::TraceCategory::kSync
                    : support::TraceCategory::kCopy,
            label, inject, inject + serial);
        t->edge(pre_uid, span);
        t->bind(delivered_uid, span);
      }
    }
    // The delivery runs on the destination node: its side effects (the
    // payload landing, the consumer cascade) belong to dst's partition.
    sim_->schedule_at_affine(arrive, dst, [work, delivered]() mutable {
      if (work) (*work)();
      delivered.trigger();
    });
    // Disarm only after the delivery is enqueued: from this point the
    // message's influence is visible to the window computation as a
    // pending destination entry instead of an armed source send.
    if (src != dst) sim_->note_cross_send_fired(src);
  });
  return delivered.event();
}

Time Network::handler_jitter(uint64_t delivered_uid) const {
  if (config_.am_jitter_ns == 0) return 0;
  // Pure function of the delivery event's uid (assigned during the
  // single-threaded unroll) and the configured seed: bit-identical under
  // any --workers=N. Always >= 0, so min_cross_node_delay remains the
  // true lower bound on cross-node influence.
  const uint64_t h = support::hash_mix(
      delivered_uid ^ (config_.jitter_seed * 0x9e3779b97f4a7c15ull) ^
      0x616d6a69747465ull);
  return static_cast<Time>(h % (config_.am_jitter_ns + 1));
}

Time Network::transfer_time(uint64_t bytes) const {
  return config_.latency_ns + config_.am_handler_ns +
         serialization_time(bytes, config_.bandwidth_gbps);
}

Time Network::local_copy_time(uint64_t bytes) const {
  return serialization_time(bytes, config_.mem_bandwidth_gbps);
}

Time Network::tree_latency(uint32_t participants, uint32_t fanin) const {
  CR_CHECK(fanin >= 2);
  if (participants <= 1) return 0;
  // Integer level count: the smallest L with fanin^L >= participants.
  // The float-log form (ceil(log(p)/log(f))) rounds exact powers up on
  // some platforms (e.g. log(125)/log(5) == 3.0000000000000004).
  Time levels = 0;
  uint64_t reach = 1;
  while (reach < participants) {
    reach *= fanin;
    ++levels;
  }
  return levels * (config_.latency_ns + config_.am_handler_ns);
}

}  // namespace cr::sim
