#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/simulator.h"
#include "support/check.h"

namespace cr::sim {

Network::Network(Simulator& sim, uint32_t nodes, NetworkConfig config)
    : sim_(&sim), config_(config), nic_free_(nodes, 0) {
  CR_CHECK(nodes > 0);
  CR_CHECK(config.bandwidth_gbps > 0 && config.mem_bandwidth_gbps > 0);
}

Event Network::send(uint32_t src, uint32_t dst, uint64_t bytes,
                    Event precondition, std::function<void()> on_delivery) {
  CR_CHECK(src < nic_free_.size() && dst < nic_free_.size());
  UserEvent delivered(*sim_);
  auto work = on_delivery
                  ? std::make_shared<std::function<void()>>(
                        std::move(on_delivery))
                  : nullptr;
  precondition.subscribe([this, src, dst, bytes, work, delivered](
                             Time ready) mutable {
    ++messages_;
    bytes_ += bytes;
    Time arrive;
    if (src == dst) {
      arrive = ready + local_copy_time(bytes);
    } else {
      const Time serial =
          static_cast<Time>(static_cast<double>(bytes) /
                            config_.bandwidth_gbps);  // ns at GB/s == B/ns
      const Time inject = std::max(ready, nic_free_[src]);
      nic_free_[src] = inject + serial;
      arrive = inject + serial + config_.latency_ns + config_.am_handler_ns;
    }
    sim_->schedule_at(arrive, [work, delivered]() mutable {
      if (work) (*work)();
      delivered.trigger();
    });
  });
  return delivered.event();
}

Time Network::transfer_time(uint64_t bytes) const {
  return config_.latency_ns + config_.am_handler_ns +
         static_cast<Time>(static_cast<double>(bytes) /
                           config_.bandwidth_gbps);
}

Time Network::local_copy_time(uint64_t bytes) const {
  return static_cast<Time>(static_cast<double>(bytes) /
                           config_.mem_bandwidth_gbps);
}

Time Network::tree_latency(uint32_t participants, uint32_t fanin) const {
  CR_CHECK(fanin >= 2);
  if (participants <= 1) return 0;
  const double levels =
      std::ceil(std::log(static_cast<double>(participants)) /
                std::log(static_cast<double>(fanin)));
  return static_cast<Time>(levels) *
         (config_.latency_ns + config_.am_handler_ns);
}

}  // namespace cr::sim
