#include "sim/window_barrier.h"

#include <thread>

#include "support/check.h"

namespace cr::sim {

namespace {

// Bounded spin helper: cheap pause loop, yielding periodically so an
// oversubscribed host still makes progress during the spin phase.
inline void spin_pause(uint32_t i) {
  if ((i & 63u) == 63u) std::this_thread::yield();
}

}  // namespace

void WindowBarrier::init(uint32_t arrivers) {
  arrivers_ = arrivers;
  counters_.clear();
  leaf_base_ = 0;
  epoch_.store(0, std::memory_order_relaxed);
  root_done_.store(0, std::memory_order_relaxed);
  parked_.store(0, std::memory_order_relaxed);
  if (arrivers == 0) return;
  // Build the combining tree level by level, leaves first. Each level
  // groups the previous one in blocks of kFanIn until a single root
  // remains; parent indices are patched as the next level is laid out.
  uint32_t level_begin = 0;
  uint32_t level_count = (arrivers + kFanIn - 1) / kFanIn;
  counters_.resize(level_count);
  for (uint32_t i = 0; i < level_count; ++i) {
    const uint32_t lo = i * kFanIn;
    counters_[i].width = std::min(kFanIn, arrivers - lo);
  }
  while (level_count > 1) {
    const uint32_t next_begin = level_begin + level_count;
    const uint32_t next_count = (level_count + kFanIn - 1) / kFanIn;
    counters_.resize(next_begin + next_count);
    for (uint32_t i = 0; i < next_count; ++i) {
      const uint32_t lo = i * kFanIn;
      counters_[next_begin + i].width =
          std::min(kFanIn, level_count - lo);
    }
    for (uint32_t i = 0; i < level_count; ++i) {
      counters_[level_begin + i].parent =
          static_cast<int32_t>(next_begin + i / kFanIn);
    }
    level_begin = next_begin;
    level_count = next_count;
  }
}

void WindowBarrier::release(uint64_t epoch) {
  CR_CHECK(epoch > epoch_.load(std::memory_order_relaxed));
  // Re-arm the arrival tree before the epoch becomes visible; all
  // arrivers are quiescent here (the previous wait_arrivals returned).
  for (Counter& c : counters_) {
    c.remaining.store(c.width, std::memory_order_relaxed);
  }
  // seq_cst store + seq_cst parked load: the classic sleeping-waiter
  // pairing with await_release's parked increment + wait. Under SC at
  // least one side observes the other, so the notify is never skipped
  // while a worker commits to parking on the stale epoch.
  epoch_.store(epoch, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    epoch_.notify_all();
  }
}

uint64_t WindowBarrier::await_release(uint64_t seen) {
  for (uint32_t i = 0; i < kSpinBudget; ++i) {
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    if (e != seen) return e;
    spin_pause(i);
  }
  for (;;) {
    parked_.fetch_add(1, std::memory_order_seq_cst);
    epoch_.wait(seen, std::memory_order_seq_cst);
    parked_.fetch_sub(1, std::memory_order_relaxed);
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    if (e != seen) return e;
  }
}

void WindowBarrier::propagate(uint32_t index, uint64_t epoch) {
  Counter& c = counters_[index];
  if (c.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (c.parent >= 0) {
    propagate(static_cast<uint32_t>(c.parent), epoch);
    return;
  }
  // Subtree complete all the way up: publish to the coordinator. The
  // acq_rel RMW chain makes every arriver's prior writes visible to a
  // wait_arrivals() that observes this store.
  root_done_.store(epoch, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    root_done_.notify_all();
  }
}

void WindowBarrier::arrive(uint32_t arriver, uint64_t epoch) {
  CR_CHECK(arriver < arrivers_);
  propagate(leaf_base_ + arriver / kFanIn, epoch);
}

void WindowBarrier::wait_arrivals(uint64_t epoch) {
  if (arrivers_ == 0) return;
  for (uint32_t i = 0; i < kSpinBudget; ++i) {
    if (root_done_.load(std::memory_order_acquire) == epoch) return;
    spin_pause(i);
  }
  const uint64_t prev = epoch - 1;
  for (;;) {
    parked_.fetch_add(1, std::memory_order_seq_cst);
    root_done_.wait(prev, std::memory_order_seq_cst);
    parked_.fetch_sub(1, std::memory_order_relaxed);
    if (root_done_.load(std::memory_order_acquire) == epoch) return;
  }
}

}  // namespace cr::sim
