// A happens-before recorder for event wiring. When attached to a
// Simulator, every causal relationship between events is logged as a
// (predecessor uid, successor uid) edge as it is established:
//   - Event::merge records one edge per input into the merged event,
//   - UserEvent::trigger records an edge from the ambient "cause" (the
//     event whose trigger or subscription led, possibly through
//     scheduled callbacks, to this trigger),
//   - Simulator::schedule_at captures the ambient cause so that edges
//     survive deferred callbacks (processor spans, network deliveries,
//     barrier/collective wiring).
// The resulting edge list is the ground-truth happens-before DAG the
// race checker walks. Like the Tracer, a detached graph is the
// zero-cost disabled path: no edges are recorded and the virtual
// timeline is unaffected either way.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace cr::sim {

class EventGraph {
 public:
  // Record "from happens-before to". Edges touching the no-event
  // (uid 0) carry no information and are dropped. Thread-safe: under
  // the multi-worker backend several workers record edges at once. The
  // edge *list order* depends on the interleaving, but consumers (the
  // race checker, critical-path analysis) only use the edge *set* —
  // reachability is order-insensitive.
  void edge(uint64_t from, uint64_t to) {
    if (from == 0 || to == 0 || from == to) return;
    std::lock_guard<std::mutex> lock(mu_);
    edges_.push_back({from, to});
  }

  // Only valid once recording has quiesced (after the run completes).
  const std::vector<std::pair<uint64_t, uint64_t>>& edges() const {
    return edges_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    edges_.clear();
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<uint64_t, uint64_t>> edges_;
};

}  // namespace cr::sim
