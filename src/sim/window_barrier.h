// Window-boundary rendezvous for the multi-worker DES backend.
//
// Each conservative window is one release/arrive cycle: the coordinator
// publishes a new epoch to start the window's node phase, every worker
// processes its lane block, and the coordinator proceeds once all
// arrivals have landed. PR 5 used a single shared done-counter that
// every worker hammered with fetch_add while the coordinator spun on it
// — at tens of thousands of windows per run the cache-line ping-pong on
// that counter was the dominant parallel overhead.
//
// This is the classic fix: a sense-reversing barrier where the "sense"
// is the monotonically increasing epoch number itself (no flag flips to
// reset), arrivals combine up a small fan-in tree of cache-line-padded
// counters (each core contends with at most kFanIn-1 siblings, never
// the whole pool), and waiters spin a bounded number of iterations
// before parking on a futex (C++20 atomic wait), so an oversubscribed
// host degrades to sleeping instead of burning a core per worker.
//
// Ordering contract: everything the coordinator wrote before release()
// is visible to workers after await_release() returns (epoch store is a
// release, the load an acquire), and everything a worker wrote before
// arrive() is visible to the coordinator after wait_arrivals() returns
// (the arrival RMW chain up the tree is acq_rel, the root publication a
// release).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cr::sim {

class WindowBarrier {
 public:
  // Arrivals combine in groups of four: for the worker counts this
  // backend targets (<= a few dozen) the tree is one or two levels, and
  // four arrivals per line amortizes the propagation RMW without
  // widening contention much.
  static constexpr uint32_t kFanIn = 4;
  // Spin budget before parking. Windows are short (microseconds), so
  // waits usually resolve within the spin; the park only engages when
  // the host is oversubscribed or a lane block is skewed.
  static constexpr uint32_t kSpinBudget = 4096;

  WindowBarrier() = default;
  WindowBarrier(const WindowBarrier&) = delete;
  WindowBarrier& operator=(const WindowBarrier&) = delete;

  // (Re)build for `arrivers` arriving threads (workers 1..W-1; zero is
  // valid and makes release/wait trivial). Not thread-safe: call while
  // no thread is inside the barrier.
  void init(uint32_t arrivers);

  // Coordinator: publish `epoch` (strictly increasing) and wake parked
  // workers. Resets the arrival tree for this cycle.
  void release(uint64_t epoch);

  // Worker: block until an epoch newer than `seen` is published; returns
  // the new epoch. Spins kSpinBudget times, then parks on the epoch
  // word.
  uint64_t await_release(uint64_t seen);

  // Worker: signal arrival for `epoch`. `arriver` in [0, arrivers)
  // selects the leaf counter so neighbors contend only within their
  // fan-in group; the chain propagates to the root when a subtree
  // completes.
  void arrive(uint32_t arriver, uint64_t epoch);

  // Coordinator: block until all arrivers have arrived for `epoch`.
  // No-op when the barrier was built with zero arrivers.
  void wait_arrivals(uint64_t epoch);

  // Observability snapshots for the stall watchdog's flight recorder.
  // Racy-by-design reads from the monitor thread: values may be one
  // cycle stale but are always internally valid.
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  uint32_t parked_workers() const {
    return parked_.load(std::memory_order_acquire);
  }
  uint64_t last_completed_epoch() const {
    return root_done_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) Counter {
    std::atomic<uint32_t> remaining{0};
    uint32_t width = 0;   // arrivals expected at this node
    int32_t parent = -1;  // index into counters_, -1 = root
    Counter() = default;
    // Copies only happen in init() while the barrier is quiescent (the
    // vector resizing as levels are laid out).
    Counter(const Counter& o)
        : remaining(o.remaining.load(std::memory_order_relaxed)),
          width(o.width),
          parent(o.parent) {}
  };

  std::atomic<uint64_t> epoch_{0};
  // Count of workers currently parked on epoch_: release() skips the
  // notify syscall entirely in the common all-spinning case.
  std::atomic<uint32_t> parked_{0};
  alignas(64) std::atomic<uint64_t> root_done_{0};
  std::vector<Counter> counters_;  // leaves first, root last
  uint32_t arrivers_ = 0;
  uint32_t leaf_base_ = 0;  // index of the first leaf counter

  void propagate(uint32_t index, uint64_t epoch);
};

}  // namespace cr::sim
