// The simulated machine: `nodes` x `cores_per_node` processors plus one
// NIC per node. Mirrors the Piz Daint configuration used in the paper
// (1024 nodes x 12 cores) by default, but any shape can be built.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/processor.h"

namespace cr::sim {

class Simulator;

struct MachineConfig {
  uint32_t nodes = 1;
  uint32_t cores_per_node = 12;

  // --- scenario knobs (heterogeneous / faulty machines) ---------------
  // Relative per-node speed factors (1.0 = nominal). Empty = homogeneous;
  // otherwise must have exactly `nodes` entries. Mappers read these via
  // Machine::node_speed / Mapper::node_speed.
  std::vector<double> node_speed = {};
  // Injected transient slowdowns: during [begin, end) in virtual time,
  // work starting on `node`'s cores runs `factor`x longer. Deterministic
  // and replay-stable under any worker count (see sim::SlowdownWindow).
  struct NodeSlowdown {
    uint32_t node = 0;
    Time begin = 0;
    Time end = 0;
    double factor = 1.0;
  };
  std::vector<NodeSlowdown> slowdowns = {};
};

class Machine {
 public:
  Machine(Simulator& sim, MachineConfig config);

  uint32_t nodes() const { return config_.nodes; }
  uint32_t cores_per_node() const { return config_.cores_per_node; }
  // Speed factor of `node` (1.0 when the config left node_speed empty).
  double node_speed(uint32_t node) const;

  Processor& proc(uint32_t node, uint32_t core);
  Processor& proc(ProcId id) { return proc(id.node, id.core); }

  // Aggregate busy time across all cores of a node.
  Time node_busy_time(uint32_t node) const;

 private:
  MachineConfig config_;
  // One NodePerf per node, built before the processors that point at it
  // and never resized afterwards (stable addresses).
  std::vector<NodePerf> perf_;
  std::vector<std::unique_ptr<Processor>> procs_;
};

}  // namespace cr::sim
