// The simulated machine: `nodes` x `cores_per_node` processors plus one
// NIC per node. Mirrors the Piz Daint configuration used in the paper
// (1024 nodes x 12 cores) by default, but any shape can be built.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/processor.h"

namespace cr::sim {

class Simulator;

struct MachineConfig {
  uint32_t nodes = 1;
  uint32_t cores_per_node = 12;
};

class Machine {
 public:
  Machine(Simulator& sim, MachineConfig config);

  uint32_t nodes() const { return config_.nodes; }
  uint32_t cores_per_node() const { return config_.cores_per_node; }

  Processor& proc(uint32_t node, uint32_t core);
  Processor& proc(ProcId id) { return proc(id.node, id.core); }

  // Aggregate busy time across all cores of a node.
  Time node_busy_time(uint32_t node) const;

 private:
  MachineConfig config_;
  std::vector<std::unique_ptr<Processor>> procs_;
};

}  // namespace cr::sim
