// A simulated processor core. Work items occupy the core for a span of
// virtual time; items that become ready while the core is busy queue up
// FIFO (in ready order). The `work` callback performs real side effects
// (kernel execution, analysis bookkeeping) at the item's virtual start
// time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event.h"
#include "support/trace.h"

namespace cr::sim {

class Simulator;

struct ProcId {
  uint32_t node = 0;
  uint32_t core = 0;
  friend bool operator==(const ProcId&, const ProcId&) = default;
};

class Processor {
 public:
  Processor(Simulator& sim, ProcId id) : sim_(&sim), id_(id) {}

  ProcId id() const { return id_; }

  // Enqueue a work item: after `precondition` triggers, the item occupies
  // this core for `duration` ns (FIFO with other items that are ready).
  // `work` (optional) runs at the item's start time. Returns the
  // completion event. When a tracer is attached to the simulator, the
  // occupancy interval is recorded as a span labeled by `tag` (or a
  // generic "work" span when the tag is empty) and wired into the
  // dependence graph via the precondition and completion events.
  Event spawn(Event precondition, Time duration,
              std::function<void()> work = nullptr,
              support::TraceTag tag = {});

  // Total busy time accumulated (for utilization reports).
  Time busy_time() const { return busy_; }
  // The time this core finished (or will finish) its last accepted item.
  Time next_free() const { return next_free_; }

 private:
  Simulator* sim_;
  ProcId id_;
  Time next_free_ = 0;
  Time busy_ = 0;
};

}  // namespace cr::sim
