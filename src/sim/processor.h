// A simulated processor core. Work items occupy the core for a span of
// virtual time; items that become ready while the core is busy queue up
// FIFO (in ready order). The `work` callback performs real side effects
// (kernel execution, analysis bookkeeping) at the item's virtual start
// time.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event.h"
#include "support/trace.h"

namespace cr::sim {

class Simulator;

struct ProcId {
  uint32_t node = 0;
  uint32_t core = 0;
  friend bool operator==(const ProcId&, const ProcId&) = default;
};

// A virtual-time interval during which a node's cores run slower
// (an injected transient fault / interference burst). An item whose
// *start* falls inside [begin, end) has its duration multiplied by
// `factor` (>= 1: scenarios may only slow work down — speedups would
// have to prove they cannot shrink the cross-node lookahead).
struct SlowdownWindow {
  Time begin = 0;
  Time end = 0;
  double factor = 1.0;
};

// Per-node performance scenario: a static speed factor (heterogeneous
// machines; 1.0 = nominal, 0.5 = half speed) plus injected slowdown
// windows. Durations are scaled deterministically from virtual times
// only, so every worker count replays the same timeline.
struct NodePerf {
  double speed = 1.0;
  std::vector<SlowdownWindow> slowdowns;

  Time scale(Time start, Time duration) const {
    if (duration == 0) return 0;
    double d = static_cast<double>(duration);
    if (speed != 1.0 && speed > 0.0) d /= speed;
    for (const SlowdownWindow& w : slowdowns) {
      if (start >= w.begin && start < w.end) d *= w.factor;
    }
    const auto out = static_cast<Time>(std::llround(d));
    return out == 0 ? 1 : out;  // scaled nonzero work never becomes free
  }
};

class Processor {
 public:
  Processor(Simulator& sim, ProcId id, const NodePerf* perf = nullptr)
      : sim_(&sim), id_(id), perf_(perf) {}

  ProcId id() const { return id_; }

  // Enqueue a work item: after `precondition` triggers, the item occupies
  // this core for `duration` ns (FIFO with other items that are ready).
  // `work` (optional) runs at the item's start time. Returns the
  // completion event. When a tracer is attached to the simulator, the
  // occupancy interval is recorded as a span labeled by `tag` (or a
  // generic "work" span when the tag is empty) and wired into the
  // dependence graph via the precondition and completion events.
  Event spawn(Event precondition, Time duration,
              std::function<void()> work = nullptr,
              support::TraceTag tag = {});

  // Total busy time accumulated (for utilization reports).
  Time busy_time() const { return busy_; }
  // The time this core finished (or will finish) its last accepted item.
  Time next_free() const { return next_free_; }

 private:
  Simulator* sim_;
  ProcId id_;
  const NodePerf* perf_;  // null = nominal speed, no slowdowns
  Time next_free_ = 0;
  Time busy_ = 0;
};

}  // namespace cr::sim
