// Realm-style events: the unit of synchronization in the deferred
// execution model. An Event names a point in virtual time that either has
// or has not triggered; arbitrary callbacks can be subscribed and run (in
// virtual time) when it triggers. Events are value types wrapping shared
// state; a default-constructed Event is the always-triggered NO_EVENT.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace cr::sim {

class Simulator;

using Time = uint64_t;  // virtual nanoseconds

namespace detail {
struct EventState {
  uint64_t uid = 0;  // unique per simulator, for trace dependence edges
  Simulator* sim = nullptr;  // for happens-before cause propagation
  bool triggered = false;
  Time trigger_time = 0;
  std::vector<std::function<void(Time)>> waiters;
};
}  // namespace detail

class Event {
 public:
  // The no-event: always triggered at time 0.
  Event() = default;

  bool has_triggered() const { return !state_ || state_->triggered; }
  // Only valid once triggered.
  Time trigger_time() const { return state_ ? state_->trigger_time : 0; }
  // Stable identity for trace dependence edges (0 for the no-event).
  uint64_t uid() const { return state_ ? state_->uid : 0; }

  // Run fn when the event triggers (immediately if already triggered).
  // fn receives the trigger time.
  void subscribe(std::function<void(Time)> fn) const;

  // Merge: an event that triggers when all inputs have triggered, at the
  // max of their trigger times. The merged trigger runs synchronously in
  // the last input's trigger cascade, so under the windowed backend all
  // untriggered inputs must trigger on one node affinity (plus any
  // number of serial-phase/global events) — the engine's edge routing
  // guarantees this for every merge it builds.
  static Event merge(Simulator& sim, const std::vector<Event>& events);

  // Merge for inputs that trigger on *different* nodes (barrier and
  // collective fan-ins): the completion is deferred to a scheduled
  // serial-phase entry keyed by the merged event's uid, so the result is
  // identical no matter which host thread completes the countdown. The
  // critical-predecessor alias is chosen deterministically (latest
  // trigger time, ties by input order). Timing is unchanged: the merged
  // event still triggers at the max of the input trigger times.
  static Event merge_remote(Simulator& sim, const std::vector<Event>& events);

  friend bool operator==(const Event&, const Event&) = default;

 private:
  friend class UserEvent;
  friend class Simulator;
  explicit Event(std::shared_ptr<detail::EventState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::EventState> state_;
};

// An event triggered explicitly by its owner.
class UserEvent {
 public:
  explicit UserEvent(Simulator& sim);
  Event event() const { return Event(state_); }
  bool has_triggered() const { return state_->triggered; }
  // Triggers at the simulator's current time. Must not already be
  // triggered. Waiters run synchronously (still at now()).
  void trigger();

 private:
  Simulator* sim_;
  std::shared_ptr<detail::EventState> state_;
};

}  // namespace cr::sim
