#include "sim/machine.h"

#include <utility>

#include "sim/simulator.h"
#include "support/check.h"

namespace cr::sim {

Machine::Machine(Simulator& sim, MachineConfig config)
    : config_(std::move(config)) {
  CR_CHECK(config_.nodes > 0 && config_.cores_per_node > 0);
  CR_CHECK_MSG(config_.node_speed.empty() ||
                   config_.node_speed.size() == config_.nodes,
               "node_speed must be empty or have one entry per node");
  perf_.resize(config_.nodes);
  for (uint32_t n = 0; n < config_.nodes; ++n) {
    if (!config_.node_speed.empty()) {
      CR_CHECK_MSG(config_.node_speed[n] > 0, "node_speed must be positive");
      perf_[n].speed = config_.node_speed[n];
    }
  }
  for (const MachineConfig::NodeSlowdown& s : config_.slowdowns) {
    CR_CHECK(s.node < config_.nodes && s.begin <= s.end);
    CR_CHECK_MSG(s.factor >= 1.0,
                 "slowdown factors must be >= 1 (scenarios only add delay)");
    perf_[s.node].slowdowns.push_back({s.begin, s.end, s.factor});
  }
  procs_.reserve(static_cast<size_t>(config_.nodes) * config_.cores_per_node);
  for (uint32_t n = 0; n < config_.nodes; ++n) {
    for (uint32_t c = 0; c < config_.cores_per_node; ++c) {
      procs_.push_back(
          std::make_unique<Processor>(sim, ProcId{n, c}, &perf_[n]));
    }
  }
}

double Machine::node_speed(uint32_t node) const {
  CR_CHECK(node < config_.nodes);
  return perf_[node].speed;
}

Processor& Machine::proc(uint32_t node, uint32_t core) {
  CR_CHECK(node < config_.nodes && core < config_.cores_per_node);
  return *procs_[static_cast<size_t>(node) * config_.cores_per_node + core];
}

Time Machine::node_busy_time(uint32_t node) const {
  Time total = 0;
  for (uint32_t c = 0; c < config_.cores_per_node; ++c) {
    total += procs_[static_cast<size_t>(node) * config_.cores_per_node + c]
                 ->busy_time();
  }
  return total;
}

}  // namespace cr::sim
