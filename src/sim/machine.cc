#include "sim/machine.h"

#include "sim/simulator.h"
#include "support/check.h"

namespace cr::sim {

Machine::Machine(Simulator& sim, MachineConfig config) : config_(config) {
  CR_CHECK(config.nodes > 0 && config.cores_per_node > 0);
  procs_.reserve(static_cast<size_t>(config.nodes) * config.cores_per_node);
  for (uint32_t n = 0; n < config.nodes; ++n) {
    for (uint32_t c = 0; c < config.cores_per_node; ++c) {
      procs_.push_back(std::make_unique<Processor>(sim, ProcId{n, c}));
    }
  }
}

Processor& Machine::proc(uint32_t node, uint32_t core) {
  CR_CHECK(node < config_.nodes && core < config_.cores_per_node);
  return *procs_[static_cast<size_t>(node) * config_.cores_per_node + core];
}

Time Machine::node_busy_time(uint32_t node) const {
  Time total = 0;
  for (uint32_t c = 0; c < config_.cores_per_node; ++c) {
    total += procs_[static_cast<size_t>(node) * config_.cores_per_node + c]
                 ->busy_time();
  }
  return total;
}

}  // namespace cr::sim
