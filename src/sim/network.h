// Active-message network model (the GASNet substitute).
//
// A message from node A to node B becomes available for injection when
// its precondition triggers; it then occupies A's NIC for bytes/bandwidth
// (injection serialization — concurrent messages from one node queue up),
// and is delivered `latency + bytes/bandwidth` after injection starts.
// Intra-node transfers skip the NIC and use memory bandwidth.
//
// Tree-based collective helpers (barrier-style notification fan-in/out and
// allreduce latency) are provided analytically with the same latency
// parameters, matching how dedicated collective networks are modeled in
// the literature (LogP-style).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event.h"

namespace cr::sim {

class Simulator;

struct NetworkConfig {
  Time latency_ns = 1500;              // one-way wire latency
  double bandwidth_gbps = 10.0;        // per-NIC injection bandwidth (GB/s)
  double mem_bandwidth_gbps = 50.0;    // intra-node copy bandwidth (GB/s)
  Time am_handler_ns = 300;            // active-message handler cost
  // Scenario knob: deterministic per-message AM-handler jitter in
  // [0, am_jitter_ns], hashed from the delivery event's uid (allocated
  // at the unroll-time send() call, so identical under any worker
  // count). Strictly additive — min_cross_node_delay stays a sound
  // conservative lookahead. The analytic helpers (transfer_time,
  // tree_latency) stay unjittered: they model dedicated collective
  // hardware, not per-message handler scheduling.
  Time am_jitter_ns = 0;
  uint64_t jitter_seed = 0;
};

class Network {
 public:
  Network(Simulator& sim, uint32_t nodes, NetworkConfig config);

  // Transfer `bytes` from src to dst after `precondition`; the returned
  // event triggers on delivery. `on_delivery` (optional) runs at delivery
  // time (real side effect, e.g. the actual memcpy of region data).
  // `on_inject` (optional) runs on the source side when the message is
  // injected: under the windowed backend the delivery callback executes
  // on the *destination* node's worker, so any read of source-side state
  // (RDMA gathering the payload) must happen here instead.
  Event send(uint32_t src, uint32_t dst, uint64_t bytes, Event precondition,
             std::function<void()> on_delivery = nullptr,
             std::function<void()> on_inject = nullptr);

  // Deterministic extra AM-handler delay for one delivery (0 unless the
  // config enables am_jitter_ns). Exposed for tests.
  Time handler_jitter(uint64_t delivered_uid) const;

  // Virtual duration of moving `bytes` across the wire (latency + serial).
  Time transfer_time(uint64_t bytes) const;
  // Virtual duration of an intra-node copy of `bytes`.
  Time local_copy_time(uint64_t bytes) const;
  // One-way latency of a `fanin`-ary reduction/broadcast tree over
  // `participants` nodes (used by barriers and dynamic collectives).
  Time tree_latency(uint32_t participants, uint32_t fanin = 2) const;

  uint64_t messages_sent() const {
    return messages_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_sent() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  const NetworkConfig& config() const { return config_; }

  // The minimum cross-node influence delay: no callback on one node can
  // affect another node's state earlier than this after it runs. The
  // windowed backend's conservative lookahead.
  Time min_cross_node_delay() const {
    return config_.latency_ns + config_.am_handler_ns;
  }

 private:
  Simulator* sim_;
  NetworkConfig config_;
  std::vector<Time> nic_free_;  // per-node injection availability
  // Commutative tallies, bumped from whichever worker runs the send
  // callback; sums are order-independent, so still deterministic.
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace cr::sim
