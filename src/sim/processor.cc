#include "sim/processor.h"

#include <utility>

#include "sim/simulator.h"
#include "support/check.h"

namespace cr::sim {

Event Processor::spawn(Event precondition, Time duration,
                       std::function<void()> work) {
  UserEvent done(*sim_);
  auto work_ptr =
      work ? std::make_shared<std::function<void()>>(std::move(work))
           : nullptr;
  precondition.subscribe([this, duration, work_ptr, done](Time ready) mutable {
    // FIFO in ready order: the core picks this item up when it next goes
    // idle at or after `ready`.
    const Time start = std::max(ready, next_free_);
    const Time end = start + duration;
    next_free_ = end;
    busy_ += duration;
    if (work_ptr) {
      sim_->schedule_at(start, [work_ptr] { (*work_ptr)(); });
    }
    sim_->schedule_at(end, [done]() mutable { done.trigger(); });
  });
  return done.event();
}

}  // namespace cr::sim
