#include "sim/processor.h"

#include <utility>

#include "sim/simulator.h"
#include "support/check.h"
#include "support/trace.h"

namespace cr::sim {

Event Processor::spawn(Event precondition, Time duration,
                       std::function<void()> work, support::TraceTag tag) {
  UserEvent done(*sim_);
  auto work_ptr =
      work ? std::make_shared<std::function<void()>>(std::move(work))
           : nullptr;
  const uint64_t pre_uid = precondition.uid();
  const uint64_t done_uid = done.event().uid();
  precondition.subscribe([this, duration, work_ptr, done, pre_uid, done_uid,
                          tag = std::move(tag)](Time ready) mutable {
    // FIFO in ready order: the core picks this item up when it next goes
    // idle at or after `ready`.
    const Time start = std::max(ready, next_free_);
    const Time end = start + duration;
    next_free_ = end;
    busy_ += duration;
    if (support::Tracer* t = sim_->tracer()) {
      const support::SpanId span = t->add_span(
          id_.node, id_.core, tag.category,
          tag.empty() ? "work" : std::move(tag.name), start, end);
      t->edge(pre_uid, span);
      t->bind(done_uid, span);
    }
    if (work_ptr) {
      sim_->schedule_at(start, [work_ptr] { (*work_ptr)(); });
    }
    sim_->schedule_at(end, [done]() mutable { done.trigger(); });
  });
  return done.event();
}

}  // namespace cr::sim
