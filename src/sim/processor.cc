#include "sim/processor.h"

#include <utility>

#include "sim/simulator.h"
#include "support/check.h"
#include "support/trace.h"

namespace cr::sim {

Event Processor::spawn(Event precondition, Time duration,
                       std::function<void()> work, support::TraceTag tag) {
  UserEvent done(*sim_);
  auto work_ptr =
      work ? std::make_shared<std::function<void()>>(std::move(work))
           : nullptr;
  const uint64_t pre_uid = precondition.uid();
  const uint64_t done_uid = done.event().uid();
  precondition.subscribe([this, duration, work_ptr, done, pre_uid, done_uid,
                          tag = std::move(tag)](Time ready) mutable {
    // FIFO in ready order: the core picks this item up when it next goes
    // idle at or after `ready`.
    // This pickup mutates the core's schedule (next_free_, busy_): under
    // the windowed backend it must run either on the owning node's
    // worker or in a serial phase. A pickup arriving on another node's
    // worker means the spawn's precondition was wired to trigger
    // remotely — a host race waiting to happen.
    if (sim_->windowed()) {
      const uint32_t aff = Simulator::debug_affinity();
      CR_CHECK_MSG(aff == kNoAffinity || aff == id_.node,
                   "processor spawn picked up on a foreign node's worker");
    }
    const Time start = std::max(ready, next_free_);
    // Scenario scaling (heterogeneous speed, injected slowdowns): a pure
    // function of the virtual start time, so the effective duration is
    // identical under every worker count.
    const Time eff = perf_ != nullptr ? perf_->scale(start, duration)
                                      : duration;
    const Time end = start + eff;
    next_free_ = end;
    busy_ += eff;
    if (support::Tracer* t = sim_->tracer()) {
      const support::SpanId span = t->add_span(
          id_.node, id_.core, tag.category,
          tag.empty() ? "work" : std::move(tag.name), start, end);
      t->edge(pre_uid, span);
      t->bind(done_uid, span);
    }
    // Both entries are affine to this core's node: the work side effects
    // and the completion cascade (which picks up queued successors on
    // this node) must execute on the node's worker even when the pickup
    // itself ran in a serial phase (e.g. a barrier release).
    if (work_ptr) {
      sim_->schedule_at_affine(start, id_.node,
                               [work_ptr] { (*work_ptr)(); });
    }
    sim_->schedule_at_affine(end, id_.node,
                             [done]() mutable { done.trigger(); });
  });
  return done.event();
}

}  // namespace cr::sim
