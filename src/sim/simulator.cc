#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "support/check.h"
#include "support/trace.h"

namespace cr::sim {

namespace {
constexpr Time kInfTime = std::numeric_limits<Time>::max();

// Brief spin before yielding: the windowed backend must behave when the
// host has fewer cores than workers (oversubscribed CI runners).
void relax_wait(uint32_t& spins) {
  if (++spins < 256) return;
  spins = 0;
  std::this_thread::yield();
}
}  // namespace

thread_local Simulator::ExecCtx Simulator::tls_;

Simulator::~Simulator() {
  // Tear down the worker pool if a windowed run was interrupted (CHECK
  // failures abort, so this is belt-and-braces for tests).
  if (!threads_.empty()) {
    quit_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }
}

Time Simulator::now() const {
  return in_context() ? tls_.now : now_;
}

uint64_t Simulator::current_cause() const {
  return in_context() ? tls_.cause : current_cause_;
}

void Simulator::set_current_cause(uint64_t cause) {
  if (in_context()) {
    tls_.cause = cause;
  } else {
    current_cause_ = cause;
  }
}

uint32_t Simulator::debug_affinity() { return tls_.affinity; }

uint64_t Simulator::new_event_uid() {
  // Events are minted by unroll-time wiring or serial phases; a node
  // worker creating one would race the counter and the schedule.
  CR_CHECK_MSG(!in_context() || tls_.affinity == kNoAffinity,
               "event created from a worker callback");
  return ++next_event_uid_;
}

void Simulator::schedule_at(Time t, std::function<void()> fn) {
  if (!windowed_) {
    CR_CHECK_MSG(t >= now_, "cannot schedule into the past");
    queue_.push(Entry{t, next_seq_++, current_cause_, kNoAffinity,
                      std::move(fn)});
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
    return;
  }
  // Default target: stay on the scheduling affinity.
  const uint32_t target =
      in_context() ? tls_.affinity : kNoAffinity;
  uint32_t creator = kNoAffinity;
  uint64_t cseq = 0;
  if (in_context() && tls_.affinity != kNoAffinity) {
    CR_CHECK_MSG(t >= tls_.now, "cannot schedule into the past");
    creator = tls_.affinity;
    cseq = ++creator_seq_[creator];
  } else {
    if (in_context()) CR_CHECK_MSG(t >= tls_.now, "schedule into the past");
    cseq = ++global_creator_seq_;
  }
  push_windowed(t, target, creator, cseq, std::move(fn));
}

void Simulator::schedule_after(Time dt, std::function<void()> fn) {
  schedule_at(now() + dt, std::move(fn));
}

void Simulator::schedule_at_affine(Time t, uint32_t node,
                                   std::function<void()> fn) {
  if (!windowed_) {
    schedule_at(t, std::move(fn));
    return;
  }
  CR_CHECK(node < nodes_);
  uint32_t creator = kNoAffinity;
  uint64_t cseq = 0;
  if (in_context() && tls_.affinity != kNoAffinity) {
    CR_CHECK_MSG(t >= tls_.now, "cannot schedule into the past");
    creator = tls_.affinity;
    cseq = ++creator_seq_[creator];
  } else {
    if (in_context()) CR_CHECK_MSG(t >= tls_.now, "schedule into the past");
    cseq = ++global_creator_seq_;
  }
  push_windowed(t, node, creator, cseq, std::move(fn));
}

void Simulator::schedule_merge_completion(Time t, uint64_t merge_uid,
                                          std::function<void()> fn) {
  if (!windowed_) {
    schedule_at(t, std::move(fn));
    return;
  }
  // Key by the merge's unroll-assigned uid: whichever host thread
  // happens to complete the countdown, the entry is identical.
  push_windowed(t, kNoAffinity, kMergeCreator, merge_uid, std::move(fn));
}

void Simulator::push_windowed(Time t, uint32_t target, uint32_t creator,
                              uint64_t cseq, std::function<void()> fn) {
  Entry e{t, cseq, current_cause(), creator, std::move(fn)};
  const bool from_worker =
      running_ && in_context() && tls_.affinity != kNoAffinity;
  if (!from_worker) {
    // Unroll-time wiring or a serial phase: workers are parked, push
    // straight into the target partition.
    if (target == kNoAffinity) {
      global_q_.push(std::move(e));
    } else {
      node_q_[target].push(std::move(e));
    }
    return;
  }
  if (target == tls_.affinity) {
    node_q_[target].push(std::move(e));
    return;
  }
  // Cross-affinity from a worker: mailbox, drained at the next barrier.
  // Node-to-node influence must respect the conservative lookahead —
  // anything scheduled inside the current window would have been missed.
  if (target != kNoAffinity && t < win_end_) {
    const std::string msg =
        "cross-node schedule inside the lookahead window (from node " +
        std::to_string(tls_.affinity) + " to node " + std::to_string(target) +
        ", t=" + std::to_string(t) + ", window end=" +
        std::to_string(win_end_) + ", cause uid=" + std::to_string(e.cause) +
        ")";
    support::check_failed("t >= win_end_", __FILE__, __LINE__, msg.c_str());
  }
  Mailbox& box = inbox_[target == kNoAffinity ? nodes_ : target];
  std::lock_guard<std::mutex> lock(box.mu);
  box.items.push_back(std::move(e));
}

Time Simulator::run() {
  CR_CHECK(!running_);
  CR_CHECK_MSG(!windowed_, "begin_windowed() active: use run_windowed()");
  running_ = true;
  while (!queue_.empty()) {
    // Entry must be moved out before pop; priority_queue::top is const.
    auto& top = const_cast<Entry&>(queue_.top());
    Time t = top.time;
    uint64_t cause = top.cause;
    auto fn = std::move(top.fn);
    queue_.pop();
    CR_CHECK(t >= now_);
    now_ = t;
    current_cause_ = cause;
    ++events_processed_;
    fn();
    current_cause_ = 0;
  }
  running_ = false;
  return now_;
}

void Simulator::begin_windowed(uint32_t nodes, Time lookahead) {
  CR_CHECK(!running_ && !windowed_);
  CR_CHECK_MSG(queue_.empty(), "begin_windowed() after scheduling started");
  CR_CHECK(nodes > 0 && nodes < kMergeCreator);
  CR_CHECK_MSG(lookahead > 0, "windowed backend needs a positive lookahead");
  windowed_ = true;
  nodes_ = nodes;
  lookahead_ = lookahead;
  node_q_.resize(nodes);
  inbox_ = std::vector<Mailbox>(nodes + 1);
  creator_seq_.assign(nodes, 0);
}

void Simulator::drain_inboxes() {
  for (uint32_t i = 0; i <= nodes_; ++i) {
    Mailbox& box = inbox_[i];
    std::lock_guard<std::mutex> lock(box.mu);
    Queue& q = i == nodes_ ? global_q_ : node_q_[i];
    for (Entry& e : box.items) q.push(std::move(e));
    box.items.clear();
  }
}

Time Simulator::node_min_time() const {
  Time m = kInfTime;
  for (const Queue& q : node_q_) {
    if (!q.empty()) m = std::min(m, q.top().time);
  }
  return m;
}

void Simulator::execute(const Entry& e, uint32_t affinity,
                        uint64_t* processed, Time* max_time) {
  tls_.now = e.time;
  tls_.cause = e.cause;
  if (exec_log_ != nullptr) {
    (*exec_log_)[affinity == kNoAffinity ? nodes_ : affinity].push_back(
        ExecRecord{e.time, e.creator, e.seq});
  }
  ++*processed;
  if (e.time > *max_time) *max_time = e.time;
  e.fn();
  tls_.cause = 0;
}

void Simulator::process_nodes(uint32_t worker, uint32_t workers,
                              Time window_end, uint64_t* processed,
                              Time* max_time) {
  support::Tracer* tracer = tracer_;
  for (uint32_t n = worker; n < nodes_; n += workers) {
    Queue& q = node_q_[n];
    if (q.empty() || q.top().time >= window_end) continue;
    tls_.owner = this;
    tls_.affinity = n;
    if (tracer != nullptr) support::Tracer::set_thread_lane(n);
    while (!q.empty() && q.top().time < window_end) {
      auto& top = const_cast<Entry&>(q.top());
      Entry e{top.time, top.seq, top.cause, top.creator, std::move(top.fn)};
      q.pop();
      execute(e, n, processed, max_time);
    }
    if (tracer != nullptr) support::Tracer::set_thread_lane(-1);
    tls_.owner = nullptr;
    tls_.affinity = kNoAffinity;
  }
}

void Simulator::worker_main(uint32_t worker) {
  uint64_t seen = 0;
  uint32_t spins = 0;
  for (;;) {
    while (epoch_.load(std::memory_order_acquire) == seen) {
      relax_wait(spins);
    }
    seen = epoch_.load(std::memory_order_acquire);
    if (quit_.load(std::memory_order_acquire)) return;
    process_nodes(worker, num_workers_, win_end_,
                  &worker_processed_[worker], &worker_max_time_[worker]);
    done_workers_.fetch_add(1, std::memory_order_release);
  }
}

Time Simulator::run_windowed(uint32_t workers) {
  CR_CHECK(!running_);
  CR_CHECK_MSG(windowed_, "run_windowed() without begin_windowed()");
  if (workers == 0) workers = 1;
  num_workers_ = std::min(workers, nodes_);
  running_ = true;
  if (exec_log_ != nullptr) {
    exec_log_->assign(nodes_ + 1, {});
  }
  support::Tracer* tracer = tracer_;
  if (tracer != nullptr) tracer->begin_sharded(nodes_ + 1);

  worker_processed_.assign(num_workers_, 0);
  worker_max_time_.assign(num_workers_, 0);
  quit_.store(false, std::memory_order_release);
  for (uint32_t w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }

  uint64_t serial_processed = 0;
  Time serial_max_time = 0;
  for (;;) {
    drain_inboxes();
    // Serial phase: global entries (barrier fan-ins and releases, merge
    // completions) run strictly before any node entry at or after their
    // time. Their callbacks may push node entries directly — workers
    // are parked — so the frontier is recomputed as they run.
    Time node_min = node_min_time();
    while (!global_q_.empty() && global_q_.top().time <= node_min) {
      auto& top = const_cast<Entry&>(global_q_.top());
      Entry e{top.time, top.seq, top.cause, top.creator, std::move(top.fn)};
      global_q_.pop();
      tls_.owner = this;
      tls_.affinity = kNoAffinity;
      if (tracer != nullptr) support::Tracer::set_thread_lane(
          static_cast<int32_t>(nodes_));
      execute(e, kNoAffinity, &serial_processed, &serial_max_time);
      if (tracer != nullptr) support::Tracer::set_thread_lane(-1);
      tls_.owner = nullptr;
      node_min = node_min_time();
    }
    if (node_min == kInfTime) {
      CR_CHECK(global_q_.empty());
      break;
    }
    // Conservative window: node entries in [node_min, B) are mutually
    // independent across nodes (cross-node influence needs at least
    // `lookahead_` of wire time) and must not run past a pending global
    // entry (its serial callbacks may feed these very nodes).
    Time window_end = node_min + lookahead_;
    if (!global_q_.empty()) {
      window_end = std::min(window_end, global_q_.top().time);
    }
    CR_CHECK(window_end > node_min);
    win_end_ = window_end;

    uint64_t pending = global_q_.size();
    for (const Queue& q : node_q_) pending += q.size();
    if (pending > max_queue_depth_) max_queue_depth_ = pending;

    if (num_workers_ > 1) {
      done_workers_.store(0, std::memory_order_release);
      epoch_.fetch_add(1, std::memory_order_release);
      process_nodes(0, num_workers_, window_end, &worker_processed_[0],
                    &worker_max_time_[0]);
      uint32_t spins = 0;
      while (done_workers_.load(std::memory_order_acquire) !=
             num_workers_ - 1) {
        relax_wait(spins);
      }
    } else {
      process_nodes(0, 1, window_end, &worker_processed_[0],
                    &worker_max_time_[0]);
    }
  }

  if (!threads_.empty()) {
    quit_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }
  uint64_t processed = serial_processed;
  Time max_time = serial_max_time;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    processed += worker_processed_[w];
    max_time = std::max(max_time, worker_max_time_[w]);
  }
  events_processed_ += processed;
  now_ = max_time;
  if (tracer != nullptr) tracer->end_sharded();
  running_ = false;
  return now_;
}

}  // namespace cr::sim
