#include "sim/simulator.h"

#include <utility>

#include "support/check.h"

namespace cr::sim {

void Simulator::schedule_at(Time t, std::function<void()> fn) {
  CR_CHECK_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Entry{t, next_seq_++, current_cause_, std::move(fn)});
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
}

void Simulator::schedule_after(Time dt, std::function<void()> fn) {
  schedule_at(now_ + dt, std::move(fn));
}

Time Simulator::run() {
  CR_CHECK(!running_);
  running_ = true;
  while (!queue_.empty()) {
    // Entry must be moved out before pop; priority_queue::top is const.
    auto& top = const_cast<Entry&>(queue_.top());
    Time t = top.time;
    uint64_t cause = top.cause;
    auto fn = std::move(top.fn);
    queue_.pop();
    CR_CHECK(t >= now_);
    now_ = t;
    current_cause_ = cause;
    ++events_processed_;
    fn();
    current_cause_ = 0;
  }
  running_ = false;
  return now_;
}

}  // namespace cr::sim
