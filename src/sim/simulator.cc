#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>

#include "support/check.h"
#include "support/topology.h"
#include "support/trace.h"

namespace cr::sim {

namespace {
constexpr Time kInfTime = std::numeric_limits<Time>::max();

// Elided boundaries pre-planned per full window. Each elision advances
// every lane by at least one lookahead, so 64 already fuses away the
// overwhelming share of boundaries; the cap bounds the planning cost
// (O(cap * nodes) per full window) and the horizon-schedule memory.
constexpr uint32_t kMaxElidedPerWindow = 64;

// t + dt without wrapping past the infinite horizon.
Time sat_add(Time t, Time dt) {
  return t > kInfTime - dt ? kInfTime : t + dt;
}

// Min-heap ordering for (front, lane) pairs.
struct FrontLater {
  bool operator()(const std::pair<Time, uint32_t>& a,
                  const std::pair<Time, uint32_t>& b) const {
    return a.first > b.first;
  }
};
}  // namespace

thread_local Simulator::ExecCtx Simulator::tls_;

Simulator::~Simulator() {
  // Tear down the worker pool if a windowed run was interrupted (CHECK
  // failures abort, so this is belt-and-braces for tests).
  if (!threads_.empty()) {
    quit_.store(true, std::memory_order_release);
    barrier_.release(++epoch_seq_);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }
  if (wd_thread_.joinable()) {
    wd_quit_.store(true, std::memory_order_release);
    wd_thread_.join();
  }
}

Time Simulator::now() const {
  return in_context() ? tls_.now : now_;
}

uint64_t Simulator::current_cause() const {
  return in_context() ? tls_.cause : current_cause_;
}

void Simulator::set_current_cause(uint64_t cause) {
  if (in_context()) {
    tls_.cause = cause;
  } else {
    current_cause_ = cause;
  }
}

uint32_t Simulator::debug_affinity() { return tls_.affinity; }

uint64_t Simulator::new_event_uid() {
  // Events are minted by unroll-time wiring or serial phases; a node
  // worker creating one would race the counter and the schedule.
  CR_CHECK_MSG(!in_context() || tls_.affinity == kNoAffinity,
               "event created from a worker callback");
  return ++next_event_uid_;
}

void Simulator::schedule_at(Time t, std::function<void()> fn) {
  if (!windowed_) {
    CR_CHECK_MSG(t >= now_, "cannot schedule into the past");
    queue_.push(Entry{t, next_seq_++, current_cause_, kNoAffinity,
                      std::move(fn)});
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
    return;
  }
  // Default target: stay on the scheduling affinity.
  const uint32_t target =
      in_context() ? tls_.affinity : kNoAffinity;
  uint32_t creator = kNoAffinity;
  uint64_t cseq = 0;
  if (in_context() && tls_.affinity != kNoAffinity) {
    CR_CHECK_MSG(t >= tls_.now, "cannot schedule into the past");
    creator = tls_.affinity;
    cseq = ++creator_seq_[creator];
  } else {
    if (in_context()) CR_CHECK_MSG(t >= tls_.now, "schedule into the past");
    cseq = ++global_creator_seq_;
  }
  push_windowed(t, target, creator, cseq, std::move(fn));
}

void Simulator::schedule_after(Time dt, std::function<void()> fn) {
  schedule_at(now() + dt, std::move(fn));
}

void Simulator::schedule_at_affine(Time t, uint32_t node,
                                   std::function<void()> fn) {
  if (!windowed_) {
    schedule_at(t, std::move(fn));
    return;
  }
  CR_CHECK(node < nodes_);
  uint32_t creator = kNoAffinity;
  uint64_t cseq = 0;
  if (in_context() && tls_.affinity != kNoAffinity) {
    CR_CHECK_MSG(t >= tls_.now, "cannot schedule into the past");
    creator = tls_.affinity;
    cseq = ++creator_seq_[creator];
  } else {
    if (in_context()) CR_CHECK_MSG(t >= tls_.now, "schedule into the past");
    cseq = ++global_creator_seq_;
  }
  push_windowed(t, node, creator, cseq, std::move(fn));
}

void Simulator::schedule_merge_completion(Time t, uint64_t merge_uid,
                                          std::function<void()> fn) {
  if (!windowed_) {
    schedule_at(t, std::move(fn));
    return;
  }
  // The adaptive policy's feedback cap relies on every merge wirer
  // having declared how soon its completion can touch node state; a
  // completion from an undeclared wirer could slip inside a lane's
  // already-executed horizon.
  CR_CHECK_MSG(!adaptive_ || global_floor_ > 0,
               "merge completion scheduled with no registered "
               "global-influence floor (adaptive windows)");
  // Key by the merge's unroll-assigned uid: whichever host thread
  // happens to complete the countdown, the entry is identical.
  push_windowed(t, kNoAffinity, kMergeCreator, merge_uid, std::move(fn));
  // The merge is no longer an unknown: its completion is now a plain
  // global entry covered by the next-global-entry clamp. The planner
  // only reads this at full boundaries (workers parked), so a relaxed
  // decrement from whichever worker got here last is enough.
  const uint64_t prev = pending_merges_.fetch_sub(1, std::memory_order_relaxed);
  CR_CHECK_MSG(prev > 0, "merge completion scheduled without note_merge_armed");
}

void Simulator::note_cross_send_armed(uint32_t src) {
  if (!windowed_) return;
  CR_CHECK(src < nodes_);
  armed_cross_[src].fetch_add(1, std::memory_order_relaxed);
}

void Simulator::note_cross_send_fired(uint32_t src) {
  if (!windowed_) return;
  CR_CHECK(src < nodes_);
  const uint64_t prev =
      armed_cross_[src].fetch_sub(1, std::memory_order_relaxed);
  CR_CHECK_MSG(prev > 0, "cross-send fired without being armed");
}

void Simulator::note_merge_armed() {
  if (!windowed_) return;
  pending_merges_.fetch_add(1, std::memory_order_relaxed);
}

void Simulator::note_global_influence_floor(Time delay) {
  if (!windowed_) return;
  // A zero floor (single-participant tree) still means "next serial
  // phase at the earliest"; clamp to 1 so it stays a valid registration
  // and the lookahead clamp in compute_window_ends takes over.
  const Time d = std::max<Time>(delay, 1);
  global_floor_ = global_floor_ == 0 ? d : std::min(global_floor_, d);
}

void Simulator::note_lane_front(uint32_t n, Time t) {
  if (t < front_hint_[n]) {
    front_hint_[n] = t;
    front_heap_.emplace_back(t, n);
    std::push_heap(front_heap_.begin(), front_heap_.end(), FrontLater{});
  }
}

void Simulator::push_windowed(Time t, uint32_t target, uint32_t creator,
                              uint64_t cseq, std::function<void()> fn) {
  Entry e{t, cseq, current_cause(), creator, std::move(fn)};
  const bool from_worker =
      running_ && in_context() && tls_.affinity != kNoAffinity;
  pending_windowed_.fetch_add(1, std::memory_order_relaxed);
  if (!from_worker) {
    // Unroll-time wiring or a serial phase: workers are parked, push
    // straight into the target partition (and keep the front heap's
    // lower bound fresh — only serial contexts may lower a lane front).
    if (target == kNoAffinity) {
      global_q_.push(std::move(e));
    } else {
      note_lane_front(target, t);
      node_q_[target].push(std::move(e));
    }
    return;
  }
  if (target == tls_.affinity) {
    // Own lane: t >= tls_.now >= the lane's front at window start, so
    // the heap's lower-bound invariant holds without touching it.
    node_q_[target].push(std::move(e));
    return;
  }
  // Cross-affinity from a worker: staged in the worker's outbox, flushed
  // to the destination mailboxes at the end of this window share and
  // drained at the barrier. Node-to-node influence must respect the
  // destination's conservative window — anything scheduled inside it
  // would have been missed.
  if (target != kNoAffinity && t < win_end_lane_[target]) {
    const std::string msg =
        "cross-node schedule inside the lookahead window (from node " +
        std::to_string(tls_.affinity) + " to node " + std::to_string(target) +
        ", t=" + std::to_string(t) + ", window end=" +
        std::to_string(win_end_lane_[target]) + ", cause uid=" +
        std::to_string(e.cause) + ")";
    support::check_failed("t >= win_end_lane_[target]", __FILE__, __LINE__,
                          msg.c_str());
  }
  outbox_[tls_.worker].staged.emplace_back(
      target == kNoAffinity ? nodes_ : target, std::move(e));
}

void Simulator::flush_outbox(uint32_t worker) {
  auto& staged = outbox_[worker].staged;
  if (staged.empty()) return;
  // One lock round-trip per destination lane, not per entry. Insertion
  // order within a mailbox is irrelevant: the (time, creator, seq) key
  // is a total order, so the destination heap ordering is unaffected.
  std::stable_sort(staged.begin(), staged.end(),
                   [](const std::pair<uint32_t, Entry>& a,
                      const std::pair<uint32_t, Entry>& b) {
                     return a.first < b.first;
                   });
  size_t i = 0;
  while (i < staged.size()) {
    const uint32_t lane = staged[i].first;
    size_t j = i;
    while (j < staged.size() && staged[j].first == lane) ++j;
    Mailbox& box = inbox_[lane];
    std::lock_guard<std::mutex> lock(box.mu);
    for (size_t k = i; k < j; ++k) {
      box.items.push_back(std::move(staged[k].second));
    }
    box.nonempty.store(true, std::memory_order_release);
    i = j;
  }
  staged.clear();
}

Time Simulator::run() {
  CR_CHECK(!running_);
  CR_CHECK_MSG(!windowed_, "begin_windowed() active: use run_windowed()");
  running_ = true;
  while (!queue_.empty()) {
    // Entry must be moved out before pop; priority_queue::top is const.
    auto& top = const_cast<Entry&>(queue_.top());
    Time t = top.time;
    uint64_t cause = top.cause;
    auto fn = std::move(top.fn);
    queue_.pop();
    CR_CHECK(t >= now_);
    now_ = t;
    current_cause_ = cause;
    ++events_processed_;
    fn();
    current_cause_ = 0;
  }
  running_ = false;
  return now_;
}

void Simulator::begin_windowed(uint32_t nodes, Time lookahead) {
  CR_CHECK(!running_ && !windowed_);
  CR_CHECK_MSG(queue_.empty(), "begin_windowed() after scheduling started");
  CR_CHECK(nodes > 0 && nodes < kMergeCreator);
  CR_CHECK_MSG(lookahead > 0, "windowed backend needs a positive lookahead");
  windowed_ = true;
  nodes_ = nodes;
  lookahead_ = lookahead;
  node_q_.resize(nodes);
  inbox_ = std::vector<Mailbox>(nodes + 1);
  creator_seq_.assign(nodes, 0);
  win_end_lane_.assign(nodes, 0);
  front_hint_.assign(nodes, kInfTime);
  front_heap_.clear();
  armed_cross_ = std::make_unique<std::atomic<uint64_t>[]>(nodes);
  for (uint32_t n = 0; n < nodes; ++n) {
    armed_cross_[n].store(0, std::memory_order_relaxed);
  }
  elided_boundaries_ = 0;
  elide_count_ = 0;
  pending_merges_.store(0, std::memory_order_relaxed);
  elide_arrived_.store(0, std::memory_order_relaxed);
  elide_phase_.store(0, std::memory_order_relaxed);
  fronts_dirty_ = false;
}

void Simulator::drain_inboxes() {
  for (uint32_t i = 0; i <= nodes_; ++i) {
    Mailbox& box = inbox_[i];
    if (!box.nonempty.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(box.mu);
    Queue& q = i == nodes_ ? global_q_ : node_q_[i];
    for (Entry& e : box.items) {
      if (i != nodes_) note_lane_front(i, e.time);
      q.push(std::move(e));
    }
    box.items.clear();
    box.nonempty.store(false, std::memory_order_relaxed);
  }
}

Time Simulator::node_min_time() {
  // Lazy repair: pop superseded and stale pairs until the top matches a
  // live lane front. Invariant: a nonempty lane always has a heap pair
  // at or below its actual front (serial pushes go through
  // note_lane_front; worker own-lane pushes never lower a front below
  // the window start the heap already covers).
  while (!front_heap_.empty()) {
    const auto [t, n] = front_heap_.front();
    if (t != front_hint_[n]) {
      // Superseded by a lower pair for the same lane.
      std::pop_heap(front_heap_.begin(), front_heap_.end(), FrontLater{});
      front_heap_.pop_back();
      continue;
    }
    const Queue& q = node_q_[n];
    if (q.empty()) {
      std::pop_heap(front_heap_.begin(), front_heap_.end(), FrontLater{});
      front_heap_.pop_back();
      front_hint_[n] = kInfTime;
      continue;
    }
    const Time front = q.top().time;
    if (front == t) return t;
    CR_CHECK_MSG(front > t, "lane front below its heap lower bound");
    // Stale: the lane advanced past the recorded front. Re-key it.
    std::pop_heap(front_heap_.begin(), front_heap_.end(), FrontLater{});
    front_heap_.pop_back();
    front_hint_[n] = front;
    front_heap_.emplace_back(front, n);
    std::push_heap(front_heap_.begin(), front_heap_.end(), FrontLater{});
  }
  return kInfTime;
}

void Simulator::compute_window_ends(Time node_min) {
  ++windows_;
  const Time global_cap =
      global_q_.empty() ? kInfTime : global_q_.top().time;
  if (!adaptive_) {
    // Reference policy: one global window bounded by the minimum
    // cross-node delay (PR 5 behavior, bit for bit).
    const Time b = std::min(sat_add(node_min, lookahead_), global_cap);
    CR_CHECK(b > node_min);
    std::fill(win_end_lane_.begin(), win_end_lane_.end(), b);
    return;
  }
  // Adaptive policy. Feedback cap: a merge completion minted during this
  // window completes at >= node_min and reaches node state no earlier
  // than the registered floor after that (clamped to the lookahead so a
  // degenerate single-participant tree keeps the reference envelope).
  const Time cap = std::min(
      global_cap, global_floor_ == 0
                      ? kInfTime
                      : sat_add(node_min, std::max(global_floor_,
                                                   lookahead_)));
  // Outbound horizons. Only lanes that still hold armed cross-node
  // sends can influence other lanes (arming is unroll-time-only, so the
  // armed set never grows during the run). But influence *chains*: a
  // message sent during this window can lower its receiver's effective
  // front, and the receiver can relay. The fixed point of
  //   eff_m = min(front_m, min_{x armed, x != m} eff_x + lookahead)
  // collapses to: the armed lane with the smallest front (h1, at lane
  // arg1) keeps eff = h1, and every other armed lane m (including ones
  // with an empty queue) has eff_m = min(front_m, h1 + lookahead),
  // because arg1 can reach it in one hop. A lane's window end is then
  // min over the *other* armed lanes of eff + lookahead:
  //   n != arg1:  B_n = h1 + lookahead      (arg1 influences n directly)
  //   n == arg1:  B_n = min(h2 + lookahead, h1 + 2*lookahead)
  //               (direct from the second-lowest armed front, or a
  //                relay of arg1's own output through any armed lane)
  // each clamped by the global-feedback cap. Basing horizons on
  // boundary fronts alone (the obvious formula) is unsound: lane A at
  // t sends to lane B (arrive t + L, below B's boundary front), B
  // reacts and sends back at t + 2L — below where A was allowed to run.
  Time h1 = kInfTime;
  Time h2 = kInfTime;
  uint32_t arg1 = kNoAffinity;
  uint32_t armed_lanes = 0;
  for (uint32_t m = 0; m < nodes_; ++m) {
    if (armed_cross_[m].load(std::memory_order_relaxed) == 0) continue;
    ++armed_lanes;
    if (node_q_[m].empty()) continue;
    const Time h = node_q_[m].top().time;
    if (h < h1) {
      h2 = h1;
      h1 = h;
      arg1 = m;
    } else if (h < h2) {
      h2 = h;
    }
  }
  const Time b_other = std::min(cap, sat_add(h1, lookahead_));
  Time b_min = cap;
  if (arg1 != kNoAffinity && armed_lanes >= 2) {
    b_min = std::min(b_min, std::min(sat_add(h2, lookahead_),
                                     sat_add(h1, 2 * lookahead_)));
  }
  for (uint32_t n = 0; n < nodes_; ++n) {
    const Time b = n == arg1 ? b_min : b_other;
    // Every component strictly exceeds node_min: fronts of armed lanes
    // are >= node_min, the serial phase drained every global entry at
    // or below node_min (so global_cap > node_min), and the lookahead
    // is positive. Every lane therefore makes progress.
    CR_CHECK(b > node_min);
    win_end_lane_[n] = b;
  }
}

void Simulator::plan_elisions() {
  elide_count_ = 0;
  // Elision needs the adaptive machinery (armed counts, influence
  // floors); the reference policy stays the untouched PR 5 baseline.
  if (!elide_ || !adaptive_) return;
  // An outstanding remote merge could mint a global-lane entry at an
  // unknown time mid-region; every boundary until it schedules must
  // run the full serial protocol.
  if (pending_merges_.load(std::memory_order_relaxed) != 0) return;
  // With no outstanding merges, workers cannot mint global entries
  // (worker scheduling always targets node lanes), so the global queue
  // is frozen for the whole region and its front is an exact cap: the
  // boundary *at* the cap must be a full one (serial phase due), and
  // every boundary strictly below it has no serial work by
  // construction — that is the elision condition.
  const Time global_cap =
      global_q_.empty() ? kInfTime : global_q_.top().time;
  uint32_t armed_lanes = 0;
  for (uint32_t m = 0; m < nodes_; ++m) {
    if (armed_cross_[m].load(std::memory_order_relaxed) != 0) ++armed_lanes;
  }
  if (armed_lanes == 0) {
    // No lane can influence another: compute_window_ends already ran
    // every lane to the global cap (or to infinity), and the next
    // boundary either has serial work or ends the run.
    return;
  }
  if (elide_ends_.size() < kMaxElidedPerWindow) {
    elide_ends_.resize(kMaxElidedPerWindow);
  }
  // Iterate the window-horizon solve forward without executing: the
  // previous sub-window's ends are conservative lower bounds on every
  // entry an armed lane can still execute or receive (its queue was
  // drained below its end, and any in-flight delivery was CHECKed at
  // or beyond it), so they play the role the boundary fronts played in
  // compute_window_ends. Empty-vs-nonempty queues are unknowable this
  // far ahead, so every armed lane's bound participates — strictly
  // more conservative than the boundary solve, never less safe.
  const std::vector<Time>* lb = &win_end_lane_;
  while (elide_count_ < kMaxElidedPerWindow) {
    Time h1 = kInfTime;
    Time h2 = kInfTime;
    uint32_t arg1 = kNoAffinity;
    for (uint32_t m = 0; m < nodes_; ++m) {
      if (armed_cross_[m].load(std::memory_order_relaxed) == 0) continue;
      const Time h = (*lb)[m];
      if (h < h1) {
        h2 = h1;
        h1 = h;
        arg1 = m;
      } else if (h < h2) {
        h2 = h;
      }
    }
    const Time b_other = std::min(global_cap, sat_add(h1, lookahead_));
    Time b_min = global_cap;
    if (arg1 != kNoAffinity && armed_lanes >= 2) {
      b_min = std::min(b_min, std::min(sat_add(h2, lookahead_),
                                       sat_add(h1, 2 * lookahead_)));
    }
    std::vector<Time>& ends = elide_ends_[elide_count_];
    ends.assign(nodes_, b_other);
    if (arg1 != kNoAffinity) ends[arg1] = b_min;
    // Stop once the schedule stops advancing (all lanes pinned at the
    // global cap — the next boundary needs its serial phase) or has
    // run to infinity (one more sub-window drains everything).
    bool progress = false;
    bool all_inf = true;
    for (uint32_t n = 0; n < nodes_; ++n) {
      progress |= ends[n] > (*lb)[n];
      all_inf &= ends[n] == kInfTime;
    }
    if (!progress) break;
    ++elide_count_;
    if (all_inf) break;
    lb = &elide_ends_[elide_count_ - 1];
  }
  if (elide_count_ > 0) {
    // Worker-side mailbox drains inside the region bypass the front
    // heap; rebuild it before the next plan.
    fronts_dirty_ = true;
  }
}

void Simulator::rebuild_fronts() {
  front_heap_.clear();
  for (uint32_t n = 0; n < nodes_; ++n) {
    if (node_q_[n].empty()) {
      front_hint_[n] = kInfTime;
    } else {
      front_hint_[n] = node_q_[n].top().time;
      front_heap_.emplace_back(front_hint_[n], n);
    }
  }
  std::make_heap(front_heap_.begin(), front_heap_.end(), FrontLater{});
  fronts_dirty_ = false;
}

void Simulator::drain_block_inboxes(uint32_t worker) {
  // A worker folding flushed deliveries into its own block between
  // sub-windows. Unlike drain_inboxes this never touches the front
  // heap (coordinator-owned) or the global mailbox (serial-phase
  // input, frozen while elision is legal).
  for (uint32_t n = lane_lo_[worker]; n < lane_hi_[worker]; ++n) {
    Mailbox& box = inbox_[n];
    if (!box.nonempty.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(box.mu);
    for (Entry& e : box.items) {
      node_q_[n].push(std::move(e));
    }
    box.items.clear();
    box.nonempty.store(false, std::memory_order_relaxed);
  }
}

void Simulator::elide_rendezvous(uint32_t sub) {
  // Every participant has finished sub-window `sub` and flushed its
  // outbox. The last arriver installs the pre-planned horizons for the
  // next sub-window and releases everyone; the acq_rel arrival RMW plus
  // the release store on the phase word publish both the flushed
  // mailboxes and the new horizons to every worker that leaves.
  const uint64_t cur = elide_phase_.load(std::memory_order_acquire);
  if (elide_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      num_workers_) {
    const std::vector<Time>& ends = elide_ends_[sub];
    std::copy(ends.begin(), ends.end(), win_end_lane_.begin());
    if (wd_enabled_.load(std::memory_order_relaxed)) {
      // The boundary heartbeat for elided boundaries, plus fresh window
      // ends for the flight recorder (fronts stay at the last full
      // boundary's snapshot: other workers own those queues).
      for (uint32_t n = 0; n < nodes_; ++n) {
        wd_lane_winend_[n].store(ends[n], std::memory_order_relaxed);
      }
      wd_heartbeat_.fetch_add(1, std::memory_order_relaxed);
    }
    elide_arrived_.store(0, std::memory_order_relaxed);
    elide_phase_.store(cur + 1, std::memory_order_release);
    elide_phase_.notify_all();
    return;
  }
  for (uint32_t i = 0; i < WindowBarrier::kSpinBudget; ++i) {
    if (elide_phase_.load(std::memory_order_acquire) != cur) return;
  }
  while (elide_phase_.load(std::memory_order_acquire) == cur) {
    elide_phase_.wait(cur, std::memory_order_acquire);
  }
}

void Simulator::run_region(uint32_t worker, uint64_t* processed,
                           Time* max_time) {
  // One fused region: the full window just planned plus elide_count_
  // follow-on windows whose boundaries collapsed to a rendezvous. The
  // region runs under a single release/arrive cycle of the main
  // barrier; windows_ - 1 names the whole region in profiles and the
  // test hook.
  const uint64_t win = windows_ - 1;
  for (uint32_t sub = 0;; ++sub) {
    process_nodes(worker, processed, max_time);
    if (sub == elide_count_) return;
    elide_rendezvous(sub);
    drain_block_inboxes(worker);
    if (host_prof_ != nullptr) {
      prof_mark(worker, win, support::HostPhase::kElided);
    }
  }
}

void Simulator::execute(const Entry& e, uint32_t affinity,
                        uint64_t* processed, Time* max_time) {
  const uint32_t lane = affinity == kNoAffinity ? nodes_ : affinity;
  // The conservative-safety invariant, independent of window policy: no
  // entry may run before something its lane already executed.
  if (e.time < lane_last_exec_[lane]) {
    const std::string msg =
        "lane clock moved backwards (lane " + std::to_string(lane) +
        ", entry t=" + std::to_string(e.time) + ", lane already at t=" +
        std::to_string(lane_last_exec_[lane]) + ", cause uid=" +
        std::to_string(e.cause) + ")";
    support::check_failed("e.time >= lane_last_exec_[lane]", __FILE__,
                          __LINE__, msg.c_str());
  }
  lane_last_exec_[lane] = e.time;
  tls_.now = e.time;
  tls_.cause = e.cause;
  if (exec_log_ != nullptr) {
    (*exec_log_)[lane].push_back(ExecRecord{e.time, e.creator, e.seq});
  }
  ++*processed;
  if (e.time > *max_time) *max_time = e.time;
  pending_windowed_.fetch_sub(1, std::memory_order_relaxed);
  if (wd_enabled_.load(std::memory_order_relaxed)) {
    // Flight recorder: last-executed state per worker, plus the
    // liveness heartbeat the monitor thread watches. Relaxed stores —
    // the monitor only needs internally-valid snapshots.
    const uint32_t w = tls_.worker;
    wd_worker_uid_[w].store(e.cause, std::memory_order_relaxed);
    wd_worker_time_[w].store(e.time, std::memory_order_relaxed);
    wd_worker_win_[w].store(windows_, std::memory_order_relaxed);
    wd_heartbeat_.fetch_add(1, std::memory_order_relaxed);
  }
  e.fn();
  tls_.cause = 0;
}

void Simulator::prof_mark(uint32_t worker, uint64_t window,
                          support::HostPhase phase) {
  const uint64_t t = support::host_now_ns();
  host_prof_->record(worker, window, phase, prof_cursor_[worker], t);
  prof_cursor_[worker] = t;
}

void Simulator::process_nodes(uint32_t worker, uint64_t* processed,
                              Time* max_time) {
  support::Tracer* tracer = tracer_;
  for (uint32_t n = lane_lo_[worker]; n < lane_hi_[worker]; ++n) {
    if (test_lane_hook_) test_lane_hook_(n, windows_ - 1);
    Queue& q = node_q_[n];
    const Time window_end = win_end_lane_[n];
    if (q.empty() || q.top().time >= window_end) continue;
    tls_.owner = this;
    tls_.affinity = n;
    tls_.worker = worker;
    if (tracer != nullptr) support::Tracer::set_thread_lane(n);
    while (!q.empty() && q.top().time < window_end) {
      auto& top = const_cast<Entry&>(q.top());
      Entry e{top.time, top.seq, top.cause, top.creator, std::move(top.fn)};
      q.pop();
      execute(e, n, processed, max_time);
    }
    if (tracer != nullptr) support::Tracer::set_thread_lane(-1);
    tls_.owner = nullptr;
    tls_.affinity = kNoAffinity;
  }
  if (host_prof_ != nullptr) {
    prof_mark(worker, windows_ - 1, support::HostPhase::kLaneDrain);
  }
  flush_outbox(worker);
  if (host_prof_ != nullptr) {
    prof_mark(worker, windows_ - 1, support::HostPhase::kOutboxFlush);
  }
}

void Simulator::worker_main(uint32_t worker) {
  if (!worker_cpus_.empty()) {
    support::pin_current_thread(
        worker_cpus_[worker % worker_cpus_.size()]);
  }
  uint64_t seen = 0;
  for (;;) {
    seen = barrier_.await_release(seen);
    if (quit_.load(std::memory_order_acquire)) return;
    // windows_ was bumped by compute_window_ends before this release and
    // is stable until every worker arrives; the release/acquire pair
    // publishes it, so windows_ - 1 is this window's index.
    const uint64_t win = windows_ - 1;
    if (host_prof_ != nullptr) {
      prof_mark(worker, win, support::HostPhase::kBarrierWait);
    }
    run_region(worker, &worker_processed_[worker],
               &worker_max_time_[worker]);
    barrier_.arrive(worker - 1, seen);
    if (host_prof_ != nullptr) {
      prof_mark(worker, win, support::HostPhase::kBarrierWake);
    }
  }
}

Time Simulator::run_windowed(uint32_t workers) {
  CR_CHECK(!running_);
  CR_CHECK_MSG(windowed_, "run_windowed() without begin_windowed()");
  if (workers == 0) workers = 1;
  num_workers_ = std::min(workers, nodes_);
  running_ = true;
  if (exec_log_ != nullptr) {
    exec_log_->assign(nodes_ + 1, {});
  }
  support::Tracer* tracer = tracer_;
  if (tracer != nullptr) tracer->begin_sharded(nodes_ + 1);

  // Contiguous lane blocks: worker w owns [w*N/W, (w+1)*N/W). Neighboring
  // lanes exchange the most mailbox traffic in the apps' halo patterns,
  // so blocks beat round-robin for locality — and the per-lane execution
  // order (the determinism witness) is identical either way.
  lane_lo_.assign(num_workers_, 0);
  lane_hi_.assign(num_workers_, 0);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    lane_lo_[w] = static_cast<uint32_t>(
        (static_cast<uint64_t>(nodes_) * w) / num_workers_);
    lane_hi_[w] = static_cast<uint32_t>(
        (static_cast<uint64_t>(nodes_) * (w + 1)) / num_workers_);
  }
  outbox_ = std::vector<OutBuffer>(num_workers_);
  lane_last_exec_.assign(nodes_ + 1, 0);
  worker_processed_.assign(num_workers_, 0);
  worker_max_time_.assign(num_workers_, 0);

  // Optional topology pinning: the coordinator takes slot 0 and restores
  // its prior affinity on exit; workers pin in worker_main.
  std::vector<int> saved_affinity;
  if (!worker_cpus_.empty()) {
    saved_affinity = support::current_thread_affinity();
    support::pin_current_thread(worker_cpus_[0]);
  }

  quit_.store(false, std::memory_order_release);
  barrier_.init(num_workers_ - 1);
  epoch_seq_ = 0;

  // Host-phase profiler: begin before the workers spawn so every lane's
  // first span starts at the shared origin.
  if (host_prof_ != nullptr) {
    host_prof_->begin(num_workers_);
    prof_cursor_.assign(num_workers_, host_prof_->origin_ns());
  }
  // Stall watchdog: allocate the flight-recorder slots, then start the
  // monitor. wd_enabled_ gates every recorder store in the hot path.
  if (wd_opts_.budget_ms > 0) {
    wd_lane_front_ = std::make_unique<std::atomic<uint64_t>[]>(nodes_);
    wd_lane_winend_ = std::make_unique<std::atomic<uint64_t>[]>(nodes_);
    wd_worker_uid_ = std::make_unique<std::atomic<uint64_t>[]>(num_workers_);
    wd_worker_time_ = std::make_unique<std::atomic<uint64_t>[]>(num_workers_);
    wd_worker_win_ = std::make_unique<std::atomic<uint64_t>[]>(num_workers_);
    for (uint32_t n = 0; n < nodes_; ++n) {
      wd_lane_front_[n].store(kInfTime, std::memory_order_relaxed);
      wd_lane_winend_[n].store(0, std::memory_order_relaxed);
    }
    for (uint32_t w = 0; w < num_workers_; ++w) {
      wd_worker_uid_[w].store(0, std::memory_order_relaxed);
      wd_worker_time_[w].store(0, std::memory_order_relaxed);
      wd_worker_win_[w].store(0, std::memory_order_relaxed);
    }
    wd_heartbeat_.store(0, std::memory_order_relaxed);
    wd_window_.store(0, std::memory_order_relaxed);
    wd_fired_.store(false, std::memory_order_relaxed);
    wd_quit_.store(false, std::memory_order_release);
    wd_enabled_.store(true, std::memory_order_release);
    wd_thread_ = std::thread([this] { watchdog_main(); });
  }

  for (uint32_t w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }

  uint64_t serial_processed = 0;
  Time serial_max_time = 0;
  for (;;) {
    // windows_ counts completed compute_window_ends calls, so at the top
    // of an iteration it is the index of the window being planned.
    const uint64_t win = windows_;
    drain_inboxes();
    // After a fused region the worker-side rendezvous drains have
    // bypassed note_lane_front; rebuild the heap before trusting it.
    if (fronts_dirty_) rebuild_fronts();
    // Serial phase: global entries (barrier fan-ins and releases, merge
    // completions) run strictly before any node entry at or after their
    // time. Their callbacks may push node entries directly — workers
    // are parked — so the frontier is recomputed as they run (the heap
    // makes each recomputation O(log nodes) amortized).
    Time node_min = node_min_time();
    if (host_prof_ != nullptr) {
      prof_mark(0, win, support::HostPhase::kPlan);
    }
    uint64_t serial_before = serial_processed;
    while (!global_q_.empty() && global_q_.top().time <= node_min) {
      // The global lane's share of the test hook (lane == nodes_), so
      // tests can stretch a serial drain the way they wedge a lane.
      if (test_lane_hook_) test_lane_hook_(nodes_, win);
      if (wd_enabled_.load(std::memory_order_relaxed)) {
        // Defense in depth for long global bursts: execute() beats
        // before each callback, but an iteration also spends time in
        // frontier recomputation the heartbeat should witness.
        wd_heartbeat_.fetch_add(1, std::memory_order_relaxed);
      }
      auto& top = const_cast<Entry&>(global_q_.top());
      Entry e{top.time, top.seq, top.cause, top.creator, std::move(top.fn)};
      global_q_.pop();
      tls_.owner = this;
      tls_.affinity = kNoAffinity;
      if (tracer != nullptr) support::Tracer::set_thread_lane(
          static_cast<int32_t>(nodes_));
      execute(e, kNoAffinity, &serial_processed, &serial_max_time);
      if (tracer != nullptr) support::Tracer::set_thread_lane(-1);
      tls_.owner = nullptr;
      node_min = node_min_time();
    }
    if (host_prof_ != nullptr && serial_processed != serial_before) {
      prof_mark(0, win, support::HostPhase::kSerialDrain);
    }
    if (node_min == kInfTime) {
      CR_CHECK(global_q_.empty());
      break;
    }
    // Publish this window's per-lane boundaries (policy-dependent; see
    // compute_window_ends) before releasing the workers, then pre-plan
    // the horizons of every boundary this region can elide — all while
    // workers are still parked, so the whole schedule is deterministic.
    compute_window_ends(node_min);
    plan_elisions();
    elided_boundaries_ += elide_count_;

    // Queue-depth gauge: entries pushed minus executed, sampled at the
    // boundary where the value is deterministic (same instant the old
    // O(nodes) rescan measured, without the rescan).
    const uint64_t pending =
        pending_windowed_.load(std::memory_order_relaxed);
    if (pending > max_queue_depth_) max_queue_depth_ = pending;

    if (wd_enabled_.load(std::memory_order_relaxed)) {
      // Boundary snapshot for the flight recorder: lane fronts and the
      // window just planned. Costs O(nodes) per window, watchdog only.
      for (uint32_t n = 0; n < nodes_; ++n) {
        wd_lane_front_[n].store(
            node_q_[n].empty() ? kInfTime : node_q_[n].top().time,
            std::memory_order_relaxed);
        wd_lane_winend_[n].store(win_end_lane_[n],
                                 std::memory_order_relaxed);
      }
      wd_window_.store(windows_, std::memory_order_relaxed);
      wd_heartbeat_.fetch_add(1, std::memory_order_relaxed);
    }
    if (host_prof_ != nullptr) {
      prof_mark(0, win, support::HostPhase::kPlan);
    }

    if (num_workers_ > 1) {
      barrier_.release(++epoch_seq_);
      if (host_prof_ != nullptr) {
        prof_mark(0, win, support::HostPhase::kBarrierWake);
      }
      run_region(0, &worker_processed_[0], &worker_max_time_[0]);
      // Double-buffered boundary work: while the stragglers finish
      // their shares, pre-stage the coordinator's own block of mailbox
      // merges for the next boundary. Whatever lands after this peek
      // is caught by the drain at the loop top; entries folded in now
      // come off the next serial segment. The coordinator owns the
      // front heap, so recording fronts here is race-free.
      for (uint32_t n = lane_lo_[0]; n < lane_hi_[0]; ++n) {
        Mailbox& box = inbox_[n];
        if (!box.nonempty.load(std::memory_order_acquire)) continue;
        std::lock_guard<std::mutex> lock(box.mu);
        for (Entry& e : box.items) {
          note_lane_front(n, e.time);
          node_q_[n].push(std::move(e));
        }
        box.items.clear();
        box.nonempty.store(false, std::memory_order_relaxed);
      }
      if (host_prof_ != nullptr) {
        prof_mark(0, win, support::HostPhase::kElided);
      }
      barrier_.wait_arrivals(epoch_seq_);
      if (host_prof_ != nullptr) {
        prof_mark(0, win, support::HostPhase::kBarrierWait);
      }
    } else {
      run_region(0, &worker_processed_[0], &worker_max_time_[0]);
    }
  }

  // Close the profile as the drain loop exits: wall time measures the
  // windowed drain, not the pool teardown below (joining parked workers
  // can cost milliseconds of scheduler latency that no phase owns).
  // Workers have recorded their final span by their last arrive; their
  // threads are joined before profile() can run.
  if (host_prof_ != nullptr) host_prof_->end();

  if (!threads_.empty()) {
    quit_.store(true, std::memory_order_release);
    barrier_.release(++epoch_seq_);
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }
  if (wd_enabled_.load(std::memory_order_relaxed)) {
    wd_enabled_.store(false, std::memory_order_release);
    wd_quit_.store(true, std::memory_order_release);
    wd_thread_.join();
  }
  if (!saved_affinity.empty()) {
    support::set_current_thread_affinity(saved_affinity);
  }
  uint64_t processed = serial_processed;
  Time max_time = serial_max_time;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    processed += worker_processed_[w];
    max_time = std::max(max_time, worker_max_time_[w]);
  }
  events_processed_ += processed;
  now_ = max_time;
  if (tracer != nullptr) tracer->end_sharded();
  running_ = false;
  return now_;
}

std::string Simulator::watchdog_dump(uint64_t stalled_ns) const {
  auto fmt_time = [](uint64_t t) {
    return t == static_cast<uint64_t>(kInfTime) ? std::string("inf")
                                                : std::to_string(t);
  };
  std::string out;
  out.reserve(512 + 96 * nodes_);
  out += "=== simulator stall watchdog ===\n";
  out += "no execution progress for " +
         std::to_string(stalled_ns / 1000000) + " ms (budget " +
         std::to_string(wd_opts_.budget_ms) + " ms)\n";
  out += "window " + std::to_string(wd_window_.load(std::memory_order_acquire)) +
         ", heartbeat " +
         std::to_string(wd_heartbeat_.load(std::memory_order_acquire)) +
         ", barrier epoch " + std::to_string(barrier_.current_epoch()) +
         " (completed " + std::to_string(barrier_.last_completed_epoch()) +
         "), parked workers " + std::to_string(barrier_.parked_workers()) +
         "\n";
  for (uint32_t w = 0; w < num_workers_; ++w) {
    out += "worker " + std::to_string(w) + ": last window " +
           std::to_string(wd_worker_win_[w].load(std::memory_order_acquire)) +
           ", last exec t=" +
           std::to_string(wd_worker_time_[w].load(std::memory_order_acquire)) +
           ", cause uid " +
           std::to_string(wd_worker_uid_[w].load(std::memory_order_acquire)) +
           "\n";
  }
  for (uint32_t n = 0; n < nodes_; ++n) {
    out += "lane " + std::to_string(n) + ": front t=" +
           fmt_time(wd_lane_front_[n].load(std::memory_order_acquire)) +
           ", window end t=" +
           fmt_time(wd_lane_winend_[n].load(std::memory_order_acquire)) +
           ", armed sends " +
           std::to_string(
               armed_cross_[n].load(std::memory_order_acquire)) +
           "\n";
  }
  out += "=== end watchdog dump ===\n";
  return out;
}

void Simulator::watchdog_main() {
  const uint64_t budget_ns = wd_opts_.budget_ms * 1000000ull;
  // Poll at a quarter of the budget (capped at 10ms) so a stall is
  // caught within ~1.25x the budget without burning a core.
  const uint64_t poll_ns =
      std::min<uint64_t>(std::max<uint64_t>(budget_ns / 4, 100000ull),
                         10000000ull);
  uint64_t last_beat = wd_heartbeat_.load(std::memory_order_acquire);
  uint64_t last_change = support::host_now_ns();
  while (!wd_quit_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(poll_ns));
    const uint64_t beat = wd_heartbeat_.load(std::memory_order_acquire);
    if (beat != last_beat) {
      last_beat = beat;
      last_change = support::host_now_ns();
      continue;
    }
    const uint64_t stalled = support::host_now_ns() - last_change;
    if (stalled < budget_ns) continue;
    const std::string dump = watchdog_dump(stalled);
    if (wd_opts_.sink) {
      wd_opts_.sink(dump);
    } else {
      std::fputs(dump.c_str(), stderr);
      std::fflush(stderr);
    }
    wd_fired_.store(true, std::memory_order_release);
    if (wd_opts_.abort_on_stall) std::abort();
    // Non-aborting (test) mode: re-arm and keep monitoring.
    last_change = support::host_now_ns();
  }
}

}  // namespace cr::sim
