#include "sim/event.h"

#include <utility>

#include "sim/simulator.h"
#include "support/check.h"

namespace cr::sim {

void Event::subscribe(std::function<void(Time)> fn) const {
  if (!state_) {
    fn(0);
    return;
  }
  if (state_->triggered) {
    fn(state_->trigger_time);
    return;
  }
  state_->waiters.push_back(std::move(fn));
}

Event Event::merge(Simulator& sim, const std::vector<Event>& events) {
  // Count the untriggered inputs; if none, the merge is already complete.
  size_t pending = 0;
  for (const Event& e : events) {
    if (!e.has_triggered()) ++pending;
  }
  if (pending == 0) return Event();

  UserEvent merged(sim);
  // The counter is shared by the subscriptions below.
  auto remaining = std::make_shared<size_t>(pending);
  for (const Event& e : events) {
    if (e.has_triggered()) continue;
    e.subscribe([merged, remaining](Time) mutable {
      if (--*remaining == 0) merged.trigger();
    });
  }
  return merged.event();
}

UserEvent::UserEvent(Simulator& sim)
    : sim_(&sim), state_(std::make_shared<detail::EventState>()) {}

void UserEvent::trigger() {
  CR_CHECK_MSG(!state_->triggered, "UserEvent triggered twice");
  state_->triggered = true;
  state_->trigger_time = sim_->now();
  auto waiters = std::move(state_->waiters);
  state_->waiters.clear();
  for (auto& fn : waiters) fn(state_->trigger_time);
}

}  // namespace cr::sim
