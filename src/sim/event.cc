#include "sim/event.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "sim/simulator.h"
#include "support/check.h"
#include "support/trace.h"

namespace cr::sim {

void Event::subscribe(std::function<void(Time)> fn) const {
  if (!state_) {
    fn(0);
    return;
  }
  if (state_->triggered) {
    // A subscription on an already-triggered event still establishes a
    // causal link: anything fn does is caused by this event.
    Simulator* sim = state_->sim;
    if (sim != nullptr && sim->event_graph() != nullptr) {
      const uint64_t prev = sim->current_cause();
      sim->set_current_cause(state_->uid);
      fn(state_->trigger_time);
      sim->set_current_cause(prev);
    } else {
      fn(state_->trigger_time);
    }
    return;
  }
  state_->waiters.push_back(std::move(fn));
}

Event Event::merge(Simulator& sim, const std::vector<Event>& events) {
  // Count the untriggered inputs; if none, the merge is already complete.
  size_t pending = 0;
  for (const Event& e : events) {
    if (!e.has_triggered()) ++pending;
  }
  if (pending == 0) return Event();

  UserEvent merged(sim);
  // The counter is shared by the subscriptions below. Atomic so a
  // contract violation under the windowed backend (inputs triggering on
  // two node workers at once) cannot corrupt the count silently.
  auto remaining = std::make_shared<std::atomic<size_t>>(pending);
  Simulator* simp = &sim;
  const uint64_t merged_uid = merged.event().uid();
  if (EventGraph* g = sim.event_graph()) {
    // Every input — including ones already triggered by unroll-time
    // wiring — happens-before the merged event. Recording the triggered
    // ones too keeps the graph exact rather than schedule-dependent.
    for (const Event& e : events) g->edge(e.uid(), merged_uid);
  }
  for (const Event& e : events) {
    if (e.has_triggered()) continue;
    const uint64_t input_uid = e.uid();
    e.subscribe([merged, remaining, simp, merged_uid,
                 input_uid](Time) mutable {
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // The input that completes the merge is its critical
        // predecessor; record the identity for critical-path analysis.
        if (support::Tracer* t = simp->tracer()) {
          t->alias(merged_uid, input_uid);
        }
        merged.trigger();
      }
    });
  }
  return merged.event();
}

Event Event::merge_remote(Simulator& sim, const std::vector<Event>& events) {
  size_t pending = 0;
  for (const Event& e : events) {
    if (!e.has_triggered()) ++pending;
  }
  if (pending == 0) return Event();

  // Until the countdown completes and the deferred completion entry is
  // actually scheduled, this merge can mint a global-lane entry at an
  // unknown future time — the window planner must not elide boundaries
  // while any such merge is outstanding (schedule_merge_completion
  // drops the count).
  sim.note_merge_armed();
  UserEvent merged(sim);
  auto remaining = std::make_shared<std::atomic<size_t>>(pending);
  Simulator* simp = &sim;
  const uint64_t merged_uid = merged.event().uid();
  if (EventGraph* g = sim.event_graph()) {
    for (const Event& e : events) g->edge(e.uid(), merged_uid);
  }
  // The completion closure scans the inputs once everything triggered:
  // the alias choice depends only on trigger times and input order,
  // never on which worker's countdown decrement happened to be last.
  auto inputs = std::make_shared<std::vector<Event>>(events);
  for (const Event& e : events) {
    if (e.has_triggered()) continue;
    e.subscribe([merged, remaining, simp, merged_uid,
                 inputs](Time) mutable {
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) != 1) return;
      // All inputs have triggered (the acq_rel countdown orders their
      // state writes before this read); the merge completes at the max
      // trigger time regardless of which decrement arrived last.
      Time when = 0;
      for (const Event& in : *inputs) {
        when = std::max(when, in.trigger_time());
      }
      simp->schedule_merge_completion(
          when, merged_uid, [merged, simp, merged_uid, inputs]() mutable {
            if (support::Tracer* t = simp->tracer()) {
              // Latest trigger wins; ties keep the first input.
              Time best = 0;
              uint64_t critical = 0;
              for (const Event& in : *inputs) {
                if (in.uid() == 0) continue;
                if (critical == 0 || in.trigger_time() > best) {
                  best = in.trigger_time();
                  critical = in.uid();
                }
              }
              if (critical != 0) t->alias(merged_uid, critical);
            }
            merged.trigger();
          });
    });
  }
  return merged.event();
}

UserEvent::UserEvent(Simulator& sim)
    : sim_(&sim), state_(std::make_shared<detail::EventState>()) {
  state_->uid = sim.new_event_uid();
  state_->sim = &sim;
}

void UserEvent::trigger() {
  CR_CHECK_MSG(!state_->triggered, "UserEvent triggered twice");
  state_->triggered = true;
  state_->trigger_time = sim_->now();
  auto waiters = std::move(state_->waiters);
  state_->waiters.clear();
  if (EventGraph* g = sim_->event_graph()) {
    // Whatever caused this trigger happens-before it, and this event
    // is the cause of everything its waiters do (including callbacks
    // they schedule — schedule_at captures the ambient cause).
    g->edge(sim_->current_cause(), state_->uid);
    const uint64_t prev = sim_->current_cause();
    sim_->set_current_cause(state_->uid);
    for (auto& fn : waiters) fn(state_->trigger_time);
    sim_->set_current_cause(prev);
  } else {
    for (auto& fn : waiters) fn(state_->trigger_time);
  }
}

}  // namespace cr::sim
