// Deterministic pretty-printer for programs. The golden tests for the
// compiler passes compare printed IR against the structures of the
// paper's Figure 4 stages.
#pragma once

#include <string>

#include "ir/program.h"

namespace cr::ir {

// Print the statement body (declarations omitted unless `with_decls`).
std::string to_string(const Program& program, bool with_decls = false);

std::string to_string(const Stmt& stmt, const Program& program,
                      int indent = 0);

}  // namespace cr::ir
