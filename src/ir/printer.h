// Deterministic pretty-printer for programs. The golden tests for the
// compiler passes compare printed IR against the structures of the
// paper's Figure 4 stages.
#pragma once

#include <string>

#include "ir/program.h"

namespace cr::ir {

struct PrintOptions {
  bool with_decls = false;
  // Annotate sync ops (p2p copies, barriers, collectives) with their
  // stable SyncId — used by the per-pass golden snapshots and the race
  // checker's mutation sweep, off by default to keep legacy goldens.
  bool show_sync_ids = false;
  // Annotate compiler-introduced statements with their provenance chain
  // (" from#<source>:<label>[pass1>pass2]"); off by default likewise.
  bool show_provenance = false;
};

// Print the statement body (declarations omitted unless `with_decls`).
std::string to_string(const Program& program, bool with_decls = false);
std::string to_string(const Program& program, const PrintOptions& options);

std::string to_string(const Stmt& stmt, const Program& program,
                      int indent = 0);
std::string to_string(const Stmt& stmt, const Program& program, int indent,
                      const PrintOptions& options);

}  // namespace cr::ir
