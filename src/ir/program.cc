#include "ir/program.h"

#include "support/check.h"

namespace cr::ir {

const TaskDecl& Program::task(TaskId id) const {
  CR_CHECK(id < tasks.size());
  return tasks[id];
}

const ScalarDecl& Program::scalar(ScalarId id) const {
  CR_CHECK(id < scalars.size());
  return scalars[id];
}

void for_each_stmt(const std::vector<Stmt>& body,
                   const std::function<void(const Stmt&)>& fn) {
  for (const Stmt& s : body) {
    fn(s);
    for_each_stmt(s.body, fn);
  }
}

void for_each_stmt(std::vector<Stmt>& body,
                   const std::function<void(Stmt&)>& fn) {
  for (Stmt& s : body) {
    fn(s);
    for_each_stmt(s.body, fn);
  }
}

}  // namespace cr::ir
