// The program IR: the Regent-analog representation control replication
// transforms (paper §2, Figure 2).
//
// A Program is a list of declarations (tasks, scalars) plus a statement
// body referencing regions and partitions in an rt::RegionForest. Apps
// write only the *source* statement forms (ForTime loops, IndexLaunch,
// SingleTask, ScalarOp); the compiler passes introduce the rest (Copy,
// Fill, Barrier, Intersect, Collective, ShardBody) while transforming the
// program through the stages of Figure 4.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rt/physical.h"
#include "rt/region_tree.h"
#include "rt/task.h"

namespace cr::ir {

using ScalarId = uint32_t;
using TaskId = uint32_t;
using IntersectId = uint32_t;
inline constexpr uint32_t kNoIntersect = UINT32_MAX;

// Stable id of a compiler-inserted synchronization op. The passes that
// emit synchronization (sync_insertion: p2p copies and barriers;
// scalar_reduction: collectives) number them from Program::num_sync_ops
// so the race checker's fault-injection mode can address one mutant at
// a time. kNoSyncId marks statements that are not sync ops.
using SyncId = uint32_t;
inline constexpr SyncId kNoSyncId = UINT32_MAX;

// Provenance of a statement: which user-written source statement it
// descends from and which passes created or rewrote it along the way.
// The builder roots every source statement (source = its position in
// program order, label = loop var / task name); each pass that emits a
// copy or sync op derives its provenance from the statement that caused
// the emission. The executors forward provenance into trace spans so
// runtime copy/sync time can be attributed back to user code.
inline constexpr uint32_t kNoSourceStmt = UINT32_MAX;
struct Provenance {
  uint32_t source = kNoSourceStmt;  // Program::num_source_stmts id
  std::string label;                // the source statement's label
  std::vector<std::string> passes;  // emitting pass, then rewriters

  bool valid() const { return source != kNoSourceStmt; }
  // This chain extended by `pass` (for an op the pass newly emits).
  Provenance derived(const std::string& pass) const {
    Provenance p = *this;
    p.passes.push_back(pass);
    return p;
  }
};

// ---------------------------------------------------------------------
// Kernel interface
// ---------------------------------------------------------------------

// What a task body sees: privilege-checked accessors over its region
// arguments (addressed by global element id), its iteration domain, the
// scalar environment, and a fold slot for scalar reductions.
class TaskContext {
 public:
  virtual ~TaskContext() = default;
  // The point-task's iteration domain (the domain param's subregion).
  virtual const rt::IndexSpace& domain() const = 0;
  // The index space of region parameter `param`.
  virtual const rt::IndexSpace& param_domain(size_t param) const = 0;
  virtual double read_f64(size_t param, rt::FieldId f, uint64_t pt) const = 0;
  virtual void write_f64(size_t param, rt::FieldId f, uint64_t pt,
                         double v) = 0;
  virtual int64_t read_i64(size_t param, rt::FieldId f, uint64_t pt) const = 0;
  virtual void write_i64(size_t param, rt::FieldId f, uint64_t pt,
                         int64_t v) = 0;
  // Fold into a Reduce-privileged parameter.
  virtual void reduce_f64(size_t param, rt::FieldId f, uint64_t pt,
                          double v) = 0;
  virtual double scalar(ScalarId s) const = 0;
  // Fold into this launch's scalar reduction.
  virtual void reduce_scalar(double v) = 0;
};

using KernelFn = std::function<void(TaskContext&)>;

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

struct TaskParam {
  rt::Privilege privilege = rt::Privilege::kReadOnly;
  rt::ReduceOp redop = rt::ReduceOp::kSum;
  std::vector<rt::FieldId> fields;
};

struct TaskDecl {
  TaskId id = 0;
  std::string name;
  std::vector<TaskParam> params;
  // Which region parameter supplies the iteration domain (Regent's
  // `for i in SU`).
  size_t domain_param = 0;
  // Virtual execution time: base + per_element * |domain|, in ns.
  double cost_base_ns = 1000.0;
  double cost_per_elem_ns = 1.0;
  // Real task body; may be empty for virtual-only sweeps.
  KernelFn kernel;
};

struct ScalarDecl {
  ScalarId id = 0;
  std::string name;
  double init = 0.0;
};

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

// Region argument of an index launch: partition[proj(i)].
struct Projection {
  // Identity unless fn is set.
  std::function<uint64_t(uint64_t)> fn;
  std::string name;  // printed form, e.g. "(i+1)%N"
  bool identity() const { return !fn; }
  uint64_t operator()(uint64_t i) const { return fn ? fn(i) : i; }
};

struct RegionArg {
  rt::PartitionId partition = rt::kNoId;
  Projection proj;
  rt::Privilege privilege = rt::Privilege::kReadOnly;
  rt::ReduceOp redop = rt::ReduceOp::kSum;
  std::vector<rt::FieldId> fields;
};

// Scalar reduction performed by an index launch (paper §4.4).
struct ScalarRed {
  ScalarId target = 0;
  rt::ReduceOp op = rt::ReduceOp::kSum;
};

enum class StmtKind : uint8_t {
  kForTime,      // sequential outer loop
  kIndexLaunch,  // forall-style loop of task calls
  kSingleTask,   // one task call on whole regions (outside CR fragments)
  kScalarOp,     // straight-line scalar computation
  // compiler-introduced:
  kCopy,        // partition <-> partition / root data movement
  kFill,        // initialize partition fields to a constant
  kBarrier,     // full inter-shard barrier (naive sync, Fig. 4c)
  kIntersect,   // compute intersections of two partitions (Fig. 4b line 5)
  kCollective,  // allreduce + broadcast of a scalar (paper §4.4)
  kShardBody,   // the extracted shard task body (Fig. 4d)
};

// How a copy synchronizes across shards (paper §3.4).
enum class SyncMode : uint8_t {
  kNone,  // intra-shard / pre-sharding: ordinary dependence analysis
  kP2P,   // point-to-point pre/postconditions from intersections
};

struct Stmt {
  StmtKind kind = StmtKind::kForTime;
  std::string label;  // for printing/diagnostics

  // kForTime / kShardBody
  uint64_t trip_count = 0;  // ForTime
  std::vector<Stmt> body;

  // kIndexLaunch / kSingleTask
  TaskId task = 0;
  uint64_t launch_colors = 0;             // |I| (IndexLaunch)
  std::vector<RegionArg> args;            // IndexLaunch
  std::vector<rt::RegionId> regions;      // SingleTask param bindings
  std::vector<ScalarId> scalar_args;
  std::optional<ScalarRed> scalar_red;    // IndexLaunch only

  // kScalarOp: writes = fn(reads), evaluated against the scalar env.
  std::vector<ScalarId> scalar_reads, scalar_writes;
  std::function<void(const std::vector<double>& env,
                     std::vector<double>& out)>
      scalar_fn;

  // kCopy: exactly one of {copy_src, src_root} and {copy_dst, dst_root}.
  rt::PartitionId copy_src = rt::kNoId;
  rt::PartitionId copy_dst = rt::kNoId;
  rt::RegionId src_root = rt::kNoId;  // copy from a root region's master
  rt::RegionId dst_root = rt::kNoId;  // copy into a root region's master
  std::vector<rt::FieldId> copy_fields;
  IntersectId isect = kNoIntersect;  // restrict pairs (after §3.3)
  bool copy_reduction = false;
  rt::ReduceOp copy_redop = rt::ReduceOp::kSum;
  SyncMode sync = SyncMode::kNone;

  // kFill
  rt::PartitionId fill_dst = rt::kNoId;
  std::vector<rt::FieldId> fill_fields;
  double fill_value = 0.0;

  // kIntersect
  IntersectId isect_id = kNoIntersect;
  rt::PartitionId isect_src = rt::kNoId;
  rt::PartitionId isect_dst = rt::kNoId;

  // kCollective
  ScalarId coll_scalar = 0;
  rt::ReduceOp coll_op = rt::ReduceOp::kSum;

  // kShardBody
  uint32_t num_shards = 0;

  // Sync-op identity for kBarrier / kCollective / p2p-marked kCopy.
  SyncId sync_id = kNoSyncId;

  // Source-statement ancestry (see Provenance above).
  Provenance prov;
};

// ---------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------

struct Program {
  std::string name;
  rt::RegionForest* forest = nullptr;  // not owned; outlives the program
  std::vector<TaskDecl> tasks;
  std::vector<ScalarDecl> scalars;
  std::vector<Stmt> body;
  // Number of intersection tables allocated by passes.
  uint32_t num_intersects = 0;
  // Number of sync-op ids allocated by passes (see SyncId).
  uint32_t num_sync_ops = 0;
  // Number of user-written source statements (see Provenance).
  uint32_t num_source_stmts = 0;

  const TaskDecl& task(TaskId id) const;
  const ScalarDecl& scalar(ScalarId id) const;
};

// Walk all statements (pre-order), including nested bodies.
void for_each_stmt(const std::vector<Stmt>& body,
                   const std::function<void(const Stmt&)>& fn);
void for_each_stmt(std::vector<Stmt>& body,
                   const std::function<void(Stmt&)>& fn);

}  // namespace cr::ir
