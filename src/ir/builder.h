// Fluent builder for source programs: the public API applications use to
// express the implicitly parallel form (the paper's Figure 2). Only the
// source statement kinds can be built here; compiler-introduced forms are
// produced by the passes.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace cr::ir {

class ProgramBuilder {
 public:
  ProgramBuilder(rt::RegionForest& forest, std::string name);

  // --- declarations ---

  TaskId task(std::string name, std::vector<TaskParam> params,
              double cost_base_ns, double cost_per_elem_ns, KernelFn kernel,
              size_t domain_param = 0);

  ScalarId scalar(std::string name, double init = 0.0);

  // --- statements (appended to the innermost open body) ---

  // Open/close a sequential time loop.
  void begin_for_time(uint64_t trip_count, std::string label = "t");
  void end_for_time();

  // Launch `colors` point tasks of `task`.
  void index_launch(TaskId task, uint64_t colors, std::vector<RegionArg> args,
                    std::vector<ScalarId> scalar_args = {});
  // Same, folding each point task's reduce_scalar() into `red.target`.
  void index_launch_red(TaskId task, uint64_t colors,
                        std::vector<RegionArg> args, ScalarRed red,
                        std::vector<ScalarId> scalar_args = {});

  // Call `task` once on concrete regions (init/output steps).
  void single_task(TaskId task, std::vector<rt::RegionId> regions,
                   std::vector<ScalarId> scalar_args = {});

  // Straight-line scalar computation: writes = fn(env).
  void scalar_op(std::vector<ScalarId> reads, std::vector<ScalarId> writes,
                 std::function<void(const std::vector<double>&,
                                    std::vector<double>&)>
                     fn,
                 std::string label = "scalar");

  // Convenience for region arguments.
  static RegionArg arg(rt::PartitionId partition, rt::Privilege priv,
                       std::vector<rt::FieldId> fields,
                       rt::ReduceOp redop = rt::ReduceOp::kSum);
  static RegionArg arg_proj(rt::PartitionId partition, rt::Privilege priv,
                            std::vector<rt::FieldId> fields,
                            std::function<uint64_t(uint64_t)> proj,
                            std::string proj_name,
                            rt::ReduceOp redop = rt::ReduceOp::kSum);

  Program finish();

 private:
  std::vector<Stmt>& current();
  // Stamp a fresh source-statement id on a to-be-appended statement.
  void root_provenance(Stmt& s);
  Program program_;
  // Stack of open ForTime bodies, as indices into the enclosing body.
  std::vector<Stmt*> open_;
  bool finished_ = false;
};

}  // namespace cr::ir
