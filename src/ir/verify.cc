#include "ir/verify.h"

#include <sstream>

#include "support/check.h"

namespace cr::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const Program& p) : p_(p) {}

  std::vector<VerifyError> run() {
    check_body(p_.body, /*in_shard=*/false);
    return std::move(errors_);
  }

 private:
  void error(const std::string& msg) { errors_.push_back({msg}); }

  bool valid_partition(rt::PartitionId id) {
    return id != rt::kNoId && id < p_.forest->num_partitions();
  }
  bool valid_region(rt::RegionId id) {
    return id != rt::kNoId && id < p_.forest->num_regions();
  }
  bool valid_scalar(ScalarId id) { return id < p_.scalars.size(); }

  void check_fields(const rt::FieldSpace& fs,
                    const std::vector<rt::FieldId>& fields,
                    const std::string& where) {
    if (fields.empty()) error(where + ": empty field set");
    for (rt::FieldId f : fields) {
      if (f >= fs.num_fields()) error(where + ": bad field id");
    }
  }

  void check_launch(const Stmt& s) {
    if (s.task >= p_.tasks.size()) {
      error("launch: bad task id");
      return;
    }
    const TaskDecl& decl = p_.tasks[s.task];
    if (s.args.size() != decl.params.size()) {
      error("launch " + decl.name + ": arity mismatch");
      return;
    }
    if (s.launch_colors == 0) error("launch " + decl.name + ": zero colors");
    for (size_t k = 0; k < s.args.size(); ++k) {
      const RegionArg& a = s.args[k];
      const TaskParam& param = decl.params[k];
      std::ostringstream where;
      where << "launch " << decl.name << " arg " << k;
      if (!valid_partition(a.partition)) {
        error(where.str() + ": bad partition");
        continue;
      }
      const rt::PartitionNode& pn = p_.forest->partition(a.partition);
      if (pn.subregions.size() < s.launch_colors && a.proj.identity()) {
        error(where.str() + ": partition has fewer colors than launch");
      }
      // Privilege strictness (paper §2.1): the argument must carry the
      // declared privilege and fields exactly.
      if (a.privilege != param.privilege || a.redop != param.redop ||
          a.fields != param.fields) {
        error(where.str() + ": privileges differ from task declaration");
      }
      check_fields(*p_.forest->region(pn.parent).fields, a.fields,
                   where.str());
      // Writers must target disjoint partitions unless reducing; writing
      // an aliased partition is a race under parallel execution of the
      // loop (paper §2.2: loop-carried deps only via reductions).
      if (rt::privilege_writes(a.privilege) && !pn.disjoint &&
          a.proj.identity()) {
        error(where.str() + ": write to aliased partition " + pn.name);
      }
    }
    if (s.scalar_red && !valid_scalar(s.scalar_red->target)) {
      error("launch " + decl.name + ": bad scalar reduction target");
    }
    for (ScalarId id : s.scalar_args) {
      if (!valid_scalar(id)) error("launch " + decl.name + ": bad scalar arg");
    }
  }

  void check_copy(const Stmt& s) {
    const bool src_part = s.copy_src != rt::kNoId;
    const bool src_root = s.src_root != rt::kNoId;
    const bool dst_part = s.copy_dst != rt::kNoId;
    const bool dst_root = s.dst_root != rt::kNoId;
    if (src_part == src_root) error("copy: need exactly one source form");
    if (dst_part == dst_root) error("copy: need exactly one dest form");
    if (src_part && !valid_partition(s.copy_src)) error("copy: bad src");
    if (dst_part && !valid_partition(s.copy_dst)) error("copy: bad dst");
    if (src_root && !valid_region(s.src_root)) error("copy: bad src root");
    if (dst_root && !valid_region(s.dst_root)) error("copy: bad dst root");
    if (s.isect != kNoIntersect) {
      if (s.isect >= p_.num_intersects) error("copy: bad intersection id");
      if (!src_part || !dst_part) {
        error("copy: intersections require partition endpoints");
      }
    }
    if (s.copy_fields.empty()) error("copy: no fields");
  }

  void check_body(const std::vector<Stmt>& body, bool in_shard) {
    for (const Stmt& s : body) {
      switch (s.kind) {
        case StmtKind::kForTime:
          if (s.trip_count == 0) error("for_time: zero trip count");
          check_body(s.body, in_shard);
          break;
        case StmtKind::kIndexLaunch:
          check_launch(s);
          break;
        case StmtKind::kSingleTask: {
          if (in_shard) error("single task inside shard body");
          if (s.task >= p_.tasks.size()) {
            error("call: bad task id");
            break;
          }
          const TaskDecl& decl = p_.tasks[s.task];
          if (s.regions.size() != decl.params.size()) {
            error("call " + decl.name + ": arity mismatch");
            break;
          }
          for (rt::RegionId r : s.regions) {
            if (!valid_region(r)) error("call " + decl.name + ": bad region");
          }
          break;
        }
        case StmtKind::kScalarOp:
          for (ScalarId id : s.scalar_reads) {
            if (!valid_scalar(id)) error("scalar op: bad read");
          }
          for (ScalarId id : s.scalar_writes) {
            if (!valid_scalar(id)) error("scalar op: bad write");
          }
          if (!s.scalar_fn) error("scalar op: missing function");
          break;
        case StmtKind::kCopy:
          check_copy(s);
          break;
        case StmtKind::kFill:
          if (!valid_partition(s.fill_dst)) error("fill: bad partition");
          if (s.fill_fields.empty()) error("fill: no fields");
          break;
        case StmtKind::kBarrier:
          if (!in_shard) error("barrier outside shard body");
          break;
        case StmtKind::kIntersect:
          if (s.isect_id >= p_.num_intersects) {
            error("intersect: unallocated id");
          }
          if (!valid_partition(s.isect_src) ||
              !valid_partition(s.isect_dst)) {
            error("intersect: bad partitions");
          }
          break;
        case StmtKind::kCollective:
          if (!valid_scalar(s.coll_scalar)) error("collective: bad scalar");
          if (!in_shard) error("collective outside shard body");
          break;
        case StmtKind::kShardBody:
          if (in_shard) error("nested shard body");
          if (s.num_shards == 0) error("shard body: zero shards");
          check_body(s.body, /*in_shard=*/true);
          break;
      }
    }
  }

  const Program& p_;
  std::vector<VerifyError> errors_;
};

}  // namespace

std::vector<VerifyError> verify(const Program& program) {
  CR_CHECK(program.forest != nullptr);
  return Verifier(program).run();
}

void verify_or_die(const Program& program) {
  auto errors = verify(program);
  if (!errors.empty()) {
    CR_CHECK_MSG(false, errors.front().message.c_str());
  }
}

}  // namespace cr::ir
