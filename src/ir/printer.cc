#include "ir/printer.h"

#include <sstream>

#include "support/check.h"

namespace cr::ir {

namespace {

std::string fields_str(const std::vector<rt::FieldId>& fields) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) os << ",";
    os << "f" << fields[i];
  }
  os << "}";
  return os.str();
}

const char* redop_str(rt::ReduceOp op) {
  switch (op) {
    case rt::ReduceOp::kSum:
      return "+";
    case rt::ReduceOp::kMin:
      return "min";
    case rt::ReduceOp::kMax:
      return "max";
  }
  return "?";
}

std::string part_name(const Program& p, rt::PartitionId id) {
  return id == rt::kNoId ? "<none>" : p.forest->partition(id).name;
}

void print_stmt(std::ostringstream& os, const Stmt& s, const Program& p,
                int indent, const PrintOptions& opt) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  // Sync-id annotation, appended right before the statement's newline.
  std::string sync =
      opt.show_sync_ids && s.sync_id != kNoSyncId
          ? " sync#" + std::to_string(s.sync_id)
          : "";
  // Provenance annotation rides on the same suffix slot; only compiler-
  // introduced kinds carry one (source statements' provenance is just
  // their own position).
  if (opt.show_provenance && s.prov.valid() && !s.prov.passes.empty()) {
    std::string chain;
    for (const std::string& pass : s.prov.passes) {
      if (!chain.empty()) chain += ">";
      chain += pass;
    }
    sync += " from#" + std::to_string(s.prov.source) + ":" + s.prov.label +
            "[" + chain + "]";
  }
  os << pad;
  switch (s.kind) {
    case StmtKind::kForTime:
      os << "for " << (s.label.empty() ? "t" : s.label) << " in 0.."
         << s.trip_count << ":\n";
      for (const Stmt& c : s.body) print_stmt(os, c, p, indent + 1, opt);
      return;
    case StmtKind::kIndexLaunch: {
      os << "launch " << p.task(s.task).name << " over " << s.launch_colors
         << ":";
      for (const RegionArg& a : s.args) {
        os << " " << part_name(p, a.partition) << "["
           << (a.proj.identity() ? "i" : a.proj.name) << "] "
           << rt::privilege_name(a.privilege);
        if (a.privilege == rt::Privilege::kReduce) {
          os << "(" << redop_str(a.redop) << ")";
        }
        os << fields_str(a.fields);
      }
      if (s.scalar_red) {
        os << " -> " << p.scalar(s.scalar_red->target).name << " "
           << redop_str(s.scalar_red->op);
      }
      os << "\n";
      return;
    }
    case StmtKind::kSingleTask: {
      os << "call " << p.task(s.task).name << "(";
      for (size_t i = 0; i < s.regions.size(); ++i) {
        if (i) os << ", ";
        os << p.forest->region(s.regions[i]).name;
      }
      os << ")\n";
      return;
    }
    case StmtKind::kScalarOp: {
      os << "scalar " << s.label << ": write";
      for (ScalarId w : s.scalar_writes) os << " " << p.scalar(w).name;
      os << " from";
      for (ScalarId r : s.scalar_reads) os << " " << p.scalar(r).name;
      os << "\n";
      return;
    }
    case StmtKind::kCopy: {
      os << (s.copy_reduction ? "reduce_copy" : "copy") << " ";
      if (s.src_root != rt::kNoId) {
        os << p.forest->region(s.src_root).name;
      } else {
        os << part_name(p, s.copy_src);
      }
      os << " -> ";
      if (s.dst_root != rt::kNoId) {
        os << p.forest->region(s.dst_root).name;
      } else {
        os << part_name(p, s.copy_dst);
      }
      os << " " << fields_str(s.copy_fields);
      if (s.copy_reduction) os << " op=" << redop_str(s.copy_redop);
      if (s.isect != kNoIntersect) os << " isect#" << s.isect;
      if (s.sync == SyncMode::kP2P) os << " sync=p2p";
      os << sync << "\n";
      return;
    }
    case StmtKind::kFill:
      os << "fill " << part_name(p, s.fill_dst) << " "
         << fields_str(s.fill_fields) << " = " << s.fill_value << sync
         << "\n";
      return;
    case StmtKind::kBarrier:
      os << "barrier" << sync << "\n";
      return;
    case StmtKind::kIntersect:
      os << "intersect#" << s.isect_id << " = " << part_name(p, s.isect_src)
         << " x " << part_name(p, s.isect_dst) << sync << "\n";
      return;
    case StmtKind::kCollective:
      os << "collective " << p.scalar(s.coll_scalar).name << " "
         << redop_str(s.coll_op) << sync << "\n";
      return;
    case StmtKind::kShardBody:
      os << "shards " << s.num_shards << ":\n";
      for (const Stmt& c : s.body) print_stmt(os, c, p, indent + 1, opt);
      return;
  }
  CR_UNREACHABLE("bad statement kind");
}

}  // namespace

std::string to_string(const Stmt& stmt, const Program& program, int indent) {
  return to_string(stmt, program, indent, PrintOptions{});
}

std::string to_string(const Stmt& stmt, const Program& program, int indent,
                      const PrintOptions& options) {
  std::ostringstream os;
  print_stmt(os, stmt, program, indent, options);
  return os.str();
}

std::string to_string(const Program& program, bool with_decls) {
  PrintOptions opt;
  opt.with_decls = with_decls;
  return to_string(program, opt);
}

std::string to_string(const Program& program, const PrintOptions& options) {
  std::ostringstream os;
  os << "program " << program.name << "\n";
  if (options.with_decls) {
    for (const TaskDecl& t : program.tasks) {
      os << "task " << t.name << "(";
      for (size_t i = 0; i < t.params.size(); ++i) {
        if (i) os << ", ";
        os << rt::privilege_name(t.params[i].privilege)
           << fields_str(t.params[i].fields);
      }
      os << ")\n";
    }
    for (const ScalarDecl& s : program.scalars) {
      os << "var " << s.name << " = " << s.init << "\n";
    }
  }
  for (const Stmt& s : program.body) {
    print_stmt(os, s, program, 0, options);
  }
  return os.str();
}

}  // namespace cr::ir
