#include "ir/static_region_tree.h"

#include "support/check.h"

namespace cr::ir {

bool StaticRegionTree::indices_equal(const SymIndex& a,
                                     const SymIndex& b) const {
  if (a.kind == SymIndex::Kind::kVar && b.kind == SymIndex::Kind::kVar) {
    return a.var == b.var;
  }
  if (a.kind == SymIndex::Kind::kConst && b.kind == SymIndex::Kind::kConst) {
    return a.value == b.value;
  }
  return false;  // var vs const: unknown
}

bool StaticRegionTree::indices_provably_distinct(const SymIndex& a,
                                                 const SymIndex& b) const {
  // Only two distinct constants are provably different at compile time;
  // two distinct loop variables may coincide at runtime.
  return a.kind == SymIndex::Kind::kConst &&
         b.kind == SymIndex::Kind::kConst && a.value != b.value;
}

bool StaticRegionTree::may_alias(const SymRegion& a, const SymRegion& b) const {
  if (a.partition == b.partition) {
    if (indices_equal(a.index, b.index)) return true;  // same region
    // Distinct subregions of one partition: disjoint iff the partition
    // is disjoint *and* the indices are provably different. Two distinct
    // loop variables might evaluate to the same color, but then the
    // regions are identical, which only matters for conflicting
    // privileges — callers treat "same region" separately; for the
    // disjointness question, same color means same region, so a disjoint
    // partition still guarantees no *partial* overlap. We stay
    // conservative: alias unless the partition is disjoint.
    return !forest_->partition(a.partition).disjoint;
  }
  return partitions_may_alias(a.partition, b.partition);
}

bool StaticRegionTree::partitions_may_alias(rt::PartitionId p,
                                            rt::PartitionId q) const {
  if (p == q) return !forest_->partition(p).disjoint;
  if (hierarchical_) return forest_->partitions_may_alias(p, q);
  // Flat precision: ignore ancestry; two distinct partitions of the same
  // tree are assumed to overlap.
  const rt::RegionId rp = forest_->region(forest_->partition(p).parent).root;
  const rt::RegionId rq = forest_->region(forest_->partition(q).parent).root;
  return rp == rq;
}

}  // namespace cr::ir
