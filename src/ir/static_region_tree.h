// The compile-time region tree analysis (paper §2.3, Figure 3).
//
// At compile time subregion indices are symbolic: either unevaluated loop
// variables or constants. This module answers may-alias queries over such
// symbolic references using only the *structure* of the region forest —
// partition disjointness flags and parent/child edges — never the index
// space contents (those are runtime information; compare
// rt::RegionForest::overlaps_exact).
//
// It also provides the partition-granularity oracle the data replication
// pass consults, in two precisions:
//   - hierarchical (default): full LCA reasoning through nested disjoint
//     partitions — what makes the private/ghost idiom of §4.5 pay off;
//   - flat: only a partition's own disjointness is used, any two
//     distinct partitions of a tree are assumed aliased (the ablation
//     baseline for §4.5).
#pragma once

#include <cstdint>

#include "rt/region_tree.h"

namespace cr::ir {

// A symbolic subregion index: a loop variable (identified by an arbitrary
// id — two references with the same var id denote the same iteration) or
// a compile-time constant.
struct SymIndex {
  enum class Kind : uint8_t { kVar, kConst } kind = Kind::kVar;
  uint32_t var = 0;
  uint64_t value = 0;

  static SymIndex variable(uint32_t v) { return {Kind::kVar, v, 0}; }
  static SymIndex constant(uint64_t c) { return {Kind::kConst, 0, c}; }
};

// A symbolic region reference p[idx].
struct SymRegion {
  rt::PartitionId partition = rt::kNoId;
  SymIndex index;
};

class StaticRegionTree {
 public:
  explicit StaticRegionTree(const rt::RegionForest& forest,
                            bool hierarchical = true)
      : forest_(&forest), hierarchical_(hierarchical) {}

  // May p[i] alias q[j]? Sound: returns true unless disjointness is
  // provable from the tree structure and the symbolic indices.
  bool may_alias(const SymRegion& a, const SymRegion& b) const;

  // May any subregion of p overlap any subregion of q (p != q), or any
  // two distinct subregions of p overlap (p == q)?
  bool partitions_may_alias(rt::PartitionId p, rt::PartitionId q) const;

  bool hierarchical() const { return hierarchical_; }

 private:
  bool indices_equal(const SymIndex& a, const SymIndex& b) const;
  bool indices_provably_distinct(const SymIndex& a, const SymIndex& b) const;

  const rt::RegionForest* forest_;
  bool hierarchical_;
};

}  // namespace cr::ir
