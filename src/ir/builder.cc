#include "ir/builder.h"

#include "support/check.h"

namespace cr::ir {

ProgramBuilder::ProgramBuilder(rt::RegionForest& forest, std::string name) {
  program_.name = std::move(name);
  program_.forest = &forest;
}

TaskId ProgramBuilder::task(std::string name, std::vector<TaskParam> params,
                            double cost_base_ns, double cost_per_elem_ns,
                            KernelFn kernel, size_t domain_param) {
  CR_CHECK(domain_param < params.size());
  TaskDecl decl;
  decl.id = static_cast<TaskId>(program_.tasks.size());
  decl.name = std::move(name);
  decl.params = std::move(params);
  decl.domain_param = domain_param;
  decl.cost_base_ns = cost_base_ns;
  decl.cost_per_elem_ns = cost_per_elem_ns;
  decl.kernel = std::move(kernel);
  program_.tasks.push_back(std::move(decl));
  return program_.tasks.back().id;
}

ScalarId ProgramBuilder::scalar(std::string name, double init) {
  ScalarDecl decl;
  decl.id = static_cast<ScalarId>(program_.scalars.size());
  decl.name = std::move(name);
  decl.init = init;
  program_.scalars.push_back(std::move(decl));
  return program_.scalars.back().id;
}

std::vector<Stmt>& ProgramBuilder::current() {
  return open_.empty() ? program_.body : open_.back()->body;
}

void ProgramBuilder::root_provenance(Stmt& s) {
  s.prov.source = program_.num_source_stmts++;
  s.prov.label = s.label;
}

void ProgramBuilder::begin_for_time(uint64_t trip_count, std::string label) {
  Stmt s;
  s.kind = StmtKind::kForTime;
  s.trip_count = trip_count;
  s.label = std::move(label);
  root_provenance(s);
  current().push_back(std::move(s));
  open_.push_back(&current().back());
}

void ProgramBuilder::end_for_time() {
  CR_CHECK_MSG(!open_.empty(), "end_for_time without begin_for_time");
  open_.pop_back();
}

void ProgramBuilder::index_launch(TaskId task, uint64_t colors,
                                  std::vector<RegionArg> args,
                                  std::vector<ScalarId> scalar_args) {
  CR_CHECK(task < program_.tasks.size());
  CR_CHECK_MSG(args.size() == program_.tasks[task].params.size(),
               "argument count mismatch");
  // Check privilege strictness: argument privileges must match the task's
  // declared parameter privileges exactly (the declaration is the summary
  // the compiler analyzes — paper §2.1).
  for (size_t k = 0; k < args.size(); ++k) {
    const TaskParam& p = program_.tasks[task].params[k];
    CR_CHECK_MSG(args[k].privilege == p.privilege && args[k].redop == p.redop,
                 "argument privilege differs from task declaration");
    args[k].fields = p.fields;
  }
  Stmt s;
  s.kind = StmtKind::kIndexLaunch;
  s.task = task;
  s.launch_colors = colors;
  s.args = std::move(args);
  s.scalar_args = std::move(scalar_args);
  s.label = program_.tasks[task].name;
  root_provenance(s);
  current().push_back(std::move(s));
}

void ProgramBuilder::index_launch_red(TaskId task, uint64_t colors,
                                      std::vector<RegionArg> args,
                                      ScalarRed red,
                                      std::vector<ScalarId> scalar_args) {
  index_launch(task, colors, std::move(args), std::move(scalar_args));
  current().back().scalar_red = red;
}

void ProgramBuilder::single_task(TaskId task,
                                 std::vector<rt::RegionId> regions,
                                 std::vector<ScalarId> scalar_args) {
  CR_CHECK(task < program_.tasks.size());
  CR_CHECK(regions.size() == program_.tasks[task].params.size());
  Stmt s;
  s.kind = StmtKind::kSingleTask;
  s.task = task;
  s.regions = std::move(regions);
  s.scalar_args = std::move(scalar_args);
  s.label = program_.tasks[task].name;
  root_provenance(s);
  current().push_back(std::move(s));
}

void ProgramBuilder::scalar_op(
    std::vector<ScalarId> reads, std::vector<ScalarId> writes,
    std::function<void(const std::vector<double>&, std::vector<double>&)> fn,
    std::string label) {
  Stmt s;
  s.kind = StmtKind::kScalarOp;
  s.scalar_reads = std::move(reads);
  s.scalar_writes = std::move(writes);
  s.scalar_fn = std::move(fn);
  s.label = std::move(label);
  root_provenance(s);
  current().push_back(std::move(s));
}

RegionArg ProgramBuilder::arg(rt::PartitionId partition, rt::Privilege priv,
                              std::vector<rt::FieldId> fields,
                              rt::ReduceOp redop) {
  RegionArg a;
  a.partition = partition;
  a.privilege = priv;
  a.redop = redop;
  a.fields = std::move(fields);
  return a;
}

RegionArg ProgramBuilder::arg_proj(rt::PartitionId partition,
                                   rt::Privilege priv,
                                   std::vector<rt::FieldId> fields,
                                   std::function<uint64_t(uint64_t)> proj,
                                   std::string proj_name,
                                   rt::ReduceOp redop) {
  RegionArg a = arg(partition, priv, std::move(fields), redop);
  a.proj.fn = std::move(proj);
  a.proj.name = std::move(proj_name);
  return a;
}

Program ProgramBuilder::finish() {
  CR_CHECK_MSG(open_.empty(), "unclosed for_time loop");
  CR_CHECK(!finished_);
  finished_ = true;
  return std::move(program_);
}

}  // namespace cr::ir
