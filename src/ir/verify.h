// IR well-formedness checking, run after construction and between
// compiler passes. Beyond structural validity, it enforces the language
// rules the transformation relies on:
//  - privilege strictness: launch arguments carry exactly the fields and
//    privileges of the task declaration (paper §2.1);
//  - scalar discipline: scalars are written only by scalar ops, scalar
//    collectives, or launch-attached reductions (paper §4.4);
//  - compiler statements reference valid partitions/fields/intersections;
//  - shard bodies contain only shardable statements.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace cr::ir {

struct VerifyError {
  std::string message;
};

// Returns all violations (empty means valid).
std::vector<VerifyError> verify(const Program& program);

// CR_CHECK-fails with the first violation, if any.
void verify_or_die(const Program& program);

}  // namespace cr::ir
