// Phase barriers with generations, after Legion's producer/consumer
// barriers (paper §3.4). A barrier has a fixed number of participants;
// each generation completes when every participant's arrival event has
// triggered, and observers of that generation are released a
// fan-in + fan-out tree latency later.
//
// Unlike an MPI barrier, arrivals and waits are *events*: they attach as
// pre/postconditions of tasks and copies and never block a control
// thread (the property §3.4 highlights).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/event.h"
#include "sim/network.h"

namespace cr::sim {
class Simulator;
}

namespace cr::rt {

class PhaseBarrier {
 public:
  PhaseBarrier(sim::Simulator& sim, sim::Network& net, uint32_t participants);

  // Register one arrival for `generation`, gated on `precondition`.
  void arrive(uint64_t generation, sim::Event precondition);

  // Event that triggers when `generation` completes (all arrivals +
  // propagation latency).
  sim::Event wait(uint64_t generation);

  uint32_t participants() const { return participants_; }

 private:
  struct Generation {
    std::vector<sim::Event> arrivals;
    // Created lazily; triggered once all arrivals are in and merged.
    std::unique_ptr<sim::UserEvent> done;
    bool wired = false;
  };
  Generation& gen(uint64_t g);
  void maybe_wire(Generation& g);

  sim::Simulator* sim_;
  sim::Network* net_;
  uint32_t participants_;
  std::map<uint64_t, Generation> generations_;
};

}  // namespace cr::rt
