#include "rt/barrier.h"

#include "sim/simulator.h"
#include "support/check.h"
#include "support/trace.h"

namespace cr::rt {

PhaseBarrier::PhaseBarrier(sim::Simulator& sim, sim::Network& net,
                           uint32_t participants)
    : sim_(&sim), net_(&net), participants_(participants) {
  CR_CHECK(participants > 0);
}

PhaseBarrier::Generation& PhaseBarrier::gen(uint64_t g) {
  auto [it, inserted] = generations_.try_emplace(g);
  if (inserted) {
    it->second.done = std::make_unique<sim::UserEvent>(*sim_);
  }
  return it->second;
}

void PhaseBarrier::maybe_wire(Generation& g) {
  if (g.wired || g.arrivals.size() < participants_) return;
  CR_CHECK_MSG(g.arrivals.size() == participants_,
               "barrier generation over-subscribed");
  g.wired = true;
  // Arrivals trigger on different nodes' workers: use the remote merge,
  // which defers completion to a serial phase.
  sim::Event all = sim::Event::merge_remote(*sim_, g.arrivals);
  // Fan-in + fan-out over a binary tree of participants.
  const sim::Time latency = 2 * net_->tree_latency(participants_);
  // Adaptive-window contract: the completion's first possible node-side
  // effect (the release fan-out waking waiters) is `latency` after the
  // completion time; the simulator caps lane run-ahead accordingly.
  sim_->note_global_influence_floor(latency);
  sim::UserEvent* done = g.done.get();
  Generation* gp = &g;
  all.subscribe([this, latency, done, gp](sim::Time now) {
    if (support::Tracer* t = sim_->tracer()) {
      // The fan-in + fan-out propagation as a sync span on the synthetic
      // runtime track, fed by every arrival and feeding the release.
      const support::SpanId span = t->add_span(
          support::kRuntimePid, 0, support::TraceCategory::kSync, "barrier",
          now, now + latency);
      for (const sim::Event& a : gp->arrivals) t->edge(a.uid(), span);
      t->bind(done->event().uid(), span);
      t->add_instant(support::kRuntimePid, 0, "barrier trigger",
                     now + latency);
    }
    sim_->schedule_after(latency, [done] { done->trigger(); });
  });
}

void PhaseBarrier::arrive(uint64_t generation, sim::Event precondition) {
  Generation& g = gen(generation);
  CR_CHECK_MSG(!g.wired, "arrival after generation completed wiring");
  g.arrivals.push_back(precondition);
  if (sim_->tracer() != nullptr) {
    sim::Simulator* simp = sim_;
    precondition.subscribe([simp](sim::Time now) {
      if (support::Tracer* t = simp->tracer()) {
        t->add_instant(support::kRuntimePid, 0, "barrier arrive", now);
      }
    });
  }
  maybe_wire(g);
}

sim::Event PhaseBarrier::wait(uint64_t generation) {
  return gen(generation).done->event();
}

}  // namespace cr::rt
