// The copy engine: explicit data movement between physical instances.
//
// Control replication turns the shared-memory region semantics into
// distributed storage plus explicit copies (paper §3); this engine issues
// those copies. A copy moves the given element set of the given fields
// from a source instance to a destination instance, costing network time
// (cross-node) or memory bandwidth (intra-node) in virtual time and — in
// real-data mode — actually moving the bytes at delivery time. Reduction
// copies fold instead of overwrite (paper §4.3).
#pragma once

#include <cstdint>
#include <vector>

#include "rt/physical.h"
#include "sim/event.h"
#include "sim/network.h"

namespace cr::rt {

struct CopyRequest {
  RegionId src_region = kNoId;
  RegionId dst_region = kNoId;
  uint32_t src_node = 0;
  uint32_t dst_node = 0;
  // Instances are bound only in real-data executions.
  InstanceId src_inst = kNoId;
  InstanceId dst_inst = kNoId;
  support::IntervalSet points;  // the elements to move (already intersected)
  std::vector<FieldId> fields;
  bool reduction = false;
  ReduceOp redop = ReduceOp::kSum;
};

class CopyEngine {
 public:
  CopyEngine(sim::Network& net, const RegionForest& forest,
             InstanceManager* instances)
      : net_(&net), forest_(&forest), instances_(instances) {}

  // Issue the copy after `precondition`; returns the completion event.
  // Empty element sets complete immediately without network traffic
  // (the intersection optimization's skip, paper §3.3).
  sim::Event issue(const CopyRequest& req, sim::Event precondition);

  uint64_t copies_issued() const { return copies_; }
  uint64_t copies_skipped_empty() const { return skipped_; }
  uint64_t bytes_moved() const { return bytes_; }

 private:
  sim::Network* net_;
  const RegionForest* forest_;
  InstanceManager* instances_;  // null in virtual-only executions
  uint64_t copies_ = 0;
  uint64_t skipped_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace cr::rt
