// Dynamic dependence analysis: Legion's core runtime service (paper §4.1,
// "Legion discovers parallelism between tasks by computing a dynamic
// dependence graph over the tasks in an executing program").
//
// The tracker records, per (region tree root, field), the operations
// currently using elements of that tree. A new operation receives the
// completion events of every prior user it conflicts with — overlapping
// elements and non-compatible privileges — and is registered as a user
// itself. Writers that fully cover earlier users retire them (epoch
// pruning), which keeps the lists short for the common access patterns.
//
// This analysis is exactly the per-launch work a single control thread
// must serialize in the implicit model. Two counters separate the
// *simulated* cost from the *host* cost of reproducing it:
//
//  - pairs_scanned(): what an exhaustive scan over the live user lists
//    would test. This is the virtual-time cost basis fed to the cost
//    model — it models the implicit master and must not change when the
//    host-side analysis gets faster.
//  - pairs_tested(): exact conflict tests this implementation actually
//    ran. The default indexed mode keeps an interval tree over each user
//    list's bounding extents, so a new requirement only tests geometric
//    candidates and pairs_tested() drops far below pairs_scanned() on
//    mostly-disjoint access patterns.
//
// The indexed and linear modes find the identical dependence set in the
// identical order and prune the identical epochs: a user whose bounding
// extent misses the requirement's cannot overlap it exactly, so the
// geometric candidate set is a superset of every conflicting user.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rt/intersect.h"
#include "rt/task.h"
#include "sim/event.h"

namespace cr::rt {

class DependenceTracker {
 public:
  explicit DependenceTracker(const RegionForest& forest) : forest_(&forest) {}

  // Fall back to the seed's exhaustive linear scan (reference semantics
  // for property tests and ablations). Toggle before recording begins or
  // right after reset(); the two modes return identical dependences and
  // identical pairs_scanned(), and differ only in pairs_tested() and
  // host time.
  void set_linear_scan(bool linear) { linear_ = linear; }
  bool linear_scan() const { return linear_; }

  // Capture of one record() call's analysis outcome, in a form that is
  // stable across loop iterations once the launch stream reaches steady
  // state: predecessors and pruned users are identified by op id (plus
  // the requirement identity for prunes), never by slot index — slot
  // layout depends on compaction timing, which is host-side bookkeeping
  // and not part of the replayable contract.
  struct Capture {
    // Deduplicated predecessor op ids, in the order their completion
    // events entered the returned precondition vector.
    std::vector<uint64_t> dep_ops;
    // Users retired by epoch pruning: which op's registration of which
    // region (with which privilege) died, and under which field. The
    // full identity is needed because one op may register several slots
    // in one field state (a copy's read and write requirements share the
    // root, and a task can pass one region through several arguments).
    struct Prune {
      FieldId field = 0;
      uint64_t op_id = 0;
      RegionId region = kNoId;
      Privilege privilege = Privilege::kReadOnly;
      ReduceOp redop = ReduceOp::kSum;
    };
    std::vector<Prune> prunes;
  };

  // Record an operation's use of a region; returns the completion events
  // of conflicting predecessors (deduplicated: a predecessor reached via
  // several fields appears once). `completion` is the new operation's
  // own completion event. Requirements of one operation must be recorded
  // contiguously (no interleaving with other operations), which the
  // engine's sequential issue loop guarantees. When `capture` is given
  // it is filled with the replayable encoding of this call's outcome.
  std::vector<sim::Event> record(uint64_t op_id, const Requirement& req,
                                 sim::Event completion,
                                 Capture* capture = nullptr);

  // Replay a previously captured record() outcome without scanning or
  // testing: charges pairs_scanned exactly as the exhaustive scan would
  // (from the live state, not the capture), applies the given prunes,
  // counts `found` dependences, and registers the new user — leaving
  // the tracker in the same state an analyzed record() would have, so
  // analysis can resume at any later operation. pairs_tested and the
  // interval indexes are untouched (that is the host-time win). Returns
  // the pairs_scanned delta so the caller can cross-check it against
  // the captured value; a mismatch means the launch stream left steady
  // state without a fingerprint change, which callers must treat as a
  // hard error, not an invalidation.
  uint64_t replay(uint64_t op_id, const Requirement& req,
                  sim::Event completion,
                  const std::vector<Capture::Prune>& prunes, uint64_t found);

  // Clear all user lists (between independent executions).
  void reset();

  // Exact conflict tests performed by this implementation.
  uint64_t pairs_tested() const { return pairs_tested_; }
  // Pairs an exhaustive linear scan would have tested (virtual-time cost
  // basis; identical in both modes).
  uint64_t pairs_scanned() const { return pairs_scanned_; }
  uint64_t dependences_found() const { return dependences_found_; }
  uint64_t index_queries() const { return index_queries_; }
  uint64_t index_rebuilds() const { return index_rebuilds_; }

 private:
  struct User {
    uint64_t op_id = 0;
    Privilege privilege = Privilege::kReadOnly;
    ReduceOp redop = ReduceOp::kSum;
    RegionId region = kNoId;
    sim::Event completion;
    support::Interval bounds;  // bounding extent of the region's points
                               // ({0, 0} for an empty region: matches no
                               // query, exactly as it overlaps nothing)
    bool alive = true;
  };

  // Per-(root, field) user list. Users append in issue order and retire
  // in place (tombstones), so a slot index is an insertion timestamp:
  // candidate sets sorted by index reproduce the linear scan's order
  // exactly. The interval tree indexes the prefix [0, indexed_end);
  // younger users are scanned linearly until enough staleness (pending
  // appends + tombstones) accumulates to amortize a rebuild.
  struct FieldState {
    std::vector<User> slots;
    IntervalTree tree{std::vector<IntervalTree::Entry>{}};
    size_t indexed_end = 0;
    uint64_t alive = 0;
    uint64_t dead = 0;
    // Self-requirement tracking: live entries of the most recent
    // recording operation (an operation never depends on itself, and the
    // exhaustive scan skips such entries without counting them).
    uint64_t last_op = UINT64_MAX;
    uint64_t last_op_live = 0;
    // Accumulated linear tail-scan work since the last rebuild. The
    // staleness ratio alone is not enough to bound it: heavy tombstone
    // churn keeps `alive` large while the unindexed tail is rescanned by
    // every query, so total tail work between rebuilds can grow
    // quadratically in the query count.
    uint64_t tail_touched = 0;
  };

  void register_user(FieldState& st, uint64_t op_id, const Requirement& req,
                     sim::Event completion, support::Interval bounds);
  void maybe_rebuild(FieldState& st);

  const RegionForest* forest_;
  // Keyed by (tree root, field).
  std::map<std::pair<RegionId, FieldId>, FieldState> users_;
  std::vector<uint32_t> cand_;   // scratch: candidate slot indices
  std::vector<uint64_t> hits_;   // scratch: raw interval-tree payloads
  bool linear_ = false;
  uint64_t pairs_tested_ = 0;
  uint64_t pairs_scanned_ = 0;
  uint64_t dependences_found_ = 0;
  uint64_t index_queries_ = 0;
  uint64_t index_rebuilds_ = 0;
};

}  // namespace cr::rt
