// Dynamic dependence analysis: Legion's core runtime service (paper §4.1,
// "Legion discovers parallelism between tasks by computing a dynamic
// dependence graph over the tasks in an executing program").
//
// The tracker records, per (region tree root, field), the operations
// currently using elements of that tree. A new operation receives the
// completion events of every prior user it conflicts with — overlapping
// elements and non-compatible privileges — and is registered as a user
// itself. Writers that fully cover earlier users retire them (epoch
// pruning), which keeps the lists short for the common access patterns.
//
// This analysis is exactly the per-launch work a single control thread
// must serialize in the implicit model; `pairs_tested` feeds the cost
// model with the real amount of analysis performed.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rt/task.h"
#include "sim/event.h"

namespace cr::rt {

class DependenceTracker {
 public:
  explicit DependenceTracker(const RegionForest& forest) : forest_(&forest) {}

  // Record an operation's use of a region; returns the completion events
  // of conflicting predecessors. `completion` is the new operation's own
  // completion event.
  std::vector<sim::Event> record(uint64_t op_id, const Requirement& req,
                                 sim::Event completion);

  // Clear all user lists (between independent executions).
  void reset();

  uint64_t pairs_tested() const { return pairs_tested_; }
  uint64_t dependences_found() const { return dependences_found_; }

 private:
  struct User {
    uint64_t op_id = 0;
    Privilege privilege = Privilege::kReadOnly;
    ReduceOp redop = ReduceOp::kSum;
    RegionId region = kNoId;
    sim::Event completion;
  };

  const RegionForest* forest_;
  // Keyed by (tree root, field).
  std::map<std::pair<RegionId, FieldId>, std::vector<User>> users_;
  uint64_t pairs_tested_ = 0;
  uint64_t dependences_found_ = 0;
};

}  // namespace cr::rt
