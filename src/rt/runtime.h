// The runtime context: one simulated machine plus the Legion-analog
// services layered on it. Executors (implicit, SPMD, and the hand-written
// baselines) share this bundle; constructing one Runtime corresponds to
// one job allocation on the cluster.
#pragma once

#include <memory>

#include "rt/copy.h"
#include "rt/dependence.h"
#include "rt/mapper.h"
#include "rt/partition.h"
#include "rt/physical.h"
#include "rt/region_tree.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "support/metrics.h"

namespace cr::rt {

struct RuntimeConfig {
  sim::MachineConfig machine;
  sim::NetworkConfig network;
  // When true, physical instances are allocated and kernels/copies move
  // real data (correctness runs). When false, only virtual time advances
  // (scalability sweeps at sizes where materializing data is pointless).
  bool real_data = true;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);

  sim::Simulator& sim() { return sim_; }
  sim::Machine& machine() { return machine_; }
  sim::Network& network() { return network_; }
  RegionForest& forest() { return forest_; }
  const RegionForest& forest() const { return forest_; }
  DependenceTracker& deps() { return deps_; }
  CopyEngine& copies() { return copies_; }
  Mapper& mapper() { return *mapper_; }
  // Install the named placement policy (MapperRegistry) as the active
  // mapper. Called by the Engine at construction from ExecConfig::mapper
  // — the one way to configure placement. A fresh Runtime starts with
  // the default policy.
  Mapper& select_mapper(const MapperOptions& options);
  support::MetricsRegistry& metrics() { return metrics_; }

  bool real_data() const { return config_.real_data; }
  const RuntimeConfig& config() const { return config_; }

  // Null in virtual-only mode.
  InstanceManager* instances() {
    return config_.real_data ? &instances_ : nullptr;
  }

 private:
  RuntimeConfig config_;
  sim::Simulator sim_;
  sim::Machine machine_;
  sim::Network network_;
  RegionForest forest_;
  InstanceManager instances_;
  DependenceTracker deps_;
  CopyEngine copies_;
  std::unique_ptr<Mapper> mapper_;
  support::MetricsRegistry metrics_;
};

}  // namespace cr::rt
