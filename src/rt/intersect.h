// Dynamic region intersections (paper §3.3).
//
// Copies are issued between pairs of source and destination subregions,
// but only their intersections must move. The number/extent of the
// intersections is unknown at compile time, so this analysis runs at
// runtime, in two phases exactly as in the paper:
//
//  1. *Shallow* intersection: which (i, j) pairs overlap at all. An
//     interval tree over the destination partition's intervals
//     (unstructured regions) or a BVH over subregion bounding boxes
//     (structured regions) avoids the O(N^2) all-pairs comparison.
//  2. *Complete* intersection: the exact element set for each
//     overlapping pair, computed per owning shard.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rt/region_tree.h"
#include "support/hash.h"

namespace cr::rt {

// Augmented static interval tree: O(n log n) build, O(log n + k) query.
class IntervalTree {
 public:
  struct Entry {
    support::Interval iv;
    uint64_t payload = 0;
  };
  explicit IntervalTree(std::vector<Entry> entries);

  // Append payloads of all entries overlapping [q.lo, q.hi) to `out`
  // (duplicates possible if one payload owns several entries).
  void query(support::Interval q, std::vector<uint64_t>& out) const;

  size_t size() const { return entries_.size(); }

 private:
  void build(size_t lo, size_t hi);
  void query_rec(size_t lo, size_t hi, support::Interval q,
                 std::vector<uint64_t>& out) const;
  std::vector<Entry> entries_;    // sorted by iv.lo; implicit balanced tree
  std::vector<uint64_t> max_hi_;  // subtree max of iv.hi per midpoint
};

// Bounding volume hierarchy over rectangles: median-split build.
class Bvh {
 public:
  struct Entry {
    Rect box;
    uint64_t payload = 0;
  };
  explicit Bvh(std::vector<Entry> entries);

  void query(const Rect& q, std::vector<uint64_t>& out) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Node {
    Rect box;
    uint32_t begin = 0, end = 0;   // leaf range into entries_
    uint32_t left = 0, right = 0;  // children (0 = leaf)
  };
  uint32_t build(uint32_t begin, uint32_t end);
  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
};

struct IntersectionPair {
  uint64_t src_color = 0;  // color i in the source partition
  uint64_t dst_color = 0;  // color j in the destination partition
  friend bool operator==(const IntersectionPair&,
                         const IntersectionPair&) = default;
  friend auto operator<=>(const IntersectionPair&,
                          const IntersectionPair&) = default;
};

// Phase 1: all (i, j) with src[i] ∩ dst[j] nonempty, sorted by (i, j).
// Exact (interval overlap implies element overlap for IntervalSets).
// Picks the BVH when the underlying region is structured with dim >= 2,
// the interval tree otherwise.
std::vector<IntersectionPair> shallow_intersections(const RegionForest& forest,
                                                    PartitionId src,
                                                    PartitionId dst);

// Phase 2: exact shared elements of one subregion pair.
support::IntervalSet complete_intersection(const RegionForest& forest,
                                           RegionId a, RegionId b);

// Memoized complete intersections. Region geometry is immutable once a
// region exists (the forest is append-only), so a pair's exact element
// set never changes and the cache needs no invalidation. Intersection is
// symmetric: pairs are keyed on (min, max). Used by the execution
// engine, where the same copy statement re-derives the same pairs every
// loop iteration.
class IntersectionCache {
 public:
  explicit IntersectionCache(const RegionForest& forest) : forest_(&forest) {}

  // Exact shared elements of (a, b); computed at most once per pair. The
  // reference stays valid for the cache's lifetime.
  const support::IntervalSet& complete(RegionId a, RegionId b);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

 private:
  const RegionForest* forest_;
  std::unordered_map<uint64_t, support::IntervalSet, support::U64Hash> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace cr::rt
