// Partitioning operators: the paper's sub-language for naming the data
// subsets parallel computations touch (paper §2.1 and [Treichler et al.,
// Dependent Partitioning]).
//
// Each operator builds the subspaces and registers the partition in the
// forest with the statically known disjointness/completeness of that
// operator: equal/block/grid/coloring are disjoint; images through
// unconstrained functions are aliased (the compiler must assume overlap).
#pragma once

#include <functional>
#include <vector>

#include "rt/region_tree.h"

namespace cr::rt {

// Split into `colors` contiguous, nearly equal pieces (by element rank).
// Disjoint and complete.
PartitionId partition_equal(RegionForest& forest, RegionId region,
                            uint64_t colors, std::string name = {});

// Structured tiling: tiles[d] tiles along dimension d of the region's
// grid. Disjoint and complete. The region must be structured.
PartitionId partition_grid(RegionForest& forest, RegionId region,
                           std::array<uint64_t, 3> tiles,
                           std::string name = {});

// Disjoint coloring: every element gets color_of(id) in [0, colors), or
// kNoColor to be left out (making the partition incomplete).
inline constexpr uint64_t kNoColor = ~0ull;
PartitionId partition_by_color(
    RegionForest& forest, RegionId region, uint64_t colors,
    const std::function<uint64_t(uint64_t)>& color_of, std::string name = {});

// Image partition: subregion i = { y in `region` : y in targets(x), x in
// source[i] } — the paper's image(B, PB, h). Aliased (h unconstrained),
// generally incomplete. `targets` appends h(x) values to its out-param.
PartitionId partition_image(
    RegionForest& forest, RegionId region, PartitionId source,
    const std::function<void(uint64_t, std::vector<uint64_t>&)>& targets,
    std::string name = {});

// Composed projection: subregion i = source[f(i)] over `colors` colors;
// used to normalize region arguments p[f(i)] to q[i] (paper §2.2).
// Aliased unless f is injective, which we do not assume.
PartitionId partition_compose(
    RegionForest& forest, PartitionId source, uint64_t colors,
    const std::function<uint64_t(uint64_t)>& f, std::string name = {});

// Preimage partition: subregion i = { x in `region` : targets(x) ∩
// source[i] != ∅ } — the set of elements *pointing into* each subregion
// (dependent partitioning's dual of image). Disjoint iff each element
// has exactly one target subregion, which cannot be assumed: aliased.
PartitionId partition_preimage(
    RegionForest& forest, RegionId region, PartitionId source,
    const std::function<void(uint64_t, std::vector<uint64_t>&)>& targets,
    std::string name = {});

// Pointwise boolean operators over two partitions with the same color
// space: subregion i = a[i] ∪ b[i] / a[i] \ b[i]. Union preserves
// disjointness only if both inputs are disjoint and never share
// elements across colors (not assumed: aliased); difference preserves
// the first input's disjointness.
PartitionId partition_union(RegionForest& forest, PartitionId a,
                            PartitionId b, std::string name = {});
PartitionId partition_difference(RegionForest& forest, PartitionId a,
                                 PartitionId b, std::string name = {});

// Restrict each subregion of `source` to `window`'s index space:
// subregion i = source[i] ∩ window (paper §4.5 builds PB, SB, QB this
// way from all_private / all_ghost). Preserves the source's
// disjointness; registered under `window`.
PartitionId partition_intersect(RegionForest& forest, RegionId window,
                                PartitionId source, std::string name = {});

}  // namespace cr::rt
