#include "rt/index_space.h"

#include <algorithm>

#include "support/check.h"

namespace cr::rt {

IndexSpace IndexSpace::dense(uint64_t n) {
  IndexSpace out;
  out.points_ = support::IntervalSet::range(0, n);
  out.extents_ = GridExtents::d1(n);
  out.finish();
  return out;
}

IndexSpace IndexSpace::grid(GridExtents extents) {
  IndexSpace out;
  out.points_ = support::IntervalSet::range(0, extents.volume());
  out.extents_ = extents;
  out.finish();
  return out;
}

IndexSpace IndexSpace::unstructured(support::IntervalSet points) {
  IndexSpace out;
  out.points_ = std::move(points);
  out.finish();
  return out;
}

IndexSpace IndexSpace::subspace(support::IntervalSet points) const {
  CR_DCHECK(points_.contains_all(points));
  IndexSpace out;
  out.points_ = std::move(points);
  out.extents_ = extents_;
  out.finish();
  return out;
}

const GridExtents& IndexSpace::extents() const {
  CR_CHECK_MSG(extents_.has_value(), "unstructured index space");
  return *extents_;
}

Rect IndexSpace::bounding_rect() const {
  CR_CHECK(!empty());
  const support::Interval b = points_.bounds();
  if (!structured()) return Rect::d1(static_cast<int64_t>(b.lo),
                                     static_cast<int64_t>(b.hi));
  const GridExtents& e = *extents_;
  const int64_t nz = static_cast<int64_t>(e.n[2]);
  const int64_t ny = static_cast<int64_t>(e.n[1]);
  Rect out;
  out.lo = {INT64_MAX, INT64_MAX, INT64_MAX};
  out.hi = {INT64_MIN, INT64_MIN, INT64_MIN};
  auto expand = [&](int d, int64_t lo, int64_t hi) {
    out.lo[d] = std::min(out.lo[d], lo);
    out.hi[d] = std::max(out.hi[d], hi);
  };
  // Each interval covers a consecutive id range; decompose into
  // (row = x*ny + y, z) coordinates. The result is conservative (a
  // superset bbox) for intervals that wrap across rows, which is all the
  // BVH pruning needs.
  for (const support::Interval& iv : points_.intervals()) {
    const int64_t row_lo = static_cast<int64_t>(iv.lo) / nz;
    const int64_t z_lo = static_cast<int64_t>(iv.lo) % nz;
    const int64_t row_hi = static_cast<int64_t>(iv.hi - 1) / nz;
    const int64_t z_hi = static_cast<int64_t>(iv.hi - 1) % nz + 1;
    if (row_lo == row_hi) {
      expand(2, z_lo, z_hi);
    } else {
      expand(2, 0, nz);
    }
    const int64_t x_lo = row_lo / ny, y_lo = row_lo % ny;
    const int64_t x_hi = row_hi / ny, y_hi = row_hi % ny;
    expand(0, x_lo, x_hi + 1);
    if (row_hi - row_lo + 1 >= ny || (x_lo != x_hi && y_lo > y_hi)) {
      expand(1, 0, ny);  // rows wrap around the y extent
    } else if (x_lo == x_hi) {
      expand(1, y_lo, y_hi + 1);
    } else {
      expand(1, std::min(y_lo, y_hi), std::max(y_lo, y_hi) + 1);
    }
  }
  return out;
}

uint64_t IndexSpace::rank(uint64_t point) const {
  const auto& ivs = points_.intervals();
  auto it = std::upper_bound(
      ivs.begin(), ivs.end(), point,
      [](uint64_t p, const support::Interval& iv) { return p < iv.lo; });
  CR_CHECK_MSG(it != ivs.begin(), "point not in index space");
  const size_t idx = static_cast<size_t>(it - ivs.begin()) - 1;
  CR_CHECK_MSG(point < ivs[idx].hi, "point not in index space");
  return prefix_[idx] + (point - ivs[idx].lo);
}

void IndexSpace::finish() {
  const auto& ivs = points_.intervals();
  prefix_.resize(ivs.size());
  uint64_t total = 0;
  for (size_t i = 0; i < ivs.size(); ++i) {
    prefix_[i] = total;
    total += ivs[i].size();
  }
  total_ = total;
}

}  // namespace cr::rt
