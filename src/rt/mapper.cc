#include "rt/mapper.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/hash.h"
#include "support/log.h"

namespace cr::rt {

uint32_t block_owner(uint64_t c, uint64_t colors, uint32_t parts) {
  CR_CHECK(c < colors && parts > 0);
  const uint64_t base = colors / parts;
  const uint64_t rem = colors % parts;
  const uint64_t cut = rem * (base + 1);
  if (c < cut) return static_cast<uint32_t>(c / (base + 1));
  if (base == 0) return parts - 1;  // fewer colors than parts
  return static_cast<uint32_t>(rem + (c - cut) / base);
}

BlockRange block_range(uint64_t colors, uint32_t parts, uint32_t part) {
  CR_CHECK(part < parts);
  const uint64_t base = colors / parts;
  const uint64_t rem = colors % parts;
  const uint64_t begin = part * base + std::min<uint64_t>(part, rem);
  return BlockRange{begin, begin + base + (part < rem ? 1 : 0)};
}

Mapper::Mapper(const sim::Machine& machine, const MapperOptions& options)
    : name_(options.name),
      nodes_(machine.nodes()),
      cores_(machine.cores_per_node()),
      reserved_(options.reserved_cores) {
  if (reserved_ >= cores_) {
    // Reserving every core would leave compute_cores_ == 0 and turn the
    // round-robin in compute_proc into a division by zero. Clamp so at
    // least one compute core survives (on a 1-core node the control and
    // compute roles share core 0, as they must).
    CR_LOG(kWarn) << "mapper: reserved_cores=" << reserved_
                  << " >= cores_per_node=" << cores_
                  << "; clamping to " << (cores_ - 1)
                  << " so one compute core remains";
    reserved_ = cores_ - 1;
  }
  compute_cores_ = cores_ - reserved_;
  speeds_.reserve(nodes_);
  for (uint32_t n = 0; n < nodes_; ++n) {
    speeds_.push_back(machine.node_speed(n));
  }
}

uint32_t Mapper::node_of_color(uint64_t c, const LaunchShape& shape) const {
  // Block distribution: ceil(num_colors / nodes) colors per node, leading
  // nodes take the remainder — identical to the shard blocking so
  // implicit and SPMD executions place point tasks on the same nodes.
  // Weights are deliberately ignored: the default policy's placements
  // are golden-snapshotted and must depend on num_colors alone.
  return block_owner(c, shape.num_colors, nodes_);
}

uint32_t Mapper::shard_node(uint32_t s, uint32_t num_shards) const {
  CR_CHECK(s < num_shards);
  // One shard per node in the common case; multiple shards per node
  // spread evenly otherwise.
  return static_cast<uint32_t>(
      static_cast<uint64_t>(s) * nodes_ / num_shards);
}

sim::ProcId Mapper::compute_proc(uint32_t node, uint64_t seq) const {
  return sim::ProcId{node,
                     reserved_ + static_cast<uint32_t>(seq % compute_cores_)};
}

sim::ProcId Mapper::control_proc(uint32_t node) const {
  return sim::ProcId{node, 0};
}

namespace {

// --- balanced: speed- and weight-proportional contiguous blocks -------
//
// Colors stay contiguous per node (locality-preserving like the default
// blocking) but each node's share of the total launch weight is
// proportional to its speed factor. All arithmetic is integral — speed
// factors are quantized to permille — so placements are bit-stable
// across platforms and compilers.
class BalancedMapper : public Mapper {
 public:
  using Mapper::Mapper;

  uint32_t node_of_color(uint64_t c, const LaunchShape& shape) const override {
    CR_CHECK(c < shape.num_colors);
    const Cuts& cuts = cuts_for(shape);
    // Color c sits at doubled-midpoint 2*prefix(c) + w_c; it belongs to
    // the first node whose cumulative-target cut exceeds that point.
    const uint64_t pos = 2 * cuts.prefix[c] + cuts.weight(shape, c);
    const auto it =
        std::upper_bound(cuts.node_cut.begin(), cuts.node_cut.end(), pos);
    return static_cast<uint32_t>(
        std::min<size_t>(it - cuts.node_cut.begin(),
                         cuts.node_cut.size() - 1));
  }

 private:
  struct Cuts {
    std::vector<uint64_t> prefix;    // exclusive prefix sums of weights
    std::vector<uint64_t> node_cut;  // doubled cumulative node targets
    uint64_t weight(const LaunchShape& shape, uint64_t c) const {
      return shape.weights == nullptr ? 1 : (*shape.weights)[c];
    }
  };

  const Cuts& cuts_for(const LaunchShape& shape) const {
    // Placements are queried only during the single-threaded unroll, so
    // a plain memo (keyed by the caller-cached weights vector identity)
    // is safe. The entry is a pure function of (weights, num_colors,
    // speeds), so memoization cannot change any answer.
    const auto key = std::make_pair(
        reinterpret_cast<const void*>(shape.weights), shape.num_colors);
    auto [it, inserted] = cuts_.try_emplace(key);
    if (!inserted) return it->second;
    Cuts& cuts = it->second;
    cuts.prefix.resize(shape.num_colors + 1, 0);
    for (uint64_t c = 0; c < shape.num_colors; ++c) {
      cuts.prefix[c + 1] = cuts.prefix[c] + cuts.weight(shape, c);
    }
    uint64_t total = cuts.prefix[shape.num_colors];
    if (total == 0) {
      // Degenerate (all-empty subregions): weight every color equally.
      cuts.prefix.assign(shape.num_colors + 1, 0);
      for (uint64_t c = 0; c <= shape.num_colors; ++c) cuts.prefix[c] = c;
      total = shape.num_colors;
    }
    uint64_t speed_total = 0;
    std::vector<uint64_t> permille(nodes_);
    for (uint32_t n = 0; n < nodes_; ++n) {
      permille[n] = static_cast<uint64_t>(
          std::llround(std::max(speeds_[n], 0.0) * 1000.0));
      if (permille[n] == 0) permille[n] = 1;  // never starve a cut of room
      speed_total += permille[n];
    }
    cuts.node_cut.resize(nodes_);
    uint64_t cum = 0;
    for (uint32_t n = 0; n < nodes_; ++n) {
      cum += permille[n];
      // Doubled so midpoints compare without fractions; the last cut is
      // exactly 2*total, past every color's midpoint.
      cuts.node_cut[n] = 2 * total * cum / speed_total;
    }
    return cuts;
  }

  mutable std::map<std::pair<const void*, uint64_t>, Cuts> cuts_;
};

// --- adversarial: worst-case clustering on the slowest node -----------
class AdversarialMapper : public Mapper {
 public:
  AdversarialMapper(const sim::Machine& machine, const MapperOptions& options)
      : Mapper(machine, options) {
    for (uint32_t n = 1; n < nodes_; ++n) {
      if (speeds_[n] < speeds_[hot_]) hot_ = n;
    }
  }

  uint32_t node_of_color(uint64_t c, const LaunchShape& shape) const override {
    CR_CHECK(c < shape.num_colors);
    return hot_;  // every point task and instance on the slowest node
  }

 private:
  uint32_t hot_ = 0;
};

// --- random: seeded hash placement ------------------------------------
class RandomMapper : public Mapper {
 public:
  RandomMapper(const sim::Machine& machine, const MapperOptions& options)
      : Mapper(machine, options), seed_(options.seed) {}

  uint32_t node_of_color(uint64_t c, const LaunchShape& shape) const override {
    CR_CHECK(c < shape.num_colors);
    // Depends on (seed, color, num_colors) only, so a launch and its
    // identically-shaped partition instances agree on placement.
    const uint64_t h = support::hash_mix(
        support::hash_mix(seed_ ^ 0x6d61707065727321ull) ^
        (c * 0x9e3779b97f4a7c15ull) ^ shape.num_colors);
    return static_cast<uint32_t>(h % nodes_);
  }

 private:
  uint64_t seed_;
};

}  // namespace

MapperRegistry& MapperRegistry::instance() {
  static MapperRegistry* reg = [] {
    auto* r = new MapperRegistry();
    r->register_policy("default", [](const sim::Machine& m,
                                     const MapperOptions& o) {
      return std::make_unique<Mapper>(m, o);
    });
    r->register_policy("balanced", [](const sim::Machine& m,
                                      const MapperOptions& o) {
      return std::make_unique<BalancedMapper>(m, o);
    });
    r->register_policy("adversarial", [](const sim::Machine& m,
                                         const MapperOptions& o) {
      return std::make_unique<AdversarialMapper>(m, o);
    });
    r->register_policy("random", [](const sim::Machine& m,
                                    const MapperOptions& o) {
      return std::make_unique<RandomMapper>(m, o);
    });
    return r;
  }();
  return *reg;
}

void MapperRegistry::register_policy(const std::string& name,
                                     Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<Mapper> MapperRegistry::create(
    const sim::Machine& machine, const MapperOptions& options) const {
  auto it = factories_.find(options.name);
  if (it == factories_.end()) {
    std::string msg = "unknown mapper \"" + options.name + "\"; registered:";
    for (const auto& [n, f] : factories_) msg += " " + n;
    CR_CHECK_MSG(false, msg.c_str());
  }
  return it->second(machine, options);
}

std::vector<std::string> MapperRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

}  // namespace cr::rt
