#include "rt/mapper.h"

#include "support/check.h"

namespace cr::rt {

Mapper::Mapper(const sim::Machine& machine, MapperConfig config)
    : nodes_(machine.nodes()),
      cores_(machine.cores_per_node()),
      reserved_(config.reserved_cores) {
  CR_CHECK_MSG(reserved_ < cores_, "no compute cores left after reservation");
  compute_cores_ = cores_ - reserved_;
}

uint32_t Mapper::node_of_color(uint64_t c, uint64_t num_colors) const {
  CR_CHECK(c < num_colors);
  // Block distribution: ceil(num_colors / nodes) colors per node, leading
  // nodes take the remainder — identical to the shard blocking so
  // implicit and SPMD executions place point tasks on the same nodes.
  const uint64_t base = num_colors / nodes_;
  const uint64_t rem = num_colors % nodes_;
  const uint64_t cut = rem * (base + 1);
  if (c < cut) return static_cast<uint32_t>(c / (base + 1));
  if (base == 0) return nodes_ - 1;  // fewer colors than nodes
  return static_cast<uint32_t>(rem + (c - cut) / base);
}

uint32_t Mapper::shard_node(uint32_t s, uint32_t num_shards) const {
  CR_CHECK(s < num_shards);
  // One shard per node in the common case; multiple shards per node
  // spread evenly otherwise.
  return static_cast<uint32_t>(
      static_cast<uint64_t>(s) * nodes_ / num_shards);
}

sim::ProcId Mapper::compute_proc(uint32_t node, uint64_t seq) const {
  return sim::ProcId{node,
                     reserved_ + static_cast<uint32_t>(seq % compute_cores_)};
}

sim::ProcId Mapper::control_proc(uint32_t node) const {
  return sim::ProcId{node, 0};
}

}  // namespace cr::rt
