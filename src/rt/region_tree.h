// The region forest: logical regions, partitions, and the tree-shaped
// aliasing analysis of paper §2.3.
//
// Regions are nodes; partitions hang under the region they partition and
// hold one subregion per color. The forest answers the paper's central
// static question — may two regions alias? — with the least-common-
// ancestor test: walk both paths to their common ancestor; if the
// ancestor is a *disjoint* partition and the paths descend through
// different colors, the regions are provably disjoint, otherwise they may
// alias. An exact (dynamic) overlap test is also provided for
// verification and for the runtime's dependence analysis.
//
// Both queries sit on the dependence-analysis hot path (one pair test
// per prior user per launched task), so they are memoized: the forest is
// append-only — region geometry never changes after creation — which
// makes every cached answer valid forever (no invalidation). Static
// O(1) fast paths (same region, different trees, siblings of one
// partition, ancestor/descendant detected by the depth-lockstep walk)
// answer most pairs without touching the cache or any interval data.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rt/field.h"
#include "rt/index_space.h"
#include "support/hash.h"

namespace cr::support {
class MetricsRegistry;
}  // namespace cr::support

namespace cr::rt {

using RegionId = uint32_t;
using PartitionId = uint32_t;
inline constexpr uint32_t kNoId = std::numeric_limits<uint32_t>::max();

struct RegionNode {
  RegionId id = kNoId;
  IndexSpace ispace;
  std::shared_ptr<FieldSpace> fields;
  RegionId root = kNoId;            // root region of this tree
  PartitionId parent = kNoId;       // partition above (kNoId for roots)
  uint32_t depth = 0;               // regions above this one (root = 0)
  uint64_t color = 0;               // color under the parent partition
  std::vector<PartitionId> partitions;  // partitions of this region
  std::string name;
};

struct PartitionNode {
  PartitionId id = kNoId;
  RegionId parent = kNoId;
  bool disjoint = false;   // statically known disjoint (paper §2.1)
  bool complete = false;   // subregions cover the parent
  std::vector<RegionId> subregions;  // indexed by color
  std::string name;
};

class RegionForest {
 public:
  // Create a new top-level region (a fresh tree root).
  RegionId create_region(IndexSpace ispace, std::shared_ptr<FieldSpace> fs,
                         std::string name = {});

  // Create a partition of `parent` from explicit subspaces. `disjoint`
  // is the *static* claim (from the operator that built the subspaces);
  // debug builds verify it.
  PartitionId create_partition(RegionId parent,
                               std::vector<IndexSpace> subspaces,
                               bool disjoint, bool complete,
                               std::string name = {});

  const RegionNode& region(RegionId id) const;
  const PartitionNode& partition(PartitionId id) const;
  RegionId subregion(PartitionId p, uint64_t color) const;
  size_t num_regions() const { return regions_.size(); }
  size_t num_partitions() const { return partitions_.size(); }

  // Paper §2.3: symbolic LCA test. True unless the tree proves disjoint.
  // Memoized; O(1) for pairs resolved by a static fast path or a cache
  // hit, one O(depth) walk on a cold genuinely-dynamic pair.
  bool may_alias(RegionId a, RegionId b) const;
  // Exact dynamic test on index spaces. Memoized; statically disjoint or
  // ancestor/descendant pairs never touch interval data, and each
  // remaining pair pays the exact interval merge at most once.
  bool overlaps_exact(RegionId a, RegionId b) const;

  // Uncached reference implementations (the seed's path-vector LCA walk
  // and the direct interval test). Used by property tests to validate
  // the memoized versions and by nothing on the hot path.
  bool may_alias_uncached(RegionId a, RegionId b) const;
  bool overlaps_exact_uncached(RegionId a, RegionId b) const;

  // Export the memoization query/hit tallies into a metrics registry
  // under rt.alias.* / rt.overlap.* (idempotent set, not add — the
  // forest keeps the authoritative cumulative values). `fast`/`static`
  // count pairs resolved by an O(1) structural rule, `cache_hits` count
  // memo hits, `exact` counts interval merges actually performed.
  void export_metrics(support::MetricsRegistry& m) const;

  // Partition-level may-alias: could any subregion of p overlap any
  // subregion of q? Used by the data replication pass. For p == q this
  // asks whether distinct colors may overlap (false iff p is disjoint).
  bool partitions_may_alias(PartitionId p, PartitionId q) const;

  // Render the forest as an indented tree (one line per region or
  // partition; partitions are tagged with their disjoint/complete flags
  // — the paper's Figure 3/5 diagrams in text form).
  std::string to_string() const;

 private:
  // Path from a region up to its root: region, (partition, color),
  // region, ... encoded as alternating ids.
  struct PathStep {
    PartitionId partition;
    uint64_t color;
  };
  std::vector<PathStep> path_to_root(RegionId r) const;

  // Structural relation of two distinct regions in one tree, computed by
  // an allocation-free depth-lockstep walk and memoized per pair.
  enum class Relation : uint8_t {
    kDisjoint = 1,  // provably disjoint (disjoint partition divergence)
    kAncestor = 2,  // one contains the other's index space
    kDynamic = 3,   // may alias; only interval data can decide overlap
  };
  Relation relation(RegionId a, RegionId b, uint64_t& cache_hits) const;
  Relation relation_walk(RegionId a, RegionId b) const;

  // Query/hit tallies for the memoized tests (cheap host-side bumps on
  // the hot path; exported on demand via export_metrics).
  struct AliasCounters {
    uint64_t alias_queries = 0;
    uint64_t alias_fast = 0;
    uint64_t alias_hits = 0;
    uint64_t overlap_queries = 0;
    uint64_t overlap_static = 0;
    uint64_t overlap_hits = 0;
    uint64_t overlap_exact = 0;
  };

  // Memo for (min, max) region pairs. Low 2 bits: Relation (0 = not yet
  // computed). Bit 2: exact overlap known. Bit 3: exact overlap value.
  mutable std::unordered_map<uint64_t, uint8_t, support::U64Hash> pair_cache_;
  mutable AliasCounters counters_;

  // Deques: node references (and the IndexSpace objects inside them) stay
  // stable while the forest grows — physical instances, executors, and
  // oracle results hold pointers into them across compiler passes that
  // create new partitions.
  std::deque<RegionNode> regions_;
  std::deque<PartitionNode> partitions_;
};

}  // namespace cr::rt
