// Dynamic collectives (paper §4.4): asynchronous allreduce over the
// shards with a dynamically determined number of participants per
// generation. Scalars reduced inside inner loops are accumulated locally
// by each shard, contributed here, folded deterministically in
// participant order, and broadcast back; the result is exposed as an
// event plus a value slot so consumers never block a control thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "rt/physical.h"  // ReduceOp
#include "sim/event.h"
#include "sim/network.h"

namespace cr::sim {
class Simulator;
}

namespace cr::rt {

class DynamicCollective {
 public:
  DynamicCollective(sim::Simulator& sim, sim::Network& net,
                    uint32_t participants, ReduceOp op);

  // Contribute participant `rank`'s value for `generation`; `value` is
  // sampled at contribution time (after `precondition` triggers), so
  // shards can hand in accumulators filled by their point tasks.
  void contribute(uint64_t generation, uint32_t rank, sim::Event precondition,
                  std::function<double()> value);

  // Triggers when the folded result of `generation` is available
  // everywhere (fan-in + fan-out latency after the last contribution).
  sim::Event result_event(uint64_t generation);

  // Valid once result_event(generation) has triggered.
  double result(uint64_t generation) const;

  // Uid of the internal merge-of-arrivals event for `generation`: the
  // point in the happens-before graph where the fold reads every
  // contribution. 0 until all contributions are in (or when every
  // arrival was already triggered — i.e. the gather waits on nothing).
  // The race checker anchors the fold's reads here.
  uint64_t gather_uid(uint64_t generation) const;

 private:
  struct Generation {
    // Indexed by rank: sampling thunks, filled as contributions arrive.
    std::vector<std::function<double()>> values;
    std::vector<sim::Event> arrivals;
    std::unique_ptr<sim::UserEvent> done;
    double result = 0;
    bool wired = false;
    uint64_t gather_uid = 0;
  };
  Generation& gen(uint64_t g);
  void maybe_wire(Generation& g);

  sim::Simulator* sim_;
  sim::Network* net_;
  uint32_t participants_;
  ReduceOp op_;
  std::map<uint64_t, Generation> generations_;
};

}  // namespace cr::rt
