#include "rt/dependence.h"

#include <algorithm>

#include "support/check.h"

namespace cr::rt {

std::vector<sim::Event> DependenceTracker::record(uint64_t op_id,
                                                  const Requirement& req,
                                                  sim::Event completion) {
  std::vector<sim::Event> preconditions;
  const RegionNode& node = forest_->region(req.region);
  for (FieldId f : req.fields) {
    auto& list = users_[{node.root, f}];
    std::vector<User> kept;
    kept.reserve(list.size() + 1);
    for (User& u : list) {
      // An operation never depends on itself (e.g. a copy registering
      // both its read and write requirements).
      if (u.op_id == op_id) {
        kept.push_back(std::move(u));
        continue;
      }
      ++pairs_tested_;
      const bool conflict =
          privileges_conflict(u.privilege, u.redop, req.privilege,
                              req.redop) &&
          forest_->may_alias(u.region, req.region) &&
          forest_->overlaps_exact(u.region, req.region);
      if (conflict) {
        ++dependences_found_;
        preconditions.push_back(u.completion);
        // Epoch pruning: a writer that covers a prior user transitively
        // orders every later conflicting operation, so the prior user can
        // retire. Only writers dominate (a reader covering a writer must
        // not hide it from later readers).
        if (privilege_writes(req.privilege) &&
            forest_->region(req.region)
                .ispace.points()
                .contains_all(forest_->region(u.region).ispace.points())) {
          continue;  // drop u
        }
      }
      kept.push_back(std::move(u));
    }
    kept.push_back(
        User{op_id, req.privilege, req.redop, req.region, completion});
    list = std::move(kept);
  }
  // Duplicate events (same predecessor via multiple fields) are harmless:
  // Event::merge tolerates repeats.
  return preconditions;
}

void DependenceTracker::reset() {
  users_.clear();
  pairs_tested_ = 0;
  dependences_found_ = 0;
}

}  // namespace cr::rt
