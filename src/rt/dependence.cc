#include "rt/dependence.h"

#include <algorithm>

#include "support/check.h"

namespace cr::rt {

std::vector<sim::Event> DependenceTracker::record(uint64_t op_id,
                                                  const Requirement& req,
                                                  sim::Event completion,
                                                  Capture* capture) {
  std::vector<sim::Event> preconditions;
  const RegionNode& node = forest_->region(req.region);
  const support::IntervalSet& pts = node.ispace.points();
  const bool can_prune = privilege_writes(req.privilege);
  support::Interval query{0, 0};
  if (!pts.empty()) query = pts.bounds();

  for (FieldId f : req.fields) {
    FieldState& st = users_[{node.root, f}];
    // The exhaustive scan tests every live non-self user; charge that to
    // the simulated master regardless of what the index skips.
    const uint64_t self_live = st.last_op == op_id ? st.last_op_live : 0;
    pairs_scanned_ += st.alive - self_live;

    // Candidate slots, in insertion order. The geometric candidate set
    // is a superset of every exactly-overlapping user (bounding extents
    // are conservative), so the conflicts found — and the epochs pruned
    // — match the linear scan's exactly.
    cand_.clear();
    if (linear_) {
      for (size_t i = 0; i < st.slots.size(); ++i) {
        cand_.push_back(static_cast<uint32_t>(i));
      }
    } else if (!pts.empty()) {
      ++index_queries_;
      hits_.clear();
      st.tree.query(query, hits_);
      cand_.assign(hits_.begin(), hits_.end());
      st.tail_touched +=
          static_cast<uint64_t>(st.slots.size() - st.indexed_end);
      for (size_t i = st.indexed_end; i < st.slots.size(); ++i) {
        const support::Interval& b = st.slots[i].bounds;
        if (b.lo < query.hi && query.lo < b.hi) {
          cand_.push_back(static_cast<uint32_t>(i));
        }
      }
      std::sort(cand_.begin(), cand_.end());
    }

    for (uint32_t idx : cand_) {
      User& u = st.slots[idx];
      // Tombstones, and an operation never depending on itself (e.g. a
      // copy registering both its read and write requirements).
      if (!u.alive || u.op_id == op_id) continue;
      ++pairs_tested_;
      const bool conflict =
          privileges_conflict(u.privilege, u.redop, req.privilege,
                              req.redop) &&
          forest_->may_alias(u.region, req.region) &&
          forest_->overlaps_exact(u.region, req.region);
      if (!conflict) continue;
      ++dependences_found_;
      // One precondition per predecessor: the same completion reached
      // via several fields would only make Event::merge re-wait on it.
      if (std::find(preconditions.begin(), preconditions.end(),
                    u.completion) == preconditions.end()) {
        preconditions.push_back(u.completion);
        if (capture != nullptr) capture->dep_ops.push_back(u.op_id);
      }
      // Epoch pruning: a writer that covers a prior user transitively
      // orders every later conflicting operation, so the prior user can
      // retire. Only writers dominate (a reader covering a writer must
      // not hide it from later readers).
      if (can_prune &&
          pts.contains_all(forest_->region(u.region).ispace.points())) {
        u.alive = false;
        --st.alive;
        ++st.dead;
        if (capture != nullptr) {
          capture->prunes.push_back(
              {f, u.op_id, u.region, u.privilege, u.redop});
        }
      }
    }

    register_user(st, op_id, req, completion, query);
    maybe_rebuild(st);
  }
  return preconditions;
}

uint64_t DependenceTracker::replay(uint64_t op_id, const Requirement& req,
                                   sim::Event completion,
                                   const std::vector<Capture::Prune>& prunes,
                                   uint64_t found) {
  const RegionNode& node = forest_->region(req.region);
  const support::IntervalSet& pts = node.ispace.points();
  support::Interval query{0, 0};
  if (!pts.empty()) query = pts.bounds();

  uint64_t scanned = 0;
  for (FieldId f : req.fields) {
    FieldState& st = users_[{node.root, f}];
    // The virtual-time charge mirrors record(): what the exhaustive scan
    // would test against the live state at this point, before this
    // call's own prunes take effect.
    const uint64_t self_live = st.last_op == op_id ? st.last_op_live : 0;
    scanned += st.alive - self_live;

    for (const Capture::Prune& p : prunes) {
      if (p.field != f) continue;
      bool pruned = false;
      for (User& u : st.slots) {
        if (u.alive && u.op_id == p.op_id && u.region == p.region &&
            u.privilege == p.privilege && u.redop == p.redop) {
          u.alive = false;
          --st.alive;
          ++st.dead;
          pruned = true;
          break;
        }
      }
      CR_CHECK_MSG(pruned, "trace replay pruned a user that is not live");
    }

    register_user(st, op_id, req, completion, query);
    maybe_rebuild(st);
  }
  pairs_scanned_ += scanned;
  dependences_found_ += found;
  return scanned;
}

void DependenceTracker::register_user(FieldState& st, uint64_t op_id,
                                      const Requirement& req,
                                      sim::Event completion,
                                      support::Interval bounds) {
  User nu;
  nu.op_id = op_id;
  nu.privilege = req.privilege;
  nu.redop = req.redop;
  nu.region = req.region;
  nu.completion = completion;
  nu.bounds = bounds;
  st.slots.push_back(std::move(nu));
  ++st.alive;
  if (st.last_op == op_id) {
    ++st.last_op_live;
  } else {
    st.last_op = op_id;
    st.last_op_live = 1;
  }
}

void DependenceTracker::maybe_rebuild(FieldState& st) {
  // Staleness = users the index doesn't cover well: appends past
  // indexed_end (scanned linearly per query) plus tombstones (returned
  // by queries, then skipped). Rebuilding once staleness reaches an
  // eighth of the live list amortizes to O(log n) per record. That
  // ratio alone is not a bound on tail work, though: with heavy
  // tombstone churn `alive` stays large while a short unindexed tail is
  // rescanned by every query, so the second trigger caps *accumulated*
  // tail scans — once they have cost as much as one pass over the live
  // list (the price of a rebuild), rebuilding amortizes to O(1) extra.
  // Rebuild timing is host-side only: candidates are live slots whose
  // bounds overlap the query either way, so pairs_tested and the
  // dependence set are unaffected.
  const uint64_t stale =
      static_cast<uint64_t>(st.slots.size() - st.indexed_end) + st.dead;
  const bool ratio_stale = stale > 64 && stale * 8 >= st.alive;
  const bool tail_hot = st.tail_touched > 64 && st.tail_touched >= st.alive;
  if (!ratio_stale && !tail_hot) return;
  st.tail_touched = 0;
  if (st.dead > 0) {
    std::erase_if(st.slots, [](const User& u) { return !u.alive; });
    st.dead = 0;
  }
  CR_DCHECK(st.slots.size() == st.alive);
  if (linear_) {
    // Compaction only (bounds memory); the reference mode never queries.
    st.indexed_end = 0;
    return;
  }
  std::vector<IntervalTree::Entry> entries;
  entries.reserve(st.slots.size());
  for (size_t i = 0; i < st.slots.size(); ++i) {
    if (!st.slots[i].bounds.empty()) {
      entries.push_back({st.slots[i].bounds, i});
    }
  }
  st.tree = IntervalTree(std::move(entries));
  st.indexed_end = st.slots.size();
  ++index_rebuilds_;
}

void DependenceTracker::reset() {
  users_.clear();
  pairs_tested_ = 0;
  pairs_scanned_ = 0;
  dependences_found_ = 0;
  index_queries_ = 0;
  index_rebuilds_ = 0;
}

}  // namespace cr::rt
