#include "rt/physical.h"

#include <algorithm>

#include "support/check.h"

namespace cr::rt {

double reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return 0.0;
    case ReduceOp::kMin:
      return std::numeric_limits<double>::infinity();
    case ReduceOp::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  CR_UNREACHABLE("bad ReduceOp");
}

double reduce_fold(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMin:
      return a < b ? a : b;
    case ReduceOp::kMax:
      return a > b ? a : b;
  }
  CR_UNREACHABLE("bad ReduceOp");
}

int64_t reduce_identity_i64(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return 0;
    case ReduceOp::kMin:
      return std::numeric_limits<int64_t>::max();
    case ReduceOp::kMax:
      return std::numeric_limits<int64_t>::min();
  }
  CR_UNREACHABLE("bad ReduceOp");
}

int64_t reduce_fold_i64(ReduceOp op, int64_t a, int64_t b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMin:
      return a < b ? a : b;
    case ReduceOp::kMax:
      return a > b ? a : b;
  }
  CR_UNREACHABLE("bad ReduceOp");
}

PhysicalInstance::PhysicalInstance(InstanceId id, const RegionForest& forest,
                                   RegionId region, uint32_t node)
    : id_(id),
      region_(region),
      node_(node),
      domain_(&forest.region(region).ispace),
      fields_(forest.region(region).fields.get()) {
  columns_.resize(fields_->num_fields());
  for (const FieldDecl& f : fields_->fields()) {
    if (f.type == FieldType::kF64) {
      columns_[f.id] = std::vector<double>(domain_->size(), 0.0);
    } else {
      columns_[f.id] = std::vector<int64_t>(domain_->size(), 0);
    }
  }
}

PhysicalInstance::Column& PhysicalInstance::column(FieldId f) {
  CR_CHECK(f < columns_.size());
  return columns_[f];
}

const PhysicalInstance::Column& PhysicalInstance::column(FieldId f) const {
  CR_CHECK(f < columns_.size());
  return columns_[f];
}

double PhysicalInstance::read_f64(FieldId f, uint64_t point) const {
  return std::get<std::vector<double>>(column(f))[domain_->rank(point)];
}

void PhysicalInstance::write_f64(FieldId f, uint64_t point, double v) {
  std::get<std::vector<double>>(column(f))[domain_->rank(point)] = v;
}

int64_t PhysicalInstance::read_i64(FieldId f, uint64_t point) const {
  return std::get<std::vector<int64_t>>(column(f))[domain_->rank(point)];
}

void PhysicalInstance::write_i64(FieldId f, uint64_t point, int64_t v) {
  std::get<std::vector<int64_t>>(column(f))[domain_->rank(point)] = v;
}

void PhysicalInstance::reduce_f64(FieldId f, uint64_t point, ReduceOp op,
                                  double v) {
  auto& col = std::get<std::vector<double>>(column(f));
  const uint64_t r = domain_->rank(point);
  col[r] = reduce_fold(op, col[r], v);
}

void PhysicalInstance::fill_f64(FieldId f, double v) {
  auto& col = std::get<std::vector<double>>(column(f));
  std::fill(col.begin(), col.end(), v);
}

void PhysicalInstance::copy_from(const PhysicalInstance& src,
                                 const support::IntervalSet& points,
                                 const std::vector<FieldId>& fields) {
  for (FieldId f : fields) {
    points.for_each_point([&](uint64_t p) {
      if (fields_->field(f).type == FieldType::kF64) {
        write_f64(f, p, src.read_f64(f, p));
      } else {
        write_i64(f, p, src.read_i64(f, p));
      }
    });
  }
}

void PhysicalInstance::fold_from(const PhysicalInstance& src,
                                 const support::IntervalSet& points,
                                 const std::vector<FieldId>& fields,
                                 ReduceOp op) {
  for (FieldId f : fields) {
    CR_CHECK_MSG(fields_->field(f).type == FieldType::kF64,
                 "reduction copies support f64 fields only");
    points.for_each_point([&](uint64_t p) {
      auto& col = std::get<std::vector<double>>(column(f));
      const uint64_t r = domain_->rank(p);
      col[r] = reduce_fold(op, col[r], src.read_f64(f, p));
    });
  }
}

PhysicalInstance::StagedPayload PhysicalInstance::gather(
    const support::IntervalSet& points,
    const std::vector<FieldId>& fields) const {
  StagedPayload staged;
  staged.cols.reserve(fields.size());
  for (FieldId f : fields) {
    if (fields_->field(f).type == FieldType::kF64) {
      std::vector<double> col;
      points.for_each_point([&](uint64_t p) { col.push_back(read_f64(f, p)); });
      staged.cols.emplace_back(std::move(col));
    } else {
      std::vector<int64_t> col;
      points.for_each_point([&](uint64_t p) { col.push_back(read_i64(f, p)); });
      staged.cols.emplace_back(std::move(col));
    }
  }
  return staged;
}

void PhysicalInstance::scatter(const StagedPayload& staged,
                               const support::IntervalSet& points,
                               const std::vector<FieldId>& fields) {
  CR_CHECK(staged.cols.size() == fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldId f = fields[i];
    size_t k = 0;
    if (fields_->field(f).type == FieldType::kF64) {
      const auto& col = std::get<std::vector<double>>(staged.cols[i]);
      points.for_each_point([&](uint64_t p) { write_f64(f, p, col[k++]); });
    } else {
      const auto& col = std::get<std::vector<int64_t>>(staged.cols[i]);
      points.for_each_point([&](uint64_t p) { write_i64(f, p, col[k++]); });
    }
  }
}

void PhysicalInstance::scatter_fold(const StagedPayload& staged,
                                    const support::IntervalSet& points,
                                    const std::vector<FieldId>& fields,
                                    ReduceOp op) {
  CR_CHECK(staged.cols.size() == fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldId f = fields[i];
    CR_CHECK_MSG(fields_->field(f).type == FieldType::kF64,
                 "reduction copies support f64 fields only");
    const auto& col = std::get<std::vector<double>>(staged.cols[i]);
    size_t k = 0;
    points.for_each_point(
        [&](uint64_t p) { reduce_f64(f, p, op, col[k++]); });
  }
}

InstanceId InstanceManager::create(RegionId region, uint32_t node) {
  const InstanceId id = static_cast<InstanceId>(instances_.size());
  instances_.push_back(
      std::make_unique<PhysicalInstance>(id, *forest_, region, node));
  return id;
}

PhysicalInstance& InstanceManager::get(InstanceId id) {
  CR_CHECK(id < instances_.size());
  return *instances_[id];
}

const PhysicalInstance& InstanceManager::get(InstanceId id) const {
  CR_CHECK(id < instances_.size());
  return *instances_[id];
}

}  // namespace cr::rt
