// Task privileges and region requirements (paper §2.1).
//
// Tasks declare privileges on their region arguments; execution is
// apparently sequential, and two tasks may run in parallel only if they
// use disjoint regions or compatible privileges (both read, or both
// reduce with the same operator). Privileges are *strict*: all analysis
// happens at this level, never inside task bodies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/physical.h"
#include "rt/region_tree.h"

namespace cr::rt {

enum class Privilege : uint8_t {
  kReadOnly,
  kReadWrite,
  kWriteDiscard,  // write without reading prior contents
  kReduce,        // fold with `redop`; commutes with same-op reductions
};

inline bool privilege_writes(Privilege p) {
  return p == Privilege::kReadWrite || p == Privilege::kWriteDiscard;
}
inline bool privilege_reads(Privilege p) {
  return p == Privilege::kReadOnly || p == Privilege::kReadWrite;
}

// Do two uses of potentially overlapping data require ordering?
inline bool privileges_conflict(Privilege a, ReduceOp a_op, Privilege b,
                                ReduceOp b_op) {
  if (a == Privilege::kReadOnly && b == Privilege::kReadOnly) return false;
  if (a == Privilege::kReduce && b == Privilege::kReduce && a_op == b_op) {
    return false;
  }
  return true;
}

// `sub` may be demanded by a callee only if the caller holds `sup` on a
// covering region: strictness of privileges (paper §2.1).
inline bool privilege_subsumes(Privilege sup, ReduceOp sup_op, Privilege sub,
                               ReduceOp sub_op) {
  switch (sub) {
    case Privilege::kReadOnly:
      return privilege_reads(sup);
    case Privilege::kReadWrite:
      return sup == Privilege::kReadWrite || sup == Privilege::kWriteDiscard;
    case Privilege::kWriteDiscard:
      return privilege_writes(sup);
    case Privilege::kReduce:
      // Read-write subsumes any reduction; a reduce privilege subsumes
      // only the same operator.
      return sup == Privilege::kReadWrite ||
             (sup == Privilege::kReduce && sup_op == sub_op);
  }
  return false;
}

inline const char* privilege_name(Privilege p) {
  switch (p) {
    case Privilege::kReadOnly:
      return "reads";
    case Privilege::kReadWrite:
      return "reads writes";
    case Privilege::kWriteDiscard:
      return "writes";
    case Privilege::kReduce:
      return "reduces";
  }
  return "?";
}

// One region argument of one task instance, fully concrete.
struct Requirement {
  RegionId region = kNoId;
  Privilege privilege = Privilege::kReadOnly;
  ReduceOp redop = ReduceOp::kSum;
  std::vector<FieldId> fields;
};

}  // namespace cr::rt
