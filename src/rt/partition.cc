#include "rt/partition.h"

#include <algorithm>

#include "support/check.h"

namespace cr::rt {

PartitionId partition_equal(RegionForest& forest, RegionId region,
                            uint64_t colors, std::string name) {
  CR_CHECK(colors > 0);
  const IndexSpace& is = forest.region(region).ispace;
  const uint64_t total = is.size();
  std::vector<IndexSpace> subs;
  subs.reserve(colors);
  uint64_t begin = 0;
  for (uint64_t c = 0; c < colors; ++c) {
    // Distribute the remainder over the first `total % colors` pieces.
    const uint64_t count = total / colors + (c < total % colors ? 1 : 0);
    support::IntervalSet pts;
    for (uint64_t k = begin; k < begin + count;) {
      // Copy whole intervals of the parent between the rank bounds.
      const uint64_t p = is.point_at(k);
      const auto& ivs = is.points().intervals();
      auto it = std::upper_bound(
          ivs.begin(), ivs.end(), p,
          [](uint64_t q, const support::Interval& iv) { return q < iv.lo; });
      const support::Interval iv = *(it - 1);
      const uint64_t take = std::min(iv.hi - p, begin + count - k);
      pts.append(p, p + take);
      k += take;
    }
    subs.push_back(is.subspace(std::move(pts)));
    begin += count;
  }
  return forest.create_partition(region, std::move(subs), /*disjoint=*/true,
                                 /*complete=*/true, std::move(name));
}

PartitionId partition_grid(RegionForest& forest, RegionId region,
                           std::array<uint64_t, 3> tiles, std::string name) {
  const IndexSpace& is = forest.region(region).ispace;
  const GridExtents& e = is.extents();
  for (int d = 0; d < 3; ++d) {
    CR_CHECK(tiles[d] > 0 && tiles[d] <= e.n[d]);
  }
  std::vector<IndexSpace> subs;
  subs.reserve(tiles[0] * tiles[1] * tiles[2]);
  auto tile_bounds = [](uint64_t n, uint64_t t, uint64_t i, int64_t& lo,
                        int64_t& hi) {
    // Even split with remainder spread over the leading tiles.
    const uint64_t base = n / t, rem = n % t;
    lo = static_cast<int64_t>(i * base + std::min<uint64_t>(i, rem));
    hi = lo + static_cast<int64_t>(base + (i < rem ? 1 : 0));
  };
  for (uint64_t tx = 0; tx < tiles[0]; ++tx) {
    for (uint64_t ty = 0; ty < tiles[1]; ++ty) {
      for (uint64_t tz = 0; tz < tiles[2]; ++tz) {
        Rect r;
        tile_bounds(e.n[0], tiles[0], tx, r.lo[0], r.hi[0]);
        tile_bounds(e.n[1], tiles[1], ty, r.lo[1], r.hi[1]);
        tile_bounds(e.n[2], tiles[2], tz, r.lo[2], r.hi[2]);
        subs.push_back(is.subspace(e.rect_ids(r)));
      }
    }
  }
  return forest.create_partition(region, std::move(subs), /*disjoint=*/true,
                                 /*complete=*/true, std::move(name));
}

PartitionId partition_by_color(
    RegionForest& forest, RegionId region, uint64_t colors,
    const std::function<uint64_t(uint64_t)>& color_of, std::string name) {
  CR_CHECK(colors > 0);
  const IndexSpace& is = forest.region(region).ispace;
  std::vector<support::IntervalSet> sets(colors);
  bool complete = true;
  is.points().for_each_point([&](uint64_t p) {
    const uint64_t c = color_of(p);
    if (c == kNoColor) {
      complete = false;
      return;
    }
    CR_CHECK_MSG(c < colors, "color out of range");
    sets[c].append_point(p);
  });
  std::vector<IndexSpace> subs;
  subs.reserve(colors);
  for (auto& s : sets) subs.push_back(is.subspace(std::move(s)));
  return forest.create_partition(region, std::move(subs), /*disjoint=*/true,
                                 complete, std::move(name));
}

PartitionId partition_image(
    RegionForest& forest, RegionId region, PartitionId source,
    const std::function<void(uint64_t, std::vector<uint64_t>&)>& targets,
    std::string name) {
  const PartitionNode& src = forest.partition(source);
  const IndexSpace& window = forest.region(region).ispace;
  std::vector<IndexSpace> subs;
  subs.reserve(src.subregions.size());
  std::vector<uint64_t> pts;
  std::vector<uint64_t> buf;
  for (RegionId sub : src.subregions) {
    pts.clear();
    forest.region(sub).ispace.points().for_each_point([&](uint64_t x) {
      buf.clear();
      targets(x, buf);
      for (uint64_t y : buf) {
        if (window.contains(y)) pts.push_back(y);
      }
    });
    subs.push_back(window.subspace(support::IntervalSet::from_points(pts)));
  }
  // h is unconstrained, so the result must be assumed aliased and is not
  // in general complete (paper §2.1).
  return forest.create_partition(region, std::move(subs), /*disjoint=*/false,
                                 /*complete=*/false, std::move(name));
}

PartitionId partition_preimage(
    RegionForest& forest, RegionId region, PartitionId source,
    const std::function<void(uint64_t, std::vector<uint64_t>&)>& targets,
    std::string name) {
  const PartitionNode& src = forest.partition(source);
  const IndexSpace& domain = forest.region(region).ispace;
  std::vector<std::vector<uint64_t>> pts(src.subregions.size());
  std::vector<uint64_t> buf;
  domain.points().for_each_point([&](uint64_t x) {
    buf.clear();
    targets(x, buf);
    for (uint64_t y : buf) {
      for (size_t i = 0; i < src.subregions.size(); ++i) {
        if (forest.region(src.subregions[i]).ispace.contains(y)) {
          pts[i].push_back(x);
        }
      }
    }
  });
  std::vector<IndexSpace> subs;
  subs.reserve(pts.size());
  for (auto& p : pts) {
    subs.push_back(
        domain.subspace(support::IntervalSet::from_points(std::move(p))));
  }
  return forest.create_partition(region, std::move(subs),
                                 /*disjoint=*/false, /*complete=*/false,
                                 std::move(name));
}

PartitionId partition_union(RegionForest& forest, PartitionId a,
                            PartitionId b, std::string name) {
  const PartitionNode& pa = forest.partition(a);
  const PartitionNode& pb = forest.partition(b);
  CR_CHECK_MSG(pa.parent == pb.parent,
               "pointwise operators need partitions of the same region");
  CR_CHECK(pa.subregions.size() == pb.subregions.size());
  const IndexSpace& parent = forest.region(pa.parent).ispace;
  std::vector<IndexSpace> subs;
  subs.reserve(pa.subregions.size());
  for (size_t i = 0; i < pa.subregions.size(); ++i) {
    subs.push_back(parent.subspace(
        forest.region(pa.subregions[i])
            .ispace.points()
            .set_union(forest.region(pb.subregions[i]).ispace.points())));
  }
  return forest.create_partition(pa.parent, std::move(subs),
                                 /*disjoint=*/false, /*complete=*/false,
                                 std::move(name));
}

PartitionId partition_difference(RegionForest& forest, PartitionId a,
                                 PartitionId b, std::string name) {
  const PartitionNode& pa = forest.partition(a);
  const PartitionNode& pb = forest.partition(b);
  CR_CHECK_MSG(pa.parent == pb.parent,
               "pointwise operators need partitions of the same region");
  CR_CHECK(pa.subregions.size() == pb.subregions.size());
  const IndexSpace& parent = forest.region(pa.parent).ispace;
  std::vector<IndexSpace> subs;
  subs.reserve(pa.subregions.size());
  for (size_t i = 0; i < pa.subregions.size(); ++i) {
    subs.push_back(parent.subspace(
        forest.region(pa.subregions[i])
            .ispace.points()
            .set_subtract(
                forest.region(pb.subregions[i]).ispace.points())));
  }
  return forest.create_partition(pa.parent, std::move(subs),
                                 /*disjoint=*/pa.disjoint,
                                 /*complete=*/false, std::move(name));
}

PartitionId partition_compose(
    RegionForest& forest, PartitionId source, uint64_t colors,
    const std::function<uint64_t(uint64_t)>& f, std::string name) {
  const PartitionNode& src = forest.partition(source);
  std::vector<IndexSpace> subs;
  subs.reserve(colors);
  for (uint64_t i = 0; i < colors; ++i) {
    const uint64_t j = f(i);
    CR_CHECK_MSG(j < src.subregions.size(), "projection out of range");
    subs.push_back(forest.region(src.subregions[j]).ispace);
  }
  return forest.create_partition(src.parent, std::move(subs),
                                 /*disjoint=*/false, /*complete=*/false,
                                 std::move(name));
}

PartitionId partition_intersect(RegionForest& forest, RegionId window,
                                PartitionId source, std::string name) {
  const PartitionNode& src = forest.partition(source);
  const IndexSpace& wis = forest.region(window).ispace;
  std::vector<IndexSpace> subs;
  subs.reserve(src.subregions.size());
  for (RegionId sub : src.subregions) {
    subs.push_back(wis.subspace(
        forest.region(sub).ispace.points().set_intersect(wis.points())));
  }
  return forest.create_partition(window, std::move(subs),
                                 /*disjoint=*/src.disjoint,
                                 /*complete=*/false, std::move(name));
}

}  // namespace cr::rt
