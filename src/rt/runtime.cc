#include "rt/runtime.h"

namespace cr::rt {

Runtime::Runtime(RuntimeConfig config)
    : config_(config),
      machine_(sim_, config.machine),
      network_(sim_, config.machine.nodes, config.network),
      instances_(forest_),
      deps_(forest_),
      copies_(network_, forest_,
              config.real_data ? &instances_ : nullptr),
      mapper_(MapperRegistry::instance().create(machine_, MapperOptions{})) {}

Mapper& Runtime::select_mapper(const MapperOptions& options) {
  mapper_ = MapperRegistry::instance().create(machine_, options);
  return *mapper_;
}

}  // namespace cr::rt
