#include "rt/copy.h"

#include <memory>
#include <utility>

#include "support/check.h"

namespace cr::rt {

sim::Event CopyEngine::issue(const CopyRequest& req,
                             sim::Event precondition) {
  if (req.points.empty()) {
    ++skipped_;
    return precondition;
  }
  ++copies_;
  const FieldSpace& fs = *forest_->region(req.src_region).fields;
  const uint64_t bytes = req.points.size() * fs.virtual_bytes_of(req.fields);
  bytes_ += bytes;

  std::function<void()> on_delivery;
  std::function<void()> on_inject;
  if (instances_ != nullptr) {
    CR_CHECK(req.src_inst != kNoId && req.dst_inst != kNoId);
    InstanceManager* insts = instances_;
    // Capture by value: the request may be a temporary at the caller.
    // The payload is gathered from the source instance on the source
    // side at injection, and scattered into the destination at delivery
    // (the two run on different host threads under the multi-worker
    // backend). Reading at inject instead of delivery is equivalent:
    // anti-dependences order any writer of the source after the copy.
    auto r = std::make_shared<CopyRequest>(req);
    auto staged = std::make_shared<PhysicalInstance::StagedPayload>();
    on_inject = [insts, r, staged] {
      *staged = insts->get(r->src_inst).gather(r->points, r->fields);
    };
    on_delivery = [insts, r, staged] {
      PhysicalInstance& dst = insts->get(r->dst_inst);
      if (r->reduction) {
        dst.scatter_fold(*staged, r->points, r->fields, r->redop);
      } else {
        dst.scatter(*staged, r->points, r->fields);
      }
      *staged = {};  // release the buffer as soon as it lands
    };
  }
  return net_->send(req.src_node, req.dst_node, bytes, precondition,
                    std::move(on_delivery), std::move(on_inject));
}

}  // namespace cr::rt
