#include "rt/copy.h"

#include "support/check.h"

namespace cr::rt {

sim::Event CopyEngine::issue(const CopyRequest& req,
                             sim::Event precondition) {
  if (req.points.empty()) {
    ++skipped_;
    return precondition;
  }
  ++copies_;
  const FieldSpace& fs = *forest_->region(req.src_region).fields;
  const uint64_t bytes = req.points.size() * fs.virtual_bytes_of(req.fields);
  bytes_ += bytes;

  std::function<void()> on_delivery;
  if (instances_ != nullptr) {
    CR_CHECK(req.src_inst != kNoId && req.dst_inst != kNoId);
    InstanceManager* insts = instances_;
    // Capture by value: the request may be a temporary at the caller.
    CopyRequest r = req;
    on_delivery = [insts, r = std::move(r)] {
      PhysicalInstance& dst = insts->get(r.dst_inst);
      const PhysicalInstance& src = insts->get(r.src_inst);
      if (r.reduction) {
        dst.fold_from(src, r.points, r.fields, r.redop);
      } else {
        dst.copy_from(src, r.points, r.fields);
      }
    };
  }
  return net_->send(req.src_node, req.dst_node, bytes, precondition,
                    std::move(on_delivery));
}

}  // namespace cr::rt
