// Physical instances: the actual storage behind logical regions in the
// distributed-memory implementation of region semantics (paper §3:
// "S and P have distinct storage and the implementation must explicitly
// manage data coherence").
//
// Each instance materializes one logical region's index space on one
// simulated node, one array per field, indexed by the rank of the element
// id within the index space. Data replication (paper §3.1) gives every
// subregion of every partition its own instance; copies move the shared
// elements between them.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "rt/region_tree.h"

namespace cr::rt {

using InstanceId = uint32_t;

// Reduction operators for region and scalar reductions (paper §4.3-4.4).
enum class ReduceOp : uint8_t { kSum, kMin, kMax };

double reduce_identity(ReduceOp op);
double reduce_fold(ReduceOp op, double a, double b);
int64_t reduce_identity_i64(ReduceOp op);
int64_t reduce_fold_i64(ReduceOp op, int64_t a, int64_t b);

class PhysicalInstance {
 public:
  PhysicalInstance(InstanceId id, const RegionForest& forest, RegionId region,
                   uint32_t node);

  InstanceId id() const { return id_; }
  RegionId region() const { return region_; }
  uint32_t node() const { return node_; }
  const IndexSpace& domain() const { return *domain_; }

  // Element accessors addressed by global element id.
  double read_f64(FieldId f, uint64_t point) const;
  void write_f64(FieldId f, uint64_t point, double v);
  int64_t read_i64(FieldId f, uint64_t point) const;
  void write_i64(FieldId f, uint64_t point, int64_t v);
  void reduce_f64(FieldId f, uint64_t point, ReduceOp op, double v);

  // Fill every element of `f` with a value (used to initialize reduction
  // instances to the identity).
  void fill_f64(FieldId f, double v);

  // Pull `points` (must be within both domains) of `fields` from `src`.
  // With `fold` set, applies the reduction instead of overwriting (the
  // paper's reduction copies, §4.3).
  void copy_from(const PhysicalInstance& src,
                 const support::IntervalSet& points,
                 const std::vector<FieldId>& fields);
  void fold_from(const PhysicalInstance& src,
                 const support::IntervalSet& points,
                 const std::vector<FieldId>& fields, ReduceOp op);

  // A gathered payload: one column per requested field, values in
  // point-iteration order. Copies gather on the source side at network
  // injection and scatter on the destination side at delivery — under
  // the multi-worker backend the two ends run on different host
  // threads, so the delivery must not touch the source instance.
  // (Equivalent to reading at delivery time: anti-dependences order any
  // writer of the source after the copy completes.)
  struct StagedPayload {
    std::vector<std::variant<std::vector<double>, std::vector<int64_t>>>
        cols;
  };
  StagedPayload gather(const support::IntervalSet& points,
                       const std::vector<FieldId>& fields) const;
  void scatter(const StagedPayload& staged,
               const support::IntervalSet& points,
               const std::vector<FieldId>& fields);
  void scatter_fold(const StagedPayload& staged,
                    const support::IntervalSet& points,
                    const std::vector<FieldId>& fields, ReduceOp op);

 private:
  using Column = std::variant<std::vector<double>, std::vector<int64_t>>;
  Column& column(FieldId f);
  const Column& column(FieldId f) const;

  InstanceId id_;
  RegionId region_;
  uint32_t node_;
  const IndexSpace* domain_;  // owned by the forest; forest outlives us
  const FieldSpace* fields_;
  mutable std::vector<Column> columns_;  // lazily sized per field
};

// Owns all instances of an execution. Instances are created per
// (logical region, placement) by the executors.
class InstanceManager {
 public:
  explicit InstanceManager(const RegionForest& forest) : forest_(&forest) {}

  InstanceId create(RegionId region, uint32_t node);
  PhysicalInstance& get(InstanceId id);
  const PhysicalInstance& get(InstanceId id) const;
  size_t count() const { return instances_.size(); }

 private:
  const RegionForest* forest_;
  std::vector<std::unique_ptr<PhysicalInstance>> instances_;
};

}  // namespace cr::rt
