// Structured-grid geometry: points and rectangles in up to 3 dimensions,
// with row-major linearization to the uint64 element ids used by
// IntervalSet-based index spaces.
//
// Convention: a grid with extents (nx, ny, nz) linearizes point (x, y, z)
// as (x * ny + y) * nz + z, so the innermost dimension is contiguous and
// slabs along dimension 0 are contiguous id ranges. Rects are half-open:
// [lo, hi) in every dimension.
#pragma once

#include <array>
#include <cstdint>

#include "support/check.h"
#include "support/interval_set.h"

namespace cr::rt {

struct Rect {
  // Unused dimensions have lo = 0, hi = 1.
  std::array<int64_t, 3> lo{0, 0, 0};
  std::array<int64_t, 3> hi{1, 1, 1};

  static Rect d1(int64_t lo_x, int64_t hi_x) {
    return Rect{{lo_x, 0, 0}, {hi_x, 1, 1}};
  }
  static Rect d2(int64_t lo_x, int64_t lo_y, int64_t hi_x, int64_t hi_y) {
    return Rect{{lo_x, lo_y, 0}, {hi_x, hi_y, 1}};
  }
  static Rect d3(int64_t lo_x, int64_t lo_y, int64_t lo_z, int64_t hi_x,
                 int64_t hi_y, int64_t hi_z) {
    return Rect{{lo_x, lo_y, lo_z}, {hi_x, hi_y, hi_z}};
  }

  bool empty() const {
    return lo[0] >= hi[0] || lo[1] >= hi[1] || lo[2] >= hi[2];
  }
  uint64_t volume() const {
    if (empty()) return 0;
    return static_cast<uint64_t>(hi[0] - lo[0]) *
           static_cast<uint64_t>(hi[1] - lo[1]) *
           static_cast<uint64_t>(hi[2] - lo[2]);
  }
  bool overlaps(const Rect& o) const {
    for (int d = 0; d < 3; ++d) {
      if (hi[d] <= o.lo[d] || o.hi[d] <= lo[d]) return false;
    }
    return true;
  }
  bool contains(const Rect& o) const {
    for (int d = 0; d < 3; ++d) {
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    }
    return true;
  }
  Rect intersect(const Rect& o) const {
    Rect out;
    for (int d = 0; d < 3; ++d) {
      out.lo[d] = lo[d] > o.lo[d] ? lo[d] : o.lo[d];
      out.hi[d] = hi[d] < o.hi[d] ? hi[d] : o.hi[d];
    }
    return out;
  }
  Rect bbox_union(const Rect& o) const {
    Rect out;
    for (int d = 0; d < 3; ++d) {
      out.lo[d] = lo[d] < o.lo[d] ? lo[d] : o.lo[d];
      out.hi[d] = hi[d] > o.hi[d] ? hi[d] : o.hi[d];
    }
    return out;
  }
  friend bool operator==(const Rect&, const Rect&) = default;
};

struct GridExtents {
  // Extents of the (dense) root grid; unused dims are 1.
  std::array<uint64_t, 3> n{1, 1, 1};
  int dim = 1;

  static GridExtents d1(uint64_t nx) { return {{nx, 1, 1}, 1}; }
  static GridExtents d2(uint64_t nx, uint64_t ny) { return {{nx, ny, 1}, 2}; }
  static GridExtents d3(uint64_t nx, uint64_t ny, uint64_t nz) {
    return {{nx, ny, nz}, 3};
  }

  uint64_t volume() const { return n[0] * n[1] * n[2]; }

  uint64_t linearize(int64_t x, int64_t y = 0, int64_t z = 0) const {
    CR_DCHECK(x >= 0 && static_cast<uint64_t>(x) < n[0]);
    CR_DCHECK(y >= 0 && static_cast<uint64_t>(y) < n[1]);
    CR_DCHECK(z >= 0 && static_cast<uint64_t>(z) < n[2]);
    return (static_cast<uint64_t>(x) * n[1] + static_cast<uint64_t>(y)) *
               n[2] +
           static_cast<uint64_t>(z);
  }

  void delinearize(uint64_t id, int64_t& x, int64_t& y, int64_t& z) const {
    z = static_cast<int64_t>(id % n[2]);
    id /= n[2];
    y = static_cast<int64_t>(id % n[1]);
    x = static_cast<int64_t>(id / n[1]);
  }

  // The ids covered by a rect, as row segments: one interval per
  // contiguous run along the innermost *used* dimension (y for 2D, z for
  // 3D), so a full-width slab collapses to a single interval.
  support::IntervalSet rect_ids(const Rect& r) const {
    support::IntervalSet out;
    if (r.empty()) return out;
    CR_CHECK(r.lo[0] >= 0 && r.lo[1] >= 0 && r.lo[2] >= 0);
    CR_CHECK(static_cast<uint64_t>(r.hi[0]) <= n[0] &&
             static_cast<uint64_t>(r.hi[1]) <= n[1] &&
             static_cast<uint64_t>(r.hi[2]) <= n[2]);
    switch (dim) {
      case 1:
        out.append(linearize(r.lo[0]),
                   linearize(r.hi[0] - 1) + 1);
        break;
      case 2:
        for (int64_t x = r.lo[0]; x < r.hi[0]; ++x) {
          const uint64_t base = linearize(x, r.lo[1]);
          out.append(base, base + static_cast<uint64_t>(r.hi[1] - r.lo[1]));
        }
        break;
      case 3:
        for (int64_t x = r.lo[0]; x < r.hi[0]; ++x) {
          for (int64_t y = r.lo[1]; y < r.hi[1]; ++y) {
            const uint64_t base = linearize(x, y, r.lo[2]);
            out.append(base,
                       base + static_cast<uint64_t>(r.hi[2] - r.lo[2]));
          }
        }
        break;
      default:
        CR_UNREACHABLE("bad grid dim");
    }
    return out;
  }

  friend bool operator==(const GridExtents&, const GridExtents&) = default;
};

}  // namespace cr::rt
