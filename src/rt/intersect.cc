#include "rt/intersect.h"

#include <algorithm>

#include "support/check.h"

namespace cr::rt {

// ---------------------------------------------------------------------
// IntervalTree: entries sorted by lo; each "node" is the midpoint of a
// subarray, augmented with the subtree's max hi for pruning.
// ---------------------------------------------------------------------

IntervalTree::IntervalTree(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.iv.lo != b.iv.lo ? a.iv.lo < b.iv.lo
                                        : a.iv.hi < b.iv.hi;
            });
  max_hi_.assign(entries_.size(), 0);
  if (!entries_.empty()) build(0, entries_.size());
}

void IntervalTree::build(size_t lo, size_t hi) {
  const size_t mid = lo + (hi - lo) / 2;
  uint64_t m = entries_[mid].iv.hi;
  if (mid > lo) {
    build(lo, mid);
    m = std::max(m, max_hi_[lo + (mid - lo) / 2]);
  }
  if (mid + 1 < hi) {
    build(mid + 1, hi);
    m = std::max(m, max_hi_[mid + 1 + (hi - mid - 1) / 2]);
  }
  max_hi_[mid] = m;
}

void IntervalTree::query(support::Interval q,
                         std::vector<uint64_t>& out) const {
  if (entries_.empty() || q.empty()) return;
  query_rec(0, entries_.size(), q, out);
}

void IntervalTree::query_rec(size_t lo, size_t hi, support::Interval q,
                             std::vector<uint64_t>& out) const {
  const size_t mid = lo + (hi - lo) / 2;
  // Prune: nothing in this subtree ends after q.lo.
  if (max_hi_[mid] <= q.lo) return;
  if (mid > lo) query_rec(lo, mid, q, out);
  const Entry& e = entries_[mid];
  if (e.iv.lo < q.hi && e.iv.hi > q.lo) out.push_back(e.payload);
  // Entries right of mid all have iv.lo >= e.iv.lo; skip if past q.
  if (e.iv.lo < q.hi && mid + 1 < hi) query_rec(mid + 1, hi, q, out);
}

// ---------------------------------------------------------------------
// Bvh
// ---------------------------------------------------------------------

Bvh::Bvh(std::vector<Entry> entries) : entries_(std::move(entries)) {
  if (!entries_.empty()) {
    nodes_.reserve(2 * entries_.size());
    build(0, static_cast<uint32_t>(entries_.size()));
  }
}

uint32_t Bvh::build(uint32_t begin, uint32_t end) {
  const uint32_t idx = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{});
  Rect box = entries_[begin].box;
  for (uint32_t i = begin + 1; i < end; ++i) {
    box = box.bbox_union(entries_[i].box);
  }
  nodes_[idx].box = box;
  if (end - begin <= 4) {
    nodes_[idx].begin = begin;
    nodes_[idx].end = end;
    return idx;
  }
  // Split on the widest axis at the median entry center.
  int axis = 0;
  int64_t widest = -1;
  for (int d = 0; d < 3; ++d) {
    const int64_t w = box.hi[d] - box.lo[d];
    if (w > widest) {
      widest = w;
      axis = d;
    }
  }
  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(entries_.begin() + begin, entries_.begin() + mid,
                   entries_.begin() + end,
                   [axis](const Entry& a, const Entry& b) {
                     return a.box.lo[axis] + a.box.hi[axis] <
                            b.box.lo[axis] + b.box.hi[axis];
                   });
  const uint32_t l = build(begin, mid);
  const uint32_t r = build(mid, end);
  nodes_[idx].left = l;
  nodes_[idx].right = r;
  return idx;
}

void Bvh::query(const Rect& q, std::vector<uint64_t>& out) const {
  if (nodes_.empty() || q.empty()) return;
  // Explicit stack; the tree is shallow (log n).
  std::vector<uint32_t> stack{0};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    if (!n.box.overlaps(q)) continue;
    if (n.left == 0 && n.right == 0) {
      for (uint32_t i = n.begin; i < n.end; ++i) {
        if (entries_[i].box.overlaps(q)) out.push_back(entries_[i].payload);
      }
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
}

// ---------------------------------------------------------------------
// Shallow / complete intersections
// ---------------------------------------------------------------------

namespace {

std::vector<IntersectionPair> shallow_unstructured(const RegionForest& forest,
                                                   PartitionId src,
                                                   PartitionId dst) {
  const PartitionNode& ps = forest.partition(src);
  const PartitionNode& pd = forest.partition(dst);
  // Index the destination's intervals, payload = destination color.
  std::vector<IntervalTree::Entry> entries;
  for (uint64_t j = 0; j < pd.subregions.size(); ++j) {
    for (const support::Interval& iv :
         forest.region(pd.subregions[j]).ispace.points().intervals()) {
      entries.push_back({iv, j});
    }
  }
  IntervalTree tree(std::move(entries));
  std::vector<IntersectionPair> pairs;
  std::vector<uint64_t> hits;
  for (uint64_t i = 0; i < ps.subregions.size(); ++i) {
    hits.clear();
    for (const support::Interval& iv :
         forest.region(ps.subregions[i]).ispace.points().intervals()) {
      tree.query(iv, hits);
    }
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    for (uint64_t j : hits) pairs.push_back({i, j});
  }
  return pairs;
}

std::vector<IntersectionPair> shallow_structured(const RegionForest& forest,
                                                 PartitionId src,
                                                 PartitionId dst) {
  const PartitionNode& ps = forest.partition(src);
  const PartitionNode& pd = forest.partition(dst);
  std::vector<Bvh::Entry> entries;
  for (uint64_t j = 0; j < pd.subregions.size(); ++j) {
    const IndexSpace& is = forest.region(pd.subregions[j]).ispace;
    if (is.empty()) continue;
    entries.push_back({is.bounding_rect(), j});
  }
  Bvh bvh(std::move(entries));
  std::vector<IntersectionPair> pairs;
  std::vector<uint64_t> hits;
  for (uint64_t i = 0; i < ps.subregions.size(); ++i) {
    const IndexSpace& is = forest.region(ps.subregions[i]).ispace;
    if (is.empty()) continue;
    hits.clear();
    bvh.query(is.bounding_rect(), hits);
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    for (uint64_t j : hits) {
      // Bounding boxes are conservative; confirm with the exact sets.
      if (is.points().overlaps(
              forest.region(pd.subregions[j]).ispace.points())) {
        pairs.push_back({i, j});
      }
    }
  }
  return pairs;
}

}  // namespace

std::vector<IntersectionPair> shallow_intersections(const RegionForest& forest,
                                                    PartitionId src,
                                                    PartitionId dst) {
  const RegionId src_parent = forest.partition(src).parent;
  const bool structured =
      forest.region(src_parent).ispace.structured() &&
      forest.region(src_parent).ispace.extents().dim >= 2;
  auto pairs = structured ? shallow_structured(forest, src, dst)
                          : shallow_unstructured(forest, src, dst);
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

support::IntervalSet complete_intersection(const RegionForest& forest,
                                           RegionId a, RegionId b) {
  return forest.region(a).ispace.points().set_intersect(
      forest.region(b).ispace.points());
}

const support::IntervalSet& IntersectionCache::complete(RegionId a,
                                                        RegionId b) {
  const uint64_t key =
      support::pack_pair32(std::min(a, b), std::max(a, b));
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return cache_.emplace(key, complete_intersection(*forest_, a, b))
      .first->second;
}

}  // namespace cr::rt
