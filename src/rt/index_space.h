// Index spaces: named sets of element ids, the domains of logical
// regions (paper §2.1). An index space is an IntervalSet of ids plus
// optional structured-grid metadata (extents of the root grid it was
// carved from), which partitioning operators and the BVH-based shallow
// intersection use to reason geometrically.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "rt/geometry.h"
#include "support/interval_set.h"

namespace cr::rt {

class IndexSpace {
 public:
  IndexSpace() = default;

  // A dense 1-D space [0, n).
  static IndexSpace dense(uint64_t n);
  // A dense structured grid (ids are the row-major linearization).
  static IndexSpace grid(GridExtents extents);
  // An arbitrary unstructured set of ids.
  static IndexSpace unstructured(support::IntervalSet points);
  // A subspace: same structure metadata as parent, subset of its points.
  IndexSpace subspace(support::IntervalSet points) const;

  uint64_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  bool contains(uint64_t p) const { return points_.contains(p); }
  const support::IntervalSet& points() const { return points_; }

  bool structured() const { return extents_.has_value(); }
  const GridExtents& extents() const;

  // Bounding rect in grid coordinates (structured) or in id space mapped
  // to dimension 0 (unstructured). Undefined for empty spaces.
  Rect bounding_rect() const;

  // Position of `point` within this space's ordered point list; the
  // inverse of nth_point. O(log intervals). Used by physical instances
  // to map ids to storage offsets.
  uint64_t rank(uint64_t point) const;
  uint64_t point_at(uint64_t r) const { return points_.nth_point(r); }

 private:
  void finish();  // compute prefix sums + total

  support::IntervalSet points_;
  std::vector<uint64_t> prefix_;  // points before interval i
  uint64_t total_ = 0;
  std::optional<GridExtents> extents_;
};

}  // namespace cr::rt
