#include "rt/collective.h"

#include "sim/simulator.h"
#include "support/check.h"
#include "support/trace.h"

namespace cr::rt {

DynamicCollective::DynamicCollective(sim::Simulator& sim, sim::Network& net,
                                     uint32_t participants, ReduceOp op)
    : sim_(&sim), net_(&net), participants_(participants), op_(op) {
  CR_CHECK(participants > 0);
}

DynamicCollective::Generation& DynamicCollective::gen(uint64_t g) {
  auto [it, inserted] = generations_.try_emplace(g);
  if (inserted) {
    it->second.values.resize(participants_);
    it->second.done = std::make_unique<sim::UserEvent>(*sim_);
  }
  return it->second;
}

void DynamicCollective::contribute(uint64_t generation, uint32_t rank,
                                   sim::Event precondition,
                                   std::function<double()> value) {
  CR_CHECK(rank < participants_);
  Generation& g = gen(generation);
  CR_CHECK_MSG(!g.values[rank], "duplicate contribution");
  g.values[rank] = std::move(value);
  g.arrivals.push_back(precondition);
  maybe_wire(g);
}

void DynamicCollective::maybe_wire(Generation& g) {
  if (g.wired || g.arrivals.size() < participants_) return;
  g.wired = true;
  // Contributions trigger on different nodes' workers: remote merge.
  sim::Event all = sim::Event::merge_remote(*sim_, g.arrivals);
  g.gather_uid = all.uid();
  const sim::Time latency = 2 * net_->tree_latency(participants_);
  // Adaptive-window contract: node-side waiters see the reduced value
  // no earlier than `latency` after the gather completes.
  sim_->note_global_influence_floor(latency);
  Generation* gp = &g;
  ReduceOp op = op_;
  all.subscribe([this, gp, op, latency](sim::Time now) {
    // Fold in rank order: deterministic regardless of arrival order.
    double acc = reduce_identity(op);
    for (const auto& fn : gp->values) acc = reduce_fold(op, acc, fn());
    gp->result = acc;
    if (support::Tracer* t = sim_->tracer()) {
      const support::SpanId span = t->add_span(
          support::kRuntimePid, 1, support::TraceCategory::kSync,
          "allreduce", now, now + latency);
      for (const sim::Event& a : gp->arrivals) t->edge(a.uid(), span);
      t->bind(gp->done->event().uid(), span);
    }
    sim_->schedule_after(latency, [gp] { gp->done->trigger(); });
  });
}

sim::Event DynamicCollective::result_event(uint64_t generation) {
  return gen(generation).done->event();
}

uint64_t DynamicCollective::gather_uid(uint64_t generation) const {
  auto it = generations_.find(generation);
  return it != generations_.end() ? it->second.gather_uid : 0;
}

double DynamicCollective::result(uint64_t generation) const {
  auto it = generations_.find(generation);
  CR_CHECK(it != generations_.end());
  CR_CHECK_MSG(it->second.done->has_triggered(),
               "collective result read before completion");
  return it->second.result;
}

}  // namespace cr::rt
