// Field spaces: the set of named, typed fields a region's elements carry
// (paper §2.1 leaves the element type abstract; Legion's structure
// slicing stores fields separately, which we mirror: one array per field).
//
// `virtual_bytes` decouples the cost model from storage: benches run
// geometrically scaled-down problems, and scaling a field's virtual width
// keeps the communication-to-computation ratio of the paper's problem
// sizes (see EXPERIMENTS.md). Real storage is always the declared type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace cr::rt {

using FieldId = uint32_t;

enum class FieldType : uint8_t { kF64, kI64 };

struct FieldDecl {
  FieldId id = 0;
  FieldType type = FieldType::kF64;
  std::string name;
  // Bytes per element charged by the cost model when this field moves.
  uint32_t virtual_bytes = 8;
};

class FieldSpace {
 public:
  FieldId add_field(std::string name, FieldType type = FieldType::kF64,
                    uint32_t virtual_bytes = 8) {
    const FieldId id = static_cast<FieldId>(fields_.size());
    fields_.push_back(FieldDecl{id, type, std::move(name), virtual_bytes});
    return id;
  }

  const FieldDecl& field(FieldId id) const {
    CR_CHECK(id < fields_.size());
    return fields_[id];
  }
  size_t num_fields() const { return fields_.size(); }
  const std::vector<FieldDecl>& fields() const { return fields_; }

  uint64_t virtual_bytes_of(const std::vector<FieldId>& ids) const {
    uint64_t total = 0;
    for (FieldId id : ids) total += field(id).virtual_bytes;
    return total;
  }

 private:
  std::vector<FieldDecl> fields_;
};

}  // namespace cr::rt
