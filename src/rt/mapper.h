// The mapping interface (paper §4.2): where tasks and shards run.
//
// All tasks — including shard tasks — pass through a Mapper that assigns
// them to processors. The default policy is the paper's typical strategy:
// one shard per node, point tasks distributed round-robin over the node's
// compute cores, with `reserved_cores` held back for the runtime's
// analysis work (Legion dedicates one core per node to its dynamic
// analysis; PENNANT's single-node gap in §5.3 comes from exactly this).
#pragma once

#include <cstdint>

#include "sim/machine.h"

namespace cr::rt {

struct MapperConfig {
  // Cores per node unavailable to application tasks (runtime analysis).
  uint32_t reserved_cores = 1;
};

class Mapper {
 public:
  Mapper(const sim::Machine& machine, MapperConfig config);
  virtual ~Mapper() = default;

  uint32_t nodes() const { return nodes_; }
  uint32_t compute_cores_per_node() const { return compute_cores_; }

  // Node owning color `c` of a `num_colors`-wide index launch: block
  // distribution, matching the shard blocking of paper §3.5.
  virtual uint32_t node_of_color(uint64_t c, uint64_t num_colors) const;

  // Node running shard `s` of `num_shards`.
  virtual uint32_t shard_node(uint32_t s, uint32_t num_shards) const;

  // The `seq`-th compute task issued on `node`: round-robin over the
  // node's compute cores (those not reserved for the runtime).
  virtual sim::ProcId compute_proc(uint32_t node, uint64_t seq) const;

  // Where a control thread (main task or shard) runs: the reserved
  // runtime core when one exists, else core 0.
  virtual sim::ProcId control_proc(uint32_t node) const;

 private:
  uint32_t nodes_;
  uint32_t cores_;
  uint32_t compute_cores_;
  uint32_t reserved_;
};

}  // namespace cr::rt
