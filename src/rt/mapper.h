// The mapping interface (paper §4.2): where tasks, shards and data run.
//
// All placement decisions — shard→node, launch color→node, point
// task→core, control thread→core — pass through a Mapper. Policies are
// pluggable: the MapperRegistry holds named factories ("default",
// "balanced", "adversarial", "random") and ExecConfig::mapper selects
// one per run; the Engine installs it on the Runtime at construction.
//
// Contract (see DESIGN.md "Mapping"):
//  - A mapper is a pure function of its constructor inputs (machine
//    shape, per-node speed factors, MapperOptions) and the per-call
//    arguments. It must not read wall clock, global mutable state, or
//    anything that varies with --workers; placements are queried only
//    during the single-threaded unroll.
//  - node_of_color decides both where a launch's point task executes
//    and where the backing subregion instance lives; per-launch
//    LaunchShape weights let a policy respond to skewed partitions.
//  - shard_node/control_proc place control threads; compute_proc picks
//    the core for the `seq`-th task issued on a node.
//  - Speed factors (sim::MachineConfig::node_speed) are surfaced via
//    node_speed() so cost-aware policies can weight placement by them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace cr::rt {

// Placement-policy selection plus its knobs. Threaded through
// ExecConfig::mapper (the only way to configure placement) and bench
// --mapper=<name> / --mapper-seed=<n>.
struct MapperOptions {
  std::string name = "default";
  // Consumed by seeded policies ("random"); ignored elsewhere.
  uint64_t seed = 0;
  // Cores per node unavailable to application tasks (runtime analysis).
  // Legion dedicates one core per node to its dynamic analysis;
  // PENNANT's single-node gap in §5.3 comes from exactly this.
  uint32_t reserved_cores = 1;
};

// Per-launch geometry handed to node_of_color. `weights` (optional) is
// the per-color work estimate — subregion sizes — with exactly
// `num_colors` entries; null means uniform. The default policy ignores
// weights (placements depend on num_colors alone, the pre-registry
// behavior); cost-aware policies use them to even load under skewed
// partitions.
struct LaunchShape {
  uint64_t num_colors = 0;
  const std::vector<uint64_t>* weights = nullptr;
};

// The blocked distribution shared by the default mapper, the engine's
// copy-ownership rule and passes::shard_block: ceil(colors/parts) per
// part with the remainder on the leading parts. Keeping one definition
// guarantees shard-owned colors are node-local under the default policy
// (paper §3.5).
uint32_t block_owner(uint64_t c, uint64_t colors, uint32_t parts);
struct BlockRange {
  uint64_t begin = 0;
  uint64_t end = 0;
};
BlockRange block_range(uint64_t colors, uint32_t parts, uint32_t part);

class Mapper {
 public:
  // Constructing a Mapper directly yields the default blocked policy;
  // named policies come from MapperRegistry::create.
  Mapper(const sim::Machine& machine, const MapperOptions& options);
  virtual ~Mapper() = default;

  const std::string& name() const { return name_; }
  uint32_t nodes() const { return nodes_; }
  uint32_t compute_cores_per_node() const { return compute_cores_; }
  // Relative speed factor of `node` (1.0 = nominal), copied from the
  // machine at construction so cost-aware policies can consult it.
  double node_speed(uint32_t node) const { return speeds_[node]; }

  // Node owning color `c` of a launch with `shape`: block distribution
  // by default, matching the shard blocking of paper §3.5.
  virtual uint32_t node_of_color(uint64_t c, const LaunchShape& shape) const;
  // Convenience for uniform launches.
  uint32_t node_of_color(uint64_t c, uint64_t num_colors) const {
    return node_of_color(c, LaunchShape{num_colors, nullptr});
  }

  // Node running shard `s` of `num_shards`.
  virtual uint32_t shard_node(uint32_t s, uint32_t num_shards) const;

  // The `seq`-th compute task issued on `node`: round-robin over the
  // node's compute cores (those not reserved for the runtime).
  virtual sim::ProcId compute_proc(uint32_t node, uint64_t seq) const;

  // Where a control thread (main task or shard) runs: the reserved
  // runtime core when one exists, else core 0.
  virtual sim::ProcId control_proc(uint32_t node) const;

 protected:
  std::string name_;
  uint32_t nodes_;
  uint32_t cores_;
  uint32_t compute_cores_;
  uint32_t reserved_;
  std::vector<double> speeds_;
};

// Named placement policies. Built-ins: "default" (blocked, the pre-
// registry behavior bit-for-bit), "balanced" (speed- and weight-aware
// contiguous blocks), "adversarial" (every color on the slowest node),
// "random" (seeded hash placement). register_policy adds user policies.
class MapperRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Mapper>(
      const sim::Machine&, const MapperOptions&)>;

  static MapperRegistry& instance();

  void register_policy(const std::string& name, Factory factory);
  // CHECK-fails on an unknown name (a typo must not silently fall back
  // to a different placement).
  std::unique_ptr<Mapper> create(const sim::Machine& machine,
                                 const MapperOptions& options) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace cr::rt
