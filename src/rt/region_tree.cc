#include "rt/region_tree.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/check.h"
#include "support/metrics.h"

namespace cr::rt {

void RegionForest::export_metrics(support::MetricsRegistry& m) const {
  m.counter("rt.alias.queries").set(counters_.alias_queries);
  m.counter("rt.alias.fast").set(counters_.alias_fast);
  m.counter("rt.alias.cache_hits").set(counters_.alias_hits);
  m.counter("rt.overlap.queries").set(counters_.overlap_queries);
  m.counter("rt.overlap.static").set(counters_.overlap_static);
  m.counter("rt.overlap.cache_hits").set(counters_.overlap_hits);
  m.counter("rt.overlap.exact").set(counters_.overlap_exact);
}

RegionId RegionForest::create_region(IndexSpace ispace,
                                     std::shared_ptr<FieldSpace> fs,
                                     std::string name) {
  const RegionId id = static_cast<RegionId>(regions_.size());
  RegionNode node;
  node.id = id;
  node.ispace = std::move(ispace);
  node.fields = std::move(fs);
  node.root = id;
  node.name = name.empty() ? "R" + std::to_string(id) : std::move(name);
  regions_.push_back(std::move(node));
  return id;
}

PartitionId RegionForest::create_partition(RegionId parent,
                                           std::vector<IndexSpace> subspaces,
                                           bool disjoint, bool complete,
                                           std::string name) {
  CR_CHECK(parent < regions_.size());
  const PartitionId pid = static_cast<PartitionId>(partitions_.size());
  PartitionNode pnode;
  pnode.id = pid;
  pnode.parent = parent;
  pnode.disjoint = disjoint;
  pnode.complete = complete;
  pnode.name = name.empty() ? "P" + std::to_string(pid) : std::move(name);

#ifndef NDEBUG
  // Verify the static disjointness claim and containment in the parent.
  for (size_t i = 0; i < subspaces.size(); ++i) {
    CR_CHECK_MSG(
        regions_[parent].ispace.points().contains_all(subspaces[i].points()),
        "subregion escapes parent region");
    if (disjoint) {
      for (size_t j = i + 1; j < subspaces.size(); ++j) {
        CR_CHECK_MSG(subspaces[i].points().disjoint(subspaces[j].points()),
                     "partition claimed disjoint but subregions overlap");
      }
    }
  }
#endif

  for (uint64_t color = 0; color < subspaces.size(); ++color) {
    const RegionId rid = static_cast<RegionId>(regions_.size());
    RegionNode sub;
    sub.id = rid;
    sub.ispace = std::move(subspaces[color]);
    sub.fields = regions_[parent].fields;
    sub.root = regions_[parent].root;
    sub.parent = pid;
    sub.depth = regions_[parent].depth + 1;
    sub.color = color;
    sub.name = pnode.name + "[" + std::to_string(color) + "]";
    regions_.push_back(std::move(sub));
    pnode.subregions.push_back(rid);
  }
  partitions_.push_back(std::move(pnode));
  regions_[parent].partitions.push_back(pid);
  return pid;
}

const RegionNode& RegionForest::region(RegionId id) const {
  CR_CHECK(id < regions_.size());
  return regions_[id];
}

const PartitionNode& RegionForest::partition(PartitionId id) const {
  CR_CHECK(id < partitions_.size());
  return partitions_[id];
}

RegionId RegionForest::subregion(PartitionId p, uint64_t color) const {
  const PartitionNode& node = partition(p);
  CR_CHECK(color < node.subregions.size());
  return node.subregions[color];
}

std::vector<RegionForest::PathStep> RegionForest::path_to_root(
    RegionId r) const {
  // Collected bottom-up, then reversed so paths compare root-down.
  std::vector<PathStep> path;
  RegionId cur = r;
  while (regions_[cur].parent != kNoId) {
    path.push_back({regions_[cur].parent, regions_[cur].color});
    cur = partitions_[regions_[cur].parent].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

RegionForest::Relation RegionForest::relation_walk(RegionId a,
                                                   RegionId b) const {
  // Lift the deeper region to the shallower's depth; arriving at the
  // other region means ancestor/descendant.
  RegionId x = a, y = b;
  if (regions_[x].depth < regions_[y].depth) std::swap(x, y);
  while (regions_[x].depth > regions_[y].depth) {
    x = partitions_[regions_[x].parent].parent;
  }
  if (x == y) return Relation::kAncestor;
  // Walk up in lockstep until the paths meet (at the LCA region at the
  // latest, the shared tree root). The steps just below the meeting
  // point decide (paper §2.3): the same partition with different colors
  // is disjoint iff the partition is; different partitions of one
  // region prove nothing.
  while (true) {
    const PartitionId px = regions_[x].parent;
    const PartitionId py = regions_[y].parent;
    x = partitions_[px].parent;
    y = partitions_[py].parent;
    if (x == y) {
      if (px != py) return Relation::kDynamic;
      return partitions_[px].disjoint ? Relation::kDisjoint
                                      : Relation::kDynamic;
    }
  }
}

RegionForest::Relation RegionForest::relation(RegionId a, RegionId b,
                                              uint64_t& cache_hits) const {
  const uint64_t key =
      support::pack_pair32(std::min(a, b), std::max(a, b));
  uint8_t& slot = pair_cache_[key];
  if ((slot & 3u) != 0) {
    ++cache_hits;
    return static_cast<Relation>(slot & 3u);
  }
  const Relation r = relation_walk(a, b);
  slot = static_cast<uint8_t>(slot | static_cast<uint8_t>(r));
  return r;
}

bool RegionForest::may_alias(RegionId a, RegionId b) const {
  CR_CHECK(a < regions_.size() && b < regions_.size());
  ++counters_.alias_queries;
  if (a == b) {
    ++counters_.alias_fast;
    return true;
  }
  const RegionNode& na = regions_[a];
  const RegionNode& nb = regions_[b];
  if (na.root != nb.root) {  // separate trees
    ++counters_.alias_fast;
    return false;
  }
  if (na.parent != kNoId && na.parent == nb.parent) {
    // Siblings (colors differ since a != b): disjoint iff the shared
    // partition is — no walk, no cache entry needed.
    ++counters_.alias_fast;
    return !partitions_[na.parent].disjoint;
  }
  return relation(a, b, counters_.alias_hits) != Relation::kDisjoint;
}

bool RegionForest::may_alias_uncached(RegionId a, RegionId b) const {
  CR_CHECK(a < regions_.size() && b < regions_.size());
  if (a == b) return true;
  if (regions_[a].root != regions_[b].root) return false;  // separate trees
  const auto pa = path_to_root(a);
  const auto pb = path_to_root(b);
  const size_t common = std::min(pa.size(), pb.size());
  for (size_t k = 0; k < common; ++k) {
    if (pa[k].partition != pb[k].partition) {
      // Paths diverge into different partitions of the same region:
      // nothing is known about their overlap.
      return true;
    }
    if (pa[k].color != pb[k].color) {
      // Same partition, different colors: disjoint iff the partition is.
      return !partitions_[pa[k].partition].disjoint;
    }
  }
  // One region is an ancestor of the other: they share elements.
  return true;
}

bool RegionForest::overlaps_exact(RegionId a, RegionId b) const {
  CR_CHECK(a < regions_.size() && b < regions_.size());
  ++counters_.overlap_queries;
  const RegionNode& na = regions_[a];
  const RegionNode& nb = regions_[b];
  if (a == b) {
    ++counters_.overlap_static;
    return !na.ispace.empty();
  }
  if (na.root != nb.root) {
    ++counters_.overlap_static;
    return false;
  }
  uint64_t relation_hits = 0;  // folded into overlap_hits only when the
                               // relation alone answers the query
  const Relation r = relation(a, b, relation_hits);
  if (r == Relation::kDisjoint) {
    // The partition's static disjointness claim (debug-verified at
    // creation) proves the index spaces share no elements.
    counters_.overlap_static += relation_hits == 0;
    counters_.overlap_hits += relation_hits;
    return false;
  }
  if (r == Relation::kAncestor) {
    // The descendant's elements are a subset of the ancestor's: they
    // overlap iff the descendant is non-empty.
    counters_.overlap_static += relation_hits == 0;
    counters_.overlap_hits += relation_hits;
    return !(na.depth >= nb.depth ? na : nb).ispace.empty();
  }
  // Genuinely dynamic pair: memoized exact interval test.
  const uint64_t key =
      support::pack_pair32(std::min(a, b), std::max(a, b));
  uint8_t& slot = pair_cache_[key];
  if ((slot & 4u) != 0) {
    ++counters_.overlap_hits;
    return (slot & 8u) != 0;
  }
  ++counters_.overlap_exact;
  const support::IntervalSet& sa = na.ispace.points();
  const support::IntervalSet& sb = nb.ispace.points();
  bool overlap = false;
  if (!sa.empty() && !sb.empty()) {
    // Bounding-interval precheck skips the linear merge for far-apart
    // sets; bounds() is O(1).
    const support::Interval ba = sa.bounds();
    const support::Interval bb = sb.bounds();
    overlap = ba.lo < bb.hi && bb.lo < ba.hi && sa.overlaps(sb);
  }
  slot = static_cast<uint8_t>(slot | 4u | (overlap ? 8u : 0u));
  return overlap;
}

bool RegionForest::overlaps_exact_uncached(RegionId a, RegionId b) const {
  const RegionNode& na = region(a);
  const RegionNode& nb = region(b);
  // Distinct trees are distinct element name spaces: coordinates may
  // coincide numerically but never denote the same data.
  if (na.root != nb.root) return false;
  return na.ispace.points().overlaps(nb.ispace.points());
}

bool RegionForest::partitions_may_alias(PartitionId p, PartitionId q) const {
  const PartitionNode& np = partition(p);
  const PartitionNode& nq = partition(q);
  if (p == q) return !np.disjoint;
  // The partitions' footprints are bounded by their parent regions; if
  // those are provably disjoint, no subregion pair can overlap.
  return may_alias(np.parent, nq.parent);
}

std::string RegionForest::to_string() const {
  std::ostringstream os;
  // Recursive printer over the forest structure.
  std::function<void(RegionId, int)> print_region =
      [&](RegionId r, int depth) {
        const RegionNode& node = regions_[r];
        os << std::string(static_cast<size_t>(depth) * 2, ' ') << node.name
           << " (" << node.ispace.size() << " elements)\n";
        for (PartitionId p : node.partitions) {
          const PartitionNode& pn = partitions_[p];
          os << std::string(static_cast<size_t>(depth + 1) * 2, ' ') << "*"
             << pn.name << " [" << (pn.disjoint ? "disjoint" : "aliased")
             << (pn.complete ? ", complete" : "") << ", "
             << pn.subregions.size() << " colors]\n";
          // Print subregion subtrees only when they carry further
          // structure; flat colors are summarized by the line above.
          for (RegionId sub : pn.subregions) {
            if (!regions_[sub].partitions.empty()) {
              print_region(sub, depth + 2);
            }
          }
        }
      };
  for (const RegionNode& node : regions_) {
    if (node.parent == kNoId) print_region(node.id, 0);
  }
  return os.str();
}

}  // namespace cr::rt
