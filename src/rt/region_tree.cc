#include "rt/region_tree.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/check.h"

namespace cr::rt {

RegionId RegionForest::create_region(IndexSpace ispace,
                                     std::shared_ptr<FieldSpace> fs,
                                     std::string name) {
  const RegionId id = static_cast<RegionId>(regions_.size());
  RegionNode node;
  node.id = id;
  node.ispace = std::move(ispace);
  node.fields = std::move(fs);
  node.root = id;
  node.name = name.empty() ? "R" + std::to_string(id) : std::move(name);
  regions_.push_back(std::move(node));
  return id;
}

PartitionId RegionForest::create_partition(RegionId parent,
                                           std::vector<IndexSpace> subspaces,
                                           bool disjoint, bool complete,
                                           std::string name) {
  CR_CHECK(parent < regions_.size());
  const PartitionId pid = static_cast<PartitionId>(partitions_.size());
  PartitionNode pnode;
  pnode.id = pid;
  pnode.parent = parent;
  pnode.disjoint = disjoint;
  pnode.complete = complete;
  pnode.name = name.empty() ? "P" + std::to_string(pid) : std::move(name);

#ifndef NDEBUG
  // Verify the static disjointness claim and containment in the parent.
  for (size_t i = 0; i < subspaces.size(); ++i) {
    CR_CHECK_MSG(
        regions_[parent].ispace.points().contains_all(subspaces[i].points()),
        "subregion escapes parent region");
    if (disjoint) {
      for (size_t j = i + 1; j < subspaces.size(); ++j) {
        CR_CHECK_MSG(subspaces[i].points().disjoint(subspaces[j].points()),
                     "partition claimed disjoint but subregions overlap");
      }
    }
  }
#endif

  for (uint64_t color = 0; color < subspaces.size(); ++color) {
    const RegionId rid = static_cast<RegionId>(regions_.size());
    RegionNode sub;
    sub.id = rid;
    sub.ispace = std::move(subspaces[color]);
    sub.fields = regions_[parent].fields;
    sub.root = regions_[parent].root;
    sub.parent = pid;
    sub.color = color;
    sub.name = pnode.name + "[" + std::to_string(color) + "]";
    regions_.push_back(std::move(sub));
    pnode.subregions.push_back(rid);
  }
  partitions_.push_back(std::move(pnode));
  regions_[parent].partitions.push_back(pid);
  return pid;
}

const RegionNode& RegionForest::region(RegionId id) const {
  CR_CHECK(id < regions_.size());
  return regions_[id];
}

const PartitionNode& RegionForest::partition(PartitionId id) const {
  CR_CHECK(id < partitions_.size());
  return partitions_[id];
}

RegionId RegionForest::subregion(PartitionId p, uint64_t color) const {
  const PartitionNode& node = partition(p);
  CR_CHECK(color < node.subregions.size());
  return node.subregions[color];
}

std::vector<RegionForest::PathStep> RegionForest::path_to_root(
    RegionId r) const {
  // Collected bottom-up, then reversed so paths compare root-down.
  std::vector<PathStep> path;
  RegionId cur = r;
  while (regions_[cur].parent != kNoId) {
    path.push_back({regions_[cur].parent, regions_[cur].color});
    cur = partitions_[regions_[cur].parent].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool RegionForest::may_alias(RegionId a, RegionId b) const {
  CR_CHECK(a < regions_.size() && b < regions_.size());
  if (a == b) return true;
  if (regions_[a].root != regions_[b].root) return false;  // separate trees
  const auto pa = path_to_root(a);
  const auto pb = path_to_root(b);
  const size_t common = std::min(pa.size(), pb.size());
  for (size_t k = 0; k < common; ++k) {
    if (pa[k].partition != pb[k].partition) {
      // Paths diverge into different partitions of the same region:
      // nothing is known about their overlap.
      return true;
    }
    if (pa[k].color != pb[k].color) {
      // Same partition, different colors: disjoint iff the partition is.
      return !partitions_[pa[k].partition].disjoint;
    }
  }
  // One region is an ancestor of the other: they share elements.
  return true;
}

bool RegionForest::overlaps_exact(RegionId a, RegionId b) const {
  return region(a).ispace.points().overlaps(region(b).ispace.points());
}

bool RegionForest::partitions_may_alias(PartitionId p, PartitionId q) const {
  const PartitionNode& np = partition(p);
  const PartitionNode& nq = partition(q);
  if (p == q) return !np.disjoint;
  // The partitions' footprints are bounded by their parent regions; if
  // those are provably disjoint, no subregion pair can overlap.
  return may_alias(np.parent, nq.parent);
}

std::string RegionForest::to_string() const {
  std::ostringstream os;
  // Recursive printer over the forest structure.
  std::function<void(RegionId, int)> print_region =
      [&](RegionId r, int depth) {
        const RegionNode& node = regions_[r];
        os << std::string(static_cast<size_t>(depth) * 2, ' ') << node.name
           << " (" << node.ispace.size() << " elements)\n";
        for (PartitionId p : node.partitions) {
          const PartitionNode& pn = partitions_[p];
          os << std::string(static_cast<size_t>(depth + 1) * 2, ' ') << "*"
             << pn.name << " [" << (pn.disjoint ? "disjoint" : "aliased")
             << (pn.complete ? ", complete" : "") << ", "
             << pn.subregions.size() << " colors]\n";
          // Print subregion subtrees only when they carry further
          // structure; flat colors are summarized by the line above.
          for (RegionId sub : pn.subregions) {
            if (!regions_[sub].partitions.empty()) {
              print_region(sub, depth + 2);
            }
          }
        }
      };
  for (const RegionNode& node : regions_) {
    if (node.parent == kNoId) print_region(node.id, 0);
  }
  return os.str();
}

}  // namespace cr::rt
