// A uniform pass interface for the control replication pipeline.
//
// Each stage of paper §3 is a `Pass` registered with a `PassManager`;
// the manager owns the ordering, per-pass enable/disable (the ablation
// toggles A1/A4 are plain registry switches), and a uniform stats map
// keyed "<pass>.<counter>" from which the classic PipelineReport is
// derived. `control_replicate` / `prepare_distributed` are thin
// configurations of the same registry (the latter simply leaves out
// sync insertion and shard creation).
//
// An observer hook fires after every pass that runs, with the program
// in its post-pass state — this is what the golden IR-snapshot tests
// and `--trace`-style dumps build on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/program.h"
#include "ir/static_region_tree.h"
#include "passes/common.h"
#include "passes/pipeline.h"

namespace cr::passes {

// Shared state threaded through the passes of one pipeline run. Stats
// accumulate across fragments; the fragment-scoped pieces (the alias
// oracle and the pending splices) are reset by the manager between
// fragments.
class PassContext {
 public:
  PassContext(const ir::Program& program, const PipelineOptions& options,
              bool to_spmd)
      : program_(&program), options_(options), to_spmd_(to_spmd) {}

  const PipelineOptions& options() const { return options_; }
  bool to_spmd() const { return to_spmd_; }

  // The fragment currently being transformed. Passes update `end` as
  // they insert or remove statements inside it.
  Fragment& fragment() { return fragment_; }

  // Alias oracle for the current fragment, built on first use and
  // honoring options().hierarchical (ablation A3: flat aliasing).
  const ir::StaticRegionTree& oracle();

  // Statements to splice around the fragment after every pass has run:
  // init and pre go in front (in that order), finalize goes after.
  std::vector<ir::Stmt>& init() { return init_; }
  std::vector<ir::Stmt>& pre() { return pre_; }
  std::vector<ir::Stmt>& finalize() { return finalize_; }

  // Uniform per-pass counters, keyed "<pass>.<counter>".
  void add_stat(const std::string& key, uint64_t delta) {
    stats_[key] += delta;
  }
  uint64_t stat(const std::string& key) const {
    auto it = stats_.find(key);
    return it == stats_.end() ? 0 : it->second;
  }
  const std::map<std::string, uint64_t>& stats() const { return stats_; }

 private:
  friend class PassManager;

  void begin_fragment(const Fragment& fragment) {
    fragment_ = fragment;
    oracle_.reset();
    init_.clear();
    pre_.clear();
    finalize_.clear();
  }

  const ir::Program* program_;
  PipelineOptions options_;
  bool to_spmd_;
  Fragment fragment_;
  std::optional<ir::StaticRegionTree> oracle_;
  std::vector<ir::Stmt> init_;
  std::vector<ir::Stmt> pre_;
  std::vector<ir::Stmt> finalize_;
  std::map<std::string, uint64_t> stats_;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual void run(ir::Program& program, PassContext& ctx) = 0;
};

class PassManager {
 public:
  // Fires after each pass that ran, with the program in its post-pass
  // state (the fragment splices of run_fragment happen afterwards).
  using Observer =
      std::function<void(const Pass&, const ir::Program&, PassContext&)>;

  // Appends `pass` to the pipeline, enabled.
  Pass& add(std::unique_ptr<Pass> pass);

  // Toggles a registered pass; returns false if no pass has that name.
  bool enable(std::string_view name, bool on);
  bool enabled(std::string_view name) const;

  // Registered pass names in execution order (including disabled ones).
  std::vector<std::string_view> pass_names() const;

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  // Runs every enabled pass in registration order over `fragment`, then
  // splices ctx.init()/ctx.pre() in front of the fragment and
  // ctx.finalize() after it (or after the shard launch that replaced
  // it).
  void run_fragment(ir::Program& program, Fragment fragment, PassContext& ctx);

 private:
  struct Entry {
    std::unique_ptr<Pass> pass;
    bool enabled = true;
  };
  std::vector<Entry> entries_;
  Observer observer_;
};

// The standard pipeline in paper §3 order:
//
//   projection-normalize -> data-replication -> region-reduction ->
//   copy-placement [A4] -> intersection-opt [A1] -> scalar-reduction
//   [-> sync-insertion -> shard-creation when to_spmd]
//
// Ablations A4/A1 arrive pre-toggled from `options`; A2 (barriers) and
// A3 (flat aliasing) are behavior switches inside sync-insertion and
// the alias oracle, read from PassContext::options().
PassManager make_pipeline(const PipelineOptions& options, bool to_spmd);

// Folds the accumulated "<pass>.<counter>" stats into the classic
// PipelineReport (applied/failure are the caller's to fill in).
PipelineReport report_from_stats(const PassContext& ctx);

}  // namespace cr::passes
