// Copy placement optimization (paper §3.2): variants of partial
// redundancy elimination and loop-invariant code motion applied at
// partition granularity.
//
// Data replication is deliberately naive: it re-synchronizes every
// aliased reader after every write. Two standard cleanups recover the
// optimal placement:
//   - dead/redundant copy elimination: a copy into Q is dead (per field)
//     if Q's field is overwritten again before any read, considering the
//     enclosing loop's back edge;
//   - loop-invariant code motion: a copy whose source fields are never
//     written inside the enclosing loop (and whose destination is not
//     otherwise touched in it) moves to the loop preheader.
//
// Both work only because statements operate on whole partitions — the
// problem formulation the paper credits for making textbook compiler
// techniques applicable.
#pragma once

#include "ir/program.h"
#include "passes/common.h"

namespace cr::passes {

struct CopyPlacementResult {
  size_t removed = 0;  // dead copies (or dead fields) eliminated
  size_t hoisted = 0;  // copies moved out of loops
};

CopyPlacementResult copy_placement(ir::Program& program, Fragment& fragment);

}  // namespace cr::passes
