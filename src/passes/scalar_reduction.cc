#include "passes/scalar_reduction.h"

namespace cr::passes {

namespace {

class ScalarLowering {
 public:
  explicit ScalarLowering(ir::Program& program) : program_(program) {}
  ScalarReductionResult result;

  void process(std::vector<ir::Stmt>& body) {
    for (size_t i = 0; i < body.size(); ++i) {
      ir::Stmt& s = body[i];
      if (!s.body.empty()) process(s.body);
      if (s.kind != ir::StmtKind::kIndexLaunch || !s.scalar_red) continue;
      // Shards accumulate locally; the collective folds shard values in
      // rank order and broadcasts the result into every shard's
      // replicated scalar environment.
      ir::Stmt coll;
      coll.kind = ir::StmtKind::kCollective;
      coll.coll_scalar = s.scalar_red->target;
      coll.coll_op = s.scalar_red->op;
      coll.sync_id = program_.num_sync_ops++;
      coll.prov = s.prov.derived("scalar-reduction");
      body.insert(body.begin() + static_cast<long>(i) + 1, std::move(coll));
      ++i;
      ++result.collectives;
    }
  }

  void check_safety(const std::vector<ir::Stmt>& body) {
    for (const ir::Stmt& s : body) {
      check_safety(s.body);
      if (s.kind == ir::StmtKind::kScalarOp) {
        // A scalar op is replicated verbatim on every shard; it is safe
        // exactly when it is a pure function of replicated scalars,
        // which the statement form guarantees. Nothing to flag.
        continue;
      }
      if (s.kind == ir::StmtKind::kIndexLaunch && s.scalar_red) {
        // The reduction target must not also be a plain scalar argument
        // of the same launch (the point tasks would observe a value that
        // differs per shard mid-reduction).
        for (ir::ScalarId a : s.scalar_args) {
          if (a == s.scalar_red->target) {
            result.violations.push_back(
                "launch " + program_.task(s.task).name +
                " reads its own scalar reduction target");
          }
        }
      }
    }
  }

 private:
  ir::Program& program_;
};

}  // namespace

ScalarReductionResult scalar_reduction(ir::Program& program,
                                       Fragment& fragment) {
  ScalarLowering lowering(program);
  std::vector<ir::Stmt> view(
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.begin)),
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.end)));
  lowering.check_safety(view);
  lowering.process(view);
  program.body.erase(program.body.begin() + static_cast<long>(fragment.begin),
                     program.body.begin() + static_cast<long>(fragment.end));
  program.body.insert(program.body.begin() + static_cast<long>(fragment.begin),
                      std::make_move_iterator(view.begin()),
                      std::make_move_iterator(view.end()));
  fragment.end = fragment.begin + view.size();
  return lowering.result;
}

}  // namespace cr::passes
