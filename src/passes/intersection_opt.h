// Copy intersection optimization (paper §3.3, Figure 4b).
//
// Data replication emits copies between whole partitions — conceptually
// all |I|² subregion pairs. Only intersecting pairs move data, and for
// scalable codes there are O(1) such pairs per subregion. This pass:
//   - allocates one intersection table per distinct (src, dst) partition
//     pair appearing in fragment copies;
//   - emits kIntersect statements computing those tables (shallow pass
//     via interval tree/BVH, then complete per-pair element sets) hoisted
//     in front of the fragment — the "lifted to the beginning of program
//     execution" placement the paper reports;
//   - tags each copy with its table so executors iterate only the
//     non-empty pairs.
#pragma once

#include <vector>

#include "ir/program.h"
#include "passes/common.h"

namespace cr::passes {

struct IntersectionOptResult {
  // kIntersect statements to place before the fragment.
  std::vector<ir::Stmt> tables;
  size_t copies_tagged = 0;
};

IntersectionOptResult intersection_opt(ir::Program& program,
                                       const Fragment& fragment);

}  // namespace cr::passes
