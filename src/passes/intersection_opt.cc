#include "passes/intersection_opt.h"

#include <unordered_map>

#include "support/hash.h"

namespace cr::passes {

namespace {

class IntersectionTagger {
 public:
  explicit IntersectionTagger(ir::Program& program) : program_(program) {}

  IntersectionOptResult run(const Fragment& fragment) {
    for (size_t i = fragment.begin; i < fragment.end; ++i) {
      tag(program_.body[i]);
    }
    return std::move(result_);
  }

 private:
  void tag(ir::Stmt& s) {
    for (ir::Stmt& c : s.body) tag(c);
    if (s.kind != ir::StmtKind::kCopy) return;
    if (s.copy_src == rt::kNoId || s.copy_dst == rt::kNoId) return;
    const auto key = std::make_pair(s.copy_src, s.copy_dst);
    auto [it, inserted] = tables_.try_emplace(
        key, static_cast<ir::IntersectId>(program_.num_intersects));
    if (inserted) {
      ++program_.num_intersects;
      ir::Stmt t;
      t.kind = ir::StmtKind::kIntersect;
      t.isect_id = it->second;
      t.isect_src = s.copy_src;
      t.isect_dst = s.copy_dst;
      // The table exists because of the first copy needing it.
      t.prov = s.prov.derived("intersection-opt");
      result_.tables.push_back(std::move(t));
    }
    s.isect = it->second;
    if (s.prov.valid()) s.prov.passes.push_back("intersection-opt");
    ++result_.copies_tagged;
  }

  ir::Program& program_;
  // On the per-fragment compile path: O(1) lookups, keyed by the copy's
  // (src, dst) partition pair. Intersect ids are allocated in first-seen
  // order, so hashing does not perturb the emitted table order.
  std::unordered_map<std::pair<rt::PartitionId, rt::PartitionId>,
                     ir::IntersectId, support::PairHash>
      tables_;
  IntersectionOptResult result_;
};

}  // namespace

IntersectionOptResult intersection_opt(ir::Program& program,
                                       const Fragment& fragment) {
  IntersectionTagger tagger(program);
  return tagger.run(fragment);
}

}  // namespace cr::passes
