// Selecting the statements control replication applies to (paper §2.2).
//
// CR applies to loops of task calls with no loop-carried dependencies
// except reductions; arbitrary control flow may surround the fragment.
// The optimization is applied automatically to the largest contiguous
// range of top-level statements that qualifies.
#pragma once

#include <optional>
#include <string>

#include "ir/program.h"
#include "passes/common.h"

namespace cr::passes {

// Why a statement cannot be control-replicated (for diagnostics).
struct Rejection {
  std::string reason;
};

// Is this statement (recursively) CR-able?
bool statement_replicable(const ir::Program& program, const ir::Stmt& stmt,
                          std::string* why = nullptr);

// The largest qualifying contiguous range of program.body, preferring
// ranges that contain time loops. nullopt (with `why`) when nothing
// qualifies.
std::optional<Fragment> find_fragment(const ir::Program& program,
                                      std::string* why = nullptr);

// All maximal qualifying ranges, in program order. Control replication
// is a local transformation (paper §1: "it need not be applied only at
// the top level, and can be applied independently to different parts of
// a program"); the pipeline replicates every fragment that contains at
// least one index launch.
std::vector<Fragment> find_fragments(const ir::Program& program,
                                     std::string* why = nullptr);

}  // namespace cr::passes
