// Synchronization insertion (paper §3.4, Figure 4c).
//
// Copies between shards need explicit ordering: a barrier before each
// copy group preserves write-after-read (the copy must not overwrite a
// destination a consumer is still reading), and a barrier after preserves
// read-after-write (consumers must not start before the copy lands).
//
// The optimized form replaces barriers with point-to-point pre/post-
// conditions on exactly the tasks identified by the non-empty
// intersections — events attached to tasks and copies that never block a
// control thread. The executor derives the precise producer/consumer
// pairs at runtime from the intersection tables; this pass only selects
// the mechanism per copy.
#pragma once

#include "ir/program.h"
#include "passes/common.h"

namespace cr::passes {

struct SyncInsertionResult {
  size_t p2p_copies = 0;
  size_t barriers = 0;
};

// `p2p` selects point-to-point synchronization; otherwise barrier pairs
// are inserted around each run of copies (the naive Figure 4c form).
SyncInsertionResult sync_insertion(ir::Program& program, Fragment& fragment,
                                   bool p2p);

}  // namespace cr::passes
