#include "passes/pass_manager.h"

#include "passes/copy_placement.h"
#include "passes/data_replication.h"
#include "passes/hierarchical.h"
#include "passes/intersection_opt.h"
#include "passes/projection_normalize.h"
#include "passes/region_reduction.h"
#include "passes/scalar_reduction.h"
#include "passes/shard_creation.h"
#include "passes/sync_insertion.h"
#include "support/check.h"
#include "support/metrics.h"

namespace cr::passes {

namespace {

// Recursive statement count of a body range (each statement counts 1
// plus its nested body), for the per-pass IR size deltas.
size_t count_stmts(const std::vector<ir::Stmt>& body, size_t begin,
                   size_t end) {
  size_t n = 0;
  for (size_t i = begin; i < end && i < body.size(); ++i) {
    n += 1 + count_stmts(body[i].body, 0, body[i].body.size());
  }
  return n;
}

}  // namespace

const ir::StaticRegionTree& PassContext::oracle() {
  if (!oracle_) {
    oracle_ = make_alias_oracle(*program_, options_.hierarchical);
  }
  return *oracle_;
}

Pass& PassManager::add(std::unique_ptr<Pass> pass) {
  entries_.push_back({std::move(pass), /*enabled=*/true});
  return *entries_.back().pass;
}

bool PassManager::enable(std::string_view name, bool on) {
  for (Entry& e : entries_) {
    if (e.pass->name() == name) {
      e.enabled = on;
      return true;
    }
  }
  return false;
}

bool PassManager::enabled(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.pass->name() == name) return e.enabled;
  }
  return false;
}

std::vector<std::string_view> PassManager::pass_names() const {
  std::vector<std::string_view> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.pass->name());
  return names;
}

void PassManager::run_fragment(ir::Program& program, Fragment fragment,
                               PassContext& ctx) {
  ctx.begin_fragment(fragment);
  ctx.add_stat("fragment.statements", fragment.end - fragment.begin);

  support::MetricsRegistry* metrics = ctx.options().metrics;
  for (Entry& e : entries_) {
    if (!e.enabled) continue;
    // IR size delta per pass (recursive statement count over the
    // fragment), recorded only when a registry is attached: the count
    // walk is pure observation but not free.
    if (metrics != nullptr) {
      const Fragment& f = ctx.fragment();
      metrics
          ->counter(std::string("passes.") + e.pass->name() + ".stmts_in")
          .add(count_stmts(program.body, f.begin, f.end));
    }
    e.pass->run(program, ctx);
    if (metrics != nullptr) {
      const Fragment& f = ctx.fragment();
      metrics
          ->counter(std::string("passes.") + e.pass->name() + ".stmts_out")
          .add(count_stmts(program.body, f.begin, f.end));
    }
    if (observer_) observer_(*e.pass, program, ctx);
  }

  // Splice initialization / intersections before and finalization after
  // the fragment (or the shard launch that replaced it).
  auto at = [&](size_t idx) {
    return program.body.begin() + static_cast<long>(idx);
  };
  const Fragment& f = ctx.fragment();
  program.body.insert(at(f.end),
                      std::make_move_iterator(ctx.finalize().begin()),
                      std::make_move_iterator(ctx.finalize().end()));
  program.body.insert(at(f.begin), std::make_move_iterator(ctx.pre().begin()),
                      std::make_move_iterator(ctx.pre().end()));
  program.body.insert(at(f.begin), std::make_move_iterator(ctx.init().begin()),
                      std::make_move_iterator(ctx.init().end()));
}

namespace {

// §2.2: normalize p[f(i)] arguments to identity projections.
class ProjectionNormalizePass : public Pass {
 public:
  const char* name() const override { return "projection-normalize"; }
  void run(ir::Program& program, PassContext& ctx) override {
    ctx.add_stat("projection-normalize.normalized",
                 projection_normalize(program, ctx.fragment()));
  }
};

// §3.1: per-partition storage + coherence copies.
class DataReplicationPass : public Pass {
 public:
  const char* name() const override { return "data-replication"; }
  void run(ir::Program& program, PassContext& ctx) override {
    DataReplicationResult repl =
        data_replication(program, ctx.fragment(), ctx.oracle());
    ctx.add_stat("data-replication.init_copies", repl.init.size());
    ctx.add_stat("data-replication.inner_copies", repl.inner_copies);
    ctx.add_stat("data-replication.finalize_copies", repl.finalize.size());
    ctx.init() = std::move(repl.init);
    ctx.finalize() = std::move(repl.finalize);
  }
};

// §4.3: reduction instances and reduction copies.
class RegionReductionPass : public Pass {
 public:
  const char* name() const override { return "region-reduction"; }
  void run(ir::Program& program, PassContext& ctx) override {
    ctx.add_stat("region-reduction.rewritten",
                 region_reduction(program, ctx.fragment(), ctx.oracle()));
  }
};

// §3.2: PRE + LICM on the partition-granularity copies (ablation A4).
class CopyPlacementPass : public Pass {
 public:
  const char* name() const override { return "copy-placement"; }
  void run(ir::Program& program, PassContext& ctx) override {
    CopyPlacementResult placed = copy_placement(program, ctx.fragment());
    ctx.add_stat("copy-placement.removed", placed.removed);
    ctx.add_stat("copy-placement.hoisted", placed.hoisted);
  }
};

// §3.3: intersection tables, hoisted in front of the fragment
// (loop-invariant, computed once) — ablation A1.
class IntersectionOptPass : public Pass {
 public:
  const char* name() const override { return "intersection-opt"; }
  void run(ir::Program& program, PassContext& ctx) override {
    IntersectionOptResult isect = intersection_opt(program, ctx.fragment());
    ctx.add_stat("intersection-opt.tables", isect.tables.size());
    ctx.add_stat("intersection-opt.copies_tagged", isect.copies_tagged);
    ctx.pre() = std::move(isect.tables);
  }
};

// §4.4: scalar reductions via dynamic collectives.
class ScalarReductionPass : public Pass {
 public:
  const char* name() const override { return "scalar-reduction"; }
  void run(ir::Program& program, PassContext& ctx) override {
    ScalarReductionResult scalars = scalar_reduction(program, ctx.fragment());
    ctx.add_stat("scalar-reduction.collectives", scalars.collectives);
    CR_CHECK_MSG(scalars.violations.empty(),
                 "scalar replication-safety violation");
  }
};

// §3.4: synchronization (ablation A2 switches p2p copies to barriers).
class SyncInsertionPass : public Pass {
 public:
  const char* name() const override { return "sync-insertion"; }
  void run(ir::Program& program, PassContext& ctx) override {
    SyncInsertionResult sync =
        sync_insertion(program, ctx.fragment(), ctx.options().p2p_sync);
    ctx.add_stat("sync-insertion.p2p_copies", sync.p2p_copies);
    ctx.add_stat("sync-insertion.barriers", sync.barriers);
  }
};

// §3.5: extract the shard task.
class ShardCreationPass : public Pass {
 public:
  const char* name() const override { return "shard-creation"; }
  void run(ir::Program& program, PassContext& ctx) override {
    shard_creation(program, ctx.fragment(), ctx.options().num_shards);
  }
};

}  // namespace

PassManager make_pipeline(const PipelineOptions& options, bool to_spmd) {
  PassManager pm;
  pm.add(std::make_unique<ProjectionNormalizePass>());
  pm.add(std::make_unique<DataReplicationPass>());
  pm.add(std::make_unique<RegionReductionPass>());
  pm.add(std::make_unique<CopyPlacementPass>());
  pm.add(std::make_unique<IntersectionOptPass>());
  pm.add(std::make_unique<ScalarReductionPass>());
  if (to_spmd) {
    pm.add(std::make_unique<SyncInsertionPass>());
    pm.add(std::make_unique<ShardCreationPass>());
  }
  pm.enable("copy-placement", options.copy_placement);    // A4
  pm.enable("intersection-opt", options.intersection_opt);  // A1
  return pm;
}

PipelineReport report_from_stats(const PassContext& ctx) {
  PipelineReport report;
  report.fragment_statements = ctx.stat("fragment.statements");
  report.projections_normalized = ctx.stat("projection-normalize.normalized");
  report.init_copies = ctx.stat("data-replication.init_copies");
  report.inner_copies = ctx.stat("data-replication.inner_copies");
  report.finalize_copies = ctx.stat("data-replication.finalize_copies");
  report.reductions_rewritten = ctx.stat("region-reduction.rewritten");
  report.copies_removed = ctx.stat("copy-placement.removed");
  report.copies_hoisted = ctx.stat("copy-placement.hoisted");
  report.intersection_tables = ctx.stat("intersection-opt.tables");
  report.collectives = ctx.stat("scalar-reduction.collectives");
  report.p2p_copies = ctx.stat("sync-insertion.p2p_copies");
  report.barriers = ctx.stat("sync-insertion.barriers");
  report.stats = ctx.stats();
  return report;
}

}  // namespace cr::passes
