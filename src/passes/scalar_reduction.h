// Scalar reductions (paper §4.4).
//
// Scalars are replicated across shards; assignments are restricted so
// control flow behaves identically everywhere. Reductions to scalars
// inside inner loops (e.g. computing the next dt) are supported by
// accumulating into shard-local values and combining them with a dynamic
// collective whose result is broadcast back to every shard. This pass
// inserts the kCollective statement after each launch carrying a scalar
// reduction, and checks the replication-safety of all other scalar
// writes.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"
#include "passes/common.h"

namespace cr::passes {

struct ScalarReductionResult {
  size_t collectives = 0;
  std::vector<std::string> violations;  // replication-safety problems
};

ScalarReductionResult scalar_reduction(ir::Program& program,
                                       Fragment& fragment);

}  // namespace cr::passes
