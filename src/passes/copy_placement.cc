#include "passes/copy_placement.h"

#include <algorithm>

#include "support/check.h"

namespace cr::passes {

namespace {

bool copy_has_field(const ir::Stmt& s, rt::FieldId f) {
  return std::find(s.copy_fields.begin(), s.copy_fields.end(), f) !=
         s.copy_fields.end();
}

bool reads_field(const AccessSummary& sum, rt::PartitionId p, rt::FieldId f) {
  auto it = sum.reads.find(p);
  return it != sum.reads.end() && it->second.count(f) > 0;
}

bool writes_field(const AccessSummary& sum, rt::PartitionId p,
                  rt::FieldId f) {
  auto it = sum.writes.find(p);
  return it != sum.writes.end() && it->second.count(f) > 0;
}

class Placement {
 public:
  explicit Placement(ir::Program& program) : program_(program) {}

  CopyPlacementResult result;

  // Process one body; `is_loop` enables the back-edge wraparound in the
  // redundancy scan.
  void process(std::vector<ir::Stmt>& body, bool is_loop) {
    // Children first: hoisting out of an inner loop can expose
    // redundancy at this level.
    for (size_t i = 0; i < body.size(); ++i) {
      if (body[i].kind == ir::StmtKind::kForTime) {
        process(body[i].body, /*is_loop=*/true);
        hoist_invariant(body, i);
      } else if (body[i].kind == ir::StmtKind::kShardBody) {
        process(body[i].body, /*is_loop=*/false);
      }
    }
    eliminate_dead(body, is_loop);
  }

 private:
  // --- loop-invariant code motion -----------------------------------

  void hoist_invariant(std::vector<ir::Stmt>& parent, size_t& loop_idx) {
    ir::Stmt& loop = parent[loop_idx];
    for (size_t c = 0; c < loop.body.size();) {
      if (!hoistable(loop.body, c)) {
        ++c;
        continue;
      }
      ir::Stmt copy = std::move(loop.body[c]);
      loop.body.erase(loop.body.begin() + static_cast<long>(c));
      if (copy.prov.valid()) copy.prov.passes.push_back("copy-placement");
      parent.insert(parent.begin() + static_cast<long>(loop_idx),
                    std::move(copy));
      ++loop_idx;  // the loop moved one slot right
      ++result.hoisted;
    }
  }

  bool hoistable(const std::vector<ir::Stmt>& body, size_t c) const {
    const ir::Stmt& copy = body[c];
    if (copy.kind != ir::StmtKind::kCopy || copy.copy_reduction) return false;
    if (copy.copy_src == rt::kNoId || copy.copy_dst == rt::kNoId) {
      return false;  // root-endpoint copies stay where the pipeline put them
    }
    for (size_t j = 0; j < body.size(); ++j) {
      if (j == c) continue;
      AccessSummary sum = summarize(body[j]);
      for (rt::FieldId f : copy.copy_fields) {
        // Source must be loop-invariant; destination must have no other
        // writer in the loop (another writer interleaving with the copy
        // would observe different intermediate states after hoisting).
        if (writes_field(sum, copy.copy_src, f)) return false;
        if (writes_field(sum, copy.copy_dst, f)) return false;
      }
    }
    return true;
  }

  // --- dead / redundant copy elimination ----------------------------

  void eliminate_dead(std::vector<ir::Stmt>& body, bool is_loop) {
    // Per-statement summaries at this nesting level (nested loops are
    // conservative compound reads/writes).
    std::vector<AccessSummary> sums;
    sums.reserve(body.size());
    for (const ir::Stmt& s : body) sums.push_back(summarize(s));

    for (size_t k = 0; k < body.size();) {
      ir::Stmt& c = body[k];
      if (c.kind != ir::StmtKind::kCopy || c.copy_reduction ||
          c.copy_src == rt::kNoId || c.copy_dst == rt::kNoId) {
        ++k;
        continue;
      }
      std::vector<rt::FieldId> live;
      for (rt::FieldId f : c.copy_fields) {
        if (field_live(body, sums, k, f, is_loop)) live.push_back(f);
      }
      if (live.size() == c.copy_fields.size()) {
        ++k;
        continue;
      }
      result.removed += c.copy_fields.size() - live.size();
      if (live.empty()) {
        body.erase(body.begin() + static_cast<long>(k));
        sums.erase(sums.begin() + static_cast<long>(k));
      } else {
        c.copy_fields = std::move(live);
        ++k;
      }
    }
  }

  // Is field f of the plain copy at index k observable before an
  // identical copy or a full overwrite kills it?
  bool field_live(const std::vector<ir::Stmt>& body,
                  const std::vector<AccessSummary>& sums, size_t k,
                  rt::FieldId f, bool is_loop) const {
    const ir::Stmt& c = body[k];
    const size_t n = body.size();
    const size_t steps = is_loop ? n - 1 : n - k - 1;
    for (size_t d = 1; d <= steps; ++d) {
      const size_t j = (k + d) % n;
      if (!is_loop && j <= k) break;
      const ir::Stmt& s = body[j];
      // Reads win over kills within one statement (read-modify-write).
      if (reads_field(sums[j], c.copy_dst, f)) return true;
      // An identical copy rewrites exactly the same element set.
      if (s.kind == ir::StmtKind::kCopy && !s.copy_reduction &&
          s.copy_src == c.copy_src && s.copy_dst == c.copy_dst &&
          copy_has_field(s, f)) {
        return false;
      }
      // A task-side write to the whole partition overwrites every
      // subregion. (Copies from other sources only overwrite their own
      // intersection — not a kill.)
      if (s.kind == ir::StmtKind::kIndexLaunch &&
          writes_field(sums[j], c.copy_dst, f)) {
        return false;
      }
    }
    return true;  // escapes the body (finalization, post-loop reads)
  }

  ir::Program& program_;
};

}  // namespace

CopyPlacementResult copy_placement(ir::Program& program, Fragment& fragment) {
  Placement pl(program);
  // Treat the top-level fragment as a straight-line body: build a view,
  // process, and write back. Statements can move across the fragment
  // boundary only via hoisting out of top-level loops, which inserts
  // *inside* the range, so the view round-trips safely.
  std::vector<ir::Stmt> view(
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.begin)),
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.end)));
  pl.process(view, /*is_loop=*/false);
  program.body.erase(program.body.begin() + static_cast<long>(fragment.begin),
                     program.body.begin() + static_cast<long>(fragment.end));
  program.body.insert(program.body.begin() + static_cast<long>(fragment.begin),
                      std::make_move_iterator(view.begin()),
                      std::make_move_iterator(view.end()));
  fragment.end = fragment.begin + view.size();
  return pl.result;
}

}  // namespace cr::passes
