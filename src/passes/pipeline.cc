#include "passes/pipeline.h"

#include "ir/verify.h"
#include "passes/applicability.h"
#include "passes/pass_manager.h"
#include "support/metrics.h"

namespace cr::passes {

namespace {

PipelineReport run_pipeline(ir::Program& program,
                            const PipelineOptions& options, bool to_spmd) {
  ir::verify_or_die(program);

  std::string why;
  std::vector<Fragment> fragments = find_fragments(program, &why);
  if (fragments.empty()) {
    PipelineReport report;
    report.failure = why;
    return report;
  }

  PassManager manager = make_pipeline(options, to_spmd);
  PassContext ctx(program, options, to_spmd);
  // Transform back to front so earlier fragments' indices stay valid
  // while later ones grow the statement list.
  for (auto it = fragments.rbegin(); it != fragments.rend(); ++it) {
    manager.run_fragment(program, *it, ctx);
  }

  if (to_spmd) ir::verify_or_die(program);
  PipelineReport report = report_from_stats(ctx);
  report.applied = true;
  // Mirror the uniform per-pass counters into the attached registry
  // (idempotent per pipeline run; keys are stable "<pass>.<counter>").
  if (options.metrics != nullptr) {
    for (const auto& [key, value] : report.stats) {
      options.metrics->counter("passes." + key).add(value);
    }
  }
  return report;
}

}  // namespace

PipelineReport control_replicate(ir::Program& program,
                                 const PipelineOptions& options) {
  return run_pipeline(program, options, /*to_spmd=*/true);
}

PipelineReport prepare_distributed(ir::Program& program,
                                   const PipelineOptions& options) {
  return run_pipeline(program, options, /*to_spmd=*/false);
}

}  // namespace cr::passes
