#include "passes/pipeline.h"

#include "ir/verify.h"
#include "passes/applicability.h"
#include "passes/copy_placement.h"
#include "passes/data_replication.h"
#include "passes/hierarchical.h"
#include "passes/intersection_opt.h"
#include "passes/projection_normalize.h"
#include "passes/region_reduction.h"
#include "passes/scalar_reduction.h"
#include "passes/shard_creation.h"
#include "passes/sync_insertion.h"
#include "support/check.h"

namespace cr::passes {

namespace {

// Transform one fragment in place (paper §3, all stages), accumulating
// statistics into `report`.
void transform_fragment(ir::Program& program, Fragment fragment,
                        const PipelineOptions& options, bool to_spmd,
                        PipelineReport& report) {
  report.fragment_statements += fragment.end - fragment.begin;

  // §2.2: normalize p[f(i)] arguments to identity projections.
  report.projections_normalized += projection_normalize(program, fragment);

  // §3.1: per-partition storage + coherence copies.
  ir::StaticRegionTree oracle =
      make_alias_oracle(program, options.hierarchical);
  DataReplicationResult repl = data_replication(program, fragment, oracle);
  report.init_copies += repl.init.size();
  report.inner_copies += repl.inner_copies;
  report.finalize_copies += repl.finalize.size();

  // §4.3: reduction instances and reduction copies.
  report.reductions_rewritten += region_reduction(program, fragment, oracle);

  // §3.2: PRE + LICM on the partition-granularity copies.
  if (options.copy_placement) {
    CopyPlacementResult placed = copy_placement(program, fragment);
    report.copies_removed += placed.removed;
    report.copies_hoisted += placed.hoisted;
  }

  // §3.3: intersection tables; the kIntersect statements are hoisted in
  // front of the fragment (loop-invariant, computed once).
  std::vector<ir::Stmt> pre;
  if (options.intersection_opt) {
    IntersectionOptResult isect = intersection_opt(program, fragment);
    report.intersection_tables += isect.tables.size();
    pre = std::move(isect.tables);
  }

  // §4.4: scalar reductions via dynamic collectives.
  ScalarReductionResult scalars = scalar_reduction(program, fragment);
  report.collectives += scalars.collectives;
  CR_CHECK_MSG(scalars.violations.empty(),
               "scalar replication-safety violation");

  if (to_spmd) {
    // §3.4: synchronization.
    SyncInsertionResult sync =
        sync_insertion(program, fragment, options.p2p_sync);
    report.p2p_copies += sync.p2p_copies;
    report.barriers += sync.barriers;

    // §3.5: extract the shard task.
    shard_creation(program, fragment, options.num_shards);
  }

  // Splice initialization / intersections before and finalization after
  // the fragment (or the shard launch that replaced it).
  auto at = [&](size_t idx) {
    return program.body.begin() + static_cast<long>(idx);
  };
  program.body.insert(at(fragment.end),
                      std::make_move_iterator(repl.finalize.begin()),
                      std::make_move_iterator(repl.finalize.end()));
  program.body.insert(at(fragment.begin),
                      std::make_move_iterator(pre.begin()),
                      std::make_move_iterator(pre.end()));
  program.body.insert(at(fragment.begin),
                      std::make_move_iterator(repl.init.begin()),
                      std::make_move_iterator(repl.init.end()));
}

PipelineReport run_pipeline(ir::Program& program,
                            const PipelineOptions& options, bool to_spmd) {
  PipelineReport report;
  ir::verify_or_die(program);

  std::string why;
  std::vector<Fragment> fragments = find_fragments(program, &why);
  if (fragments.empty()) {
    report.failure = why;
    return report;
  }
  // Transform back to front so earlier fragments' indices stay valid
  // while later ones grow the statement list.
  for (auto it = fragments.rbegin(); it != fragments.rend(); ++it) {
    transform_fragment(program, *it, options, to_spmd, report);
  }

  if (to_spmd) ir::verify_or_die(program);
  report.applied = true;
  return report;
}

}  // namespace

PipelineReport control_replicate(ir::Program& program,
                                 const PipelineOptions& options) {
  return run_pipeline(program, options, /*to_spmd=*/true);
}

PipelineReport prepare_distributed(ir::Program& program,
                                   const PipelineOptions& options) {
  return run_pipeline(program, options, /*to_spmd=*/false);
}

}  // namespace cr::passes
