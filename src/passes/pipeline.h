// The control replication pipeline: applies the passes of paper §3 in
// order and produces the SPMD program of Figure 4d.
//
//   applicability -> projection normalization -> data replication ->
//   region reductions -> copy placement (PRE + LICM) -> intersection
//   optimization -> scalar reductions -> synchronization insertion ->
//   shard creation.
//
// Every optimization can be disabled independently for the ablation
// studies; disabling correctness-relevant stages falls back to the
// naive-but-correct form (all-pairs copies, barrier synchronization),
// never to an incorrect program.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/program.h"

namespace cr::support {
class MetricsRegistry;
}  // namespace cr::support

namespace cr::passes {

struct PipelineOptions {
  // 0 = auto (one shard per node, set by the SPMD executor).
  uint32_t num_shards = 0;
  bool copy_placement = true;    // §3.2 (ablation A4)
  bool intersection_opt = true;  // §3.3 (ablation A1)
  bool p2p_sync = true;          // §3.4 (ablation A2; false = barriers)
  bool hierarchical = true;      // §4.5 (ablation A3; false = flat aliasing)
  // When set, per-pass counters and IR size deltas are mirrored into
  // this registry under "passes.*" (observability only; never read by
  // the passes).
  support::MetricsRegistry* metrics = nullptr;
};

struct PipelineReport {
  bool applied = false;
  std::string failure;             // why CR was not applied
  size_t fragment_statements = 0;  // statements selected
  size_t projections_normalized = 0;
  size_t init_copies = 0;
  size_t inner_copies = 0;
  size_t finalize_copies = 0;
  size_t reductions_rewritten = 0;
  size_t copies_removed = 0;
  size_t copies_hoisted = 0;
  size_t intersection_tables = 0;
  size_t collectives = 0;
  size_t p2p_copies = 0;
  size_t barriers = 0;
  // The uniform per-pass counters the fields above are derived from,
  // keyed "<pass>.<counter>" (see passes/pass_manager.h).
  std::map<std::string, uint64_t> stats;
};

// Transform `program` in place. Returns the report; when the program is
// not replicable it is left untouched and report.applied is false.
PipelineReport control_replicate(ir::Program& program,
                                 const PipelineOptions& options);

// The distributed-memory preparation *without* control replication:
// projection normalization, data replication, reductions, placement and
// intersections, but no synchronization insertion and no shards. This is
// what the implicit executor interprets — it corresponds to the work the
// Legion runtime performs from a single control thread when CR is off
// (every copy and every point task issued centrally).
PipelineReport prepare_distributed(ir::Program& program,
                                   const PipelineOptions& options);

}  // namespace cr::passes
