// Shared infrastructure for the control replication passes: the fragment
// being transformed and partition-granularity access summaries.
//
// The key formulation point from the paper (§3.2): after data
// replication, statements are viewed as operations on *partitions* —
// "line 8 is seen as writing the partition PB and reading PA" — which is
// what lets textbook dataflow optimizations apply. AccessSummary is that
// view.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ir/program.h"

namespace cr::passes {

// A contiguous statement range [begin, end) of Program::body selected for
// control replication.
struct Fragment {
  size_t begin = 0;
  size_t end = 0;
  bool empty() const { return begin >= end; }
};

using FieldSet = std::set<rt::FieldId>;
using PartitionFields = std::map<rt::PartitionId, FieldSet>;

// Partition-level reads/writes of a statement (recursively summarizing
// nested loops). Reduce-privileged arguments are tracked separately:
// they neither read nor overwrite, and data replication must not treat
// them as either (paper §4.3 handles them with reduction instances).
struct AccessSummary {
  PartitionFields reads;
  PartitionFields writes;
  PartitionFields reduces;
};

// Summarize one statement / a whole body.
AccessSummary summarize(const ir::Stmt& stmt);
AccessSummary summarize(const std::vector<ir::Stmt>& body);

// Merge b into a.
void merge_into(PartitionFields& a, const PartitionFields& b);

// fields(a) ∩ b
FieldSet intersect_fields(const FieldSet& a, const FieldSet& b);

// Look up the tree-root region of a partition.
rt::RegionId root_of(const rt::RegionForest& forest, rt::PartitionId p);

}  // namespace cr::passes
