#include "passes/sync_insertion.h"

namespace cr::passes {

namespace {

bool is_inter_shard_copy(const ir::Stmt& s) {
  // Partition-to-partition copies can cross shard boundaries; copies
  // with a root endpoint are issued by the main task outside the shards.
  return s.kind == ir::StmtKind::kCopy && s.copy_src != rt::kNoId &&
         s.copy_dst != rt::kNoId;
}

bool fields_overlap(const std::vector<rt::FieldId>& a,
                    const std::vector<rt::FieldId>& b) {
  for (rt::FieldId x : a) {
    for (rt::FieldId y : b) {
      if (x == y) return true;
    }
  }
  return false;
}

// A region access some statement performs, summarized for the
// cross-shard hazard test below. Accesses meet only through a shared
// physical instance, and the executors keep one instance per
// (partition, color) — so identity is the partition; kNoId means the
// root's master instance (single tasks, root-endpoint copies), which no
// inter-shard copy touches. `aligned` marks identity-projection
// index-launch arguments on disjoint partitions — the one case where
// the accessing shard is statically known (point i runs on the shard
// owning color i).
struct PriorAccess {
  rt::PartitionId partition = rt::kNoId;
  const std::vector<rt::FieldId>* fields = nullptr;  // null = all fields
  bool write = false;  // any non-read privilege
  bool aligned = false;
};

class SyncInserter {
 public:
  SyncInserter(ir::Program& program, bool p2p)
      : program_(program), p2p_(p2p) {}
  SyncInsertionResult result;

  // `cyclic` marks a loop body: execution wraps around, so for the
  // leading-barrier analysis every statement of the body precedes every
  // other.
  void process(std::vector<ir::Stmt>& body, std::vector<PriorAccess> prefix,
               bool cyclic) {
    for (size_t k = 0; k < body.size(); ++k) {
      ir::Stmt& s = body[k];
      if (s.body.empty()) continue;
      std::vector<PriorAccess> inner = prefix;
      if (s.kind == ir::StmtKind::kForTime) {
        // A loop body cycles: every statement of the body precedes its
        // copies in some iteration.
        collect_accesses(s, inner);
      } else {
        for (size_t g = 0; g < k; ++g) collect_accesses(body[g], inner);
      }
      process(s.body, std::move(inner), s.kind == ir::StmtKind::kForTime);
    }
    if (p2p_) {
      for (ir::Stmt& s : body) {
        if (is_inter_shard_copy(s)) {
          s.sync = ir::SyncMode::kP2P;
          s.sync_id = program_.num_sync_ops++;
          if (s.prov.valid()) s.prov.passes.push_back("sync-insertion");
          ++result.p2p_copies;
        }
      }
      return;
    }
    // Naive form: barrier() around each run of copies (Figure 4c lines
    // 10 and 12). Barrier-synchronized copies run with their cross-shard
    // dependence edges relaxed (the barrier *is* the synchronization),
    // so a run must additionally be split wherever two of its copies
    // conflict: a copy reading or overwriting data another copy in the
    // same run produces may not share its barrier interval.
    for (size_t i = 0; i < body.size(); ++i) {
      if (!is_inter_shard_copy(body[i])) continue;
      size_t j = i;
      while (j < body.size() && is_inter_shard_copy(body[j])) ++j;
      // Partition [i, j) greedily into conflict-free groups.
      std::vector<size_t> splits;  // group start offsets within [i, j)
      size_t group_start = i;
      for (size_t k = i + 1; k < j; ++k) {
        for (size_t g = group_start; g < k; ++g) {
          if (copies_conflict(body[g], body[k])) {
            splits.push_back(k);
            group_start = k;
            break;
          }
        }
      }
      // The leading barrier orders accesses *before* the run against
      // its copies. When every such access is provably issued by the
      // same shard as the copy side it conflicts with, the ordering
      // already holds shard-locally and the barrier would be dead
      // weight (and an undetectable sync mutant). Inside a loop the
      // window between the previous iteration's trailing barrier and
      // this one wraps around, so the whole body counts as preceding.
      std::vector<PriorAccess> before = prefix;
      if (cyclic) {
        for (size_t g = 0; g < body.size(); ++g) {
          if (g < i || g >= j) collect_accesses(body[g], before);
        }
      } else {
        for (size_t g = 0; g < i; ++g) collect_accesses(body[g], before);
      }
      bool need_leading = false;
      for (const PriorAccess& a : before) {
        for (size_t c = i; c < j && !need_leading; ++c) {
          need_leading = cross_shard_conflict(a, body[c]);
        }
        if (need_leading) break;
      }
      // One barrier before the run (when needed), one after each group
      // (the barrier closing a group doubles as the one opening the
      // next).
      std::vector<size_t> at;  // insertion points, ascending
      if (need_leading) at.push_back(i);
      for (size_t s : splits) at.push_back(s);
      at.push_back(j);
      for (size_t b = at.size(); b-- > 0;) {
        ir::Stmt barrier;
        barrier.kind = ir::StmtKind::kBarrier;
        barrier.sync_id = program_.num_sync_ops++;
        // Anchor the barrier's provenance on the copy it guards: the one
        // right before a trailing/group-closing barrier, the one right
        // after a leading barrier. Descending insertion order keeps the
        // indices < at[b] valid while we insert.
        const size_t anchor = at[b] == j ? j - 1 : at[b];
        barrier.prov = body[anchor].prov.derived("sync-insertion");
        body.insert(body.begin() + static_cast<long>(at[b]),
                    std::move(barrier));
        ++result.barriers;
      }
      i = j + at.size() - 1;  // skip past the run and inserted barriers
    }
  }

 private:
  // Summarize every region access `s` (recursively) performs.
  void collect_accesses(const ir::Stmt& s,
                        std::vector<PriorAccess>& out) const {
    const rt::RegionForest& f = *program_.forest;
    switch (s.kind) {
      case ir::StmtKind::kIndexLaunch:
        for (const ir::RegionArg& a : s.args) {
          PriorAccess pa;
          pa.partition = a.partition;
          pa.fields = &a.fields;
          pa.write = a.privilege != rt::Privilege::kReadOnly;
          pa.aligned =
              a.proj.identity() && f.partition(a.partition).disjoint &&
              s.launch_colors == f.partition(a.partition).subregions.size();
          out.push_back(pa);
        }
        break;
      case ir::StmtKind::kSingleTask:
        // Single tasks touch the roots' master instances, which no
        // inter-shard (partition-to-partition) copy can reach.
        break;
      case ir::StmtKind::kCopy: {
        if (s.copy_src != rt::kNoId) {
          PriorAccess src;
          src.partition = s.copy_src;
          src.fields = &s.copy_fields;
          out.push_back(src);
        }
        if (s.copy_dst != rt::kNoId) {
          PriorAccess dst;
          dst.partition = s.copy_dst;
          dst.fields = &s.copy_fields;
          dst.write = true;
          out.push_back(dst);
        }
        break;
      }
      case ir::StmtKind::kFill: {
        PriorAccess pa;
        pa.partition = s.fill_dst;
        pa.fields = &s.fill_fields;
        pa.write = true;
        out.push_back(pa);
        break;
      }
      case ir::StmtKind::kForTime:
      case ir::StmtKind::kShardBody:
        for (const ir::Stmt& t : s.body) collect_accesses(t, out);
        break;
      case ir::StmtKind::kScalarOp:
      case ir::StmtKind::kBarrier:
      case ir::StmtKind::kIntersect:
      case ir::StmtKind::kCollective:
        break;  // no region accesses
    }
  }

  // May `a` conflict with barrier-relaxed copy `c` on two *different*
  // shards? Copy pair (i, j) is issued by the producer shard owning src
  // color i (sequential semantics on the producer side, paper §3.4): a
  // source-side conflict with an identity launch over the very same
  // disjoint partition is always shard-local, while any conflict with
  // the destination writes can cross shards.
  bool cross_shard_conflict(const PriorAccess& a, const ir::Stmt& c) const {
    if (a.partition == rt::kNoId) return false;  // master instances
    if (a.fields != nullptr && !fields_overlap(*a.fields, c.copy_fields)) {
      return false;
    }
    // Destination writes land on the producer shard, not the owner of
    // the written color: any shared-instance conflict can cross shards.
    if (a.partition == c.copy_dst) return true;
    // Source reads run on the owner of the read color: a conflict with
    // an aligned launch over the same partition is shard-local.
    if (a.write && a.partition == c.copy_src && !a.aligned) return true;
    return false;
  }
  // Conservative partition-level hazard test between two copies of one
  // run: any read/write or write/write overlap on a shared region root
  // demands an ordering (two folds of one reduction epoch commute).
  bool copies_conflict(const ir::Stmt& a, const ir::Stmt& b) const {
    if (!fields_overlap(a.copy_fields, b.copy_fields)) return false;
    const rt::RegionForest& f = *program_.forest;
    const rt::RegionId a_src = root_of(f, a.copy_src);
    const rt::RegionId a_dst = root_of(f, a.copy_dst);
    const rt::RegionId b_src = root_of(f, b.copy_src);
    const rt::RegionId b_dst = root_of(f, b.copy_dst);
    if (a_dst == b_src || a_src == b_dst) return true;  // RAW / WAR
    if (a_dst == b_dst) {
      const bool commuting = a.copy_reduction && b.copy_reduction &&
                             a.copy_redop == b.copy_redop;
      if (!commuting) return true;  // WAW
    }
    return false;
  }

  ir::Program& program_;
  bool p2p_;
};

}  // namespace

SyncInsertionResult sync_insertion(ir::Program& program, Fragment& fragment,
                                   bool p2p) {
  SyncInserter inserter(program, p2p);
  // Process the whole fragment range; nested bodies handled recursively.
  // Top-level runs of copies in the fragment also get barriers, so wrap
  // the range in a temporary view.
  std::vector<ir::Stmt> view(
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.begin)),
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.end)));
  inserter.process(view, {}, /*cyclic=*/false);
  program.body.erase(program.body.begin() + static_cast<long>(fragment.begin),
                     program.body.begin() + static_cast<long>(fragment.end));
  program.body.insert(program.body.begin() + static_cast<long>(fragment.begin),
                      std::make_move_iterator(view.begin()),
                      std::make_move_iterator(view.end()));
  fragment.end = fragment.begin + view.size();
  return inserter.result;
}

}  // namespace cr::passes
