#include "passes/sync_insertion.h"

namespace cr::passes {

namespace {

bool is_inter_shard_copy(const ir::Stmt& s) {
  // Partition-to-partition copies can cross shard boundaries; copies
  // with a root endpoint are issued by the main task outside the shards.
  return s.kind == ir::StmtKind::kCopy && s.copy_src != rt::kNoId &&
         s.copy_dst != rt::kNoId;
}

class SyncInserter {
 public:
  explicit SyncInserter(bool p2p) : p2p_(p2p) {}
  SyncInsertionResult result;

  void process(std::vector<ir::Stmt>& body) {
    for (ir::Stmt& s : body) {
      if (!s.body.empty()) process(s.body);
    }
    if (p2p_) {
      for (ir::Stmt& s : body) {
        if (is_inter_shard_copy(s)) {
          s.sync = ir::SyncMode::kP2P;
          ++result.p2p_copies;
        }
      }
      return;
    }
    // Naive form: barrier() before and after each maximal run of copies
    // (Figure 4c lines 10 and 12).
    for (size_t i = 0; i < body.size(); ++i) {
      if (!is_inter_shard_copy(body[i])) continue;
      size_t j = i;
      while (j < body.size() && is_inter_shard_copy(body[j])) ++j;
      ir::Stmt barrier;
      barrier.kind = ir::StmtKind::kBarrier;
      body.insert(body.begin() + static_cast<long>(j), barrier);
      body.insert(body.begin() + static_cast<long>(i), barrier);
      result.barriers += 2;
      i = j + 1;  // skip past the run and the inserted barriers
    }
  }

 private:
  bool p2p_;
};

}  // namespace

SyncInsertionResult sync_insertion(ir::Program& program, Fragment& fragment,
                                   bool p2p) {
  SyncInserter inserter(p2p);
  // Process the whole fragment range; nested bodies handled recursively.
  // Top-level runs of copies in the fragment also get barriers, so wrap
  // the range in a temporary view.
  std::vector<ir::Stmt> view(
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.begin)),
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.end)));
  inserter.process(view);
  program.body.erase(program.body.begin() + static_cast<long>(fragment.begin),
                     program.body.begin() + static_cast<long>(fragment.end));
  program.body.insert(program.body.begin() + static_cast<long>(fragment.begin),
                      std::make_move_iterator(view.begin()),
                      std::make_move_iterator(view.end()));
  fragment.end = fragment.begin + view.size();
  return inserter.result;
}

}  // namespace cr::passes
