// Hierarchical region tree support (paper §4.5, Figure 5).
//
// When the programmer partitions a region into private/ghost subsets
// before partitioning further, the deep LCA test proves the private-side
// partitions disjoint from every ghost-side partition: the compiler then
// never emits copies for them and skips their intersection tests. The
// precision switch itself lives in ir::StaticRegionTree (hierarchical vs
// flat); this module builds the oracle for a pipeline configuration and
// reports how much the hierarchy saved — the quantity the §4.5 ablation
// measures.
#pragma once

#include "ir/program.h"
#include "ir/static_region_tree.h"
#include "passes/common.h"

namespace cr::passes {

struct HierarchyStats {
  size_t pairs_considered = 0;   // partition pairs sharing a tree root
  size_t pairs_proven_disjoint = 0;  // by the hierarchical test
  size_t pairs_flat_disjoint = 0;    // provable even without hierarchy
};

// Oracle used by data replication / region reduction.
ir::StaticRegionTree make_alias_oracle(const ir::Program& program,
                                       bool hierarchical);

// Count, over all partition pairs used in the fragment, how many the
// hierarchical test separates versus the flat test.
HierarchyStats analyze_hierarchy(const ir::Program& program,
                                 const Fragment& fragment);

}  // namespace cr::passes
