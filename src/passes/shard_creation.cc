#include "passes/shard_creation.h"

#include "support/check.h"

namespace cr::passes {

void shard_creation(ir::Program& program, Fragment& fragment,
                    uint32_t num_shards) {
  CR_CHECK(num_shards > 0);
  ir::Stmt shard;
  shard.kind = ir::StmtKind::kShardBody;
  shard.num_shards = num_shards;
  shard.label = "shard";
  shard.body.assign(
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.begin)),
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.end)));
  program.body.erase(program.body.begin() + static_cast<long>(fragment.begin),
                     program.body.begin() + static_cast<long>(fragment.end));
  program.body.insert(program.body.begin() + static_cast<long>(fragment.begin),
                      std::move(shard));
  fragment.end = fragment.begin + 1;
}

ColorRange shard_block(uint64_t colors, uint32_t num_shards, uint32_t s) {
  CR_CHECK(s < num_shards);
  // Even block split with the remainder on the leading shards — the same
  // policy as Mapper::node_of_color, so shard-owned tasks are node-local.
  const uint64_t base = colors / num_shards;
  const uint64_t rem = colors % num_shards;
  const uint64_t begin = s * base + std::min<uint64_t>(s, rem);
  return ColorRange{begin, begin + base + (s < rem ? 1 : 0)};
}

}  // namespace cr::passes
