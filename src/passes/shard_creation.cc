#include "passes/shard_creation.h"

#include "rt/mapper.h"
#include "support/check.h"

namespace cr::passes {

void shard_creation(ir::Program& program, Fragment& fragment,
                    uint32_t num_shards) {
  CR_CHECK(num_shards > 0);
  ir::Stmt shard;
  shard.kind = ir::StmtKind::kShardBody;
  shard.num_shards = num_shards;
  shard.label = "shard";
  shard.body.assign(
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.begin)),
      std::make_move_iterator(program.body.begin() +
                              static_cast<long>(fragment.end)));
  program.body.erase(program.body.begin() + static_cast<long>(fragment.begin),
                     program.body.begin() + static_cast<long>(fragment.end));
  program.body.insert(program.body.begin() + static_cast<long>(fragment.begin),
                      std::move(shard));
  fragment.end = fragment.begin + 1;
}

ColorRange shard_block(uint64_t colors, uint32_t num_shards, uint32_t s) {
  // Even block split with the remainder on the leading shards — the one
  // shared definition (rt::block_range) also backs the default mapper's
  // node_of_color, so shard-owned tasks are node-local under the default
  // placement policy.
  const rt::BlockRange r = rt::block_range(colors, num_shards, s);
  return ColorRange{r.begin, r.end};
}

}  // namespace cr::passes
