#include "passes/data_replication.h"

#include <algorithm>

#include "support/check.h"

namespace cr::passes {

namespace {

ir::Stmt make_copy(rt::PartitionId src, rt::PartitionId dst,
                   const FieldSet& fields, ir::Provenance prov) {
  ir::Stmt s;
  s.kind = ir::StmtKind::kCopy;
  s.copy_src = src;
  s.copy_dst = dst;
  s.copy_fields.assign(fields.begin(), fields.end());
  s.prov = std::move(prov);
  return s;
}

class DataReplicator {
 public:
  DataReplicator(ir::Program& program, const ir::StaticRegionTree& tree)
      : program_(program), forest_(*program.forest), tree_(tree) {}

  DataReplicationResult run(Fragment& fragment) {
    // Fragment-wide access summary: inner copies target any aliased
    // partition *read anywhere* in the fragment — a read earlier in the
    // loop body still consumes the write on the next iteration. At this
    // point the fragment is a source program, so every write in the
    // summary comes from a task.
    for (size_t i = fragment.begin; i < fragment.end; ++i) {
      AccessSummary sum = summarize(program_.body[i]);
      merge_into(all_.reads, sum.reads);
      merge_into(all_.writes, sum.writes);
      merge_into(all_.reduces, sum.reduces);
      note_provenance(program_.body[i]);
    }

    DataReplicationResult result;
    emit_init(result);
    for (size_t i = fragment.begin; i < fragment.end; ++i) {
      ir::Stmt& s = program_.body[i];
      if (!s.body.empty()) {
        result.inner_copies += insert_inner(s.body);
      }
      if (s.kind == ir::StmtKind::kIndexLaunch) {
        std::vector<ir::Stmt> copies = copies_for_writer(s);
        const size_t n = copies.size();
        program_.body.insert(program_.body.begin() + static_cast<long>(i) + 1,
                             std::make_move_iterator(copies.begin()),
                             std::make_move_iterator(copies.end()));
        i += n;
        fragment.end += n;
        result.inner_copies += n;
      }
    }
    emit_finalize(result);
    return result;
  }

 private:
  // Partitions aliased with (P, fields) that are read in the fragment;
  // returns (partition, shared read fields) in deterministic order.
  std::vector<std::pair<rt::PartitionId, FieldSet>> aliased_readers(
      rt::PartitionId p, const FieldSet& fields) const {
    std::vector<std::pair<rt::PartitionId, FieldSet>> out;
    const rt::RegionId root = root_of(forest_, p);
    for (const auto& [q, read_fields] : all_.reads) {
      if (q == p) continue;
      if (root_of(forest_, q) != root) continue;
      if (!tree_.partitions_may_alias(p, q)) continue;
      FieldSet shared = intersect_fields(fields, read_fields);
      if (!shared.empty()) out.emplace_back(q, std::move(shared));
    }
    return out;
  }

  // The copies required after one writing statement (Fig. 4a line 9).
  std::vector<ir::Stmt> copies_for_writer(const ir::Stmt& s) const {
    AccessSummary sum = summarize(s);
    std::vector<ir::Stmt> copies;
    for (const auto& [p, fields] : sum.writes) {
      for (auto& [q, shared] : aliased_readers(p, fields)) {
        copies.push_back(
            make_copy(p, q, shared, s.prov.derived("data-replication")));
      }
    }
    return copies;
  }

  // Recursively insert after-writer copies inside nested loop bodies.
  size_t insert_inner(std::vector<ir::Stmt>& body) {
    size_t inserted = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (!body[i].body.empty()) inserted += insert_inner(body[i].body);
      if (body[i].kind != ir::StmtKind::kIndexLaunch) continue;
      std::vector<ir::Stmt> copies = copies_for_writer(body[i]);
      const size_t n = copies.size();
      body.insert(body.begin() + static_cast<long>(i) + 1,
                  std::make_move_iterator(copies.begin()),
                  std::make_move_iterator(copies.end()));
      i += n;
      inserted += n;
    }
    return inserted;
  }

  // Record, per accessed partition, the first accessing and the last
  // writing source statement: the init copy loading a partition exists
  // because of its first access, the finalize copy draining it because
  // of its last write.
  void note_provenance(const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kIndexLaunch) {
      for (const ir::RegionArg& a : s.args) {
        first_access_.try_emplace(a.partition,
                                  s.prov.derived("data-replication"));
        if (a.privilege != rt::Privilege::kReadOnly) {
          last_write_[a.partition] = s.prov.derived("data-replication");
        }
      }
    }
    for (const ir::Stmt& c : s.body) note_provenance(c);
  }

  ir::Provenance prov_of(const std::map<rt::PartitionId, ir::Provenance>& m,
                         rt::PartitionId p) const {
    const auto it = m.find(p);
    return it != m.end() ? it->second : ir::Provenance{};
  }

  void emit_init(DataReplicationResult& result) {
    // Figure 4a lines 2-4: load every accessed partition from its parent
    // region (reduce-only partitions excluded — they never read and the
    // region reduction pass gives them fresh storage).
    PartitionFields accessed = all_.reads;
    merge_into(accessed, all_.writes);
    for (const auto& [p, fields] : accessed) {
      ir::Stmt s;
      s.kind = ir::StmtKind::kCopy;
      s.src_root = root_of(forest_, p);
      s.copy_dst = p;
      s.copy_fields.assign(fields.begin(), fields.end());
      s.prov = prov_of(first_access_, p);
      result.init.push_back(std::move(s));
    }
  }

  void emit_finalize(DataReplicationResult& result) {
    // Figure 4a lines 14-15: task-written partitions flow back to their
    // parent regions. Aliased replicas agree at fragment exit (the inner
    // copies re-synchronize after every write), so emission order across
    // partitions does not affect the result.
    for (const auto& [p, fields] : all_.writes) {
      ir::Stmt s;
      s.kind = ir::StmtKind::kCopy;
      s.copy_src = p;
      s.dst_root = root_of(forest_, p);
      s.copy_fields.assign(fields.begin(), fields.end());
      s.prov = prov_of(last_write_, p);
      result.finalize.push_back(std::move(s));
    }
  }

  ir::Program& program_;
  const rt::RegionForest& forest_;
  const ir::StaticRegionTree& tree_;
  AccessSummary all_;
  std::map<rt::PartitionId, ir::Provenance> first_access_, last_write_;
};

}  // namespace

DataReplicationResult data_replication(ir::Program& program,
                                       Fragment& fragment,
                                       const ir::StaticRegionTree& tree) {
  DataReplicator rep(program, tree);
  return rep.run(fragment);
}

}  // namespace cr::passes
