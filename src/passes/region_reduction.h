// Region reductions (paper §4.3): loop-carried dependencies from
// associative/commutative reductions to region arguments.
//
// A Reduce-privileged argument on a (generally aliased) partition Q is
// rewritten to target a fresh compiler-generated *reduction instance*
// partition T with the same subspaces as Q but private storage:
//   - a Fill initializes T to the operator's identity before the launch;
//   - the launch folds its partial results into T;
//   - reduction copies after the launch apply T into every partition
//     that reads the reduced fields (each replica folds the same deltas,
//     so replicas stay coherent), or into the parent region when nothing
//     reads them inside the fragment.
#pragma once

#include "ir/program.h"
#include "ir/static_region_tree.h"
#include "passes/common.h"

namespace cr::passes {

// Returns the number of launch arguments rewritten. `fragment` grows when
// fills/copies are inserted at top level.
size_t region_reduction(ir::Program& program, Fragment& fragment,
                        const ir::StaticRegionTree& tree);

}  // namespace cr::passes
