#include "passes/common.h"

#include "support/check.h"

namespace cr::passes {

namespace {

void add_fields(PartitionFields& m, rt::PartitionId p,
                const std::vector<rt::FieldId>& fields) {
  auto& set = m[p];
  set.insert(fields.begin(), fields.end());
}

void summarize_into(const ir::Stmt& s, AccessSummary& out) {
  switch (s.kind) {
    case ir::StmtKind::kIndexLaunch:
      for (const ir::RegionArg& a : s.args) {
        if (a.privilege == rt::Privilege::kReduce) {
          add_fields(out.reduces, a.partition, a.fields);
          continue;
        }
        if (rt::privilege_reads(a.privilege)) {
          add_fields(out.reads, a.partition, a.fields);
        }
        if (rt::privilege_writes(a.privilege)) {
          add_fields(out.writes, a.partition, a.fields);
        }
      }
      break;
    case ir::StmtKind::kCopy:
      if (s.copy_src != rt::kNoId) {
        add_fields(out.reads, s.copy_src, s.copy_fields);
      }
      if (s.copy_dst != rt::kNoId) {
        // A reduction copy folds into the destination: read-modify-write.
        if (s.copy_reduction) {
          add_fields(out.reads, s.copy_dst, s.copy_fields);
        }
        add_fields(out.writes, s.copy_dst, s.copy_fields);
      }
      break;
    case ir::StmtKind::kFill:
      add_fields(out.writes, s.fill_dst, s.fill_fields);
      break;
    default:
      break;
  }
  for (const ir::Stmt& c : s.body) summarize_into(c, out);
}

}  // namespace

AccessSummary summarize(const ir::Stmt& stmt) {
  AccessSummary out;
  summarize_into(stmt, out);
  return out;
}

AccessSummary summarize(const std::vector<ir::Stmt>& body) {
  AccessSummary out;
  for (const ir::Stmt& s : body) summarize_into(s, out);
  return out;
}

void merge_into(PartitionFields& a, const PartitionFields& b) {
  for (const auto& [p, fields] : b) {
    a[p].insert(fields.begin(), fields.end());
  }
}

FieldSet intersect_fields(const FieldSet& a, const FieldSet& b) {
  FieldSet out;
  for (rt::FieldId f : a) {
    if (b.count(f)) out.insert(f);
  }
  return out;
}

rt::RegionId root_of(const rt::RegionForest& forest, rt::PartitionId p) {
  return forest.region(forest.partition(p).parent).root;
}

}  // namespace cr::passes
