#include "passes/applicability.h"

#include "ir/static_region_tree.h"
#include "support/check.h"

namespace cr::passes {

namespace {

bool fields_overlap(const std::vector<rt::FieldId>& a,
                    const std::vector<rt::FieldId>& b) {
  for (rt::FieldId f : a) {
    for (rt::FieldId g : b) {
      if (f == g) return true;
    }
  }
  return false;
}

bool launch_replicable(const ir::Program& program, const ir::Stmt& s,
                       std::string* why) {
  const ir::TaskDecl& decl = program.task(s.task);
  for (size_t k = 0; k < s.args.size(); ++k) {
    const ir::RegionArg& a = s.args[k];
    const rt::PartitionNode& pn = program.forest->partition(a.partition);
    // Loop-carried dependencies other than reductions are not allowed:
    // a write through an aliased partition would race across iterations
    // of the (parallel) inner loop.
    if (rt::privilege_writes(a.privilege) && !pn.disjoint) {
      if (why) {
        *why = "launch " + decl.name + ": writes aliased partition " +
               pn.name;
      }
      return false;
    }
    if (rt::privilege_writes(a.privilege) && !a.proj.identity()) {
      if (why) {
        *why = "launch " + decl.name + ": writes through a projection";
      }
      return false;
    }
    // Region arguments must have the form p[f(i)] with enough colors.
    if (a.proj.identity() && pn.subregions.size() < s.launch_colors) {
      if (why) {
        *why = "launch " + decl.name + ": partition " + pn.name +
               " narrower than launch domain";
      }
      return false;
    }
  }

  // The inner loop must be interference-free: two *different* point
  // tasks must never touch the same element with conflicting privileges.
  // For a conflicting argument pair p[i], q[g(i)] this holds statically
  // when p == q with identity projections on both (a task touching its
  // own subregion twice), or when the partitions are provably disjoint.
  ir::StaticRegionTree tree(*program.forest);
  for (size_t k1 = 0; k1 < s.args.size(); ++k1) {
    for (size_t k2 = k1; k2 < s.args.size(); ++k2) {
      const ir::RegionArg& a = s.args[k1];
      const ir::RegionArg& b = s.args[k2];
      if (!fields_overlap(a.fields, b.fields)) continue;
      if (!rt::privileges_conflict(a.privilege, a.redop, b.privilege,
                                   b.redop)) {
        continue;
      }
      if (a.partition == b.partition) {
        if (a.proj.identity() && b.proj.identity()) continue;  // self-use
        if (why) {
          *why = "launch " + decl.name +
                 ": projected access interferes across iterations";
        }
        return false;
      }
      if (tree.partitions_may_alias(a.partition, b.partition)) {
        if (why) {
          *why = "launch " + decl.name + ": arguments " +
                 program.forest->partition(a.partition).name + " and " +
                 program.forest->partition(b.partition).name +
                 " interfere across iterations";
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool statement_replicable(const ir::Program& program, const ir::Stmt& stmt,
                          std::string* why) {
  switch (stmt.kind) {
    case ir::StmtKind::kIndexLaunch:
      return launch_replicable(program, stmt, why);
    case ir::StmtKind::kScalarOp:
      // Scalars are replicated across shards; a pure function of
      // replicated inputs is itself replicable (paper §4.4).
      return true;
    case ir::StmtKind::kForTime:
      for (const ir::Stmt& c : stmt.body) {
        if (!statement_replicable(program, c, why)) return false;
      }
      return true;
    case ir::StmtKind::kSingleTask:
      if (why) *why = "single task " + program.task(stmt.task).name;
      return false;
    default:
      // Compiler-introduced forms are not expected in source programs.
      if (why) *why = "unexpected compiler statement in source program";
      return false;
  }
}

namespace {

bool contains_launch(const ir::Stmt& s) {
  if (s.kind == ir::StmtKind::kIndexLaunch) return true;
  for (const ir::Stmt& c : s.body) {
    if (contains_launch(c)) return true;
  }
  return false;
}

}  // namespace

std::vector<Fragment> find_fragments(const ir::Program& program,
                                     std::string* why) {
  std::vector<Fragment> out;
  std::string last_reason;
  size_t i = 0;
  const size_t n = program.body.size();
  while (i < n) {
    std::string reason;
    if (!statement_replicable(program, program.body[i], &reason)) {
      if (!reason.empty()) last_reason = reason;
      ++i;
      continue;
    }
    size_t j = i;
    bool has_launch = false;
    while (j < n && statement_replicable(program, program.body[j], nullptr)) {
      has_launch = has_launch || contains_launch(program.body[j]);
      ++j;
    }
    // Runs without any task launch (pure scalar code) replicate
    // trivially and need no shards.
    if (has_launch) out.push_back(Fragment{i, j});
    i = j;
  }
  if (out.empty() && why != nullptr) {
    *why = last_reason.empty() ? "no replicable statements" : last_reason;
  }
  return out;
}

std::optional<Fragment> find_fragment(const ir::Program& program,
                                      std::string* why) {
  // Enumerate maximal runs of replicable statements; score each run by
  // (contains a time loop, total statement weight) and keep the best.
  std::optional<Fragment> best;
  uint64_t best_score = 0;
  std::string last_reason;

  size_t i = 0;
  const size_t n = program.body.size();
  while (i < n) {
    std::string reason;
    if (!statement_replicable(program, program.body[i], &reason)) {
      if (!reason.empty()) last_reason = reason;
      ++i;
      continue;
    }
    size_t j = i;
    uint64_t score = 0;
    while (j < n && statement_replicable(program, program.body[j], nullptr)) {
      // Weight time loops by their trip count so the main simulation
      // loop wins over e.g. a run of initialization launches.
      score += program.body[j].kind == ir::StmtKind::kForTime
                   ? 1 + program.body[j].trip_count
                   : 1;
      ++j;
    }
    if (score > best_score) {
      best_score = score;
      best = Fragment{i, j};
    }
    i = j;
  }

  if (!best && why) {
    *why = last_reason.empty() ? "no replicable statements" : last_reason;
  }
  return best;
}

}  // namespace cr::passes
