#include "passes/projection_normalize.h"

#include "rt/partition.h"

namespace cr::passes {

namespace {

size_t normalize_stmt(ir::Program& program, ir::Stmt& s) {
  size_t rewritten = 0;
  if (s.kind == ir::StmtKind::kIndexLaunch) {
    for (ir::RegionArg& a : s.args) {
      if (a.proj.identity()) continue;
      const std::string base = program.forest->partition(a.partition).name;
      rt::PartitionId q = rt::partition_compose(
          *program.forest, a.partition, s.launch_colors, a.proj.fn,
          base + "@" + (a.proj.name.empty() ? "f" : a.proj.name));
      a.partition = q;
      a.proj = ir::Projection{};  // identity
      ++rewritten;
    }
  }
  for (ir::Stmt& c : s.body) rewritten += normalize_stmt(program, c);
  return rewritten;
}

}  // namespace

size_t projection_normalize(ir::Program& program, const Fragment& fragment) {
  size_t rewritten = 0;
  for (size_t i = fragment.begin; i < fragment.end; ++i) {
    rewritten += normalize_stmt(program, program.body[i]);
  }
  return rewritten;
}

}  // namespace cr::passes
