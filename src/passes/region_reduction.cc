#include "passes/region_reduction.h"

#include "rt/partition.h"
#include "support/check.h"

namespace cr::passes {

namespace {

class ReductionRewriter {
 public:
  ReductionRewriter(ir::Program& program, const ir::StaticRegionTree& tree)
      : program_(program), forest_(*program.forest), tree_(tree) {}

  size_t run(Fragment& fragment) {
    for (size_t i = fragment.begin; i < fragment.end; ++i) {
      AccessSummary sum = summarize(program_.body[i]);
      merge_into(reads_, sum.reads);
    }
    size_t rewritten = 0;
    for (size_t i = fragment.begin; i < fragment.end; ++i) {
      if (program_.body[i].kind == ir::StmtKind::kIndexLaunch) {
        // Top-level launch: rewrite within program.body, growing the
        // fragment by the inserted statements.
        std::vector<ir::Stmt> pre, post;
        rewritten += rewrite_launch(program_.body[i], pre, post);
        const size_t grow = pre.size() + post.size();
        program_.body.insert(program_.body.begin() + static_cast<long>(i) + 1,
                             std::make_move_iterator(post.begin()),
                             std::make_move_iterator(post.end()));
        program_.body.insert(program_.body.begin() + static_cast<long>(i),
                             std::make_move_iterator(pre.begin()),
                             std::make_move_iterator(pre.end()));
        i += grow;
        fragment.end += grow;
      } else if (!program_.body[i].body.empty()) {
        rewritten += rewrite_body(program_.body[i].body);
      }
    }
    return rewritten;
  }

 private:
  size_t rewrite_body(std::vector<ir::Stmt>& body) {
    size_t rewritten = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (!body[i].body.empty()) rewritten += rewrite_body(body[i].body);
      if (body[i].kind != ir::StmtKind::kIndexLaunch) continue;
      std::vector<ir::Stmt> pre, post;
      rewritten += rewrite_launch(body[i], pre, post);
      body.insert(body.begin() + static_cast<long>(i) + 1,
                  std::make_move_iterator(post.begin()),
                  std::make_move_iterator(post.end()));
      body.insert(body.begin() + static_cast<long>(i),
                  std::make_move_iterator(pre.begin()),
                  std::make_move_iterator(pre.end()));
      i += pre.size() + post.size();
    }
    return rewritten;
  }

  size_t rewrite_launch(ir::Stmt& launch, std::vector<ir::Stmt>& pre,
                        std::vector<ir::Stmt>& post) {
    size_t rewritten = 0;
    for (ir::RegionArg& a : launch.args) {
      if (a.privilege != rt::Privilege::kReduce) continue;
      CR_CHECK_MSG(a.proj.identity(),
                   "projection normalization must run before reductions");
      const rt::PartitionId q = a.partition;
      const rt::RegionId root = root_of(forest_, q);

      // The reduction instance partition: same subspaces, private storage.
      rt::PartitionId tmp = rt::partition_compose(
          forest_, q, launch.launch_colors, [](uint64_t i) { return i; },
          forest_.partition(q).name + "$red");

      ir::Stmt fill;
      fill.kind = ir::StmtKind::kFill;
      fill.fill_dst = tmp;
      fill.fill_fields = a.fields;
      fill.fill_value = rt::reduce_identity(a.redop);
      fill.prov = launch.prov.derived("region-reduction");
      pre.push_back(std::move(fill));

      // Apply the partial results to every partition reading the fields.
      const FieldSet reduced(a.fields.begin(), a.fields.end());
      bool applied = false;
      for (const auto& [d, read_fields] : reads_) {
        if (d == tmp) continue;
        if (root_of(forest_, d) != root) continue;
        FieldSet shared = intersect_fields(reduced, read_fields);
        if (shared.empty()) continue;
        if (!tree_.partitions_may_alias(tmp, d)) continue;
        ir::Stmt copy;
        copy.kind = ir::StmtKind::kCopy;
        copy.copy_src = tmp;
        copy.copy_dst = d;
        copy.copy_fields.assign(shared.begin(), shared.end());
        copy.copy_reduction = true;
        copy.copy_redop = a.redop;
        copy.prov = launch.prov.derived("region-reduction");
        post.push_back(std::move(copy));
        applied = true;
      }
      if (!applied) {
        // Nothing in the fragment consumes the reduction: fold straight
        // into the parent region so finalization still sees the values.
        ir::Stmt copy;
        copy.kind = ir::StmtKind::kCopy;
        copy.copy_src = tmp;
        copy.dst_root = root;
        copy.copy_fields = a.fields;
        copy.copy_reduction = true;
        copy.copy_redop = a.redop;
        copy.prov = launch.prov.derived("region-reduction");
        post.push_back(std::move(copy));
      }

      a.partition = tmp;
      ++rewritten;
    }
    return rewritten;
  }

  ir::Program& program_;
  rt::RegionForest& forest_;
  const ir::StaticRegionTree& tree_;
  PartitionFields reads_;
};

}  // namespace

size_t region_reduction(ir::Program& program, Fragment& fragment,
                        const ir::StaticRegionTree& tree) {
  ReductionRewriter rw(program, tree);
  return rw.run(fragment);
}

}  // namespace cr::passes
