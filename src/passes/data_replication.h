// Data replication (paper §3.1, Figure 4a): give every partition its own
// storage and insert the copies that keep replicas coherent.
//
//  - Initialization: before the fragment, every partition accessed with
//    read or write privileges is loaded from its parent region.
//  - Inner copies: after each statement writing a partition P, copy the
//    written fields into every partition Q that may alias P (per the
//    static region tree) and is read within the fragment.
//  - Finalization: after the fragment, every partition written by a task
//    is copied back to its parent region.
//
// Reduce-privileged arguments are left untouched here; the region
// reduction pass (§4.3) rewrites them.
#pragma once

#include <vector>

#include "ir/program.h"
#include "ir/static_region_tree.h"
#include "passes/common.h"

namespace cr::passes {

struct DataReplicationResult {
  std::vector<ir::Stmt> init;      // copies to place before the fragment
  std::vector<ir::Stmt> finalize;  // copies to place after the fragment
  size_t inner_copies = 0;         // copies inserted inside the fragment
};

// `fragment` is updated in place when top-level copy insertion grows the
// range.
DataReplicationResult data_replication(ir::Program& program,
                                       Fragment& fragment,
                                       const ir::StaticRegionTree& tree);

}  // namespace cr::passes
