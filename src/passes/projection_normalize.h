// Projection normalization (paper §2.2): region arguments of the form
// p[f(i)] with a non-trivial f are rewritten to q[i] where q is a fresh
// compiler-generated partition with q[i] = p[f(i)]. This puts every
// launch argument in the canonical identity-projection form the later
// passes assume, using Regent's defining ability to create multiple
// partitions of the same data.
#pragma once

#include "ir/program.h"
#include "passes/common.h"

namespace cr::passes {

// Returns the number of arguments rewritten.
size_t projection_normalize(ir::Program& program, const Fragment& fragment);

}  // namespace cr::passes
