// Shard creation (paper §3.5, Figure 4d): the final stage replicates the
// control flow itself.
//
// The fragment's statements become the body of a shard task launched
// once per shard. Each shard owns a block of every index launch's color
// space (SI = block(I, X)) and of every copy's source colors; the
// intersection tables are filtered per shard (SIQPB). Initialization and
// finalization stay with the main task. The blocking itself is performed
// by the SPMD executor from `num_shards`; this pass restructures the IR.
#pragma once

#include "ir/program.h"
#include "passes/common.h"

namespace cr::passes {

// Replaces program.body[fragment] with one kShardBody statement; the
// fragment is updated to the new single-statement range.
void shard_creation(ir::Program& program, Fragment& fragment,
                    uint32_t num_shards);

// The color range of a width-`colors` launch owned by shard `s` of
// `num_shards`: the block partition of Figure 4d line 14. Exposed for
// the executors and tests.
struct ColorRange {
  uint64_t begin = 0;
  uint64_t end = 0;
};
ColorRange shard_block(uint64_t colors, uint32_t num_shards, uint32_t s);

}  // namespace cr::passes
