#include "passes/hierarchical.h"

#include <set>

namespace cr::passes {

ir::StaticRegionTree make_alias_oracle(const ir::Program& program,
                                       bool hierarchical) {
  return ir::StaticRegionTree(*program.forest, hierarchical);
}

HierarchyStats analyze_hierarchy(const ir::Program& program,
                                 const Fragment& fragment) {
  // Collect every partition used in the fragment.
  std::set<rt::PartitionId> used;
  for (size_t i = fragment.begin; i < fragment.end; ++i) {
    AccessSummary sum = summarize(program.body[i]);
    for (const auto& [p, _] : sum.reads) used.insert(p);
    for (const auto& [p, _] : sum.writes) used.insert(p);
    for (const auto& [p, _] : sum.reduces) used.insert(p);
  }
  ir::StaticRegionTree deep(*program.forest, /*hierarchical=*/true);
  ir::StaticRegionTree flat(*program.forest, /*hierarchical=*/false);
  HierarchyStats stats;
  for (rt::PartitionId p : used) {
    for (rt::PartitionId q : used) {
      if (q <= p) continue;
      if (root_of(*program.forest, p) != root_of(*program.forest, q)) {
        continue;
      }
      ++stats.pairs_considered;
      if (!deep.partitions_may_alias(p, q)) ++stats.pairs_proven_disjoint;
      if (!flat.partitions_may_alias(p, q)) ++stats.pairs_flat_disjoint;
    }
  }
  return stats;
}

}  // namespace cr::passes
