#include "exec/cost_model.h"

namespace cr::exec {

CostModel CostModel::piz_daint() {
  CostModel m;
  // Aries interconnect: ~1.3us one-way latency, ~10 GB/s effective
  // per-NIC injection bandwidth.
  m.network.latency_ns = 1300;
  m.network.bandwidth_gbps = 10.0;
  m.network.mem_bandwidth_gbps = 40.0;
  m.network.am_handler_ns = 400;
  return m;
}

}  // namespace cr::exec
